# Convenience wrappers around the CMake build.
#
#   make build        - configure + build the regular tree (./build)
#   make test         - regular build + full ctest suite
#   make verify-tsan  - ThreadSanitizer pass over the concurrency tests
#
# verify-tsan is the one-command sanitizer gate for the `concurrency`
# ctest label (the buffer-pool / code-cache hammer tests): it maintains
# a separate instrumented tree in ./build-tsan so the regular build is
# never polluted with -fsanitize flags.

BUILD_DIR ?= build
TSAN_BUILD_DIR ?= build-tsan
JOBS ?= $(shell nproc 2>/dev/null || echo 2)

.PHONY: build test verify-tsan

build:
	cmake -B $(BUILD_DIR) -S .
	cmake --build $(BUILD_DIR) -j $(JOBS)

test: build
	ctest --test-dir $(BUILD_DIR) --output-on-failure -j $(JOBS)

verify-tsan:
	cmake -B $(TSAN_BUILD_DIR) -S . -DFGPM_SANITIZE=thread
	cmake --build $(TSAN_BUILD_DIR) -j $(JOBS)
	ctest --test-dir $(TSAN_BUILD_DIR) -L concurrency --output-on-failure
