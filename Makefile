# Convenience wrappers around the CMake build.
#
#   make build        - configure + build the regular tree (./build)
#   make test         - regular build + full ctest suite
#   make bench-codes  - build + run the code-layout A/B bench
#                       (writes BENCH_codes.json in the repo root)
#   make bench-exec   - build + run the eager-vs-factorized
#                       materialization bench
#                       (writes BENCH_materialization.json)
#   make bench-obs    - build + run the observability overhead A/B
#                       (writes BENCH_obs.json)
#   make bench-wcoj   - build + run the binary vs WCOJ vs hybrid join
#                       strategy bench (writes BENCH_wcoj.json)
#   make bench-multiquery - build + run the Zipfian multi-client
#                       result-cache + batching A/B
#                       (writes BENCH_multiquery.json)
#   make bench-server - build + run the open-loop query-server bench
#                       over real sockets at 1/2/4/8 shards
#                       (writes BENCH_server.json)
#   make bench-sched  - build + run the fork-join vs work-stealing A/B:
#                       uniform/skewed ParallelFor microbenches plus the
#                       hot-shard server sweep at Zipf 0.6/0.9/1.2
#                       (writes BENCH_sched.json)
#   make verify-tsan  - ThreadSanitizer pass over the concurrency +
#                       reach + exec + obs + wcoj + mqo + net + sched
#                       tests (the Chase-Lev deque is the TSan-critical
#                       piece of the scheduler)
#   make verify-asan  - AddressSanitizer pass over the same labels
#
# verify-tsan / verify-asan are the one-command sanitizer gates for the
# `concurrency`, `reach`, `exec`, `obs` and `obs2` ctest labels (buffer-pool /
# code-cache hammer tests, code-layout round-trips, the multi-threaded
# probe differentials, the eager-vs-factorized materialization
# differentials and the metrics/trace suites with their 8-thread
# exact-total checks): each maintains a separate instrumented tree
# (./build-tsan, ./build-asan) so the regular build is never polluted
# with -fsanitize flags.

BUILD_DIR ?= build
TSAN_BUILD_DIR ?= build-tsan
ASAN_BUILD_DIR ?= build-asan
JOBS ?= $(shell nproc 2>/dev/null || echo 2)

.PHONY: build test bench-codes bench-exec bench-obs bench-wcoj bench-multiquery bench-server bench-sched verify-tsan verify-asan

build:
	cmake -B $(BUILD_DIR) -S .
	cmake --build $(BUILD_DIR) -j $(JOBS)

test: build
	ctest --test-dir $(BUILD_DIR) --output-on-failure -j $(JOBS)

bench-codes: build
	cd $(BUILD_DIR)/bench && ./bench_codes
	cp $(BUILD_DIR)/bench/BENCH_codes.json BENCH_codes.json

bench-exec: build
	cd $(BUILD_DIR)/bench && ./bench_materialization
	cp $(BUILD_DIR)/bench/BENCH_materialization.json BENCH_materialization.json

bench-obs: build
	cd $(BUILD_DIR)/bench && ./bench_obs_overhead
	cp $(BUILD_DIR)/bench/BENCH_obs.json BENCH_obs.json

bench-wcoj: build
	cd $(BUILD_DIR)/bench && ./bench_wcoj
	cp $(BUILD_DIR)/bench/BENCH_wcoj.json BENCH_wcoj.json

bench-multiquery: build
	cd $(BUILD_DIR)/bench && ./bench_multiquery
	cp $(BUILD_DIR)/bench/BENCH_multiquery.json BENCH_multiquery.json

bench-server: build
	cd $(BUILD_DIR)/bench && ./bench_server
	cp $(BUILD_DIR)/bench/BENCH_server.json BENCH_server.json

bench-sched: build
	cd $(BUILD_DIR)/bench && ./bench_sched
	cp $(BUILD_DIR)/bench/BENCH_sched.json BENCH_sched.json

verify-tsan:
	cmake -B $(TSAN_BUILD_DIR) -S . -DFGPM_SANITIZE=thread
	cmake --build $(TSAN_BUILD_DIR) -j $(JOBS)
	ctest --test-dir $(TSAN_BUILD_DIR) -L 'concurrency|reach|exec|obs|obs2|wcoj|mqo|net|sched' --output-on-failure

verify-asan:
	cmake -B $(ASAN_BUILD_DIR) -S . -DFGPM_SANITIZE=address
	cmake --build $(ASAN_BUILD_DIR) -j $(JOBS)
	ctest --test-dir $(ASAN_BUILD_DIR) -L 'concurrency|reach|exec|obs|obs2|wcoj|mqo|net|sched' --output-on-failure
