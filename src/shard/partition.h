// Label -> shard placement for the sharded serving layer. Shards own
// whole labels (a base table is the unit of partitioning: its tuples,
// its R-join subclusters and its share of every shard-private cache),
// so a query whose labels all map to one shard executes there without
// touching any other shard's structures.
#ifndef FGPM_SHARD_PARTITION_H_
#define FGPM_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fgpm {

// Greedy balanced placement: labels in descending extent-size order
// (ties by label id) go to the currently lightest shard (ties to the
// lowest shard id). Deterministic; every shard gets at least one label
// when num_shards <= num_labels. num_shards must be >= 1.
std::vector<uint32_t> PartitionLabelsByExtent(const Graph& g,
                                              uint32_t num_shards);

// One byte per label, nonzero when `shard` owns it — the filter format
// GraphDatabaseOptions::owned_labels consumes.
std::vector<uint8_t> OwnedLabelFilter(const std::vector<uint32_t>& label_to_shard,
                                      uint32_t shard);

}  // namespace fgpm

#endif  // FGPM_SHARD_PARTITION_H_
