// ShardedMatcher: a GraphDatabase partitioned into N label-aware shards,
// each owning its own buffer pool, code arena/cache, executor and
// matcher-level caches — the execution substrate of the query server
// (src/net). The 2-hop cover, W-table and catalog are global on every
// shard (routing and cross-shard joins need the global view); base
// tables and R-join subclusters are partitioned by label ownership
// (GraphDatabaseOptions::owned_labels), so a shard's hot path never
// crosses another shard's latches.
//
// Routing: a pattern whose labels all map to one shard executes there
// exactly as on an unsharded database (row-identical). Otherwise a
// scatter-gather coordinator splits the pattern into shard-local
// connected sub-patterns (executed by their owning shards, composing
// with the PR 7 result cache and MatchBatch), then joins them across
// the cross-shard edges by shipping *semijoin center filters* — the
// compact sorted center lists of the 2-hop codes — between shards
// instead of rows:
//   * seed          — an all-cross pattern starts from one cross edge,
//                     materialized HPSJ-style from both shards' F/T
//                     subcluster spans per shared center;
//   * merge         — an unmerged sub-result joins in through a cross
//                     edge: the bound side ships per-value center
//                     filters (out-code ∩ W(X,Y)), the other side's
//                     in-codes are probed against them, and only the
//                     verified (a, b) pairs drive a hash join;
//   * expand        — a pattern node with no shard-local edge is bound
//                     by fetching the owning shard's T-/F-subclusters
//                     for the shipped center filter (HPSJ+ fetch across
//                     shards);
//   * filter        — remaining cross edges prune rows with memoized
//                     out ∩ in code probes.
// Every step reads remote shards only through GraphDatabase's
// thread-safe read path (GetCodes / R-join index / W-table), never
// through another shard's matcher.
//
// Thread model: shard(s)->Match and the inline ShardedMatcher::Match
// are caller-synchronized (one logical owner per shard — the server
// pins shard s to worker s). JoinCross may run on any thread once the
// sub-results are in hand.
#ifndef FGPM_SHARD_SHARDED_MATCHER_H_
#define FGPM_SHARD_SHARDED_MATCHER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/graph_matcher.h"

namespace fgpm {

struct ShardedMatcherOptions {
  uint32_t num_shards = 1;
  // Explicit label -> shard placement (one entry per graph label, each
  // < num_shards). Empty = PartitionLabelsByExtent. Workload-aware
  // placements (co-locating labels that are queried together) turn
  // cross-shard patterns into single-shard ones — the biggest lever the
  // serving bench exercises.
  std::vector<uint32_t> label_to_shard;
  // Per-shard database template. owned_labels is filled in per shard;
  // buffer_pool_bytes and code_cache_capacity are PER SHARD (callers
  // holding a total budget fixed across shard counts divide first).
  GraphDatabaseOptions db;
  // Per-shard matcher execution options (thread-per-core servers keep
  // num_threads = 1 so a shard never oversubscribes its core).
  ExecOptions exec;
};

// Accounting of cross-shard coordination (one Match / JoinCross call,
// also mirrored into fgpm_shard_* registry counters).
struct CrossShardStats {
  uint64_t subqueries = 0;       // shard-local sub-pattern executions
  uint64_t cross_edges = 0;      // pattern edges joined across shards
  uint64_t filters_shipped = 0;  // semijoin center filters shipped
  uint64_t filter_ids = 0;       // center ids inside those filters
  uint64_t cluster_fetches = 0;  // remote F/T subcluster reads
  uint64_t probe_pairs = 0;      // (a, b) code-intersection probes
};

class ShardedMatcher {
 public:
  static Result<std::unique_ptr<ShardedMatcher>> Create(
      const Graph* g, ShardedMatcherOptions options = {});

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const std::vector<uint32_t>& label_to_shard() const {
    return label_to_shard_;
  }
  GraphMatcher* shard(uint32_t s) { return shards_[s].get(); }
  const Graph& graph() const { return *graph_; }

  // Home shard when every (known) pattern label maps to one shard;
  // nullopt when the pattern spans shards. Unknown labels (empty result
  // by definition) don't pin the query anywhere.
  std::optional<uint32_t> Route(const Pattern& p) const;

  // Routes and executes on the calling thread (cross-shard sub-queries
  // run inline, sequentially). Row-identical to an unsharded
  // GraphMatcher::Match. Caller-synchronized. `options.projection` is
  // only supported on the single-shard path.
  Result<MatchResult> Match(const Pattern& p, MatchOptions options = {},
                            CrossShardStats* stats = nullptr);
  Result<MatchResult> Match(std::string_view pattern_text,
                            MatchOptions options = {},
                            CrossShardStats* stats = nullptr);

  // --- scatter-gather pieces (the server schedules subs itself) ---------
  struct CrossSub {
    uint32_t shard = 0;
    Pattern pattern;                   // connected shard-local sub-pattern
    std::vector<PatternNodeId> cols;   // sub node i -> parent pattern node
  };
  struct CrossPlan {
    std::vector<CrossSub> subs;
    std::vector<PatternEdge> cross_edges;  // parent-pattern node ids
    std::vector<PatternNodeId> isolated;   // nodes with no shard-local edge
  };
  Result<CrossPlan> PlanCross(const Pattern& p) const;

  // Joins sub-results (aligned with plan.subs; each row-identical to a
  // solo Match of plan.subs[k].pattern) into the final result. Reads
  // remote shards through thread-safe paths only.
  Result<MatchResult> JoinCross(const Pattern& p, const CrossPlan& plan,
                                std::vector<MatchResult> sub_results,
                                CrossShardStats* stats);

 private:
  ShardedMatcher(const Graph* g, std::vector<uint32_t> label_to_shard)
      : graph_(g), label_to_shard_(std::move(label_to_shard)) {}

  // Per-call scratch: codes resolved against owning shards, memoized by
  // node id (a node's codes are label-independent).
  struct CodeMemo {
    std::unordered_map<NodeId, std::vector<CenterId>> out, in;
  };
  Status Codes(PatternNodeId u, NodeId v, bool out_side, CodeMemo* memo,
               const std::vector<LabelId>& labels,
               const std::vector<CenterId>** codes);

  const Graph* graph_;
  std::vector<uint32_t> label_to_shard_;
  std::vector<std::unique_ptr<GraphMatcher>> shards_;
};

}  // namespace fgpm

#endif  // FGPM_SHARD_SHARDED_MATCHER_H_
