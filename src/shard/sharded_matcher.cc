#include "shard/sharded_matcher.h"

#include <algorithm>

#include "common/hash.h"
#include "common/sorted_vector.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "shard/partition.h"

namespace fgpm {

namespace {

struct ShardMetrics {
  obs::Counter* single;
  obs::Counter* cross;
  obs::Counter* subqueries;
  obs::Counter* filters;
  obs::Counter* filter_ids;
  obs::Counter* cluster_fetches;
  obs::Counter* probe_pairs;
  static ShardMetrics& Get() {
    static ShardMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      ShardMetrics m;
      m.single = r.GetCounter("fgpm_shard_single_total",
                              "Queries answered by one shard");
      m.cross = r.GetCounter("fgpm_shard_cross_total",
                             "Queries scatter-gathered across shards");
      m.subqueries = r.GetCounter("fgpm_shard_subqueries_total",
                                  "Shard-local sub-pattern executions");
      m.filters = r.GetCounter("fgpm_shard_filters_shipped_total",
                               "Semijoin center filters shipped");
      m.filter_ids = r.GetCounter("fgpm_shard_filter_ids_total",
                                  "Center ids inside shipped filters");
      m.cluster_fetches = r.GetCounter("fgpm_shard_cluster_fetches_total",
                                       "Remote F/T subcluster reads");
      m.probe_pairs = r.GetCounter("fgpm_shard_probe_pairs_total",
                                   "Cross-shard code-intersection probes");
      return m;
    }();
    return m;
  }
};

void PublishStats(const CrossShardStats& s) {
  auto& m = ShardMetrics::Get();
  m.subqueries->Increment(s.subqueries);
  m.filters->Increment(s.filters_shipped);
  m.filter_ids->Increment(s.filter_ids);
  m.cluster_fetches->Increment(s.cluster_fetches);
  m.probe_pairs->Increment(s.probe_pairs);
}

MatchResult EmptyResult(const Pattern& p) {
  MatchResult r;
  r.column_labels = p.labels();
  return r;
}

}  // namespace

Result<std::unique_ptr<ShardedMatcher>> ShardedMatcher::Create(
    const Graph* g, ShardedMatcherOptions options) {
  if (g == nullptr) return Status::InvalidArgument("graph is null");
  if (!g->finalized()) return Status::FailedPrecondition("graph not finalized");
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<uint32_t> placement = options.label_to_shard;
  if (placement.empty()) {
    placement = PartitionLabelsByExtent(*g, options.num_shards);
  }
  if (placement.size() != g->NumLabels()) {
    return Status::InvalidArgument("label_to_shard size != label count");
  }
  for (uint32_t s : placement) {
    if (s >= options.num_shards) {
      return Status::InvalidArgument("label_to_shard entry out of range");
    }
  }

  auto sm = std::unique_ptr<ShardedMatcher>(
      new ShardedMatcher(g, std::move(placement)));
  sm->shards_.reserve(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    GraphDatabaseOptions dbo = options.db;
    // A single shard owns everything; skip the filter so the database is
    // bit-identical to the unsharded build.
    if (options.num_shards > 1) {
      dbo.owned_labels = OwnedLabelFilter(sm->label_to_shard_, s);
    }
    FGPM_ASSIGN_OR_RETURN(auto matcher,
                          GraphMatcher::Create(g, dbo, options.exec));
    sm->shards_.push_back(std::move(matcher));
  }
  return sm;
}

std::optional<uint32_t> ShardedMatcher::Route(const Pattern& p) const {
  std::optional<uint32_t> home;
  for (const std::string& name : p.labels()) {
    auto l = graph_->FindLabel(name);
    if (!l.has_value()) continue;  // unknown label: empty result anywhere
    uint32_t s = label_to_shard_[*l];
    if (!home.has_value()) {
      home = s;
    } else if (*home != s) {
      return std::nullopt;
    }
  }
  return home.has_value() ? home : std::optional<uint32_t>(0);
}

Result<ShardedMatcher::CrossPlan> ShardedMatcher::PlanCross(
    const Pattern& p) const {
  const size_t n = p.num_nodes();
  // Shard of each pattern node (unknown labels park on shard 0; their
  // empty extent empties the result downstream either way).
  std::vector<uint32_t> node_shard(n, 0);
  for (PatternNodeId i = 0; i < n; ++i) {
    auto l = graph_->FindLabel(p.label(i));
    if (l.has_value()) node_shard[i] = label_to_shard_[*l];
  }

  CrossPlan plan;
  // Union-find over shard-local edges -> shard-local components.
  std::vector<PatternNodeId> parent(n);
  for (PatternNodeId i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](PatternNodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<uint8_t> has_local_edge(n, 0);
  for (const PatternEdge& e : p.edges()) {
    if (node_shard[e.from] != node_shard[e.to]) {
      plan.cross_edges.push_back(e);
      continue;
    }
    has_local_edge[e.from] = has_local_edge[e.to] = 1;
    parent[find(e.from)] = find(e.to);
  }

  // Group nodes by component root; nodes without any local edge are
  // bound later by cross-shard expansion instead of a full extent scan.
  std::unordered_map<PatternNodeId, std::vector<PatternNodeId>> comps;
  for (PatternNodeId i = 0; i < n; ++i) {
    if (!has_local_edge[i]) {
      plan.isolated.push_back(i);
      continue;
    }
    comps[find(i)].push_back(i);
  }

  for (auto& [root, nodes] : comps) {
    CrossSub sub;
    sub.shard = node_shard[root];
    std::sort(nodes.begin(), nodes.end());
    std::unordered_map<PatternNodeId, PatternNodeId> to_sub;
    for (PatternNodeId i : nodes) {
      to_sub[i] = sub.pattern.AddNode(p.label(i));
      sub.cols.push_back(i);
    }
    for (const PatternEdge& e : p.edges()) {
      auto f = to_sub.find(e.from), t = to_sub.find(e.to);
      if (f == to_sub.end() || t == to_sub.end()) continue;
      if (node_shard[e.from] != node_shard[e.to]) continue;  // cross edge
      FGPM_RETURN_IF_ERROR(sub.pattern.AddEdge(f->second, t->second));
    }
    plan.subs.push_back(std::move(sub));
  }
  // Deterministic sub order (comps iteration order is hash-dependent).
  std::sort(plan.subs.begin(), plan.subs.end(),
            [](const CrossSub& a, const CrossSub& b) {
              return a.cols.front() < b.cols.front();
            });
  return plan;
}

Status ShardedMatcher::Codes(PatternNodeId u, NodeId v, bool out_side,
                             CodeMemo* memo,
                             const std::vector<LabelId>& labels,
                             const std::vector<CenterId>** codes) {
  auto& map = out_side ? memo->out : memo->in;
  auto it = map.find(v);
  if (it == map.end()) {
    GraphCodeRecord rec;
    GraphMatcher* owner = shards_[label_to_shard_[labels[u]]].get();
    FGPM_RETURN_IF_ERROR(owner->db().GetCodes(v, labels[u], &rec));
    it = map.emplace(v, out_side ? std::move(rec.out) : std::move(rec.in))
             .first;
  }
  *codes = &it->second;
  return Status::OK();
}

Result<MatchResult> ShardedMatcher::JoinCross(const Pattern& p,
                                              const CrossPlan& plan,
                                              std::vector<MatchResult> subs,
                                              CrossShardStats* stats) {
  CrossShardStats local_stats;
  CrossShardStats* cs = stats != nullptr ? stats : &local_stats;
  cs->cross_edges += plan.cross_edges.size();
  WallTimer timer;

  const size_t n = p.num_nodes();
  // Resolve labels; an unknown label empties the result by definition.
  std::vector<LabelId> labels(n, 0);
  for (PatternNodeId i = 0; i < n; ++i) {
    auto l = graph_->FindLabel(p.label(i));
    if (!l.has_value()) {
      PublishStats(*cs);
      return EmptyResult(p);
    }
    labels[i] = *l;
  }
  for (const MatchResult& sub : subs) {
    if (sub.rows.empty()) {
      PublishStats(*cs);
      return EmptyResult(p);
    }
  }
  if (subs.size() != plan.subs.size()) {
    return Status::Internal("sub-result count disagrees with plan");
  }

  CodeMemo memo;
  // Working table: col_of[i] = column of pattern node i (-1 = unbound).
  std::vector<int> col_of(n, -1);
  std::vector<std::vector<NodeId>> rows;
  size_t num_bound = 0;

  auto shard_of = [&](PatternNodeId u) { return label_to_shard_[labels[u]]; };
  auto wcenters = [&](PatternNodeId u, PatternNodeId v,
                      std::vector<CenterId>* scratch)
      -> Result<std::span<const CenterId>> {
    // Either endpoint's shard holds the full W-table; read the from-side.
    return shards_[shard_of(u)]->db().wtable().LookupSpan(labels[u], labels[v],
                                                          scratch);
  };

  auto bind_sub = [&](size_t k) {
    const CrossSub& s = plan.subs[k];
    for (size_t c = 0; c < s.cols.size(); ++c) {
      col_of[s.cols[c]] = static_cast<int>(num_bound + c);
    }
    num_bound += s.cols.size();
  };

  std::vector<uint8_t> edge_done(plan.cross_edges.size(), 0);
  std::vector<uint8_t> sub_merged(plan.subs.size(), 0);

  // --- seed -------------------------------------------------------------
  if (!plan.subs.empty()) {
    size_t seed = 0;
    for (size_t k = 1; k < subs.size(); ++k) {
      if (subs[k].rows.size() < subs[seed].rows.size()) seed = k;
    }
    bind_sub(seed);
    rows = std::move(subs[seed].rows);
    sub_merged[seed] = 1;
    cs->subqueries += plan.subs.size();
  } else {
    // Every edge crosses shards: materialize one cross edge HPSJ-style
    // from both shards' subcluster spans per shared center.
    const PatternEdge& e = plan.cross_edges.front();
    std::vector<CenterId> wscratch;
    FGPM_ASSIGN_OR_RETURN(std::span<const CenterId> W,
                          wcenters(e.from, e.to, &wscratch));
    cs->filters_shipped += 1;
    cs->filter_ids += W.size();
    std::vector<uint64_t> pairs;
    std::vector<NodeId> fbuf, tbuf;
    for (CenterId w : W) {
      FGPM_RETURN_IF_ERROR(
          shards_[shard_of(e.from)]->db().rjoin_index().GetF(w, labels[e.from],
                                                             &fbuf));
      FGPM_RETURN_IF_ERROR(
          shards_[shard_of(e.to)]->db().rjoin_index().GetT(w, labels[e.to],
                                                           &tbuf));
      cs->cluster_fetches += 2;
      for (NodeId a : fbuf) {
        for (NodeId b : tbuf) pairs.push_back(PackPair(a, b));
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    col_of[e.from] = 0;
    col_of[e.to] = 1;
    num_bound = 2;
    rows.reserve(pairs.size());
    for (uint64_t pr : pairs) {
      rows.push_back({PairFirst(pr), PairSecond(pr)});
    }
    edge_done.front() = 1;
  }

  // --- filter: apply a cross edge whose endpoints are both bound --------
  auto apply_filter = [&](const PatternEdge& e) -> Status {
    const int cu = col_of[e.from], cv = col_of[e.to];
    std::unordered_map<uint64_t, bool> verdict;
    std::vector<std::vector<NodeId>> kept;
    kept.reserve(rows.size());
    for (auto& row : rows) {
      uint64_t key = PackPair(row[cu], row[cv]);
      auto it = verdict.find(key);
      if (it == verdict.end()) {
        const std::vector<CenterId>* out_c;
        const std::vector<CenterId>* in_c;
        FGPM_RETURN_IF_ERROR(
            Codes(e.from, row[cu], /*out_side=*/true, &memo, labels, &out_c));
        FGPM_RETURN_IF_ERROR(
            Codes(e.to, row[cv], /*out_side=*/false, &memo, labels, &in_c));
        cs->probe_pairs += 1;
        it = verdict.emplace(key, SortedIntersects(*out_c, *in_c)).first;
      }
      if (it->second) kept.push_back(std::move(row));
    }
    rows.swap(kept);
    return Status::OK();
  };

  // Verified (a, b) pairs of a cross edge, computed by shipping the
  // bound side's per-value center filters and probing the other side's
  // codes against them — never by enumerating the row cross-product.
  auto verified_pairs =
      [&](const PatternEdge& e, const std::vector<NodeId>& from_vals,
          const std::vector<NodeId>& to_vals,
          std::vector<uint64_t>* pairs) -> Status {
    std::vector<CenterId> wscratch;
    FGPM_ASSIGN_OR_RETURN(std::span<const CenterId> W,
                          wcenters(e.from, e.to, &wscratch));
    // center -> indexes into from_vals whose shipped filter contains it.
    std::unordered_map<CenterId, std::vector<uint32_t>> by_center;
    std::vector<CenterId> active;
    std::vector<CenterId> fa;
    for (uint32_t ai = 0; ai < from_vals.size(); ++ai) {
      const std::vector<CenterId>* out_c;
      FGPM_RETURN_IF_ERROR(Codes(e.from, from_vals[ai], /*out_side=*/true,
                                 &memo, labels, &out_c));
      fa.clear();
      SortedIntersectInto(*out_c, W, &fa);
      cs->filters_shipped += 1;
      cs->filter_ids += fa.size();
      for (CenterId w : fa) {
        auto [it, inserted] = by_center.try_emplace(w);
        if (inserted) active.push_back(w);
        it->second.push_back(ai);
      }
    }
    std::sort(active.begin(), active.end());
    std::vector<CenterId> hit;
    std::vector<uint32_t> a_hits;
    for (NodeId b : to_vals) {
      const std::vector<CenterId>* in_c;
      FGPM_RETURN_IF_ERROR(
          Codes(e.to, b, /*out_side=*/false, &memo, labels, &in_c));
      hit.clear();
      SortedIntersectInto(*in_c, active, &hit);
      cs->probe_pairs += 1;
      if (hit.empty()) continue;
      a_hits.clear();
      for (CenterId w : hit) {
        const auto& as = by_center[w];
        a_hits.insert(a_hits.end(), as.begin(), as.end());
      }
      std::sort(a_hits.begin(), a_hits.end());
      a_hits.erase(std::unique(a_hits.begin(), a_hits.end()), a_hits.end());
      for (uint32_t ai : a_hits) pairs->push_back(PackPair(from_vals[ai], b));
    }
    return Status::OK();
  };

  auto distinct_column = [](const std::vector<std::vector<NodeId>>& rws,
                            int col) {
    std::vector<NodeId> vals;
    vals.reserve(rws.size());
    for (const auto& r : rws) vals.push_back(r[col]);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    return vals;
  };

  // --- merge: join an unmerged sub-result in through cross edge e -------
  auto merge_sub = [&](const PatternEdge& e, size_t k) -> Status {
    const CrossSub& s = plan.subs[k];
    MatchResult& sub = subs[k];
    // Column of the linking node on each side.
    const bool from_in_working = col_of[e.from] >= 0;
    const PatternNodeId wnode = from_in_working ? e.from : e.to;
    const PatternNodeId snode = from_in_working ? e.to : e.from;
    int scol = -1;
    for (size_t c = 0; c < s.cols.size(); ++c) {
      if (s.cols[c] == snode) scol = static_cast<int>(c);
    }
    if (scol < 0) return Status::Internal("merge node not in sub");
    const int wcol = col_of[wnode];

    std::vector<NodeId> wvals = distinct_column(rows, wcol);
    std::vector<NodeId> svals = distinct_column(sub.rows, scol);
    std::vector<uint64_t> pairs;  // PackPair(from value, to value)
    if (from_in_working) {
      FGPM_RETURN_IF_ERROR(verified_pairs(e, wvals, svals, &pairs));
    } else {
      FGPM_RETURN_IF_ERROR(verified_pairs(e, svals, wvals, &pairs));
    }

    // Hash join on the verified pairs only.
    std::unordered_map<NodeId, std::vector<uint32_t>> wrows, srows;
    for (uint32_t i = 0; i < rows.size(); ++i) {
      wrows[rows[i][wcol]].push_back(i);
    }
    for (uint32_t i = 0; i < sub.rows.size(); ++i) {
      srows[sub.rows[i][scol]].push_back(i);
    }
    std::vector<std::vector<NodeId>> joined;
    for (uint64_t pr : pairs) {
      NodeId wv = from_in_working ? PairFirst(pr) : PairSecond(pr);
      NodeId sv = from_in_working ? PairSecond(pr) : PairFirst(pr);
      auto wi = wrows.find(wv);
      auto si = srows.find(sv);
      if (wi == wrows.end() || si == srows.end()) continue;
      for (uint32_t ri : wi->second) {
        for (uint32_t rj : si->second) {
          std::vector<NodeId> row = rows[ri];
          row.insert(row.end(), sub.rows[rj].begin(), sub.rows[rj].end());
          joined.push_back(std::move(row));
        }
      }
    }
    rows.swap(joined);
    bind_sub(k);
    sub_merged[k] = 1;
    return Status::OK();
  };

  // --- expand: bind an isolated node through cross edge e ---------------
  auto expand = [&](const PatternEdge& e) -> Status {
    const bool forward = col_of[e.from] >= 0;  // bound -> unbound direction?
    const PatternNodeId bnode = forward ? e.from : e.to;
    const PatternNodeId unode = forward ? e.to : e.from;
    const int bcol = col_of[bnode];
    std::vector<CenterId> wscratch;
    FGPM_ASSIGN_OR_RETURN(std::span<const CenterId> W,
                          wcenters(e.from, e.to, &wscratch));

    // Shipped filter per distinct bound value, plus the union of its
    // centers to fetch each remote subcluster exactly once.
    std::vector<NodeId> bvals = distinct_column(rows, bcol);
    std::unordered_map<NodeId, std::vector<CenterId>> filt;
    std::vector<CenterId> needed;
    for (NodeId a : bvals) {
      const std::vector<CenterId>* code;
      FGPM_RETURN_IF_ERROR(
          Codes(bnode, a, /*out_side=*/forward, &memo, labels, &code));
      std::vector<CenterId> fa;
      SortedIntersectInto(*code, W, &fa);
      cs->filters_shipped += 1;
      cs->filter_ids += fa.size();
      needed.insert(needed.end(), fa.begin(), fa.end());
      filt.emplace(a, std::move(fa));
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

    const RJoinIndex& idx = shards_[shard_of(unode)]->db().rjoin_index();
    std::unordered_map<CenterId, std::vector<NodeId>> cluster;
    std::vector<NodeId> cbuf;
    for (CenterId w : needed) {
      if (forward) {
        FGPM_RETURN_IF_ERROR(idx.GetT(w, labels[unode], &cbuf));
      } else {
        FGPM_RETURN_IF_ERROR(idx.GetF(w, labels[unode], &cbuf));
      }
      cs->cluster_fetches += 1;
      cluster.emplace(w, cbuf);
    }

    // Candidate set per distinct bound value (dedup'd), then extend.
    std::unordered_map<NodeId, std::vector<NodeId>> cands;
    for (NodeId a : bvals) {
      std::vector<NodeId> c;
      for (CenterId w : filt[a]) {
        const auto& cl = cluster[w];
        c.insert(c.end(), cl.begin(), cl.end());
      }
      std::sort(c.begin(), c.end());
      c.erase(std::unique(c.begin(), c.end()), c.end());
      cands.emplace(a, std::move(c));
    }
    std::vector<std::vector<NodeId>> extended;
    for (const auto& row : rows) {
      const auto& c = cands[row[bcol]];
      for (NodeId b : c) {
        std::vector<NodeId> nr = row;
        nr.push_back(b);
        extended.push_back(std::move(nr));
      }
    }
    rows.swap(extended);
    col_of[unode] = static_cast<int>(num_bound);
    ++num_bound;
    return Status::OK();
  };

  // --- drive ------------------------------------------------------------
  while (true) {
    // Filters first: they only shrink the table.
    for (size_t i = 0; i < plan.cross_edges.size(); ++i) {
      const PatternEdge& e = plan.cross_edges[i];
      if (edge_done[i] || col_of[e.from] < 0 || col_of[e.to] < 0) continue;
      FGPM_RETURN_IF_ERROR(apply_filter(e));
      edge_done[i] = 1;
    }
    if (num_bound == n) break;
    if (rows.empty()) break;

    // Prefer merging a computed sub-result; fall back to expansion.
    int pick = -1, pick_sub = -1;
    int expand_pick = -1;
    for (size_t i = 0; i < plan.cross_edges.size() && pick < 0; ++i) {
      const PatternEdge& e = plan.cross_edges[i];
      const bool fb = col_of[e.from] >= 0, tb = col_of[e.to] >= 0;
      if (fb == tb) continue;  // both bound (done above) or neither
      const PatternNodeId other = fb ? e.to : e.from;
      for (size_t k = 0; k < plan.subs.size(); ++k) {
        if (sub_merged[k]) continue;
        if (std::find(plan.subs[k].cols.begin(), plan.subs[k].cols.end(),
                      other) != plan.subs[k].cols.end()) {
          pick = static_cast<int>(i);
          pick_sub = static_cast<int>(k);
          break;
        }
      }
      if (pick < 0 && expand_pick < 0) expand_pick = static_cast<int>(i);
    }
    if (pick >= 0) {
      FGPM_RETURN_IF_ERROR(
          merge_sub(plan.cross_edges[pick], static_cast<size_t>(pick_sub)));
      edge_done[pick] = 1;
    } else if (expand_pick >= 0) {
      FGPM_RETURN_IF_ERROR(expand(plan.cross_edges[expand_pick]));
      edge_done[expand_pick] = 1;
    } else {
      return Status::Internal("cross-shard join stuck (disconnected plan?)");
    }
  }

  MatchResult result = EmptyResult(p);
  if (num_bound == n && !rows.empty()) {
    result.rows.reserve(rows.size());
    for (const auto& row : rows) {
      std::vector<NodeId> out(n);
      for (PatternNodeId i = 0; i < n; ++i) out[i] = row[col_of[i]];
      result.rows.push_back(std::move(out));
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  result.stats.result_rows = result.rows.size();
  PublishStats(*cs);
  return result;
}

Result<MatchResult> ShardedMatcher::Match(const Pattern& p,
                                          MatchOptions options,
                                          CrossShardStats* stats) {
  Pattern query = options.transitive_reduction ? p.TransitiveReduction() : p;
  options.transitive_reduction = false;
  FGPM_RETURN_IF_ERROR(query.Validate());
  std::optional<uint32_t> home = Route(query);
  if (home.has_value()) {
    ShardMetrics::Get().single->Increment();
    return shards_[*home]->Match(query, options);
  }
  if (!options.projection.empty()) {
    return Status::Unimplemented(
        "projection is not supported on the cross-shard path");
  }
  ShardMetrics::Get().cross->Increment();
  FGPM_ASSIGN_OR_RETURN(CrossPlan plan, PlanCross(query));
  std::vector<MatchResult> subs;
  subs.reserve(plan.subs.size());
  for (const CrossSub& sub : plan.subs) {
    FGPM_ASSIGN_OR_RETURN(MatchResult r,
                          shards_[sub.shard]->Match(sub.pattern, options));
    subs.push_back(std::move(r));
  }
  return JoinCross(query, plan, std::move(subs), stats);
}

Result<MatchResult> ShardedMatcher::Match(std::string_view pattern_text,
                                          MatchOptions options,
                                          CrossShardStats* stats) {
  FGPM_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(pattern_text));
  return Match(p, options, stats);
}

}  // namespace fgpm
