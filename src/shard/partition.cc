#include "shard/partition.h"

#include <algorithm>

#include "common/logging.h"

namespace fgpm {

std::vector<uint32_t> PartitionLabelsByExtent(const Graph& g,
                                              uint32_t num_shards) {
  FGPM_CHECK(num_shards >= 1);
  FGPM_CHECK(g.finalized());
  const uint32_t num_labels = static_cast<uint32_t>(g.NumLabels());
  std::vector<uint32_t> order(num_labels);
  for (uint32_t l = 0; l < num_labels; ++l) order[l] = l;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    size_t ea = g.Extent(a).size(), eb = g.Extent(b).size();
    if (ea != eb) return ea > eb;
    return a < b;
  });

  std::vector<uint32_t> assignment(num_labels, 0);
  std::vector<uint64_t> load(num_shards, 0);
  for (uint32_t l : order) {
    uint32_t best = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    assignment[l] = best;
    load[best] += g.Extent(l).size();
  }
  return assignment;
}

std::vector<uint8_t> OwnedLabelFilter(
    const std::vector<uint32_t>& label_to_shard, uint32_t shard) {
  std::vector<uint8_t> owned(label_to_shard.size(), 0);
  for (size_t l = 0; l < label_to_shard.size(); ++l) {
    owned[l] = label_to_shard[l] == shard ? 1 : 0;
  }
  return owned;
}

}  // namespace fgpm
