#include "common/intersect_kernels.h"

#include <atomic>

#include "common/sorted_vector.h"

#if defined(__x86_64__) || defined(_M_X64)
#define FGPM_X86 1
#include <immintrin.h>
#endif

namespace fgpm {
namespace {

// --- shared scalar pieces ---------------------------------------------------

// Plain branch-light merge — the seed kernel, also every SIMD kernel's
// tail loop once fewer than a full block remains on either side.
bool SeedIntersects(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb) {
  size_t ia = 0, ib = 0;
  while (ia < na && ib < nb) {
    const uint32_t va = a[ia], vb = b[ib];
    if (va == vb) return true;
    ia += (va < vb);
    ib += (vb < va);
  }
  return false;
}

size_t SeedIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out) {
  size_t ia = 0, ib = 0, n = 0;
  while (ia < na && ib < nb) {
    const uint32_t va = a[ia], vb = b[ib];
    if (va == vb) out[n++] = va;
    ia += (va <= vb);
    ib += (vb <= va);
  }
  return n;
}

// True if either 32-bit lane of `w` is zero (Hacker's Delight 6-2,
// widened from bytes to 32-bit fields).
inline bool HasZeroLane(uint64_t w) {
  return ((w - 0x0000000100000001ULL) & ~w & 0x8000000080000000ULL) != 0;
}

// Unrolled branch-free two-pointer: cross-compare 2x2 element blocks.
// The four XOR differences are packed two-per-64-bit-word and tested
// with one has-zero-lane check each; cursors advance by comparison
// masks. Inputs must be strictly increasing: when a1 < b1 the skipped
// pair (a0, a1) cannot match any later b (all > b1 > a1), and a1 == b1
// would already have returned true, so exactly one side advances.
bool ScalarIntersects(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb) {
  size_t ia = 0, ib = 0;
  while (ia + 2 <= na && ib + 2 <= nb) {
    const uint32_t a0 = a[ia], a1 = a[ia + 1];
    const uint32_t b0 = b[ib], b1 = b[ib + 1];
    const uint64_t d0 =
        (static_cast<uint64_t>(a0 ^ b0) << 32) | (a0 ^ b1);
    const uint64_t d1 =
        (static_cast<uint64_t>(a1 ^ b0) << 32) | (a1 ^ b1);
    if (HasZeroLane(d0) || HasZeroLane(d1)) return true;
    ia += 2 * (a1 < b1);
    ib += 2 * (b1 < a1);
  }
  return SeedIntersects(a + ia, na - ia, b + ib, nb - ib);
}

#ifdef FGPM_X86

// --- SSE 4x4 kernels --------------------------------------------------------

inline __m128i CrossCompare4(__m128i va, __m128i vb) {
  __m128i m = _mm_cmpeq_epi32(va, vb);
  m = _mm_or_si128(
      m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
  m = _mm_or_si128(
      m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
  m = _mm_or_si128(
      m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
  return m;
}

bool SseIntersects(const uint32_t* a, size_t na, const uint32_t* b,
                   size_t nb) {
  size_t ia = 0, ib = 0;
  const size_t na4 = na & ~size_t{3}, nb4 = nb & ~size_t{3};
  if (ia < na4 && ib < nb4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
    while (true) {
      if (_mm_movemask_epi8(CrossCompare4(va, vb))) return true;
      const uint32_t amax = a[ia + 3], bmax = b[ib + 3];
      // Skipping a block is safe: its elements were compared against the
      // whole current opposite block, and later opposite elements are
      // strictly larger than bmax >= this block's max.
      if (amax <= bmax) {
        ia += 4;
        if (ia == na4) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
      }
      if (bmax <= amax) {
        ib += 4;
        if (ib == nb4) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
      }
    }
  }
  return SeedIntersects(a + ia, na - ia, b + ib, nb - ib);
}

// Lane-compaction table for the materializing kernel: entry m moves the
// set lanes of a 4-bit match mask to the front (byte shuffle indices).
struct ShuffleTable {
  alignas(16) uint8_t rows[16][16];
  ShuffleTable() {
    for (int m = 0; m < 16; ++m) {
      int k = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (!(m & (1 << lane))) continue;
        for (int byte = 0; byte < 4; ++byte) {
          rows[m][4 * k + byte] = static_cast<uint8_t>(4 * lane + byte);
        }
        ++k;
      }
      for (int j = 4 * k; j < 16; ++j) rows[m][j] = 0x80;  // zero fill
    }
  }
};
const ShuffleTable kShuffle;

__attribute__((target("ssse3"))) size_t SseIntersect(const uint32_t* a,
                                                     size_t na,
                                                     const uint32_t* b,
                                                     size_t nb,
                                                     uint32_t* out) {
  size_t ia = 0, ib = 0, n = 0;
  const size_t na4 = na & ~size_t{3}, nb4 = nb & ~size_t{3};
  if (ia < na4 && ib < nb4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
    while (true) {
      const __m128i eq = CrossCompare4(va, vb);
      // One mask bit per a-lane that matched some b in the block. Each a
      // value matches at most once across all b blocks (strict sets), so
      // emitting per block pair never duplicates and stays sorted.
      const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
      if (mask) {
        const __m128i sh = _mm_load_si128(
            reinterpret_cast<const __m128i*>(kShuffle.rows[mask]));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n),
                         _mm_shuffle_epi8(va, sh));
        n += static_cast<size_t>(__builtin_popcount(
            static_cast<unsigned>(mask)));
      }
      const uint32_t amax = a[ia + 3], bmax = b[ib + 3];
      if (amax <= bmax) {
        ia += 4;
        if (ia == na4) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
      }
      if (bmax <= amax) {
        ib += 4;
        if (ib == nb4) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
      }
    }
  }
  return n + SeedIntersect(a + ia, na - ia, b + ib, nb - ib, out + n);
}

// --- AVX2 8x8 boolean kernel ------------------------------------------------

__attribute__((target("avx2"))) bool Avx2Intersects(const uint32_t* a,
                                                    size_t na,
                                                    const uint32_t* b,
                                                    size_t nb) {
  size_t ia = 0, ib = 0;
  const size_t na8 = na & ~size_t{7}, nb8 = nb & ~size_t{7};
  if (ia < na8 && ib < nb8) {
    const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ia));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
    while (true) {
      __m256i rot = vb;
      __m256i m = _mm256_cmpeq_epi32(va, rot);
      for (int k = 1; k < 8; ++k) {
        rot = _mm256_permutevar8x32_epi32(rot, r1);
        m = _mm256_or_si256(m, _mm256_cmpeq_epi32(va, rot));
      }
      if (!_mm256_testz_si256(m, m)) return true;
      const uint32_t amax = a[ia + 7], bmax = b[ib + 7];
      if (amax <= bmax) {
        ia += 8;
        if (ia == na8) break;
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ia));
      }
      if (bmax <= amax) {
        ib += 8;
        if (ib == nb8) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
      }
    }
  }
  return SseIntersects(a + ia, na - ia, b + ib, nb - ib);
}

#endif  // FGPM_X86

// --- dispatch ---------------------------------------------------------------

struct Vtbl {
  bool (*intersects)(const uint32_t*, size_t, const uint32_t*, size_t);
  size_t (*intersect)(const uint32_t*, size_t, const uint32_t*, size_t,
                      uint32_t*);
  IntersectKernel kind;
};

constexpr Vtbl kSeedVtbl{SeedIntersects, SeedIntersect,
                         IntersectKernel::kSeed};
constexpr Vtbl kScalarVtbl{ScalarIntersects, SeedIntersect,
                           IntersectKernel::kScalar};
#ifdef FGPM_X86
// The boolean 4x4 kernel is pure SSE2 (x86-64 baseline); the lane
// compaction of the materializing variant needs SSSE3's byte shuffle,
// so pre-SSSE3 CPUs pair the SSE2 probe with the scalar emitter.
constexpr Vtbl kSseVtbl{SseIntersects, SseIntersect, IntersectKernel::kSse};
constexpr Vtbl kSse2Vtbl{SseIntersects, SeedIntersect, IntersectKernel::kSse};
// AVX2 accelerates the boolean probe; materializing stays on the SSE
// compaction kernel (emission is store-bound, wider blocks do not pay).
constexpr Vtbl kAvx2Vtbl{Avx2Intersects, SseIntersect,
                         IntersectKernel::kAvx2};
#endif

const Vtbl* Detect() {
#ifdef FGPM_X86
  if (__builtin_cpu_supports("avx2")) return &kAvx2Vtbl;
  if (__builtin_cpu_supports("ssse3")) return &kSseVtbl;
  return &kSse2Vtbl;
#else
  return &kScalarVtbl;
#endif
}

const Vtbl* Lookup(IntersectKernel k) {
  switch (k) {
    case IntersectKernel::kSeed:
      return &kSeedVtbl;
    case IntersectKernel::kScalar:
      return &kScalarVtbl;
#ifdef FGPM_X86
    case IntersectKernel::kSse:
      return __builtin_cpu_supports("ssse3") ? &kSseVtbl : &kSse2Vtbl;
    case IntersectKernel::kAvx2:
      return __builtin_cpu_supports("avx2") ? &kAvx2Vtbl : nullptr;
#endif
    default:
      return nullptr;
  }
}

std::atomic<const Vtbl*> g_forced{nullptr};

inline const Vtbl* Active() {
  const Vtbl* forced = g_forced.load(std::memory_order_relaxed);
  if (forced) return forced;
  static const Vtbl* const kAuto = Detect();
  return kAuto;
}

}  // namespace

bool SetIntersectKernel(IntersectKernel k) {
  if (k == IntersectKernel::kAuto) {
    g_forced.store(nullptr, std::memory_order_relaxed);
    return true;
  }
  const Vtbl* v = Lookup(k);
  if (!v) return false;
  g_forced.store(v, std::memory_order_relaxed);
  return true;
}

IntersectKernel ActiveIntersectKernel() { return Active()->kind; }

const char* IntersectKernelName(IntersectKernel k) {
  switch (k) {
    case IntersectKernel::kAuto:
      return "auto";
    case IntersectKernel::kSeed:
      return "seed";
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kSse:
      return "sse";
    case IntersectKernel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool IntersectsU32(const uint32_t* a, size_t na, const uint32_t* b,
                   size_t nb) {
  return Active()->intersects(a, na, b, nb);
}

size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  return Active()->intersect(a, na, b, nb, out);
}

// --- k-way intersection -----------------------------------------------------

void BuildChunkedBitmap(const uint32_t* data, size_t n,
                        std::vector<uint32_t>* chunk_ids,
                        std::vector<uint64_t>* words) {
  uint32_t cur = 0;
  bool open = false;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = data[i];
    const uint32_t chunk = v >> 8;
    if (!open || chunk != cur) {
      chunk_ids->push_back(chunk);
      words->insert(words->end(), 4, 0);
      cur = chunk;
      open = true;
    }
    words->at(words->size() - 4 + ((v >> 6) & 3)) |= uint64_t{1}
                                                     << (v & 63);
  }
}

bool ChunkedBitmapContains(const SortedSetView& s, uint32_t v) {
  const uint32_t chunk = v >> 8;
  // Branchless-ish binary search over the sorted chunk-id list.
  size_t lo = 0, hi = s.num_chunks;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (s.chunk_ids[mid] < chunk) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == s.num_chunks || s.chunk_ids[lo] != chunk) return false;
  const uint64_t w = s.chunk_words[lo * 4 + ((v >> 6) & 3)];
  return (w >> (v & 63)) & 1;
}

namespace {

// One pruning pass: keeps the survivors of `cur` that are also in `s`.
// Membership and gallop modes compact in place (writes trail reads);
// the balanced SIMD kernel stores whole blocks past the write cursor, so
// it must target a buffer distinct from `cur`.
size_t PruneAgainst(const uint32_t* cur, size_t n, const SortedSetView& s,
                    uint32_t* dst) {
  // Sidecar membership probes win once the set dwarfs the survivor
  // list — each probe is a chunk lookup instead of a merge step.
  if (s.has_bitmap() && s.size >= 2 * n) {
    size_t w = 0;
    for (size_t j = 0; j < n; ++j) {
      if (ChunkedBitmapContains(s, cur[j])) dst[w++] = cur[j];
    }
    return w;
  }
  if (s.size > kGallopRatio * (n + 1)) {
    size_t w = 0, pos = 0;
    for (size_t j = 0; j < n; ++j) {
      pos = gallop_internal::GallopLowerBound(s.data, pos, s.size, cur[j]);
      if (pos == s.size) break;
      if (s.data[pos] == cur[j]) dst[w++] = cur[j];
    }
    return w;
  }
  return IntersectU32(cur, n, s.data, s.size, dst);
}

}  // namespace

size_t IntersectKWayU32(const SortedSetView* sets, size_t k, uint32_t* out,
                        uint32_t* tmp, KWayStats* stats) {
  if (k == 0) return 0;
  // Order by ascending size so the smallest set drives and each pass
  // shrinks the survivor list as fast as possible.
  size_t order[64];
  size_t ko = 0;
  for (size_t i = 0; i < k && ko < 64; ++i) order[ko++] = i;
  for (size_t i = 1; i < ko; ++i) {
    const size_t oi = order[i];
    size_t j = i;
    while (j > 0 && sets[order[j - 1]].size > sets[oi].size) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = oi;
  }
  const SortedSetView& first = sets[order[0]];
  if (first.size == 0) return 0;  // empty input: nothing survives any set
  const uint32_t* cur = first.data;
  size_t n = first.size;
  for (size_t i = 1; i < ko && n > 0; ++i) {
    const SortedSetView& s = sets[order[i]];
    if (stats) stats->probes += n;
    // The SIMD kernel cannot compact in place; ping-pong between the
    // caller's two buffers (the borrowed input set is never a target).
    uint32_t* dst = (cur == out) ? tmp : out;
    n = PruneAgainst(cur, n, s, dst);
    cur = dst;
  }
  if (cur != out) {
    for (size_t j = 0; j < n; ++j) out[j] = cur[j];
  }
  if (stats) stats->hits += n;
  return n;
}

}  // namespace fgpm
