// Process-wide work-stealing morsel scheduler.
//
// One Scheduler serves every parallel region in the process: executor
// ParallelFor fan-outs, 2-hop builds, result-cache replays and the
// query server's intra-query work all share a single set of workers
// instead of one fork-join pool per executor. Work is decomposed into
// *morsels* — contiguous runs of the caller's deterministic chunks —
// held in per-worker bounded Chase-Lev deques (LIFO owner pop for
// cache locality, FIFO steal for load balancing).
//
// Three properties distinguish it from the PR 1 fork-join pool
// (preserved as ForkJoinPool in common/parallel.h for A/B):
//
//   * Work stealing. An idle participant steals the oldest morsel of
//     a random victim, so a skewed region (or a skewed mix of
//     concurrent regions — the server's hot-shard case) load-balances
//     without a shared cursor.
//   * Nested / reentrant regions. A ParallelFor body may itself call
//     ParallelFor: the outer worker simply opens a child region and
//     participates in it. While blocked on any region a participant
//     keeps executing morsels — its own region's first, then stolen
//     ones — so no thread ever idles while work exists.
//   * Adaptive morsel sizing. A region starts as at most `width`
//     coarse morsels (near-zero scheduling overhead when nobody is
//     idle); whenever some participant is starving — failing to find
//     work, or armed to be woken for it — running morsels split off
//     the back half of their remaining chunk range down to a floor of
//     SchedTuning::morsel_rows rows.
//
// Determinism: the scheduler never changes the chunk decomposition.
// Every chunk of [0, n) is executed exactly once and the body receives
// the same (chunk, begin, end) triple it would get sequentially;
// morsels only group chunks for scheduling. The `worker` id passed to
// the body is a region-local participant slot in [0, width) — at most
// `width` slots are ever concurrently active per region, so per-worker
// scratch sized to the owning pool stays valid even though morsels may
// physically run on any thread in the process.
//
// External participation (the query server): any thread may call
// TryHelp() to run one queued morsel, HasWork() for a cheap emptiness
// probe, and Add/ArmWakeHook() to get woken (e.g. an eventfd write
// into an epoll loop) when work is published while it blocks. Armed
// hooks count as starving, so a long-running morsel splits for a
// server worker that is parked in epoll_wait.
#ifndef FGPM_COMMON_SCHEDULER_H_
#define FGPM_COMMON_SCHEDULER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace fgpm {

struct SchedRegion;  // internal (scheduler.cc); one ParallelFor call

// Tuning knobs, process-wide. Defaults come from the environment on
// first use (FGPM_SCHED_MORSEL_ROWS, FGPM_SCHED_STEAL_SPIN) so deployed
// binaries can be tuned without a rebuild; SetSchedTuning overrides.
struct SchedTuning {
  // Morsel split floor in *rows* (not chunks): a morsel stops splitting
  // once its remaining range is <= max(1, morsel_rows / chunk_size)
  // chunks. Smaller = finer balancing, more scheduling traffic.
  size_t morsel_rows = 1024;
  // Failed steal sweeps a starving participant spins (with yields)
  // before parking on the scheduler's condition variable.
  int steal_spin = 16;
};
void SetSchedTuning(const SchedTuning& t);
SchedTuning GetSchedTuning();

// Bounded single-owner work-stealing deque (Chase-Lev). The owning
// thread pushes and pops at the bottom (LIFO); any thread steals from
// the top (FIFO). Bounded: Push returns false when full and the caller
// keeps the task (runs it inline) — no growth, no reclamation problem.
// Memory ordering follows Le et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", with the standalone fences
// replaced by seq_cst accesses on top_/bottom_ (ThreadSanitizer does
// not model standalone fences).
class TaskDeque {
 public:
  static constexpr size_t kCapacity = 1024;

  // Owner only. False when full.
  bool Push(void* task) {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    uint64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= kCapacity) return false;
    buf_[b & kMask].store(task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  // Owner only. Null when empty.
  void* Pop() {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    if (b == top_.load(std::memory_order_relaxed)) return nullptr;  // fast out
    --b;
    bottom_.store(b, std::memory_order_seq_cst);
    uint64_t t = top_.load(std::memory_order_seq_cst);
    void* task = nullptr;
    if (t <= b) {
      task = buf_[b & kMask].load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race against thieves via the top CAS.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  // Any thread. Null when empty or a race was lost.
  void* Steal() {
    uint64_t t = top_.load(std::memory_order_seq_cst);
    uint64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    void* task = buf_[t & kMask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  bool Empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

  // Racy depth estimate for profiler sampling (any thread).
  size_t SizeApprox() const {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    uint64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  static constexpr size_t kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

  alignas(64) std::atomic<uint64_t> top_{0};
  alignas(64) std::atomic<uint64_t> bottom_{0};
  std::array<std::atomic<void*>, kCapacity> buf_{};
};

class Scheduler {
 public:
  // body(worker, chunk, begin, end) — see ThreadPool::Body.
  using Body = std::function<void(unsigned worker, size_t chunk, size_t begin,
                                  size_t end)>;

  // Per-thread scheduler state (defined in scheduler.cc; public only so
  // the thread-local participant pointer can name it).
  struct Worker;

  // The process-wide scheduler (constructed on first use, destroyed at
  // process exit after joining its internal workers).
  static Scheduler& Global();

  // Makes sure enough participants exist for a region of `width`
  // concurrent workers: spawns internal worker threads so that
  // internal + reserved-external >= width - 1 helpers are available
  // (the caller is the width-th participant). Idempotent, monotonic.
  void EnsureWidth(unsigned width);

  // Declares that `n` external threads (e.g. server workers) will
  // participate via TryHelp/ParallelFor, so EnsureWidth spawns that
  // many fewer internal threads — the unification that removes the
  // server's executor-inside-server oversubscription.
  void ReserveExternal(unsigned n);
  void ReleaseExternal(unsigned n);

  // Runs `body` over every chunk of [0, n), at most `width` concurrent
  // participants, blocking until all chunks are done. Reentrant: may be
  // called from inside another region's body. Callers normally go
  // through ThreadPool::ParallelFor, which handles the inline cases
  // (width 1, single chunk) without touching the scheduler.
  void ParallelFor(size_t n, size_t chunk_size, const Body& body,
                   unsigned width);

  // Runs at most one queued morsel on the calling thread. Returns true
  // if it made progress. Attaches the thread on first use.
  bool TryHelp();

  // Cheap probe: any morsels queued anywhere?
  bool HasWork() const {
    return queued_.load(std::memory_order_relaxed) > 0;
  }

  // Registers/arms an external wake hook. An *armed* hook is invoked
  // (once, then disarmed) when work is published; while armed it counts
  // as a starving participant so running morsels split for it. Arm(id,
  // true) just before blocking outside the scheduler (epoll), Arm(id,
  // false) when back. Remove disarms and drops the hook.
  int AddWakeHook(std::function<void()> hook);
  void ArmWakeHook(int id, bool armed);
  void RemoveWakeHook(int id);

  // Attaches the calling thread explicitly (TryHelp/ParallelFor attach
  // lazily with a null tag). `tag` labels the worker in Stats() — the
  // server tags its workers "srv<k>" so benches can attribute busy time
  // to shards. Returns the worker index.
  unsigned AttachCurrentThread(const char* tag);

  // Drains the calling thread's deque (executing any stranded morsels)
  // and releases its worker slot for reuse. Called by server workers on
  // shutdown; ordinary threads may simply exit — their slot is
  // reclaimed by the thread-exit hook.
  void DetachCurrentThread();

  unsigned internal_workers() const {
    return internal_count_.load(std::memory_order_relaxed);
  }

  struct WorkerStats {
    std::string tag;       // "" internal spawn order, else AttachCurrentThread tag
    bool internal = false;
    uint64_t busy_ns = 0;  // time inside morsel bodies
    uint64_t tasks = 0;    // morsels executed
    uint64_t steals = 0;   // morsels obtained from another deque
    uint64_t splits = 0;   // morsels split off for starving participants
  };
  struct Stats {
    uint64_t regions = 0;      // ParallelFor calls routed here
    uint64_t tasks = 0;        // morsels executed
    uint64_t steals = 0;
    uint64_t steal_fails = 0;  // full sweeps that found nothing
    uint64_t splits = 0;
    int64_t queued = 0;        // morsels currently in deques
    uint64_t wall_ns = 0;      // since scheduler start (busy-fraction base)
    std::vector<WorkerStats> workers;
  };
  Stats GetStats() const;

  // --- profiler support ------------------------------------------------

  // Interns `label` into a process-lifetime table and returns a stable
  // pointer, so a sampling profiler can read worker labels as a single
  // relaxed atomic<const char*> load with no lifetime question. Equal
  // strings return the same pointer. Intended for a small, bounded set
  // of operator/phase labels, not per-row data.
  static const char* InternLabel(std::string_view label);

  // Global gate: when off (the default), morsels skip label publication
  // entirely — the profiler costs one relaxed load per morsel.
  static void SetProfilingEnabled(bool on);
  static bool ProfilingEnabled();

  enum class WorkerState : uint8_t { kIdle = 0, kRunning = 1, kStarving = 2 };

  // One sampled observation of a worker, taken racily (see
  // SampleWorkers). `label` is an interned pointer or null.
  struct WorkerSample {
    std::string tag;
    bool internal = false;
    WorkerState state = WorkerState::kIdle;
    const char* label = nullptr;
    size_t deque_depth = 0;
    uint64_t steals = 0;
  };
  // Snapshots every worker's running label / state / deque depth for
  // the sampling profiler. Racy by design: each field is an independent
  // relaxed load, so a sample may mix moments — fine for statistical
  // attribution.
  void SampleWorkers(std::vector<WorkerSample>* out) const;

  ~Scheduler();

 private:
  struct WakeHook {
    std::function<void()> fn;
    std::atomic<bool> armed{false};
    bool removed = false;
  };

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Worker* Attach(const char* tag, bool internal);
  void InternalLoop(Worker* self);
  // Pops the caller's deque, then sweeps victims. False after one full
  // failed sweep.
  bool FindTask(Worker* self, void** out);
  // Executes one morsel. False when the task had to be requeued because
  // its region already has `width` active participants; with
  // may_requeue false it instead waits for a slot and always runs.
  bool RunTask(Worker* self, void* task, bool may_requeue);
  // Wakes sleeping participants and armed hooks after publishing work.
  void Publish();
  // Parks the caller until work appears, `region` (if non-null)
  // completes, or a timeout elapses. Counts as starving while parked.
  void WaitForWork(const SchedRegion* region);

  static constexpr size_t kMaxWorkers = 256;

  std::array<std::unique_ptr<Worker>, kMaxWorkers> workers_;
  std::atomic<uint32_t> num_workers_{0};  // filled prefix of workers_

  std::atomic<int64_t> queued_{0};    // morsels in deques
  std::atomic<int32_t> starving_{0};  // parked participants + armed hooks

  // Sleep/wake: one epoch-counted condvar shared by internal workers
  // and blocked region callers. Publish() and region completion bump
  // the epoch; sleepers re-check their predicate on every wake.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  uint64_t sleep_epoch_ = 0;
  std::atomic<int32_t> sleepers_{0};

  // Guards thread spawning, hook list mutation and worker tags (stats).
  mutable std::mutex spawn_mu_;
  std::vector<std::thread> internal_threads_;
  std::atomic<uint32_t> internal_count_{0};
  std::atomic<uint32_t> reserved_external_{0};
  unsigned ensured_width_ = 1;
  std::vector<std::unique_ptr<WakeHook>> hooks_;
  std::atomic<bool> has_hooks_{false};
  std::atomic<bool> shutdown_{false};

  // Aggregate counters (per-worker ones live in Worker).
  std::atomic<uint64_t> regions_{0};
  std::atomic<uint64_t> steal_fails_{0};
  std::chrono::steady_clock::time_point start_;
};

// RAII operator/phase label for the calling thread. While in scope,
// regions this thread submits carry `interned_label` (see
// Scheduler::InternLabel), and every worker running one of their
// morsels publishes it for SampleWorkers — so a profiler sample reads
// "what phase is this worker executing". Nests (restores the previous
// label on destruction). Near-free when profiling is disabled.
class ScopedSchedLabel {
 public:
  explicit ScopedSchedLabel(const char* interned_label);
  ~ScopedSchedLabel();
  ScopedSchedLabel(const ScopedSchedLabel&) = delete;
  ScopedSchedLabel& operator=(const ScopedSchedLabel&) = delete;

 private:
  const char* prev_;
};

}  // namespace fgpm

#endif  // FGPM_COMMON_SCHEDULER_H_
