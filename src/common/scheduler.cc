#include "common/scheduler.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <set>

#include "common/logging.h"

namespace fgpm {
namespace {

// Profiler gate + interned-label table. The table is append-only and
// node-based, so c_str() pointers stay valid for the process lifetime —
// which is what lets worker labels be plain atomic<const char*>.
std::atomic<bool> g_profiling{false};
std::mutex g_label_mu;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::mutex g_tuning_mu;
SchedTuning g_tuning;
bool g_tuning_init = false;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<size_t>(parsed)
                                          : fallback;
}

SchedTuning TuningLocked() {
  if (!g_tuning_init) {
    g_tuning.morsel_rows =
        std::max<size_t>(1, EnvSize("FGPM_SCHED_MORSEL_ROWS", 1024));
    g_tuning.steal_spin =
        static_cast<int>(EnvSize("FGPM_SCHED_STEAL_SPIN", 16));
    g_tuning_init = true;
  }
  return g_tuning;
}

}  // namespace

void SetSchedTuning(const SchedTuning& t) {
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  g_tuning = t;
  g_tuning.morsel_rows = std::max<size_t>(1, g_tuning.morsel_rows);
  g_tuning.steal_spin = std::max(0, g_tuning.steal_spin);
  g_tuning_init = true;
}

SchedTuning GetSchedTuning() {
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  return TuningLocked();
}

// One ParallelFor call. Lives on the caller's stack: the caller only
// returns once every chunk is done AND every participant has released
// its slot (the release-store of slot_mask is each helper's final
// access to the region, so no helper can touch freed memory).
struct SchedRegion {
  const Scheduler::Body* body = nullptr;
  size_t n = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  // Interned phase label of the submitting thread (profiling only).
  const char* label = nullptr;
  unsigned width = 1;           // max concurrent participants (<= 64)
  size_t min_split_chunks = 1;  // adaptive-split floor
  std::atomic<size_t> chunks_done{0};
  std::atomic<uint64_t> slot_mask{0};
  std::atomic<bool> done{false};

  // Region-local participant slot in [0, width), or -1 when `width`
  // participants are already active.
  int AcquireSlot() {
    uint64_t all = (width >= 64) ? ~0ull : ((1ull << width) - 1);
    uint64_t mask = slot_mask.load(std::memory_order_relaxed);
    while (true) {
      uint64_t free = ~mask & all;
      if (free == 0) return -1;
      int slot = std::countr_zero(free);
      if (slot_mask.compare_exchange_weak(mask, mask | (1ull << slot),
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return slot;
      }
    }
  }
  void ReleaseSlot(int slot) {
    slot_mask.fetch_and(~(1ull << slot), std::memory_order_release);
  }
};

namespace {

// A morsel: a contiguous run of chunks of one region. Heap-allocated on
// submit/split, deleted by whichever participant executes it; a region
// never completes while one of its tasks is queued (those chunks are
// not done), so a queued Task* always points at a live region.
struct Task {
  SchedRegion* region;
  size_t begin_chunk;
  size_t end_chunk;
};

}  // namespace

struct Scheduler::Worker {
  TaskDeque deque;
  std::atomic<bool> attached{false};
  uint32_t index = 0;
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  // Guarded by Scheduler::spawn_mu_ (written on attach, read by stats).
  bool internal = false;
  char tag[16] = {0};
  // Owner-written, racily read by GetStats.
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> splits{0};
  // Profiler-sampled: interned label of the morsel being executed (or
  // the thread's scoped label) and a coarse run state. Only written
  // when profiling is enabled.
  std::atomic<const char*> label{nullptr};
  std::atomic<uint8_t> state{0};  // Scheduler::WorkerState

  uint32_t NextVictim(uint32_t n) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<uint32_t>(rng % n);
  }
};

namespace {

thread_local Scheduler::Worker* tls_worker = nullptr;
thread_local const char* tls_label = nullptr;

// Reclaims the worker slot when a participating thread exits without an
// explicit DetachCurrentThread (test threads, executor owners). Main-
// thread TLS destructors run before static destructors, and any other
// thread exits while the process lives, so the singleton is valid here.
struct TlsDetacher {
  bool armed = false;
  ~TlsDetacher() {
    if (armed) Scheduler::Global().DetachCurrentThread();
  }
};
thread_local TlsDetacher tls_detacher;

}  // namespace

Scheduler& Scheduler::Global() {
  static Scheduler s;
  return s;
}

Scheduler::Scheduler() : start_(std::chrono::steady_clock::now()) {}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ++sleep_epoch_;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : internal_threads_) t.join();
}

Scheduler::Worker* Scheduler::Attach(const char* tag, bool internal) {
  if (tls_worker != nullptr) {
    if (tag != nullptr) {
      std::lock_guard<std::mutex> lock(spawn_mu_);
      std::strncpy(tls_worker->tag, tag, sizeof(tls_worker->tag) - 1);
    }
    return tls_worker;
  }
  // Reuse a released slot (its counters carry over into Stats), else
  // grow the prefix of workers_.
  uint32_t n = num_workers_.load(std::memory_order_acquire);
  Worker* w = nullptr;
  for (uint32_t i = 0; i < n; ++i) {
    Worker* cand = workers_[i].get();
    if (!cand->attached.load(std::memory_order_relaxed) &&
        !cand->attached.exchange(true, std::memory_order_acq_rel)) {
      w = cand;
      break;
    }
  }
  std::lock_guard<std::mutex> lock(spawn_mu_);
  if (w == nullptr) {
    n = num_workers_.load(std::memory_order_relaxed);
    FGPM_CHECK(n < kMaxWorkers);
    auto owned = std::make_unique<Worker>();
    owned->index = n;
    owned->attached.store(true, std::memory_order_relaxed);
    owned->rng ^= (n + 1) * 0xbf58476d1ce4e5b9ull;
    w = owned.get();
    workers_[n] = std::move(owned);
    num_workers_.store(n + 1, std::memory_order_release);
  }
  w->internal = internal;
  w->tag[0] = '\0';
  if (tag != nullptr) std::strncpy(w->tag, tag, sizeof(w->tag) - 1);
  tls_worker = w;
  tls_detacher.armed = true;
  return w;
}

unsigned Scheduler::AttachCurrentThread(const char* tag) {
  return Attach(tag, /*internal=*/false)->index;
}

void Scheduler::DetachCurrentThread() {
  Worker* self = tls_worker;
  if (self == nullptr) return;
  // Execute any stranded morsels so their regions can complete. They
  // stay stealable until popped, so no live region is ever stranded.
  void* task = nullptr;
  while ((task = self->deque.Pop()) != nullptr) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    RunTask(self, task, /*may_requeue=*/false);
  }
  tls_worker = nullptr;
  tls_detacher.armed = false;
  self->attached.store(false, std::memory_order_release);
}

void Scheduler::EnsureWidth(unsigned width) {
  if (width <= 1) return;
  std::lock_guard<std::mutex> lock(spawn_mu_);
  if (width <= ensured_width_) return;
  ensured_width_ = width;
  uint32_t reserved = reserved_external_.load(std::memory_order_relaxed);
  // The caller of a region is one participant; reserved externals are
  // expected to help. Spawn internal workers for the remainder — this
  // is what lets server and executors share one set of threads instead
  // of multiplying them.
  unsigned need =
      reserved > 0 ? (width > reserved ? width - reserved : 0) : width - 1;
  need = std::min<unsigned>(need, kMaxWorkers / 2);
  while (internal_count_.load(std::memory_order_relaxed) < need) {
    internal_count_.fetch_add(1, std::memory_order_relaxed);
    internal_threads_.emplace_back([this] {
      Worker* self = Attach(nullptr, /*internal=*/true);
      InternalLoop(self);
      DetachCurrentThread();
    });
  }
}

void Scheduler::ReserveExternal(unsigned n) {
  reserved_external_.fetch_add(n, std::memory_order_relaxed);
}

void Scheduler::ReleaseExternal(unsigned n) {
  reserved_external_.fetch_sub(n, std::memory_order_relaxed);
}

bool Scheduler::FindTask(Worker* self, void** out) {
  void* task = self->deque.Pop();
  if (task != nullptr) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    *out = task;
    return true;
  }
  uint32_t n = num_workers_.load(std::memory_order_acquire);
  if (n > 1) {
    uint32_t start = self->NextVictim(n);
    for (uint32_t i = 0; i < n; ++i) {
      Worker* victim = workers_[(start + i) % n].get();
      if (victim == self) continue;
      task = victim->deque.Steal();
      if (task != nullptr) {
        queued_.fetch_sub(1, std::memory_order_relaxed);
        self->steals.fetch_add(1, std::memory_order_relaxed);
        *out = task;
        return true;
      }
    }
  }
  steal_fails_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool Scheduler::RunTask(Worker* self, void* opaque, bool may_requeue) {
  Task* t = static_cast<Task*>(opaque);
  SchedRegion* r = t->region;
  int slot = r->AcquireSlot();
  if (slot < 0) {
    // `width` participants already active in this region.
    if (may_requeue && self->deque.Push(t)) {
      // Keep the morsel stealable (its region's waiter sweeps for it)
      // and report no progress so the caller yields before retrying.
      queued_.fetch_add(1, std::memory_order_relaxed);
      Publish();
      return false;
    }
    // Requeue unavailable (deque full, or draining on detach): wait for
    // a slot. Progress is guaranteed — slot holders are executing
    // chunks and release in finite time.
    while ((slot = r->AcquireSlot()) < 0) std::this_thread::yield();
  }
  size_t c0 = t->begin_chunk;
  size_t c1 = t->end_chunk;
  delete t;
  const bool prof = g_profiling.load(std::memory_order_relaxed);
  const char* prev_label = nullptr;
  if (prof) {
    prev_label = self->label.load(std::memory_order_relaxed);
    if (r->label != nullptr) {
      self->label.store(r->label, std::memory_order_relaxed);
    }
    self->state.store(static_cast<uint8_t>(Scheduler::WorkerState::kRunning),
                      std::memory_order_relaxed);
  }
  const uint64_t t0 = NowNs();
  size_t executed = 0;
  while (c0 < c1) {
    if (c1 - c0 > r->min_split_chunks &&
        starving_.load(std::memory_order_relaxed) > 0) {
      // Someone is starving: split off the back half for them.
      size_t mid = c0 + (c1 - c0 + 1) / 2;
      Task* tail = new Task{r, mid, c1};
      if (self->deque.Push(tail)) {
        queued_.fetch_add(1, std::memory_order_relaxed);
        self->splits.fetch_add(1, std::memory_order_relaxed);
        c1 = mid;
        Publish();
        continue;
      }
      delete tail;  // deque full: just keep the whole range
    }
    size_t begin = c0 * r->chunk_size;
    size_t end = std::min(r->n, begin + r->chunk_size);
    (*r->body)(static_cast<unsigned>(slot), c0, begin, end);
    ++c0;
    ++executed;
  }
  if (prof) {
    self->label.store(prev_label, std::memory_order_relaxed);
    self->state.store(static_cast<uint8_t>(Scheduler::WorkerState::kIdle),
                      std::memory_order_relaxed);
  }
  self->busy_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  self->tasks.fetch_add(1, std::memory_order_relaxed);
  size_t prev = r->chunks_done.fetch_add(executed, std::memory_order_acq_rel);
  bool last = prev + executed == r->num_chunks;
  if (last) r->done.store(true, std::memory_order_release);
  r->ReleaseSlot(slot);
  // `r` may be destroyed from here on (its caller returns once done &&
  // slot_mask == 0) — wake the waiter without touching `r` again.
  if (last) {
    {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      ++sleep_epoch_;
    }
    sleep_cv_.notify_all();
  }
  return true;
}

void Scheduler::Publish() {
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      ++sleep_epoch_;
    }
    sleep_cv_.notify_all();
  }
  if (has_hooks_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    for (auto& h : hooks_) {
      if (h->removed) continue;
      if (h->armed.exchange(false, std::memory_order_acq_rel)) {
        starving_.fetch_sub(1, std::memory_order_relaxed);
        h->fn();  // must not reenter the scheduler (holds spawn_mu_)
      }
    }
  }
}

void Scheduler::WaitForWork(const SchedRegion* region) {
  const int spin = GetSchedTuning().steal_spin;
  const bool prof = g_profiling.load(std::memory_order_relaxed);
  if (prof && tls_worker != nullptr) {
    tls_worker->state.store(static_cast<uint8_t>(WorkerState::kStarving),
                            std::memory_order_relaxed);
  }
  starving_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < spin; ++i) {
    if (HasWork() || shutdown_.load(std::memory_order_relaxed) ||
        (region != nullptr && region->done.load(std::memory_order_acquire))) {
      starving_.fetch_sub(1, std::memory_order_relaxed);
      if (prof && tls_worker != nullptr) {
        tls_worker->state.store(static_cast<uint8_t>(WorkerState::kIdle),
                                std::memory_order_relaxed);
      }
      return;
    }
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(sleep_mu_);
  uint64_t seen = sleep_epoch_;
  sleepers_.fetch_add(1, std::memory_order_relaxed);
  if (!(HasWork() || shutdown_.load(std::memory_order_relaxed) ||
        (region != nullptr && region->done.load(std::memory_order_acquire)))) {
    // Timed: correctness never depends on a wakeup arriving (a publish
    // can race the sleeper registration), only latency does.
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(2),
                       [&] { return sleep_epoch_ != seen; });
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
  starving_.fetch_sub(1, std::memory_order_relaxed);
  if (prof && tls_worker != nullptr) {
    tls_worker->state.store(static_cast<uint8_t>(WorkerState::kIdle),
                            std::memory_order_relaxed);
  }
}

void Scheduler::InternalLoop(Worker* self) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    void* task = nullptr;
    if (FindTask(self, &task)) {
      if (!RunTask(self, task, /*may_requeue=*/true)) {
        std::this_thread::yield();  // region slot-saturated; let it drain
      }
      continue;
    }
    WaitForWork(nullptr);
  }
}

bool Scheduler::TryHelp() {
  if (!HasWork()) return false;
  Worker* self = Attach(nullptr, /*internal=*/false);
  void* task = nullptr;
  if (!FindTask(self, &task)) return false;
  return RunTask(self, task, /*may_requeue=*/true);
}

void Scheduler::ParallelFor(size_t n, size_t chunk_size, const Body& body,
                            unsigned width) {
  FGPM_DCHECK(n > 0 && chunk_size > 0 && width > 1);
  EnsureWidth(width);
  Worker* self = Attach(nullptr, /*internal=*/false);
  regions_.fetch_add(1, std::memory_order_relaxed);

  SchedRegion r;
  r.body = &body;
  r.n = n;
  r.chunk_size = chunk_size;
  r.num_chunks = (n + chunk_size - 1) / chunk_size;
  if (g_profiling.load(std::memory_order_relaxed)) r.label = tls_label;
  r.width = std::min<unsigned>(width, 64);
  r.min_split_chunks =
      std::max<size_t>(1, GetSchedTuning().morsel_rows / chunk_size);

  // Initial decomposition: at most `width` coarse morsels, pushed in
  // reverse so the owner's LIFO pop walks chunks front-to-back while
  // thieves FIFO-steal from the back. Adaptive splits refine from here.
  size_t k = std::min<size_t>(r.width, r.num_chunks);
  size_t per = r.num_chunks / k;
  size_t rem = r.num_chunks % k;
  size_t queued_here = 0;
  for (size_t i = k; i-- > 0;) {
    size_t begin = i * per + std::min(i, rem);
    size_t end = begin + per + (i < rem ? 1 : 0);
    Task* t = new Task{&r, begin, end};
    if (self->deque.Push(t)) {
      ++queued_here;
    } else {
      // Deque full (deeply nested regions): run this morsel here and
      // now. Chunks still execute exactly once; only scheduling changes.
      RunTask(self, t, /*may_requeue=*/false);
    }
  }
  if (queued_here > 0) {
    queued_.fetch_add(static_cast<int64_t>(queued_here),
                      std::memory_order_relaxed);
    Publish();
  }

  // Participate until every chunk is done. While this region's morsels
  // are saturated or stolen, help whatever else is queued (nested and
  // sibling regions) instead of blocking.
  while (!r.done.load(std::memory_order_acquire)) {
    void* task = nullptr;
    if (FindTask(self, &task)) {
      if (!RunTask(self, task, /*may_requeue=*/true)) {
        std::this_thread::yield();
      }
      continue;
    }
    WaitForWork(&r);
  }
  // Wait for stragglers to release their slots so `r` can be destroyed.
  while (r.slot_mask.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

Scheduler::Stats Scheduler::GetStats() const {
  Stats s;
  s.regions = regions_.load(std::memory_order_relaxed);
  s.steal_fails = steal_fails_.load(std::memory_order_relaxed);
  s.queued = queued_.load(std::memory_order_relaxed);
  s.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  uint32_t n = num_workers_.load(std::memory_order_acquire);
  s.workers.reserve(n);
  std::lock_guard<std::mutex> lock(spawn_mu_);
  for (uint32_t i = 0; i < n; ++i) {
    const Worker* w = workers_[i].get();
    WorkerStats ws;
    ws.tag = w->tag;
    ws.internal = w->internal;
    ws.busy_ns = w->busy_ns.load(std::memory_order_relaxed);
    ws.tasks = w->tasks.load(std::memory_order_relaxed);
    ws.steals = w->steals.load(std::memory_order_relaxed);
    ws.splits = w->splits.load(std::memory_order_relaxed);
    s.tasks += ws.tasks;
    s.steals += ws.steals;
    s.splits += ws.splits;
    s.workers.push_back(std::move(ws));
  }
  return s;
}

const char* Scheduler::InternLabel(std::string_view label) {
  static std::set<std::string, std::less<>>* table =
      new std::set<std::string, std::less<>>();
  std::lock_guard<std::mutex> lock(g_label_mu);
  auto it = table->find(label);
  if (it == table->end()) it = table->emplace(label).first;
  return it->c_str();
}

void Scheduler::SetProfilingEnabled(bool on) {
  g_profiling.store(on, std::memory_order_relaxed);
}

bool Scheduler::ProfilingEnabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void Scheduler::SampleWorkers(std::vector<WorkerSample>* out) const {
  out->clear();
  uint32_t n = num_workers_.load(std::memory_order_acquire);
  out->reserve(n);
  std::lock_guard<std::mutex> lock(spawn_mu_);
  for (uint32_t i = 0; i < n; ++i) {
    const Worker* w = workers_[i].get();
    WorkerSample s;
    s.tag = w->tag;
    s.internal = w->internal;
    s.state = static_cast<WorkerState>(w->state.load(std::memory_order_relaxed));
    s.label = w->label.load(std::memory_order_relaxed);
    s.deque_depth = w->deque.SizeApprox();
    s.steals = w->steals.load(std::memory_order_relaxed);
    out->push_back(std::move(s));
  }
}

ScopedSchedLabel::ScopedSchedLabel(const char* interned_label) {
  prev_ = tls_label;
  tls_label = interned_label;
  if (Scheduler::ProfilingEnabled() && tls_worker != nullptr) {
    tls_worker->label.store(interned_label, std::memory_order_relaxed);
  }
}

ScopedSchedLabel::~ScopedSchedLabel() {
  if (Scheduler::ProfilingEnabled() && tls_worker != nullptr) {
    tls_worker->label.store(prev_, std::memory_order_relaxed);
  }
  tls_label = prev_;
}

int Scheduler::AddWakeHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  auto h = std::make_unique<WakeHook>();
  h->fn = std::move(hook);
  hooks_.push_back(std::move(h));
  has_hooks_.store(true, std::memory_order_relaxed);
  return static_cast<int>(hooks_.size()) - 1;
}

void Scheduler::ArmWakeHook(int id, bool armed) {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  if (id < 0 || id >= static_cast<int>(hooks_.size())) return;
  WakeHook* h = hooks_[id].get();
  if (h->removed) return;
  bool was = h->armed.exchange(armed, std::memory_order_acq_rel);
  if (armed && !was) starving_.fetch_add(1, std::memory_order_relaxed);
  if (!armed && was) starving_.fetch_sub(1, std::memory_order_relaxed);
}

void Scheduler::RemoveWakeHook(int id) {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  if (id < 0 || id >= static_cast<int>(hooks_.size())) return;
  WakeHook* h = hooks_[id].get();
  if (h->removed) return;
  if (h->armed.exchange(false, std::memory_order_acq_rel)) {
    starving_.fetch_sub(1, std::memory_order_relaxed);
  }
  h->removed = true;
}

}  // namespace fgpm
