// Wall-clock timing helpers used by the benchmark harness.
#ifndef FGPM_COMMON_TIMER_H_
#define FGPM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fgpm {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fgpm

#endif  // FGPM_COMMON_TIMER_H_
