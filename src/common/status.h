// Lightweight Status / Result types for error propagation without
// exceptions, in the spirit of absl::Status / arrow::Result.
#ifndef FGPM_COMMON_STATUS_H_
#define FGPM_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace fgpm {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kCorruption,
  kDeadlineExceeded,
};

// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Result<T>: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fgpm

// Propagates a non-OK status from an expression.
#define FGPM_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::fgpm::Status _fgpm_st = (expr);             \
    if (!_fgpm_st.ok()) return _fgpm_st;          \
  } while (0)

// Assigns the value of a Result expression or propagates its status.
#define FGPM_ASSIGN_OR_RETURN(lhs, expr)          \
  FGPM_ASSIGN_OR_RETURN_IMPL_(                    \
      FGPM_STATUS_CONCAT_(_fgpm_res, __LINE__), lhs, expr)
#define FGPM_STATUS_CONCAT_INNER_(a, b) a##b
#define FGPM_STATUS_CONCAT_(a, b) FGPM_STATUS_CONCAT_INNER_(a, b)
#define FGPM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // FGPM_COMMON_STATUS_H_
