#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace fgpm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FGPM_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method (unbiased).
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  FGPM_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  ZipfDistribution d(n, theta);
  return d.Sample(this);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  FGPM_CHECK(n > 0);
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace fgpm
