// Minimal CHECK macros. Failures print to stderr and abort — used for
// internal invariant violations only; recoverable errors use Status.
#ifndef FGPM_COMMON_LOGGING_H_
#define FGPM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define FGPM_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "FGPM_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define FGPM_DCHECK(cond) FGPM_CHECK(cond)

#endif  // FGPM_COMMON_LOGGING_H_
