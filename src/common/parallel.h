// Parallel-for entry point for intra-query execution.
//
// ThreadPool is now a facade over the process-wide work-stealing morsel
// scheduler (common/scheduler.h): a pool no longer owns threads, it only
// records its width and forwards ParallelFor regions to the shared
// scheduler, which runs them with work stealing, nested-region support
// and adaptive morsel sizing. The PR 1 chunked fork-join implementation
// is preserved as ForkJoinPool for A/B benchmarking and can be selected
// process-wide with FGPM_SCHED=forkjoin.
//
// Determinism contract (unchanged): the body receives the *chunk index*
// (a pure function of `begin` and the chunk size), so callers can write
// each chunk's output into a pre-sized slot and concatenate slots in
// chunk order afterwards. The merged output is then byte-identical no
// matter how many threads ran or how morsels were scheduled or stolen.
// A pool of size 1 never touches the scheduler and runs every chunk
// inline on the caller, preserving the exact sequential behavior (and
// stack traces) of a non-parallel build. The `worker` id passed to the
// body is always < size(), so per-worker scratch sized to the pool
// stays valid.
#ifndef FGPM_COMMON_PARALLEL_H_
#define FGPM_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fgpm {

// Resolves a user-facing thread-count knob: 0 means "one worker per
// hardware thread", anything else is taken literally (>= 1).
unsigned ResolveThreads(unsigned requested);

// The PR 1 chunked fork-join pool: `size() - 1` persistent private
// workers, fixed-size contiguous chunks claimed off a shared atomic
// cursor, no stealing, no reentrancy (enforced with a debug assert).
// Kept as the A/B baseline for bench_sched and selectable process-wide
// via FGPM_SCHED=forkjoin.
class ForkJoinPool {
 public:
  using Body = std::function<void(unsigned worker, size_t chunk, size_t begin,
                                  size_t end)>;

  explicit ForkJoinPool(unsigned num_threads = 0);
  ~ForkJoinPool();
  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  unsigned size() const { return num_threads_; }

  // Blocks until all chunks are done. Reentrant calls from within a
  // body are not supported (asserted in debug builds).
  void ParallelFor(size_t n, size_t chunk_size, const Body& body);

 private:
  void WorkerLoop(unsigned worker);
  void RunChunks(unsigned worker);

  const unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // region published / shutdown
  std::condition_variable done_cv_;  // all workers left the region
  uint64_t region_seq_ = 0;          // bumped when a region is published
  unsigned active_ = 0;              // pool workers still inside a region
  bool shutdown_ = false;

  // Current region (valid while active_ > 0 or the caller is running it).
  const Body* body_ = nullptr;
  size_t n_ = 0;
  size_t chunk_size_ = 1;
  std::atomic<size_t> cursor_{0};
};

class ThreadPool {
 public:
  // body(worker, chunk, begin, end): process [begin, end). `worker` is in
  // [0, size()) and identifies the executing participant (for scratch
  // reuse); `chunk` = begin / chunk_size (for deterministic output slots).
  using Body = std::function<void(unsigned worker, size_t chunk, size_t begin,
                                  size_t end)>;

  // num_threads == 0 resolves to hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return num_threads_; }

  // Number of chunks ParallelFor(n, chunk_size, ...) will execute.
  static size_t NumChunks(size_t n, size_t chunk_size) {
    if (chunk_size == 0) chunk_size = 1;
    return (n + chunk_size - 1) / chunk_size;
  }

  // Runs `body` over every chunk of [0, n). Blocks until all chunks are
  // done. Reentrant: a body may open a nested region on this or any
  // other pool (the blocked participant helps execute it) — except in
  // FGPM_SCHED=forkjoin legacy mode, where nesting still aborts.
  void ParallelFor(size_t n, size_t chunk_size, const Body& body);

 private:
  const unsigned num_threads_;
  std::unique_ptr<ForkJoinPool> legacy_;  // only in FGPM_SCHED=forkjoin mode
};

}  // namespace fgpm

#endif  // FGPM_COMMON_PARALLEL_H_
