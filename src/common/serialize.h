// Little binary archive helpers for persisting component metadata
// (B+-tree roots, heap-file page lists, catalog statistics, 2-hop
// labels). Page payloads are persisted separately by the disk manager;
// these helpers cover everything that normally lives in C++ objects.
#ifndef FGPM_COMMON_SERIALIZE_H_
#define FGPM_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace fgpm {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* os) : os_(os) {}

  void U8(uint8_t v) { os_->write(reinterpret_cast<const char*>(&v), 1); }
  void U32(uint32_t v) { os_->write(reinterpret_cast<const char*>(&v), 4); }
  void U64(uint64_t v) { os_->write(reinterpret_cast<const char*>(&v), 8); }
  void F64(double v) { os_->write(reinterpret_cast<const char*>(&v), 8); }

  void Str(const std::string& s) {
    U64(s.size());
    os_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void VecU32(const std::vector<T>& v) {
    static_assert(sizeof(T) == 4);
    U64(v.size());
    os_->write(reinterpret_cast<const char*>(v.data()), 4ll * v.size());
  }

  void VecU64(const std::vector<uint64_t>& v) {
    U64(v.size());
    os_->write(reinterpret_cast<const char*>(v.data()), 8ll * v.size());
  }

  bool ok() const { return static_cast<bool>(*os_); }

 private:
  std::ostream* os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* is) : is_(is) {}

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status F64(double* v) { return Raw(v, 8); }

  Status Str(std::string* s) {
    uint64_t n = 0;
    FGPM_RETURN_IF_ERROR(U64(&n));
    if (n > (1ull << 32)) return Status::Corruption("string too long");
    s->resize(n);
    return Raw(s->data(), n);
  }

  template <typename T>
  Status VecU32(std::vector<T>* v) {
    static_assert(sizeof(T) == 4);
    uint64_t n = 0;
    FGPM_RETURN_IF_ERROR(U64(&n));
    if (n > (1ull << 34)) return Status::Corruption("vector too long");
    v->resize(n);
    return Raw(v->data(), 4ull * n);
  }

  Status VecU64(std::vector<uint64_t>* v) {
    uint64_t n = 0;
    FGPM_RETURN_IF_ERROR(U64(&n));
    if (n > (1ull << 33)) return Status::Corruption("vector too long");
    v->resize(n);
    return Raw(v->data(), 8ull * n);
  }

 private:
  Status Raw(void* dst, uint64_t bytes) {
    is_->read(static_cast<char*>(dst),
              static_cast<std::streamsize>(bytes));
    if (static_cast<uint64_t>(is_->gcount()) != bytes) {
      return Status::Corruption("archive truncated");
    }
    return Status::OK();
  }

  std::istream* is_;
};

}  // namespace fgpm

#endif  // FGPM_COMMON_SERIALIZE_H_
