// Set operations over sorted vectors. Graph codes (2-hop label entries)
// are stored as sorted vectors of center ids, so intersection tests are
// the innermost loop of every reachability check (TwoHop::Reaches, the
// W-table probes of the HPSJ filter step, and the select operator).
//
// Two strategies, switched on the size ratio:
//  * balanced inputs — a branch-light merge: both cursors are advanced
//    by comparison results instead of an if/else ladder, so the loop
//    carries no hard-to-predict branch on random center ids;
//  * lopsided inputs (one side >= kGallopRatio times the other) — a
//    galloping (doubling) search: each element of the small side is
//    located in the large side by exponential probing from the previous
//    match position, O(small * log(large / small)) instead of
//    O(small + large).
// Both strategies produce identical results (differential-tested in
// tests/common_test.cc over adversarial shapes: empty, disjoint,
// subset, equal, extreme ratios).
#ifndef FGPM_COMMON_SORTED_VECTOR_H_
#define FGPM_COMMON_SORTED_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace fgpm {

// Large/small size ratio beyond which the doubling search wins over the
// linear merge (crossover measured in bench_micro; anything in 8..32 is
// near-optimal, the exact value is not sensitive).
inline constexpr size_t kGallopRatio = 16;

namespace gallop_internal {

// First index in [lo, n) with v[idx] >= key: exponential probe from
// `lo`, then binary search inside the last doubling window.
template <typename T>
size_t GallopLowerBound(const T* v, size_t lo, size_t n, const T& key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && v[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(std::lower_bound(v + lo, v + hi, key) - v);
}

// Boolean intersection, galloping the small (sorted) side through the
// large one. Probe positions only move forward.
template <typename T>
bool GallopIntersects(const T* small_v, size_t ns, const T* large_v,
                      size_t nl) {
  size_t pos = 0;
  for (size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large_v, pos, nl, small_v[i]);
    if (pos == nl) return false;
    if (large_v[pos] == small_v[i]) return true;
  }
  return false;
}

// Materializing intersection, galloping variant (output is sorted since
// the small side is scanned in order).
template <typename T>
void GallopIntersectInto(const T* small_v, size_t ns, const T* large_v,
                         size_t nl, std::vector<T>* out) {
  size_t pos = 0;
  for (size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large_v, pos, nl, small_v[i]);
    if (pos == nl) return;
    if (large_v[pos] == small_v[i]) out->push_back(small_v[i]);
  }
}

inline bool Lopsided(size_t na, size_t nb) {
  return na > kGallopRatio * (nb + 1) || nb > kGallopRatio * (na + 1);
}

}  // namespace gallop_internal

// True if the two sorted ranges share at least one element.
template <typename T>
bool SortedIntersects(const std::vector<T>& a, const std::vector<T>& b) {
  const size_t na = a.size(), nb = b.size();
  if (na == 0 || nb == 0) return false;
  if (gallop_internal::Lopsided(na, nb)) {
    return na < nb
               ? gallop_internal::GallopIntersects(a.data(), na, b.data(), nb)
               : gallop_internal::GallopIntersects(b.data(), nb, a.data(), na);
  }
  const T* pa = a.data();
  const T* pb = b.data();
  size_t ia = 0, ib = 0;
  while (ia < na && ib < nb) {
    const T va = pa[ia], vb = pb[ib];
    if (va == vb) return true;
    ia += (va < vb);
    ib += (vb < va);
  }
  return false;
}

// Intersection of two sorted vectors appended into `*out` (cleared
// first; capacity is reused, which matters in the filter operator's
// per-row probe loop).
template <typename T>
void SortedIntersectInto(const std::vector<T>& a, const std::vector<T>& b,
                         std::vector<T>* out) {
  out->clear();
  const size_t na = a.size(), nb = b.size();
  if (na == 0 || nb == 0) return;
  if (gallop_internal::Lopsided(na, nb)) {
    if (na < nb) {
      gallop_internal::GallopIntersectInto(a.data(), na, b.data(), nb, out);
    } else {
      gallop_internal::GallopIntersectInto(b.data(), nb, a.data(), na, out);
    }
    return;
  }
  const T* pa = a.data();
  const T* pb = b.data();
  size_t ia = 0, ib = 0;
  while (ia < na && ib < nb) {
    const T va = pa[ia], vb = pb[ib];
    if (va == vb) out->push_back(va);
    ia += (va <= vb);
    ib += (vb <= va);
  }
}

// Intersection of two sorted vectors.
template <typename T>
std::vector<T> SortedIntersect(const std::vector<T>& a,
                               const std::vector<T>& b) {
  std::vector<T> out;
  SortedIntersectInto(a, b, &out);
  return out;
}

// Union of two sorted vectors (deduplicated).
template <typename T>
std::vector<T> SortedUnion(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Inserts v into sorted vector if absent; returns true if inserted.
template <typename T>
bool SortedInsert(std::vector<T>* vec, const T& v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) return false;
  vec->insert(it, v);
  return true;
}

// Binary-search membership test.
template <typename T>
bool SortedContains(const std::vector<T>& vec, const T& v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace fgpm

#endif  // FGPM_COMMON_SORTED_VECTOR_H_
