// Set operations over sorted sequences. Graph codes (2-hop label
// entries) are stored as strictly increasing id sequences — nested
// vectors on disk records, flat arena spans in TwoHopLabeling — so
// intersection tests are the innermost loop of every reachability check
// (TwoHop::Reaches, the W-table probes of the HPSJ filter step, and the
// select operator). Everything here takes any contiguous container
// (std::vector, std::span) with matching value types.
//
// Strategy switch on the size ratio:
//  * lopsided inputs (one side >= kGallopRatio times the other) — a
//    galloping (doubling) search: each element of the small side is
//    located in the large side by exponential probing from the previous
//    match position, O(small * log(large / small)) instead of
//    O(small + large);
//  * balanced uint32 inputs — the runtime-dispatched SIMD kernels of
//    common/intersect_kernels.h (AVX2/SSE shuffle compare, branch-free
//    unrolled scalar fallback);
//  * balanced inputs of other types — a branch-light scalar merge: both
//    cursors advance by comparison results instead of an if/else
//    ladder, so the loop carries no hard-to-predict branch.
// All strategies produce identical results (differential-tested in
// tests/common_test.cc over adversarial shapes: empty, disjoint,
// subset, equal, extreme ratios, every forced kernel).
#ifndef FGPM_COMMON_SORTED_VECTOR_H_
#define FGPM_COMMON_SORTED_VECTOR_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/intersect_kernels.h"

namespace fgpm {

// Large/small size ratio beyond which the doubling search wins over the
// linear merge (crossover measured in bench_micro; anything in 8..32 is
// near-optimal, the exact value is not sensitive).
inline constexpr size_t kGallopRatio = 16;

namespace gallop_internal {

// First index in [lo, n) with v[idx] >= key: exponential probe from
// `lo`, then binary search inside the last doubling window.
template <typename T>
size_t GallopLowerBound(const T* v, size_t lo, size_t n, const T& key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && v[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(std::lower_bound(v + lo, v + hi, key) - v);
}

// Boolean intersection, galloping the small (sorted) side through the
// large one. Probe positions only move forward.
template <typename T>
bool GallopIntersects(const T* small_v, size_t ns, const T* large_v,
                      size_t nl) {
  size_t pos = 0;
  for (size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large_v, pos, nl, small_v[i]);
    if (pos == nl) return false;
    if (large_v[pos] == small_v[i]) return true;
  }
  return false;
}

// Materializing intersection, galloping variant (output is sorted since
// the small side is scanned in order).
template <typename T>
void GallopIntersectInto(const T* small_v, size_t ns, const T* large_v,
                         size_t nl, std::vector<T>* out) {
  size_t pos = 0;
  for (size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large_v, pos, nl, small_v[i]);
    if (pos == nl) return;
    if (large_v[pos] == small_v[i]) out->push_back(small_v[i]);
  }
}

inline bool Lopsided(size_t na, size_t nb) {
  return na > kGallopRatio * (nb + 1) || nb > kGallopRatio * (na + 1);
}

}  // namespace gallop_internal

// True if the two sorted ranges share at least one element.
template <typename T>
bool SortedRangeIntersects(const T* pa, size_t na, const T* pb, size_t nb) {
  if (na == 0 || nb == 0) return false;
  if (gallop_internal::Lopsided(na, nb)) {
    return na < nb ? gallop_internal::GallopIntersects(pa, na, pb, nb)
                   : gallop_internal::GallopIntersects(pb, nb, pa, na);
  }
  if constexpr (std::is_same_v<T, uint32_t>) {
    return IntersectsU32(pa, na, pb, nb);
  } else {
    size_t ia = 0, ib = 0;
    while (ia < na && ib < nb) {
      const T va = pa[ia], vb = pb[ib];
      if (va == vb) return true;
      ia += (va < vb);
      ib += (vb < va);
    }
    return false;
  }
}

// Intersection of two sorted ranges appended into `*out` (cleared
// first; capacity is reused, which matters in the filter operator's
// per-row probe loop).
template <typename T>
void SortedRangeIntersectInto(const T* pa, size_t na, const T* pb, size_t nb,
                              std::vector<T>* out) {
  out->clear();
  if (na == 0 || nb == 0) return;
  if (gallop_internal::Lopsided(na, nb)) {
    if (na < nb) {
      gallop_internal::GallopIntersectInto(pa, na, pb, nb, out);
    } else {
      gallop_internal::GallopIntersectInto(pb, nb, pa, na, out);
    }
    return;
  }
  if constexpr (std::is_same_v<T, uint32_t>) {
    // SIMD compaction stores whole blocks; give it padded headroom,
    // then shrink to the real count.
    out->resize(std::min(na, nb) + kIntersectPad);
    out->resize(IntersectU32(pa, na, pb, nb, out->data()));
  } else {
    size_t ia = 0, ib = 0;
    while (ia < na && ib < nb) {
      const T va = pa[ia], vb = pb[ib];
      if (va == vb) out->push_back(va);
      ia += (va <= vb);
      ib += (vb <= va);
    }
  }
}

namespace sorted_internal {

// Accepts any contiguous container (vector, span) of T.
template <typename C, typename T>
concept RangeOf =
    requires(const C& c) {
      { c.data() } -> std::convertible_to<const T*>;
      { c.size() } -> std::convertible_to<size_t>;
    };

template <typename C>
using ValueT = std::remove_cv_t<std::remove_reference_t<
    decltype(*std::declval<const C&>().data())>>;

}  // namespace sorted_internal

// True if the two sorted containers share at least one element.
template <typename CA, typename CB,
          typename T = sorted_internal::ValueT<CA>>
  requires sorted_internal::RangeOf<CA, T> && sorted_internal::RangeOf<CB, T>
bool SortedIntersects(const CA& a, const CB& b) {
  return SortedRangeIntersects<T>(a.data(), a.size(), b.data(), b.size());
}

// Intersection of two sorted containers appended into `*out`.
template <typename CA, typename CB,
          typename T = sorted_internal::ValueT<CA>>
  requires sorted_internal::RangeOf<CA, T> && sorted_internal::RangeOf<CB, T>
void SortedIntersectInto(const CA& a, const CB& b, std::vector<T>* out) {
  SortedRangeIntersectInto<T>(a.data(), a.size(), b.data(), b.size(), out);
}

// Intersection of two sorted containers.
template <typename CA, typename CB,
          typename T = sorted_internal::ValueT<CA>>
  requires sorted_internal::RangeOf<CA, T> && sorted_internal::RangeOf<CB, T>
std::vector<T> SortedIntersect(const CA& a, const CB& b) {
  std::vector<T> out;
  SortedIntersectInto(a, b, &out);
  return out;
}

// Union of two sorted containers (deduplicated).
template <typename CA, typename CB,
          typename T = sorted_internal::ValueT<CA>>
  requires sorted_internal::RangeOf<CA, T> && sorted_internal::RangeOf<CB, T>
std::vector<T> SortedUnion(const CA& a, const CB& b) {
  std::vector<T> out;
  std::set_union(a.data(), a.data() + a.size(), b.data(),
                 b.data() + b.size(), std::back_inserter(out));
  return out;
}

// Vector overloads: braced-init-list arguments (`SortedIntersects(a,
// {})`) can't drive deduction through the container-generic templates
// above, but they could through the seed's vector-only signatures.
// These forwarders keep that calling style compiling.
template <typename T>
bool SortedIntersects(const std::vector<T>& a, const std::vector<T>& b) {
  return SortedRangeIntersects<T>(a.data(), a.size(), b.data(), b.size());
}
template <typename T>
std::vector<T> SortedIntersect(const std::vector<T>& a,
                               const std::vector<T>& b) {
  std::vector<T> out;
  SortedRangeIntersectInto<T>(a.data(), a.size(), b.data(), b.size(), &out);
  return out;
}
template <typename T>
std::vector<T> SortedUnion(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Inserts v into sorted vector if absent; returns true if inserted.
template <typename T>
bool SortedInsert(std::vector<T>* vec, const T& v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) return false;
  vec->insert(it, v);
  return true;
}

// Binary-search membership test.
template <typename C, typename T = sorted_internal::ValueT<C>>
  requires sorted_internal::RangeOf<C, T>
bool SortedContains(const C& vec, const T& v) {
  return std::binary_search(vec.data(), vec.data() + vec.size(), v);
}

}  // namespace fgpm

#endif  // FGPM_COMMON_SORTED_VECTOR_H_
