// Set operations over sorted vectors. Graph codes (2-hop label entries)
// are stored as sorted vectors of center ids, so intersection tests are
// the innermost loop of every reachability check.
#ifndef FGPM_COMMON_SORTED_VECTOR_H_
#define FGPM_COMMON_SORTED_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace fgpm {

// True if the two sorted ranges share at least one element.
template <typename T>
bool SortedIntersects(const std::vector<T>& a, const std::vector<T>& b) {
  auto ia = a.begin(), ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

// Intersection of two sorted vectors.
template <typename T>
std::vector<T> SortedIntersect(const std::vector<T>& a,
                               const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Union of two sorted vectors (deduplicated).
template <typename T>
std::vector<T> SortedUnion(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Inserts v into sorted vector if absent; returns true if inserted.
template <typename T>
bool SortedInsert(std::vector<T>* vec, const T& v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) return false;
  vec->insert(it, v);
  return true;
}

// Binary-search membership test.
template <typename T>
bool SortedContains(const std::vector<T>& vec, const T& v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace fgpm

#endif  // FGPM_COMMON_SORTED_VECTOR_H_
