// Hashing helpers for composite keys (node-id tuples, label pairs).
#ifndef FGPM_COMMON_HASH_H_
#define FGPM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fgpm {

inline uint64_t HashMix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (HashMix(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

// Hash of a tuple of 32-bit ids (used to deduplicate result rows).
struct RowHash {
  size_t operator()(const std::vector<uint32_t>& row) const {
    uint64_t h = 0x84222325cbf29ce4ULL;
    for (uint32_t v : row) h = HashCombine(h, v);
    return static_cast<size_t>(h);
  }
};

// Order-independent fingerprint of a set of result rows: commutative
// (+) over per-row mixed hashes, so any reordering checks equal while a
// changed, missing or duplicated row does not. Shared by the wire
// protocol's checksum-only responses and the benches' row-identity
// verification — both sides must agree on the algorithm.
inline uint64_t RowSetChecksum(const std::vector<std::vector<uint32_t>>& rows) {
  RowHash h;
  uint64_t sum = 0;
  for (const auto& row : rows) sum += HashMix(static_cast<uint64_t>(h(row)));
  return sum;
}

// Hash for a pair of 32-bit ids packed into one key.
inline uint64_t PackPair(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
inline uint32_t PairFirst(uint64_t k) { return static_cast<uint32_t>(k >> 32); }
inline uint32_t PairSecond(uint64_t k) { return static_cast<uint32_t>(k); }

}  // namespace fgpm

#endif  // FGPM_COMMON_HASH_H_
