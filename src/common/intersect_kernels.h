// Vectorized sorted-set intersection kernels for 32-bit ids.
//
// Graph codes, W-table center lists and R-join cluster lists are all
// strictly increasing uint32 sequences, and the balanced (similar-size)
// intersection is the innermost loop of every reachability probe. The
// generic merge in sorted_vector.h routes balanced uint32 inputs here;
// this TU provides three implementations behind one runtime dispatch:
//
//  * kScalar — unrolled branch-free two-pointer: 2x2 blocks of elements
//    are cross-compared with 64-bit word "has-zero-lane" tests (two
//    32-bit XOR lanes packed per word), and both cursors advance by
//    comparison masks, so the loop carries no data-dependent branch.
//  * kSse — the classic 4x4 block kernel: `_mm_cmpeq_epi32` against all
//    four `_mm_shuffle_epi32` rotations of the other block (SSE2, always
//    available on x86-64). The materializing variant compacts matched
//    lanes with a 16-entry `_mm_shuffle_epi8` table (SSSE3).
//  * kAvx2 — 8x8 block variant via `_mm256_permutevar8x32_epi32`
//    rotations, selected when `__builtin_cpu_supports("avx2")`.
//
// kSeed is the pre-kernel scalar merge kept callable for A/B baselines
// (bench_codes) and differential tests. All kernels require *strictly*
// increasing inputs (sets, no duplicates) — which every call site
// guarantees — and produce identical results (tests/common_test.cc
// cross-checks them exhaustively on adversarial shapes).
#ifndef FGPM_COMMON_INTERSECT_KERNELS_H_
#define FGPM_COMMON_INTERSECT_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fgpm {

enum class IntersectKernel : int {
  kAuto = 0,    // runtime dispatch: AVX2 > SSE > scalar
  kSeed = 1,    // branch-light scalar merge (baseline for A/B runs)
  kScalar = 2,  // unrolled branch-free two-pointer, 64-bit word compares
  kSse = 3,
  kAvx2 = 4,
};

// Forces a specific kernel (tests and bench A/B); kAuto restores CPU
// dispatch. Returns false (and keeps the current choice) if the CPU
// lacks the requested ISA. Not thread-safe against in-flight probes —
// call between workloads.
bool SetIntersectKernel(IntersectKernel k);
IntersectKernel ActiveIntersectKernel();  // what probes currently use
const char* IntersectKernelName(IntersectKernel k);

// True if the two strictly-increasing sequences share an element.
bool IntersectsU32(const uint32_t* a, size_t na, const uint32_t* b,
                   size_t nb);

// Materializing intersection into `out`, which must have room for
// min(na, nb) + kIntersectPad elements (SIMD compaction stores whole
// blocks past the logical end). Returns the number of matches written;
// output is strictly increasing.
inline constexpr size_t kIntersectPad = 8;
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out);

// --- k-way intersection (WCOJ vertex binding) ----------------------------
//
// One input of a k-way intersection: a strictly increasing uint32 array,
// optionally carrying a chunked-bitmap sidecar in the hub-code layout of
// reach/two_hop.h — a sorted list of the non-empty 256-value chunks
// (chunk id = value >> 8), four uint64 words per chunk. When present, the
// sidecar enables O(1) membership probes instead of merging the array.
struct SortedSetView {
  const uint32_t* data = nullptr;
  size_t size = 0;
  const uint32_t* chunk_ids = nullptr;   // sorted, one per non-empty chunk
  const uint64_t* chunk_words = nullptr;  // 4 words per chunk
  size_t num_chunks = 0;                  // 0 => no sidecar
  bool has_bitmap() const { return num_chunks != 0; }
};

// Builds the chunked-bitmap sidecar for a strictly increasing array.
// Appends to the output vectors (callers pool many sidecars in two flat
// arenas); the new sidecar is the trailing chunk_ids->size() - old_size
// chunks.
void BuildChunkedBitmap(const uint32_t* data, size_t n,
                        std::vector<uint32_t>* chunk_ids,
                        std::vector<uint64_t>* words);

// Membership probe against a view's sidecar (requires has_bitmap()).
bool ChunkedBitmapContains(const SortedSetView& s, uint32_t v);

// Work counters for IntersectKWayU32: `probes` counts candidate elements
// tested against a non-smallest set (summed over the k-1 pruning
// passes), `hits` the elements that survive all sets.
struct KWayStats {
  uint64_t probes = 0;
  uint64_t hits = 0;
};

// Intersection of k >= 1 strictly increasing uint32 sets, driven by the
// smallest set: survivors of the sets seen so far are pruned against the
// remaining sets in ascending size order. Per set the cheapest kernel is
// chosen adaptively — bitmap membership probes when the set carries a
// sidecar and dwarfs the survivor list, galloping when merely lopsided,
// the SIMD block kernels when balanced. Returns the number of survivors
// written to `out`; output is strictly increasing. `out` and `tmp` must
// each have room for min-size + kIntersectPad elements (the SIMD stage
// ping-pongs between them). Empty inputs short-circuit to 0.
size_t IntersectKWayU32(const SortedSetView* sets, size_t k, uint32_t* out,
                        uint32_t* tmp, KWayStats* stats = nullptr);

}  // namespace fgpm

#endif  // FGPM_COMMON_INTERSECT_KERNELS_H_
