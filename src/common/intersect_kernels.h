// Vectorized sorted-set intersection kernels for 32-bit ids.
//
// Graph codes, W-table center lists and R-join cluster lists are all
// strictly increasing uint32 sequences, and the balanced (similar-size)
// intersection is the innermost loop of every reachability probe. The
// generic merge in sorted_vector.h routes balanced uint32 inputs here;
// this TU provides three implementations behind one runtime dispatch:
//
//  * kScalar — unrolled branch-free two-pointer: 2x2 blocks of elements
//    are cross-compared with 64-bit word "has-zero-lane" tests (two
//    32-bit XOR lanes packed per word), and both cursors advance by
//    comparison masks, so the loop carries no data-dependent branch.
//  * kSse — the classic 4x4 block kernel: `_mm_cmpeq_epi32` against all
//    four `_mm_shuffle_epi32` rotations of the other block (SSE2, always
//    available on x86-64). The materializing variant compacts matched
//    lanes with a 16-entry `_mm_shuffle_epi8` table (SSSE3).
//  * kAvx2 — 8x8 block variant via `_mm256_permutevar8x32_epi32`
//    rotations, selected when `__builtin_cpu_supports("avx2")`.
//
// kSeed is the pre-kernel scalar merge kept callable for A/B baselines
// (bench_codes) and differential tests. All kernels require *strictly*
// increasing inputs (sets, no duplicates) — which every call site
// guarantees — and produce identical results (tests/common_test.cc
// cross-checks them exhaustively on adversarial shapes).
#ifndef FGPM_COMMON_INTERSECT_KERNELS_H_
#define FGPM_COMMON_INTERSECT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace fgpm {

enum class IntersectKernel : int {
  kAuto = 0,    // runtime dispatch: AVX2 > SSE > scalar
  kSeed = 1,    // branch-light scalar merge (baseline for A/B runs)
  kScalar = 2,  // unrolled branch-free two-pointer, 64-bit word compares
  kSse = 3,
  kAvx2 = 4,
};

// Forces a specific kernel (tests and bench A/B); kAuto restores CPU
// dispatch. Returns false (and keeps the current choice) if the CPU
// lacks the requested ISA. Not thread-safe against in-flight probes —
// call between workloads.
bool SetIntersectKernel(IntersectKernel k);
IntersectKernel ActiveIntersectKernel();  // what probes currently use
const char* IntersectKernelName(IntersectKernel k);

// True if the two strictly-increasing sequences share an element.
bool IntersectsU32(const uint32_t* a, size_t na, const uint32_t* b,
                   size_t nb);

// Materializing intersection into `out`, which must have room for
// min(na, nb) + kIntersectPad elements (SIMD compaction stores whole
// blocks past the logical end). Returns the number of matches written;
// output is strictly increasing.
inline constexpr size_t kIntersectPad = 8;
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out);

}  // namespace fgpm

#endif  // FGPM_COMMON_INTERSECT_KERNELS_H_
