// Deterministic, fast pseudo-random number generation (splitmix64 +
// xoshiro256**). All generators and property tests seed through this so
// every experiment in the repo is reproducible bit-for-bit.
#ifndef FGPM_COMMON_RNG_H_
#define FGPM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fgpm {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Zipf-distributed value in [0, n) with exponent theta (> 0). Uses the
  // rejection-inversion method; O(1) per draw after O(1) setup per call
  // signature (n, theta) is *not* cached — callers in hot loops should use
  // ZipfDistribution below instead.
  uint64_t NextZipf(uint64_t n, double theta);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// Precomputed Zipf sampler (classic Gray et al. method).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);
  uint64_t Sample(Rng* rng) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace fgpm

#endif  // FGPM_COMMON_RNG_H_
