#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/scheduler.h"

namespace fgpm {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

bool UseForkJoin() {
  static const bool use = [] {
    const char* v = std::getenv("FGPM_SCHED");
    return v != nullptr && std::strcmp(v, "forkjoin") == 0;
  }();
  return use;
}

#ifndef NDEBUG
// Reentrancy guard for the legacy pool: a fork-join region body must not
// open another fork-join region (the cursor/active state is per-pool and
// not stacked). The work-stealing path has no such restriction.
thread_local bool tls_in_forkjoin_region = false;
#endif

}  // namespace

// ---------------------------------------------------------------------------
// ForkJoinPool — the PR 1 implementation, verbatim plus the debug
// reentrancy assert.

ForkJoinPool::ForkJoinPool(unsigned num_threads)
    : num_threads_(std::max(1u, ResolveThreads(num_threads))) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ForkJoinPool::~ForkJoinPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ForkJoinPool::RunChunks(unsigned worker) {
  for (;;) {
    size_t begin = cursor_.fetch_add(chunk_size_, std::memory_order_relaxed);
    if (begin >= n_) break;
    size_t end = std::min(n_, begin + chunk_size_);
    (*body_)(worker, begin / chunk_size_, begin, end);
  }
}

void ForkJoinPool::WorkerLoop(unsigned worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || region_seq_ != seen; });
      if (shutdown_) return;
      seen = region_seq_;
    }
    RunChunks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void ForkJoinPool::ParallelFor(size_t n, size_t chunk_size, const Body& body) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  if (num_threads_ == 1 || n <= chunk_size) {
    // Inline: same chunk decomposition, no synchronization.
    for (size_t begin = 0; begin < n; begin += chunk_size) {
      body(0, begin / chunk_size, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
#ifndef NDEBUG
  // Reentrant fork-join regions deadlock/corrupt the shared cursor;
  // nested regions need the work-stealing scheduler (default mode).
  FGPM_CHECK(!tls_in_forkjoin_region);
  tls_in_forkjoin_region = true;
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    chunk_size_ = chunk_size;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = num_threads_ - 1;
    ++region_seq_;
  }
  work_cv_.notify_all();
  RunChunks(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
#ifndef NDEBUG
  tls_in_forkjoin_region = false;
#endif
}

// ---------------------------------------------------------------------------
// ThreadPool — facade over the shared work-stealing scheduler.

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(std::max(1u, ResolveThreads(num_threads))) {
  if (UseForkJoin()) {
    legacy_ = std::make_unique<ForkJoinPool>(num_threads_);
  } else if (num_threads_ > 1) {
    Scheduler::Global().EnsureWidth(num_threads_);
  }
}

ThreadPool::~ThreadPool() = default;

void ThreadPool::ParallelFor(size_t n, size_t chunk_size, const Body& body) {
  if (legacy_ != nullptr) {
    legacy_->ParallelFor(n, chunk_size, body);
    return;
  }
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  if (num_threads_ == 1 || n <= chunk_size) {
    // Inline: same chunk decomposition, no synchronization.
    for (size_t begin = 0; begin < n; begin += chunk_size) {
      body(0, begin / chunk_size, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
  Scheduler::Global().ParallelFor(n, chunk_size, body, num_threads_);
}

}  // namespace fgpm
