#include "common/parallel.h"

#include <algorithm>

namespace fgpm {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(std::max(1u, ResolveThreads(num_threads))) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(unsigned worker) {
  for (;;) {
    size_t begin = cursor_.fetch_add(chunk_size_, std::memory_order_relaxed);
    if (begin >= n_) break;
    size_t end = std::min(n_, begin + chunk_size_);
    (*body_)(worker, begin / chunk_size_, begin, end);
  }
}

void ThreadPool::WorkerLoop(unsigned worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || region_seq_ != seen; });
      if (shutdown_) return;
      seen = region_seq_;
    }
    RunChunks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t chunk_size, const Body& body) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  if (num_threads_ == 1 || n <= chunk_size) {
    // Inline: same chunk decomposition, no synchronization.
    for (size_t begin = 0; begin < n; begin += chunk_size) {
      body(0, begin / chunk_size, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    chunk_size_ = chunk_size;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = num_threads_ - 1;
    ++region_seq_;
  }
  work_cv_.notify_all();
  RunChunks(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
}

}  // namespace fgpm
