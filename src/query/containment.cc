#include "query/containment.h"

#include <algorithm>
#include <numeric>

namespace fgpm {

namespace {

// Boolean transitive closure of `edges` over n nodes (n is pattern-
// sized — a handful — so Floyd-Warshall is fine).
std::vector<std::vector<bool>> Closure(size_t n,
                                       const std::vector<PatternEdge>& edges) {
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const PatternEdge& e : edges) reach[e.from][e.to] = true;
  for (size_t k = 0; k < n; ++k) {
    for (size_t u = 0; u < n; ++u) {
      if (!reach[u][k]) continue;
      for (size_t v = 0; v < n; ++v) {
        if (reach[k][v]) reach[u][v] = true;
      }
    }
  }
  return reach;
}

}  // namespace

std::vector<PatternNodeId> CanonicalForm::InverseNodeMap() const {
  std::vector<PatternNodeId> inv(node_map.size());
  for (PatternNodeId i = 0; i < node_map.size(); ++i) inv[node_map[i]] = i;
  return inv;
}

std::vector<uint32_t> CanonicalForm::InverseEdgeMap() const {
  std::vector<uint32_t> inv(edge_map.size());
  for (uint32_t i = 0; i < edge_map.size(); ++i) inv[edge_map[i]] = i;
  return inv;
}

CanonicalForm Canonicalize(const Pattern& p) {
  CanonicalForm out;

  // Node order: sorted labels. Labels are unique within a pattern
  // (Pattern::AddNode dedups), so the order is total.
  std::vector<PatternNodeId> order(p.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PatternNodeId a, PatternNodeId b) {
    return p.label(a) < p.label(b);
  });
  out.node_map.resize(p.num_nodes());
  for (PatternNodeId pos = 0; pos < order.size(); ++pos) {
    out.node_map[order[pos]] = pos;
  }
  for (PatternNodeId pos = 0; pos < order.size(); ++pos) {
    out.pattern.AddNode(p.label(order[pos]));
  }

  // Edge order: remapped endpoints, sorted by (from, to). Edges are
  // unique (AddEdge rejects duplicates), so the order is total too.
  struct Tagged {
    PatternEdge e;
    uint32_t orig = 0;
  };
  std::vector<Tagged> edges(p.num_edges());
  for (uint32_t i = 0; i < p.num_edges(); ++i) {
    const PatternEdge& e = p.edges()[i];
    edges[i] = {{out.node_map[e.from], out.node_map[e.to]}, i};
  }
  std::sort(edges.begin(), edges.end(), [](const Tagged& a, const Tagged& b) {
    if (a.e.from != b.e.from) return a.e.from < b.e.from;
    return a.e.to < b.e.to;
  });
  out.edge_map.resize(p.num_edges());
  for (uint32_t pos = 0; pos < edges.size(); ++pos) {
    out.edge_map[edges[pos].orig] = pos;
    // Canonicalize never runs on invalid patterns; AddEdge can only
    // reject what AddEdge already accepted once.
    (void)out.pattern.AddEdge(edges[pos].e.from, edges[pos].e.to);
  }

  out.key = out.pattern.ToString();
  return out;
}

std::optional<ContainmentMapping> Contains(const Pattern& general,
                                           const Pattern& specific) {
  // Equal label sets only (see header: projections are not sound).
  if (general.num_nodes() != specific.num_nodes()) return std::nullopt;
  ContainmentMapping m;
  m.general_to_specific.assign(general.num_nodes(), 0);
  for (PatternNodeId g = 0; g < general.num_nodes(); ++g) {
    bool found = false;
    for (PatternNodeId s = 0; s < specific.num_nodes(); ++s) {
      if (general.label(g) == specific.label(s)) {
        m.general_to_specific[g] = s;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }

  // Completeness: every general edge, mapped into specific coordinates,
  // must be implied by the closure of specific's edges — otherwise a
  // specific-result tuple could be missing from the cached rows.
  const size_t n = specific.num_nodes();
  std::vector<std::vector<bool>> spec_closure = Closure(n, specific.edges());
  std::vector<PatternEdge> mapped_general;
  mapped_general.reserve(general.num_edges());
  for (const PatternEdge& e : general.edges()) {
    PatternEdge g{m.general_to_specific[e.from], m.general_to_specific[e.to]};
    if (!spec_closure[g.from][g.to]) return std::nullopt;
    mapped_general.push_back(g);
  }

  // Soundness: re-check every specific edge the cached rows do not
  // already guarantee. Reachability is transitive, so anything in the
  // closure of the mapped general edges holds on every cached row.
  std::vector<std::vector<bool>> gen_closure = Closure(n, mapped_general);
  for (const PatternEdge& e : specific.edges()) {
    if (!gen_closure[e.from][e.to]) m.residual.push_back(e);
  }
  return m;
}

}  // namespace fgpm
