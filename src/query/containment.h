// Pattern canonicalization and containment (the semantic-cache front
// end; ground: PAPERS.md "Revisited Containment for Graph Patterns").
//
// Canonical form: pattern nodes are *labels* (unique within a pattern),
// so a pattern's identity is fully determined by its label set and its
// edge set — only the text spelling (statement order, chain grouping,
// whitespace) and the parse-order node numbering vary between
// equivalent spellings. CanonicalForm renumbers nodes in sorted-label
// order and sorts the edge list, producing a key string under which
// every spelling of the same pattern collides.
//
// Containment: Contains(general, specific) decides whether the result
// of `specific` can be computed from the result of `general` by a pure
// filter-down (no re-join against base tables):
//
//   * both patterns must bind the same label set (a projection of a
//     cached result is NOT sound under reachability semantics — an edge
//     toward a dropped label still constrains the kept columns);
//   * every edge of `general`, mapped through the label-identity
//     homomorphism h, must be implied by the transitive closure of
//     `specific`'s edges (reachability is transitive, so X->Y and Y->Z
//     imply X ~> Z on every satisfying tuple). Then every tuple of
//     result(specific) appears in result(general) — completeness;
//   * the edges of `specific` NOT implied by the closure of the mapped
//     `general` edges are returned as `residual`: re-checking exactly
//     those per cached row makes the filter-down sound.
//
// The check is conservative by construction: any pattern pair it cannot
// prove containable (different label sets) yields nullopt and the
// caller falls back to full execution. It never returns a wrong
// mapping — the homomorphism is forced by label identity and verified
// edge by edge.
#ifndef FGPM_QUERY_CONTAINMENT_H_
#define FGPM_QUERY_CONTAINMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "query/pattern.h"

namespace fgpm {

struct CanonicalForm {
  // "A->B;A->C" over the canonical numbering; single-label patterns
  // canonicalize to the bare label. Equal keys <=> equivalent edge sets
  // (NOT closure-equivalence; "A->B;B->C;A->C" and "A->B;B->C" keep
  // distinct keys and meet through containment instead).
  std::string key;
  // The pattern renumbered: node i carries the i-th label in sorted
  // order, edges sorted by (from, to).
  Pattern pattern;
  // node_map[orig node id] = canonical node id.
  std::vector<PatternNodeId> node_map;
  // edge_map[orig edge index] = canonical edge index.
  std::vector<uint32_t> edge_map;

  // Inverses (canonical -> original), for translating cached plans back
  // into a caller pattern's coordinates.
  std::vector<PatternNodeId> InverseNodeMap() const;
  std::vector<uint32_t> InverseEdgeMap() const;
};

CanonicalForm Canonicalize(const Pattern& p);

// The witness of a successful containment check.
struct ContainmentMapping {
  // general_to_specific[general node id] = specific node id (the label-
  // identity homomorphism; bijective because label sets are equal).
  std::vector<PatternNodeId> general_to_specific;
  // Edges of `specific` (specific-pattern coordinates) that are NOT
  // implied by the cached pattern and must be re-checked per row.
  std::vector<PatternEdge> residual;
};

// See the header comment. Reflexive: Contains(p, p) yields the identity
// mapping with no residual.
std::optional<ContainmentMapping> Contains(const Pattern& general,
                                           const Pattern& specific);

}  // namespace fgpm

#endif  // FGPM_QUERY_CONTAINMENT_H_
