#include "query/pattern.h"

#include <algorithm>
#include <cctype>
#include <deque>

namespace fgpm {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

PatternNodeId Pattern::AddNode(std::string_view label) {
  for (PatternNodeId i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return i;
  }
  labels_.emplace_back(label);
  return static_cast<PatternNodeId>(labels_.size() - 1);
}

Status Pattern::AddEdge(PatternNodeId from, PatternNodeId to) {
  if (from >= labels_.size() || to >= labels_.size()) {
    return Status::InvalidArgument("pattern edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("pattern self-loop " + labels_[from] +
                                   "->" + labels_[to] + " not allowed");
  }
  PatternEdge e{from, to};
  if (std::find(edges_.begin(), edges_.end(), e) != edges_.end()) {
    return Status::AlreadyExists("duplicate pattern edge");
  }
  edges_.push_back(e);
  return Status::OK();
}

Result<Pattern> Pattern::Parse(std::string_view text) {
  Pattern p;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  auto parse_ident = [&]() -> Result<std::string> {
    skip_ws();
    if (i >= text.size() || !IsIdentStart(text[i])) {
      return Status::InvalidArgument(
          "expected identifier at offset " + std::to_string(i) + " in '" +
          std::string(text) + "'");
    }
    size_t start = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    return std::string(text.substr(start, i - start));
  };

  bool any = false;
  for (;;) {
    skip_ws();
    if (i >= text.size()) break;
    if (text[i] == ';' || text[i] == ',') {  // empty statement
      ++i;
      continue;
    }
    FGPM_ASSIGN_OR_RETURN(std::string first, parse_ident());
    any = true;
    PatternNodeId prev = p.AddNode(first);
    for (;;) {
      skip_ws();
      if (i + 1 < text.size() && text[i] == '-' && text[i + 1] == '>') {
        i += 2;
        FGPM_ASSIGN_OR_RETURN(std::string next, parse_ident());
        PatternNodeId cur = p.AddNode(next);
        Status s = p.AddEdge(prev, cur);
        // Repeating an edge in the text is harmless.
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        prev = cur;
      } else {
        break;
      }
    }
    skip_ws();
    if (i < text.size()) {
      if (text[i] != ';' && text[i] != ',') {
        return Status::InvalidArgument("expected ';' at offset " +
                                       std::to_string(i));
      }
      ++i;
    }
  }
  if (!any) return Status::InvalidArgument("empty pattern");
  FGPM_RETURN_IF_ERROR(p.Validate());
  return p;
}

bool Pattern::IsConnected() const {
  if (labels_.empty()) return false;
  std::vector<std::vector<PatternNodeId>> adj(labels_.size());
  for (const auto& e : edges_) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  std::vector<bool> seen(labels_.size(), false);
  std::deque<PatternNodeId> queue{0};
  seen[0] = true;
  size_t count = 1;
  while (!queue.empty()) {
    PatternNodeId v = queue.front();
    queue.pop_front();
    for (PatternNodeId w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        queue.push_back(w);
      }
    }
  }
  return count == labels_.size();
}

Status Pattern::Validate() const {
  if (labels_.empty()) return Status::InvalidArgument("empty pattern");
  if (labels_.size() == 1) return Status::OK();  // single-label pattern
  if (edges_.empty()) {
    return Status::InvalidArgument("multi-node pattern without edges");
  }
  if (!IsConnected()) {
    return Status::InvalidArgument("pattern must be connected");
  }
  return Status::OK();
}

namespace {

// Positive-length reachability closure of an edge set.
std::vector<std::vector<bool>> EdgeClosure(size_t n,
                                           const std::vector<PatternEdge>& es) {
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const auto& e : es) reach[e.from][e.to] = true;
  for (size_t k = 0; k < n; ++k) {
    for (size_t u = 0; u < n; ++u) {
      if (!reach[u][k]) continue;
      for (size_t v = 0; v < n; ++v) {
        if (reach[k][v]) reach[u][v] = true;
      }
    }
  }
  return reach;
}

}  // namespace

Pattern Pattern::TransitiveReduction() const {
  // Greedy edge elision: drop an edge only while the reachability
  // relation over the remaining edges stays identical. One edge at a
  // time keeps the rewrite sound on cyclic patterns too (removing every
  // edge of a cycle "because the others imply it" would be wrong).
  size_t n = labels_.size();
  std::vector<std::vector<bool>> target = EdgeClosure(n, edges_);
  std::vector<PatternEdge> kept = edges_;
  for (size_t i = 0; i < kept.size();) {
    std::vector<PatternEdge> trial = kept;
    trial.erase(trial.begin() + i);
    if (EdgeClosure(n, trial) == target) {
      kept = std::move(trial);
    } else {
      ++i;
    }
  }
  Pattern out;
  out.labels_ = labels_;
  out.edges_ = std::move(kept);
  return out;
}

std::string Pattern::ToString() const {
  std::string out;
  for (const auto& e : edges_) {
    if (!out.empty()) out += "; ";
    out += labels_[e.from] + "->" + labels_[e.to];
  }
  if (out.empty() && !labels_.empty()) out = labels_[0];
  return out;
}

}  // namespace fgpm
