// Graph pattern G_q (Section 2): a connected directed graph whose nodes
// are *labels* of the data graph and whose edges X -> Y are reachability
// conditions ("some X-labeled node reaches some Y-labeled node"). A match
// is an n-ary node tuple satisfying every condition conjunctively.
//
// Text syntax accepted by Parse():
//   "A->C; B->C; C->D; D->E"     (the paper's Figure 1(b))
//   "A -> B -> C"                (chains expand to one edge per arrow)
//   "Supplier->Retailer, Bank->Supplier"  (',' == ';')
// Identifiers are [A-Za-z_][A-Za-z0-9_]*; whitespace is insignificant.
#ifndef FGPM_QUERY_PATTERN_H_
#define FGPM_QUERY_PATTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fgpm {

// Index of a pattern node (a label) within the pattern.
using PatternNodeId = uint32_t;

struct PatternEdge {
  PatternNodeId from = 0;
  PatternNodeId to = 0;
  friend bool operator==(const PatternEdge&, const PatternEdge&) = default;
};

class Pattern {
 public:
  static Result<Pattern> Parse(std::string_view text);

  // Returns the node for `label`, creating it if new.
  PatternNodeId AddNode(std::string_view label);

  // Adds the reachability condition from -> to. Self-loops and duplicate
  // edges are rejected (a label trivially "reaches itself" reflexively,
  // so a self-loop constrains nothing).
  Status AddEdge(PatternNodeId from, PatternNodeId to);

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::string& label(PatternNodeId i) const { return labels_[i]; }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::vector<PatternEdge>& edges() const { return edges_; }

  // True if the pattern is weakly connected (the paper requires
  // connected patterns).
  bool IsConnected() const;

  // Non-empty, connected, every node mentioned by an edge unless the
  // pattern is a single isolated node.
  Status Validate() const;

  // Drops edges implied by transitivity ("X->Y and Y->Z implies X->Z",
  // Section 2 note) — an equivalence-preserving rewrite that removes
  // redundant R-joins.
  Pattern TransitiveReduction() const;

  // "A->C; B->C; ..." — parseable round-trip form.
  std::string ToString() const;

 private:
  std::vector<std::string> labels_;
  std::vector<PatternEdge> edges_;
};

}  // namespace fgpm

#endif  // FGPM_QUERY_PATTERN_H_
