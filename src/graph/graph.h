// Directed node-labeled graph G_D = (V, E, Sigma, phi) per Section 2 of
// the paper. Nodes carry exactly one label; ext(X) is the set of nodes
// labeled X. The container is built incrementally and then finalized into
// CSR adjacency for traversal.
#ifndef FGPM_GRAPH_GRAPH_H_
#define FGPM_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fgpm {

using NodeId = uint32_t;
using LabelId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr LabelId kInvalidLabel = 0xffffffffu;

class Graph {
 public:
  Graph() = default;

  // Movable but not copyable (copies of multi-million-node graphs should
  // be explicit — see Clone()).
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  Graph Clone() const;

  // --- construction ---------------------------------------------------

  // Interns `name` in the label dictionary (no-op if present).
  LabelId InternLabel(std::string_view name);

  // Adds a node with the given label; returns its id (dense, 0-based).
  NodeId AddNode(LabelId label);
  NodeId AddNode(std::string_view label_name) {
    return AddNode(InternLabel(label_name));
  }

  // Adds a directed edge u -> v. Parallel edges are deduplicated at
  // Finalize(); self-loops are allowed (they only affect SCC structure).
  Status AddEdge(NodeId u, NodeId v);

  // Builds CSR adjacency and per-label extents. Must be called before any
  // traversal accessor. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- accessors --------------------------------------------------------

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }
  size_t NumLabels() const { return label_names_.size(); }

  LabelId label_of(NodeId v) const { return labels_[v]; }
  const std::string& LabelName(LabelId l) const { return label_names_[l]; }
  std::optional<LabelId> FindLabel(std::string_view name) const;

  // ext(X): all nodes with label X, ascending by id. Requires Finalize().
  const std::vector<NodeId>& Extent(LabelId l) const { return extents_[l]; }

  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {&out_adj_[out_off_[v]], out_off_[v + 1] - out_off_[v]};
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {&in_adj_[in_off_[v]], in_off_[v + 1] - in_off_[v]};
  }
  size_t OutDegree(NodeId v) const { return out_off_[v + 1] - out_off_[v]; }
  size_t InDegree(NodeId v) const { return in_off_[v + 1] - in_off_[v]; }

  // Edge list in arbitrary order (valid also before Finalize()).
  const std::vector<std::pair<NodeId, NodeId>>& Edges() const {
    return edges_;
  }

 private:
  std::vector<LabelId> labels_;           // node -> label
  std::vector<std::string> label_names_;  // label -> name
  std::unordered_map<std::string, LabelId> label_ids_;
  std::vector<std::pair<NodeId, NodeId>> edges_;

  bool finalized_ = false;
  size_t num_edges_ = 0;  // after dedup
  std::vector<size_t> out_off_, in_off_;
  std::vector<NodeId> out_adj_, in_adj_;
  std::vector<std::vector<NodeId>> extents_;
};

}  // namespace fgpm

#endif  // FGPM_GRAPH_GRAPH_H_
