#include "graph/reach_oracle.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/sorted_vector.h"

namespace fgpm {

const std::vector<NodeId>& ReachOracle::ReachableFrom(NodeId u) {
  auto it = memo_.find(u);
  if (it != memo_.end()) return it->second;
  std::vector<bool> seen(g_->NumNodes(), false);
  std::deque<NodeId> queue{u};
  seen[u] = true;
  std::vector<NodeId> out;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    out.push_back(v);
    for (NodeId w : g_->OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return memo_.emplace(u, std::move(out)).first->second;
}

bool ReachOracle::Reaches(NodeId u, NodeId v) {
  if (u == v) return true;
  return SortedContains(ReachableFrom(u), v);
}

TransitiveClosure::TransitiveClosure(const Graph& g)
    : n_(g.NumNodes()), words_((n_ + 63) / 64) {
  FGPM_CHECK(g.finalized());
  bits_.assign(n_ * words_, 0);
  auto set_bit = [&](NodeId u, NodeId v) {
    bits_[static_cast<size_t>(u) * words_ + (v >> 6)] |= uint64_t{1}
                                                         << (v & 63);
  };
  // Closure row by row via BFS — O(V * E / 64) with bit-OR propagation
  // would be faster, but tests only use small graphs.
  std::vector<NodeId> queue;
  std::vector<bool> seen(n_);
  for (NodeId u = 0; u < n_; ++u) {
    std::fill(seen.begin(), seen.end(), false);
    queue.assign(1, u);
    seen[u] = true;
    set_bit(u, u);
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      for (NodeId w : g.OutNeighbors(queue[qi])) {
        if (!seen[w]) {
          seen[w] = true;
          set_bit(u, w);
          queue.push_back(w);
        }
      }
    }
  }
}

uint64_t TransitiveClosure::NumPairs() const {
  uint64_t total = 0;
  for (uint64_t w : bits_) total += static_cast<uint64_t>(__builtin_popcountll(w));
  return total;
}

}  // namespace fgpm
