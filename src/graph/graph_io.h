// Text serialization for labeled digraphs, so datasets can be saved,
// shipped and reloaded (examples and the CLI shell use this).
//
// Format (line-oriented, '#' comments allowed between sections):
//   fgpm-graph 1
//   labels <K>
//   <label name>            x K
//   nodes <N>
//   <label id>              x N   (node i's label, in id order)
//   edges <M>
//   <u> <v>                 x M
#ifndef FGPM_GRAPH_GRAPH_IO_H_
#define FGPM_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace fgpm {

Status WriteGraph(const Graph& g, std::ostream& os);
Status WriteGraphToFile(const Graph& g, const std::string& path);

Result<Graph> ReadGraph(std::istream& is);
Result<Graph> ReadGraphFromFile(const std::string& path);

}  // namespace fgpm

#endif  // FGPM_GRAPH_GRAPH_IO_H_
