#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace fgpm {

Graph Graph::Clone() const {
  Graph g;
  g.labels_ = labels_;
  g.label_names_ = label_names_;
  g.label_ids_ = label_ids_;
  g.edges_ = edges_;
  if (finalized_) g.Finalize();
  return g;
}

LabelId Graph::InternLabel(std::string_view name) {
  auto it = label_ids_.find(std::string(name));
  if (it != label_ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(label_names_.size());
  label_names_.emplace_back(name);
  label_ids_.emplace(std::string(name), id);
  return id;
}

NodeId Graph::AddNode(LabelId label) {
  FGPM_CHECK(label < label_names_.size());
  finalized_ = false;
  labels_.push_back(label);
  return static_cast<NodeId>(labels_.size() - 1);
}

Status Graph::AddEdge(NodeId u, NodeId v) {
  if (u >= labels_.size() || v >= labels_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  finalized_ = false;
  edges_.emplace_back(u, v);
  return Status::OK();
}

std::optional<LabelId> Graph::FindLabel(std::string_view name) const {
  auto it = label_ids_.find(std::string(name));
  if (it == label_ids_.end()) return std::nullopt;
  return it->second;
}

void Graph::Finalize() {
  if (finalized_) return;
  const size_t n = labels_.size();

  // Deduplicate parallel edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  num_edges_ = edges_.size();

  out_off_.assign(n + 1, 0);
  in_off_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++out_off_[u + 1];
    ++in_off_[v + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    out_off_[i + 1] += out_off_[i];
    in_off_[i + 1] += in_off_[i];
  }
  out_adj_.resize(num_edges_);
  in_adj_.resize(num_edges_);
  std::vector<size_t> ocur(out_off_.begin(), out_off_.end() - 1);
  std::vector<size_t> icur(in_off_.begin(), in_off_.end() - 1);
  for (const auto& [u, v] : edges_) {
    out_adj_[ocur[u]++] = v;
    in_adj_[icur[v]++] = u;
  }

  extents_.assign(label_names_.size(), {});
  for (NodeId v = 0; v < n; ++v) extents_[labels_[v]].push_back(v);

  finalized_ = true;
}

}  // namespace fgpm
