// Descriptive statistics for a labeled digraph: degree distribution,
// SCC structure and sampled reachability density. Used by the dataset
// benches and the shell's `stats` command to characterize workloads.
#ifndef FGPM_GRAPH_SUMMARY_H_
#define FGPM_GRAPH_SUMMARY_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace fgpm {

struct GraphSummary {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t num_labels = 0;

  double avg_out_degree = 0;
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  uint64_t source_nodes = 0;  // in-degree 0
  uint64_t sink_nodes = 0;    // out-degree 0

  uint32_t num_sccs = 0;
  uint64_t largest_scc = 0;
  bool is_dag = false;

  // Fraction of sampled ordered pairs (u, v) with u ~> v.
  double reach_density = 0;
  uint32_t reach_samples = 0;

  std::string ToString() const;
};

// `reach_samples` pairs are tested with a BFS oracle (0 disables the
// sampling, which is the only non-linear part).
GraphSummary Summarize(const Graph& g, uint32_t reach_samples = 2000,
                       uint64_t seed = 42);

}  // namespace fgpm

#endif  // FGPM_GRAPH_SUMMARY_H_
