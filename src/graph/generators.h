// Synthetic data-graph generators.
//
// The paper evaluates on graphs derived from the XMark XML benchmark:
// document trees (parent-child edges) plus ID/IDREF cross links, treated
// uniformly as directed edges. XMark itself is not available offline, so
// XMarkLike() synthesizes graphs of the same structural class — see
// DESIGN.md "Substitutions". The remaining generators provide random
// DAGs / digraphs for property tests and domain graphs for the examples.
#ifndef FGPM_GRAPH_GENERATORS_H_
#define FGPM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace fgpm::gen {

struct XMarkOptions {
  // Scale factor: factor 1.0 targets ~1.67M nodes like the paper's 100M
  // dataset; the paper's five datasets are factors 0.2 .. 1.0.
  double factor = 0.01;
  uint64_t seed = 42;
  // When true, every cross link is oriented from the lower to the higher
  // document-order id, guaranteeing a DAG (needed by the TSD baseline,
  // mirroring the paper's Section 6.1 setup).
  bool acyclic = false;
};

// Document-graph generator: a forest of auction-site documents over the
// XMark element vocabulary with IDREF cross links (person/item/category/
// open_auction references). |E|/|V| lands around the paper's 1.18.
Graph XMarkLike(const XMarkOptions& opts);

// G(n, m) digraph with labels drawn Zipf-skewed from `num_labels`.
Graph ErdosRenyi(uint32_t n, uint64_t m, uint32_t num_labels, uint64_t seed);

// Random DAG: n nodes, ~avg_out_degree random forward edges per node
// (only from lower to higher id).
Graph RandomDag(uint32_t n, double avg_out_degree, uint32_t num_labels,
                uint64_t seed);

// Directed preferential-attachment graph (dense hubs; stresses the TSD
// baseline's SSPI expansion like the paper's "dense DAG" remark).
Graph ScaleFree(uint32_t n, uint32_t edges_per_node, uint32_t num_labels,
                uint64_t seed);

// Layered business graph for the paper's motivating example: Supplier ->
// Manufacturer -> Wholeseller -> Retailer chains, every tier served by
// Banks, plus occasional skip/back edges that create cycles.
Graph SupplyChain(uint32_t companies_per_tier, uint64_t seed);

// Citation DAG: papers labeled by research area; edges point from citing
// (newer) to cited (older) papers, plus Author/Venue nodes.
Graph CitationNetwork(uint32_t num_papers, uint64_t seed);

// Social graph for the intro's "finding relationships in social
// networks": Influencer/Member accounts following each other,
// Communities they join, Posts they author and Comments referencing
// posts. Follows form cycles; content is a DAG hanging off accounts.
Graph SocialNetwork(uint32_t num_accounts, uint64_t seed);

}  // namespace fgpm::gen

#endif  // FGPM_GRAPH_GENERATORS_H_
