#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace fgpm {

SccResult ComputeScc(const Graph& g) {
  FGPM_CHECK(g.finalized());
  const size_t n = g.NumNodes();
  SccResult out;
  out.component.assign(n, 0xffffffffu);

  std::vector<uint32_t> index(n, 0xffffffffu), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  uint32_t next_index = 0;

  // Iterative Tarjan: frame = (node, position in its out-neighbor list).
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> call;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != 0xffffffffu) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      NodeId v = f.v;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      auto succ = g.OutNeighbors(v);
      bool descended = false;
      while (f.child < succ.size()) {
        NodeId w = succ[f.child++];
        if (index[w] == 0xffffffffu) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // All children done: maybe emit a component, then propagate lowlink.
      if (lowlink[v] == index[v]) {
        uint32_t cid = out.num_components++;
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component[w] = cid;
        } while (w != v);
      }
      call.pop_back();
      if (!call.empty()) {
        NodeId parent = call.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return out;
}

Condensation Condense(const Graph& g, const SccResult& scc) {
  Condensation c;
  LabelId l = c.dag.InternLabel("scc");
  c.members.resize(scc.num_components);
  c.rep.assign(scc.num_components, kInvalidNode);
  for (uint32_t i = 0; i < scc.num_components; ++i) c.dag.AddNode(l);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint32_t comp = scc.component[v];
    c.members[comp].push_back(v);
    if (c.rep[comp] == kInvalidNode) c.rep[comp] = v;
  }
  for (const auto& [u, v] : g.Edges()) {
    uint32_t cu = scc.component[u], cv = scc.component[v];
    if (cu != cv) {
      Status s = c.dag.AddEdge(cu, cv);
      FGPM_CHECK(s.ok());
    }
  }
  c.dag.Finalize();
  return c;
}

bool IsDag(const Graph& g) {
  SccResult scc = ComputeScc(g);
  if (scc.num_components != g.NumNodes()) return false;
  for (const auto& [u, v] : g.Edges()) {
    if (u == v) return false;  // self-loop
  }
  return true;
}

Result<std::vector<NodeId>> TopologicalOrder(const Graph& g) {
  FGPM_CHECK(g.finalized());
  const size_t n = g.NumNodes();
  std::vector<uint32_t> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v)
    indeg[v] = static_cast<uint32_t>(g.InDegree(v));
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(v);
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (NodeId w : g.OutNeighbors(v)) {
      if (--indeg[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) {
    return Status::FailedPrecondition("graph has a cycle");
  }
  return order;
}

DfsForest BuildDfsForest(const Graph& g) {
  FGPM_CHECK(g.finalized());
  const size_t n = g.NumNodes();
  DfsForest f;
  f.pre.assign(n, 0);
  f.post.assign(n, 0);
  f.parent.assign(n, kInvalidNode);
  std::vector<bool> visited(n, false);
  uint32_t pre_counter = 0, post_counter = 0;

  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> stack;

  auto dfs_from = [&](NodeId root) {
    if (visited[root]) return;
    visited[root] = true;
    f.pre[root] = pre_counter++;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& fr = stack.back();
      auto succ = g.OutNeighbors(fr.v);
      bool descended = false;
      while (fr.child < succ.size()) {
        NodeId w = succ[fr.child++];
        if (!visited[w]) {
          visited[w] = true;
          f.parent[w] = fr.v;
          f.pre[w] = pre_counter++;
          stack.push_back({w, 0});
          descended = true;
          break;
        }
        f.non_tree_edges.emplace_back(fr.v, w);
      }
      if (!descended) {
        f.post[fr.v] = post_counter++;
        stack.pop_back();
      }
    }
  };

  // Roots first (nodes nothing points at), then mop up the rest so every
  // node belongs to exactly one tree of the forest.
  for (NodeId v = 0; v < n; ++v)
    if (g.InDegree(v) == 0) dfs_from(v);
  for (NodeId v = 0; v < n; ++v) dfs_from(v);
  return f;
}

}  // namespace fgpm
