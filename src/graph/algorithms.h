// Classic digraph algorithms the reproduction depends on: Tarjan SCC,
// condensation into a DAG, topological sort, DFS spanning forest with
// pre/post numbering. All iterative (no recursion) so multi-million-node
// graphs do not overflow the stack.
#ifndef FGPM_GRAPH_ALGORITHMS_H_
#define FGPM_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace fgpm {

// Strongly connected components (Tarjan). Component ids are assigned in
// *reverse topological order of the condensation* (component 0 has no
// outgoing inter-component edges is NOT guaranteed; use Condensation +
// TopologicalOrder when order matters).
struct SccResult {
  uint32_t num_components = 0;
  std::vector<uint32_t> component;  // node -> component id
};
SccResult ComputeScc(const Graph& g);

// Condensation DAG of g given its SCC decomposition. Vertices are the
// component ids of `scc`; edges are deduplicated inter-component edges.
// The result has a single synthetic label per vertex ("scc") because
// labels are irrelevant at this level.
struct Condensation {
  Graph dag;                             // |V| = scc.num_components
  std::vector<uint32_t> rep;             // component -> one member node
  std::vector<std::vector<NodeId>> members;  // component -> its nodes
};
Condensation Condense(const Graph& g, const SccResult& scc);

// True if g has no directed cycle (every SCC is a singleton without a
// self-loop).
bool IsDag(const Graph& g);

// Topological order of a DAG (Kahn). Returns FailedPrecondition if g has
// a cycle. order[i] is the i-th vertex in topological order.
Result<std::vector<NodeId>> TopologicalOrder(const Graph& g);

// DFS spanning forest over a DAG (or any digraph) following out-edges
// from roots (in-degree-0 nodes first, then any unvisited node).
// Produces interval encoding: node u is a spanning-tree ancestor of v
// iff pre[u] <= pre[v] && post[v] <= post[u].
struct DfsForest {
  std::vector<uint32_t> pre;     // preorder number
  std::vector<uint32_t> post;    // postorder number
  std::vector<NodeId> parent;    // spanning-tree parent (kInvalidNode = root)
  std::vector<std::pair<NodeId, NodeId>> non_tree_edges;  // remaining edges
  bool IsTreeAncestor(NodeId u, NodeId v) const {
    return pre[u] <= pre[v] && post[v] <= post[u];
  }
};
DfsForest BuildDfsForest(const Graph& g);

}  // namespace fgpm

#endif  // FGPM_GRAPH_ALGORITHMS_H_
