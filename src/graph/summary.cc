#include "graph/summary.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/reach_oracle.h"

namespace fgpm {

std::string GraphSummary::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "|V|=%llu |E|=%llu labels=%u avg_out=%.3f max_out=%llu max_in=%llu "
      "sources=%llu sinks=%llu sccs=%u largest_scc=%llu dag=%s "
      "reach_density=%.4f (n=%u)",
      (unsigned long long)num_nodes, (unsigned long long)num_edges,
      num_labels, avg_out_degree, (unsigned long long)max_out_degree,
      (unsigned long long)max_in_degree, (unsigned long long)source_nodes,
      (unsigned long long)sink_nodes, num_sccs,
      (unsigned long long)largest_scc, is_dag ? "yes" : "no", reach_density,
      reach_samples);
  return buf;
}

GraphSummary Summarize(const Graph& g, uint32_t reach_samples,
                       uint64_t seed) {
  GraphSummary s;
  s.num_nodes = g.NumNodes();
  s.num_edges = g.NumEdges();
  s.num_labels = static_cast<uint32_t>(g.NumLabels());
  if (s.num_nodes == 0) return s;

  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint64_t od = g.OutDegree(v), id = g.InDegree(v);
    s.max_out_degree = std::max(s.max_out_degree, od);
    s.max_in_degree = std::max(s.max_in_degree, id);
    if (id == 0) ++s.source_nodes;
    if (od == 0) ++s.sink_nodes;
  }
  s.avg_out_degree = double(s.num_edges) / double(s.num_nodes);

  SccResult scc = ComputeScc(g);
  s.num_sccs = scc.num_components;
  std::vector<uint64_t> sizes(scc.num_components, 0);
  for (uint32_t c : scc.component) ++sizes[c];
  s.largest_scc = *std::max_element(sizes.begin(), sizes.end());
  s.is_dag = IsDag(g);

  if (reach_samples > 0) {
    ReachOracle oracle(&g);
    Rng rng(seed);
    uint32_t hits = 0;
    for (uint32_t i = 0; i < reach_samples; ++i) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      if (oracle.Reaches(u, v)) ++hits;
    }
    s.reach_density = double(hits) / double(reach_samples);
    s.reach_samples = reach_samples;
  }
  return s;
}

}  // namespace fgpm
