#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace fgpm::gen {
namespace {

// Nodes eligible as IDREF targets, collected during document generation.
struct RefPools {
  std::vector<NodeId> categories;
  std::vector<NodeId> items;
  std::vector<NodeId> persons;
  std::vector<NodeId> open_auctions;
};

// Which pool an IDREF leaf points into. Targets are resolved against the
// FULL pools after generation (XMark references are document-order
// independent, so forward references — and thus cycles — must occur).
enum class RefKind { kCategory, kItem, kPerson, kOpenAuction };

using CrossRequest = std::pair<NodeId, RefKind>;

struct XmarkLabels {
  LabelId site, regions, region, item, name, incategory, description, text,
      keyword, bold, emph, categories, category, people, person, profile,
      interest, watch, open_auctions, open_auction, bidder, personref,
      itemref, seller, annotation, closed_auctions, closed_auction, price,
      buyer, quantity, date, parlist, listitem;
};

XmarkLabels InternXmarkLabels(Graph* g) {
  XmarkLabels l;
  l.site = g->InternLabel("site");
  l.regions = g->InternLabel("regions");
  l.region = g->InternLabel("region");
  l.item = g->InternLabel("item");
  l.name = g->InternLabel("name");
  l.incategory = g->InternLabel("incategory");
  l.description = g->InternLabel("description");
  l.text = g->InternLabel("text");
  l.keyword = g->InternLabel("keyword");
  l.bold = g->InternLabel("bold");
  l.emph = g->InternLabel("emph");
  l.categories = g->InternLabel("categories");
  l.category = g->InternLabel("category");
  l.people = g->InternLabel("people");
  l.person = g->InternLabel("person");
  l.profile = g->InternLabel("profile");
  l.interest = g->InternLabel("interest");
  l.watch = g->InternLabel("watch");
  l.open_auctions = g->InternLabel("open_auctions");
  l.open_auction = g->InternLabel("open_auction");
  l.bidder = g->InternLabel("bidder");
  l.personref = g->InternLabel("personref");
  l.itemref = g->InternLabel("itemref");
  l.seller = g->InternLabel("seller");
  l.annotation = g->InternLabel("annotation");
  l.closed_auctions = g->InternLabel("closed_auctions");
  l.closed_auction = g->InternLabel("closed_auction");
  l.price = g->InternLabel("price");
  l.buyer = g->InternLabel("buyer");
  l.quantity = g->InternLabel("quantity");
  l.date = g->InternLabel("date");
  l.parlist = g->InternLabel("parlist");
  l.listitem = g->InternLabel("listitem");
  return l;
}

// Builds ONE auction-site document, like real XMark: a single site root
// with categories/regions/people/auction sections whose entity counts
// scale with the factor. Entities are appended in rounds until the node
// budget is met; the section roots become natural 2-hop hubs, keeping
// the cover ratio |H|/|V| in the paper's band.
class XmarkSiteBuilder {
 public:
  XmarkSiteBuilder(Graph* g, const XmarkLabels& l, Rng* rng, RefPools* pools,
                   std::vector<CrossRequest>* cross_requests)
      : g_(g), l_(l), rng_(rng), pools_(pools), cross_(cross_requests) {}

  // Creates the site skeleton: the root and its six sections.
  void BuildSkeleton() {
    NodeId site = g_->AddNode(l_.site);
    categories_ = Child(site, l_.categories);
    regions_ = Child(site, l_.regions);
    // XMark has six continental regions.
    for (int i = 0; i < 6; ++i) region_nodes_.push_back(Child(regions_, l_.region));
    people_ = Child(site, l_.people);
    open_auctions_ = Child(site, l_.open_auctions);
    closed_auctions_ = Child(site, l_.closed_auctions);
    // Seed categories so early items have IDREF targets.
    for (int i = 0; i < 4; ++i) AddCategory();
  }

  // Adds one round of entities in roughly XMark's entity proportions
  // (items : persons : open auctions : closed auctions : categories
  //  ~ 20 : 25 : 10 : 10 : 1).
  void AddRound() {
    ++round_;
    if (round_ % 5 == 0) AddCategory();
    for (int i = 0; i < 4; ++i) AddItem();
    for (int i = 0; i < 5; ++i) AddPerson();
    for (int i = 0; i < 2; ++i) AddOpenAuction();
    for (int i = 0; i < 2; ++i) AddClosedAuction();
  }

 private:
  NodeId Child(NodeId parent, LabelId label) {
    NodeId v = g_->AddNode(label);
    Status s = g_->AddEdge(parent, v);
    FGPM_CHECK(s.ok());
    return v;
  }

  // description -> parlist -> listitem* -> text -> {bold|keyword|emph}*
  // Like real XMark, text content dominates the node count, which keeps
  // the entity/reference web a small fraction of |V|.
  void BuildDescription(NodeId parent) {
    NodeId d = Child(parent, l_.description);
    NodeId pl = Child(d, l_.parlist);
    int items = static_cast<int>(2 + rng_->NextBounded(3));
    for (int li = 0; li < items; ++li) {
      NodeId item = Child(pl, l_.listitem);
      NodeId t = Child(item, l_.text);
      int extras = static_cast<int>(1 + rng_->NextBounded(3));
      for (int i = 0; i < extras; ++i) {
        switch (rng_->NextBounded(3)) {
          case 0:
            Child(t, l_.bold);
            break;
          case 1:
            Child(t, l_.keyword);
            break;
          default:
            Child(t, l_.emph);
            break;
        }
      }
    }
  }

  void AddCategory() {
    NodeId c = Child(categories_, l_.category);
    pools_->categories.push_back(c);
    Child(c, l_.name);
    BuildDescription(c);
  }

  void AddItem() {
    NodeId region = region_nodes_[rng_->NextBounded(region_nodes_.size())];
    NodeId item = Child(region, l_.item);
    pools_->items.push_back(item);
    Child(item, l_.name);
    Child(item, l_.quantity);
    BuildDescription(item);
    // Category refs are safe fan-out: categories reference nothing, so
    // they never feed the reachability loop.
    int nc = static_cast<int>(1 + rng_->NextBounded(2));
    for (int c = 0; c < nc; ++c) {
      NodeId ref = Child(item, l_.incategory);
      RequestCrossEdge(ref, RefKind::kCategory);
    }
  }

  void AddPerson() {
    NodeId person = Child(people_, l_.person);
    pools_->persons.push_back(person);
    Child(person, l_.name);
    if (rng_->NextBernoulli(0.7)) {
      NodeId profile = Child(person, l_.profile);
      int ni = static_cast<int>(rng_->NextBounded(3));
      for (int i = 0; i < ni; ++i) {
        NodeId ref = Child(profile, l_.interest);
        RequestCrossEdge(ref, RefKind::kCategory);
      }
    }
    // Watches close the person -> auction -> bidder -> person reference
    // loop. The loop's branching factor (watches/person x persons/auction)
    // must stay below 1, or reachable sets percolate across the whole
    // entity web and query results explode combinatorially.
    if (rng_->NextBernoulli(0.35)) {
      NodeId ref = Child(person, l_.watch);
      RequestCrossEdge(ref, RefKind::kOpenAuction);
    }
  }

  void AddOpenAuction() {
    NodeId oa = Child(open_auctions_, l_.open_auction);
    pools_->open_auctions.push_back(oa);
    int nb = static_cast<int>(rng_->NextBounded(3));
    for (int b = 0; b < nb; ++b) {
      NodeId bidder = Child(oa, l_.bidder);
      Child(bidder, l_.date);
      NodeId ref = Child(bidder, l_.personref);
      RequestCrossEdge(ref, RefKind::kPerson);
    }
    NodeId iref = Child(oa, l_.itemref);
    RequestCrossEdge(iref, RefKind::kItem);
    NodeId sref = Child(oa, l_.seller);
    RequestCrossEdge(sref, RefKind::kPerson);
    NodeId ann = Child(oa, l_.annotation);
    BuildDescription(ann);
  }

  void AddClosedAuction() {
    NodeId ca = Child(closed_auctions_, l_.closed_auction);
    Child(ca, l_.price);
    Child(ca, l_.date);
    NodeId iref = Child(ca, l_.itemref);
    RequestCrossEdge(iref, RefKind::kItem);
    NodeId bref = Child(ca, l_.buyer);
    RequestCrossEdge(bref, RefKind::kPerson);
    NodeId sref = Child(ca, l_.seller);
    RequestCrossEdge(sref, RefKind::kPerson);
    NodeId ann = Child(ca, l_.annotation);
    BuildDescription(ann);
  }

  void RequestCrossEdge(NodeId from, RefKind kind) {
    cross_->emplace_back(from, kind);
  }

  Graph* g_;
  const XmarkLabels& l_;
  Rng* rng_;
  RefPools* pools_;
  std::vector<CrossRequest>* cross_;
  NodeId categories_ = kInvalidNode;
  NodeId regions_ = kInvalidNode;
  NodeId people_ = kInvalidNode;
  NodeId open_auctions_ = kInvalidNode;
  NodeId closed_auctions_ = kInvalidNode;
  std::vector<NodeId> region_nodes_;
  uint64_t round_ = 0;
};

}  // namespace

Graph XMarkLike(const XMarkOptions& opts) {
  FGPM_CHECK(opts.factor > 0);
  Graph g;
  XmarkLabels labels = InternXmarkLabels(&g);
  Rng rng(opts.seed);
  RefPools pools;
  std::vector<CrossRequest> cross;

  // Paper's 100M dataset (factor 1.0) has 1,666,315 nodes.
  const uint64_t target_nodes =
      static_cast<uint64_t>(opts.factor * 1'666'315.0);
  XmarkSiteBuilder builder(&g, labels, &rng, &pools, &cross);
  builder.BuildSkeleton();
  while (g.NumNodes() < target_nodes) builder.AddRound();

  // Resolve IDREF targets against the complete pools so references can
  // point forward as well as backward (real XMark has reference cycles).
  for (auto [u, kind] : cross) {
    const std::vector<NodeId>* pool = nullptr;
    switch (kind) {
      case RefKind::kCategory:
        pool = &pools.categories;
        break;
      case RefKind::kItem:
        pool = &pools.items;
        break;
      case RefKind::kPerson:
        pool = &pools.persons;
        break;
      case RefKind::kOpenAuction:
        pool = &pools.open_auctions;
        break;
    }
    if (pool->empty()) continue;
    NodeId v = (*pool)[rng.NextBounded(pool->size())];
    if (opts.acyclic && u > v) std::swap(u, v);
    if (u == v) continue;
    Status s = g.AddEdge(u, v);
    FGPM_CHECK(s.ok());
  }
  g.Finalize();
  return g;
}

Graph ErdosRenyi(uint32_t n, uint64_t m, uint32_t num_labels, uint64_t seed) {
  FGPM_CHECK(n > 0 && num_labels > 0);
  Graph g;
  std::vector<LabelId> labels;
  labels.reserve(num_labels);
  for (uint32_t i = 0; i < num_labels; ++i) {
    labels.push_back(g.InternLabel("L" + std::to_string(i)));
  }
  Rng rng(seed);
  // Zipf-skewed label assignment so extents have realistic size spread.
  ZipfDistribution zipf(num_labels, 0.6);
  for (uint32_t v = 0; v < n; ++v) {
    g.AddNode(labels[zipf.Sample(&rng)]);
  }
  for (uint64_t e = 0; e < m; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    Status s = g.AddEdge(u, v);
    FGPM_CHECK(s.ok());
  }
  g.Finalize();
  return g;
}

Graph RandomDag(uint32_t n, double avg_out_degree, uint32_t num_labels,
                uint64_t seed) {
  FGPM_CHECK(n > 1 && num_labels > 0);
  Graph g;
  std::vector<LabelId> labels;
  for (uint32_t i = 0; i < num_labels; ++i) {
    labels.push_back(g.InternLabel("L" + std::to_string(i)));
  }
  Rng rng(seed);
  for (uint32_t v = 0; v < n; ++v) {
    g.AddNode(labels[rng.NextBounded(num_labels)]);
  }
  uint64_t m = static_cast<uint64_t>(avg_out_degree * n);
  for (uint64_t e = 0; e < m; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n - 1));
    // Strictly forward edge keeps the graph acyclic.
    NodeId v = u + 1 + static_cast<NodeId>(rng.NextBounded(n - 1 - u));
    Status s = g.AddEdge(u, v);
    FGPM_CHECK(s.ok());
  }
  g.Finalize();
  return g;
}

Graph ScaleFree(uint32_t n, uint32_t edges_per_node, uint32_t num_labels,
                uint64_t seed) {
  FGPM_CHECK(n > 2 && num_labels > 0 && edges_per_node > 0);
  Graph g;
  std::vector<LabelId> labels;
  for (uint32_t i = 0; i < num_labels; ++i) {
    labels.push_back(g.InternLabel("L" + std::to_string(i)));
  }
  Rng rng(seed);
  for (uint32_t v = 0; v < n; ++v) {
    g.AddNode(labels[rng.NextBounded(num_labels)]);
  }
  // Preferential attachment via the repeated-endpoints trick: sampling a
  // uniform position in the running endpoint list is proportional to
  // degree.
  std::vector<NodeId> endpoints = {0, 1};
  Status s = g.AddEdge(1, 0);
  FGPM_CHECK(s.ok());
  for (NodeId v = 2; v < n; ++v) {
    for (uint32_t k = 0; k < edges_per_node; ++k) {
      NodeId target = endpoints[rng.NextBounded(endpoints.size())];
      if (target == v) continue;
      s = g.AddEdge(v, target);
      FGPM_CHECK(s.ok());
      endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }
  g.Finalize();
  return g;
}

Graph SupplyChain(uint32_t companies_per_tier, uint64_t seed) {
  FGPM_CHECK(companies_per_tier > 0);
  Graph g;
  LabelId supplier = g.InternLabel("Supplier");
  LabelId manufacturer = g.InternLabel("Manufacturer");
  LabelId wholeseller = g.InternLabel("Wholeseller");
  LabelId retailer = g.InternLabel("Retailer");
  LabelId bank = g.InternLabel("Bank");
  Rng rng(seed);

  const uint32_t n = companies_per_tier;
  std::vector<NodeId> sup, man, who, ret, banks;
  for (uint32_t i = 0; i < n; ++i) sup.push_back(g.AddNode(supplier));
  for (uint32_t i = 0; i < n; ++i) man.push_back(g.AddNode(manufacturer));
  for (uint32_t i = 0; i < n; ++i) who.push_back(g.AddNode(wholeseller));
  for (uint32_t i = 0; i < n; ++i) ret.push_back(g.AddNode(retailer));
  uint32_t nb = std::max<uint32_t>(1, n / 4);
  for (uint32_t i = 0; i < nb; ++i) banks.push_back(g.AddNode(bank));

  auto connect_tiers = [&](const std::vector<NodeId>& from,
                           const std::vector<NodeId>& to, double fanout) {
    for (NodeId u : from) {
      int k = 1 + static_cast<int>(rng.NextBounded(
                  static_cast<uint64_t>(fanout)));
      for (int i = 0; i < k; ++i) {
        NodeId v = to[rng.NextBounded(to.size())];
        Status s = g.AddEdge(u, v);
        FGPM_CHECK(s.ok());
      }
    }
  };
  connect_tiers(sup, man, 3);
  connect_tiers(man, who, 3);
  connect_tiers(who, ret, 4);
  // Some suppliers sell to wholesellers directly (the paper's pattern asks
  // for direct-or-indirect supply).
  connect_tiers(sup, who, 2);
  // Banks serve companies at all tiers.
  for (const auto* tier : {&sup, &man, &who, &ret}) {
    for (NodeId u : *tier) {
      if (rng.NextBernoulli(0.6)) {
        NodeId b = banks[rng.NextBounded(banks.size())];
        Status s = g.AddEdge(b, u);
        FGPM_CHECK(s.ok());
      }
    }
  }
  // Occasional partnership back-edges create cycles (real supply webs are
  // not DAGs).
  for (uint32_t i = 0; i < n / 5 + 1; ++i) {
    NodeId r = ret[rng.NextBounded(ret.size())];
    NodeId s2 = sup[rng.NextBounded(sup.size())];
    Status s = g.AddEdge(r, s2);
    FGPM_CHECK(s.ok());
  }
  g.Finalize();
  return g;
}

Graph CitationNetwork(uint32_t num_papers, uint64_t seed) {
  FGPM_CHECK(num_papers > 1);
  Graph g;
  const char* kAreas[] = {"Database", "Theory", "Systems", "ML", "Graphics"};
  LabelId area_labels[5];
  for (int i = 0; i < 5; ++i) area_labels[i] = g.InternLabel(kAreas[i]);
  LabelId author = g.InternLabel("Author");
  LabelId venue = g.InternLabel("Venue");
  Rng rng(seed);

  // Papers in publication order: id i can only cite j < i (a DAG).
  std::vector<NodeId> papers;
  for (uint32_t i = 0; i < num_papers; ++i) {
    papers.push_back(g.AddNode(area_labels[rng.NextBounded(5)]));
  }
  for (uint32_t i = 1; i < num_papers; ++i) {
    int refs = 1 + static_cast<int>(rng.NextBounded(5));
    for (int r = 0; r < refs; ++r) {
      // Recency bias: prefer recent papers.
      uint32_t span = std::min<uint32_t>(i, 200);
      uint32_t j = i - 1 - static_cast<uint32_t>(rng.NextBounded(span));
      Status s = g.AddEdge(papers[i], papers[j]);
      FGPM_CHECK(s.ok());
    }
  }
  uint32_t num_authors = std::max<uint32_t>(2, num_papers / 3);
  uint32_t num_venues = std::max<uint32_t>(1, num_papers / 50);
  std::vector<NodeId> authors, venues;
  for (uint32_t i = 0; i < num_authors; ++i) authors.push_back(g.AddNode(author));
  for (uint32_t i = 0; i < num_venues; ++i) venues.push_back(g.AddNode(venue));
  for (uint32_t i = 0; i < num_papers; ++i) {
    int na = 1 + static_cast<int>(rng.NextBounded(3));
    for (int a = 0; a < na; ++a) {
      Status s = g.AddEdge(authors[rng.NextBounded(authors.size())], papers[i]);
      FGPM_CHECK(s.ok());
    }
    Status s = g.AddEdge(venues[rng.NextBounded(venues.size())], papers[i]);
    FGPM_CHECK(s.ok());
  }
  g.Finalize();
  return g;
}

Graph SocialNetwork(uint32_t num_accounts, uint64_t seed) {
  FGPM_CHECK(num_accounts >= 10);
  Graph g;
  LabelId influencer = g.InternLabel("Influencer");
  LabelId member = g.InternLabel("Member");
  LabelId community = g.InternLabel("Community");
  LabelId post = g.InternLabel("Post");
  LabelId comment = g.InternLabel("Comment");
  LabelId topic = g.InternLabel("Topic");
  Rng rng(seed);

  auto edge = [&](NodeId u, NodeId v) {
    Status s = g.AddEdge(u, v);
    FGPM_CHECK(s.ok());
  };

  // ~4% of accounts are influencers; everyone else is a member.
  std::vector<NodeId> accounts, influencers;
  uint32_t num_influencers = std::max<uint32_t>(1, num_accounts / 25);
  for (uint32_t i = 0; i < num_influencers; ++i) {
    NodeId a = g.AddNode(influencer);
    accounts.push_back(a);
    influencers.push_back(a);
  }
  for (uint32_t i = num_influencers; i < num_accounts; ++i) {
    accounts.push_back(g.AddNode(member));
  }

  std::vector<NodeId> topics, communities;
  uint32_t num_topics = std::max<uint32_t>(2, num_accounts / 100);
  for (uint32_t i = 0; i < num_topics; ++i) topics.push_back(g.AddNode(topic));
  uint32_t num_communities = std::max<uint32_t>(2, num_accounts / 40);
  for (uint32_t i = 0; i < num_communities; ++i) {
    NodeId c = g.AddNode(community);
    communities.push_back(c);
    edge(c, topics[rng.NextBounded(topics.size())]);
  }

  // Follows: preferential toward influencers; mutual follows create the
  // social cycles the intro alludes to.
  for (NodeId a : accounts) {
    int nf = 1 + static_cast<int>(rng.NextBounded(3));
    for (int f = 0; f < nf; ++f) {
      NodeId target = rng.NextBernoulli(0.5)
                          ? influencers[rng.NextBounded(influencers.size())]
                          : accounts[rng.NextBounded(accounts.size())];
      if (target != a) edge(a, target);
    }
    // Community membership.
    if (rng.NextBernoulli(0.7)) {
      edge(a, communities[rng.NextBounded(communities.size())]);
    }
  }

  // Content: influencers post more; comments reference posts and hang
  // off their authors.
  std::vector<NodeId> posts;
  for (NodeId a : accounts) {
    bool is_influencer = g.label_of(a) == influencer;
    int np = static_cast<int>(rng.NextBounded(is_influencer ? 4 : 2));
    for (int p = 0; p < np; ++p) {
      NodeId pn = g.AddNode(post);
      posts.push_back(pn);
      edge(a, pn);
      edge(pn, topics[rng.NextBounded(topics.size())]);
    }
  }
  for (NodeId a : accounts) {
    if (posts.empty()) break;
    int nc = static_cast<int>(rng.NextBounded(2));
    for (int c = 0; c < nc; ++c) {
      NodeId cn = g.AddNode(comment);
      edge(a, cn);
      edge(cn, posts[rng.NextBounded(posts.size())]);
    }
  }
  g.Finalize();
  return g;
}

}  // namespace fgpm::gen
