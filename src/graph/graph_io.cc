#include "graph/graph_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace fgpm {
namespace {

constexpr char kMagic[] = "fgpm-graph";
constexpr int kVersion = 1;

// Next non-comment, non-blank line.
bool NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    if (start > 0 || line->back() == '\r') {
      size_t end = line->find_last_not_of(" \t\r");
      *line = line->substr(start, end - start + 1);
    }
    return true;
  }
  return false;
}

Status ExpectHeader(const std::string& line, const std::string& keyword,
                    uint64_t* count) {
  std::istringstream ss(line);
  std::string word;
  if (!(ss >> word) || word != keyword || !(ss >> *count)) {
    return Status::Corruption("expected '" + keyword + " <count>', got '" +
                              line + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteGraph(const Graph& g, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "labels " << g.NumLabels() << '\n';
  for (LabelId l = 0; l < g.NumLabels(); ++l) os << g.LabelName(l) << '\n';
  os << "nodes " << g.NumNodes() << '\n';
  for (NodeId v = 0; v < g.NumNodes(); ++v) os << g.label_of(v) << '\n';
  os << "edges " << g.NumEdges() << '\n';
  for (const auto& [u, v] : g.Edges()) os << u << ' ' << v << '\n';
  if (!os) return Status::Internal("stream write failed");
  return Status::OK();
}

Status WriteGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  return WriteGraph(g, out);
}

Result<Graph> ReadGraph(std::istream& is) {
  std::string line;
  if (!NextLine(is, &line)) return Status::Corruption("empty graph file");
  {
    std::istringstream ss(line);
    std::string magic;
    int version = 0;
    if (!(ss >> magic >> version) || magic != kMagic) {
      return Status::Corruption("bad magic line: '" + line + "'");
    }
    if (version != kVersion) {
      return Status::Unimplemented("unsupported graph version " +
                                   std::to_string(version));
    }
  }

  Graph g;
  uint64_t num_labels = 0;
  if (!NextLine(is, &line)) return Status::Corruption("missing labels header");
  FGPM_RETURN_IF_ERROR(ExpectHeader(line, "labels", &num_labels));
  for (uint64_t i = 0; i < num_labels; ++i) {
    if (!NextLine(is, &line)) return Status::Corruption("missing label name");
    if (g.InternLabel(line) != i) {
      return Status::Corruption("duplicate label name '" + line + "'");
    }
  }

  uint64_t num_nodes = 0;
  if (!NextLine(is, &line)) return Status::Corruption("missing nodes header");
  FGPM_RETURN_IF_ERROR(ExpectHeader(line, "nodes", &num_nodes));
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (!NextLine(is, &line)) return Status::Corruption("missing node label");
    uint64_t label = 0;
    std::istringstream ss(line);
    if (!(ss >> label) || label >= num_labels) {
      return Status::Corruption("bad node label line: '" + line + "'");
    }
    g.AddNode(static_cast<LabelId>(label));
  }

  uint64_t num_edges = 0;
  if (!NextLine(is, &line)) return Status::Corruption("missing edges header");
  FGPM_RETURN_IF_ERROR(ExpectHeader(line, "edges", &num_edges));
  for (uint64_t i = 0; i < num_edges; ++i) {
    if (!NextLine(is, &line)) return Status::Corruption("missing edge line");
    uint64_t u = 0, v = 0;
    std::istringstream ss(line);
    if (!(ss >> u >> v)) {
      return Status::Corruption("bad edge line: '" + line + "'");
    }
    Status s = g.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    if (!s.ok()) return Status::Corruption("edge out of range: '" + line + "'");
  }
  g.Finalize();
  return g;
}

Result<Graph> ReadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadGraph(in);
}

}  // namespace fgpm
