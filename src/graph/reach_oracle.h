// Ground-truth reachability oracles used to validate every index and
// engine in the repository.
//
//  * ReachOracle      — BFS on demand with per-source memoization; works
//                       at any scale, used by the naive matcher.
//  * TransitiveClosure — full bitset closure; O(|V|^2/64) memory, only
//                       for small graphs in tests.
#ifndef FGPM_GRAPH_REACH_ORACLE_H_
#define FGPM_GRAPH_REACH_ORACLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace fgpm {

class ReachOracle {
 public:
  explicit ReachOracle(const Graph* g) : g_(g) {}

  // True iff v is reachable from u (reflexively: Reaches(u, u) == true,
  // matching the paper's compact graph codes which include the node
  // itself in both in() and out()).
  bool Reaches(NodeId u, NodeId v);

  // All nodes reachable from u (including u), ascending.
  const std::vector<NodeId>& ReachableFrom(NodeId u);

  size_t memo_size() const { return memo_.size(); }

 private:
  const Graph* g_;
  std::unordered_map<NodeId, std::vector<NodeId>> memo_;
};

class TransitiveClosure {
 public:
  explicit TransitiveClosure(const Graph& g);

  bool Reaches(NodeId u, NodeId v) const {
    return (bits_[static_cast<size_t>(u) * words_ + (v >> 6)] >> (v & 63)) & 1;
  }

  // Number of reachable (u, v) pairs including the diagonal.
  uint64_t NumPairs() const;

 private:
  size_t n_;
  size_t words_;
  std::vector<uint64_t> bits_;
};

}  // namespace fgpm

#endif  // FGPM_GRAPH_REACH_ORACLE_H_
