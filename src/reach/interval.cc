#include "reach/interval.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/algorithms.h"

namespace fgpm {

std::vector<PostInterval> NormalizeIntervals(std::vector<PostInterval> in) {
  if (in.empty()) return in;
  std::sort(in.begin(), in.end(), [](const PostInterval& a,
                                     const PostInterval& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  });
  std::vector<PostInterval> out;
  out.push_back(in[0]);
  for (size_t i = 1; i < in.size(); ++i) {
    PostInterval& last = out.back();
    if (in[i].lo <= last.hi + 1 && in[i].lo >= last.lo) {
      last.hi = std::max(last.hi, in[i].hi);
    } else if (in[i].lo > last.hi + 1) {
      out.push_back(in[i]);
    } else {
      last.hi = std::max(last.hi, in[i].hi);
    }
  }
  return out;
}

bool IntervalsContain(const std::vector<PostInterval>& ivs, uint32_t po) {
  // First interval with lo > po is past the candidate; check the one
  // before it.
  auto it = std::upper_bound(
      ivs.begin(), ivs.end(), po,
      [](uint32_t v, const PostInterval& iv) { return v < iv.lo; });
  if (it == ivs.begin()) return false;
  --it;
  return po <= it->hi;
}

MultiIntervalIndex::MultiIntervalIndex(const Graph& g) {
  FGPM_CHECK(g.finalized());
  SccResult scc = ComputeScc(g);
  Condensation cond = Condense(g, scc);
  const uint32_t n = cond.dag.NumNodes();
  scc_of_.assign(scc.component.begin(), scc.component.end());

  DfsForest forest = BuildDfsForest(cond.dag);
  post_.assign(forest.post.begin(), forest.post.end());

  // Subtree postorder minimum: a node's spanning subtree occupies the
  // contiguous postorder range [min_po, post(v)].
  std::vector<uint32_t> min_po(n);
  for (uint32_t v = 0; v < n; ++v) min_po[v] = post_[v];
  // Children finish before parents in postorder, so scanning vertices in
  // postorder ascending lets children push their min up to the parent.
  std::vector<uint32_t> by_post(n);
  for (uint32_t v = 0; v < n; ++v) by_post[post_[v]] = v;
  for (uint32_t p = 0; p < n; ++p) {
    uint32_t v = by_post[p];
    NodeId parent = forest.parent[v];
    if (parent != kInvalidNode) {
      min_po[parent] = std::min(min_po[parent], min_po[v]);
    }
  }

  // Tree cover: process in reverse topological order, inheriting interval
  // sets across *all* DAG edges (tree and non-tree).
  auto order = TopologicalOrder(cond.dag);
  FGPM_CHECK(order.ok());
  intervals_.assign(n, {});
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    uint32_t v = *it;
    std::vector<PostInterval> acc;
    acc.push_back({min_po[v], post_[v]});
    for (NodeId w : cond.dag.OutNeighbors(v)) {
      const auto& child = intervals_[w];
      acc.insert(acc.end(), child.begin(), child.end());
    }
    intervals_[v] = NormalizeIntervals(std::move(acc));
  }
}

bool MultiIntervalIndex::Reaches(NodeId u, NodeId v) const {
  if (u == v) return true;
  uint32_t cu = scc_of_[u], cv = scc_of_[v];
  if (cu == cv) return true;
  return IntervalsContain(intervals_[cu], post_[cv]);
}

uint64_t MultiIntervalIndex::TotalIntervals() const {
  uint64_t total = 0;
  for (const auto& ivs : intervals_) total += ivs.size();
  return total;
}

}  // namespace fgpm
