#include "reach/sspi.h"

#include "common/hash.h"
#include "common/logging.h"

namespace fgpm {

SspiIndex::SspiIndex(const Graph& g) : g_(&g), forest_(BuildDfsForest(g)) {
  FGPM_CHECK(g.finalized());
  non_tree_in_.assign(g.NumNodes(), {});
  for (const auto& [u, v] : forest_.non_tree_edges) {
    non_tree_in_[v].push_back(u);
  }
}

bool SspiIndex::Reaches(NodeId u, NodeId v) const {
  if (u == v) return true;
  if (forest_.IsTreeAncestor(u, v)) return true;
  uint64_t key = PackPair(u, v);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  // Any u ~> v path ends with tree edges below some ancestor w of v (in
  // the spanning tree) entered through a non-tree edge (x, w): recurse on
  // u ~> x. Walk v's tree-ancestor chain collecting those entries.
  bool result = false;
  for (NodeId w = v; w != kInvalidNode && !result; w = forest_.parent[w]) {
    for (NodeId x : non_tree_in_[w]) {
      if (Reaches(u, x)) {
        result = true;
        break;
      }
    }
  }
  memo_.emplace(key, result);
  return result;
}

uint64_t SspiIndex::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& p : non_tree_in_) total += p.size();
  return total;
}

}  // namespace fgpm
