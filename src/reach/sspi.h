// SSPI — Surrogate & Surplus Predecessor Index (Chen et al. [11]),
// phase-2 structure of the TSD baseline. A DFS spanning forest answers
// tree ancestry by interval containment; every reachability fact that
// crosses a non-tree edge is recovered by walking predecessor entries:
// for a target v, any path u ~> v ends with a (possibly empty) chain of
// tree edges below some node w, preceded by a non-tree edge (x, w).
// SSPI stores those non-tree predecessors; queries recurse through them.
//
// Like the original, performance degrades as the DAG gets denser (more
// non-tree edges to chase) — the behavior the paper's Figure 5 exposes.
#ifndef FGPM_REACH_SSPI_H_
#define FGPM_REACH_SSPI_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/algorithms.h"
#include "graph/graph.h"

namespace fgpm {

class SspiIndex {
 public:
  // g must be a DAG (the TSD baseline is DAG-only, as in the paper).
  explicit SspiIndex(const Graph& g);

  // Reflexive reachability using intervals + predecessor expansion.
  bool Reaches(NodeId u, NodeId v) const;

  // Spanning-tree-only ancestry (phase 1).
  bool TreeReaches(NodeId u, NodeId v) const {
    return forest_.IsTreeAncestor(u, v);
  }

  // Non-tree predecessor entries of v (the SSPI list).
  const std::vector<NodeId>& PredecessorsOf(NodeId v) const {
    return non_tree_in_[v];
  }

  const DfsForest& forest() const { return forest_; }
  uint64_t TotalEntries() const;

 private:
  const Graph* g_;
  DfsForest forest_;
  std::vector<std::vector<NodeId>> non_tree_in_;  // v -> {x : (x,v) non-tree}
  // Memoized query results; reachability in a static DAG never changes.
  mutable std::unordered_map<uint64_t, bool> memo_;
};

}  // namespace fgpm

#endif  // FGPM_REACH_SSPI_H_
