// Per-query reachability memo: a small lossy open-addressed cache of
// (center(u), center(v)) -> verdict probes. Pattern evaluation re-asks
// the same reachability questions many times — the select operator
// closes every non-spanning-tree pattern edge over the same node pairs
// across rows, and the HPSJ filter re-probes the same node against the
// same W(X,Y) center list whenever a node id recurs in the temporal
// table — so memoizing the verdict (or the materialized Xi set, see
// operators.cc) collapses duplicate work into one hash probe.
//
// Design: power-of-two slot array, packed 64-bit key, bounded linear
// probe window (8 slots), lossy overwrite of the home slot when the
// window is full. Clearing is O(1) via an epoch tag per slot, so the
// executor can reset the memo at every query start without touching the
// slot array. Instances are deliberately single-threaded: the executor
// owns one memo per worker slot (striping by worker), which keeps the
// hot path free of atomics and the whole scheme trivially race-free —
// the differential tests hammer one-memo-per-thread over a shared
// labeling under TSan/ASan.
#ifndef FGPM_REACH_REACH_MEMO_H_
#define FGPM_REACH_REACH_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace fgpm {

class ReachMemo {
 public:
  ReachMemo() = default;
  explicit ReachMemo(size_t entries) { Reset(entries); }

  // Sizes the table to the next power of two >= entries (minimum 64);
  // 0 disables the memo (enabled() false, Acquire must not be called).
  void Reset(size_t entries) {
    slots_.clear();
    epoch_ = 1;
    probes_ = hits_ = 0;
    if (entries == 0) return;
    size_t cap = 64;
    while (cap < entries) cap <<= 1;
    slots_.assign(cap, Slot{});
  }

  bool enabled() const { return !slots_.empty(); }
  size_t capacity() const { return slots_.size(); }

  // Drops all cached entries (O(1)) and zeroes the hit statistics.
  void Clear() {
    if (++epoch_ == 0) {  // epoch wrap: tags from 4B queries ago linger
      for (Slot& s : slots_) s.gen = 0;
      epoch_ = 1;
    }
    probes_ = hits_ = 0;
  }

  // Probes for `key`. On a hit (*hit = true) the returned slot holds the
  // cached value(); on a miss the slot is (re)claimed for `key` with its
  // value reset to 0, ready for set_value. Requires enabled().
  uint32_t Acquire(uint64_t key, bool* hit) {
    *hit = false;
    ++probes_;
    const size_t mask = slots_.size() - 1;
    size_t i = HashMix(key) & mask;
    const size_t home = i;
    for (int p = 0; p < kProbeWindow; ++p, i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.gen != epoch_) {  // first empty slot: key is absent
        s.gen = epoch_;
        s.key = key;
        s.value = 0;
        return static_cast<uint32_t>(i);
      }
      if (s.key == key) {
        ++hits_;
        *hit = true;
        return static_cast<uint32_t>(i);
      }
    }
    // Window full of other keys: lossily overwrite the home slot.
    Slot& s = slots_[home];
    s.gen = epoch_;
    s.key = key;
    s.value = 0;
    return static_cast<uint32_t>(home);
  }

  uint32_t value(uint32_t slot) const { return slots_[slot].value; }
  void set_value(uint32_t slot, uint32_t v) { slots_[slot].value = v; }

  uint64_t probes() const { return probes_; }
  uint64_t hits() const { return hits_; }

  static uint64_t PackKey(uint32_t a, uint32_t b) { return PackPair(a, b); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t value = 0;
    uint32_t gen = 0;  // slot live iff gen == epoch_
  };
  static constexpr int kProbeWindow = 8;

  std::vector<Slot> slots_;
  uint32_t epoch_ = 1;
  uint64_t probes_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace fgpm

#endif  // FGPM_REACH_REACH_MEMO_H_
