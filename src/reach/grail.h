// GRAIL-style randomized interval labeling (Yildirim et al., VLDB'10) —
// a post-paper alternative reachability index included for comparison
// ablations. Each of k randomized post-order traversals of the
// condensation assigns an interval [low, post]; containment in *all* k
// intervals is necessary for reachability. Non-containment proves
// non-reachability in O(k); containment falls back to a pruned DFS.
//
// Contrast with the paper's 2-hop codes: GRAIL answers negatives fast
// and cheaply (2k integers per node) but positives may cost a
// traversal, so it cannot drive the cluster-based R-join index — there
// is no center set to enumerate. The ablation bench quantifies the
// query-time trade.
#ifndef FGPM_REACH_GRAIL_H_
#define FGPM_REACH_GRAIL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fgpm {

class GrailIndex {
 public:
  // k randomized traversals (typically 2-5).
  GrailIndex(const Graph& g, int k, uint64_t seed = 42);

  // Reflexive reachability.
  bool Reaches(NodeId u, NodeId v) const;

  // True when the labels alone *exclude* reachability (no DFS needed).
  bool ExcludedByLabels(NodeId u, NodeId v) const;

  int k() const { return k_; }
  uint64_t dfs_fallbacks() const { return dfs_fallbacks_; }

 private:
  struct Traversal {
    std::vector<uint32_t> low;   // min post-order in the subtree
    std::vector<uint32_t> post;  // post-order number
  };

  bool Contains(const Traversal& t, uint32_t cu, uint32_t cv) const {
    return t.low[cu] <= t.low[cv] && t.post[cv] <= t.post[cu];
  }

  const Graph* g_;
  int k_;
  std::vector<uint32_t> scc_of_;  // node -> condensation vertex
  Graph dag_;                     // condensation
  std::vector<Traversal> traversals_;
  mutable uint64_t dfs_fallbacks_ = 0;
};

}  // namespace fgpm

#endif  // FGPM_REACH_GRAIL_H_
