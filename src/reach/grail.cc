#include "reach/grail.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/algorithms.h"

namespace fgpm {

GrailIndex::GrailIndex(const Graph& g, int k, uint64_t seed)
    : g_(&g), k_(k) {
  FGPM_CHECK(g.finalized());
  FGPM_CHECK(k >= 1);
  SccResult scc = ComputeScc(g);
  Condensation cond = Condense(g, scc);
  scc_of_.assign(scc.component.begin(), scc.component.end());
  dag_ = std::move(cond.dag);
  const uint32_t n = dag_.NumNodes();

  Rng rng(seed);
  traversals_.resize(k);
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < n; ++v) {
    if (dag_.InDegree(v) == 0) roots.push_back(v);
  }

  for (int t = 0; t < k; ++t) {
    Traversal& tr = traversals_[t];
    tr.low.assign(n, 0);
    tr.post.assign(n, 0);
    std::vector<bool> visited(n, false);
    uint32_t counter = 0;

    // Iterative randomized DFS; children are shuffled per traversal so
    // different traversals cut different false-positive pairs.
    struct Frame {
      NodeId v;
      std::vector<NodeId> kids;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    auto dfs = [&](NodeId root) {
      if (visited[root]) return;
      visited[root] = true;
      Frame f0{root, {}, 0};
      f0.kids.assign(dag_.OutNeighbors(root).begin(),
                     dag_.OutNeighbors(root).end());
      rng.Shuffle(&f0.kids);
      stack.push_back(std::move(f0));
      while (!stack.empty()) {
        Frame& f = stack.back();
        bool descended = false;
        while (f.next < f.kids.size()) {
          NodeId w = f.kids[f.next++];
          if (!visited[w]) {
            visited[w] = true;
            Frame nf{w, {}, 0};
            nf.kids.assign(dag_.OutNeighbors(w).begin(),
                           dag_.OutNeighbors(w).end());
            rng.Shuffle(&nf.kids);
            stack.push_back(std::move(nf));
            descended = true;
            break;
          }
        }
        if (descended) continue;
        NodeId v = stack.back().v;
        // low = min over DAG successors and own post.
        uint32_t low = counter;
        for (NodeId w : dag_.OutNeighbors(v)) {
          low = std::min(low, tr.low[w]);
        }
        tr.low[v] = low;
        tr.post[v] = counter++;
        stack.pop_back();
      }
    };
    std::vector<NodeId> order = roots;
    rng.Shuffle(&order);
    for (NodeId r : order) dfs(r);
    for (NodeId v = 0; v < n; ++v) dfs(v);
  }
}

bool GrailIndex::ExcludedByLabels(NodeId u, NodeId v) const {
  uint32_t cu = scc_of_[u], cv = scc_of_[v];
  if (cu == cv) return false;
  for (const Traversal& t : traversals_) {
    if (!Contains(t, cu, cv)) return true;
  }
  return false;
}

bool GrailIndex::Reaches(NodeId u, NodeId v) const {
  if (u == v) return true;
  uint32_t cu = scc_of_[u], cv = scc_of_[v];
  if (cu == cv) return true;
  if (ExcludedByLabels(u, v)) return false;
  // Label containment is necessary but not sufficient: pruned DFS over
  // the condensation, skipping subtrees the labels already exclude.
  ++dfs_fallbacks_;
  std::vector<NodeId> stack{cu};
  std::vector<bool> seen(dag_.NumNodes(), false);
  seen[cu] = true;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    if (x == cv) return true;
    for (NodeId w : dag_.OutNeighbors(x)) {
      if (seen[w]) continue;
      bool excluded = false;
      for (const Traversal& t : traversals_) {
        if (!Contains(t, w, cv)) {
          excluded = true;
          break;
        }
      }
      if (excluded) continue;
      seen[w] = true;
      stack.push_back(w);
    }
  }
  return false;
}

}  // namespace fgpm
