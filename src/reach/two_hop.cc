#include "reach/two_hop.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "graph/algorithms.h"
#include "graph/reach_oracle.h"

namespace fgpm {
namespace {

// Shared scaffolding: condensation with vertices renumbered by a
// priority permutation so that higher-priority centers get smaller ids
// (keeps label vectors sorted as they are appended).
struct CondensedView {
  Graph dag;                         // renumbered condensation
  std::vector<CenterId> scc_of;      // original node -> renumbered center
  std::vector<std::vector<NodeId>> members;
};

CondensedView BuildCondensedView(const Graph& g,
                                 bool order_by_degree) {
  SccResult scc = ComputeScc(g);
  Condensation cond = Condense(g, scc);
  const uint32_t n = scc.num_components;

  // Priority: (in+1)*(out+1)*size — hub-like components first.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (order_by_degree) {
    std::vector<uint64_t> score(n);
    for (uint32_t v = 0; v < n; ++v) {
      score[v] = static_cast<uint64_t>(cond.dag.InDegree(v) + 1) *
                 (cond.dag.OutDegree(v) + 1) * cond.members[v].size();
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (score[a] != score[b]) return score[a] > score[b];
      return a < b;
    });
  }
  std::vector<uint32_t> new_id(n);
  for (uint32_t i = 0; i < n; ++i) new_id[order[i]] = i;

  CondensedView view;
  LabelId l = view.dag.InternLabel("scc");
  for (uint32_t i = 0; i < n; ++i) view.dag.AddNode(l);
  for (const auto& [u, v] : cond.dag.Edges()) {
    Status s = view.dag.AddEdge(new_id[u], new_id[v]);
    FGPM_CHECK(s.ok());
  }
  view.dag.Finalize();
  view.scc_of.resize(g.NumNodes());
  view.members.resize(n);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    CenterId c = new_id[scc.component[v]];
    view.scc_of[v] = c;
    view.members[c].push_back(v);
  }
  return view;
}

// Construction-time query: is (x ~> y) already covered by the labels
// built so far (unioned with the endpoints themselves)?
bool CoveredSoFar(const std::vector<std::vector<CenterId>>& out_labels,
                  const std::vector<std::vector<CenterId>>& in_labels,
                  CenterId x, CenterId y) {
  if (x == y) return true;
  if (SortedContains(out_labels[x], y)) return true;
  if (SortedContains(in_labels[y], x)) return true;
  return SortedIntersects(out_labels[x], in_labels[y]);
}

}  // namespace

// --- flat arena / hybrid layout ---------------------------------------------

void TwoHopLabeling::Flatten(std::vector<std::vector<CenterId>>&& nested,
                             DirCodes* dir) {
  const size_t n = nested.size();
  uint64_t total = 0;
  for (const auto& v : nested) total += v.size();
  dir->pool.clear();
  dir->pool.reserve(total);
  dir->off.clear();
  dir->off.reserve(n + 1);
  dir->off.push_back(0);
  for (auto& v : nested) {
    dir->pool.insert(dir->pool.end(), v.begin(), v.end());
    dir->off.push_back(dir->pool.size());
    v.clear();
    v.shrink_to_fit();  // release the nested allocation as we go
  }
  nested.clear();
}

void TwoHopLabeling::BuildSidecar(DirCodes* dir, uint32_t threshold) {
  const size_t n = dir->off.empty() ? 0 : dir->off.size() - 1;
  dir->slot.assign(n, kNoSlot);
  dir->chunk_off.assign(1, 0);
  dir->chunks.clear();
  dir->words.clear();
  if (threshold == 0) return;
  for (size_t c = 0; c < n; ++c) {
    const uint64_t b = dir->off[c], e = dir->off[c + 1];
    if (e - b < threshold) continue;
    dir->slot[c] = static_cast<uint32_t>(dir->chunk_off.size() - 1);
    uint32_t cur = 0xffffffffu;
    for (uint64_t i = b; i < e; ++i) {
      const CenterId id = dir->pool[i];
      const uint32_t chunk = id >> 8;
      if (chunk != cur) {
        dir->chunks.push_back(chunk);
        dir->words.insert(dir->words.end(), 4, 0);
        cur = chunk;
      }
      dir->words[dir->words.size() - 4 + ((id >> 6) & 3)] |=
          uint64_t{1} << (id & 63);
    }
    dir->chunk_off.push_back(static_cast<uint32_t>(dir->chunks.size()));
  }
}

void TwoHopLabeling::AdoptCodes(std::vector<std::vector<CenterId>>&& in,
                                std::vector<std::vector<CenterId>>&& out,
                                uint32_t bitmap_threshold) {
  Flatten(std::move(in), &in_);
  Flatten(std::move(out), &out_);
  bitmap_threshold_ = bitmap_threshold;
  BuildSidecar(&in_, bitmap_threshold_);
  BuildSidecar(&out_, bitmap_threshold_);
}

void TwoHopLabeling::SetBitmapThreshold(uint32_t threshold) {
  bitmap_threshold_ = threshold;
  BuildSidecar(&in_, threshold);
  BuildSidecar(&out_, threshold);
}

uint32_t TwoHopLabeling::NumBitmapCodes() const {
  return static_cast<uint32_t>(in_.chunk_off.size() +
                               out_.chunk_off.size() - 2);
}

uint64_t TwoHopLabeling::CodeBytes() const {
  auto dir_bytes = [](const DirCodes& d) {
    return d.pool.size() * sizeof(CenterId) + d.off.size() * sizeof(uint64_t) +
           d.slot.size() * sizeof(uint32_t) +
           d.chunk_off.size() * sizeof(uint32_t) +
           d.chunks.size() * sizeof(uint32_t) +
           d.words.size() * sizeof(uint64_t);
  };
  return dir_bytes(in_) + dir_bytes(out_);
}

bool TwoHopLabeling::BitmapBitmapIntersects(const DirCodes& a, uint32_t sa,
                                            const DirCodes& b, uint32_t sb) {
  size_t i = a.chunk_off[sa];
  const size_t ie = a.chunk_off[sa + 1];
  size_t j = b.chunk_off[sb];
  const size_t je = b.chunk_off[sb + 1];
  while (i < ie && j < je) {
    const uint32_t ca = a.chunks[i], cb = b.chunks[j];
    if (ca == cb) {
      const uint64_t* wa = &a.words[4 * i];
      const uint64_t* wb = &b.words[4 * j];
      if ((wa[0] & wb[0]) | (wa[1] & wb[1]) | (wa[2] & wb[2]) |
          (wa[3] & wb[3])) {
        return true;
      }
      ++i;
      ++j;
    } else {
      i += (ca < cb);
      j += (cb < ca);
    }
  }
  return false;
}

bool TwoHopLabeling::ArrayBitmapIntersects(CodeSpan arr, const DirCodes& b,
                                           uint32_t sb) {
  size_t j = b.chunk_off[sb];
  const size_t je = b.chunk_off[sb + 1];
  for (const CenterId id : arr) {
    const uint32_t chunk = id >> 8;
    while (j < je && b.chunks[j] < chunk) ++j;
    if (j == je) return false;
    if (b.chunks[j] != chunk) continue;
    if (b.words[4 * j + ((id >> 6) & 3)] & (uint64_t{1} << (id & 63))) {
      return true;
    }
  }
  return false;
}

bool TwoHopLabeling::ProbeCodes(CenterId cu, CenterId cv) const {
  const uint32_t so = out_.slot.empty() ? kNoSlot : out_.slot[cu];
  const uint32_t si = in_.slot.empty() ? kNoSlot : in_.slot[cv];
  if (so != kNoSlot) {
    if (si != kNoSlot) return BitmapBitmapIntersects(out_, so, in_, si);
    return ArrayBitmapIntersects(Slice(in_, cv), out_, so);
  }
  if (si != kNoSlot) return ArrayBitmapIntersects(Slice(out_, cu), in_, si);
  const CodeSpan a = Slice(out_, cu), b = Slice(in_, cv);
  return SortedRangeIntersects(a.data(), a.size(), b.data(), b.size());
}

uint64_t TwoHopLabeling::CoverSize() const {
  uint64_t total = 0;
  for (CenterId c = 0; c < members_.size(); ++c) {
    // Compact form: the self entry in each of in() and out() is implied
    // by the tuple itself and not stored (Example 3.1).
    total += (in_.off[c + 1] - in_.off[c] - 1 + out_.off[c + 1] -
              out_.off[c] - 1) *
             members_[c].size();
  }
  return total;
}

void TwoHopLabeling::InsertCenter(DirCodes* dir,
                                  const std::vector<CenterId>& comps,
                                  CenterId c) {
  if (comps.empty()) return;
  const size_t n = dir->off.size() - 1;
  std::vector<CenterId> pool;
  pool.reserve(dir->pool.size() + comps.size());
  std::vector<uint64_t> off;
  off.reserve(n + 1);
  off.push_back(0);
  size_t k = 0;  // cursor into comps (ascending, like the center loop)
  for (size_t comp = 0; comp < n; ++comp) {
    const CenterId* s = dir->pool.data() + dir->off[comp];
    const size_t len = static_cast<size_t>(dir->off[comp + 1] - dir->off[comp]);
    if (k < comps.size() && comps[k] == comp) {
      ++k;
      const size_t pos =
          static_cast<size_t>(std::lower_bound(s, s + len, c) - s);
      pool.insert(pool.end(), s, s + pos);
      pool.push_back(c);
      pool.insert(pool.end(), s + pos, s + len);
    } else {
      pool.insert(pool.end(), s, s + len);
    }
    off.push_back(pool.size());
  }
  dir->pool = std::move(pool);
  dir->off = std::move(off);
}

Status TwoHopLabeling::UpdateForEdgeInsert(const Graph& g_after, NodeId u,
                                           NodeId v,
                                           std::vector<CenterId>* out_changed,
                                           std::vector<CenterId>* in_changed) {
  if (out_changed) out_changed->clear();
  if (in_changed) in_changed->clear();
  if (!g_after.finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  if (u >= scc_of_.size() || v >= scc_of_.size()) {
    return Status::InvalidArgument(
        "UpdateForEdgeInsert supports edge insertion between existing "
        "nodes only");
  }
  if (Reaches(u, v)) return Status::OK();  // no new reachable pairs
  if (Reaches(v, u)) {
    return Status::FailedPrecondition(
        "edge closes a cycle: SCCs merge, labeling must be rebuilt");
  }

  // New pairs are exactly {(x, y) : x ~> u, v ~> y}. One added cluster
  // with center(u) covers them all: center(u) joins out(x) for every
  // ancestor x of u and in(y) for every descendant y of v.
  const CenterId c = scc_of_[u];
  const uint32_t n = num_centers();
  std::vector<bool> comp_seen(n, false);
  std::vector<NodeId> queue;

  // BFS at component granularity: visiting a component enqueues ALL its
  // members, because different members can have different neighbors.
  auto visit_component = [&](CenterId comp) {
    if (comp_seen[comp]) return;
    comp_seen[comp] = true;
    for (NodeId m : members_[comp]) queue.push_back(m);
  };

  // Backward from u: every component that reaches u gains c in out().
  queue.clear();
  visit_component(scc_of_[u]);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    for (NodeId w : g_after.InNeighbors(queue[qi])) {
      visit_component(scc_of_[w]);
    }
  }
  std::vector<CenterId> gained;
  for (CenterId comp = 0; comp < n; ++comp) {
    if (comp_seen[comp] && !SortedContains(CenterOutCode(comp), c)) {
      gained.push_back(comp);
      if (out_changed) out_changed->push_back(comp);
    }
  }
  InsertCenter(&out_, gained, c);

  // Forward from v: every component reachable from v gains c in in().
  std::fill(comp_seen.begin(), comp_seen.end(), false);
  queue.clear();
  visit_component(scc_of_[v]);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    for (NodeId w : g_after.OutNeighbors(queue[qi])) {
      visit_component(scc_of_[w]);
    }
  }
  gained.clear();
  for (CenterId comp = 0; comp < n; ++comp) {
    if (comp_seen[comp] && !SortedContains(CenterInCode(comp), c)) {
      gained.push_back(comp);
      if (in_changed) in_changed->push_back(comp);
    }
  }
  InsertCenter(&in_, gained, c);

  // Code lengths changed; refresh the derived bitmap sidecars.
  BuildSidecar(&out_, bitmap_threshold_);
  BuildSidecar(&in_, bitmap_threshold_);
  return Status::OK();
}

TwoHopLabeling BuildTwoHopPruned(const Graph& g, unsigned num_threads,
                                 uint32_t bitmap_threshold) {
  FGPM_CHECK(g.finalized());
  CondensedView view = BuildCondensedView(g, /*order_by_degree=*/true);
  const uint32_t n = view.dag.NumNodes();
  const unsigned threads = ResolveThreads(num_threads);

  std::vector<std::vector<CenterId>> in_labels(n), out_labels(n);

  if (threads == 1) {
    std::vector<uint32_t> visit_mark(n, 0xffffffffu);
    std::vector<CenterId> queue;

    // Process hubs by priority; pruned forward/backward BFS. The pruning
    // rule guarantees each label receives only hubs with a smaller id, so
    // plain push_back keeps vectors sorted.
    for (CenterId hub = 0; hub < n; ++hub) {
      // Forward: hub ~> v, so hub enters L_in(v).
      queue.assign(1, hub);
      visit_mark[hub] = hub * 2;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        CenterId v = queue[qi];
        for (NodeId w : view.dag.OutNeighbors(v)) {
          if (visit_mark[w] == hub * 2) continue;
          visit_mark[w] = hub * 2;
          if (CoveredSoFar(out_labels, in_labels, hub, w)) continue;
          in_labels[w].push_back(hub);
          queue.push_back(w);
        }
      }
      // Backward: u ~> hub, so hub enters L_out(u).
      queue.assign(1, hub);
      visit_mark[hub] = hub * 2 + 1;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        CenterId v = queue[qi];
        for (NodeId w : view.dag.InNeighbors(v)) {
          if (visit_mark[w] == hub * 2 + 1) continue;
          visit_mark[w] = hub * 2 + 1;
          if (CoveredSoFar(out_labels, in_labels, w, hub)) continue;
          out_labels[w].push_back(hub);
          queue.push_back(w);
        }
      }
    }

    // The paper's compaction: every node carries itself in both codes.
    // Appended last because self ids exceed all hub ids received.
    for (CenterId c = 0; c < n; ++c) {
      in_labels[c].push_back(c);
      out_labels[c].push_back(c);
    }
  } else {
    // Batch-parallel pruned sweeps. A batch of consecutive hubs is swept
    // concurrently; every sweep prunes against the labels committed by
    // earlier batches only (in_labels/out_labels are read-only during
    // the sweeps), so the outcome depends on the batch size but not on
    // thread scheduling. Missing same-batch pruning can only add entries
    // that are true reachability facts — the cover stays valid, merely a
    // little larger than the sequential one.
    ThreadPool pool(threads);
    const uint32_t batch = threads * 4;
    std::vector<std::vector<uint32_t>> marks(
        threads, std::vector<uint32_t>(n, 0xffffffffu));
    std::vector<std::vector<CenterId>> queues(threads);
    // Per batch slot: nodes whose in()/out() gain the slot's hub.
    std::vector<std::vector<CenterId>> gains_in(batch), gains_out(batch);

    for (CenterId base = 0; base < n; base += batch) {
      const size_t count = std::min<size_t>(batch, n - base);
      pool.ParallelFor(count, 1, [&](unsigned worker, size_t slot,
                                     size_t begin, size_t end) {
        (void)slot;
        (void)end;
        const CenterId hub = base + static_cast<CenterId>(begin);
        std::vector<uint32_t>& visit_mark = marks[worker];
        std::vector<CenterId>& queue = queues[worker];
        gains_in[begin].clear();
        gains_out[begin].clear();
        // Forward sweep: hub enters L_in(w) for reached w.
        queue.assign(1, hub);
        visit_mark[hub] = hub * 2;
        for (size_t qi = 0; qi < queue.size(); ++qi) {
          for (NodeId w : view.dag.OutNeighbors(queue[qi])) {
            if (visit_mark[w] == hub * 2) continue;
            visit_mark[w] = hub * 2;
            if (CoveredSoFar(out_labels, in_labels, hub, w)) continue;
            gains_in[begin].push_back(w);
            queue.push_back(w);
          }
        }
        // Backward sweep: hub enters L_out(w) for reaching w.
        queue.assign(1, hub);
        visit_mark[hub] = hub * 2 + 1;
        for (size_t qi = 0; qi < queue.size(); ++qi) {
          for (NodeId w : view.dag.InNeighbors(queue[qi])) {
            if (visit_mark[w] == hub * 2 + 1) continue;
            visit_mark[w] = hub * 2 + 1;
            if (CoveredSoFar(out_labels, in_labels, w, hub)) continue;
            gains_out[begin].push_back(w);
            queue.push_back(w);
          }
        }
      });
      // Commit in hub order: across batches hub ids only grow, so
      // push_back keeps every label vector sorted.
      for (size_t i = 0; i < count; ++i) {
        const CenterId hub = base + static_cast<CenterId>(i);
        for (CenterId w : gains_in[i]) in_labels[w].push_back(hub);
        for (CenterId w : gains_out[i]) out_labels[w].push_back(hub);
      }
    }

    // Compaction self entries. Unlike the sequential builder, a node may
    // carry same-batch hubs with ids above its own, so insert sorted.
    for (CenterId c = 0; c < n; ++c) {
      SortedInsert(&in_labels[c], c);
      SortedInsert(&out_labels[c], c);
    }
  }

  TwoHopLabeling lab;
  lab.scc_of_ = std::move(view.scc_of);
  lab.members_ = std::move(view.members);
  lab.AdoptCodes(std::move(in_labels), std::move(out_labels),
                 bitmap_threshold);
  return lab;
}

TwoHopLabeling BuildTwoHopGreedy(const Graph& g, uint32_t bitmap_threshold) {
  FGPM_CHECK(g.finalized());
  CondensedView view = BuildCondensedView(g, /*order_by_degree=*/false);
  const uint32_t n = view.dag.NumNodes();
  FGPM_CHECK(n <= 4096);  // greedy builds the closure; small graphs only

  TransitiveClosure tc(view.dag);

  // Uncovered reachable pairs (excluding the diagonal).
  std::vector<std::vector<bool>> uncovered(n, std::vector<bool>(n, false));
  uint64_t remaining = 0;
  for (CenterId a = 0; a < n; ++a) {
    for (CenterId b = 0; b < n; ++b) {
      if (a != b && tc.Reaches(a, b)) {
        uncovered[a][b] = true;
        ++remaining;
      }
    }
  }

  std::vector<std::vector<CenterId>> in_labels(n), out_labels(n);
  std::vector<CenterId> ancestors, descendants;

  while (remaining > 0) {
    // Pick the center with the best covered-pairs / label-cost ratio.
    double best_ratio = -1;
    CenterId best = 0;
    uint64_t best_covered = 0;
    for (CenterId w = 0; w < n; ++w) {
      uint64_t covered = 0;
      uint32_t anc = 0, desc = 0;
      for (CenterId a = 0; a < n; ++a) {
        if (!tc.Reaches(a, w)) continue;
        uint64_t row = 0;
        for (CenterId b = 0; b < n; ++b) {
          if (tc.Reaches(w, b) && uncovered[a][b]) ++row;
        }
        if (row > 0 || a == w) ++anc;
        covered += row;
      }
      for (CenterId b = 0; b < n; ++b) {
        if (tc.Reaches(w, b)) ++desc;
      }
      if (covered == 0) continue;
      double ratio = double(covered) / double(anc + desc);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = w;
        best_covered = covered;
      }
    }
    FGPM_CHECK(best_covered > 0);

    // Label only nodes that still contribute an uncovered pair through
    // `best` (keeps the cover compact, in the spirit of Cohen's densest-
    // subgraph refinement).
    ancestors.clear();
    descendants.clear();
    for (CenterId a = 0; a < n; ++a) {
      if (!tc.Reaches(a, best)) continue;
      for (CenterId b = 0; b < n; ++b) {
        if (tc.Reaches(best, b) && uncovered[a][b]) {
          ancestors.push_back(a);
          break;
        }
      }
    }
    for (CenterId b = 0; b < n; ++b) {
      if (!tc.Reaches(best, b)) continue;
      for (CenterId a : ancestors) {
        if (uncovered[a][b]) {
          descendants.push_back(b);
          break;
        }
      }
    }
    for (CenterId a : ancestors) SortedInsert(&out_labels[a], best);
    for (CenterId b : descendants) SortedInsert(&in_labels[b], best);
    for (CenterId a : ancestors) {
      for (CenterId b : descendants) {
        if (uncovered[a][b]) {
          uncovered[a][b] = false;
          --remaining;
        }
      }
    }
  }

  // Self ids (compaction), keeping vectors sorted.
  for (CenterId c = 0; c < n; ++c) {
    SortedInsert(&in_labels[c], c);
    SortedInsert(&out_labels[c], c);
  }

  TwoHopLabeling lab;
  lab.scc_of_ = std::move(view.scc_of);
  lab.members_ = std::move(view.members);
  lab.AdoptCodes(std::move(in_labels), std::move(out_labels),
                 bitmap_threshold);
  return lab;
}


void TwoHopLabeling::SaveMeta(BinaryWriter* w) const {
  w->VecU32(scc_of_);
  w->U32(bitmap_threshold_);
  w->VecU64(in_.off);
  w->VecU32(in_.pool);
  w->VecU64(out_.off);
  w->VecU32(out_.pool);
  w->U64(members_.size());
  for (const auto& v : members_) w->VecU32(v);
}

namespace {

Status CheckDirShape(const std::vector<uint64_t>& off,
                     const std::vector<CenterId>& pool, size_t num_centers) {
  if (off.size() != num_centers + 1 || off.front() != 0 ||
      off.back() != pool.size()) {
    return Status::Corruption("2-hop code index shape mismatch");
  }
  for (size_t i = 0; i + 1 < off.size(); ++i) {
    if (off[i] > off[i + 1]) {
      return Status::Corruption("2-hop code offsets not monotone");
    }
  }
  return Status::OK();
}

}  // namespace

Status TwoHopLabeling::LoadMeta(BinaryReader* r) {
  FGPM_RETURN_IF_ERROR(r->VecU32(&scc_of_));
  FGPM_RETURN_IF_ERROR(r->U32(&bitmap_threshold_));
  FGPM_RETURN_IF_ERROR(r->VecU64(&in_.off));
  FGPM_RETURN_IF_ERROR(r->VecU32(&in_.pool));
  FGPM_RETURN_IF_ERROR(r->VecU64(&out_.off));
  FGPM_RETURN_IF_ERROR(r->VecU32(&out_.pool));
  uint64_t n = 0;
  FGPM_RETURN_IF_ERROR(r->U64(&n));
  members_.resize(n);
  for (auto& v : members_) FGPM_RETURN_IF_ERROR(r->VecU32(&v));
  FGPM_RETURN_IF_ERROR(CheckDirShape(in_.off, in_.pool, members_.size()));
  FGPM_RETURN_IF_ERROR(CheckDirShape(out_.off, out_.pool, members_.size()));
  for (CenterId c : scc_of_) {
    if (c >= members_.size()) {
      return Status::Corruption("2-hop scc map references unknown center");
    }
  }
  // The bitmap sidecars are derived data, rebuilt rather than stored.
  BuildSidecar(&in_, bitmap_threshold_);
  BuildSidecar(&out_, bitmap_threshold_);
  return Status::OK();
}

}  // namespace fgpm
