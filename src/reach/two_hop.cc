#include "reach/two_hop.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "graph/algorithms.h"
#include "graph/reach_oracle.h"

namespace fgpm {
namespace {

// Shared scaffolding: condensation with vertices renumbered by a
// priority permutation so that higher-priority centers get smaller ids
// (keeps label vectors sorted as they are appended).
struct CondensedView {
  Graph dag;                         // renumbered condensation
  std::vector<CenterId> scc_of;      // original node -> renumbered center
  std::vector<std::vector<NodeId>> members;
};

CondensedView BuildCondensedView(const Graph& g,
                                 bool order_by_degree) {
  SccResult scc = ComputeScc(g);
  Condensation cond = Condense(g, scc);
  const uint32_t n = scc.num_components;

  // Priority: (in+1)*(out+1)*size — hub-like components first.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (order_by_degree) {
    std::vector<uint64_t> score(n);
    for (uint32_t v = 0; v < n; ++v) {
      score[v] = static_cast<uint64_t>(cond.dag.InDegree(v) + 1) *
                 (cond.dag.OutDegree(v) + 1) * cond.members[v].size();
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (score[a] != score[b]) return score[a] > score[b];
      return a < b;
    });
  }
  std::vector<uint32_t> new_id(n);
  for (uint32_t i = 0; i < n; ++i) new_id[order[i]] = i;

  CondensedView view;
  LabelId l = view.dag.InternLabel("scc");
  for (uint32_t i = 0; i < n; ++i) view.dag.AddNode(l);
  for (const auto& [u, v] : cond.dag.Edges()) {
    Status s = view.dag.AddEdge(new_id[u], new_id[v]);
    FGPM_CHECK(s.ok());
  }
  view.dag.Finalize();
  view.scc_of.resize(g.NumNodes());
  view.members.resize(n);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    CenterId c = new_id[scc.component[v]];
    view.scc_of[v] = c;
    view.members[c].push_back(v);
  }
  return view;
}

// Construction-time query: is (x ~> y) already covered by the labels
// built so far (unioned with the endpoints themselves)?
bool CoveredSoFar(const std::vector<std::vector<CenterId>>& out_labels,
                  const std::vector<std::vector<CenterId>>& in_labels,
                  CenterId x, CenterId y) {
  if (x == y) return true;
  if (SortedContains(out_labels[x], y)) return true;
  if (SortedContains(in_labels[y], x)) return true;
  return SortedIntersects(out_labels[x], in_labels[y]);
}

}  // namespace

uint64_t TwoHopLabeling::CoverSize() const {
  uint64_t total = 0;
  for (CenterId c = 0; c < in_.size(); ++c) {
    // Compact form: the self entry in each of in() and out() is implied
    // by the tuple itself and not stored (Example 3.1).
    total += static_cast<uint64_t>(in_[c].size() - 1 + out_[c].size() - 1) *
             members_[c].size();
  }
  return total;
}

Status TwoHopLabeling::UpdateForEdgeInsert(const Graph& g_after, NodeId u,
                                           NodeId v,
                                           std::vector<CenterId>* out_changed,
                                           std::vector<CenterId>* in_changed) {
  if (out_changed) out_changed->clear();
  if (in_changed) in_changed->clear();
  if (!g_after.finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  if (u >= scc_of_.size() || v >= scc_of_.size()) {
    return Status::InvalidArgument(
        "UpdateForEdgeInsert supports edge insertion between existing "
        "nodes only");
  }
  if (Reaches(u, v)) return Status::OK();  // no new reachable pairs
  if (Reaches(v, u)) {
    return Status::FailedPrecondition(
        "edge closes a cycle: SCCs merge, labeling must be rebuilt");
  }

  // New pairs are exactly {(x, y) : x ~> u, v ~> y}. One added cluster
  // with center(u) covers them all: center(u) joins out(x) for every
  // ancestor x of u and in(y) for every descendant y of v.
  CenterId c = scc_of_[u];
  std::vector<bool> comp_seen(in_.size(), false);
  std::vector<NodeId> queue;

  // BFS at component granularity: visiting a component enqueues ALL its
  // members, because different members can have different neighbors.
  auto visit_component = [&](CenterId comp) {
    if (comp_seen[comp]) return;
    comp_seen[comp] = true;
    for (NodeId m : members_[comp]) queue.push_back(m);
  };

  // Backward from u: every component that reaches u gains c in out().
  queue.clear();
  visit_component(scc_of_[u]);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    for (NodeId w : g_after.InNeighbors(queue[qi])) {
      visit_component(scc_of_[w]);
    }
  }
  for (CenterId comp = 0; comp < in_.size(); ++comp) {
    if (comp_seen[comp] && SortedInsert(&out_[comp], c) && out_changed) {
      out_changed->push_back(comp);
    }
  }

  // Forward from v: every component reachable from v gains c in in().
  std::fill(comp_seen.begin(), comp_seen.end(), false);
  queue.clear();
  visit_component(scc_of_[v]);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    for (NodeId w : g_after.OutNeighbors(queue[qi])) {
      visit_component(scc_of_[w]);
    }
  }
  for (CenterId comp = 0; comp < in_.size(); ++comp) {
    if (comp_seen[comp] && SortedInsert(&in_[comp], c) && in_changed) {
      in_changed->push_back(comp);
    }
  }
  return Status::OK();
}

TwoHopLabeling BuildTwoHopPruned(const Graph& g, unsigned num_threads) {
  FGPM_CHECK(g.finalized());
  CondensedView view = BuildCondensedView(g, /*order_by_degree=*/true);
  const uint32_t n = view.dag.NumNodes();
  const unsigned threads = ResolveThreads(num_threads);

  std::vector<std::vector<CenterId>> in_labels(n), out_labels(n);

  if (threads == 1) {
    std::vector<uint32_t> visit_mark(n, 0xffffffffu);
    std::vector<CenterId> queue;

    // Process hubs by priority; pruned forward/backward BFS. The pruning
    // rule guarantees each label receives only hubs with a smaller id, so
    // plain push_back keeps vectors sorted.
    for (CenterId hub = 0; hub < n; ++hub) {
      // Forward: hub ~> v, so hub enters L_in(v).
      queue.assign(1, hub);
      visit_mark[hub] = hub * 2;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        CenterId v = queue[qi];
        for (NodeId w : view.dag.OutNeighbors(v)) {
          if (visit_mark[w] == hub * 2) continue;
          visit_mark[w] = hub * 2;
          if (CoveredSoFar(out_labels, in_labels, hub, w)) continue;
          in_labels[w].push_back(hub);
          queue.push_back(w);
        }
      }
      // Backward: u ~> hub, so hub enters L_out(u).
      queue.assign(1, hub);
      visit_mark[hub] = hub * 2 + 1;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        CenterId v = queue[qi];
        for (NodeId w : view.dag.InNeighbors(v)) {
          if (visit_mark[w] == hub * 2 + 1) continue;
          visit_mark[w] = hub * 2 + 1;
          if (CoveredSoFar(out_labels, in_labels, w, hub)) continue;
          out_labels[w].push_back(hub);
          queue.push_back(w);
        }
      }
    }

    // The paper's compaction: every node carries itself in both codes.
    // Appended last because self ids exceed all hub ids received.
    for (CenterId c = 0; c < n; ++c) {
      in_labels[c].push_back(c);
      out_labels[c].push_back(c);
    }
  } else {
    // Batch-parallel pruned sweeps. A batch of consecutive hubs is swept
    // concurrently; every sweep prunes against the labels committed by
    // earlier batches only (in_labels/out_labels are read-only during
    // the sweeps), so the outcome depends on the batch size but not on
    // thread scheduling. Missing same-batch pruning can only add entries
    // that are true reachability facts — the cover stays valid, merely a
    // little larger than the sequential one.
    ThreadPool pool(threads);
    const uint32_t batch = threads * 4;
    std::vector<std::vector<uint32_t>> marks(
        threads, std::vector<uint32_t>(n, 0xffffffffu));
    std::vector<std::vector<CenterId>> queues(threads);
    // Per batch slot: nodes whose in()/out() gain the slot's hub.
    std::vector<std::vector<CenterId>> gains_in(batch), gains_out(batch);

    for (CenterId base = 0; base < n; base += batch) {
      const size_t count = std::min<size_t>(batch, n - base);
      pool.ParallelFor(count, 1, [&](unsigned worker, size_t slot,
                                     size_t begin, size_t end) {
        (void)slot;
        (void)end;
        const CenterId hub = base + static_cast<CenterId>(begin);
        std::vector<uint32_t>& visit_mark = marks[worker];
        std::vector<CenterId>& queue = queues[worker];
        gains_in[begin].clear();
        gains_out[begin].clear();
        // Forward sweep: hub enters L_in(w) for reached w.
        queue.assign(1, hub);
        visit_mark[hub] = hub * 2;
        for (size_t qi = 0; qi < queue.size(); ++qi) {
          for (NodeId w : view.dag.OutNeighbors(queue[qi])) {
            if (visit_mark[w] == hub * 2) continue;
            visit_mark[w] = hub * 2;
            if (CoveredSoFar(out_labels, in_labels, hub, w)) continue;
            gains_in[begin].push_back(w);
            queue.push_back(w);
          }
        }
        // Backward sweep: hub enters L_out(w) for reaching w.
        queue.assign(1, hub);
        visit_mark[hub] = hub * 2 + 1;
        for (size_t qi = 0; qi < queue.size(); ++qi) {
          for (NodeId w : view.dag.InNeighbors(queue[qi])) {
            if (visit_mark[w] == hub * 2 + 1) continue;
            visit_mark[w] = hub * 2 + 1;
            if (CoveredSoFar(out_labels, in_labels, w, hub)) continue;
            gains_out[begin].push_back(w);
            queue.push_back(w);
          }
        }
      });
      // Commit in hub order: across batches hub ids only grow, so
      // push_back keeps every label vector sorted.
      for (size_t i = 0; i < count; ++i) {
        const CenterId hub = base + static_cast<CenterId>(i);
        for (CenterId w : gains_in[i]) in_labels[w].push_back(hub);
        for (CenterId w : gains_out[i]) out_labels[w].push_back(hub);
      }
    }

    // Compaction self entries. Unlike the sequential builder, a node may
    // carry same-batch hubs with ids above its own, so insert sorted.
    for (CenterId c = 0; c < n; ++c) {
      SortedInsert(&in_labels[c], c);
      SortedInsert(&out_labels[c], c);
    }
  }

  TwoHopLabeling lab;
  lab.scc_of_ = std::move(view.scc_of);
  lab.in_ = std::move(in_labels);
  lab.out_ = std::move(out_labels);
  lab.members_ = std::move(view.members);
  return lab;
}

TwoHopLabeling BuildTwoHopGreedy(const Graph& g) {
  FGPM_CHECK(g.finalized());
  CondensedView view = BuildCondensedView(g, /*order_by_degree=*/false);
  const uint32_t n = view.dag.NumNodes();
  FGPM_CHECK(n <= 4096);  // greedy builds the closure; small graphs only

  TransitiveClosure tc(view.dag);

  // Uncovered reachable pairs (excluding the diagonal).
  std::vector<std::vector<bool>> uncovered(n, std::vector<bool>(n, false));
  uint64_t remaining = 0;
  for (CenterId a = 0; a < n; ++a) {
    for (CenterId b = 0; b < n; ++b) {
      if (a != b && tc.Reaches(a, b)) {
        uncovered[a][b] = true;
        ++remaining;
      }
    }
  }

  std::vector<std::vector<CenterId>> in_labels(n), out_labels(n);
  std::vector<CenterId> ancestors, descendants;

  while (remaining > 0) {
    // Pick the center with the best covered-pairs / label-cost ratio.
    double best_ratio = -1;
    CenterId best = 0;
    uint64_t best_covered = 0;
    for (CenterId w = 0; w < n; ++w) {
      uint64_t covered = 0;
      uint32_t anc = 0, desc = 0;
      for (CenterId a = 0; a < n; ++a) {
        if (!tc.Reaches(a, w)) continue;
        uint64_t row = 0;
        for (CenterId b = 0; b < n; ++b) {
          if (tc.Reaches(w, b) && uncovered[a][b]) ++row;
        }
        if (row > 0 || a == w) ++anc;
        covered += row;
      }
      for (CenterId b = 0; b < n; ++b) {
        if (tc.Reaches(w, b)) ++desc;
      }
      if (covered == 0) continue;
      double ratio = double(covered) / double(anc + desc);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = w;
        best_covered = covered;
      }
    }
    FGPM_CHECK(best_covered > 0);

    // Label only nodes that still contribute an uncovered pair through
    // `best` (keeps the cover compact, in the spirit of Cohen's densest-
    // subgraph refinement).
    ancestors.clear();
    descendants.clear();
    for (CenterId a = 0; a < n; ++a) {
      if (!tc.Reaches(a, best)) continue;
      for (CenterId b = 0; b < n; ++b) {
        if (tc.Reaches(best, b) && uncovered[a][b]) {
          ancestors.push_back(a);
          break;
        }
      }
    }
    for (CenterId b = 0; b < n; ++b) {
      if (!tc.Reaches(best, b)) continue;
      for (CenterId a : ancestors) {
        if (uncovered[a][b]) {
          descendants.push_back(b);
          break;
        }
      }
    }
    for (CenterId a : ancestors) SortedInsert(&out_labels[a], best);
    for (CenterId b : descendants) SortedInsert(&in_labels[b], best);
    for (CenterId a : ancestors) {
      for (CenterId b : descendants) {
        if (uncovered[a][b]) {
          uncovered[a][b] = false;
          --remaining;
        }
      }
    }
  }

  // Self ids (compaction), keeping vectors sorted.
  for (CenterId c = 0; c < n; ++c) {
    SortedInsert(&in_labels[c], c);
    SortedInsert(&out_labels[c], c);
  }

  TwoHopLabeling lab;
  lab.scc_of_ = std::move(view.scc_of);
  lab.in_ = std::move(in_labels);
  lab.out_ = std::move(out_labels);
  lab.members_ = std::move(view.members);
  return lab;
}


void TwoHopLabeling::SaveMeta(BinaryWriter* w) const {
  w->VecU32(scc_of_);
  w->U64(in_.size());
  for (const auto& v : in_) w->VecU32(v);
  w->U64(out_.size());
  for (const auto& v : out_) w->VecU32(v);
  w->U64(members_.size());
  for (const auto& v : members_) w->VecU32(v);
}

Status TwoHopLabeling::LoadMeta(BinaryReader* r) {
  FGPM_RETURN_IF_ERROR(r->VecU32(&scc_of_));
  uint64_t n = 0;
  FGPM_RETURN_IF_ERROR(r->U64(&n));
  in_.resize(n);
  for (auto& v : in_) FGPM_RETURN_IF_ERROR(r->VecU32(&v));
  FGPM_RETURN_IF_ERROR(r->U64(&n));
  out_.resize(n);
  for (auto& v : out_) FGPM_RETURN_IF_ERROR(r->VecU32(&v));
  FGPM_RETURN_IF_ERROR(r->U64(&n));
  members_.resize(n);
  for (auto& v : members_) FGPM_RETURN_IF_ERROR(r->VecU32(&v));
  if (in_.size() != out_.size() || in_.size() != members_.size()) {
    return Status::Corruption("2-hop labeling sections disagree");
  }
  return Status::OK();
}

}  // namespace fgpm
