// 2-hop reachability labeling (Cohen et al., SODA'02), the foundation of
// the paper's graph codes, cluster-based R-join index and W-table.
//
// A 2-hop cover is a set of clusters S(U_w, w, V_w): every u in U_w
// reaches the *center* w, and w reaches every v in V_w. Node labels
// derive from the cover:  L_out(u) = centers w with u ~> w,
// L_in(v) = centers w with w ~> v;  u ~> v  iff the label sets intersect
// (after the paper's compaction that puts each node itself into both of
// its own label sets).
//
// Storage is a flat arena per direction: one contiguous CenterId pool
// plus an (offset, len) index per center, built once at Build*/LoadMeta
// time. Codes are handed out as std::span views — no per-center heap
// allocation, and consecutive centers are adjacent in memory (the
// builders emit centers in id order, so scans over the labeling walk
// the pool linearly).
//
// On top of the arena sits a hybrid representation (Roaring-style):
// centers whose codes have >= bitmap_threshold entries additionally get
// a chunked bitmap sidecar — a sorted list of 256-bit chunks, each four
// 64-bit words. Probes pick the cheapest form per pair: hub x hub runs
// a chunk merge of word-ANDs, hub x leaf walks the small array against
// the bitmap, leaf x leaf goes through the SIMD/galloping kernels of
// common/sorted_vector.h. The sidecar is storage bounded by the entry
// count (only non-empty chunks are kept), is rebuilt from the arena on
// load, and never changes probe results — only their cost (the
// differential tests sweep thresholds to prove it).
//
// Two builders:
//  * BuildTwoHopPruned — pruned-BFS construction on the SCC condensation
//    (a valid 2-hop cover; our stand-in for the authors' EDBT'06 fast
//    algorithm; scales to millions of nodes). With num_threads > 1 the
//    per-center forward/backward sweeps run batch-parallel: a batch of
//    consecutive priority-ordered centers is swept concurrently, each
//    sweep pruning against the labels committed by earlier batches, and
//    the batch's label additions are committed in center order. Stale
//    pruning can only *add* (still true) entries, so the result is a
//    valid cover for any thread count, and it depends only on the batch
//    size — never on thread scheduling. num_threads == 1 reproduces the
//    sequential construction bit for bit.
//  * BuildTwoHopGreedy — classic greedy set-cover approximation; only
//    for small graphs (computes the transitive closure); used in tests
//    and the cover-size ablation.
//
// Centers are vertices of the condensation DAG, renumbered by the
// construction's priority order; all codes are sorted by center id.
// Labels are shared per SCC: nodes in the same component have equal
// codes (cycle members reach exactly the same things).
#ifndef FGPM_REACH_TWO_HOP_H_
#define FGPM_REACH_TWO_HOP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.h"
#include "common/sorted_vector.h"
#include "graph/graph.h"
#include "reach/reach_memo.h"

namespace fgpm {

using CenterId = uint32_t;

// Code length at or above which a center gets a bitmap sidecar. The
// priority renumbering makes hub codes dense in small center ids, so a
// few hundred entries already span few chunks; below this, the SIMD
// array kernels win. GraphDatabaseOptions::code_bitmap_threshold
// overrides per database.
inline constexpr uint32_t kDefaultCodeBitmapThreshold = 128;

class TwoHopLabeling {
 public:
  using CodeSpan = std::span<const CenterId>;

  // in(x): centers that reach x, including x's own component center id.
  CodeSpan InCode(NodeId v) const { return CenterInCode(scc_of_[v]); }
  // out(x): centers x reaches, including x's own component center id.
  CodeSpan OutCode(NodeId v) const { return CenterOutCode(scc_of_[v]); }

  // Code of a center/component directly (all members share it).
  CodeSpan CenterInCode(CenterId c) const { return Slice(in_, c); }
  CodeSpan CenterOutCode(CenterId c) const { return Slice(out_, c); }

  // Reflexive reachability test via code intersection (Example 3.1).
  // The probe picks the cheapest kernel per pair: bitmap word-AND when
  // both codes are sidecar'd hubs, array-vs-bitmap walk when one is,
  // SIMD/galloping array intersection otherwise.
  bool Reaches(NodeId u, NodeId v) const {
    if (u == v) return true;
    const CenterId cu = scc_of_[u], cv = scc_of_[v];
    if (cu == cv) return true;
    return ProbeCodes(cu, cv);
  }

  // Memoized variant: consults/updates the per-query memo, keyed on the
  // component pair so every member pair of the same components shares
  // one cached verdict. `memo` may be null or disabled (plain probe).
  bool Reaches(NodeId u, NodeId v, ReachMemo* memo) const {
    if (u == v) return true;
    const CenterId cu = scc_of_[u], cv = scc_of_[v];
    if (cu == cv) return true;
    if (memo && memo->enabled()) {
      bool hit = false;
      const uint32_t slot = memo->Acquire(ReachMemo::PackKey(cu, cv), &hit);
      if (hit) return memo->value(slot) != 0;
      const bool r = ProbeCodes(cu, cv);
      memo->set_value(slot, r ? 1u : 0u);
      return r;
    }
    return ProbeCodes(cu, cv);
  }

  uint32_t num_centers() const {
    return static_cast<uint32_t>(members_.size());
  }
  size_t num_nodes() const { return scc_of_.size(); }
  CenterId CenterOf(NodeId v) const { return scc_of_[v]; }

  // Total *stored* label entries summed over nodes — the paper's |H|
  // (Table 2). Matches the compact representation of Example 3.1: the
  // node's own entry is removed from each stored column, so the two
  // self entries per node are not counted. Invariant across layout
  // knobs: the bitmap threshold changes probe kernels, never entries.
  uint64_t CoverSize() const;

  // Members of a component/center (original node ids, ascending).
  const std::vector<NodeId>& MembersOf(CenterId c) const {
    return members_[c];
  }

  // --- hybrid layout knobs / introspection --------------------------------
  // Rebuilds the bitmap sidecars for a new threshold (0 disables them;
  // probes then always run on the arena arrays).
  void SetBitmapThreshold(uint32_t threshold);
  uint32_t bitmap_threshold() const { return bitmap_threshold_; }
  // Number of sidecar'd (bitmap-carrying) codes across both directions.
  uint32_t NumBitmapCodes() const;
  // Resident bytes of the code structures (arena pools + offset index +
  // bitmap sidecars); bench_codes reports this as bytes/entry.
  uint64_t CodeBytes() const;

  // Incremental maintenance for edge insertion — the 2-hop cover update
  // problem the paper cites ([24], Schenkel et al. ICDE'05). `g_after`
  // must already contain the edge (u, v) and be finalized. The labeling
  // is extended by one cluster S(ancestors(u), center(u), descendants(v))
  // which covers exactly the new reachable pairs. Returns
  // FailedPrecondition if the edge merges strongly connected components
  // (center identities would change; rebuild instead).
  // When non-null, `out_changed`/`in_changed` receive the components
  // whose out()/in() codes gained the new center (used by the database
  // to maintain tables and indexes incrementally).
  Status UpdateForEdgeInsert(const Graph& g_after, NodeId u, NodeId v,
                             std::vector<CenterId>* out_changed = nullptr,
                             std::vector<CenterId>* in_changed = nullptr);

  // --- persistence --------------------------------------------------------
  // Flat format: the arena pools and offset indexes are written as-is;
  // the bitmap sidecars are derived data and rebuilt on load.
  void SaveMeta(BinaryWriter* w) const;
  Status LoadMeta(BinaryReader* r);

 private:
  friend TwoHopLabeling BuildTwoHopPruned(const Graph& g,
                                          unsigned num_threads,
                                          uint32_t bitmap_threshold);
  friend TwoHopLabeling BuildTwoHopGreedy(const Graph& g,
                                          uint32_t bitmap_threshold);

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  // One direction of codes: flat arena + per-center slice index, plus
  // the chunked bitmap sidecar for codes >= bitmap_threshold_. A chunk
  // covers 256 center ids (four u64 words); only non-empty chunks are
  // stored, as a sorted chunk-id list per sidecar slot.
  struct DirCodes {
    std::vector<CenterId> pool;      // all codes, center-major
    std::vector<uint64_t> off;       // num_centers + 1 slice bounds
    std::vector<uint32_t> slot;      // center -> sidecar slot / kNoSlot
    std::vector<uint32_t> chunk_off;  // slot -> chunk range (slots + 1)
    std::vector<uint32_t> chunks;    // sorted chunk ids (center id >> 8)
    std::vector<uint64_t> words;     // 4 words per chunk
  };

  static CodeSpan Slice(const DirCodes& d, CenterId c) {
    const uint64_t b = d.off[c];
    return {d.pool.data() + b, static_cast<size_t>(d.off[c + 1] - b)};
  }

  // Flattens builder output into the arenas and builds the sidecars.
  void AdoptCodes(std::vector<std::vector<CenterId>>&& in,
                  std::vector<std::vector<CenterId>>&& out,
                  uint32_t bitmap_threshold);
  static void Flatten(std::vector<std::vector<CenterId>>&& nested,
                      DirCodes* dir);
  static void BuildSidecar(DirCodes* dir, uint32_t threshold);
  // Rebuilds `dir` with center `c` inserted into the codes of every
  // component in `comps` (ascending); one pass over the arena.
  static void InsertCenter(DirCodes* dir, const std::vector<CenterId>& comps,
                           CenterId c);

  bool ProbeCodes(CenterId cu, CenterId cv) const;
  static bool BitmapBitmapIntersects(const DirCodes& a, uint32_t sa,
                                     const DirCodes& b, uint32_t sb);
  static bool ArrayBitmapIntersects(CodeSpan arr, const DirCodes& b,
                                    uint32_t sb);

  std::vector<CenterId> scc_of_;              // node -> center id
  DirCodes in_;                               // center -> L_in
  DirCodes out_;                              // center -> L_out
  std::vector<std::vector<NodeId>> members_;  // center -> member nodes
  uint32_t bitmap_threshold_ = kDefaultCodeBitmapThreshold;
};

// num_threads: 1 = exact sequential construction (default); 0 = one
// worker per hardware thread; N = batch-parallel with N workers.
// bitmap_threshold: see kDefaultCodeBitmapThreshold; 0 disables the
// bitmap sidecars.
TwoHopLabeling BuildTwoHopPruned(
    const Graph& g, unsigned num_threads = 1,
    uint32_t bitmap_threshold = kDefaultCodeBitmapThreshold);
TwoHopLabeling BuildTwoHopGreedy(
    const Graph& g, uint32_t bitmap_threshold = kDefaultCodeBitmapThreshold);

}  // namespace fgpm

#endif  // FGPM_REACH_TWO_HOP_H_
