// 2-hop reachability labeling (Cohen et al., SODA'02), the foundation of
// the paper's graph codes, cluster-based R-join index and W-table.
//
// A 2-hop cover is a set of clusters S(U_w, w, V_w): every u in U_w
// reaches the *center* w, and w reaches every v in V_w. Node labels
// derive from the cover:  L_out(u) = centers w with u ~> w,
// L_in(v) = centers w with w ~> v;  u ~> v  iff the label sets intersect
// (after the paper's compaction that puts each node itself into both of
// its own label sets).
//
// Two builders:
//  * BuildTwoHopPruned — pruned-BFS construction on the SCC condensation
//    (a valid 2-hop cover; our stand-in for the authors' EDBT'06 fast
//    algorithm; scales to millions of nodes). With num_threads > 1 the
//    per-center forward/backward sweeps run batch-parallel: a batch of
//    consecutive priority-ordered centers is swept concurrently, each
//    sweep pruning against the labels committed by earlier batches, and
//    the batch's label additions are committed in center order. Stale
//    pruning can only *add* (still true) entries, so the result is a
//    valid cover for any thread count, and it depends only on the batch
//    size — never on thread scheduling. num_threads == 1 reproduces the
//    sequential construction bit for bit.
//  * BuildTwoHopGreedy — classic greedy set-cover approximation; only
//    for small graphs (computes the transitive closure); used in tests
//    and the cover-size ablation.
//
// Centers are vertices of the condensation DAG, renumbered by the
// construction's priority order; all label vectors are sorted by center
// id. Labels are shared per SCC: nodes in the same component have equal
// codes (cycle members reach exactly the same things).
#ifndef FGPM_REACH_TWO_HOP_H_
#define FGPM_REACH_TWO_HOP_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/sorted_vector.h"
#include "graph/graph.h"

namespace fgpm {

using CenterId = uint32_t;

class TwoHopLabeling {
 public:
  // in(x): centers that reach x, including x's own component center id.
  const std::vector<CenterId>& InCode(NodeId v) const {
    return in_[scc_of_[v]];
  }
  // out(x): centers x reaches, including x's own component center id.
  const std::vector<CenterId>& OutCode(NodeId v) const {
    return out_[scc_of_[v]];
  }

  // Reflexive reachability test via code intersection (Example 3.1).
  // The probe runs on the adaptive SortedIntersects kernel: galloping
  // when one code is far larger than the other (hub vs leaf nodes),
  // branch-light merge when balanced.
  bool Reaches(NodeId u, NodeId v) const {
    if (u == v) return true;
    CenterId cu = scc_of_[u], cv = scc_of_[v];
    if (cu == cv) return true;
    return SortedIntersects(out_[cu], in_[cv]);
  }

  uint32_t num_centers() const { return static_cast<uint32_t>(in_.size()); }
  size_t num_nodes() const { return scc_of_.size(); }
  CenterId CenterOf(NodeId v) const { return scc_of_[v]; }

  // Total *stored* label entries summed over nodes — the paper's |H|
  // (Table 2). Matches the compact representation of Example 3.1: the
  // node's own entry is removed from each stored column, so the two
  // self entries per node are not counted.
  uint64_t CoverSize() const;

  // Members of a component/center (original node ids, ascending).
  const std::vector<NodeId>& MembersOf(CenterId c) const {
    return members_[c];
  }

  // Incremental maintenance for edge insertion — the 2-hop cover update
  // problem the paper cites ([24], Schenkel et al. ICDE'05). `g_after`
  // must already contain the edge (u, v) and be finalized. The labeling
  // is extended by one cluster S(ancestors(u), center(u), descendants(v))
  // which covers exactly the new reachable pairs. Returns
  // FailedPrecondition if the edge merges strongly connected components
  // (center identities would change; rebuild instead).
  // When non-null, `out_changed`/`in_changed` receive the components
  // whose out()/in() codes gained the new center (used by the database
  // to maintain tables and indexes incrementally).
  Status UpdateForEdgeInsert(const Graph& g_after, NodeId u, NodeId v,
                             std::vector<CenterId>* out_changed = nullptr,
                             std::vector<CenterId>* in_changed = nullptr);

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const;
  Status LoadMeta(BinaryReader* r);

 private:
  friend TwoHopLabeling BuildTwoHopPruned(const Graph& g,
                                          unsigned num_threads);
  friend TwoHopLabeling BuildTwoHopGreedy(const Graph& g);

  std::vector<CenterId> scc_of_;               // node -> center id
  std::vector<std::vector<CenterId>> in_;      // center -> L_in
  std::vector<std::vector<CenterId>> out_;     // center -> L_out
  std::vector<std::vector<NodeId>> members_;   // center -> member nodes
};

// num_threads: 1 = exact sequential construction (default); 0 = one
// worker per hardware thread; N = batch-parallel with N workers.
TwoHopLabeling BuildTwoHopPruned(const Graph& g, unsigned num_threads = 1);
TwoHopLabeling BuildTwoHopGreedy(const Graph& g);

}  // namespace fgpm

#endif  // FGPM_REACH_TWO_HOP_H_
