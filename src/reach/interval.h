// Interval-based reachability codes used by the two baselines (Section 5).
//
//  * TreeIntervalIndex — single [pre, post] interval over a DFS spanning
//    forest; answers *spanning-tree* ancestry only (phase 1 of TSD).
//  * MultiIntervalCode — the tree cover of Agrawal et al. (SIGMOD'89) on
//    a DAG: each vertex holds a postorder number and a set of disjoint
//    postorder intervals; u ~> v iff po(v) falls in an interval of u.
//    This is the code IGMJ (INT-DP) sorts and merge-joins.
//
// Both operate on the SCC condensation so they serve general digraphs;
// members of one SCC share the code of their component (as in [28]).
#ifndef FGPM_REACH_INTERVAL_H_
#define FGPM_REACH_INTERVAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace fgpm {

struct PostInterval {
  uint32_t lo = 0;
  uint32_t hi = 0;  // inclusive
  friend bool operator==(const PostInterval&, const PostInterval&) = default;
};

class MultiIntervalIndex {
 public:
  // Builds the tree cover for an arbitrary digraph (condenses first).
  explicit MultiIntervalIndex(const Graph& g);

  // Reflexive reachability.
  bool Reaches(NodeId u, NodeId v) const;

  uint32_t PostOf(NodeId v) const { return post_[scc_of_[v]]; }
  const std::vector<PostInterval>& IntervalsOf(NodeId v) const {
    return intervals_[scc_of_[v]];
  }
  uint32_t ComponentOf(NodeId v) const { return scc_of_[v]; }

  // Total interval count — the baseline's "code size" (grows on dense
  // DAGs, which is why the paper's INT-DP pays extra I/O).
  uint64_t TotalIntervals() const;

 private:
  std::vector<uint32_t> scc_of_;                   // node -> dag vertex
  std::vector<uint32_t> post_;                     // dag vertex -> postorder
  std::vector<std::vector<PostInterval>> intervals_;  // dag vertex -> code
};

// Merges possibly-overlapping intervals into a minimal sorted disjoint
// set (exposed for tests).
std::vector<PostInterval> NormalizeIntervals(std::vector<PostInterval> in);

// True if po lies in one of the sorted disjoint intervals.
bool IntervalsContain(const std::vector<PostInterval>& ivs, uint32_t po);

}  // namespace fgpm

#endif  // FGPM_REACH_INTERVAL_H_
