// fgpm::GraphMatcher — the library's front door.
//
//   fgpm::Graph g = fgpm::gen::XMarkLike({.factor = 0.01});
//   auto matcher = fgpm::GraphMatcher::Create(&g);
//   auto result = (*matcher)->Match("site->region; region->item");
//   for (const auto& row : result->rows) ...
//
// Engines:
//   kDps       — R-join order interleaved with R-semijoins (Section 4.2,
//                the paper's best performer); default.
//   kDp        — R-join-only dynamic programming (Section 4.1).
//   kCanonical — first valid left-deep plan, no cost model.
//   kIntDp     — IGMJ sort-merge baseline with DP ordering (Section 5.2).
//   kTsd       — TwigStackD-style holistic baseline; DAG data only
//                (Section 5.1).
//   kNaive     — backtracking over a BFS oracle (ground truth).
#ifndef FGPM_CORE_GRAPH_MATCHER_H_
#define FGPM_CORE_GRAPH_MATCHER_H_

#include <deque>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "baseline/igmj.h"
#include "baseline/tsd.h"
#include "common/status.h"
#include "core/result_cache.h"
#include "exec/batch.h"
#include "exec/engine.h"
#include "exec/plan.h"
#include "gdb/database.h"
#include "graph/graph.h"
#include "opt/explain.h"
#include "query/containment.h"
#include "query/pattern.h"

namespace fgpm {

enum class Engine {
  kDps,
  kDp,
  kCanonical,
  kIntDp,
  kTsd,
  kNaive,
};

const char* EngineName(Engine e);

struct MatchOptions {
  Engine engine = Engine::kDps;
  // Drop transitively implied pattern edges before planning.
  bool transitive_reduction = false;
  // Labels to keep in the result (the projection of Eq. 2); empty keeps
  // all pattern labels. Projected results are re-deduplicated. Every
  // name must be a pattern label.
  std::vector<std::string> projection;
  // Reuse optimized plans across calls with the same (pattern, engine).
  bool use_plan_cache = true;
};

// One entry of the matcher's slow-query log (ExecOptions::slow_query_ms).
struct SlowQuery {
  std::string pattern_text;
  Engine engine = Engine::kDps;
  double elapsed_ms = 0;   // optimize + execute
  double optimize_ms = 0;
  uint64_t result_rows = 0;
};

// Aggregate accounting of one MatchBatch call.
struct BatchStats {
  uint64_t queries = 0;          // patterns submitted
  uint64_t unique_queries = 0;   // after canonical-form dedup
  uint64_t cache_exact = 0;      // answered by a result-cache exact hit
  uint64_t cache_replay = 0;     // answered by containment replay
  uint64_t shared_seed_groups = 0;   // opening groups seeded >= 2 queries
  uint64_t shared_seed_reuses = 0;   // queries served from a shared seed
};

// EXPLAIN ANALYZE: the optimizer's estimates, the actual execution, and
// the combined per-step profile report. `chrome_trace_json` is a Chrome
// trace_event dump of the per-step spans (empty when obs is compiled
// out).
struct ExplainAnalyzeResult {
  PlanExplanation explanation;
  MatchResult result;
  std::string report;  // explanation.ToStringWithActuals(result.stats)
  std::string chrome_trace_json;
};

class GraphMatcher {
 public:
  // Builds the graph database (2-hop cover, base tables, R-join index,
  // W-table, statistics) for `g`. The graph must stay alive as long as
  // the matcher (baselines and the naive engine read it directly).
  // `exec_options.num_threads` controls intra-operator parallelism of
  // the R-join engines; results are identical for every thread count.
  static Result<std::unique_ptr<GraphMatcher>> Create(
      const Graph* g, GraphDatabaseOptions db_options = {},
      ExecOptions exec_options = {});

  // Wraps an already-built database (e.g. GraphDatabase::Open). When
  // `g` is null the R-join engines (kDps/kDp/kCanonical) work fully;
  // the baselines and the naive engine need the original graph and
  // return FailedPrecondition without it.
  static Result<std::unique_ptr<GraphMatcher>> FromDatabase(
      std::unique_ptr<GraphDatabase> db, const Graph* g = nullptr,
      ExecOptions exec_options = {});

  Result<MatchResult> Match(const Pattern& pattern, MatchOptions options = {});
  Result<MatchResult> Match(std::string_view pattern_text,
                            MatchOptions options = {});

  // Executes a batch of concurrent queries together (planned engines
  // kDps/kDp/kCanonical only). The batch is deduplicated by canonical
  // form, probed against the result cache (when enabled), and the
  // remaining unique queries run through exec/batch.h's shared-seed
  // executor: queries opening on the same label extents share one base
  // scan + R-semijoin pass, then fan their pipeline tails out across
  // the executor's pool. results[i] answers patterns[i] and is
  // row-identical to a solo Match(patterns[i], options).
  Result<std::vector<MatchResult>> MatchBatch(
      const std::vector<Pattern>& patterns, MatchOptions options = {},
      BatchStats* batch_stats = nullptr);
  Result<std::vector<MatchResult>> MatchBatch(
      const std::vector<std::string>& pattern_texts, MatchOptions options = {},
      BatchStats* batch_stats = nullptr);

  // Plans, explains and executes in one call (kDps/kDp/kCanonical only):
  // the optimizer's per-step estimates lined up with the actual per-step
  // rows, wall time and cost-model error of the same plan. The execution
  // runs at span granularity — `trace_level` below 1 is promoted to 1 so
  // a level-0 matcher still gets per-step timings here.
  Result<ExplainAnalyzeResult> ExplainAnalyze(const Pattern& pattern,
                                              MatchOptions options = {},
                                              int trace_level = 1);
  Result<ExplainAnalyzeResult> ExplainAnalyze(std::string_view pattern_text,
                                              MatchOptions options = {},
                                              int trace_level = 1);

  // Plans a pattern without executing (kDps/kDp/kCanonical only).
  Result<fgpm::Plan> MakePlan(const Pattern& pattern, Engine engine) const;

  GraphDatabase& db() { return *db_; }
  const GraphDatabase& db() const { return *db_; }
  const Graph& graph() const { return *graph_; }

 private:
  GraphMatcher(const Graph* g, std::unique_ptr<GraphDatabase> db,
               ExecOptions exec_options)
      : graph_(g),
        db_(std::move(db)),
        executor_(db_.get(), exec_options) {
    seen_epoch_ = db_->epoch();
  }

  static Result<MatchResult> Project(MatchResult result,
                                     const Pattern& pattern,
                                     const MatchOptions& options);

  // Common postlude for every successful Match: bumps the matcher-level
  // registry metrics and appends to the slow-query log when the query's
  // total elapsed time crosses ExecOptions::slow_query_ms.
  void RecordQuery(const Pattern& pattern, Engine engine,
                   const ExecStats& stats);

  // Plan resolution shared by Match, MatchBatch and ExplainAnalyze:
  // cache lookup under the pattern's canonical key, optimize on miss,
  // insert when caching is on. Cached plans are stored in canonical
  // coordinates and translated through `canon`'s maps both ways, so
  // every spelling of a pattern shares one cache entry. `storage` must
  // outlive the returned pointer (holds the plan whenever it is not
  // served straight from the cache).
  Result<const fgpm::Plan*> ResolvePlan(const Pattern& pattern,
                                        const CanonicalForm& canon,
                                        const MatchOptions& options,
                                        fgpm::Plan* storage,
                                        double* optimize_ms);

  // Lazily constructs the result cache (ExecOptions::use_result_cache).
  ResultCache* EnsureResultCache();
  // Drops both caches when GraphDatabase::epoch() has moved since the
  // last query (ApplyEdgeInsert changed reachability + statistics).
  void CheckEpoch();
  // Answers `canon` from the result cache if possible: exact hit, or a
  // containment replay when the policy (and cost model, for kCostBased
  // against `fresh_cost`) favors it. On success fills rows in CANONICAL
  // node order and sets *cache_hit to 1 (exact) or 2 (replay).
  Result<bool> TryResultCache(const CanonicalForm& canon,
                              double fresh_cost,
                              std::vector<std::vector<NodeId>>* rows,
                              OperatorStats* op_stats, uint8_t* cache_hit);
  // Pushes result-cache counter deltas + the bytes gauge into the
  // metrics registry (no-op when obs is disabled).
  void SyncResultCacheMetrics();

  // Caches a freshly optimized plan, evicting the least recently used
  // entry when over capacity (must be > 0). Returns the cached plan
  // (stable address: unordered_map never moves mapped values on rehash
  // or other-entry erase).
  const fgpm::Plan* CachePlan(const std::string& key, fgpm::Plan plan);
  // Cache lookup; refreshes recency on hit and bumps the hit/miss
  // counters.
  const fgpm::Plan* LookupPlan(const std::string& key);

  const Graph* graph_;
  std::unique_ptr<GraphDatabase> db_;
  Executor executor_;
  std::unique_ptr<IntDpEngine> intdp_;           // lazy
  std::unique_ptr<TsdEngine> tsd_;               // lazy; DAG data only
  // Bounded LRU plan cache keyed by "<engine>|<pattern text>". The list
  // holds keys in recency order (front = most recent); entries point at
  // their list position for O(1) refresh.
  struct CachedPlan {
    fgpm::Plan plan;
    std::list<std::string>::iterator lru_pos;
  };
  std::list<std::string> plan_lru_;
  std::unordered_map<std::string, CachedPlan> plan_cache_;
  uint64_t plan_cache_hits_ = 0;
  uint64_t plan_cache_misses_ = 0;
  uint64_t plan_cache_evictions_ = 0;
  uint64_t cache_invalidations_ = 0;
  // Semantic result cache (null until the first query with
  // use_result_cache on). seen_epoch_ tracks GraphDatabase::epoch() so
  // both caches self-invalidate after ApplyEdgeInsert.
  std::unique_ptr<ResultCache> result_cache_;
  uint64_t seen_epoch_ = 0;
  // Last counter values already pushed into the metrics registry
  // (counters are monotonic; the registry gets deltas).
  struct SyncedCacheCounters {
    uint64_t hits_exact = 0, hits_containment = 0, misses = 0;
    uint64_t evictions = 0, inserts = 0;
  } synced_;
  // Reused across MatchBatch calls / containment replays: configuring
  // either allocates memo tables, so per-call construction would
  // dominate small batches (see BatchScratch / ReplayContainment docs).
  BatchScratch batch_scratch_;
  std::vector<ReachMemo> replay_memos_;
  // Ring of the most recent slow queries (kSlowLogCapacity newest kept).
  std::deque<SlowQuery> slow_queries_;

 public:
  static constexpr size_t kSlowLogCapacity = 64;
  // Most recent queries whose elapsed time (optimize + execute) crossed
  // ExecOptions::slow_query_ms, oldest first. Empty when the threshold
  // is negative (the default).
  const std::deque<SlowQuery>& slow_queries() const { return slow_queries_; }
  void ClearSlowQueries() { slow_queries_.clear(); }
  // Switch the join strategy for subsequent planning. No cache flush
  // needed: plan-cache keys include the strategy, so plans built under
  // another strategy can never be served by mistake.
  void set_join_strategy(JoinStrategy s) { executor_.set_join_strategy(s); }
  JoinStrategy join_strategy() const {
    return executor_.options().join_strategy;
  }
  // Invalidate cached plans (after ApplyEdgeInsert shifts statistics).
  void ClearPlanCache() {
    plan_cache_.clear();
    plan_lru_.clear();
  }
  // ClearPlanCache plus invalidation accounting — what the automatic
  // epoch check runs. Exposed so callers that mutate statistics outside
  // ApplyEdgeInsert can force the same path.
  void InvalidatePlanCache();
  void ClearResultCache();
  // The semantic result cache; null until the first query ran with
  // ExecOptions::use_result_cache set.
  const ResultCache* result_cache() const { return result_cache_.get(); }
  uint64_t plan_cache_evictions() const { return plan_cache_evictions_; }
  uint64_t cache_invalidations() const { return cache_invalidations_; }
  size_t plan_cache_size() const { return plan_cache_.size(); }
  // Capacity comes from ExecOptions::plan_cache_capacity (0 disables).
  size_t plan_cache_capacity() const {
    return executor_.options().plan_cache_capacity;
  }
  uint64_t plan_cache_hits() const { return plan_cache_hits_; }
  uint64_t plan_cache_misses() const { return plan_cache_misses_; }
};

}  // namespace fgpm

#endif  // FGPM_CORE_GRAPH_MATCHER_H_
