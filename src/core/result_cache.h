// Semantic result cache: bounded, memory-budgeted storage of match
// results keyed by canonical pattern form (see query/containment.h).
//
// Two ways a query is answered from the cache:
//   * exact hit — the canonical key matches; cached rows are copied out;
//   * containment hit — a cached *more general* pattern contains the
//     query (Contains(cached, query) succeeds); the cached rows are
//     replayed through a filter-down pipeline: permute columns through
//     the containment homomorphism, then re-check the residual edges
//     per row with graph-code reachability probes (ReplayContainment).
//
// Rows are stored flattened in canonical node order, so one entry
// serves every spelling of its pattern. Eviction is LRU by bytes; a
// single result larger than the whole budget is never cached. The cache
// is deliberately single-threaded (owned by one GraphMatcher, like the
// plan cache); invalidation is the owner's job — GraphMatcher drops the
// whole cache when GraphDatabase::epoch() moves.
#ifndef FGPM_CORE_RESULT_CACHE_H_
#define FGPM_CORE_RESULT_CACHE_H_

#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/engine.h"
#include "gdb/database.h"
#include "query/containment.h"
#include "query/pattern.h"
#include "reach/reach_memo.h"

namespace fgpm {

class ResultCache {
 public:
  explicit ResultCache(size_t budget_bytes) : budget_(budget_bytes) {}

  struct Entry {
    Pattern pattern;           // canonical coordinates
    std::vector<NodeId> rows;  // row-major, arity ids per row
    size_t arity = 0;
    size_t num_rows = 0;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  // Exact lookup; refreshes recency and bumps hits_exact on success.
  // The pointer stays valid until the next Insert/Clear.
  const Entry* LookupExact(const std::string& key);

  struct ContainmentHit {
    const Entry* entry = nullptr;
    ContainmentMapping mapping;  // entry->pattern is the general side
  };
  // Scans cached entries for one whose pattern contains `specific`
  // (both in canonical coordinates). Among candidates, prefers the
  // fewest residual edges, then the fewest cached rows — the cheapest
  // replay. Refreshes recency. Does NOT bump hits_containment: the
  // owner may still decline the replay on cost, so it records the
  // outcome itself (RecordContainmentHit / RecordMiss).
  std::optional<ContainmentHit> FindContaining(const Pattern& specific);

  // The owner's verdict after FindContaining: the replay actually ran...
  void RecordContainmentHit() { ++hits_containment_; }
  // ...or every lookup path came up empty / was declined.
  void RecordMiss() { ++misses_; }

  // Inserts rows (already permuted into canonical node order) under
  // `key`. Replaces an existing entry for the same key. Oversized
  // results (entry alone over the whole budget) are skipped; otherwise
  // least-recently-used entries are evicted until within budget.
  void Insert(const std::string& key, Pattern pattern,
              const std::vector<std::vector<NodeId>>& rows);

  void Clear();

  size_t size() const { return entries_.size(); }
  size_t bytes() const { return bytes_; }
  size_t budget_bytes() const { return budget_; }
  uint64_t hits_exact() const { return hits_exact_; }
  uint64_t hits_containment() const { return hits_containment_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t inserts() const { return inserts_; }

 private:
  void Evict(const std::string& key);

  size_t budget_;
  size_t bytes_ = 0;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
  uint64_t hits_exact_ = 0;
  uint64_t hits_containment_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t inserts_ = 0;
};

// Filter-down replay of a containment hit: for every cached row of
// `entry` (general canonical node order), permute the columns through
// mapping.general_to_specific into `specific`'s node order, then keep
// the row iff every residual edge passes a graph-code reachability
// probe (same check as the select operator, memoized per worker).
// node_labels are `specific`'s labels resolved against the catalog.
// Appends surviving rows to out_rows in deterministic (chunk-merged)
// order and folds rows_scanned/rows_pruned/code_fetches into stats.
// `memos` is the caller-owned per-worker memo pool, reused call over
// call (sizing a ReachMemo allocates; clearing one is O(1)) — pass the
// same vector every time.
Status ReplayContainment(const GraphDatabase& db, const Pattern& specific,
                         const std::vector<LabelId>& node_labels,
                         const ResultCache::Entry& entry,
                         const ContainmentMapping& mapping, ThreadPool* pool,
                         std::vector<ReachMemo>* memos,
                         std::vector<std::vector<NodeId>>* out_rows,
                         OperatorStats* stats);

}  // namespace fgpm

#endif  // FGPM_CORE_RESULT_CACHE_H_
