#include "core/graph_matcher.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"

#include "exec/naive_matcher.h"
#include "obs/metrics.h"
#include "opt/dp_optimizer.h"
#include "opt/dps_optimizer.h"
#include "opt/wcoj_planner.h"

namespace fgpm {

namespace {

struct MatcherMetrics {
  obs::Counter* queries;
  obs::Counter* slow_queries;
  obs::Counter* plan_cache_hits;
  obs::Counter* plan_cache_misses;
  obs::Histogram* latency_usec;

  static const MatcherMetrics& Get() {
    static const MatcherMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      MatcherMetrics e;
      e.queries =
          r.GetCounter("fgpm_match_queries_total", "GraphMatcher::Match calls");
      e.slow_queries = r.GetCounter(
          "fgpm_slow_queries_total",
          "Queries slower than ExecOptions::slow_query_ms");
      e.plan_cache_hits =
          r.GetCounter("fgpm_plan_cache_hits_total", "Plan cache hits");
      e.plan_cache_misses =
          r.GetCounter("fgpm_plan_cache_misses_total", "Plan cache misses");
      e.latency_usec =
          r.GetHistogram("fgpm_match_latency_usec",
                         "End-to-end match time, optimize + execute (us)");
      return e;
    }();
    return m;
  }
};

}  // namespace

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kDps:
      return "DPS";
    case Engine::kDp:
      return "DP";
    case Engine::kCanonical:
      return "CANONICAL";
    case Engine::kIntDp:
      return "INT-DP";
    case Engine::kTsd:
      return "TSD";
    case Engine::kNaive:
      return "NAIVE";
  }
  return "?";
}

Result<std::unique_ptr<GraphMatcher>> GraphMatcher::Create(
    const Graph* g, GraphDatabaseOptions db_options,
    ExecOptions exec_options) {
  if (g == nullptr || !g->finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  auto db = std::make_unique<GraphDatabase>(db_options);
  FGPM_RETURN_IF_ERROR(db->Build(*g));
  return std::unique_ptr<GraphMatcher>(
      new GraphMatcher(g, std::move(db), exec_options));
}

Result<std::unique_ptr<GraphMatcher>> GraphMatcher::FromDatabase(
    std::unique_ptr<GraphDatabase> db, const Graph* g,
    ExecOptions exec_options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  return std::unique_ptr<GraphMatcher>(
      new GraphMatcher(g, std::move(db), exec_options));
}

Result<Plan> GraphMatcher::MakePlan(const Pattern& pattern, Engine engine) const {
  // Cost the plan for the representation it will actually run under:
  // factorized execution writes delta pairs instead of full-width rows,
  // so wide intermediates stop dominating the estimates.
  CostParams params;
  params.factorized =
      executor_.options().materialization == Materialization::kFactorized;
  const JoinStrategy strategy = executor_.options().join_strategy;
  // kWcoj forces a pure bind-per-vertex plan; kHybrid hands bind-moves
  // to the cost-based searches, which mix them freely with binary
  // R-join moves (and never use them on acyclic patterns).
  if (strategy == JoinStrategy::kWcoj &&
      (engine == Engine::kDps || engine == Engine::kDp ||
       engine == Engine::kCanonical)) {
    return MakeWcojPlan(pattern, db_->catalog(), params);
  }
  switch (engine) {
    case Engine::kDps:
      return OptimizeDps(pattern, db_->catalog(), params, strategy);
    case Engine::kDp:
      return OptimizeDp(pattern, db_->catalog(), params, strategy);
    case Engine::kCanonical:
      return MakeCanonicalPlan(pattern);
    default:
      return Status::InvalidArgument(
          "planning is only meaningful for DPS/DP/CANONICAL");
  }
}

const Plan* GraphMatcher::LookupPlan(const std::string& key) {
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    ++plan_cache_misses_;
    if (obs::Enabled()) MatcherMetrics::Get().plan_cache_misses->Increment();
    return nullptr;
  }
  ++plan_cache_hits_;
  if (obs::Enabled()) MatcherMetrics::Get().plan_cache_hits->Increment();
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_pos);
  return &it->second.plan;
}

const Plan* GraphMatcher::CachePlan(const std::string& key, Plan plan) {
  const size_t capacity = executor_.options().plan_cache_capacity;
  FGPM_CHECK(capacity > 0);  // callers skip the cache when disabled
  while (plan_cache_.size() >= capacity) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
  }
  plan_lru_.push_front(key);
  auto [it, inserted] =
      plan_cache_.emplace(key, CachedPlan{std::move(plan), plan_lru_.begin()});
  FGPM_CHECK(inserted);  // callers look up before inserting
  return &it->second.plan;
}

Result<const Plan*> GraphMatcher::ResolvePlan(const Pattern& pattern,
                                              const MatchOptions& options,
                                              Plan* storage,
                                              double* optimize_ms) {
  WallTimer opt_timer;
  std::string cache_key;
  const Plan* plan = nullptr;
  if (options.use_plan_cache) {
    // The key must cover everything MakePlan's output depends on: the
    // engine, the join strategy, and the materialization mode (both
    // change which plan is optimal for the same pattern text).
    const ExecOptions& eo = executor_.options();
    cache_key = std::string(EngineName(options.engine)) + "|" +
                JoinStrategyName(eo.join_strategy) + "|" +
                (eo.materialization == Materialization::kFactorized ? "F"
                                                                    : "E") +
                "|" + pattern.ToString();
    plan = LookupPlan(cache_key);
  }
  if (plan == nullptr) {
    FGPM_ASSIGN_OR_RETURN(*storage, MakePlan(pattern, options.engine));
    if (options.use_plan_cache && plan_cache_capacity() > 0) {
      plan = CachePlan(cache_key, std::move(*storage));
    } else {
      plan = storage;
    }
  }
  *optimize_ms = opt_timer.ElapsedMillis();
  return plan;
}

void GraphMatcher::RecordQuery(const Pattern& pattern, Engine engine,
                               const ExecStats& stats) {
  if (obs::Enabled()) {
    const MatcherMetrics& m = MatcherMetrics::Get();
    m.queries->Increment();
    m.latency_usec->Observe(static_cast<uint64_t>(stats.elapsed_ms * 1e3));
  }
  // The slow-query log is a diagnostic feature gated only on the
  // slow_query_ms threshold — it works even with obs disabled or
  // compiled out; only the registry counter depends on obs.
  const double threshold = executor_.options().slow_query_ms;
  if (threshold >= 0 && stats.elapsed_ms >= threshold) {
    if (obs::Enabled()) {
      MatcherMetrics::Get().slow_queries->Increment();
    }
    if (slow_queries_.size() >= kSlowLogCapacity) {
      slow_queries_.pop_front();
    }
    slow_queries_.push_back({pattern.ToString(), engine, stats.elapsed_ms,
                             stats.optimize_ms, stats.result_rows});
  }
}

Result<MatchResult> GraphMatcher::Match(const Pattern& pattern,
                                        MatchOptions options) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  const Pattern* effective = &pattern;
  Pattern reduced;
  if (options.transitive_reduction) {
    reduced = pattern.TransitiveReduction();
    effective = &reduced;
  }

  // Shared postlude: metrics + slow-query log, then projection.
  auto finish = [&](MatchResult result) {
    RecordQuery(*effective, options.engine, result.stats);
    return Project(std::move(result), *effective, options);
  };

  switch (options.engine) {
    case Engine::kDps:
    case Engine::kDp:
    case Engine::kCanonical: {
      fgpm::Plan storage;
      double optimize_ms = 0;
      FGPM_ASSIGN_OR_RETURN(
          const fgpm::Plan* plan,
          ResolvePlan(*effective, options, &storage, &optimize_ms));
      FGPM_ASSIGN_OR_RETURN(MatchResult result,
                            executor_.Execute(*effective, *plan));
      // Like the paper, reported elapsed time covers optimization AND
      // processing.
      result.stats.optimize_ms = optimize_ms;
      result.stats.elapsed_ms += optimize_ms;
      return finish(std::move(result));
    }
    case Engine::kIntDp: {
      if (graph_ == nullptr) {
        return Status::FailedPrecondition(
            "INT-DP needs the original graph (matcher opened from a saved "
            "database only)");
      }
      if (!intdp_) {
        intdp_ = std::make_unique<IntDpEngine>(graph_, &db_->catalog());
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result, intdp_->Match(*effective));
      return finish(std::move(result));
    }
    case Engine::kTsd: {
      if (graph_ == nullptr) {
        return Status::FailedPrecondition(
            "TSD needs the original graph (matcher opened from a saved "
            "database only)");
      }
      if (!tsd_) {
        FGPM_ASSIGN_OR_RETURN(tsd_, TsdEngine::Create(graph_));
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result, tsd_->Match(*effective));
      return finish(std::move(result));
    }
    case Engine::kNaive: {
      if (graph_ == nullptr) {
        return Status::FailedPrecondition(
            "the naive engine needs the original graph");
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result,
                            NaiveMatch(*graph_, *effective));
      return finish(std::move(result));
    }
  }
  return Status::InvalidArgument("unknown engine");
}

Result<ExplainAnalyzeResult> GraphMatcher::ExplainAnalyze(
    const Pattern& pattern, MatchOptions options, int trace_level) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  if (options.engine != Engine::kDps && options.engine != Engine::kDp &&
      options.engine != Engine::kCanonical) {
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE needs a planned engine (DPS/DP/CANONICAL)");
  }
  const Pattern* effective = &pattern;
  Pattern reduced;
  if (options.transitive_reduction) {
    reduced = pattern.TransitiveReduction();
    effective = &reduced;
  }

  fgpm::Plan storage;
  double optimize_ms = 0;
  FGPM_ASSIGN_OR_RETURN(
      const fgpm::Plan* plan,
      ResolvePlan(*effective, options, &storage, &optimize_ms));

  // Explain with the exact CostParams the optimizer planned under, so
  // est-vs-actual deltas expose model error, not a configuration skew.
  CostParams params;
  params.factorized =
      executor_.options().materialization == Materialization::kFactorized;
  ExplainAnalyzeResult out;
  FGPM_ASSIGN_OR_RETURN(
      out.explanation,
      ExplainPlan(*effective, *plan, db_->catalog(), params));

  FGPM_ASSIGN_OR_RETURN(
      out.result,
      executor_.Execute(*effective, *plan, std::max(1, trace_level)));
  out.result.stats.optimize_ms = optimize_ms;
  out.result.stats.elapsed_ms += optimize_ms;
  RecordQuery(*effective, options.engine, out.result.stats);

  out.report = out.explanation.ToStringWithActuals(out.result.stats);
  if (out.result.stats.trace) {
    out.chrome_trace_json = out.result.stats.trace->ToChromeJson();
  }
  FGPM_ASSIGN_OR_RETURN(out.result,
                        Project(std::move(out.result), *effective, options));
  return out;
}

Result<ExplainAnalyzeResult> GraphMatcher::ExplainAnalyze(
    std::string_view pattern_text, MatchOptions options, int trace_level) {
  FGPM_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(pattern_text));
  return ExplainAnalyze(p, options, trace_level);
}

Result<MatchResult> GraphMatcher::Project(MatchResult result,
                                          const Pattern& pattern,
                                          const MatchOptions& options) {
  if (options.projection.empty()) return result;
  std::vector<size_t> cols;
  for (const std::string& name : options.projection) {
    bool found = false;
    for (size_t c = 0; c < result.column_labels.size(); ++c) {
      if (result.column_labels[c] == name) {
        cols.push_back(c);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("projection label '" + name +
                                     "' is not a pattern label");
    }
  }
  (void)pattern;
  MatchResult projected;
  projected.stats = result.stats;
  for (size_t c : cols) projected.column_labels.push_back(result.column_labels[c]);
  std::unordered_set<std::vector<NodeId>, RowHash> seen;
  for (const auto& row : result.rows) {
    std::vector<NodeId> out(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) out[i] = row[cols[i]];
    if (seen.insert(out).second) projected.rows.push_back(std::move(out));
  }
  projected.stats.result_rows = projected.rows.size();
  return projected;
}

Result<MatchResult> GraphMatcher::Match(std::string_view pattern_text,
                                        MatchOptions options) {
  FGPM_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(pattern_text));
  return Match(p, options);
}

}  // namespace fgpm
