#include "core/graph_matcher.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"

#include "exec/naive_matcher.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "opt/cost_model.h"
#include "opt/dp_optimizer.h"
#include "opt/dps_optimizer.h"
#include "opt/wcoj_planner.h"

namespace fgpm {

namespace {

struct MatcherMetrics {
  obs::Counter* queries;
  obs::Counter* slow_queries;
  obs::Counter* plan_cache_hits;
  obs::Counter* plan_cache_misses;
  obs::Counter* plan_cache_evictions;
  obs::Counter* cache_invalidations;
  obs::Counter* result_cache_hits;
  obs::Counter* result_cache_containment_hits;
  obs::Counter* result_cache_misses;
  obs::Counter* result_cache_evictions;
  obs::Counter* result_cache_inserts;
  obs::Gauge* result_cache_bytes;
  obs::Counter* batch_queries;
  obs::Counter* batch_dedup_hits;
  obs::Counter* batch_shared_seed_groups;
  obs::Counter* batch_shared_seed_reuses;
  obs::Histogram* latency_usec;

  static const MatcherMetrics& Get() {
    static const MatcherMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      MatcherMetrics e;
      e.queries =
          r.GetCounter("fgpm_match_queries_total", "GraphMatcher::Match calls");
      e.slow_queries = r.GetCounter(
          "fgpm_slow_queries_total",
          "Queries slower than ExecOptions::slow_query_ms");
      e.plan_cache_hits =
          r.GetCounter("fgpm_plan_cache_hits_total", "Plan cache hits");
      e.plan_cache_misses =
          r.GetCounter("fgpm_plan_cache_misses_total", "Plan cache misses");
      e.plan_cache_evictions = r.GetCounter("fgpm_plan_cache_evictions_total",
                                            "Plan cache LRU evictions");
      e.cache_invalidations = r.GetCounter(
          "fgpm_cache_invalidations_total",
          "Plan + result cache invalidations (epoch moves and explicit)");
      e.result_cache_hits = r.GetCounter("fgpm_result_cache_hits_total",
                                         "Result cache exact hits");
      e.result_cache_containment_hits =
          r.GetCounter("fgpm_result_cache_containment_hits_total",
                       "Result cache containment-replay hits");
      e.result_cache_misses = r.GetCounter("fgpm_result_cache_misses_total",
                                           "Result cache misses");
      e.result_cache_evictions = r.GetCounter(
          "fgpm_result_cache_evictions_total", "Result cache LRU evictions");
      e.result_cache_inserts = r.GetCounter("fgpm_result_cache_inserts_total",
                                            "Result cache inserts");
      e.result_cache_bytes = r.GetGauge("fgpm_result_cache_bytes",
                                        "Result cache resident bytes");
      e.batch_queries = r.GetCounter("fgpm_batch_queries_total",
                                     "Queries submitted via MatchBatch");
      e.batch_dedup_hits = r.GetCounter(
          "fgpm_batch_dedup_hits_total",
          "Batch queries answered by another member's canonical duplicate");
      e.batch_shared_seed_groups =
          r.GetCounter("fgpm_batch_shared_seed_groups_total",
                       "Batch opening groups that seeded >= 2 queries");
      e.batch_shared_seed_reuses =
          r.GetCounter("fgpm_batch_shared_seed_reuses_total",
                       "Batch queries served from a shared seed");
      e.latency_usec =
          r.GetHistogram("fgpm_match_latency_usec",
                         "End-to-end match time, optimize + execute (us)");
      return e;
    }();
    return m;
  }
};

}  // namespace

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kDps:
      return "DPS";
    case Engine::kDp:
      return "DP";
    case Engine::kCanonical:
      return "CANONICAL";
    case Engine::kIntDp:
      return "INT-DP";
    case Engine::kTsd:
      return "TSD";
    case Engine::kNaive:
      return "NAIVE";
  }
  return "?";
}

Result<std::unique_ptr<GraphMatcher>> GraphMatcher::Create(
    const Graph* g, GraphDatabaseOptions db_options,
    ExecOptions exec_options) {
  if (g == nullptr || !g->finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  auto db = std::make_unique<GraphDatabase>(db_options);
  FGPM_RETURN_IF_ERROR(db->Build(*g));
  return std::unique_ptr<GraphMatcher>(
      new GraphMatcher(g, std::move(db), exec_options));
}

Result<std::unique_ptr<GraphMatcher>> GraphMatcher::FromDatabase(
    std::unique_ptr<GraphDatabase> db, const Graph* g,
    ExecOptions exec_options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  return std::unique_ptr<GraphMatcher>(
      new GraphMatcher(g, std::move(db), exec_options));
}

Result<Plan> GraphMatcher::MakePlan(const Pattern& pattern, Engine engine) const {
  // Cost the plan for the representation it will actually run under:
  // factorized execution writes delta pairs instead of full-width rows,
  // so wide intermediates stop dominating the estimates.
  CostParams params;
  params.factorized =
      executor_.options().materialization == Materialization::kFactorized;
  const JoinStrategy strategy = executor_.options().join_strategy;
  // kWcoj forces a pure bind-per-vertex plan; kHybrid hands bind-moves
  // to the cost-based searches, which mix them freely with binary
  // R-join moves (and never use them on acyclic patterns).
  if (strategy == JoinStrategy::kWcoj &&
      (engine == Engine::kDps || engine == Engine::kDp ||
       engine == Engine::kCanonical)) {
    return MakeWcojPlan(pattern, db_->catalog(), params);
  }
  switch (engine) {
    case Engine::kDps:
      return OptimizeDps(pattern, db_->catalog(), params, strategy);
    case Engine::kDp:
      return OptimizeDp(pattern, db_->catalog(), params, strategy);
    case Engine::kCanonical:
      return MakeCanonicalPlan(pattern);
    default:
      return Status::InvalidArgument(
          "planning is only meaningful for DPS/DP/CANONICAL");
  }
}

const Plan* GraphMatcher::LookupPlan(const std::string& key) {
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    ++plan_cache_misses_;
    if (obs::Enabled()) MatcherMetrics::Get().plan_cache_misses->Increment();
    return nullptr;
  }
  ++plan_cache_hits_;
  if (obs::Enabled()) MatcherMetrics::Get().plan_cache_hits->Increment();
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_pos);
  return &it->second.plan;
}

const Plan* GraphMatcher::CachePlan(const std::string& key, Plan plan) {
  const size_t capacity = executor_.options().plan_cache_capacity;
  FGPM_CHECK(capacity > 0);  // callers skip the cache when disabled
  while (plan_cache_.size() >= capacity) {
    plan_cache_.erase(plan_lru_.back());
    plan_lru_.pop_back();
    ++plan_cache_evictions_;
    if (obs::Enabled()) MatcherMetrics::Get().plan_cache_evictions->Increment();
  }
  plan_lru_.push_front(key);
  auto [it, inserted] =
      plan_cache_.emplace(key, CachedPlan{std::move(plan), plan_lru_.begin()});
  FGPM_CHECK(inserted);  // callers look up before inserting
  return &it->second.plan;
}

Result<const Plan*> GraphMatcher::ResolvePlan(const Pattern& pattern,
                                              const CanonicalForm& canon,
                                              const MatchOptions& options,
                                              Plan* storage,
                                              double* optimize_ms) {
  WallTimer opt_timer;
  std::string cache_key;
  const Plan* plan = nullptr;
  if (options.use_plan_cache) {
    // The key must cover everything MakePlan's output depends on: the
    // engine, the join strategy, and the materialization mode (both
    // change which plan is optimal for the same pattern). The pattern
    // part is the canonical key, so every spelling of a pattern (edge
    // order, chain grouping, node numbering) shares one entry.
    const ExecOptions& eo = executor_.options();
    cache_key = std::string(EngineName(options.engine)) + "|" +
                JoinStrategyName(eo.join_strategy) + "|" +
                (eo.materialization == Materialization::kFactorized ? "F"
                                                                    : "E") +
                "|" + canon.key;
    const Plan* cached = LookupPlan(cache_key);
    if (cached != nullptr) {
      // Cached plans live in canonical coordinates; translate node ids
      // and edge indexes into the caller's numbering.
      *storage =
          RemapPlan(*cached, canon.InverseNodeMap(), canon.InverseEdgeMap());
      plan = storage;
    }
  }
  if (plan == nullptr) {
    FGPM_ASSIGN_OR_RETURN(*storage, MakePlan(pattern, options.engine));
    if (options.use_plan_cache && plan_cache_capacity() > 0) {
      CachePlan(cache_key,
                RemapPlan(*storage, canon.node_map, canon.edge_map));
    }
    plan = storage;
  }
  *optimize_ms = opt_timer.ElapsedMillis();
  return plan;
}

void GraphMatcher::InvalidatePlanCache() {
  ClearPlanCache();
  ++cache_invalidations_;
  if (obs::Enabled()) MatcherMetrics::Get().cache_invalidations->Increment();
}

void GraphMatcher::ClearResultCache() {
  if (result_cache_ == nullptr) return;
  result_cache_->Clear();
  SyncResultCacheMetrics();
}

ResultCache* GraphMatcher::EnsureResultCache() {
  if (result_cache_ == nullptr) {
    result_cache_ = std::make_unique<ResultCache>(
        executor_.options().result_cache_mb << 20);
  }
  return result_cache_.get();
}

void GraphMatcher::CheckEpoch() {
  const uint64_t now = db_->epoch();
  if (now == seen_epoch_) return;
  // ApplyEdgeInsert changed reachability and statistics: cached plans
  // are stale estimates, cached rows are stale answers.
  seen_epoch_ = now;
  InvalidatePlanCache();
  ClearResultCache();
}

void GraphMatcher::SyncResultCacheMetrics() {
  if (!obs::Enabled() || result_cache_ == nullptr) return;
  const MatcherMetrics& m = MatcherMetrics::Get();
  auto delta = [](uint64_t now, uint64_t* prev) {
    const uint64_t d = now - *prev;
    *prev = now;
    return d;
  };
  m.result_cache_hits->Increment(
      delta(result_cache_->hits_exact(), &synced_.hits_exact));
  m.result_cache_containment_hits->Increment(
      delta(result_cache_->hits_containment(), &synced_.hits_containment));
  m.result_cache_misses->Increment(
      delta(result_cache_->misses(), &synced_.misses));
  m.result_cache_evictions->Increment(
      delta(result_cache_->evictions(), &synced_.evictions));
  m.result_cache_inserts->Increment(
      delta(result_cache_->inserts(), &synced_.inserts));
  m.result_cache_bytes->Set(static_cast<double>(result_cache_->bytes()));
}

Result<bool> GraphMatcher::TryResultCache(
    const CanonicalForm& canon, double fresh_cost,
    std::vector<std::vector<NodeId>>* rows, OperatorStats* op_stats,
    uint8_t* cache_hit) {
  ResultCache* cache = result_cache_.get();
  if (cache == nullptr) return false;
  if (const ResultCache::Entry* e = cache->LookupExact(canon.key)) {
    rows->reserve(e->num_rows);
    for (size_t r = 0; r < e->num_rows; ++r) {
      rows->emplace_back(e->rows.begin() + r * e->arity,
                         e->rows.begin() + (r + 1) * e->arity);
    }
    *cache_hit = 1;
    obs::RecordFlight(obs::FlightEvent::kCacheHit, e->num_rows);
    SyncResultCacheMetrics();
    return true;
  }
  const ResultCachePolicy policy = executor_.options().result_cache_policy;
  if (policy != ResultCachePolicy::kNever) {
    if (auto hit = cache->FindContaining(canon.pattern)) {
      std::vector<LabelId> node_labels;
      const bool resolvable =
          ResolveNodeLabels(*db_, canon.pattern, &node_labels);
      CostModel model(&db_->catalog());
      const double replay_cost = model.ReplayCost(
          static_cast<double>(hit->entry->num_rows),
          static_cast<int>(canon.pattern.num_nodes()),
          static_cast<int>(hit->mapping.residual.size()));
      // An unresolvable label means the fresh result is empty by
      // definition; replaying cached rows for it would be wrong only if
      // the entry had rows — impossible (same label set) — but skip the
      // probes anyway and let the fresh path answer.
      if (resolvable && (policy == ResultCachePolicy::kAlways ||
                         replay_cost < fresh_cost)) {
        FGPM_RETURN_IF_ERROR(ReplayContainment(
            *db_, canon.pattern, node_labels, *hit->entry, hit->mapping,
            executor_.pool(), &replay_memos_, rows, op_stats));
        *cache_hit = 2;
        cache->RecordContainmentHit();
        // Promote: the replayed rows ARE this pattern's full result, so
        // the next repeat of any of its spellings exact-hits.
        cache->Insert(canon.key, canon.pattern, *rows);
        SyncResultCacheMetrics();
        return true;
      }
    }
  }
  cache->RecordMiss();
  obs::RecordFlight(obs::FlightEvent::kCacheMiss);
  SyncResultCacheMetrics();
  return false;
}

void GraphMatcher::RecordQuery(const Pattern& pattern, Engine engine,
                               const ExecStats& stats) {
  if (obs::Enabled()) {
    const MatcherMetrics& m = MatcherMetrics::Get();
    m.queries->Increment();
    m.latency_usec->Observe(static_cast<uint64_t>(stats.elapsed_ms * 1e3));
  }
  // The slow-query log is a diagnostic feature gated only on the
  // slow_query_ms threshold — it works even with obs disabled or
  // compiled out; only the registry counter depends on obs.
  const double threshold = executor_.options().slow_query_ms;
  if (threshold >= 0 && stats.elapsed_ms >= threshold) {
    if (obs::Enabled()) {
      MatcherMetrics::Get().slow_queries->Increment();
    }
    obs::RecordFlight(obs::FlightEvent::kSlowQuery,
                      static_cast<uint64_t>(stats.elapsed_ms * 1e3));
    if (slow_queries_.size() >= kSlowLogCapacity) {
      slow_queries_.pop_front();
    }
    slow_queries_.push_back({pattern.ToString(), engine, stats.elapsed_ms,
                             stats.optimize_ms, stats.result_rows});
  }
}

Result<MatchResult> GraphMatcher::Match(const Pattern& pattern,
                                        MatchOptions options) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  const Pattern* effective = &pattern;
  Pattern reduced;
  if (options.transitive_reduction) {
    reduced = pattern.TransitiveReduction();
    effective = &reduced;
  }

  // Shared postlude: metrics + slow-query log, then projection.
  auto finish = [&](MatchResult result) {
    RecordQuery(*effective, options.engine, result.stats);
    return Project(std::move(result), *effective, options);
  };

  switch (options.engine) {
    case Engine::kDps:
    case Engine::kDp:
    case Engine::kCanonical: {
      CheckEpoch();
      WallTimer total;
      CanonicalForm canon = Canonicalize(*effective);
      const bool use_cache = executor_.options().use_result_cache;
      if (use_cache) EnsureResultCache();
      fgpm::Plan storage;
      double optimize_ms = 0;
      FGPM_ASSIGN_OR_RETURN(
          const fgpm::Plan* plan,
          ResolvePlan(*effective, canon, options, &storage, &optimize_ms));
      if (use_cache) {
        MatchResult result;
        std::vector<std::vector<NodeId>> canon_rows;
        uint8_t cache_hit = 0;
        FGPM_ASSIGN_OR_RETURN(
            bool served,
            TryResultCache(canon, plan->estimated_cost, &canon_rows,
                           &result.stats.operators, &cache_hit));
        if (served) {
          // Cached rows are in canonical node order; permute into this
          // spelling's numbering (node i lives in canonical column
          // node_map[i]).
          for (PatternNodeId i = 0; i < effective->num_nodes(); ++i) {
            result.column_labels.push_back(effective->label(i));
          }
          result.rows.reserve(canon_rows.size());
          for (const auto& crow : canon_rows) {
            std::vector<NodeId> row(crow.size());
            for (PatternNodeId i = 0; i < effective->num_nodes(); ++i) {
              row[i] = crow[canon.node_map[i]];
            }
            result.rows.push_back(std::move(row));
          }
          result.stats.cache_hit = cache_hit;
          result.stats.result_rows = result.rows.size();
          result.stats.optimize_ms = optimize_ms;
          result.stats.elapsed_ms = total.ElapsedMillis();
          return finish(std::move(result));
        }
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result,
                            executor_.Execute(*effective, *plan));
      // Like the paper, reported elapsed time covers optimization AND
      // processing.
      result.stats.optimize_ms = optimize_ms;
      result.stats.elapsed_ms += optimize_ms;
      if (use_cache) {
        std::vector<std::vector<NodeId>> canon_rows;
        canon_rows.reserve(result.rows.size());
        for (const auto& row : result.rows) {
          std::vector<NodeId> crow(row.size());
          for (PatternNodeId i = 0; i < effective->num_nodes(); ++i) {
            crow[canon.node_map[i]] = row[i];
          }
          canon_rows.push_back(std::move(crow));
        }
        result_cache_->Insert(canon.key, canon.pattern, canon_rows);
        SyncResultCacheMetrics();
      }
      return finish(std::move(result));
    }
    case Engine::kIntDp: {
      if (graph_ == nullptr) {
        return Status::FailedPrecondition(
            "INT-DP needs the original graph (matcher opened from a saved "
            "database only)");
      }
      if (!intdp_) {
        intdp_ = std::make_unique<IntDpEngine>(graph_, &db_->catalog());
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result, intdp_->Match(*effective));
      return finish(std::move(result));
    }
    case Engine::kTsd: {
      if (graph_ == nullptr) {
        return Status::FailedPrecondition(
            "TSD needs the original graph (matcher opened from a saved "
            "database only)");
      }
      if (!tsd_) {
        FGPM_ASSIGN_OR_RETURN(tsd_, TsdEngine::Create(graph_));
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result, tsd_->Match(*effective));
      return finish(std::move(result));
    }
    case Engine::kNaive: {
      if (graph_ == nullptr) {
        return Status::FailedPrecondition(
            "the naive engine needs the original graph");
      }
      FGPM_ASSIGN_OR_RETURN(MatchResult result,
                            NaiveMatch(*graph_, *effective));
      return finish(std::move(result));
    }
  }
  return Status::InvalidArgument("unknown engine");
}

Result<ExplainAnalyzeResult> GraphMatcher::ExplainAnalyze(
    const Pattern& pattern, MatchOptions options, int trace_level) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  if (options.engine != Engine::kDps && options.engine != Engine::kDp &&
      options.engine != Engine::kCanonical) {
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE needs a planned engine (DPS/DP/CANONICAL)");
  }
  const Pattern* effective = &pattern;
  Pattern reduced;
  if (options.transitive_reduction) {
    reduced = pattern.TransitiveReduction();
    effective = &reduced;
  }

  CheckEpoch();
  fgpm::Plan storage;
  double optimize_ms = 0;
  const CanonicalForm canon = Canonicalize(*effective);
  FGPM_ASSIGN_OR_RETURN(
      const fgpm::Plan* plan,
      ResolvePlan(*effective, canon, options, &storage, &optimize_ms));

  // Explain with the exact CostParams the optimizer planned under, so
  // est-vs-actual deltas expose model error, not a configuration skew.
  CostParams params;
  params.factorized =
      executor_.options().materialization == Materialization::kFactorized;
  ExplainAnalyzeResult out;
  FGPM_ASSIGN_OR_RETURN(
      out.explanation,
      ExplainPlan(*effective, *plan, db_->catalog(), params));

  FGPM_ASSIGN_OR_RETURN(
      out.result,
      executor_.Execute(*effective, *plan, std::max(1, trace_level)));
  out.result.stats.optimize_ms = optimize_ms;
  out.result.stats.elapsed_ms += optimize_ms;
  RecordQuery(*effective, options.engine, out.result.stats);

  out.report = out.explanation.ToStringWithActuals(out.result.stats);
  if (out.result.stats.trace) {
    out.chrome_trace_json = out.result.stats.trace->ToChromeJson();
  }
  FGPM_ASSIGN_OR_RETURN(out.result,
                        Project(std::move(out.result), *effective, options));
  return out;
}

Result<ExplainAnalyzeResult> GraphMatcher::ExplainAnalyze(
    std::string_view pattern_text, MatchOptions options, int trace_level) {
  FGPM_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(pattern_text));
  return ExplainAnalyze(p, options, trace_level);
}

Result<MatchResult> GraphMatcher::Project(MatchResult result,
                                          const Pattern& pattern,
                                          const MatchOptions& options) {
  if (options.projection.empty()) return result;
  std::vector<size_t> cols;
  for (const std::string& name : options.projection) {
    bool found = false;
    for (size_t c = 0; c < result.column_labels.size(); ++c) {
      if (result.column_labels[c] == name) {
        cols.push_back(c);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("projection label '" + name +
                                     "' is not a pattern label");
    }
  }
  (void)pattern;
  MatchResult projected;
  projected.stats = result.stats;
  for (size_t c : cols) projected.column_labels.push_back(result.column_labels[c]);
  std::unordered_set<std::vector<NodeId>, RowHash> seen;
  for (const auto& row : result.rows) {
    std::vector<NodeId> out(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) out[i] = row[cols[i]];
    if (seen.insert(out).second) projected.rows.push_back(std::move(out));
  }
  projected.stats.result_rows = projected.rows.size();
  return projected;
}

Result<MatchResult> GraphMatcher::Match(std::string_view pattern_text,
                                        MatchOptions options) {
  FGPM_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(pattern_text));
  return Match(p, options);
}

Result<std::vector<MatchResult>> GraphMatcher::MatchBatch(
    const std::vector<Pattern>& patterns, MatchOptions options,
    BatchStats* batch_stats) {
  if (options.engine != Engine::kDps && options.engine != Engine::kDp &&
      options.engine != Engine::kCanonical) {
    return Status::InvalidArgument(
        "MatchBatch needs a planned engine (DPS/DP/CANONICAL)");
  }
  CheckEpoch();
  const bool use_cache = executor_.options().use_result_cache;
  if (use_cache) EnsureResultCache();

  // Phase 1: canonicalize and dedup. Two spellings of the same pattern
  // (and outright repeats) collapse into one unique query; everything
  // downstream runs in CANONICAL coordinates, so plans, cached rows and
  // shared seeds are directly reusable, and the fan-out at the end is a
  // pure column permutation per caller spelling.
  struct Prepared {
    Pattern reduced;            // storage when transitive_reduction is on
    const Pattern* effective = nullptr;
    CanonicalForm canon;
    size_t unique = 0;
    bool representative = false;
  };
  std::vector<Prepared> prep(patterns.size());
  struct Unique {
    const Pattern* canonical = nullptr;  // points into prep
    const std::string* key = nullptr;
    std::vector<std::vector<NodeId>> rows;  // canonical node order
    ExecStats stats;
    std::vector<LabelId> node_labels;
    bool resolvable = false;
    fgpm::Plan plan;             // own copy: cache entries may be evicted
    size_t batch_slot = SIZE_MAX;  // index into the shared-seed batch
  };
  std::vector<Unique> uniques;
  std::unordered_map<std::string, size_t> unique_of;
  for (size_t i = 0; i < patterns.size(); ++i) {
    FGPM_RETURN_IF_ERROR(patterns[i].Validate());
    Prepared& p = prep[i];
    p.effective = &patterns[i];
    if (options.transitive_reduction) {
      p.reduced = patterns[i].TransitiveReduction();
      p.effective = &p.reduced;
    }
    p.canon = Canonicalize(*p.effective);
    auto [it, inserted] = unique_of.try_emplace(p.canon.key, uniques.size());
    p.unique = it->second;
    p.representative = inserted;
    if (inserted) uniques.emplace_back();
  }
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (!prep[i].representative) continue;
    Unique& u = uniques[prep[i].unique];
    u.canonical = &prep[i].canon.pattern;
    u.key = &prep[i].canon.key;
  }

  // Phase 2: per unique — resolve the (canonical) plan, probe the
  // result cache, and collect the rest into one shared-seed batch.
  std::vector<BatchQuery> batch;
  std::vector<size_t> batch_unique;  // batch slot -> unique index
  for (size_t ui = 0; ui < uniques.size(); ++ui) {
    Unique& u = uniques[ui];
    // The canonical pattern canonicalizes to itself, so this yields
    // identity maps — ResolvePlan caches and returns the plan verbatim.
    const CanonicalForm self = Canonicalize(*u.canonical);
    fgpm::Plan storage;
    double optimize_ms = 0;
    FGPM_ASSIGN_OR_RETURN(
        const fgpm::Plan* plan,
        ResolvePlan(*u.canonical, self, options, &storage, &optimize_ms));
    u.stats.optimize_ms = optimize_ms;
    if (use_cache) {
      WallTimer t;
      FGPM_ASSIGN_OR_RETURN(
          bool served,
          TryResultCache(self, plan->estimated_cost, &u.rows,
                         &u.stats.operators, &u.stats.cache_hit));
      if (served) {
        u.stats.result_rows = u.rows.size();
        u.stats.elapsed_ms = optimize_ms + t.ElapsedMillis();
        continue;
      }
    }
    u.plan = *plan;
    u.resolvable = ResolveNodeLabels(*db_, *u.canonical, &u.node_labels);
    u.batch_slot = batch.size();
    batch.push_back({u.canonical, &u.plan, u.node_labels, u.resolvable});
    batch_unique.push_back(ui);
  }

  // Phase 3: shared-seed execution of the residue.
  BatchExecStats bexec;
  if (!batch.empty()) {
    std::vector<MatchResult> executed;
    FGPM_RETURN_IF_ERROR(ExecuteBatch(*db_, batch, executor_.options(),
                                      executor_.pool(), &batch_scratch_,
                                      executor_.scratch(), &executed,
                                      &bexec));
    for (size_t s = 0; s < executed.size(); ++s) {
      Unique& u = uniques[batch_unique[s]];
      u.rows = std::move(executed[s].rows);
      const double optimize_ms = u.stats.optimize_ms;
      u.stats = executed[s].stats;
      u.stats.optimize_ms = optimize_ms;
      u.stats.elapsed_ms += optimize_ms;
      if (use_cache) {
        result_cache_->Insert(*u.key, *u.canonical, u.rows);
      }
    }
    if (use_cache) SyncResultCacheMetrics();
  }

  // Phase 4: fan the unique answers back out, one column permutation
  // per caller spelling; repeats beyond the representative read the
  // shared rows like an exact cache hit.
  std::vector<MatchResult> results(patterns.size());
  uint64_t cache_exact = 0, cache_replay = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const Prepared& p = prep[i];
    const Unique& u = uniques[p.unique];
    MatchResult& res = results[i];
    res.stats = u.stats;
    if (!p.representative) res.stats.cache_hit = 1;
    for (PatternNodeId n = 0; n < p.effective->num_nodes(); ++n) {
      res.column_labels.push_back(p.effective->label(n));
    }
    res.rows.reserve(u.rows.size());
    for (const auto& crow : u.rows) {
      std::vector<NodeId> row(crow.size());
      for (PatternNodeId n = 0; n < p.effective->num_nodes(); ++n) {
        row[n] = crow[p.canon.node_map[n]];
      }
      res.rows.push_back(std::move(row));
    }
    res.stats.result_rows = res.rows.size();
    if (res.stats.cache_hit == 1) ++cache_exact;
    if (res.stats.cache_hit == 2) ++cache_replay;
    RecordQuery(*p.effective, options.engine, res.stats);
    FGPM_ASSIGN_OR_RETURN(results[i],
                          Project(std::move(res), *p.effective, options));
  }

  if (batch_stats != nullptr) {
    batch_stats->queries = patterns.size();
    batch_stats->unique_queries = uniques.size();
    batch_stats->cache_exact = cache_exact;
    batch_stats->cache_replay = cache_replay;
    batch_stats->shared_seed_groups = bexec.shared_seed_groups;
    batch_stats->shared_seed_reuses = bexec.shared_seed_reuses;
  }
  if (obs::Enabled()) {
    const MatcherMetrics& m = MatcherMetrics::Get();
    m.batch_queries->Increment(patterns.size());
    m.batch_dedup_hits->Increment(patterns.size() - uniques.size());
    m.batch_shared_seed_groups->Increment(bexec.shared_seed_groups);
    m.batch_shared_seed_reuses->Increment(bexec.shared_seed_reuses);
  }
  return results;
}

Result<std::vector<MatchResult>> GraphMatcher::MatchBatch(
    const std::vector<std::string>& pattern_texts, MatchOptions options,
    BatchStats* batch_stats) {
  std::vector<Pattern> patterns;
  patterns.reserve(pattern_texts.size());
  for (const std::string& text : pattern_texts) {
    FGPM_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(text));
    patterns.push_back(std::move(p));
  }
  return MatchBatch(patterns, options, batch_stats);
}

}  // namespace fgpm
