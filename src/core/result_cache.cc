#include "core/result_cache.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sorted_vector.h"
#include "gdb/graph_codes.h"
#include "reach/reach_memo.h"

namespace fgpm {

namespace {

// Bookkeeping bytes per entry beyond the row block: the key lives twice
// (map + LRU list), plus map node / list node / Entry overhead. An
// estimate is fine — the budget bounds memory, it does not meter it.
size_t EntryBytes(const std::string& key, size_t num_ids) {
  return num_ids * sizeof(NodeId) + 2 * key.size() + 160;
}

}  // namespace

const ResultCache::Entry* ResultCache::LookupExact(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++hits_exact_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return &it->second;
}

std::optional<ResultCache::ContainmentHit> ResultCache::FindContaining(
    const Pattern& specific) {
  const Entry* best = nullptr;
  ContainmentMapping best_mapping;
  for (const auto& [key, entry] : entries_) {
    if (entry.pattern.num_nodes() != specific.num_nodes()) continue;
    auto m = Contains(entry.pattern, specific);
    if (!m) continue;
    const bool better =
        best == nullptr ||
        m->residual.size() < best_mapping.residual.size() ||
        (m->residual.size() == best_mapping.residual.size() &&
         entry.num_rows < best->num_rows);
    if (better) {
      best = &entry;
      best_mapping = std::move(*m);
    }
  }
  if (best == nullptr) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, best->lru_pos);
  return ContainmentHit{best, std::move(best_mapping)};
}

void ResultCache::Insert(const std::string& key, Pattern pattern,
                         const std::vector<std::vector<NodeId>>& rows) {
  const size_t arity = pattern.num_nodes();
  const size_t entry_bytes = EntryBytes(key, rows.size() * arity);
  if (entry_bytes > budget_) return;  // would evict everything for nothing

  auto it = entries_.find(key);
  if (it != entries_.end()) Evict(key);

  while (!entries_.empty() && bytes_ + entry_bytes > budget_) {
    Evict(lru_.back());
    ++evictions_;
  }

  Entry e;
  e.pattern = std::move(pattern);
  e.arity = arity;
  e.num_rows = rows.size();
  e.bytes = entry_bytes;
  e.rows.reserve(rows.size() * arity);
  for (const auto& row : rows) {
    FGPM_CHECK(row.size() == arity);
    e.rows.insert(e.rows.end(), row.begin(), row.end());
  }
  lru_.push_front(key);
  e.lru_pos = lru_.begin();
  bytes_ += entry_bytes;
  ++inserts_;
  entries_.emplace(key, std::move(e));
}

void ResultCache::Evict(const std::string& key) {
  auto it = entries_.find(key);
  FGPM_CHECK(it != entries_.end());
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void ResultCache::Clear() {
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

Status ReplayContainment(const GraphDatabase& db, const Pattern& specific,
                         const std::vector<LabelId>& node_labels,
                         const ResultCache::Entry& entry,
                         const ContainmentMapping& mapping, ThreadPool* pool,
                         std::vector<ReachMemo>* memos_pool,
                         std::vector<std::vector<NodeId>>* out_rows,
                         OperatorStats* stats) {
  const size_t arity = entry.arity;
  FGPM_CHECK(arity == specific.num_nodes());
  const size_t nrows = entry.num_rows;

  // Column permutation general -> specific: out[g2s[g]] = row[g].
  const std::vector<PatternNodeId>& g2s = mapping.general_to_specific;

  const size_t chunk =
      pool == nullptr ? std::max<size_t>(nrows, 1)
                      : std::max<size_t>(256, nrows / (4 * pool->size() + 1));
  const size_t nchunks = ThreadPool::NumChunks(nrows, chunk);
  struct ChunkOut {
    std::vector<NodeId> rows;  // survivors, specific node order
    uint64_t scanned = 0;
    uint64_t pruned = 0;
    uint64_t code_fetches = 0;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  const unsigned workers = pool != nullptr ? pool->size() : 1;
  // One reachability memo per worker: residual probes repeat node pairs
  // exactly like the select operator (the same endpoints recur across
  // cached rows), so the memo collapses duplicates into one hash probe.
  // The tables come from the caller's pool — sizing one allocates, so
  // only first use (or a worker-count bump) pays; repeats epoch-clear.
  std::vector<ReachMemo>& memos = *memos_pool;
  if (memos.size() < workers) memos.resize(workers);
  const size_t memo_entries = db.options().reach_cache_entries;
  for (auto& m : memos) {
    if (!m.enabled() && memo_entries > 0) {
      m.Reset(memo_entries);
    } else {
      m.Clear();
    }
  }

  auto body = [&](unsigned wk, size_t c, size_t begin, size_t end) {
    ChunkOut& part = parts[c];
    ReachMemo* memo =
        wk < memos.size() && memos[wk].enabled() ? &memos[wk] : nullptr;
    GraphCodeRecord rx, ry;
    std::vector<NodeId> out(arity);
    for (size_t r = begin; r < end; ++r) {
      ++part.scanned;
      const NodeId* row = entry.rows.data() + r * arity;
      for (PatternNodeId g = 0; g < arity; ++g) out[g2s[g]] = row[g];
      bool keep = true;
      for (const PatternEdge& e : mapping.residual) {
        const NodeId u = out[e.from], v = out[e.to];
        bool reachable;
        uint32_t slot = 0;
        bool hit = false;
        if (memo != nullptr) slot = memo->Acquire(PackPair(u, v), &hit);
        if (hit) {
          reachable = memo->value(slot) != 0;
        } else {
          Status s = db.GetCodes(u, node_labels[e.from], &rx);
          if (s.ok()) s = db.GetCodes(v, node_labels[e.to], &ry);
          if (!s.ok()) {
            errs[c] = std::move(s);
            return;
          }
          part.code_fetches += 2;
          reachable = SortedIntersects(rx.out, ry.in);
          if (memo != nullptr) memo->set_value(slot, reachable ? 1u : 0u);
        }
        if (!reachable) {
          keep = false;
          break;
        }
      }
      if (keep) {
        part.rows.insert(part.rows.end(), out.begin(), out.end());
      } else {
        ++part.pruned;
      }
    }
  };
  if (pool == nullptr || nchunks <= 1) {
    if (nrows > 0) body(0, 0, 0, nrows);
  } else {
    pool->ParallelFor(nrows, chunk, body);
  }
  for (const Status& s : errs) {
    if (!s.ok()) return s;
  }

  // Deterministic output: chunks merge in index order, so the replayed
  // row order never depends on the thread count.
  for (ChunkOut& part : parts) {
    stats->rows_scanned += part.scanned;
    stats->rows_pruned += part.pruned;
    stats->code_fetches += part.code_fetches;
    for (size_t i = 0; i + arity <= part.rows.size(); i += arity) {
      out_rows->emplace_back(part.rows.begin() + i,
                             part.rows.begin() + i + arity);
    }
  }
  return Status::OK();
}

}  // namespace fgpm
