// Wire protocol of the query server (src/net/server.h): length-prefixed
// little-endian frames over a byte stream, designed for pipelining —
// a client may have any number of requests in flight on one connection
// and responses carry the request id they answer (the server may
// reorder across shards).
//
//   frame    := [u32 payload_len][payload]          len <= kMaxFrameBytes
//   request  := [u64 id][u32 deadline_ms][u8 engine][u8 flags]
//               [u16 pattern_len][pattern bytes][extensions?]
//   extensions (only when flags has kFlagHasExtensions) :=
//               [u8 count][count x (u8 type, u16 len, len bytes)]
//               type 1 (trace context, len 17):
//                 [u64 trace_id][u64 parent_span][u8 sampled]
//               unknown types / wrong lengths are InvalidArgument —
//               framed back to the client, never asserted on.
//   response := [u64 id][u8 status_code]
//               ok:    [u8 flags][u16 ncols][ncols x (u16 len, bytes)]
//                      checksum_only: [u64 row_count][u64 checksum]
//                      else:          [u64 row_count][rows x ncols x u32]
//               error: [u16 msg_len][msg bytes]
//
// Every decode path returns Status — a malformed or oversized frame is
// a framed error response to the client, never a server assert (the
// frame-decoder fuzz test in tests/net_test.cc feeds arbitrary bytes
// through FrameDecoder + DecodeQueryRequest).
#ifndef FGPM_NET_WIRE_H_
#define FGPM_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace fgpm::net {

// Hard cap on one frame's payload; a length prefix above this is a
// protocol error (the stream cannot be resynchronized — close it).
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;
// Cap on the pattern text inside a request (well above any real
// pattern; bounds parser work per frame).
inline constexpr uint32_t kMaxPatternBytes = 1u << 14;

// QueryRequest::flags bits.
inline constexpr uint8_t kFlagChecksumOnly = 1u << 0;
inline constexpr uint8_t kFlagTransitiveReduction = 1u << 1;
// Request carries a TLV extension block after the pattern. Old decoders
// reject the flag (unknown bit => trailing bytes error) rather than
// silently mis-parse; old encoders never set it, so the base frame is
// byte-identical with extensions absent.
inline constexpr uint8_t kFlagHasExtensions = 1u << 2;

// Extension types.
inline constexpr uint8_t kExtTraceContext = 1;
inline constexpr uint16_t kExtTraceContextLen = 17;  // u64 + u64 + u8

struct QueryRequest {
  uint64_t id = 0;
  // Relative deadline from server receipt; 0 = none. Checked when the
  // request is dispatched from the admission queue.
  uint32_t deadline_ms = 0;
  uint8_t engine = 0;  // fgpm::Engine value; planned engines only
  uint8_t flags = 0;
  std::string pattern;

  // Distributed trace context (kExtTraceContext). When has_trace, the
  // server joins this trace instead of starting one: the request's root
  // span parents under `parent_span` of `trace_id`, and trace_sampled
  // forces head-sampling regardless of the server's trace_sample_n.
  bool has_trace = false;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  bool trace_sampled = false;

  bool checksum_only() const { return flags & kFlagChecksumOnly; }
};

struct QueryResponse {
  uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  std::string error;  // set when code != kOk
  uint8_t flags = 0;
  std::vector<std::string> columns;
  uint64_t row_count = 0;
  uint64_t checksum = 0;  // valid when flags has kFlagChecksumOnly
  std::vector<std::vector<NodeId>> rows;  // empty when checksum-only

  bool ok() const { return code == StatusCode::kOk; }
  bool checksum_only() const { return flags & kFlagChecksumOnly; }
};

// Append one framed message ([len][payload]) to *out.
void EncodeQueryRequest(const QueryRequest& req, std::string* out);
void EncodeQueryResponse(const QueryResponse& resp, std::string* out);

// Decode one frame payload (without the length prefix).
Status DecodeQueryRequest(std::span<const char> payload, QueryRequest* req);
Status DecodeQueryResponse(std::span<const char> payload,
                           QueryResponse* resp);

// Order-independent checksum of a result's rows: commutative fold of
// per-row hashes, so any row order (server shard interleaving) compares
// equal to a direct GraphMatcher::Match. 0 for an empty result.
uint64_t RowChecksum(const std::vector<std::vector<NodeId>>& rows);

// Incremental frame splitter. Feed arbitrary byte chunks; Next() pops
// complete payloads. A length prefix above kMaxFrameBytes poisons the
// decoder (the stream cannot resync) — every later Next() returns the
// same Corruption status.
class FrameDecoder {
 public:
  void Append(std::span<const char> bytes) {
    buf_.append(bytes.data(), bytes.size());
  }

  // Ok(true): *payload holds the next complete frame payload.
  // Ok(false): need more bytes.
  // Corruption: oversized length prefix (connection should close).
  Result<bool> Next(std::string* payload);

  size_t buffered() const { return buf_.size() - off_; }

 private:
  std::string buf_;
  size_t off_ = 0;  // consumed prefix; compacted lazily
  bool poisoned_ = false;
};

}  // namespace fgpm::net

#endif  // FGPM_NET_WIRE_H_
