// Minimal epoll reactor, one per server worker thread. Owns an epoll
// instance plus an eventfd wakeup pipe; Post() is the only cross-thread
// entry point (everything else, including fd registration, runs on the
// loop thread). Level-triggered epoll keeps the read/write handlers
// simple: a handler that does not drain the socket is called again on
// the next iteration.
#ifndef FGPM_NET_EVENT_LOOP_H_
#define FGPM_NET_EVENT_LOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"

namespace fgpm::net {

class EventLoop {
 public:
  // events is an EPOLLIN/EPOLLOUT mask; the callback receives the ready
  // mask (including EPOLLERR/EPOLLHUP, which epoll always reports).
  using IoCallback = std::function<void(uint32_t events)>;

  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Status Add(int fd, uint32_t events, IoCallback cb);
  Status Modify(int fd, uint32_t events);
  // Deregisters fd (does not close it). Safe to call from inside its
  // own callback: dispatch re-checks registration per event.
  void Remove(int fd);

  // Enqueue a task for the loop thread and wake it. Thread-safe; the
  // only method callable off the loop thread (besides Stop).
  void Post(std::function<void()> task);

  // Runs until Stop(). Tasks posted before Run still execute.
  void Run();
  // Thread-safe; wakes the loop and makes Run return after the current
  // iteration.
  void Stop();

 private:
  EventLoop(int epoll_fd, int wake_fd)
      : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

  void DrainTasks();

  int epoll_fd_;
  int wake_fd_;
  std::unordered_map<int, IoCallback> handlers_;
  std::mutex mu_;                           // guards tasks_ + stop_
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace fgpm::net

#endif  // FGPM_NET_EVENT_LOOP_H_
