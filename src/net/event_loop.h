// Minimal epoll reactor, one per server worker thread. Owns an epoll
// instance plus an eventfd wakeup pipe; Post() is the only cross-thread
// entry point (everything else, including fd registration, runs on the
// loop thread). Level-triggered epoll keeps the read/write handlers
// simple: a handler that does not drain the socket is called again on
// the next iteration.
#ifndef FGPM_NET_EVENT_LOOP_H_
#define FGPM_NET_EVENT_LOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"

namespace fgpm::net {

class EventLoop {
 public:
  // events is an EPOLLIN/EPOLLOUT mask; the callback receives the ready
  // mask (including EPOLLERR/EPOLLHUP, which epoll always reports).
  using IoCallback = std::function<void(uint32_t events)>;

  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Status Add(int fd, uint32_t events, IoCallback cb);
  Status Modify(int fd, uint32_t events);
  // Deregisters fd (does not close it). Safe to call from inside its
  // own callback: dispatch re-checks registration per event.
  void Remove(int fd);

  // Enqueue a task for the loop thread and wake it. Thread-safe; the
  // only method callable off the loop thread (besides Stop and Wake).
  void Post(std::function<void()> task);

  // Thread-safe: interrupts the current (or next) epoll_wait without
  // queueing anything. Used as a scheduler wake hook — a morsel
  // published while this loop blocks makes it resurface and help.
  void Wake();

  // Makes the loop scheduler-aware. After each iteration's I/O the loop
  // calls `help` (run at most one queued scheduler morsel; true if it
  // did); while morsels keep coming the loop polls with timeout 0 so
  // socket I/O interleaves with stolen work. When `help` reports
  // nothing to do, `arm(true)` is called before blocking in epoll_wait
  // and `arm(false)` right after — pair it with Scheduler::ArmWakeHook
  // on a hook that calls Wake(). Set before Run(); loop thread only.
  void SetIdleHelper(std::function<bool()> help,
                     std::function<void(bool)> arm);

  // Runs until Stop(). Tasks posted before Run still execute.
  void Run();
  // Thread-safe; wakes the loop and makes Run return after the current
  // iteration.
  void Stop();

 private:
  EventLoop(int epoll_fd, int wake_fd)
      : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

  void DrainTasks();

  int epoll_fd_;
  int wake_fd_;
  std::function<bool()> help_;       // run one scheduler morsel
  std::function<void(bool)> arm_;    // arm/disarm the wake hook
  std::unordered_map<int, IoCallback> handlers_;
  std::mutex mu_;                           // guards tasks_ + stop_
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace fgpm::net

#endif  // FGPM_NET_EVENT_LOOP_H_
