#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fgpm::net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() { close(fd_); }

Status Client::Send(const QueryRequest& req) {
  std::string frame;
  EncodeQueryRequest(req, &frame);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = write(fd_, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Client::Recv(QueryResponse* resp) {
  std::string payload;
  char buf[65536];
  while (true) {
    FGPM_ASSIGN_OR_RETURN(bool ready, decoder_.Next(&payload));
    if (ready) break;
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Append({buf, static_cast<size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::Internal("connection closed by server");
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  return DecodeQueryResponse(payload, resp);
}

Result<QueryResponse> Client::Query(const QueryRequest& req) {
  FGPM_RETURN_IF_ERROR(Send(req));
  QueryResponse resp;
  FGPM_RETURN_IF_ERROR(Recv(&resp));
  return resp;
}

void Client::ShutdownWrite() { shutdown(fd_, SHUT_WR); }

}  // namespace fgpm::net
