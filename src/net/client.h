// Blocking client for the query server. One connection, framed wire
// protocol (net/wire.h), built for pipelining: Send() and Recv() are
// independently thread-safe against each other (one sender thread, one
// receiver thread — the open-loop bench and the fairness tests drive
// exactly that split), while Query() is the simple one-in-one-out
// convenience used everywhere else.
#ifndef FGPM_NET_CLIENT_H_
#define FGPM_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/wire.h"

namespace fgpm::net {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Writes one framed request (blocking until fully written).
  Status Send(const QueryRequest& req);
  // Reads one framed response (blocking). Responses arrive in the
  // server's completion order; match by QueryResponse::id.
  Status Recv(QueryResponse* resp);
  // Send + Recv. Only valid when no other requests are in flight.
  Result<QueryResponse> Query(const QueryRequest& req);

  // Half-closes the write side (server sees EOF, answers what is in
  // flight, then closes). Recv still drains pending responses.
  void ShutdownWrite();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
  FrameDecoder decoder_;  // receiver-side only
};

}  // namespace fgpm::net

#endif  // FGPM_NET_CLIENT_H_
