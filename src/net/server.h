// Async query server: thread-per-core workers over a sharded
// GraphDatabase (src/shard). Worker w owns shard w's matcher plus one
// SO_REUSEPORT listener and one epoll loop; a connection is accepted by
// exactly one worker and all of its socket I/O stays there. Requests
// are admitted into bounded per-connection queues and released by a
// deficit-round-robin scheduler (a greedy pipelining client cannot
// starve others sharing its worker); released requests are deadline-
// checked, routed (ShardedMatcher::Route), and shipped to the owning
// worker's task queue — cross-shard queries scatter shard-local
// sub-patterns to their owners and gather + join on the origin worker.
//
// The same loops speak enough HTTP for observability: a connection
// whose first bytes are "GET " is served /metrics (Prometheus text of
// the default registry, including the fgpm_server_* family), /healthz,
// or /stats (registry JSON), then closed.
//
// Overload behavior: when a worker's admitted total hits max_queue the
// request is answered immediately with ResourceExhausted (framed error,
// connection stays usable). When one connection's queue hits
// max_conn_queue the server stops reading from it (EPOLLIN disarmed)
// until half drained — TCP backpressure, no unbounded buffering.
#ifndef FGPM_NET_SERVER_H_
#define FGPM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "shard/sharded_matcher.h"

namespace fgpm::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via Server::port()
  uint32_t num_shards = 1;  // == number of worker threads
  // Shard placement + per-shard database/exec options (num_shards in
  // here is overridden by the field above).
  ShardedMatcherOptions matcher;
  // Admission bound per worker (requests sitting in connection queues).
  size_t max_queue = 4096;
  // Per-connection queue bound; reaching it pauses reads (backpressure).
  size_t max_conn_queue = 1024;
  // DRR quantum: requests a connection may release per scheduler round.
  uint32_t drr_quantum = 1;
  // Dispatch window per worker: requests released (executing or queued
  // at their target shard) at once. Small values sharpen fairness;
  // larger values keep more shards busy from one origin worker.
  size_t dispatch_window = 4;
  // Applied when a request carries deadline_ms == 0. 0 = none.
  uint32_t default_deadline_ms = 0;
  // Record a QueryTrace per request (spans: queue, exec, per-shard
  // sub-spans, gather) into per-worker rings readable via
  // RecentTraces() / GET /debug/traces.
  bool trace_requests = false;
  // Head-based sampling: trace every Nth admitted request per worker
  // even when trace_requests is false. A request whose wire trace
  // context says sampled is always traced. 0 = no sampling.
  uint32_t trace_sample_n = 0;
  // Per-worker completed-trace ring capacity; the oldest trace is
  // dropped (counted in fgpm_trace_dropped_total) when full.
  size_t trace_ring = 64;
  // Sliding window (seconds) for fgpm_server_latency_us /
  // fgpm_server_queue_us windowed percentiles + exemplars. 0 disables.
  uint32_t metrics_window_s = 30;
  // Windowed-p99 SLO (ms). When > 0 and the windowed p99 crosses it,
  // fgpm_slo_breach_total increments and the flight recorder is dumped
  // to /debug/slo; per-query latencies above it record kSlowQuery
  // flight events. 0 disables.
  uint32_t slo_p99_ms = 0;
  // When > 0, starts the scheduler sampling profiler (SchedProfiler)
  // with this sampling period; folded stacks at /debug/profile.
  uint64_t profile_sample_us = 0;
  // Join every worker to the process-wide work-stealing scheduler: the
  // workers are reserved as external scheduler participants (so shard
  // executors spawn no extra threads), matcher.exec.num_threads
  // defaults to num_shards (a hot shard's query fans morsels out to
  // idle workers), and each worker's epoll loop helps execute queued
  // morsels between I/O events. false reproduces the pre-scheduler
  // thread-per-shard behavior exactly (the bench_sched A/B baseline).
  bool use_shared_scheduler = true;
};

class Server {
 public:
  // Builds the sharded matcher (one shard per worker), binds
  // num_shards SO_REUSEPORT listeners and starts the worker threads.
  // The graph must outlive the server.
  static Result<std::unique_ptr<Server>> Start(const Graph* g,
                                               ServerOptions options = {});
  ~Server();  // Stop()

  // Idempotent; joins all workers.
  void Stop();

  uint16_t port() const { return port_; }
  uint32_t num_workers() const { return static_cast<uint32_t>(workers_.size()); }
  ShardedMatcher* matcher() { return matcher_.get(); }

  // Most recent completed request traces across all workers, oldest
  // first (empty unless tracing/sampling is on). Each worker keeps a
  // bounded ring of options.trace_ring traces; completions beyond that
  // drop the oldest and count fgpm_trace_dropped_total.
  std::vector<QueryTrace> RecentTraces();

 private:
  struct Conn;
  struct Worker;
  struct InFlight;

  Server(std::unique_ptr<ShardedMatcher> matcher, ServerOptions options);

  void WorkerMain(Worker* w);
  void HandleListen(Worker* w);
  void HandleConnIo(Worker* w, uint64_t conn_id, uint32_t events);
  void ProcessDecoded(Worker* w, Conn* c);
  void HandleHttp(Worker* w, Conn* c);
  void Schedule(Worker* w);
  void Dispatch(Worker* w, Conn* c);
  // Runs on the owning shard's worker; sub_index -1 = the full pattern.
  void ExecuteSub(uint32_t shard, std::shared_ptr<InFlight> fl,
                  int sub_index);
  void FinishCross(Worker* w, std::shared_ptr<InFlight> fl);
  void Complete(Worker* w, std::shared_ptr<InFlight> fl, QueryResponse resp);
  void SendResponse(Worker* w, Conn* c, const QueryResponse& resp);
  void TryWrite(Worker* w, Conn* c);
  void CloseConn(Worker* w, uint64_t conn_id);
  Conn* FindConn(Worker* w, uint64_t conn_id);
  void PushTrace(Worker* w, std::unique_ptr<QueryTrace> trace);
  uint64_t NewTraceId(Worker* w);
  void CheckSlo(uint64_t latency_us);
  std::string DebugTracesBody(const std::string& query, const char** ctype);

  ServerOptions options_;
  std::unique_ptr<ShardedMatcher> matcher_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;
  bool sched_reserved_ = false;  // workers counted via ReserveExternal
  bool profiler_started_ = false;

  // Global completion order for merging per-worker trace rings.
  std::atomic<uint64_t> trace_seq_{0};

  // SLO watchdog (Complete on any worker): throttled windowed-p99
  // check + last breach's flight-recorder dump for /debug/slo.
  std::atomic<uint64_t> slo_last_check_ns_{0};
  std::mutex slo_mu_;
  std::string slo_dump_;  // guarded by slo_mu_
};

}  // namespace fgpm::net

#endif  // FGPM_NET_SERVER_H_
