#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace fgpm::net {

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int ep = epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return Status::Internal("epoll_create1 failed");
  int wake = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake < 0) {
    close(ep);
    return Status::Internal("eventfd failed");
  }
  auto loop = std::unique_ptr<EventLoop>(new EventLoop(ep, wake));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake;
  if (epoll_ctl(ep, EPOLL_CTL_ADD, wake, &ev) != 0) {
    return Status::Internal("epoll_ctl(wakeup) failed");
  }
  return loop;
}

EventLoop::~EventLoop() {
  close(wake_fd_);
  close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(ADD): ") +
                            std::strerror(errno));
  }
  handlers_[fd] = std::move(cb);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(MOD): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Wake() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::SetIdleHelper(std::function<bool()> help,
                              std::function<void(bool)> arm) {
  help_ = std::move(help);
  arm_ = std::move(arm);
}

void EventLoop::DrainTasks() {
  // Swap out the current batch; tasks posted by tasks run next
  // iteration (no starvation of I/O events).
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(tasks_);
  }
  for (auto& t : batch) t();
}

void EventLoop::Run() {
  std::array<epoll_event, 64> events;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    int timeout_ms = 100;
    bool armed = false;
    if (help_) {
      if (help_()) {
        timeout_ms = 0;  // did a morsel: poll I/O, then keep helping
      } else if (arm_) {
        // Nothing queued: arm the scheduler wake hook, then close the
        // arm/publish race with one more probe before blocking.
        arm_(true);
        armed = true;
        if (help_()) {
          arm_(false);
          armed = false;
          timeout_ms = 0;
        }
      }
    }
    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
    if (armed) arm_(false);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone — nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t junk;
        while (read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      // A prior handler this iteration may have removed fd.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Invoke a copy: the handler may Remove(fd) itself (closing its
      // own connection), which erases — and destroys — the mapped
      // std::function while it is still on the stack.
      IoCallback cb = it->second;
      cb(events[i].events);
    }
    DrainTasks();
  }
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

}  // namespace fgpm::net
