#include "net/wire.h"

#include <cstring>

#include "common/hash.h"

namespace fgpm::net {
namespace {

// Little-endian append/read helpers. A cursor-based reader keeps every
// bounds check in one place so truncated frames surface as Status, not
// out-of-bounds reads.
template <typename T>
void Put(std::string* out, T v) {
  char b[sizeof(T)];
  std::memcpy(b, &v, sizeof(T));
  out->append(b, sizeof(T));
}

struct Reader {
  std::span<const char> data;
  size_t pos = 0;

  template <typename T>
  Status Get(T* v) {
    if (data.size() - pos < sizeof(T)) {
      return Status::InvalidArgument("truncated frame");
    }
    std::memcpy(v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return Status::OK();
  }
  Status GetString(size_t n, std::string* s) {
    if (data.size() - pos < n) {
      return Status::InvalidArgument("truncated frame");
    }
    s->assign(data.data() + pos, n);
    pos += n;
    return Status::OK();
  }
  Status ExpectDone() const {
    return pos == data.size()
               ? Status::OK()
               : Status::InvalidArgument("trailing bytes in frame");
  }
};

void BeginFrame(std::string* out, size_t* len_at) {
  *len_at = out->size();
  Put<uint32_t>(out, 0);  // patched by EndFrame
}

void EndFrame(std::string* out, size_t len_at) {
  uint32_t len = static_cast<uint32_t>(out->size() - len_at - 4);
  std::memcpy(out->data() + len_at, &len, 4);
}

}  // namespace

void EncodeQueryRequest(const QueryRequest& req, std::string* out) {
  size_t len_at;
  BeginFrame(out, &len_at);
  Put<uint64_t>(out, req.id);
  Put<uint32_t>(out, req.deadline_ms);
  Put<uint8_t>(out, req.engine);
  uint8_t flags = req.flags;
  if (req.has_trace) {
    flags |= kFlagHasExtensions;
  } else {
    flags &= static_cast<uint8_t>(~kFlagHasExtensions);
  }
  Put<uint8_t>(out, flags);
  Put<uint16_t>(out, static_cast<uint16_t>(req.pattern.size()));
  out->append(req.pattern);
  if (req.has_trace) {
    Put<uint8_t>(out, 1);  // extension count
    Put<uint8_t>(out, kExtTraceContext);
    Put<uint16_t>(out, kExtTraceContextLen);
    Put<uint64_t>(out, req.trace_id);
    Put<uint64_t>(out, req.parent_span);
    Put<uint8_t>(out, req.trace_sampled ? 1 : 0);
  }
  EndFrame(out, len_at);
}

Status DecodeQueryRequest(std::span<const char> payload, QueryRequest* req) {
  Reader r{payload};
  FGPM_RETURN_IF_ERROR(r.Get(&req->id));
  FGPM_RETURN_IF_ERROR(r.Get(&req->deadline_ms));
  FGPM_RETURN_IF_ERROR(r.Get(&req->engine));
  FGPM_RETURN_IF_ERROR(r.Get(&req->flags));
  uint16_t plen = 0;
  FGPM_RETURN_IF_ERROR(r.Get(&plen));
  if (plen > kMaxPatternBytes) {
    return Status::InvalidArgument("pattern exceeds kMaxPatternBytes");
  }
  FGPM_RETURN_IF_ERROR(r.GetString(plen, &req->pattern));
  req->has_trace = false;
  req->trace_id = 0;
  req->parent_span = 0;
  req->trace_sampled = false;
  if (req->flags & kFlagHasExtensions) {
    uint8_t count = 0;
    FGPM_RETURN_IF_ERROR(r.Get(&count));
    for (uint8_t i = 0; i < count; ++i) {
      uint8_t type = 0;
      uint16_t len = 0;
      FGPM_RETURN_IF_ERROR(r.Get(&type));
      FGPM_RETURN_IF_ERROR(r.Get(&len));
      if (type == kExtTraceContext) {
        if (len != kExtTraceContextLen) {
          return Status::InvalidArgument("bad trace-context extension length");
        }
        uint8_t sampled = 0;
        FGPM_RETURN_IF_ERROR(r.Get(&req->trace_id));
        FGPM_RETURN_IF_ERROR(r.Get(&req->parent_span));
        FGPM_RETURN_IF_ERROR(r.Get(&sampled));
        req->has_trace = true;
        req->trace_sampled = sampled != 0;
      } else {
        // Unknown extension: a client newer than this server. The frame
        // is self-describing, but forward-skipping would silently drop
        // semantics we cannot honor — reject, framed, so the client
        // downgrades explicitly.
        return Status::InvalidArgument("unknown request extension type");
      }
    }
  }
  return r.ExpectDone();
}

void EncodeQueryResponse(const QueryResponse& resp, std::string* out) {
  size_t len_at;
  BeginFrame(out, &len_at);
  Put<uint64_t>(out, resp.id);
  Put<uint8_t>(out, static_cast<uint8_t>(resp.code));
  if (!resp.ok()) {
    Put<uint16_t>(out, static_cast<uint16_t>(resp.error.size()));
    out->append(resp.error);
  } else {
    Put<uint8_t>(out, resp.flags);
    Put<uint16_t>(out, static_cast<uint16_t>(resp.columns.size()));
    for (const std::string& c : resp.columns) {
      Put<uint16_t>(out, static_cast<uint16_t>(c.size()));
      out->append(c);
    }
    Put<uint64_t>(out, resp.row_count);
    if (resp.checksum_only()) {
      Put<uint64_t>(out, resp.checksum);
    } else {
      for (const auto& row : resp.rows) {
        for (NodeId v : row) Put<uint32_t>(out, v);
      }
    }
  }
  EndFrame(out, len_at);
}

Status DecodeQueryResponse(std::span<const char> payload,
                           QueryResponse* resp) {
  Reader r{payload};
  FGPM_RETURN_IF_ERROR(r.Get(&resp->id));
  uint8_t code = 0;
  FGPM_RETURN_IF_ERROR(r.Get(&code));
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("unknown status code in response");
  }
  resp->code = static_cast<StatusCode>(code);
  if (!resp->ok()) {
    uint16_t mlen = 0;
    FGPM_RETURN_IF_ERROR(r.Get(&mlen));
    FGPM_RETURN_IF_ERROR(r.GetString(mlen, &resp->error));
    return r.ExpectDone();
  }
  FGPM_RETURN_IF_ERROR(r.Get(&resp->flags));
  uint16_t ncols = 0;
  FGPM_RETURN_IF_ERROR(r.Get(&ncols));
  resp->columns.resize(ncols);
  for (auto& c : resp->columns) {
    uint16_t clen = 0;
    FGPM_RETURN_IF_ERROR(r.Get(&clen));
    FGPM_RETURN_IF_ERROR(r.GetString(clen, &c));
  }
  FGPM_RETURN_IF_ERROR(r.Get(&resp->row_count));
  resp->rows.clear();
  if (resp->checksum_only()) {
    FGPM_RETURN_IF_ERROR(r.Get(&resp->checksum));
    return r.ExpectDone();
  }
  // Row payload size is implied; verify it matches before allocating
  // (a hostile row_count must not drive the resize below).
  if (ncols == 0 && resp->row_count != 0) {
    return Status::InvalidArgument("rows without columns");
  }
  uint64_t remaining = payload.size() - r.pos;
  if (resp->row_count > kMaxFrameBytes / 4 ||
      remaining != resp->row_count * ncols * 4) {
    return Status::InvalidArgument("row payload size mismatch");
  }
  resp->rows.resize(resp->row_count);
  for (auto& row : resp->rows) {
    row.resize(ncols);
    for (auto& v : row) FGPM_RETURN_IF_ERROR(r.Get(&v));
  }
  return r.ExpectDone();
}

uint64_t RowChecksum(const std::vector<std::vector<NodeId>>& rows) {
  return RowSetChecksum(rows);
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  if (poisoned_) return Status::Corruption("frame stream poisoned");
  if (buffered() < 4) return false;
  uint32_t len = 0;
  std::memcpy(&len, buf_.data() + off_, 4);
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    return Status::Corruption("frame length exceeds kMaxFrameBytes");
  }
  if (buffered() < 4ull + len) return false;
  payload->assign(buf_.data() + off_ + 4, len);
  off_ += 4ull + len;
  // Compact once the consumed prefix dominates (amortized O(1)/byte).
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return true;
}

}  // namespace fgpm::net
