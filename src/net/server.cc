#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/scheduler.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/sched_metrics.h"
#include "storage/page.h"

namespace fgpm::net {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            since)
          .count());
}

uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

// SplitMix64: worker index + local sequence -> well-spread trace id.
uint64_t MixTraceId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

struct ServerMetrics {
  obs::Gauge* connections;
  obs::Counter* requests;
  obs::Counter* ok;
  obs::Counter* errors;
  obs::Counter* rejected;
  obs::Counter* deadline_exceeded;
  obs::Counter* cross;
  obs::Counter* http;
  obs::Counter* rx_bytes;
  obs::Counter* tx_bytes;
  obs::Counter* rows;
  obs::Counter* trace_dropped;
  obs::Counter* slo_breach;
  obs::Counter* shard_exec_us;
  obs::Histogram* latency_us;
  obs::Histogram* queue_us;
  static ServerMetrics& Get() {
    static ServerMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      ServerMetrics m;
      m.connections =
          r.GetGauge("fgpm_server_connections", "Open client connections");
      m.requests =
          r.GetCounter("fgpm_server_requests_total", "Requests admitted");
      m.ok = r.GetCounter("fgpm_server_ok_total", "Successful responses");
      m.errors = r.GetCounter("fgpm_server_errors_total", "Error responses");
      m.rejected = r.GetCounter("fgpm_server_rejected_total",
                                "Requests rejected by admission control");
      m.deadline_exceeded =
          r.GetCounter("fgpm_server_deadline_exceeded_total",
                       "Requests expired before dispatch");
      m.cross = r.GetCounter("fgpm_server_cross_total",
                             "Requests coordinated across shards");
      m.http = r.GetCounter("fgpm_server_http_total", "HTTP requests served");
      m.rx_bytes = r.GetCounter("fgpm_server_rx_bytes_total", "Bytes read");
      m.tx_bytes = r.GetCounter("fgpm_server_tx_bytes_total", "Bytes written");
      m.rows = r.GetCounter("fgpm_server_rows_total", "Result rows returned");
      m.trace_dropped = r.GetCounter(
          "fgpm_trace_dropped_total",
          "Completed traces evicted from a full per-worker trace ring");
      m.slo_breach = r.GetCounter(
          "fgpm_slo_breach_total",
          "Windowed-p99 latency crossings of ServerOptions::slo_p99_ms");
      m.shard_exec_us = r.GetCounter(
          "fgpm_server_shard_exec_us_total",
          "Microseconds spent in shard-local Match calls (sum over shards)");
      m.latency_us = r.GetHistogram("fgpm_server_latency_us",
                                    "Admission-to-response latency (us)");
      m.queue_us = r.GetHistogram("fgpm_server_queue_us",
                                  "Admission-to-dispatch queue wait (us)");
      return m;
    }();
    return m;
  }
};

Result<int> CreateListener(const std::string& host, uint16_t port,
                           uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    close(fd);
    return Status::Internal("SO_REUSEPORT unsupported");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad listen host: " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(fd, 512) != 0) {
    close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

QueryResponse ErrorResponse(uint64_t id, const Status& s) {
  QueryResponse resp;
  resp.id = id;
  resp.code = s.code();
  resp.error = s.message();
  return resp;
}

QueryResponse OkResponse(const QueryRequest& req, MatchResult result) {
  QueryResponse resp;
  resp.id = req.id;
  // Echo the request flags minus the extensions bit: responses carry no
  // extension block, and a pre-extension client must not see the bit.
  resp.flags = req.flags & static_cast<uint8_t>(~kFlagHasExtensions);
  resp.columns = std::move(result.column_labels);
  resp.row_count = result.rows.size();
  if (req.checksum_only()) {
    resp.checksum = RowChecksum(result.rows);
  } else {
    resp.rows = std::move(result.rows);
  }
  return resp;
}

}  // namespace

// --- internal state ---------------------------------------------------------

struct Server::Conn {
  uint64_t id = 0;
  int fd = -1;
  enum class Mode { kUnknown, kBinary, kHttp } mode = Mode::kUnknown;
  FrameDecoder decoder;
  std::string sniff;     // bytes held until the mode is known / HTTP buf
  std::string outbuf;
  size_t out_off = 0;
  bool want_write = false;
  bool reads_paused = false;
  bool closing = false;  // flush outbuf, then close

  struct Pending {
    QueryRequest req;
    Clock::time_point arrival;
    std::unique_ptr<QueryTrace> trace;
    uint32_t root_span = 0;
    uint32_t queue_span = 0;
  };
  std::deque<Pending> pending;  // admitted, not yet dispatched
  size_t inflight = 0;          // dispatched, response not yet sent
  uint32_t deficit = 0;         // DRR state
  bool in_active = false;
};

struct Server::Worker {
  uint32_t index = 0;
  std::unique_ptr<EventLoop> loop;
  int listen_fd = -1;
  std::thread thread;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  std::deque<uint64_t> active;  // DRR round-robin of conns with pending
  size_t queued_total = 0;      // sum of conns' pending sizes (admission)
  size_t inflight = 0;          // dispatched requests not yet completed
  bool scheduling = false;      // reentrancy guard for Schedule()
  uint64_t next_conn_id = 1;    // worker-local; ids are (worker << 48) | n
  uint64_t admitted = 0;        // head-sampling counter (worker-local)
  uint64_t trace_id_seq = 0;    // NewTraceId input (worker-local)

  // Bounded ring of completed traces. Pushed only by this worker
  // (Complete runs on the origin), read by RecentTraces/HTTP from any
  // worker — hence the mutex; it is never held across user code.
  std::mutex trace_mu;
  std::deque<std::pair<uint64_t, QueryTrace>> traces;  // (seq, trace)
};

struct Server::InFlight {
  uint64_t conn_id = 0;
  uint32_t origin = 0;
  QueryRequest req;
  Clock::time_point arrival;
  uint64_t dispatch_ns = 0;  // scatter time; base of sub queue spans
  std::unique_ptr<QueryTrace> trace;
  uint32_t root_span = 0;
  uint32_t exec_span = 0;
  Pattern pattern;
  // Cross-shard state (owned and mutated by the origin worker only).
  bool cross = false;
  ShardedMatcher::CrossPlan plan;
  std::vector<MatchResult> subs;
  size_t remaining = 0;
  Status fail;
};

// --- lifecycle --------------------------------------------------------------

Result<std::unique_ptr<Server>> Server::Start(const Graph* g,
                                              ServerOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardedMatcherOptions mo = options.matcher;
  mo.num_shards = options.num_shards;
  if (options.use_shared_scheduler) {
    // Reserve the server workers as external scheduler participants
    // *before* the matcher builds its executors, so their ThreadPools
    // spawn width - num_shards (usually zero) internal threads instead
    // of a private pool each — one process-wide set of threads.
    Scheduler::Global().ReserveExternal(options.num_shards);
    if (mo.exec.num_threads <= 1) {
      // Default per-query width to the worker count, capped at a
      // quarter of the shard's buffer-pool frames: each morsel pins
      // pages while it runs, and a width the pool cannot back turns
      // hot-shard fan-out into "all frames pinned" query failures.
      // An explicit exec.num_threads is taken as-is.
      size_t frames =
          std::max<size_t>(4, mo.db.buffer_pool_bytes / kPageSize);
      mo.exec.num_threads = static_cast<unsigned>(std::min<size_t>(
          options.num_shards, std::max<size_t>(1, frames / 4)));
    }
  }
  auto matcher_or = ShardedMatcher::Create(g, mo);
  if (!matcher_or.ok()) {
    if (options.use_shared_scheduler) {
      Scheduler::Global().ReleaseExternal(options.num_shards);
    }
    return matcher_or.status();
  }
  auto server =
      std::unique_ptr<Server>(new Server(std::move(*matcher_or), options));
  server->sched_reserved_ = options.use_shared_scheduler;

  uint16_t port = options.port;
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    FGPM_ASSIGN_OR_RETURN(w->loop, EventLoop::Create());
    // Worker 0 may bind an ephemeral port; the rest share it via
    // SO_REUSEPORT so the kernel spreads incoming connections.
    uint16_t bound = 0;
    FGPM_ASSIGN_OR_RETURN(w->listen_fd,
                          CreateListener(options.host, port, &bound));
    port = bound;
    server->workers_.push_back(std::move(w));
  }
  server->port_ = port;
  if (options.metrics_window_s > 0) {
    const uint64_t win_ns = 1'000'000'000ull * options.metrics_window_s;
    ServerMetrics::Get().latency_us->EnableWindow(win_ns);
    ServerMetrics::Get().queue_us->EnableWindow(win_ns);
  }
  if (options.profile_sample_us > 0) {
    obs::SchedProfiler::Options po;
    po.sample_interval_us = options.profile_sample_us;
    obs::SchedProfiler::Default().Start(po);
    server->profiler_started_ = true;
  }
  for (auto& w : server->workers_) {
    w->thread = std::thread([srv = server.get(), wp = w.get()] {
      srv->WorkerMain(wp);
    });
  }
  return server;
}

Server::Server(std::unique_ptr<ShardedMatcher> matcher, ServerOptions options)
    : options_(std::move(options)), matcher_(std::move(matcher)) {}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& w : workers_) w->loop->Stop();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (sched_reserved_) {
    Scheduler::Global().ReleaseExternal(options_.num_shards);
    sched_reserved_ = false;
  }
  if (profiler_started_) {
    obs::SchedProfiler::Default().Stop();
    profiler_started_ = false;
  }
}

void Server::WorkerMain(Worker* w) {
  int hook = -1;
  if (options_.use_shared_scheduler) {
    char tag[16];
    std::snprintf(tag, sizeof(tag), "srv%u", w->index);
    Scheduler::Global().AttachCurrentThread(tag);
    hook = Scheduler::Global().AddWakeHook(
        [loop = w->loop.get()] { loop->Wake(); });
    w->loop->SetIdleHelper(
        [] { return Scheduler::Global().TryHelp(); },
        [hook](bool armed) { Scheduler::Global().ArmWakeHook(hook, armed); });
  }
  Status st = w->loop->Add(w->listen_fd, EPOLLIN, [this, w](uint32_t) {
    HandleListen(w);
  });
  if (st.ok()) w->loop->Run();
  // Loop exited: this thread still owns every socket — close them here.
  for (auto& [id, c] : w->conns) close(c->fd);
  w->conns.clear();
  close(w->listen_fd);
  if (hook >= 0) {
    Scheduler::Global().RemoveWakeHook(hook);
    Scheduler::Global().DetachCurrentThread();
  }
}

std::vector<QueryTrace> Server::RecentTraces() {
  // Merge the per-worker rings on the global completion sequence so the
  // result is oldest-first regardless of which worker finished what.
  std::vector<std::pair<uint64_t, QueryTrace>> all;
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->trace_mu);
    for (const auto& [seq, t] : w->traces) all.emplace_back(seq, t);
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<QueryTrace> out;
  out.reserve(all.size());
  for (auto& [seq, t] : all) out.push_back(std::move(t));
  return out;
}

void Server::PushTrace(Worker* w, std::unique_ptr<QueryTrace> trace) {
  if (trace == nullptr) return;
  const uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  const size_t cap = std::max<size_t>(1, options_.trace_ring);
  std::lock_guard<std::mutex> lock(w->trace_mu);
  w->traces.emplace_back(seq, std::move(*trace));
  while (w->traces.size() > cap) {
    w->traces.pop_front();
    ServerMetrics::Get().trace_dropped->Increment();
    obs::RecordFlight(obs::FlightEvent::kTraceDropped, w->index);
  }
}

uint64_t Server::NewTraceId(Worker* w) {
  return MixTraceId((static_cast<uint64_t>(w->index) << 48) |
                    ++w->trace_id_seq);
}

// Throttled windowed-p99 watchdog, called from Complete after the
// latency observation. At most one windowed recompute per 250ms
// process-wide; on a breach, counts fgpm_slo_breach_total and freezes a
// flight-recorder dump for /debug/slo.
void Server::CheckSlo(uint64_t latency_us) {
  if (options_.slo_p99_ms == 0) return;
  const uint64_t slo_us = 1000ull * options_.slo_p99_ms;
  if (latency_us > slo_us) {
    obs::RecordFlight(obs::FlightEvent::kSlowQuery, latency_us);
  }
  obs::Histogram* h = ServerMetrics::Get().latency_us;
  if (!h->window_enabled()) return;
  const uint64_t now = NowSteadyNs();
  uint64_t last = slo_last_check_ns_.load(std::memory_order_relaxed);
  if (now - last < 250'000'000ull ||
      !slo_last_check_ns_.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;  // another completion holds this check interval
  }
  obs::Histogram::Snapshot win = h->WindowSnap();
  if (win.count == 0) return;
  const double p99 = win.Percentile(0.99);
  if (p99 <= static_cast<double>(slo_us)) return;
  ServerMetrics::Get().slo_breach->Increment();
  obs::RecordFlight(obs::FlightEvent::kSloBreach,
                    static_cast<uint64_t>(p99));
  std::string dump = obs::FlightRecorder::Default().DumpJson();
  std::lock_guard<std::mutex> lock(slo_mu_);
  slo_dump_ = std::move(dump);
}

// --- connection I/O ---------------------------------------------------------

Server::Conn* Server::FindConn(Worker* w, uint64_t conn_id) {
  auto it = w->conns.find(conn_id);
  return it == w->conns.end() ? nullptr : it->second.get();
}

void Server::HandleListen(Worker* w) {
  while (true) {
    int fd = accept4(w->listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error — epoll re-reports
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->id = (static_cast<uint64_t>(w->index) << 48) | w->next_conn_id++;
    conn->fd = fd;
    uint64_t id = conn->id;
    w->conns.emplace(id, std::move(conn));
    Status st = w->loop->Add(fd, EPOLLIN, [this, w, id](uint32_t events) {
      HandleConnIo(w, id, events);
    });
    if (!st.ok()) {
      close(fd);
      w->conns.erase(id);
      continue;
    }
    ServerMetrics::Get().connections->Add(1);
  }
}

void Server::HandleConnIo(Worker* w, uint64_t conn_id, uint32_t events) {
  Conn* c = FindConn(w, conn_id);
  if (c == nullptr) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(w, conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    TryWrite(w, c);
    if (FindConn(w, conn_id) == nullptr) return;  // TryWrite may close
  }
  if ((events & EPOLLIN) && !c->reads_paused && !c->closing) {
    char buf[65536];
    while (true) {
      ssize_t n = read(c->fd, buf, sizeof(buf));
      if (n > 0) {
        ServerMetrics::Get().rx_bytes->Increment(static_cast<uint64_t>(n));
        if (c->mode == Conn::Mode::kUnknown) {
          c->sniff.append(buf, static_cast<size_t>(n));
          if (c->sniff.size() < 4) continue;
          if (c->sniff.compare(0, 4, "GET ") == 0) {
            c->mode = Conn::Mode::kHttp;
          } else {
            c->mode = Conn::Mode::kBinary;
            c->decoder.Append(c->sniff);
            c->sniff.clear();
          }
        } else if (c->mode == Conn::Mode::kBinary) {
          c->decoder.Append({buf, static_cast<size_t>(n)});
        } else {
          c->sniff.append(buf, static_cast<size_t>(n));
        }
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error: flush what we owe, then close.
      c->closing = true;
      break;
    }
    if (c->mode == Conn::Mode::kHttp) {
      HandleHttp(w, c);
    } else {
      ProcessDecoded(w, c);
    }
    c = FindConn(w, conn_id);
    if (c == nullptr) return;
    if (c->closing && c->outbuf.size() == c->out_off && c->inflight == 0 &&
        c->pending.empty()) {
      CloseConn(w, conn_id);
      return;
    }
  }
  Schedule(w);
}

void Server::HandleHttp(Worker* w, Conn* c) {
  size_t end = c->sniff.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (c->sniff.size() > 16384) c->closing = true;  // header flood
    return;
  }
  ServerMetrics::Get().http->Increment();
  size_t path_begin = 4;  // past "GET "
  size_t path_end = c->sniff.find(' ', path_begin);
  std::string path = path_end == std::string::npos
                         ? ""
                         : c->sniff.substr(path_begin, path_end - path_begin);
  std::string query;
  if (size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }
  std::string body;
  const char* status = "200 OK";
  const char* ctype = "text/plain; charset=utf-8";
  if (path == "/metrics") {
    obs::PublishSchedulerMetrics();
    body = obs::MetricsRegistry::Default().ToPrometheusText();
    ctype = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/stats") {
    obs::PublishSchedulerMetrics();
    body = obs::MetricsRegistry::Default().ToJson();
    ctype = "application/json";
  } else if (path == "/debug/traces") {
    body = DebugTracesBody(query, &ctype);
    if (body.empty()) {
      status = "404 Not Found";
      body = "trace not found\n";
    }
  } else if (path == "/debug/profile") {
    body = obs::SchedProfiler::Default().FoldedStacks();
  } else if (path == "/debug/flightrecorder") {
    body = obs::FlightRecorder::Default().DumpJson();
    ctype = "application/json";
  } else if (path == "/debug/slo") {
    std::lock_guard<std::mutex> lock(slo_mu_);
    body = slo_dump_.empty() ? "[]\n" : slo_dump_;
    ctype = "application/json";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  c->outbuf += "HTTP/1.1 ";
  c->outbuf += status;
  c->outbuf += "\r\nContent-Type: ";
  c->outbuf += ctype;
  c->outbuf += "\r\nContent-Length: " + std::to_string(body.size());
  c->outbuf += "\r\nConnection: close\r\n\r\n";
  c->outbuf += body;
  c->closing = true;
  TryWrite(w, c);
}

// /debug/traces: no args -> JSON index of retained traces;
// "trace_id=<hex16>" -> that trace's Chrome JSON. Empty return = 404.
std::string Server::DebugTracesBody(const std::string& query,
                                    const char** ctype) {
  uint64_t want_id = 0;
  if (query.rfind("trace_id=", 0) == 0) {
    want_id = std::strtoull(query.c_str() + 9, nullptr, 16);
    if (want_id == 0) return "";
  }
  std::vector<QueryTrace> traces = RecentTraces();
  *ctype = "application/json";
  if (want_id != 0) {
    for (const QueryTrace& t : traces) {
      if (t.trace_id() == want_id) return t.ToChromeJson();
    }
    return "";
  }
  std::string body = "[";
  char buf[96];
  bool first = true;
  for (const QueryTrace& t : traces) {
    if (!first) body += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"trace_id\": \"%016" PRIx64 "\", \"spans\": %zu}",
                  t.trace_id(), t.spans().size());
    body += buf;
  }
  body += "\n]\n";
  return body;
}

void Server::SendResponse(Worker* w, Conn* c, const QueryResponse& resp) {
  if (resp.ok()) {
    ServerMetrics::Get().ok->Increment();
    ServerMetrics::Get().rows->Increment(resp.row_count);
  } else {
    ServerMetrics::Get().errors->Increment();
  }
  EncodeQueryResponse(resp, &c->outbuf);
  TryWrite(w, c);
}

void Server::TryWrite(Worker* w, Conn* c) {
  while (c->out_off < c->outbuf.size()) {
    ssize_t n = write(c->fd, c->outbuf.data() + c->out_off,
                      c->outbuf.size() - c->out_off);
    if (n > 0) {
      ServerMetrics::Get().tx_bytes->Increment(static_cast<uint64_t>(n));
      c->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c->want_write) {
        c->want_write = true;
        uint32_t mask = EPOLLOUT;
        if (!c->reads_paused && !c->closing) mask |= EPOLLIN;
        (void)w->loop->Modify(c->fd, mask);
      }
      return;
    }
    CloseConn(w, c->id);  // broken pipe etc.
    return;
  }
  c->outbuf.clear();
  c->out_off = 0;
  if (c->want_write) {
    c->want_write = false;
    uint32_t mask = 0;
    if (!c->reads_paused && !c->closing) mask |= EPOLLIN;
    (void)w->loop->Modify(c->fd, mask);
  }
  if (c->closing && c->inflight == 0 && c->pending.empty()) {
    CloseConn(w, c->id);
  }
}

void Server::CloseConn(Worker* w, uint64_t conn_id) {
  auto it = w->conns.find(conn_id);
  if (it == w->conns.end()) return;
  Conn* c = it->second.get();
  w->queued_total -= c->pending.size();
  w->loop->Remove(c->fd);
  close(c->fd);
  // A stale id may linger in w->active; Schedule skips missing conns.
  w->conns.erase(it);
  ServerMetrics::Get().connections->Add(-1);
}

// --- admission + scheduling -------------------------------------------------

void Server::ProcessDecoded(Worker* w, Conn* c) {
  const uint64_t cid = c->id;
  // SendResponse can close the connection (dead socket mid-write), so
  // every error reply re-resolves the pointer before continuing.
  auto reply = [&](const QueryResponse& resp) {
    SendResponse(w, c, resp);
    c = FindConn(w, cid);
    return c != nullptr;
  };
  std::string payload;
  while (c->pending.size() < options_.max_conn_queue) {
    Result<bool> has = c->decoder.Next(&payload);
    if (!has.ok()) {
      // Unsynchronizable stream (oversized frame): one last framed
      // error, then close — never an assert.
      if (reply(ErrorResponse(0, has.status()))) c->closing = true;
      return;
    }
    if (!*has) break;
    QueryRequest req;
    Status st = DecodeQueryRequest(payload, &req);
    if (!st.ok()) {
      // Malformed payload inside a well-framed message: the stream is
      // still in sync. Answer with the id when it was readable.
      uint64_t id = 0;
      if (payload.size() >= 8) std::memcpy(&id, payload.data(), 8);
      if (!reply(ErrorResponse(id, st))) return;
      continue;
    }
    if (req.engine > static_cast<uint8_t>(Engine::kCanonical)) {
      if (!reply(ErrorResponse(req.id,
                               Status::InvalidArgument(
                                   "engine must be kDps, kDp or "
                                   "kCanonical")))) {
        return;
      }
      continue;
    }
    if (w->queued_total >= options_.max_queue) {
      ServerMetrics::Get().rejected->Increment();
      obs::RecordFlight(obs::FlightEvent::kAdmissionShed, w->queued_total);
      if (!reply(ErrorResponse(req.id, Status::ResourceExhausted(
                                           "admission queue full")))) {
        return;
      }
      continue;
    }
    ServerMetrics::Get().requests->Increment();
    Conn::Pending p;
    p.req = std::move(req);
    p.arrival = Clock::now();
    // Head-based sampling: trace everything when trace_requests, honor
    // a client context marked sampled, else every trace_sample_n-th
    // admitted request on this worker.
    ++w->admitted;
    bool sample = options_.trace_requests ||
                  (p.req.has_trace && p.req.trace_sampled) ||
                  (options_.trace_sample_n > 0 &&
                   w->admitted % options_.trace_sample_n == 0);
    if (sample) {
      p.trace = std::make_unique<QueryTrace>();
      p.trace->set_trace_id(p.req.has_trace && p.req.trace_id != 0
                                ? p.req.trace_id
                                : NewTraceId(w));
      p.root_span = p.trace->BeginSpan(p.req.pattern, "server");
      p.trace->SetSpanTid(p.root_span, w->index);
      if (p.req.has_trace && p.req.parent_span != 0) {
        p.trace->AddArg(p.root_span, "client_parent_span", p.req.parent_span);
      }
      p.queue_span = p.trace->BeginSpan("queue", "server",
                                        static_cast<int32_t>(p.root_span));
      p.trace->SetSpanTid(p.queue_span, w->index);
    }
    c->pending.push_back(std::move(p));
    ++w->queued_total;
    if (!c->in_active) {
      c->in_active = true;
      w->active.push_back(c->id);
    }
  }
  if (c->pending.size() >= options_.max_conn_queue && !c->reads_paused) {
    c->reads_paused = true;
    obs::RecordFlight(obs::FlightEvent::kBackpressurePause, c->id);
    (void)w->loop->Modify(c->fd, c->want_write ? EPOLLOUT : 0u);
  }
}

void Server::Schedule(Worker* w) {
  // Dispatch can complete a request synchronously (a cross-shard plan
  // with no shard-local subs finishes on this stack), and Complete
  // calls Schedule — a nested run would double-pop the active ring.
  if (w->scheduling) return;
  w->scheduling = true;
  while (w->inflight < options_.dispatch_window && !w->active.empty()) {
    uint64_t cid = w->active.front();
    Conn* c = FindConn(w, cid);
    if (c == nullptr || c->pending.empty()) {
      w->active.pop_front();
      if (c != nullptr) {
        c->in_active = false;
        c->deficit = 0;
      }
      continue;
    }
    c->deficit += options_.drr_quantum;
    while (c->deficit > 0 && !c->pending.empty() &&
           w->inflight < options_.dispatch_window) {
      Dispatch(w, c);
      --c->deficit;
      // Dispatch can close the connection on a dead socket.
      c = FindConn(w, cid);
      if (c == nullptr) break;
    }
    w->active.pop_front();
    if (c == nullptr) continue;
    if (c->pending.empty()) {
      c->in_active = false;
      c->deficit = 0;
    } else {
      w->active.push_back(cid);  // round-robin: tail of the ring
    }
  }
  w->scheduling = false;
}

void Server::Dispatch(Worker* w, Conn* c) {
  Conn::Pending p = std::move(c->pending.front());
  c->pending.pop_front();
  --w->queued_total;
  ServerMetrics::Get().queue_us->ObserveWithExemplar(
      ElapsedUs(p.arrival), p.trace != nullptr ? p.trace->trace_id() : 0);
  if (p.trace != nullptr) p.trace->EndSpan(p.queue_span);

  auto finish_early = [&](const Status& st) {
    if (p.trace != nullptr) {
      p.trace->AddArg(p.root_span, "error", 1);
      p.trace->EndSpan(p.root_span);
      PushTrace(w, std::move(p.trace));
    }
    SendResponse(w, c, ErrorResponse(p.req.id, st));
  };

  uint32_t deadline_ms =
      p.req.deadline_ms != 0 ? p.req.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms != 0 && ElapsedUs(p.arrival) > 1000ull * deadline_ms) {
    ServerMetrics::Get().deadline_exceeded->Increment();
    obs::RecordFlight(obs::FlightEvent::kDeadlineDrop, p.req.id);
    finish_early(Status::DeadlineExceeded("deadline expired in queue"));
    return;
  }

  Result<Pattern> parsed = Pattern::Parse(p.req.pattern);
  if (!parsed.ok()) {
    finish_early(parsed.status());
    return;
  }
  auto fl = std::make_shared<InFlight>();
  fl->conn_id = c->id;
  fl->origin = w->index;
  fl->req = std::move(p.req);
  fl->arrival = p.arrival;
  fl->trace = std::move(p.trace);
  fl->root_span = p.root_span;
  fl->pattern = (fl->req.flags & kFlagTransitiveReduction)
                    ? parsed->TransitiveReduction()
                    : std::move(*parsed);
  fl->dispatch_ns = NowSteadyNs();
  if (fl->trace != nullptr) {
    fl->exec_span = fl->trace->BeginSpan("exec", "server",
                                         static_cast<int32_t>(fl->root_span));
    fl->trace->SetSpanTid(fl->exec_span, w->index);
  }

  std::optional<uint32_t> home = matcher_->Route(fl->pattern);
  if (home.has_value()) {
    ++w->inflight;
    ++c->inflight;
    if (fl->trace != nullptr) {
      fl->trace->AddArg(fl->exec_span, "shard", *home);
    }
    uint32_t s = *home;
    workers_[s]->loop->Post([this, s, fl] { ExecuteSub(s, fl, -1); });
    return;
  }

  // Cross-shard: scatter shard-local sub-patterns, gather + join here.
  ServerMetrics::Get().cross->Increment();
  Result<ShardedMatcher::CrossPlan> plan = matcher_->PlanCross(fl->pattern);
  if (!plan.ok()) {
    p.trace = std::move(fl->trace);
    finish_early(plan.status());
    return;
  }
  fl->cross = true;
  fl->plan = std::move(*plan);
  fl->subs.resize(fl->plan.subs.size());
  fl->remaining = fl->plan.subs.size();
  ++w->inflight;
  ++c->inflight;
  if (fl->trace != nullptr) {
    fl->trace->AddArg(fl->exec_span, "cross_subs", fl->remaining);
  }
  if (fl->remaining == 0) {
    // Every pattern edge crosses shards; JoinCross seeds from a cross
    // edge directly.
    FinishCross(w, fl);
    return;
  }
  for (size_t k = 0; k < fl->plan.subs.size(); ++k) {
    uint32_t s = fl->plan.subs[k].shard;
    int ki = static_cast<int>(k);
    workers_[s]->loop->Post([this, s, fl, ki] { ExecuteSub(s, fl, ki); });
  }
}

// Runs on the shard's worker thread — the only thread that may touch
// matcher_->shard(shard). When the request is traced, builds a child
// QueryTrace against the origin trace's epoch (same process, same
// steady clock) with the shard's queue + exec sub-spans; the origin
// worker stitches it under the request's exec span. fl->trace itself is
// never touched here — only its immutable epoch/trace_id are read.
void Server::ExecuteSub(uint32_t shard, std::shared_ptr<InFlight> fl,
                        int sub_index) {
  MatchOptions mo;
  mo.engine = static_cast<Engine>(fl->req.engine);
  const Pattern& p =
      sub_index < 0 ? fl->pattern : fl->plan.subs[sub_index].pattern;
  std::shared_ptr<QueryTrace> child;
  const uint64_t t0 = NowSteadyNs();
  if (fl->trace != nullptr) {
    const uint64_t epoch = fl->trace->epoch_steady_ns();
    child = std::make_shared<QueryTrace>(epoch);
    char name[32];
    std::snprintf(name, sizeof(name), "queue:shard%u", shard);
    uint32_t qs = child->AddCompleteSpan(
        name, "shard", -1,
        static_cast<double>(fl->dispatch_ns - epoch) * 1e-3,
        static_cast<double>(t0 - fl->dispatch_ns) * 1e-3, 0);
    child->SetSpanTid(qs, shard);
  }
  auto result = std::make_shared<Result<MatchResult>>(
      matcher_->shard(shard)->Match(p, mo));
  const uint64_t t1 = NowSteadyNs();
  ServerMetrics::Get().shard_exec_us->Increment((t1 - t0) / 1000);
  if (child != nullptr) {
    const uint64_t epoch = fl->trace->epoch_steady_ns();
    char name[32];
    std::snprintf(name, sizeof(name), "exec:shard%u", shard);
    uint32_t es = child->AddCompleteSpan(
        name, "shard", -1, static_cast<double>(t0 - epoch) * 1e-3,
        static_cast<double>(t1 - t0) * 1e-3, 0);
    child->SetSpanTid(es, shard);
  }
  Worker* origin = workers_[fl->origin].get();
  if (sub_index < 0) {
    origin->loop->Post([this, origin, fl, result, child] {
      if (child != nullptr) {
        fl->trace->Stitch(*child, static_cast<int32_t>(fl->exec_span));
      }
      QueryResponse resp = result->ok()
                               ? OkResponse(fl->req, std::move(**result))
                               : ErrorResponse(fl->req.id, result->status());
      Complete(origin, fl, std::move(resp));
    });
    return;
  }
  int ki = sub_index;
  origin->loop->Post([this, origin, fl, result, ki, child] {
    if (child != nullptr) {
      fl->trace->Stitch(*child, static_cast<int32_t>(fl->exec_span));
    }
    if (result->ok()) {
      fl->subs[ki] = std::move(**result);
    } else if (fl->fail.ok()) {
      fl->fail = result->status();
    }
    if (--fl->remaining == 0) FinishCross(origin, fl);
  });
}

void Server::FinishCross(Worker* w, std::shared_ptr<InFlight> fl) {
  QueryResponse resp;
  if (!fl->fail.ok()) {
    resp = ErrorResponse(fl->req.id, fl->fail);
  } else {
    uint32_t gather_span = 0;
    if (fl->trace != nullptr) {
      gather_span = fl->trace->BeginSpan(
          "gather", "server", static_cast<int32_t>(fl->exec_span));
      fl->trace->SetSpanTid(gather_span, w->index);
    }
    CrossShardStats stats;
    Result<MatchResult> joined = matcher_->JoinCross(
        fl->pattern, fl->plan, std::move(fl->subs), &stats);
    if (fl->trace != nullptr) fl->trace->EndSpan(gather_span);
    if (joined.ok()) {
      if (fl->trace != nullptr) {
        fl->trace->AddArg(fl->exec_span, "filters_shipped",
                          stats.filters_shipped);
        fl->trace->AddArg(fl->exec_span, "probe_pairs", stats.probe_pairs);
      }
      resp = OkResponse(fl->req, std::move(*joined));
    } else {
      resp = ErrorResponse(fl->req.id, joined.status());
    }
  }
  Complete(w, fl, std::move(resp));
}

// Runs on the origin worker.
void Server::Complete(Worker* w, std::shared_ptr<InFlight> fl,
                      QueryResponse resp) {
  --w->inflight;
  const uint64_t latency = ElapsedUs(fl->arrival);
  ServerMetrics::Get().latency_us->ObserveWithExemplar(
      latency, fl->trace != nullptr ? fl->trace->trace_id() : 0);
  if (fl->trace != nullptr) {
    fl->trace->EndSpan(fl->exec_span);
    fl->trace->AddArg(fl->root_span, "rows", resp.row_count);
    fl->trace->EndSpan(fl->root_span);
    PushTrace(w, std::move(fl->trace));
  }
  CheckSlo(latency);
  Conn* c = FindConn(w, fl->conn_id);
  if (c != nullptr) {
    --c->inflight;
    SendResponse(w, c, resp);
    c = FindConn(w, fl->conn_id);  // SendResponse may close on EPIPE
    if (c != nullptr && c->reads_paused &&
        c->pending.size() <= options_.max_conn_queue / 2 && !c->closing) {
      c->reads_paused = false;
      obs::RecordFlight(obs::FlightEvent::kBackpressureResume, c->id);
      (void)w->loop->Modify(c->fd, c->want_write ? (EPOLLIN | EPOLLOUT)
                                                 : EPOLLIN);
      ProcessDecoded(w, c);  // frames buffered while paused
    }
  }
  Schedule(w);
}

}  // namespace fgpm::net
