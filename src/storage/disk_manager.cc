#include "storage/disk_manager.h"

#include <chrono>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>

#include "common/serialize.h"

namespace fgpm {
namespace {

// FNV-1a over a page's bytes.
uint64_t PageChecksum(const Page& p) {
  uint64_t h = 0xcbf29ce484222325ull;
  const char* data = p.data();
  for (size_t i = 0; i < kPageSize; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Status DiskManager::SavePages(std::ostream& os) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  BinaryWriter w(&os);
  w.U64(pages_.size());
  for (const auto& p : pages_) {
    w.U64(PageChecksum(*p));
    os.write(p->data(), kPageSize);
  }
  if (!os) return Status::Internal("page write failed");
  return Status::OK();
}

Status DiskManager::LoadPages(std::istream& is) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  BinaryReader r(&is);
  uint64_t n = 0;
  FGPM_RETURN_IF_ERROR(r.U64(&n));
  if (n > (1ull << 32)) return Status::Corruption("absurd page count");
  pages_.clear();
  pages_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t expected = 0;
    FGPM_RETURN_IF_ERROR(r.U64(&expected));
    auto page = std::make_unique<Page>();
    is.read(page->data(), kPageSize);
    if (static_cast<size_t>(is.gcount()) != kPageSize) {
      return Status::Corruption("page data truncated");
    }
    if (PageChecksum(*page) != expected) {
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption("page " + std::to_string(i) +
                                " checksum mismatch");
    }
    pages_.push_back(std::move(page));
  }
  return Status::OK();
}

Status DiskManager::CorruptPageForTesting(PageId id, size_t offset) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size() || offset >= kPageSize) {
    return Status::OutOfRange("corruption target out of range");
  }
  pages_[id]->data()[offset] ^= 0x5a;
  return Status::OK();
}

PageId DiskManager::AllocatePage() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  pages_allocated_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskManager::ReadPage(PageId id, Page* out) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (id >= pages_.size()) {
      return Status::OutOfRange("ReadPage: page id out of range");
    }
    *out = *pages_[id];
    page_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  uint32_t latency = simulated_read_latency_us_.load(std::memory_order_relaxed);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("WritePage: page id out of range");
  }
  *pages_[id] = page;
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace fgpm
