#include "storage/disk_manager.h"

#include <istream>
#include <ostream>

#include "common/serialize.h"

namespace fgpm {
namespace {

// FNV-1a over a page's bytes.
uint64_t PageChecksum(const Page& p) {
  uint64_t h = 0xcbf29ce484222325ull;
  const char* data = p.data();
  for (size_t i = 0; i < kPageSize; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Status DiskManager::SavePages(std::ostream& os) const {
  BinaryWriter w(&os);
  w.U64(pages_.size());
  for (const auto& p : pages_) {
    w.U64(PageChecksum(*p));
    os.write(p->data(), kPageSize);
  }
  if (!os) return Status::Internal("page write failed");
  return Status::OK();
}

Status DiskManager::LoadPages(std::istream& is) {
  BinaryReader r(&is);
  uint64_t n = 0;
  FGPM_RETURN_IF_ERROR(r.U64(&n));
  if (n > (1ull << 32)) return Status::Corruption("absurd page count");
  pages_.clear();
  pages_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t expected = 0;
    FGPM_RETURN_IF_ERROR(r.U64(&expected));
    auto page = std::make_unique<Page>();
    is.read(page->data(), kPageSize);
    if (static_cast<size_t>(is.gcount()) != kPageSize) {
      return Status::Corruption("page data truncated");
    }
    if (PageChecksum(*page) != expected) {
      ++stats_.checksum_failures;
      return Status::Corruption("page " + std::to_string(i) +
                                " checksum mismatch");
    }
    pages_.push_back(std::move(page));
  }
  return Status::OK();
}

Status DiskManager::CorruptPageForTesting(PageId id, size_t offset) {
  if (id >= pages_.size() || offset >= kPageSize) {
    return Status::OutOfRange("corruption target out of range");
  }
  pages_[id]->data()[offset] ^= 0x5a;
  return Status::OK();
}

PageId DiskManager::AllocatePage() {
  pages_.push_back(std::make_unique<Page>());
  ++stats_.pages_allocated;
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskManager::ReadPage(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page id out of range");
  }
  *out = *pages_[id];
  ++stats_.page_reads;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("WritePage: page id out of range");
  }
  *pages_[id] = page;
  ++stats_.page_writes;
  return Status::OK();
}

}  // namespace fgpm
