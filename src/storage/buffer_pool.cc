#include "storage/buffer_pool.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace fgpm {
namespace {

constexpr size_t kNoVictim = static_cast<size_t>(-1);

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

size_t ResolveShards(size_t requested, size_t num_frames) {
  size_t s = requested;
  if (s == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    s = NextPow2(std::max(1u, hw));
    s = std::min<size_t>(s, 64);
  }
  s = NextPow2(s);
  while (s > 1 && num_frames / s < 4) s >>= 1;
  return s;
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
  }
  return *this;
}

const Page& PageGuard::page() const {
  FGPM_DCHECK(pool_ != nullptr);
  return pool_->frames_[frame_].page;
}

Page& PageGuard::MutablePage() {
  FGPM_DCHECK(pool_ != nullptr);
  pool_->MarkDirty(frame_);
  return pool_->frames_[frame_].page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, const BufferPoolOptions& options)
    : disk_(disk) {
  auto& reg = obs::MetricsRegistry::Default();
  m_hits_ = reg.GetCounter("fgpm_bufferpool_hits_total",
                           "Buffer pool fetches served from a resident frame");
  m_misses_ = reg.GetCounter("fgpm_bufferpool_misses_total",
                             "Buffer pool fetches that read from disk");
  m_evictions_ = reg.GetCounter("fgpm_bufferpool_evictions_total",
                                "Frames evicted to make room");
  latch_across_io_ = options.latch_across_io;
  num_frames_ = std::max<size_t>(4, options.pool_bytes / kPageSize);
  frames_ = std::make_unique<Frame[]>(num_frames_);
  size_t nshards = ResolveShards(options.num_shards, num_frames_);
  shard_mask_ = nshards - 1;
  shards_.reserve(nshards);
  size_t base = num_frames_ / nshards, rem = num_frames_ % nshards;
  size_t next = 0;
  for (size_t s = 0; s < nshards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->begin = next;
    next += base + (s < rem ? 1 : 0);
    sh->end = next;
    sh->free_frames.reserve(sh->end - sh->begin);
    for (size_t f = sh->end; f > sh->begin; --f) {
      sh->free_frames.push_back(f - 1);
      frames_[f - 1].shard = static_cast<uint32_t>(s);
    }
    shards_.push_back(std::move(sh));
  }
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  (void)s;  // Destructor cannot propagate; simulated disk cannot fail here.
}

Result<size_t> BufferPool::GrabFrame(Shard& sh) {
  if (!sh.free_frames.empty()) {
    size_t f = sh.free_frames.back();
    sh.free_frames.pop_back();
    return f;
  }
  // Free list empty: every frame in the shard is resident. Pick the
  // unpinned frame with the oldest unpin stamp. New pins need sh.mu
  // (held here), so a frame observed unpinned stays evictable; a frame
  // racing to *become* unpinned is simply not considered this round.
  size_t victim = kNoVictim;
  uint64_t oldest = ~0ull;
  for (size_t f = sh.begin; f < sh.end; ++f) {
    Frame& fr = frames_[f];
    // Acquire pairs with Unpin's release decrement: seeing 0 here means
    // the last reader's page accesses happened-before this eviction.
    if (fr.pin_count.load(std::memory_order_acquire) != 0) continue;
    uint64_t lu = fr.last_used.load(std::memory_order_relaxed);
    if (lu < oldest) {
      oldest = lu;
      victim = f;
    }
  }
  if (victim == kNoVictim) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  Frame& fr = frames_[victim];
  sh.evictions.fetch_add(1, std::memory_order_relaxed);
  m_evictions_->Increment();
  if (fr.dirty.load(std::memory_order_relaxed)) {
    FGPM_RETURN_IF_ERROR(disk_->WritePage(fr.id, fr.page));
    fr.dirty.store(false, std::memory_order_relaxed);
  }
  sh.page_table.erase(fr.id);
  return victim;
}

void BufferPool::InstallFrame(Shard& sh, size_t f, PageId id, bool dirty) {
  Frame& fr = frames_[f];
  fr.id = id;
  fr.pin_count.store(1, std::memory_order_relaxed);
  fr.dirty.store(dirty, std::memory_order_relaxed);
  sh.page_table[id] = f;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  Shard& sh = *shards_[ShardOf(id)];
  std::unique_lock<std::mutex> lock(sh.mu);
  auto it = sh.page_table.find(id);
  if (it != sh.page_table.end()) {
    sh.hits.fetch_add(1, std::memory_order_relaxed);
    m_hits_->Increment();
    size_t f = it->second;
    Frame& fr = frames_[f];
    fr.pin_count.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    // Another worker may still be reading this page from disk. The
    // acquire load pairs with the loader's release store below and
    // orders the page bytes before our reader sees the guard. The pin
    // taken above keeps the frame from being evicted meanwhile.
    while (fr.io_busy.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return PageGuard(this, f, id);
  }
  sh.misses.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Increment();
  if (id >= disk_->NumPages()) {
    return Status::OutOfRange("Fetch: page id out of range");
  }
  FGPM_ASSIGN_OR_RETURN(size_t f, GrabFrame(sh));
  Frame& fr = frames_[f];
  InstallFrame(sh, f, id, /*dirty=*/false);
  if (latch_across_io_) {
    // Pre-sharding behavior (A/B baseline): the read happens with the
    // shard latch held, blocking every other fetch on the shard.
    Status s = disk_->ReadPage(id, &fr.page);
    FGPM_CHECK(s.ok());  // id validated above; pages are never deleted
    return PageGuard(this, f, id);
  }
  // Publish the frame as loading, then read outside the latch so misses
  // overlap with each other and with hits. The frame is pinned, so it
  // cannot be evicted; same-page fetchers wait on io_busy above.
  fr.io_busy.store(true, std::memory_order_relaxed);
  lock.unlock();
  Status s = disk_->ReadPage(id, &fr.page);
  FGPM_CHECK(s.ok());
  fr.io_busy.store(false, std::memory_order_release);
  return PageGuard(this, f, id);
}

Result<PageGuard> BufferPool::New() {
  PageId id = disk_->AllocatePage();
  Shard& sh = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(sh.mu);
  FGPM_ASSIGN_OR_RETURN(size_t f, GrabFrame(sh));
  frames_[f].page.Zero();
  InstallFrame(sh, f, id, /*dirty=*/true);
  return PageGuard(this, f, id);
}

void BufferPool::Unpin(size_t frame) {
  Frame& fr = frames_[frame];
  Shard& sh = *shards_[fr.shard];
  // Stamp before the release decrement: once pin_count reads 0 under
  // the shard latch, the evictor must already see this recency.
  uint64_t stamp = sh.clock.fetch_add(1, std::memory_order_relaxed) + 1;
  fr.last_used.store(stamp, std::memory_order_relaxed);
  uint32_t prev = fr.pin_count.fetch_sub(1, std::memory_order_release);
  FGPM_DCHECK(prev > 0);
  (void)prev;
}

Status BufferPool::FlushAll() {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lock(sh.mu);
    for (size_t f = sh.begin; f < sh.end; ++f) {
      Frame& fr = frames_[f];
      if (fr.id != kInvalidPage &&
          fr.dirty.load(std::memory_order_relaxed) &&
          sh.page_table.count(fr.id) != 0) {
        FGPM_RETURN_IF_ERROR(disk_->WritePage(fr.id, fr.page));
        fr.dirty.store(false, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (const auto& sh : shards_) {
    out.hits += sh->hits.load(std::memory_order_relaxed);
    out.misses += sh->misses.load(std::memory_order_relaxed);
    out.evictions += sh->evictions.load(std::memory_order_relaxed);
  }
  return out;
}

void BufferPool::ResetStats() {
  for (auto& sh : shards_) {
    sh->hits.store(0, std::memory_order_relaxed);
    sh->misses.store(0, std::memory_order_relaxed);
    sh->evictions.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fgpm
