#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace fgpm {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
  }
  return *this;
}

const Page& PageGuard::page() const {
  FGPM_DCHECK(pool_ != nullptr);
  return pool_->frames_[frame_].page;
}

Page& PageGuard::MutablePage() {
  FGPM_DCHECK(pool_ != nullptr);
  pool_->MarkDirty(frame_);
  return pool_->frames_[frame_].page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_bytes) : disk_(disk) {
  size_t n = std::max<size_t>(4, pool_bytes / kPageSize);
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = n; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  (void)s;  // Destructor cannot propagate; simulated disk cannot fail here.
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  size_t victim = lru_.front();
  lru_.pop_front();
  Frame& fr = frames_[victim];
  fr.in_lru = false;
  ++stats_.evictions;
  if (fr.dirty) {
    FGPM_RETURN_IF_ERROR(disk_->WritePage(fr.id, fr.page));
    fr.dirty = false;
  }
  page_table_.erase(fr.id);
  return victim;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    size_t f = it->second;
    Frame& fr = frames_[f];
    if (fr.pin_count == 0 && fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    ++fr.pin_count;
    return PageGuard(this, f, id);
  }
  ++stats_.misses;
  FGPM_ASSIGN_OR_RETURN(size_t f, GrabFrame());
  Frame& fr = frames_[f];
  FGPM_RETURN_IF_ERROR(disk_->ReadPage(id, &fr.page));
  fr.id = id;
  fr.pin_count = 1;
  fr.dirty = false;
  page_table_[id] = f;
  return PageGuard(this, f, id);
}

Result<PageGuard> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId id = disk_->AllocatePage();
  FGPM_ASSIGN_OR_RETURN(size_t f, GrabFrame());
  Frame& fr = frames_[f];
  fr.page.Zero();
  fr.id = id;
  fr.pin_count = 1;
  fr.dirty = true;
  page_table_[id] = f;
  return PageGuard(this, f, id);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& fr = frames_[frame];
  FGPM_DCHECK(fr.pin_count > 0);
  if (--fr.pin_count == 0) {
    lru_.push_back(frame);
    fr.lru_pos = std::prev(lru_.end());
    fr.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& fr : frames_) {
    if (fr.id != kInvalidPage && fr.dirty) {
      FGPM_RETURN_IF_ERROR(disk_->WritePage(fr.id, fr.page));
      fr.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace fgpm
