#include "storage/bptree.h"

#include <cstring>
#include <vector>

#include "common/logging.h"

namespace fgpm {
namespace {

// Node layout (both kinds):
//   0  u8   is_leaf
//   2  u16  num_keys
//   4  u32  leaf: next-leaf page id; internal: unused
// Leaf:      keys u64[kLeafCapacity] at 8, values u64[] at kValuesOff.
// Internal:  keys u64[kInternalCapacity] at 8, children u32[] at kChildOff.
constexpr size_t kIsLeafOff = 0;
constexpr size_t kNumKeysOff = 2;
constexpr size_t kNextOff = 4;
constexpr size_t kKeysOff = 8;
constexpr size_t kValuesOff = kKeysOff + BPTree::kLeafCapacity * 8;
constexpr size_t kChildOff = kKeysOff + BPTree::kInternalCapacity * 8;

bool IsLeaf(const Page& p) { return p.Read<uint8_t>(kIsLeafOff) != 0; }
uint16_t NumKeys(const Page& p) { return p.Read<uint16_t>(kNumKeysOff); }
void SetNumKeys(Page& p, uint16_t n) { p.Write<uint16_t>(kNumKeysOff, n); }
uint64_t KeyAt(const Page& p, size_t i) {
  return p.Read<uint64_t>(kKeysOff + i * 8);
}
void SetKeyAt(Page& p, size_t i, uint64_t k) {
  p.Write<uint64_t>(kKeysOff + i * 8, k);
}
uint64_t ValueAt(const Page& p, size_t i) {
  return p.Read<uint64_t>(kValuesOff + i * 8);
}
void SetValueAt(Page& p, size_t i, uint64_t v) {
  p.Write<uint64_t>(kValuesOff + i * 8, v);
}
PageId ChildAt(const Page& p, size_t i) {
  return p.Read<PageId>(kChildOff + i * 4);
}
void SetChildAt(Page& p, size_t i, PageId c) {
  p.Write<PageId>(kChildOff + i * 4, c);
}

// First index with keys[i] >= key.
size_t LowerBound(const Page& p, uint64_t key) {
  size_t lo = 0, hi = NumKeys(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (KeyAt(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child to descend into: number of keys <= key.
size_t ChildIndex(const Page& p, uint64_t key) {
  size_t lo = 0, hi = NumKeys(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (KeyAt(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void ShiftRight(Page& p, size_t from, size_t n, bool leaf) {
  for (size_t i = n; i > from; --i) {
    SetKeyAt(p, i, KeyAt(p, i - 1));
    if (leaf) {
      SetValueAt(p, i, ValueAt(p, i - 1));
    }
  }
}

}  // namespace

BPTree::BPTree(BufferPool* pool) : pool_(pool) {
  Result<PageGuard> g = pool_->New();
  FGPM_CHECK(g.ok());
  Page& p = g->MutablePage();
  p.Write<uint8_t>(kIsLeafOff, 1);
  SetNumKeys(p, 0);
  p.Write<PageId>(kNextOff, kInvalidPage);
  root_ = g->id();
}

Result<PageId> BPTree::FindLeaf(uint64_t key) const {
  PageId cur = root_;
  for (;;) {
    FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(cur));
    const Page& p = g.page();
    if (IsLeaf(p)) return cur;
    cur = ChildAt(p, ChildIndex(p, key));
  }
}

Result<uint64_t> BPTree::Lookup(uint64_t key) const {
  FGPM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(leaf));
  const Page& p = g.page();
  size_t i = LowerBound(p, key);
  if (i < NumKeys(p) && KeyAt(p, i) == key) return ValueAt(p, i);
  return Status::NotFound("key not in tree");
}

Result<std::optional<BPTree::SplitInfo>> BPTree::InsertRec(
    PageId node, uint64_t key, uint64_t value, bool overwrite,
    bool* inserted) {
  FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(node));

  if (IsLeaf(g.page())) {
    Page& p = g.MutablePage();
    size_t pos = LowerBound(p, key);
    uint16_t n = NumKeys(p);
    if (pos < n && KeyAt(p, pos) == key) {
      if (!overwrite) return Status::AlreadyExists("duplicate key");
      SetValueAt(p, pos, value);
      *inserted = false;
      return std::optional<SplitInfo>{};
    }
    if (n < kLeafCapacity) {
      ShiftRight(p, pos, n, /*leaf=*/true);
      SetKeyAt(p, pos, key);
      SetValueAt(p, pos, value);
      SetNumKeys(p, n + 1);
      *inserted = true;
      return std::optional<SplitInfo>{};
    }
    // Split the leaf: upper half moves to a fresh right sibling.
    FGPM_ASSIGN_OR_RETURN(PageGuard ng, pool_->New());
    Page& np = ng.MutablePage();
    np.Write<uint8_t>(kIsLeafOff, 1);
    size_t mid = n / 2;
    uint16_t right_n = static_cast<uint16_t>(n - mid);
    for (size_t i = 0; i < right_n; ++i) {
      SetKeyAt(np, i, KeyAt(p, mid + i));
      SetValueAt(np, i, ValueAt(p, mid + i));
    }
    SetNumKeys(np, right_n);
    SetNumKeys(p, static_cast<uint16_t>(mid));
    np.Write<PageId>(kNextOff, p.Read<PageId>(kNextOff));
    p.Write<PageId>(kNextOff, ng.id());
    // Insert into the proper half.
    Page& target = (key >= KeyAt(np, 0)) ? np : p;
    size_t tpos = LowerBound(target, key);
    uint16_t tn = NumKeys(target);
    ShiftRight(target, tpos, tn, /*leaf=*/true);
    SetKeyAt(target, tpos, key);
    SetValueAt(target, tpos, value);
    SetNumKeys(target, tn + 1);
    *inserted = true;
    return std::optional<SplitInfo>{SplitInfo{KeyAt(np, 0), ng.id()}};
  }

  // Internal node: descend, then absorb a child split if any.
  size_t ci = ChildIndex(g.page(), key);
  PageId child = ChildAt(g.page(), ci);
  // Release our pin during recursion to keep the pinned set ~O(1).
  g.Release();
  FGPM_ASSIGN_OR_RETURN(std::optional<SplitInfo> split,
                        InsertRec(child, key, value, overwrite, inserted));
  if (!split) return std::optional<SplitInfo>{};

  FGPM_ASSIGN_OR_RETURN(PageGuard g2, pool_->Fetch(node));
  Page& p = g2.MutablePage();
  uint16_t n = NumKeys(p);
  if (n < kInternalCapacity) {
    for (size_t i = n; i > ci; --i) {
      SetKeyAt(p, i, KeyAt(p, i - 1));
      SetChildAt(p, i + 1, ChildAt(p, i));
    }
    SetKeyAt(p, ci, split->separator);
    SetChildAt(p, ci + 1, split->new_page);
    SetNumKeys(p, n + 1);
    return std::optional<SplitInfo>{};
  }

  // Split this internal node. Build the key/child sequence with the new
  // separator inserted, then cut at the middle and promote it.
  std::vector<uint64_t> keys(n + 1);
  std::vector<PageId> children(n + 2);
  for (size_t i = 0; i < ci; ++i) keys[i] = KeyAt(p, i);
  keys[ci] = split->separator;
  for (size_t i = ci; i < n; ++i) keys[i + 1] = KeyAt(p, i);
  for (size_t i = 0; i <= ci; ++i) children[i] = ChildAt(p, i);
  children[ci + 1] = split->new_page;
  for (size_t i = ci + 1; i <= n; ++i) children[i + 1] = ChildAt(p, i);

  size_t total = n + 1;
  size_t mid = total / 2;
  uint64_t promote = keys[mid];

  FGPM_ASSIGN_OR_RETURN(PageGuard ng, pool_->New());
  Page& np = ng.MutablePage();
  np.Write<uint8_t>(kIsLeafOff, 0);
  uint16_t right_n = static_cast<uint16_t>(total - mid - 1);
  for (size_t i = 0; i < right_n; ++i) SetKeyAt(np, i, keys[mid + 1 + i]);
  for (size_t i = 0; i <= right_n; ++i) SetChildAt(np, i, children[mid + 1 + i]);
  SetNumKeys(np, right_n);

  for (size_t i = 0; i < mid; ++i) SetKeyAt(p, i, keys[i]);
  for (size_t i = 0; i <= mid; ++i) SetChildAt(p, i, children[i]);
  SetNumKeys(p, static_cast<uint16_t>(mid));

  return std::optional<SplitInfo>{SplitInfo{promote, ng.id()}};
}

Status BPTree::Insert(uint64_t key, uint64_t value) {
  bool inserted = false;
  FGPM_ASSIGN_OR_RETURN(std::optional<SplitInfo> split,
                        InsertRec(root_, key, value, false, &inserted));
  if (inserted) ++num_entries_;
  if (split) {
    FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->New());
    Page& p = g.MutablePage();
    p.Write<uint8_t>(kIsLeafOff, 0);
    SetNumKeys(p, 1);
    SetKeyAt(p, 0, split->separator);
    SetChildAt(p, 0, root_);
    SetChildAt(p, 1, split->new_page);
    root_ = g.id();
    ++height_;
  }
  return Status::OK();
}

Status BPTree::Upsert(uint64_t key, uint64_t value) {
  bool inserted = false;
  FGPM_ASSIGN_OR_RETURN(std::optional<SplitInfo> split,
                        InsertRec(root_, key, value, true, &inserted));
  if (inserted) ++num_entries_;
  if (split) {
    FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->New());
    Page& p = g.MutablePage();
    p.Write<uint8_t>(kIsLeafOff, 0);
    SetNumKeys(p, 1);
    SetKeyAt(p, 0, split->separator);
    SetChildAt(p, 0, root_);
    SetChildAt(p, 1, split->new_page);
    root_ = g.id();
    ++height_;
  }
  return Status::OK();
}

Status BPTree::Delete(uint64_t key) {
  FGPM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(leaf));
  Page& p = g.MutablePage();
  size_t i = LowerBound(p, key);
  uint16_t n = NumKeys(p);
  if (i >= n || KeyAt(p, i) != key) return Status::NotFound("key not in tree");
  for (size_t j = i; j + 1 < n; ++j) {
    SetKeyAt(p, j, KeyAt(p, j + 1));
    SetValueAt(p, j, ValueAt(p, j + 1));
  }
  SetNumKeys(p, n - 1);
  --num_entries_;
  return Status::OK();
}

void BPTree::SaveMeta(BinaryWriter* w) const {
  w->U32(root_);
  w->U64(num_entries_);
  w->U32(height_);
}

Result<BPTree> BPTree::AttachMeta(BufferPool* pool, BinaryReader* r) {
  uint32_t root = 0, height = 0;
  uint64_t entries = 0;
  FGPM_RETURN_IF_ERROR(r->U32(&root));
  FGPM_RETURN_IF_ERROR(r->U64(&entries));
  FGPM_RETURN_IF_ERROR(r->U32(&height));
  return BPTree(pool, AttachTag{}, root, entries, height);
}

Status BPTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  FGPM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo));
  PageId cur = leaf;
  while (cur != kInvalidPage) {
    FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(cur));
    const Page& p = g.page();
    uint16_t n = NumKeys(p);
    size_t start = (cur == leaf) ? LowerBound(p, lo) : 0;
    for (size_t i = start; i < n; ++i) {
      uint64_t k = KeyAt(p, i);
      if (k > hi) return Status::OK();
      if (!fn(k, ValueAt(p, i))) return Status::OK();
    }
    cur = p.Read<PageId>(kNextOff);
  }
  return Status::OK();
}

}  // namespace fgpm
