// Simulated disk: an in-memory page store that counts every read and
// write. The paper measures I/O cost on a Shore-style storage manager;
// our counters play that role (DESIGN.md "Substitutions").
#ifndef FGPM_STORAGE_DISK_MANAGER_H_
#define FGPM_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace fgpm {

struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t checksum_failures = 0;
};

class DiskManager {
 public:
  DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  PageId AllocatePage();

  Status ReadPage(PageId id, Page* out);
  Status WritePage(PageId id, const Page& page);

  size_t NumPages() const { return pages_.size(); }
  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

  // Persists every page to `os` / restores from `is` (not counted in the
  // I/O stats; used by GraphDatabase::Save/Open). Pages carry an
  // FNV-1a checksum in the archive; corruption is detected on load.
  Status SavePages(std::ostream& os) const;
  Status LoadPages(std::istream& is);

  // Direct page corruption for failure-injection tests: XORs a byte of
  // the stored page (bypasses the write path and its accounting).
  Status CorruptPageForTesting(PageId id, size_t offset);

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  DiskStats stats_;
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_DISK_MANAGER_H_
