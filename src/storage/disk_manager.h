// Simulated disk: an in-memory page store that counts every read and
// write. The paper measures I/O cost on a Shore-style storage manager;
// our counters play that role (DESIGN.md "Substitutions").
//
// Thread safety: Read/WritePage may be called concurrently (buffer-pool
// shards fault pages in parallel); they take a shared lock so the page
// array cannot grow under them, and the I/O counters are atomics.
// AllocatePage takes the exclusive lock. Concurrent writes to the
// *same* page are not synchronized — a page is owned by exactly one
// buffer-pool shard, which serializes its evictions.
#ifndef FGPM_STORAGE_DISK_MANAGER_H_
#define FGPM_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace fgpm {

// Counter snapshot (plain integers; the live counters are atomics).
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t checksum_failures = 0;
};

class DiskManager {
 public:
  DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  PageId AllocatePage();

  Status ReadPage(PageId id, Page* out);
  Status WritePage(PageId id, const Page& page);

  size_t NumPages() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pages_.size();
  }
  DiskStats stats() const {
    DiskStats s;
    s.page_reads = page_reads_.load(std::memory_order_relaxed);
    s.page_writes = page_writes_.load(std::memory_order_relaxed);
    s.pages_allocated = pages_allocated_.load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    page_reads_.store(0, std::memory_order_relaxed);
    page_writes_.store(0, std::memory_order_relaxed);
    pages_allocated_.store(0, std::memory_order_relaxed);
    checksum_failures_.store(0, std::memory_order_relaxed);
  }

  // Persists every page to `os` / restores from `is` (not counted in the
  // I/O stats; used by GraphDatabase::Save/Open). Pages carry an
  // FNV-1a checksum in the archive; corruption is detected on load.
  Status SavePages(std::ostream& os) const;
  Status LoadPages(std::istream& is);

  // Direct page corruption for failure-injection tests: XORs a byte of
  // the stored page (bypasses the write path and its accounting).
  Status CorruptPageForTesting(PageId id, size_t offset);

  // Simulated device latency per ReadPage, in microseconds. The
  // in-memory store stands in for the paper's disk-resident Shore-style
  // storage manager; benchmarks set this to model a real device, which
  // makes miss-path serialization observable (a pool that holds a latch
  // across the read blocks all of its readers for the full latency).
  // Zero (the default) keeps reads instantaneous. The sleep happens
  // after the page lock is released, so the disk itself services
  // concurrent reads in parallel — any serialization measured above it
  // belongs to the caller.
  void set_simulated_read_latency_us(uint32_t us) {
    simulated_read_latency_us_.store(us, std::memory_order_relaxed);
  }
  uint32_t simulated_read_latency_us() const {
    return simulated_read_latency_us_.load(std::memory_order_relaxed);
  }

 private:
  // Shared: page lookups (the pointer array must not grow mid-read).
  // Exclusive: allocation and (de)serialization.
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::atomic<uint64_t> pages_allocated_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint32_t> simulated_read_latency_us_{0};
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_DISK_MANAGER_H_
