#include "storage/slotted_page.h"

#include <cstring>

namespace fgpm {

namespace {
constexpr uint16_t kTombstone = 0xffff;
}  // namespace

void SlottedPage::Init() {
  set_num_slots(0);
  set_free_end(static_cast<uint16_t>(kPageSize));
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderSize + num_slots() * kSlotSize;
  size_t fe = free_end();
  if (fe < dir_end + kSlotSize) return 0;
  return fe - dir_end - kSlotSize;
}

std::optional<uint16_t> SlottedPage::Insert(std::span<const char> record) {
  if (record.size() > kMaxRecordSize) return std::nullopt;
  if (FreeSpace() < record.size()) return std::nullopt;
  uint16_t slot = num_slots();
  uint16_t offset = static_cast<uint16_t>(free_end() - record.size());
  std::memcpy(page_->data() + offset, record.data(), record.size());
  size_t dir = kHeaderSize + slot * kSlotSize;
  page_->Write<uint16_t>(dir, offset);
  page_->Write<uint16_t>(dir + 2, static_cast<uint16_t>(record.size()));
  set_num_slots(slot + 1);
  set_free_end(offset);
  return slot;
}

std::optional<std::span<const char>> SlottedPage::Get(uint16_t slot) const {
  if (slot >= num_slots()) return std::nullopt;
  size_t dir = kHeaderSize + slot * kSlotSize;
  uint16_t offset = page_->Read<uint16_t>(dir);
  uint16_t len = page_->Read<uint16_t>(dir + 2);
  if (offset == kTombstone) return std::nullopt;
  return std::span<const char>(page_->data() + offset, len);
}

bool SlottedPage::Delete(uint16_t slot) {
  if (slot >= num_slots()) return false;
  size_t dir = kHeaderSize + slot * kSlotSize;
  if (page_->Read<uint16_t>(dir) == kTombstone) return false;
  page_->Write<uint16_t>(dir, kTombstone);
  return true;
}

}  // namespace fgpm
