// Slotted record page: variable-length records addressed by slot number.
// Layout: [num_slots:u16][free_end:u16][slot dir: (offset:u16,len:u16)*]
// ... free space ... [cells packed toward the end of the page].
#ifndef FGPM_STORAGE_SLOTTED_PAGE_H_
#define FGPM_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <optional>
#include <span>

#include "storage/page.h"

namespace fgpm {

class SlottedPage {
 public:
  // Wraps (does not own) a page buffer.
  explicit SlottedPage(Page* page) : page_(page) {}

  // Must be called once on a freshly allocated page.
  void Init();

  uint16_t num_slots() const { return page_->Read<uint16_t>(0); }

  // Bytes available for one more record (including its slot entry).
  size_t FreeSpace() const;

  // Appends a record; returns its slot or nullopt if it does not fit.
  std::optional<uint16_t> Insert(std::span<const char> record);

  // Record bytes for a live slot; nullopt for out-of-range or deleted.
  std::optional<std::span<const char>> Get(uint16_t slot) const;

  // Tombstones a slot (space is not reclaimed; heap files are
  // append-mostly in this system).
  bool Delete(uint16_t slot);

  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;
  // Largest record that fits in an empty page.
  static constexpr size_t kMaxRecordSize =
      kPageSize - kHeaderSize - kSlotSize;

 private:
  uint16_t free_end() const { return page_->Read<uint16_t>(2); }
  void set_num_slots(uint16_t n) { page_->Write<uint16_t>(0, n); }
  void set_free_end(uint16_t e) { page_->Write<uint16_t>(2, e); }

  Page* page_;
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_SLOTTED_PAGE_H_
