// Append-oriented heap file of variable-length records over slotted
// pages. Base tables, R-join index clusters and W-table payloads store
// their bytes here; all access is counted by the buffer pool / disk.
#ifndef FGPM_STORAGE_HEAP_FILE_H_
#define FGPM_STORAGE_HEAP_FILE_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fgpm {

class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  HeapFile(HeapFile&&) = default;
  HeapFile& operator=(HeapFile&&) = default;

  // Appends a record (<= SlottedPage::kMaxRecordSize bytes).
  Result<Rid> Append(std::span<const char> record);

  // Reads a record into `out`.
  Status Read(const Rid& rid, std::string* out) const;

  // Invokes fn(rid, bytes) for every live record in file order.
  Status Scan(
      const std::function<void(const Rid&, std::span<const char>)>& fn) const;

  size_t NumPages() const { return pages_.size(); }
  uint64_t NumRecords() const { return num_records_; }

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const;
  static Result<HeapFile> AttachMeta(BufferPool* pool, BinaryReader* r);

 private:
  BufferPool* pool_;
  std::vector<PageId> pages_;
  uint64_t num_records_ = 0;
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_HEAP_FILE_H_
