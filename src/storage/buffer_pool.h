// LRU buffer pool over the simulated disk. The paper configures a 1 MiB
// buffer for its experiments; that is our default (128 frames x 8 KiB).
// Pages are accessed through pin/unpin RAII guards; unpinned frames are
// evicted in LRU order, writing back dirty pages.
//
// Thread safety: Fetch/New/Unpin/FlushAll are serialized by an internal
// mutex so concurrent *read* paths (parallel R-join workers pinning index
// and cluster pages) are safe; a pinned frame is never evicted, so page
// bytes can be read outside the lock for the guard's lifetime. Writers
// (MutablePage) are not synchronized against readers of the same page —
// the execution engine is read-only, and all build/update paths are
// single-threaded.
#ifndef FGPM_STORAGE_BUFFER_POOL_H_
#define FGPM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace fgpm {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferPool;

// Move-only RAII pin on a buffered page.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), id_(id) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  const Page& page() const;
  // Mutable access marks the frame dirty.
  Page& MutablePage();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPage;
};

class BufferPool {
 public:
  // pool_bytes defaults to the paper's 1 MiB experimental setting.
  explicit BufferPool(DiskManager* disk, size_t pool_bytes = 1 << 20);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  // Pins page `id`, reading it from disk on a miss.
  Result<PageGuard> Fetch(PageId id);

  // Allocates a fresh zeroed page and pins it.
  Result<PageGuard> New();

  // Writes back all dirty frames.
  Status FlushAll();

  size_t num_frames() const { return frames_.size(); }
  // Snapshot of the counters; call only while no region is fetching.
  const BufferPoolStats& stats() const { return stats_; }
  DiskManager* disk() { return disk_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId id = kInvalidPage;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when unpinned (valid iff pin_count == 0 && resident).
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // Finds a frame for a new resident page, evicting if needed. Requires
  // mu_ held.
  Result<size_t> GrabFrame();
  void Unpin(size_t frame);
  void MarkDirty(size_t frame) { frames_[frame].dirty = true; }

  mutable std::mutex mu_;  // guards all fields below except frame bytes
  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = least recently used
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_BUFFER_POOL_H_
