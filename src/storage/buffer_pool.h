// Sharded LRU buffer pool over the simulated disk. The paper configures
// a 1 MiB buffer for its experiments; that is our default (128 frames x
// 8 KiB). Pages are accessed through pin/unpin RAII guards; unpinned
// frames are evicted in LRU order, writing back dirty pages.
//
// Thread safety: the pool is split into N shards (pages hash to shards
// by id); each shard owns a contiguous frame range, its own page table,
// free list and latch, so concurrent readers only contend when their
// pages land on the same shard. Pin counts are atomics and a frame's
// LRU recency is an atomic timestamp, so Unpin never takes a latch at
// all. A pinned frame is never evicted, so page bytes can be read
// outside any lock for the guard's lifetime (the release/acquire pair
// on the pin count orders the last read before a later eviction).
// Writers (MutablePage) are not synchronized against readers of the
// same page — the execution engine is read-only, and all build/update
// paths are single-threaded.
//
// A miss does not hold the shard latch across the disk read: the frame
// is installed pinned with io_busy set, the latch drops, and the read
// completes outside it, so misses overlap with each other and with hits
// (BufferPoolOptions::latch_across_io restores the old blocking read as
// an A/B baseline). A 1-shard pool (the default for the plain byte-size
// constructor, and what every pre-sharding test constructs) behaves
// exactly like the old single-mutex pool: one latch, one LRU domain,
// identical hit/miss/eviction sequences. Latch order: shard latch ->
// disk lock; the disk's allocation lock is never taken while a shard
// latch is held.
#ifndef FGPM_STORAGE_BUFFER_POOL_H_
#define FGPM_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace fgpm {

// Aggregate counter snapshot, summed over shards.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

struct BufferPoolOptions {
  // The paper's experiments use a 1 MiB buffer.
  size_t pool_bytes = 1 << 20;
  // Independently latched shards. 0 = auto: the next power of two >=
  // hardware threads, capped at 64. Any value is rounded up to a power
  // of two, then halved until every shard owns at least 4 frames (so a
  // tiny pool never degenerates into 1-frame shards).
  size_t num_shards = 1;
  // When true, a miss holds the shard latch for the whole disk read —
  // the pre-sharding pool's behavior, where one slow read blocks every
  // other fetch on the shard. Kept only as the A/B baseline for
  // bench_concurrency; the default releases the latch before the read
  // and publishes the frame with an io_busy flag, so misses overlap
  // with each other and with hits.
  bool latch_across_io = false;
};

class BufferPool;

// Move-only RAII pin on a buffered page.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), id_(id) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  const Page& page() const;
  // Mutable access marks the frame dirty.
  Page& MutablePage();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPage;
};

class BufferPool {
 public:
  // Legacy constructor: a single-shard pool, semantically identical to
  // the pre-sharding single-mutex pool.
  explicit BufferPool(DiskManager* disk, size_t pool_bytes = 1 << 20)
      : BufferPool(disk, BufferPoolOptions{pool_bytes, 1}) {}
  BufferPool(DiskManager* disk, const BufferPoolOptions& options);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  // Pins page `id`, reading it from disk on a miss.
  Result<PageGuard> Fetch(PageId id);

  // Allocates a fresh zeroed page and pins it.
  Result<PageGuard> New();

  // Writes back all dirty frames.
  Status FlushAll();

  size_t num_frames() const { return num_frames_; }
  size_t num_shards() const { return shards_.size(); }
  // Counter snapshot summed over shards; safe to call concurrently with
  // fetches (each counter is an atomic; the sum is a moment-in-time
  // aggregate, exact once the pool is quiescent).
  BufferPoolStats stats() const;
  DiskManager* disk() { return disk_; }
  void ResetStats();

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId id = kInvalidPage;
    uint32_t shard = 0;  // owning shard; fixed at construction
    std::atomic<uint32_t> pin_count{0};
    std::atomic<bool> dirty{false};
    // True while a miss is reading this frame's page from disk outside
    // the shard latch. The frame is already in the page table (pinned,
    // so it cannot be evicted); a concurrent Fetch of the same page
    // spins on this flag before returning its guard. The release store
    // after the read publishes the page bytes to those waiters.
    std::atomic<bool> io_busy{false};
    // Shard clock value at the last unpin. The frame with the smallest
    // stamp among unpinned residents is the LRU victim — equivalent to
    // the old intrusive list ("LRU position = time of last unpin").
    std::atomic<uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::mutex mu;  // guards page_table / free_frames / residency
    std::unordered_map<PageId, size_t> page_table;  // -> global frame idx
    std::vector<size_t> free_frames;
    size_t begin = 0, end = 0;  // owned range in frames_
    std::atomic<uint64_t> clock{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };

  size_t ShardOf(PageId id) const { return id & shard_mask_; }

  // Finds a frame for a new resident page in `sh`, evicting the
  // shard-LRU unpinned frame if needed. Requires sh.mu held.
  Result<size_t> GrabFrame(Shard& sh);
  // Common tail of Fetch-miss and New: installs `id` into frame `f`.
  void InstallFrame(Shard& sh, size_t f, PageId id, bool dirty);
  void Unpin(size_t frame);
  void MarkDirty(size_t frame) {
    frames_[frame].dirty.store(true, std::memory_order_relaxed);
  }

  DiskManager* disk_;
  std::unique_ptr<Frame[]> frames_;
  size_t num_frames_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  bool latch_across_io_ = false;
  // Process-wide registry counters (summed over every pool instance);
  // resolved once at construction, incremented alongside the per-shard
  // atomics. Increment is a no-op when obs is compiled out or disabled.
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_BUFFER_POOL_H_
