// Disk-resident B+-tree with 8-byte keys and 8-byte values, built on the
// buffer pool. Used for: primary indexes on base tables (node id -> RID),
// the W-table (packed label pair -> payload RID), and the cluster-based
// R-join index directory (center id -> cluster RID).
//
// Deletion is implemented lazily (entries are removed from leaves without
// rebalancing) — every workload in this system is build-once/read-many.
#ifndef FGPM_STORAGE_BPTREE_H_
#define FGPM_STORAGE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "common/serialize.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fgpm {

class BPTree {
 public:
  explicit BPTree(BufferPool* pool);
  BPTree(const BPTree&) = delete;
  BPTree& operator=(const BPTree&) = delete;
  BPTree(BPTree&&) = default;
  BPTree& operator=(BPTree&&) = default;

  // Inserts a unique key; AlreadyExists if present.
  Status Insert(uint64_t key, uint64_t value);

  // Inserts or overwrites.
  Status Upsert(uint64_t key, uint64_t value);

  // Point lookup.
  Result<uint64_t> Lookup(uint64_t key) const;
  bool Contains(uint64_t key) const { return Lookup(key).ok(); }

  // Removes a key. NotFound if absent.
  Status Delete(uint64_t key);

  // Visits entries with key in [lo, hi] ascending; stop early by
  // returning false from fn.
  Status ScanRange(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, uint64_t)>& fn) const;

  uint64_t NumEntries() const { return num_entries_; }
  uint32_t Height() const { return height_; }

  // Node fan-out constants (exposed for tests).
  static constexpr size_t kLeafCapacity = (kPageSize - 8) / 16;     // 511
  static constexpr size_t kInternalCapacity = (kPageSize - 16) / 12;  // 681

  // --- persistence --------------------------------------------------------
  // Writes/reads the tree's metadata (root page id, entry count, height);
  // the node pages themselves are persisted by the disk manager.
  void SaveMeta(BinaryWriter* w) const;
  static Result<BPTree> AttachMeta(BufferPool* pool, BinaryReader* r);

 private:
  struct AttachTag {};
  BPTree(BufferPool* pool, AttachTag, PageId root, uint64_t entries,
         uint32_t height)
      : pool_(pool), root_(root), num_entries_(entries), height_(height) {}

  struct SplitInfo {
    uint64_t separator;
    PageId new_page;
  };

  Result<std::optional<SplitInfo>> InsertRec(PageId node, uint64_t key,
                                             uint64_t value, bool overwrite,
                                             bool* inserted);
  Result<PageId> FindLeaf(uint64_t key) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPage;
  uint64_t num_entries_ = 0;
  uint32_t height_ = 1;
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_BPTREE_H_
