#include "storage/heap_file.h"

#include "storage/slotted_page.h"

namespace fgpm {

Result<Rid> HeapFile::Append(std::span<const char> record) {
  if (record.size() > SlottedPage::kMaxRecordSize) {
    return Status::InvalidArgument("record larger than a page");
  }
  if (!pages_.empty()) {
    FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(pages_.back()));
    SlottedPage sp(&g.MutablePage());
    if (auto slot = sp.Insert(record)) {
      ++num_records_;
      return Rid{pages_.back(), *slot};
    }
  }
  FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->New());
  SlottedPage sp(&g.MutablePage());
  sp.Init();
  auto slot = sp.Insert(record);
  if (!slot) return Status::Internal("record does not fit in empty page");
  pages_.push_back(g.id());
  ++num_records_;
  return Rid{g.id(), *slot};
}

Status HeapFile::Read(const Rid& rid, std::string* out) const {
  FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(rid.page));
  // SlottedPage is a read-only view here; const_cast avoids a second,
  // const view class.
  SlottedPage sp(const_cast<Page*>(&g.page()));
  auto rec = sp.Get(rid.slot);
  if (!rec) return Status::NotFound("no record at rid");
  out->assign(rec->data(), rec->size());
  return Status::OK();
}

void HeapFile::SaveMeta(BinaryWriter* w) const {
  w->VecU32(pages_);
  w->U64(num_records_);
}

Result<HeapFile> HeapFile::AttachMeta(BufferPool* pool, BinaryReader* r) {
  HeapFile hf(pool);
  FGPM_RETURN_IF_ERROR(r->VecU32(&hf.pages_));
  FGPM_RETURN_IF_ERROR(r->U64(&hf.num_records_));
  return hf;
}

Status HeapFile::Scan(
    const std::function<void(const Rid&, std::span<const char>)>& fn) const {
  for (PageId pid : pages_) {
    FGPM_ASSIGN_OR_RETURN(PageGuard g, pool_->Fetch(pid));
    SlottedPage sp(const_cast<Page*>(&g.page()));
    for (uint16_t s = 0; s < sp.num_slots(); ++s) {
      if (auto rec = sp.Get(s)) fn(Rid{pid, s}, *rec);
    }
  }
  return Status::OK();
}

}  // namespace fgpm
