// Fixed-size page, the unit of simulated disk I/O. Every index and table
// in the graph database lives on pages so page-read counters measure the
// I/O cost the paper's cost model (Table 1) reasons about.
#ifndef FGPM_STORAGE_PAGE_H_
#define FGPM_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace fgpm {

inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffffu;

// Raw page buffer with typed scalar accessors (unaligned-safe memcpy).
class Page {
 public:
  char* data() { return bytes_.data(); }
  const char* data() const { return bytes_.data(); }

  template <typename T>
  T Read(size_t offset) const {
    T v;
    std::memcpy(&v, bytes_.data() + offset, sizeof(T));
    return v;
  }

  template <typename T>
  void Write(size_t offset, const T& v) {
    std::memcpy(bytes_.data() + offset, &v, sizeof(T));
  }

  void Zero() { bytes_.fill(0); }

 private:
  std::array<char, kPageSize> bytes_{};
};

// Record id: a (page, slot) pair.
struct Rid {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPage; }
  uint64_t Pack() const { return (static_cast<uint64_t>(page) << 16) | slot; }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v)};
  }
  friend bool operator==(const Rid& a, const Rid& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

}  // namespace fgpm

#endif  // FGPM_STORAGE_PAGE_H_
