#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace fgpm::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RingIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % FlightRecorder::kRings;
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

struct DumpedEvent {
  uint64_t ts_ns;
  uint64_t arg;
  const char* detail;
  uint8_t type;
};

}  // namespace

const char* FlightEventName(FlightEvent e) {
  switch (e) {
    case FlightEvent::kAdmissionShed:
      return "admission_shed";
    case FlightEvent::kDeadlineDrop:
      return "deadline_drop";
    case FlightEvent::kBackpressurePause:
      return "backpressure_pause";
    case FlightEvent::kBackpressureResume:
      return "backpressure_resume";
    case FlightEvent::kCacheHit:
      return "cache_hit";
    case FlightEvent::kCacheMiss:
      return "cache_miss";
    case FlightEvent::kStealBurst:
      return "steal_burst";
    case FlightEvent::kSlowQuery:
      return "slow_query";
    case FlightEvent::kSloBreach:
      return "slo_breach";
    case FlightEvent::kTraceDropped:
      return "trace_dropped";
    case FlightEvent::kEventTypes:
      break;
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::RecordSlow(FlightEvent type, uint64_t arg,
                                const char* detail) {
  Ring& r = rings_[RingIndex()];
  const uint64_t seq = r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = r.slots[seq % kRingSize];
  s.arg.store(arg, std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  // ts last: a nonzero ts means the slot has been written at least once.
  s.ts_ns.store(NowNs(), std::memory_order_release);
}

size_t FlightRecorder::EventCount() const {
  size_t n = 0;
  for (const Ring& r : rings_) {
    for (const Slot& s : r.slots) {
      if (s.ts_ns.load(std::memory_order_acquire) != 0) ++n;
    }
  }
  return n;
}

std::string FlightRecorder::DumpJson() const {
  std::vector<DumpedEvent> events;
  events.reserve(kRings * 8);
  for (const Ring& r : rings_) {
    for (const Slot& s : r.slots) {
      const uint64_t ts = s.ts_ns.load(std::memory_order_acquire);
      if (ts == 0) continue;
      DumpedEvent e;
      e.ts_ns = ts;
      e.arg = s.arg.load(std::memory_order_relaxed);
      e.detail = s.detail.load(std::memory_order_relaxed);
      e.type = s.type.load(std::memory_order_relaxed);
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const DumpedEvent& a, const DumpedEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  std::string out = "[";
  char buf[96];
  for (size_t i = 0; i < events.size(); ++i) {
    const DumpedEvent& e = events[i];
    if (i != 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n{\"ts_us\": %" PRIu64 ", \"event\": \"%s\", \"arg\": %"
                  PRIu64,
                  e.ts_ns / 1000,
                  FlightEventName(static_cast<FlightEvent>(e.type)), e.arg);
    out += buf;
    if (e.detail != nullptr) {
      out += ", \"detail\": \"";
      AppendJsonEscaped(&out, e.detail);
      out += "\"";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

void FlightRecorder::Reset() {
  for (Ring& r : rings_) {
    r.head.store(0, std::memory_order_relaxed);
    for (Slot& s : r.slots) {
      s.ts_ns.store(0, std::memory_order_relaxed);
      s.arg.store(0, std::memory_order_relaxed);
      s.detail.store(nullptr, std::memory_order_relaxed);
      s.type.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace fgpm::obs
