// Metrics registry: named counters, gauges and log-scale histograms
// with per-thread sharded cells, aggregated only when read. An
// increment is one relaxed fetch_add on a cache-line-private cell the
// calling thread hashes to, so hot paths (buffer-pool fetches, code
// cache probes, per-query folds) never contend on a shared line; reads
// (Value(), the Prometheus/JSON exporters) sum the cells and are
// allowed to be moment-in-time approximations under concurrent writers
// — exact once writers are quiescent, which is what the exact-total
// tests assert.
//
// Registration is by name through a registry (one process-wide Default()
// plus freely constructible instances for tests). Metrics live as long
// as their registry and are never unregistered, so a pointer obtained
// once (typically a function-local static or a constructor-resolved
// member) stays valid for the process lifetime — the idiom every
// instrumented layer uses to keep name lookups off the hot path.
//
// With FGPM_OBS=OFF (see obs/obs.h) the write paths compile to nothing;
// exporters render whatever was (never) recorded, i.e. zeros.
#ifndef FGPM_OBS_METRICS_H_
#define FGPM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace fgpm::obs {

// Number of per-thread cells per metric. Threads hash to cells by a
// process-unique thread slot, so up to kCells writers proceed without
// sharing a line; more threads than cells just share politely.
inline constexpr size_t kCells = 16;

// Stable small thread index for cell sharding (assigned on first use,
// round-robin — NOT the OS tid).
inline size_t CellIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kCells - 1);
}

// Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

// Last-written-wins point-in-time value (no cell sharding: gauges are
// set at query rate, not per-probe).
class Gauge {
 public:
  void Set(double v) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(double d) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
#else
    (void)d;
#endif
  }

  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Log-scale (power-of-two) histogram of non-negative integer samples.
// Bucket i holds samples whose bit width is i: bucket 0 is exactly {0},
// bucket i >= 1 covers [2^(i-1), 2^i - 1]. 65 buckets span uint64_t, so
// there is no overflow bucket to mis-size; percentiles interpolate
// linearly inside a bucket, giving a relative error bounded by the
// bucket width (factor of 2) — plenty for latency attribution.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Observe(uint64_t sample) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    Cell& c = cells_[CellIndex()];
    c.counts[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(sample, std::memory_order_relaxed);
#else
    (void)sample;
#endif
  }

  static int BucketOf(uint64_t sample) {
    int b = 0;
    while (sample != 0) {
      sample >>= 1;
      ++b;
    }
    return b;
  }
  // Inclusive upper bound of bucket b (the Prometheus "le" boundary).
  static uint64_t BucketUpper(int b) {
    return b >= 64 ? ~0ull : (uint64_t{1} << b) - 1;
  }

  // Aggregated view; cheap enough to rebuild per read.
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t count = 0;
    uint64_t sum = 0;

    // p in [0, 1]; linear interpolation within the chosen bucket.
    // Returns 0 for an empty histogram.
    double Percentile(double p) const;
  };
  Snapshot Snap() const {
    Snapshot s;
    for (const Cell& c : cells_) {
      for (int b = 0; b < kBuckets; ++b) {
        s.counts[b] += c.counts[b].load(std::memory_order_relaxed);
      }
      s.sum += c.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t n : s.counts) s.count += n;
    return s;
  }

  void Reset() {
    for (Cell& c : cells_) {
      for (auto& n : c.counts) n.store(0, std::memory_order_relaxed);
      c.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Cell, kCells> cells_;
};

// Name -> metric registry. Get* registers on first use and returns the
// existing metric afterwards (the kind must match — a name registered
// as a counter stays a counter). Thread-safe; returned pointers are
// stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");

  // Prometheus text exposition (metrics sorted by name; histogram
  // buckets are cumulative with power-of-two "le" bounds, rendered up
  // to the last non-empty bucket plus +Inf).
  std::string ToPrometheusText() const;
  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, sum, p50, p95, p99, buckets: [[le, n]]}}}.
  std::string ToJson() const;

  // Zeroes every registered metric (pointers stay valid). Tests/benches.
  void Reset();

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help,
                      Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;  // sorted export
};

}  // namespace fgpm::obs

#endif  // FGPM_OBS_METRICS_H_
