// Metrics registry: named counters, gauges and log-scale histograms
// with per-thread sharded cells, aggregated only when read. An
// increment is one relaxed fetch_add on a cache-line-private cell the
// calling thread hashes to, so hot paths (buffer-pool fetches, code
// cache probes, per-query folds) never contend on a shared line; reads
// (Value(), the Prometheus/JSON exporters) sum the cells and are
// allowed to be moment-in-time approximations under concurrent writers
// — exact once writers are quiescent, which is what the exact-total
// tests assert.
//
// Registration is by name through a registry (one process-wide Default()
// plus freely constructible instances for tests). Metrics live as long
// as their registry and are never unregistered, so a pointer obtained
// once (typically a function-local static or a constructor-resolved
// member) stays valid for the process lifetime — the idiom every
// instrumented layer uses to keep name lookups off the hot path.
//
// With FGPM_OBS=OFF (see obs/obs.h) the write paths compile to nothing;
// exporters render whatever was (never) recorded, i.e. zeros.
#ifndef FGPM_OBS_METRICS_H_
#define FGPM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace fgpm::obs {

// Number of per-thread cells per metric. Threads hash to cells by a
// process-unique thread slot, so up to kCells writers proceed without
// sharing a line; more threads than cells just share politely.
inline constexpr size_t kCells = 16;

// Stable small thread index for cell sharding (assigned on first use,
// round-robin — NOT the OS tid).
inline size_t CellIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kCells - 1);
}

// Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

// Last-written-wins point-in-time value (no cell sharding: gauges are
// set at query rate, not per-probe).
class Gauge {
 public:
  void Set(double v) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(double d) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
#else
    (void)d;
#endif
  }

  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Log-scale (power-of-two) histogram of non-negative integer samples.
// Bucket i holds samples whose bit width is i: bucket 0 is exactly {0},
// bucket i >= 1 covers [2^(i-1), 2^i - 1]. 65 buckets span uint64_t, so
// there is no overflow bucket to mis-size; percentiles interpolate
// linearly inside a bucket, giving a relative error bounded by the
// bucket width (factor of 2) — plenty for latency attribution.
//
// Windowed view (EnableWindow): alongside the cumulative series the
// histogram keeps a ring of bucketed snapshots rotated on *read* at
// window/kWindowSlices boundaries against an injectable clock. The
// windowed snapshot is "cumulative now minus cumulative one window
// ago", so the write path stays the same two relaxed fetch_adds —
// rotation cost is paid by the scraper, not the query. Exemplars:
// ObserveWithExemplar(sample, trace_id) additionally stamps the
// sample's bucket with the most recent sampled trace_id + clock time,
// so a windowed p99 spike links directly to a stitched trace.
class Histogram {
 public:
  static constexpr int kBuckets = 65;
  static constexpr int kWindowSlices = 6;

  void Observe(uint64_t sample) { ObserveWithExemplar(sample, 0); }

  void ObserveWithExemplar(uint64_t sample, uint64_t trace_id) {
#if FGPM_OBS_ENABLED
    if (!Enabled()) return;
    Cell& c = cells_[CellIndex()];
    const int b = BucketOf(sample);
    c.counts[b].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(sample, std::memory_order_relaxed);
    if (trace_id != 0) {
      WindowState* w = win_.load(std::memory_order_acquire);
      if (w != nullptr) StampExemplar(w, b, trace_id);
    }
#else
    (void)sample;
    (void)trace_id;
#endif
  }

  static int BucketOf(uint64_t sample) {
    int b = 0;
    while (sample != 0) {
      sample >>= 1;
      ++b;
    }
    return b;
  }
  // Inclusive upper bound of bucket b (the Prometheus "le" boundary).
  static uint64_t BucketUpper(int b) {
    return b >= 64 ? ~0ull : (uint64_t{1} << b) - 1;
  }

  // Aggregated view; cheap enough to rebuild per read.
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t count = 0;
    uint64_t sum = 0;

    // p in [0, 1]; linear interpolation within the chosen bucket.
    // Returns 0 for an empty histogram.
    double Percentile(double p) const;
  };
  Snapshot Snap() const {
    Snapshot s;
    for (const Cell& c : cells_) {
      for (int b = 0; b < kBuckets; ++b) {
        s.counts[b] += c.counts[b].load(std::memory_order_relaxed);
      }
      s.sum += c.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t n : s.counts) s.count += n;
    return s;
  }

  void Reset();

  // --- sliding window ------------------------------------------------------

  // Nanosecond monotonic clock; injectable so window-rotation tests are
  // deterministic. Plain function pointer (no allocation on read path).
  using ClockFn = uint64_t (*)();

  // A sample window of `window_ns`, quantized into kWindowSlices slices.
  // Idempotent re-enable reconfigures and clears the ring. Thread-safe
  // against concurrent Observe (observers only ever see the fully
  // constructed state through the acquire load).
  void EnableWindow(uint64_t window_ns, ClockFn clock = nullptr);
  bool window_enabled() const {
    return win_.load(std::memory_order_acquire) != nullptr;
  }
  uint64_t window_ns() const;

  // Rotates the ring as far as the clock demands, then returns the
  // bucketed view of (roughly) the last window. Zero snapshot when
  // windowing is not enabled.
  Snapshot WindowSnap() const;

  // Most recent sampled trace_id that landed in bucket `b`, with its
  // clock stamp; {0, 0} when none. Exported next to the windowed
  // series so a latency bucket resolves to a stitched trace.
  struct Exemplar {
    uint64_t trace_id = 0;
    uint64_t ts_ns = 0;
  };
  Exemplar BucketExemplar(int b) const;

  ~Histogram();
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };

  // Lazily allocated window + exemplar state: a histogram that never
  // calls EnableWindow stays exactly as lean as before.
  struct WindowState {
    uint64_t window_ns = 0;
    uint64_t slice_ns = 0;
    ClockFn clock = nullptr;
    // Guards ring rotation (readers only — the write path never locks).
    mutable std::mutex mu;
    // ring[i] = cumulative snapshot captured at a past slice boundary;
    // head = next slot to overwrite, which is also the oldest snapshot
    // (one window ago once the ring has wrapped).
    std::array<Snapshot, kWindowSlices> ring{};
    int head = 0;
    uint64_t slice_start_ns = 0;
    // Per-bucket exemplars, last-writer-wins.
    std::array<std::atomic<uint64_t>, kBuckets> ex_id{};
    std::array<std::atomic<uint64_t>, kBuckets> ex_ts{};
  };

  static void StampExemplar(WindowState* w, int bucket, uint64_t trace_id);

  std::array<Cell, kCells> cells_;
  std::atomic<WindowState*> win_{nullptr};
};

// Name -> metric registry. Get* registers on first use and returns the
// existing metric afterwards (the kind must match — a name registered
// as a counter stays a counter). Thread-safe; returned pointers are
// stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");

  // Prometheus text exposition (metrics sorted by name; histogram
  // buckets are cumulative with power-of-two "le" bounds, rendered up
  // to the last non-empty bucket plus +Inf).
  std::string ToPrometheusText() const;
  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, sum, p50, p95, p99, buckets: [[le, n]]}}}.
  std::string ToJson() const;

  // Zeroes every registered metric (pointers stay valid). Tests/benches.
  void Reset();

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help,
                      Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;  // sorted export
};

}  // namespace fgpm::obs

#endif  // FGPM_OBS_METRICS_H_
