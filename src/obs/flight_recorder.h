// Always-on flight recorder: a small set of hashed, fixed-size rings of
// structured events (admission sheds, deadline drops, backpressure
// transitions, cache hits/misses, steal bursts, slow queries, SLO
// breaches) that the serving path records with a handful of relaxed
// atomic stores — no locks, no allocation, nothing the hot path can
// block on. The rings keep the most recent ~kRingSize events per ring;
// older events are silently overwritten, which is exactly the "last N
// seconds before the incident" semantic a flight recorder wants.
//
// Every event field is an atomic written with relaxed ordering and the
// timestamp written last; a reader that observes a torn slot merely
// renders one stale event — dumps are diagnostics, not ground truth.
// DumpJson() merges all rings by timestamp so /debug/flightrecorder
// shows one coherent timeline across workers.
#ifndef FGPM_OBS_FLIGHT_RECORDER_H_
#define FGPM_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/obs.h"

namespace fgpm::obs {

enum class FlightEvent : uint8_t {
  kAdmissionShed = 0,
  kDeadlineDrop,
  kBackpressurePause,
  kBackpressureResume,
  kCacheHit,
  kCacheMiss,
  kStealBurst,
  kSlowQuery,
  kSloBreach,
  kTraceDropped,
  kEventTypes,  // count sentinel
};

const char* FlightEventName(FlightEvent e);

class FlightRecorder {
 public:
  // Ring geometry: kRings rings of kRingSize slots each, threads hash
  // to rings so concurrent recorders rarely share a head counter.
  static constexpr size_t kRings = 32;
  static constexpr size_t kRingSize = 256;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Process-wide recorder every instrumentation site uses.
  static FlightRecorder& Default();

  // Records one event. `arg` is event-specific (query id, shed count,
  // latency in us, ...); `detail` must point at storage that outlives
  // the recorder — string literals and interned labels qualify, stack
  // buffers do not. nullptr is fine.
  void Record(FlightEvent type, uint64_t arg = 0,
              const char* detail = nullptr) {
#if FGPM_OBS_ENABLED
    if (!enabled_.load(std::memory_order_relaxed) || !Enabled()) return;
    RecordSlow(type, arg, detail);
#else
    (void)type;
    (void)arg;
    (void)detail;
#endif
  }

  // All retained events across all rings, merged ascending by
  // timestamp, as a JSON array of
  // {ts_us, event, arg, detail?} objects.
  std::string DumpJson() const;

  // Number of events currently retained (post-merge; tests).
  size_t EventCount() const;

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Clears every ring (tests).
  void Reset();

 private:
  // One event slot, all-atomic so concurrent overwrite + dump is
  // data-race-free (a reader may see a mix of old/new fields — see
  // header comment). ts == 0 marks an empty slot; the writer stores ts
  // last (release) so a nonzero ts implies the other fields are from
  // this or a later event.
  struct Slot {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<const char*> detail{nullptr};
    std::atomic<uint8_t> type{0};
  };
  struct alignas(64) Ring {
    std::atomic<uint64_t> head{0};
    std::array<Slot, kRingSize> slots{};
  };

  void RecordSlow(FlightEvent type, uint64_t arg, const char* detail);

  std::array<Ring, kRings> rings_{};
  std::atomic<bool> enabled_{true};
};

// Convenience for instrumentation sites.
inline void RecordFlight(FlightEvent type, uint64_t arg = 0,
                         const char* detail = nullptr) {
  FlightRecorder::Default().Record(type, arg, detail);
}

}  // namespace fgpm::obs

#endif  // FGPM_OBS_FLIGHT_RECORDER_H_
