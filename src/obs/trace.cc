#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>

namespace fgpm {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

QueryTrace::QueryTrace() {
  epoch_steady_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

QueryTrace::QueryTrace(uint64_t epoch_steady_ns)
    : epoch_steady_ns_(epoch_steady_ns) {}

uint32_t QueryTrace::Stitch(const QueryTrace& child, int32_t parent) {
  const uint32_t base = static_cast<uint32_t>(spans_.size());
  // Child spans were measured against the child's epoch; rebase onto
  // ours. Both epochs come from the same steady clock, so the delta is
  // exact (and usually zero: shard traces are built with our epoch).
  const double shift_us =
      (static_cast<double>(child.epoch_steady_ns_) -
       static_cast<double>(epoch_steady_ns_)) *
      1e-3;
  spans_.reserve(spans_.size() + child.spans_.size());
  for (const TraceSpan& cs : child.spans_) {
    TraceSpan s = cs;
    s.id = static_cast<uint32_t>(spans_.size());
    s.parent = cs.parent < 0 ? parent
                             : static_cast<int32_t>(base) + cs.parent;
    s.start_us += shift_us;
    spans_.push_back(std::move(s));
    cpu_at_begin_.push_back(0);
  }
  return base;
}

double QueryTrace::NowUs() const {
  uint64_t now_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now_ns - epoch_steady_ns_) * 1e-3;
}

double QueryTrace::CpuNowUs() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return 0;
}

uint32_t QueryTrace::BeginSpan(std::string name, std::string category,
                               int32_t parent) {
  TraceSpan s;
  s.id = static_cast<uint32_t>(spans_.size());
  s.parent = parent;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start_us = NowUs();
  spans_.push_back(std::move(s));
  cpu_at_begin_.push_back(CpuNowUs());
  return spans_.back().id;
}

void QueryTrace::EndSpan(uint32_t id) {
  TraceSpan& s = spans_[id];
  s.wall_us = NowUs() - s.start_us;
  s.cpu_us = CpuNowUs() - cpu_at_begin_[id];
}

uint32_t QueryTrace::AddCompleteSpan(std::string name, std::string category,
                                     int32_t parent, double start_us,
                                     double wall_us, double cpu_us) {
  TraceSpan s;
  s.id = static_cast<uint32_t>(spans_.size());
  s.parent = parent;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start_us = start_us;
  s.wall_us = wall_us;
  s.cpu_us = cpu_us;
  spans_.push_back(std::move(s));
  cpu_at_begin_.push_back(0);
  return spans_.back().id;
}

std::string QueryTrace::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\": \"ms\"";
  char buf[128];
  if (trace_id_ != 0) {
    std::snprintf(buf, sizeof(buf), ", \"traceId\": \"%016" PRIx64 "\"",
                  trace_id_);
    out += buf;
  }
  out += ", \"traceEvents\": [\n";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"name\": \"",
                  s.tid + 1);
    out += buf;
    AppendEscaped(&out, s.name);
    out += "\", \"cat\": \"";
    AppendEscaped(&out, s.category);
    std::snprintf(buf, sizeof(buf), "\", \"ts\": %.3f, \"dur\": %.3f",
                  s.start_us, s.wall_us);
    out += buf;
    out += ", \"args\": {";
    std::snprintf(buf, sizeof(buf), "\"cpu_us\": %.3f", s.cpu_us);
    out += buf;
    for (const auto& [k, v] : s.args) {
      out += ", \"";
      AppendEscaped(&out, k);
      std::snprintf(buf, sizeof(buf), "\": %" PRIu64, v);
      out += buf;
    }
    out += "}}";
    out += i + 1 < spans_.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

std::string QueryTrace::ToString() const {
  // Depth = number of parent hops (spans are appended after parents, so
  // one forward pass suffices).
  std::vector<int> depth(spans_.size(), 0);
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent >= 0) {
      depth[i] = depth[static_cast<size_t>(spans_[i].parent)] + 1;
    }
  }
  std::string out;
  char buf[160];
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    std::string name(static_cast<size_t>(depth[i]) * 2, ' ');
    name += s.name;
    std::snprintf(buf, sizeof(buf), "%-44s %10.3f ms wall %10.3f ms cpu",
                  name.c_str(), s.wall_us * 1e-3, s.cpu_us * 1e-3);
    out += buf;
    for (const auto& [k, v] : s.args) {
      std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, k.c_str(), v);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace fgpm
