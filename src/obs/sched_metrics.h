// Bridge from the work-stealing scheduler (common/scheduler.h, which
// cannot depend on the obs layer) into the metrics registry. Call
// PublishSchedulerMetrics() before exporting — the server does so in
// its /metrics and /stats handlers — and the scheduler's cumulative
// counters are mirrored as monotonic registry counters plus gauges:
//
//   fgpm_sched_regions_total      parallel regions executed
//   fgpm_sched_tasks_total        morsels executed
//   fgpm_sched_steals_total       morsels obtained from another deque
//   fgpm_sched_steal_fails_total  full sweeps that found nothing
//   fgpm_sched_splits_total       morsels split for starving workers
//   fgpm_sched_queue_depth        morsels currently queued (gauge)
//   fgpm_sched_workers            attached worker slots (gauge)
//   fgpm_sched_busy_fraction      mean per-worker busy_ns / wall_ns
#ifndef FGPM_OBS_SCHED_METRICS_H_
#define FGPM_OBS_SCHED_METRICS_H_

namespace fgpm::obs {

class MetricsRegistry;

// Mirrors Scheduler::Global().GetStats() into `reg` (Default() when
// null). Idempotent and delta-based: safe to call from any thread at
// any rate; counters only ever advance by the delta since the previous
// publish into that registry's process-wide snapshot.
void PublishSchedulerMetrics(MetricsRegistry* reg = nullptr);

}  // namespace fgpm::obs

#endif  // FGPM_OBS_SCHED_METRICS_H_
