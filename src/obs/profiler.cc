#include "obs/profiler.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "common/scheduler.h"
#include "obs/flight_recorder.h"

namespace fgpm::obs {

SchedProfiler& SchedProfiler::Default() {
  static SchedProfiler* p = new SchedProfiler();
  return *p;
}

SchedProfiler::~SchedProfiler() { Stop(); }

void SchedProfiler::Start(const Options& opts) {
  bool was = running_.exchange(true, std::memory_order_acq_rel);
  if (was) return;
  Scheduler::SetProfilingEnabled(true);
  sampler_ = std::thread([this, opts] { SamplerLoop(opts); });
}

void SchedProfiler::Stop() {
  bool was = running_.exchange(false, std::memory_order_acq_rel);
  if (!was) return;
  Scheduler::SetProfilingEnabled(false);
  if (sampler_.joinable()) sampler_.join();
}

void SchedProfiler::SamplerLoop(Options opts) {
  std::vector<Scheduler::WorkerSample> samples;
  char namebuf[32];
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(opts.sample_interval_us));
    Scheduler::Global().SampleWorkers(&samples);
    samples_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (last_steals_.size() < samples.size()) {
      last_steals_.resize(samples.size(), 0);
    }
    for (size_t i = 0; i < samples.size(); ++i) {
      const Scheduler::WorkerSample& w = samples[i];
      // Steal-burst watch: rate between consecutive samples.
      const uint64_t delta =
          w.steals >= last_steals_[i] ? w.steals - last_steals_[i] : 0;
      last_steals_[i] = w.steals;
      if (delta >= opts.steal_burst_threshold) {
        RecordFlight(FlightEvent::kStealBurst, delta,
                     w.internal ? "internal" : "external");
      }
      if (w.state == Scheduler::WorkerState::kIdle) continue;
      std::string stack;
      if (!w.tag.empty()) {
        stack = w.tag;
      } else {
        std::snprintf(namebuf, sizeof(namebuf), "worker%zu", i);
        stack = namebuf;
      }
      if (w.state == Scheduler::WorkerState::kStarving) {
        stack += ";starving";
      } else if (w.label != nullptr) {
        stack += ";";
        stack += w.label;
      } else {
        stack += ";run";
      }
      ++folded_[stack];
    }
  }
}

std::string SchedProfiler::FoldedStacks() const {
  std::string out;
  char buf[32];
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [stack, count] : folded_) {
    out += stack;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", count);
    out += buf;
  }
  return out;
}

void SchedProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  folded_.clear();
  samples_.store(0, std::memory_order_relaxed);
}

}  // namespace fgpm::obs
