// Observability configuration. The whole subsystem (metrics registry +
// query tracing) compiles to no-ops when the tree is configured with
// -DFGPM_OBS=OFF (which defines FGPM_OBS_ENABLED=0); a runtime kill
// switch additionally lets one binary A/B the instrumented hot paths
// against "off" without rebuilding (bench_obs_overhead uses it).
#ifndef FGPM_OBS_OBS_H_
#define FGPM_OBS_OBS_H_

#include <atomic>

#ifndef FGPM_OBS_ENABLED
#define FGPM_OBS_ENABLED 1
#endif

namespace fgpm::obs {

// True when the subsystem is compiled in. Instrumented layers branch on
// this constant so dead instrumentation folds away under FGPM_OBS=OFF.
inline constexpr bool kCompiledIn = FGPM_OBS_ENABLED != 0;

namespace internal {
inline std::atomic<bool> g_runtime_enabled{true};
}  // namespace internal

// Runtime kill switch (process-wide). Metric increments become loads of
// one shared atomic + a predicted-not-taken branch when disabled; spans
// are never recorded. Defaults to enabled.
inline bool Enabled() {
#if FGPM_OBS_ENABLED
  return internal::g_runtime_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline void SetEnabled(bool on) {
  internal::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

}  // namespace fgpm::obs

#endif  // FGPM_OBS_OBS_H_
