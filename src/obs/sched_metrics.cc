#include "obs/sched_metrics.h"

#include <mutex>

#include "common/scheduler.h"
#include "obs/metrics.h"

namespace fgpm::obs {
namespace {

// Last published cumulative values, so counters advance by deltas even
// though the scheduler reports absolutes. One snapshot per process —
// publishing into a second registry double-counts, which no caller does
// (tests use Default() like the server).
struct Published {
  std::mutex mu;
  uint64_t regions = 0, tasks = 0, steals = 0, steal_fails = 0, splits = 0;
};

Published& Prev() {
  static Published p;
  return p;
}

}  // namespace

void PublishSchedulerMetrics(MetricsRegistry* reg) {
  MetricsRegistry& r = reg != nullptr ? *reg : MetricsRegistry::Default();
  Scheduler::Stats s = Scheduler::Global().GetStats();

  Published& prev = Prev();
  std::lock_guard<std::mutex> lock(prev.mu);
  auto bump = [&r](const char* name, const char* help, uint64_t now,
                   uint64_t& last) {
    if (now > last) r.GetCounter(name, help)->Increment(now - last);
    if (now > last) last = now;
  };
  bump("fgpm_sched_regions_total", "parallel regions executed", s.regions,
       prev.regions);
  bump("fgpm_sched_tasks_total", "morsels executed", s.tasks, prev.tasks);
  bump("fgpm_sched_steals_total", "morsels stolen from another worker",
       s.steals, prev.steals);
  bump("fgpm_sched_steal_fails_total", "steal sweeps that found nothing",
       s.steal_fails, prev.steal_fails);
  bump("fgpm_sched_splits_total", "morsels split for starving workers",
       s.splits, prev.splits);

  r.GetGauge("fgpm_sched_queue_depth", "morsels currently queued")
      ->Set(static_cast<double>(s.queued < 0 ? 0 : s.queued));
  r.GetGauge("fgpm_sched_workers", "attached scheduler worker slots")
      ->Set(static_cast<double>(s.workers.size()));

  // Mean busy fraction across workers since scheduler start. Per-worker
  // fractions are exported through Stats (bench_server reads them
  // directly); the registry carries the aggregate.
  double busy = 0;
  for (const Scheduler::WorkerStats& w : s.workers) {
    busy += static_cast<double>(w.busy_ns);
  }
  double frac = (s.wall_ns > 0 && !s.workers.empty())
                    ? busy / (static_cast<double>(s.wall_ns) *
                              static_cast<double>(s.workers.size()))
                    : 0.0;
  r.GetGauge("fgpm_sched_busy_fraction",
             "mean per-worker busy time fraction since scheduler start")
      ->Set(frac);
}

}  // namespace fgpm::obs
