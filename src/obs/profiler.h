// Sampling profiler over the work-stealing scheduler. A single sampler
// thread wakes every `sample_interval_us`, snapshots every worker's
// running state / interned phase label / deque depth via
// Scheduler::SampleWorkers, and accumulates folded-stack lines
// ("srv0;match;BIND 42 <count>") that flamegraph tooling consumes
// directly. It also watches per-worker steal counters and records a
// flight-recorder kStealBurst event when a worker's steal rate between
// consecutive samples exceeds a threshold — the "steal storm" signal
// that explains latency spikes after the fact.
//
// Cost model: when stopped (the default) the only residual cost is one
// relaxed atomic load per morsel inside the scheduler
// (Scheduler::ProfilingEnabled). Start() flips that gate and spawns the
// sampler; Stop() joins it. Folded output is aggregated under a mutex
// owned by the sampler, so readers never touch scheduler internals.
#ifndef FGPM_OBS_PROFILER_H_
#define FGPM_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace fgpm::obs {

class SchedProfiler {
 public:
  struct Options {
    // Sampling period. 1ms default: ~0.1% of a 1ms-granularity worker's
    // time spent publishing labels, invisible in bench_obs_overhead.
    uint64_t sample_interval_us = 1000;
    // Steals-per-sample-interval above which a kStealBurst flight event
    // is recorded for the worker.
    uint64_t steal_burst_threshold = 64;
  };

  SchedProfiler() = default;
  SchedProfiler(const SchedProfiler&) = delete;
  SchedProfiler& operator=(const SchedProfiler&) = delete;
  ~SchedProfiler();

  // Process-wide profiler driven by /debug/profile and ServerOptions.
  static SchedProfiler& Default();

  // Enables scheduler label publication and spawns the sampler thread.
  // Idempotent while running.
  void Start(const Options& opts);
  void Start() { Start(Options{}); }
  // Joins the sampler and disables the scheduler gate. Folded stacks
  // remain readable after Stop.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Folded-stack output, one "stack count" line per distinct stack,
  // sorted by stack. Stack frames: worker tag (or "worker<i>"), then
  // the sampled phase label split on its own ';' separators; workers
  // observed starving fold into "<tag>;starving".
  std::string FoldedStacks() const;

  // Total samples taken since Start (tests: proves the sampler ran).
  uint64_t SampleCount() const {
    return samples_.load(std::memory_order_relaxed);
  }

  // Drops accumulated folded stacks (tests).
  void Reset();

 private:
  void SamplerLoop(Options opts);

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> folded_;       // stack -> sample count
  std::vector<uint64_t> last_steals_;            // per worker index
  std::atomic<uint64_t> samples_{0};
  std::atomic<bool> running_{false};
  std::thread sampler_;
};

}  // namespace fgpm::obs

#endif  // FGPM_OBS_PROFILER_H_
