#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace fgpm::obs {

namespace {

// Fixed-format double: trims to %.6g so exported text is stable across
// platforms for the integral values metrics overwhelmingly hold.
// Non-finite values use the canonical Prometheus spellings — a plain
// %g "nan"/"inf" is not valid exposition text and would poison the
// whole scrape.
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// JSON has no NaN/Inf literal at all; a poisoned gauge must degrade to
// null, never to an unparseable document.
std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatHex64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; anything a
// caller registered outside that alphabet is mapped to '_' so one bad
// name cannot invalidate the whole exposition.
std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

// HELP text: escape backslash and newline per the exposition format.
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Label values inside exemplar annotations.
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target sample (1-based); ceil so p=1 hits the last one.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] < rank) {
      seen += counts[b];
      continue;
    }
    // Target falls in bucket b: interpolate between its bounds by the
    // fraction of the bucket's samples below the rank.
    double lower = b == 0 ? 0 : static_cast<double>(uint64_t{1} << (b - 1));
    double upper = static_cast<double>(BucketUpper(b));
    double frac =
        static_cast<double>(rank - seen) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * frac;
  }
  return static_cast<double>(BucketUpper(kBuckets - 1));
}

Histogram::~Histogram() { delete win_.load(std::memory_order_relaxed); }

void Histogram::Reset() {
  for (Cell& c : cells_) {
    for (auto& n : c.counts) n.store(0, std::memory_order_relaxed);
    c.sum.store(0, std::memory_order_relaxed);
  }
  WindowState* w = win_.load(std::memory_order_acquire);
  if (w != nullptr) {
    std::lock_guard<std::mutex> lock(w->mu);
    for (auto& s : w->ring) s = Snapshot{};
    w->head = 0;
    w->slice_start_ns = w->clock();
    for (auto& id : w->ex_id) id.store(0, std::memory_order_relaxed);
    for (auto& ts : w->ex_ts) ts.store(0, std::memory_order_relaxed);
  }
}

void Histogram::EnableWindow(uint64_t window_ns, ClockFn clock) {
  if (window_ns == 0) window_ns = 1;
  WindowState* w = win_.load(std::memory_order_acquire);
  if (w == nullptr) {
    auto* fresh = new WindowState();
    WindowState* expected = nullptr;
    if (!win_.compare_exchange_strong(expected, fresh,
                                      std::memory_order_acq_rel)) {
      delete fresh;  // lost a racing enable; reconfigure the winner
      w = expected;
    } else {
      w = fresh;
    }
  }
  std::lock_guard<std::mutex> lock(w->mu);
  w->window_ns = window_ns;
  w->slice_ns = std::max<uint64_t>(1, window_ns / kWindowSlices);
  w->clock = clock != nullptr ? clock : &SteadyNowNs;
  for (auto& s : w->ring) s = Snapshot{};
  w->head = 0;
  w->slice_start_ns = w->clock();
}

uint64_t Histogram::window_ns() const {
  WindowState* w = win_.load(std::memory_order_acquire);
  if (w == nullptr) return 0;
  std::lock_guard<std::mutex> lock(w->mu);
  return w->window_ns;
}

void Histogram::StampExemplar(WindowState* w, int bucket, uint64_t trace_id) {
  w->ex_id[bucket].store(trace_id, std::memory_order_relaxed);
  w->ex_ts[bucket].store(w->clock != nullptr ? w->clock() : SteadyNowNs(),
                         std::memory_order_relaxed);
}

Histogram::Exemplar Histogram::BucketExemplar(int b) const {
  WindowState* w = win_.load(std::memory_order_acquire);
  if (w == nullptr || b < 0 || b >= kBuckets) return {};
  Exemplar e;
  e.trace_id = w->ex_id[b].load(std::memory_order_relaxed);
  e.ts_ns = w->ex_ts[b].load(std::memory_order_relaxed);
  return e;
}

Histogram::Snapshot Histogram::WindowSnap() const {
  WindowState* w = win_.load(std::memory_order_acquire);
  if (w == nullptr) return {};
  std::lock_guard<std::mutex> lock(w->mu);
  const uint64_t now = w->clock();
  // Rotate every boundary the clock has crossed since the last read.
  // A long idle gap rotates at most kWindowSlices times — after that
  // every ring slot already holds the same "now" snapshot.
  uint64_t behind =
      now > w->slice_start_ns ? (now - w->slice_start_ns) / w->slice_ns : 0;
  if (behind > 0) {
    Snapshot cum = Snap();
    uint64_t rotations = std::min<uint64_t>(behind, kWindowSlices);
    for (uint64_t i = 0; i < rotations; ++i) {
      w->ring[w->head] = cum;
      w->head = (w->head + 1) % kWindowSlices;
    }
    w->slice_start_ns += behind * w->slice_ns;
  }
  // Oldest retained boundary = the slot head points at (next overwrite).
  const Snapshot& old = w->ring[w->head];
  Snapshot cur = Snap();
  Snapshot out;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t a = cur.counts[b], o = old.counts[b];
    out.counts[b] = a > o ? a - o : 0;  // clamp racy drift
    out.count += out.counts[b];
  }
  out.sum = cur.sum > old.sum ? cur.sum - old.sum : 0;
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      std::string_view help,
                                                      Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    FGPM_CHECK(it->second.kind == kind);  // one name, one metric kind
    return &it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return &metrics_.emplace(std::string(name), std::move(e)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return FindOrCreate(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return FindOrCreate(name, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  return FindOrCreate(name, help, Kind::kHistogram)->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [raw_name, e] : metrics_) {
    const std::string name = SanitizeMetricName(raw_name);
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + EscapeHelp(e.help) + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + FormatU64(e.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatDouble(e.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        Histogram::Snapshot s = e.histogram->Snap();
        const bool windowed = e.histogram->window_enabled();
        int last = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (s.counts[b] != 0) last = b;
        }
        uint64_t cum = 0;
        for (int b = 0; b <= last; ++b) {
          cum += s.counts[b];
          out += name + "_bucket{le=\"" +
                 FormatU64(Histogram::BucketUpper(b)) + "\"} " +
                 FormatU64(cum);
          if (windowed) {
            // OpenMetrics exemplar: the most recent sampled trace that
            // landed in this bucket, so a p99 spike resolves to a
            // stitched trace at /debug/traces?trace_id=....
            Histogram::Exemplar ex = e.histogram->BucketExemplar(b);
            if (ex.trace_id != 0) {
              out += " # {trace_id=\"" +
                     EscapeLabelValue(FormatHex64(ex.trace_id)) + "\"} " +
                     FormatU64(Histogram::BucketUpper(b));
            }
          }
          out += "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + FormatU64(s.count) + "\n";
        out += name + "_sum " + FormatU64(s.sum) + "\n";
        out += name + "_count " + FormatU64(s.count) + "\n";
        if (windowed) {
          // Sliding-window percentiles next to the cumulative series:
          // "p99 over the last 30 s", the alerting view the cumulative
          // histogram cannot answer.
          Histogram::Snapshot wnd = e.histogram->WindowSnap();
          out += "# TYPE " + name + "_window gauge\n";
          out += name + "_window{quantile=\"p50\"} " +
                 FormatDouble(wnd.Percentile(0.50)) + "\n";
          out += name + "_window{quantile=\"p95\"} " +
                 FormatDouble(wnd.Percentile(0.95)) + "\n";
          out += name + "_window{quantile=\"p99\"} " +
                 FormatDouble(wnd.Percentile(0.99)) + "\n";
          out += "# TYPE " + name + "_window_count gauge\n";
          out += name + "_window_count " + FormatU64(wnd.count) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        AppendJsonString(&counters, name);
        counters += ": " + FormatU64(e.counter->Value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        AppendJsonString(&gauges, name);
        gauges += ": " + FormatJsonDouble(e.gauge->Value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        Histogram::Snapshot s = e.histogram->Snap();
        AppendJsonString(&histograms, name);
        histograms += ": {\"count\": " + FormatU64(s.count) +
                      ", \"sum\": " + FormatU64(s.sum) +
                      ", \"p50\": " + FormatJsonDouble(s.Percentile(0.50)) +
                      ", \"p95\": " + FormatJsonDouble(s.Percentile(0.95)) +
                      ", \"p99\": " + FormatJsonDouble(s.Percentile(0.99)) +
                      ", \"buckets\": [";
        bool first = true;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (s.counts[b] == 0) continue;
          if (!first) histograms += ", ";
          first = false;
          histograms += "[" + FormatU64(Histogram::BucketUpper(b)) + ", " +
                        FormatU64(s.counts[b]) + "]";
        }
        histograms += "]";
        if (e.histogram->window_enabled()) {
          Histogram::Snapshot w = e.histogram->WindowSnap();
          histograms +=
              ", \"window\": {\"count\": " + FormatU64(w.count) +
              ", \"p50\": " + FormatJsonDouble(w.Percentile(0.50)) +
              ", \"p95\": " + FormatJsonDouble(w.Percentile(0.95)) +
              ", \"p99\": " + FormatJsonDouble(w.Percentile(0.99)) +
              ", \"exemplars\": [";
          bool wfirst = true;
          for (int b = 0; b < Histogram::kBuckets; ++b) {
            Histogram::Exemplar ex = e.histogram->BucketExemplar(b);
            if (ex.trace_id == 0) continue;
            if (!wfirst) histograms += ", ";
            wfirst = false;
            histograms += "[" + FormatU64(Histogram::BucketUpper(b)) +
                          ", \"" + FormatHex64(ex.trace_id) + "\"]";
          }
          histograms += "]}";
        }
        histograms += "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

}  // namespace fgpm::obs
