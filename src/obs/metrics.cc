#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace fgpm::obs {

namespace {

// Fixed-format double: trims to %.6g so exported text is stable across
// platforms for the integral values metrics overwhelmingly hold.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target sample (1-based); ceil so p=1 hits the last one.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] < rank) {
      seen += counts[b];
      continue;
    }
    // Target falls in bucket b: interpolate between its bounds by the
    // fraction of the bucket's samples below the rank.
    double lower = b == 0 ? 0 : static_cast<double>(uint64_t{1} << (b - 1));
    double upper = static_cast<double>(BucketUpper(b));
    double frac =
        static_cast<double>(rank - seen) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * frac;
  }
  return static_cast<double>(BucketUpper(kBuckets - 1));
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      std::string_view help,
                                                      Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    FGPM_CHECK(it->second.kind == kind);  // one name, one metric kind
    return &it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return &metrics_.emplace(std::string(name), std::move(e)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return FindOrCreate(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return FindOrCreate(name, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  return FindOrCreate(name, help, Kind::kHistogram)->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + FormatU64(e.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatDouble(e.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        Histogram::Snapshot s = e.histogram->Snap();
        int last = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (s.counts[b] != 0) last = b;
        }
        uint64_t cum = 0;
        for (int b = 0; b <= last; ++b) {
          cum += s.counts[b];
          out += name + "_bucket{le=\"" +
                 FormatU64(Histogram::BucketUpper(b)) + "\"} " +
                 FormatU64(cum) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + FormatU64(s.count) + "\n";
        out += name + "_sum " + FormatU64(s.sum) + "\n";
        out += name + "_count " + FormatU64(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        AppendJsonString(&counters, name);
        counters += ": " + FormatU64(e.counter->Value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        AppendJsonString(&gauges, name);
        gauges += ": " + FormatDouble(e.gauge->Value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        Histogram::Snapshot s = e.histogram->Snap();
        AppendJsonString(&histograms, name);
        histograms += ": {\"count\": " + FormatU64(s.count) +
                      ", \"sum\": " + FormatU64(s.sum) +
                      ", \"p50\": " + FormatDouble(s.Percentile(0.50)) +
                      ", \"p95\": " + FormatDouble(s.Percentile(0.95)) +
                      ", \"p99\": " + FormatDouble(s.Percentile(0.99)) +
                      ", \"buckets\": [";
        bool first = true;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (s.counts[b] == 0) continue;
          if (!first) histograms += ", ";
          first = false;
          histograms += "[" + FormatU64(Histogram::BucketUpper(b)) + ", " +
                        FormatU64(s.counts[b]) + "]";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

}  // namespace fgpm::obs
