// Span-based query tracing. A QueryTrace is owned by one executor call
// and records one span per plan step (plus a root span for the query
// and child spans for selects fused into a fetch): wall time against
// the trace's own epoch, process CPU time, and a flat list of named
// counter deltas the instrumenting layer attaches (rows in/out, reach
// memo probes/hits, W-table lookups, buffer-pool and code-cache
// hit/miss deltas — the stats-delta protocol described in DESIGN.md).
// Spans are generic name/value records so this layer depends on nothing
// above common/; the executor translates OperatorStats / IoSnapshot
// deltas into args.
//
// Dump formats: ToChromeJson() emits Chrome trace_event "X" (complete)
// events loadable in chrome://tracing / Perfetto; ToString() renders an
// indented human-readable profile.
//
// Thread model: a trace is single-writer (the executor thread). Workers
// never touch it — parallel operators fold their chunk stats first, and
// the executor attributes the folded delta to the step's span.
#ifndef FGPM_OBS_TRACE_H_
#define FGPM_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace fgpm {

struct TraceSpan {
  uint32_t id = 0;
  int32_t parent = -1;  // index into spans(); -1 = root
  uint32_t tid = 0;     // Chrome-trace row: worker/shard that ran the span
  std::string name;     // e.g. "FETCH(C->D)" or the pattern text
  std::string category; // "query" | "operator" | "optimize" | ...
  double start_us = 0;  // relative to the trace epoch
  double wall_us = 0;
  double cpu_us = 0;    // process CPU over the span (covers pool workers)
  // Counter deltas attributed to this span, in insertion order.
  std::vector<std::pair<std::string, uint64_t>> args;

  const uint64_t* FindArg(std::string_view key) const {
    for (const auto& [k, v] : args) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class QueryTrace {
 public:
  QueryTrace();  // stamps the epoch
  // Builds a trace against a caller-supplied epoch, so per-shard child
  // traces of one distributed request share a timeline with the origin
  // trace (same process => same steady clock) and stitch without skew.
  explicit QueryTrace(uint64_t epoch_steady_ns);

  // Opens a span starting now. Returns its id (== index in spans()).
  uint32_t BeginSpan(std::string name, std::string category,
                     int32_t parent = -1);
  // Stamps wall/CPU duration. Must pair with the matching BeginSpan.
  void EndSpan(uint32_t id);

  void AddArg(uint32_t id, std::string key, uint64_t value) {
    spans_[id].args.emplace_back(std::move(key), value);
  }

  // Appends a fully specified span (golden tests, absorbed-step child
  // spans that mirror their parent's interval).
  uint32_t AddCompleteSpan(std::string name, std::string category,
                           int32_t parent, double start_us, double wall_us,
                           double cpu_us);

  // Chrome-trace row for a span (shard/worker index in stitched dumps).
  void SetSpanTid(uint32_t id, uint32_t tid) { spans_[id].tid = tid; }

  // Distributed-trace identity. 0 = unsampled/anonymous.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

  uint64_t epoch_steady_ns() const { return epoch_steady_ns_; }

  // Grafts every span of `child` under this trace's span `parent`
  // (child roots re-parent to `parent`; child-internal parent links are
  // preserved with rebased indices). Span starts are shifted by the
  // epoch delta so a child built against a different epoch lands at the
  // right wall offset. Returns the index of the first grafted span.
  uint32_t Stitch(const QueryTrace& child, int32_t parent);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  // Chrome trace_event JSON ({"displayTimeUnit", "traceEvents": [...]}).
  std::string ToChromeJson() const;
  // Indented per-span profile (depth from parent links).
  std::string ToString() const;

 private:
  double NowUs() const;
  static double CpuNowUs();

  uint64_t epoch_steady_ns_ = 0;
  uint64_t trace_id_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<double> cpu_at_begin_;  // parallel to spans_
};

}  // namespace fgpm

#endif  // FGPM_OBS_TRACE_H_
