// WCOJ planning: cyclic-core detection on the pattern graph, the
// degree/label-aware vertex ordering, and construction of pure
// vertex-at-a-time plans (scan + one WCOJ bind per remaining vertex).
//
// The cyclic core is the 2-core of the pattern's underlying undirected
// graph — iteratively peel degree <= 1 vertices; what survives is the
// part where binary plans do asymptotically wasted work and WCOJ binds
// pay off. Acyclic patterns have an empty core: MakeWcojPlan still
// builds a bind-per-vertex plan when forced (JoinStrategy::kWcoj), but
// the hybrid strategy only offers bind-moves to the DPS/DP search when
// a core exists, so trees and paths keep their binary plans.
#ifndef FGPM_OPT_WCOJ_PLANNER_H_
#define FGPM_OPT_WCOJ_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "exec/plan.h"
#include "gdb/catalog.h"
#include "opt/cost_model.h"
#include "query/pattern.h"

namespace fgpm {

// 2-core split of the pattern's underlying undirected graph.
struct PatternCore {
  std::vector<PatternNodeId> core_nodes;  // ascending; empty <=> acyclic
  std::vector<uint32_t> core_edges;       // both endpoints in the core
  std::vector<uint32_t> appendage_edges;  // tree edges hanging off
  bool has_core() const { return !core_nodes.empty(); }
};
PatternCore FindCyclicCore(const Pattern& pattern);

// Binding order over all pattern vertices: start from the core vertex
// of maximum undirected degree (smaller extent breaks ties), then
// greedily append the vertex with the most edges into the chosen set
// (connected extension), preferring core membership, then total
// degree, then the smaller extent — the classic OrderVertices
// heuristic adapted to per-label extents. Falls back to plain
// max-degree start when the pattern is acyclic.
std::vector<PatternNodeId> OrderWcojVertices(const Pattern& pattern,
                                             const Catalog& catalog);

// Pure WCOJ plan: ScanBase on the first ordered vertex, then one
// kWcojBind per remaining vertex consuming every edge into the bound
// set. estimated_cost uses the same CostModel charges ExplainPlan
// replays. Falls back to MakeCanonicalPlan when a pattern label is
// missing from the catalog (result is empty either way).
Result<Plan> MakeWcojPlan(const Pattern& pattern, const Catalog& catalog,
                          CostParams params = {});

}  // namespace fgpm

#endif  // FGPM_OPT_WCOJ_PLANNER_H_
