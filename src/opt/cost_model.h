// Cost model and cardinality estimation for R-join / R-semijoin plans
// (Section 4, Table 1, Eqs. 10-12).
//
// Cardinalities use the catalog's per-label-pair statistics:
//   |T_X join T_Y|                      -> PairStats::est_pairs
//   sel(X,Y) = |TX join TY| / (|TX||TY|)  (Eq. 10, the select step)
//   |T_RS| = |T_R| * |TX join TY| / |T_bound|   (Eqs. 11/12, fetch fanout)
// R-semijoin survival uses the independence estimate
//   min(1, |TX join TY| / |T_bound|).
//
// I/O costs are expressed in page units:
//   IO_W   — one W-table B+-tree probe
//   IO_B   — one graph-code retrieval (primary index descent + heap page)
//   IO_F/IO_T — pages per F-/T-subcluster access (catalog averages)
//   IO_S   — scanning one heap page
#ifndef FGPM_OPT_COST_MODEL_H_
#define FGPM_OPT_COST_MODEL_H_

#include "gdb/catalog.h"

namespace fgpm {

struct CostParams {
  double io_wtable_probe = 2.0;   // IO_W
  double io_code_probe = 3.0;     // IO_B: B+-tree descent + heap page
  double io_page_scan = 1.0;      // IO_S
  double cpu_per_tuple = 0.001;   // charge for producing an output tuple
  // Charge per NodeId copied when an operator (re)writes its output
  // rows into temporal storage. Under eager materialization a step
  // writing R rows of width W copies R*W ids; a factorized fetch writes
  // only the (parent, value) delta pair regardless of W.
  double cpu_per_id_copy = 0.0002;
  // Executor materialization mode the plan will run under; makes DP/DPS
  // stop over-charging wide intermediates when fetches append delta
  // columns instead of re-widening.
  bool factorized = false;
  // WCOJ vertex binds: CPU charged per driver candidate tested against
  // another constraint set (the k-way intersection / reach probes), and
  // the expected fraction of per-row expansion work that misses the
  // chunk-local expansion memo (rows repeating a bound node share one
  // code probe + cluster expansion).
  double cpu_per_intersect_probe = 0.0002;
  double wcoj_memo_miss = 0.25;
  // Result-cache replay: expected fraction of per-row residual-edge
  // probes that miss the replay's reachability memo (repeated node
  // pairs collapse into one code intersection, exactly like the select
  // operator's memo).
  double replay_memo_miss = 0.25;
};

class CostModel {
 public:
  explicit CostModel(const Catalog* catalog, CostParams params = {})
      : catalog_(catalog), params_(params) {}

  const CostParams& params() const { return params_; }

  // --- cardinalities ------------------------------------------------------
  double BaseJoinSize(LabelId x, LabelId y) const;
  // Eq. 10: fraction of rows surviving a select on X->Y.
  double SelectSelectivity(LabelId x, LabelId y) const;
  // Eqs. 11/12: per-row fanout of the full R-join toward the unbound side.
  double ExtendFanout(LabelId x, LabelId y, bool bound_is_source) const;
  // Fraction of rows surviving the R-semijoin (Filter) on the bound side.
  double SemijoinSurvival(LabelId x, LabelId y, bool bound_is_source) const;
  // Expected |X_i| — centers attached to a surviving row by Filter.
  double AvgCentersPerRow(LabelId x, LabelId y, bool bound_is_source) const;

  // --- step costs (page units) -------------------------------------------
  double HpsjBaseCost(LabelId x, LabelId y) const;
  double ScanBaseCost(LabelId x) const;
  // Filter scanning `rows` temporal rows with `distinct_columns` probed
  // columns and `num_edges` semijoins (shared scan, Remark 3.1).
  double FilterCost(double rows, int distinct_columns, int num_edges) const;
  // Fetch expanding `rows` filtered rows for edge X->Y.
  double FetchCost(double rows, LabelId x, LabelId y,
                   bool bound_is_source) const;
  double SelectCost(double rows) const;
  // WCOJ bind of one vertex over k constraint edges, driven by the
  // cheapest constraint (labels dx -> dy, driver_forward: the bound
  // endpoint is the edge source). Per row: k memo-discounted code
  // probes, the driver expansion's cluster pages, one intersection
  // probe per driver candidate per other constraint, plus the output
  // tuples.
  double WcojBindCost(double rows, int k, LabelId dx, LabelId dy,
                      bool driver_forward, double rows_out) const;
  // Cost of writing a step's output rows at `width` bound columns into
  // temporal storage. Factorized tables write at most 2 ids per row
  // (the delta pair) however wide the logical row is.
  double MaterializeCost(double rows, int width) const;
  // Cost of answering a query by filtering `rows` cached result rows of
  // `arity` columns down through `residual_edges` per-row reachability
  // probes (result-cache containment replay; memo-discounted like
  // selects). Compared against a fresh plan's estimated_cost to decide
  // replay vs recompute.
  double ReplayCost(double rows, int arity, int residual_edges) const;

 private:
  const Catalog* catalog_;
  CostParams params_;
};

}  // namespace fgpm

#endif  // FGPM_OPT_COST_MODEL_H_
