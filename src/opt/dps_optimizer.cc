#include "opt/dps_optimizer.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "opt/dp_optimizer.h"
#include "opt/wcoj_planner.h"

namespace fgpm {
namespace {

// Per-edge status (2 bits).
enum EdgeStatus : uint8_t {
  kTodo = 0,
  kPendingSrc = 1,  // filtered, source side was bound
  kPendingTgt = 2,  // filtered, target side was bound
  kDone = 3,        // fetched or selected
};

constexpr uint64_t kNoKey = ~0ull;

struct StatusKey {
  // bits [0, 2m): edge statuses; bits [48, 56): scan start label + 1.
  static uint64_t Make(const std::vector<uint8_t>& st, uint32_t scan) {
    uint64_t k = static_cast<uint64_t>(scan) << 48;
    for (size_t e = 0; e < st.size(); ++e) {
      k |= static_cast<uint64_t>(st[e]) << (2 * e);
    }
    return k;
  }
  static void Split(uint64_t key, size_t m, std::vector<uint8_t>* st,
                    uint32_t* scan) {
    st->resize(m);
    for (size_t e = 0; e < m; ++e) {
      (*st)[e] = static_cast<uint8_t>((key >> (2 * e)) & 3);
    }
    *scan = static_cast<uint32_t>(key >> 48);
  }
};

struct StateInfo {
  double cost = std::numeric_limits<double>::infinity();
  double rows = 0;
  uint64_t parent = kNoKey;
  PlanStep step;  // move that produced this state
  bool closed = false;
};

}  // namespace

Result<Plan> OptimizeDps(const Pattern& pattern, const Catalog& catalog,
                         CostParams params, JoinStrategy strategy) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.num_edges() == 0) return Plan{};
  if (pattern.num_edges() > 20 || pattern.num_nodes() > 24) {
    return Status::InvalidArgument("pattern too large for exact DPS");
  }
  std::vector<LabelId> labels(pattern.num_nodes());
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = catalog.FindLabel(pattern.label(i));
    if (!l) return MakeCanonicalPlan(pattern);
    labels[i] = *l;
  }

  CostModel model(&catalog, params);
  const auto& edges = pattern.edges();
  const size_t m = edges.size();
  const size_t n = pattern.num_nodes();
  // WCOJ bind-moves are only worth exploring when the pattern has a
  // cyclic core — on trees/paths every vertex has at most one edge into
  // the bound set, so a bind degenerates to a fetch at higher cost.
  const bool allow_bind =
      strategy != JoinStrategy::kBinary && FindCyclicCore(pattern).has_core();

  auto edge_x = [&](size_t e) { return labels[edges[e].from]; };
  auto edge_y = [&](size_t e) { return labels[edges[e].to]; };

  // Bound pattern nodes implied by a status.
  auto bound_mask_of = [&](const std::vector<uint8_t>& st, uint32_t scan) {
    uint32_t bm = 0;
    if (scan > 0) bm |= 1u << (scan - 1);
    for (size_t e = 0; e < m; ++e) {
      switch (st[e]) {
        case kDone:
          bm |= (1u << edges[e].from) | (1u << edges[e].to);
          break;
        case kPendingSrc:
          bm |= 1u << edges[e].from;
          break;
        case kPendingTgt:
          bm |= 1u << edges[e].to;
          break;
        default:
          break;
      }
    }
    return bm;
  };

  std::unordered_map<uint64_t, StateInfo> states;
  using QItem = std::pair<double, uint64_t>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;

  auto relax = [&](uint64_t key, double cost, double rows, uint64_t parent,
                   PlanStep step) {
    StateInfo& s = states[key];
    if (cost < s.cost) {
      s.cost = cost;
      s.rows = rows;
      s.parent = parent;
      s.step = std::move(step);
      pq.emplace(cost, key);
    }
  };

  // --- start moves ---------------------------------------------------------
  // Every move also charges writing its output rows into temporal
  // storage at the output width (capped at the delta pair under
  // factorized execution) — mirrored exactly by ExplainPlan's replay.
  std::vector<uint8_t> st(m, kTodo);
  for (uint32_t e = 0; e < m; ++e) {
    std::vector<uint8_t> s2 = st;
    s2[e] = kDone;
    double rows0 = model.BaseJoinSize(edge_x(e), edge_y(e));
    relax(StatusKey::Make(s2, 0),
          model.HpsjBaseCost(edge_x(e), edge_y(e)) +
              model.MaterializeCost(rows0, 2),
          rows0, kNoKey, PlanStep::HpsjBase(e));
  }
  for (uint32_t v = 0; v < n; ++v) {
    double rows0 = static_cast<double>(catalog.ExtentSize(labels[v]));
    relax(StatusKey::Make(st, v + 1),
          model.ScanBaseCost(labels[v]) + model.MaterializeCost(rows0, 1),
          rows0, kNoKey, PlanStep::ScanBase(v));
  }

  const uint64_t kGoalStatuses = [&] {
    std::vector<uint8_t> all_done(m, kDone);
    return StatusKey::Make(all_done, 0) & ((m == 32) ? ~0ull : ((1ull << (2 * m)) - 1));
  }();

  uint64_t goal_key = kNoKey;
  std::vector<uint8_t> cur;
  uint32_t scan = 0;
  while (!pq.empty()) {
    auto [cost, key] = pq.top();
    pq.pop();
    StateInfo& info = states[key];
    if (info.closed || cost > info.cost) continue;
    info.closed = true;

    StatusKey::Split(key, m, &cur, &scan);
    if ((key & ((1ull << (2 * m)) - 1)) == kGoalStatuses) {
      goal_key = key;
      break;
    }
    uint32_t bm = bound_mask_of(cur, scan);
    const int width = std::popcount(bm);
    double rows = info.rows;

    // select-moves.
    for (uint32_t e = 0; e < m; ++e) {
      if (cur[e] != kTodo) continue;
      if (!(bm & (1u << edges[e].from)) || !(bm & (1u << edges[e].to)))
        continue;
      std::vector<uint8_t> s2 = cur;
      s2[e] = kDone;
      double out = rows * model.SelectSelectivity(edge_x(e), edge_y(e));
      relax(StatusKey::Make(s2, scan),
            cost + model.SelectCost(rows) + model.MaterializeCost(out, width),
            out, key, PlanStep::Select(e));
    }

    // Filter-moves: group ALL eligible semijoins probing one column/side.
    for (uint32_t v = 0; v < n; ++v) {
      if (!(bm & (1u << v))) continue;
      for (int side = 0; side < 2; ++side) {
        bool probe_out = (side == 0);
        std::vector<FilterItem> items;
        std::vector<uint8_t> s2 = cur;
        double survival = 1.0;
        for (uint32_t e = 0; e < m; ++e) {
          if (cur[e] != kTodo) continue;
          PatternNodeId bound_end = probe_out ? edges[e].from : edges[e].to;
          PatternNodeId other = probe_out ? edges[e].to : edges[e].from;
          if (bound_end != v) continue;
          if (bm & (1u << other)) continue;  // both bound: select instead
          items.push_back({e, probe_out});
          s2[e] = probe_out ? kPendingSrc : kPendingTgt;
          survival *= model.SemijoinSurvival(edge_x(e), edge_y(e), probe_out);
        }
        if (items.empty()) continue;
        double fcost = model.FilterCost(rows, /*distinct_columns=*/1,
                                        static_cast<int>(items.size())) +
                       model.MaterializeCost(rows * survival, width);
        relax(StatusKey::Make(s2, scan), cost + fcost, rows * survival, key,
              PlanStep::Filter(std::move(items)));
      }
    }

    // Fetch-moves.
    for (uint32_t e = 0; e < m; ++e) {
      if (cur[e] != kPendingSrc && cur[e] != kPendingTgt) continue;
      bool bound_is_source = (cur[e] == kPendingSrc);
      PatternNodeId nz = bound_is_source ? edges[e].to : edges[e].from;
      // Binding nz must not orphan another pending edge waiting on nz.
      bool orphan = false;
      for (uint32_t e2 = 0; e2 < m && !orphan; ++e2) {
        if (e2 == e) continue;
        if (cur[e2] == kPendingSrc && edges[e2].to == nz) orphan = true;
        if (cur[e2] == kPendingTgt && edges[e2].from == nz) orphan = true;
      }
      if (orphan) continue;
      double survival =
          model.SemijoinSurvival(edge_x(e), edge_y(e), bound_is_source);
      double fanout = model.ExtendFanout(edge_x(e), edge_y(e), bound_is_source);
      double growth = std::max(1.0, fanout / std::max(1e-12, survival));
      std::vector<uint8_t> s2 = cur;
      s2[e] = kDone;
      const int width_after = std::popcount(bm | (1u << nz));
      relax(StatusKey::Make(s2, scan),
            cost +
                model.FetchCost(rows, edge_x(e), edge_y(e), bound_is_source) +
                model.MaterializeCost(rows * growth, width_after),
            rows * growth, key, PlanStep::Fetch(e, bound_is_source));
    }

    // Bind-moves (WCOJ): bind an unbound vertex v by k-way intersecting
    // the candidate sets of all kTodo edges between v and the bound set.
    if (allow_bind) {
      for (uint32_t v = 0; v < n; ++v) {
        if (bm & (1u << v)) continue;
        // Binding v must not orphan a pending edge waiting to bind v.
        bool orphan = false;
        for (uint32_t e = 0; e < m && !orphan; ++e) {
          if (cur[e] == kPendingSrc && edges[e].to == v) orphan = true;
          if (cur[e] == kPendingTgt && edges[e].from == v) orphan = true;
        }
        if (orphan) continue;
        std::vector<uint32_t> cons;
        std::vector<uint8_t> s2 = cur;
        double sel = 1.0;
        double min_fanout = std::numeric_limits<double>::infinity();
        LabelId dx = 0, dy = 0;
        bool dfwd = false;
        for (uint32_t e = 0; e < m; ++e) {
          if (cur[e] != kTodo) continue;
          bool fwd;
          if (edges[e].to == v && (bm & (1u << edges[e].from))) {
            fwd = true;
          } else if (edges[e].from == v && (bm & (1u << edges[e].to))) {
            fwd = false;
          } else {
            continue;
          }
          cons.push_back(e);
          s2[e] = kDone;
          sel *= model.SelectSelectivity(edge_x(e), edge_y(e));
          double f = model.ExtendFanout(edge_x(e), edge_y(e), fwd);
          if (f < min_fanout) {
            min_fanout = f;
            dx = edge_x(e);
            dy = edge_y(e);
            dfwd = fwd;
          }
        }
        // A 1-edge bind is a strictly costlier fetch; require a real
        // intersection.
        if (cons.size() < 2) continue;
        double out =
            rows * static_cast<double>(catalog.ExtentSize(labels[v])) * sel;
        const int width_after = std::popcount(bm | (1u << v));
        relax(StatusKey::Make(s2, scan),
              cost +
                  model.WcojBindCost(rows, static_cast<int>(cons.size()), dx,
                                     dy, dfwd, out) +
                  model.MaterializeCost(out, width_after),
              out, key, PlanStep::WcojBind(v, std::move(cons)));
      }
    }
  }

  if (goal_key == kNoKey) {
    // The orphan restriction can, in principle, prune every path for
    // exotic patterns; fall back to a canonical plan.
    return MakeCanonicalPlan(pattern);
  }

  std::vector<PlanStep> rev;
  double total_cost = states[goal_key].cost;
  for (uint64_t k = goal_key; k != kNoKey; k = states[k].parent) {
    rev.push_back(states[k].step);
  }
  Plan plan;
  plan.estimated_cost = total_cost;
  plan.steps.assign(rev.rbegin(), rev.rend());
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  return plan;
}

}  // namespace fgpm
