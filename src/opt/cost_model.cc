#include "opt/cost_model.h"

#include <algorithm>

namespace fgpm {

double CostModel::BaseJoinSize(LabelId x, LabelId y) const {
  return static_cast<double>(catalog_->Stats(x, y).est_pairs);
}

double CostModel::SelectSelectivity(LabelId x, LabelId y) const {
  return catalog_->Selectivity(x, y);
}

double CostModel::ExtendFanout(LabelId x, LabelId y,
                               bool bound_is_source) const {
  uint64_t bound_extent =
      bound_is_source ? catalog_->ExtentSize(x) : catalog_->ExtentSize(y);
  if (bound_extent == 0) return 0.0;
  return BaseJoinSize(x, y) / static_cast<double>(bound_extent);
}

double CostModel::SemijoinSurvival(LabelId x, LabelId y,
                                   bool bound_is_source) const {
  return std::min(1.0, ExtendFanout(x, y, bound_is_source));
}

double CostModel::AvgCentersPerRow(LabelId x, LabelId y,
                                   bool bound_is_source) const {
  const PairStats& ps = catalog_->Stats(x, y);
  uint64_t bound_extent =
      bound_is_source ? catalog_->ExtentSize(x) : catalog_->ExtentSize(y);
  if (bound_extent == 0) return 0.0;
  // Each center contributes its bound-side subcluster memberships.
  uint64_t sum = bound_is_source ? ps.sum_f : ps.sum_t;
  double avg = static_cast<double>(sum) / static_cast<double>(bound_extent);
  return std::max(avg, ps.num_centers > 0 ? 1.0 : 0.0);
}

double CostModel::HpsjBaseCost(LabelId x, LabelId y) const {
  const PairStats& ps = catalog_->Stats(x, y);
  double cluster_pages =
      ps.num_centers * (ps.avg_f_pages + ps.avg_t_pages) * params_.io_page_scan;
  return params_.io_wtable_probe + cluster_pages +
         BaseJoinSize(x, y) * params_.cpu_per_tuple;
}

double CostModel::ScanBaseCost(LabelId x) const {
  return static_cast<double>(catalog_->TablePages(x)) * params_.io_page_scan;
}

double CostModel::FilterCost(double rows, int distinct_columns,
                             int num_edges) const {
  // One W-table probe per semijoin; one graph-code retrieval per row per
  // distinct probed column (this is what a shared scan saves).
  return params_.io_wtable_probe * num_edges +
         rows * params_.io_code_probe * distinct_columns;
}

double CostModel::FetchCost(double rows, LabelId x, LabelId y,
                            bool bound_is_source) const {
  const PairStats& ps = catalog_->Stats(x, y);
  double per_center_pages =
      (bound_is_source ? ps.avg_t_pages : ps.avg_f_pages) *
      params_.io_page_scan;
  double centers = AvgCentersPerRow(x, y, bound_is_source);
  double out_rows = rows * std::max(
      1.0, ExtendFanout(x, y, bound_is_source) /
               std::max(1e-12, SemijoinSurvival(x, y, bound_is_source)));
  return rows * centers * per_center_pages + out_rows * params_.cpu_per_tuple;
}

double CostModel::SelectCost(double rows) const {
  return rows * 2.0 * params_.io_code_probe;
}

double CostModel::WcojBindCost(double rows, int k, LabelId dx, LabelId dy,
                               bool driver_forward, double rows_out) const {
  const PairStats& ps = catalog_->Stats(dx, dy);
  const double per_center_pages =
      (driver_forward ? ps.avg_t_pages : ps.avg_f_pages) *
      params_.io_page_scan;
  const double centers = AvgCentersPerRow(dx, dy, driver_forward);
  const double fanout = ExtendFanout(dx, dy, driver_forward);
  const double code_io =
      rows * params_.io_code_probe * k * params_.wcoj_memo_miss;
  const double expand_io =
      rows * centers * per_center_pages * params_.wcoj_memo_miss;
  const double intersect = rows * fanout * std::max(0, k - 1) *
                           params_.cpu_per_intersect_probe;
  return code_io + expand_io + intersect + rows_out * params_.cpu_per_tuple;
}

double CostModel::MaterializeCost(double rows, int width) const {
  double ids = params_.factorized ? std::min(width, 2) : width;
  return rows * ids * params_.cpu_per_id_copy;
}

double CostModel::ReplayCost(double rows, int arity, int residual_edges) const {
  // Per row: copy the full-width tuple out of the cached block, plus a
  // memo-discounted select-equivalent probe (two code fetches + one
  // intersection) per residual edge.
  return rows * arity * params_.cpu_per_id_copy +
         residual_edges * params_.replay_memo_miss * SelectCost(rows);
}

}  // namespace fgpm
