#include "opt/explain.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace fgpm {
namespace {

std::string StepLabel(const Pattern& pattern, const PlanStep& step) {
  const auto& edges = pattern.edges();
  auto edge_str = [&](uint32_t e) {
    return pattern.label(edges[e].from) + "->" + pattern.label(edges[e].to);
  };
  switch (step.kind) {
    case StepKind::kHpsjBase:
      return "HPSJ(" + edge_str(step.edge) + ")";
    case StepKind::kScanBase:
      return "SCAN(" + pattern.label(step.scan_node) + ")";
    case StepKind::kFilter: {
      std::string out = "FILTER(";
      for (size_t i = 0; i < step.filters.size(); ++i) {
        if (i) out += ", ";
        out += edge_str(step.filters[i].edge);
      }
      return out + ")";
    }
    case StepKind::kFetch:
      return "FETCH(" + edge_str(step.edge) + ")";
    case StepKind::kSelect:
      return "SELECT(" + edge_str(step.edge) + ")";
  }
  return "?";
}

}  // namespace

std::string PlanExplanation::ToString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-40s %14s %12s %12s\n", "step",
                "est. rows", "step cost", "cum. cost");
  out += buf;
  for (const StepEstimate& s : steps) {
    std::snprintf(buf, sizeof(buf), "%-40s %14.0f %12.1f %12.1f\n",
                  s.description.c_str(), s.rows_out, s.step_cost,
                  s.cumulative_cost);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "total: %.1f page-units, ~%.0f rows\n",
                total_cost, result_rows);
  out += buf;
  return out;
}

std::string PlanExplanation::ToStringWithActuals(const ExecStats& stats) const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-40s %14s %14s %12s %12s\n", "step",
                "est. rows", "act. rows", "step cost", "cum. cost");
  out += buf;
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepEstimate& s = steps[i];
    char actual[32];
    if (i < stats.step_rows.size()) {
      std::snprintf(actual, sizeof(actual), "%llu",
                    static_cast<unsigned long long>(stats.step_rows[i]));
    } else {
      std::snprintf(actual, sizeof(actual), "-");
    }
    std::snprintf(buf, sizeof(buf), "%-40s %14.0f %14s %12.1f %12.1f\n",
                  s.description.c_str(), s.rows_out, actual, s.step_cost,
                  s.cumulative_cost);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total: %.1f page-units, ~%.0f rows est., %llu rows actual\n",
                total_cost, result_rows,
                static_cast<unsigned long long>(stats.result_rows));
  out += buf;
  const OperatorStats& op = stats.operators;
  std::snprintf(buf, sizeof(buf),
                "materialized: %llu rows, copy bytes avoided: %llu\n",
                static_cast<unsigned long long>(op.rows_materialized),
                static_cast<unsigned long long>(op.copy_bytes_avoided));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "reach memo: %llu/%llu hits, temporal pages: %llu read, "
                "%llu written\n",
                static_cast<unsigned long long>(op.reach_memo_hits),
                static_cast<unsigned long long>(op.reach_memo_probes),
                static_cast<unsigned long long>(op.temporal_pages_read),
                static_cast<unsigned long long>(op.temporal_pages_written));
  out += buf;
  return out;
}

Result<PlanExplanation> ExplainPlan(const Pattern& pattern, const Plan& plan,
                                    const Catalog& catalog,
                                    CostParams params) {
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  CostModel model(&catalog, params);

  std::vector<LabelId> labels(pattern.num_nodes(), 0);
  bool resolvable = true;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = catalog.FindLabel(pattern.label(i));
    if (!l) {
      resolvable = false;
      break;
    }
    labels[i] = *l;
  }

  PlanExplanation out;
  if (!resolvable) {
    for (const PlanStep& step : plan.steps) {
      out.steps.push_back({StepLabel(pattern, step), 0, 0, 0});
    }
    return out;
  }

  // Replays the exact charges DP/DPS make per move — including the
  // materialization charge at the output width (popcount of the running
  // bound-node set) — so explain totals equal optimizer estimates.
  const auto& edges = pattern.edges();
  double rows = 0, cost = 0;
  uint32_t bound = 0;
  for (const PlanStep& step : plan.steps) {
    double step_cost = 0;
    switch (step.kind) {
      case StepKind::kHpsjBase: {
        LabelId x = labels[edges[step.edge].from];
        LabelId y = labels[edges[step.edge].to];
        rows = model.BaseJoinSize(x, y);
        bound |= (1u << edges[step.edge].from) | (1u << edges[step.edge].to);
        step_cost = model.HpsjBaseCost(x, y) +
                    model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kScanBase: {
        LabelId l = labels[step.scan_node];
        rows = static_cast<double>(catalog.ExtentSize(l));
        bound |= 1u << step.scan_node;
        step_cost = model.ScanBaseCost(l) +
                    model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kFilter: {
        // Distinct probed pattern nodes in this (possibly shared) scan.
        std::vector<PatternNodeId> cols;
        double survival = 1.0;
        for (const FilterItem& item : step.filters) {
          const PatternEdge& e = edges[item.edge];
          PatternNodeId bound_node = item.bound_is_source ? e.from : e.to;
          if (std::find(cols.begin(), cols.end(), bound_node) == cols.end()) {
            cols.push_back(bound_node);
          }
          survival *= model.SemijoinSurvival(labels[e.from], labels[e.to],
                                             item.bound_is_source);
        }
        step_cost = model.FilterCost(rows, static_cast<int>(cols.size()),
                                     static_cast<int>(step.filters.size()));
        rows *= survival;
        step_cost += model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kFetch: {
        const PatternEdge& e = edges[step.edge];
        LabelId x = labels[e.from], y = labels[e.to];
        step_cost = model.FetchCost(rows, x, y, step.bound_is_source);
        double survival =
            model.SemijoinSurvival(x, y, step.bound_is_source);
        double fanout = model.ExtendFanout(x, y, step.bound_is_source);
        rows *= std::max(1.0, fanout / std::max(1e-12, survival));
        bound |= 1u << (step.bound_is_source ? e.to : e.from);
        step_cost += model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kSelect: {
        const PatternEdge& e = edges[step.edge];
        step_cost = model.SelectCost(rows);
        rows *= model.SelectSelectivity(labels[e.from], labels[e.to]);
        step_cost += model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
    }
    cost += step_cost;
    out.steps.push_back({StepLabel(pattern, step), rows, step_cost, cost});
  }
  out.total_cost = cost;
  out.result_rows = rows;
  return out;
}

}  // namespace fgpm
