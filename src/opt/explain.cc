#include "opt/explain.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace fgpm {
namespace {

// Cost-model error as "estimated / actual". The two degenerate cases
// the naive division mishandles: a step the execution never reached
// (no actual at all) renders "-", and an actual of zero rows renders
// "1.00x" when the estimate also rounds to zero (both agree on
// "empty") or "inf" when the model predicted survivors that never
// materialized.
void FormatErrRatio(char* buf, size_t n, double est, uint64_t act,
                    bool executed) {
  if (!executed) {
    std::snprintf(buf, n, "-");
  } else if (act == 0) {
    std::snprintf(buf, n, est < 0.5 ? "1.00x" : "inf");
  } else {
    std::snprintf(buf, n, "%.2fx", est / static_cast<double>(act));
  }
}

}  // namespace

std::string PlanExplanation::ToString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-40s %14s %12s %12s\n", "step",
                "est. rows", "step cost", "cum. cost");
  out += buf;
  for (const StepEstimate& s : steps) {
    std::snprintf(buf, sizeof(buf), "%-40s %14.0f %12.1f %12.1f\n",
                  s.description.c_str(), s.rows_out, s.step_cost,
                  s.cumulative_cost);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "total: %.1f page-units, ~%.0f rows\n",
                total_cost, result_rows);
  out += buf;
  return out;
}

std::string PlanExplanation::ToStringWithActuals(const ExecStats& stats) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-40s %14s %14s %8s %12s %12s %12s\n",
                "step", "est. rows", "act. rows", "err", "time (ms)",
                "step cost", "cum. cost");
  out += buf;
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepEstimate& s = steps[i];
    // step_rows / step_wall_ms / step_absorbed are aligned and only as
    // long as the execution got (an emptied intermediate skips the
    // tail); missing entries render "-" across the actual columns.
    const bool executed = i < stats.step_rows.size();
    const bool absorbed =
        i < stats.step_absorbed.size() && stats.step_absorbed[i] != 0;
    char actual[32], err[32], time_ms[32];
    if (executed) {
      std::snprintf(actual, sizeof(actual), "%llu",
                    static_cast<unsigned long long>(stats.step_rows[i]));
    } else {
      std::snprintf(actual, sizeof(actual), "-");
    }
    FormatErrRatio(err, sizeof(err), s.rows_out,
                   executed ? stats.step_rows[i] : 0, executed);
    if (absorbed || !executed || i >= stats.step_wall_ms.size()) {
      // An absorbed select's time is inside its fetch's entry.
      std::snprintf(time_ms, sizeof(time_ms), "-");
    } else {
      std::snprintf(time_ms, sizeof(time_ms), "%.3f", stats.step_wall_ms[i]);
    }
    std::string desc = s.description;
    if (absorbed) desc += " [fused]";
    std::snprintf(buf, sizeof(buf), "%-40s %14.0f %14s %8s %12s %12.1f %12.1f\n",
                  desc.c_str(), s.rows_out, actual, err, time_ms, s.step_cost,
                  s.cumulative_cost);
    out += buf;
    if (s.is_bind) {
      // Per-vertex candidate sizes: estimated vs actual surviving
      // candidates per input row for this bind's k-way intersection.
      // An unreached step or an emptied input renders "-" (zero-row
      // divide guard).
      char act_fan[32];
      const bool have_in = i > 0 && i - 1 < stats.step_rows.size() &&
                           stats.step_rows[i - 1] != 0;
      if (executed && have_in) {
        std::snprintf(act_fan, sizeof(act_fan), "%.2f",
                      static_cast<double>(stats.step_rows[i]) /
                          static_cast<double>(stats.step_rows[i - 1]));
      } else {
        std::snprintf(act_fan, sizeof(act_fan), "-");
      }
      std::snprintf(buf, sizeof(buf),
                    "  cands/row: est %.2f, act %s\n", s.est_fanout, act_fan);
      out += buf;
    }
  }
  char total_err[32];
  FormatErrRatio(total_err, sizeof(total_err), result_rows, stats.result_rows,
                 true);
  std::snprintf(buf, sizeof(buf),
                "total: %.1f page-units, ~%.0f rows est., %llu rows actual "
                "(err %s), %.3f ms (optimize %.3f ms)\n",
                total_cost, result_rows,
                static_cast<unsigned long long>(stats.result_rows), total_err,
                stats.elapsed_ms, stats.optimize_ms);
  out += buf;
  const OperatorStats& op = stats.operators;
  std::snprintf(buf, sizeof(buf),
                "materialized: %llu rows, copy bytes avoided: %llu\n",
                static_cast<unsigned long long>(op.rows_materialized),
                static_cast<unsigned long long>(op.copy_bytes_avoided));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "reach memo: %llu/%llu hits, temporal pages: %llu read, "
                "%llu written\n",
                static_cast<unsigned long long>(op.reach_memo_hits),
                static_cast<unsigned long long>(op.reach_memo_probes),
                static_cast<unsigned long long>(op.temporal_pages_read),
                static_cast<unsigned long long>(op.temporal_pages_written));
  out += buf;
  const bool any_bind =
      std::any_of(steps.begin(), steps.end(),
                  [](const StepEstimate& s) { return s.is_bind; });
  if (any_bind || op.kway_intersect_probes != 0 || op.wcoj_reach_pruned != 0) {
    std::snprintf(buf, sizeof(buf),
                  "wcoj: %llu/%llu k-way probes survived, %llu candidates "
                  "pruned by reach\n",
                  static_cast<unsigned long long>(op.kway_intersect_hits),
                  static_cast<unsigned long long>(op.kway_intersect_probes),
                  static_cast<unsigned long long>(op.wcoj_reach_pruned));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "buffer pool: %llu hits, %llu misses; code cache: %llu hits, "
                "%llu misses; page reads: %llu\n",
                static_cast<unsigned long long>(stats.io.pool_hits),
                static_cast<unsigned long long>(stats.io.pool_misses),
                static_cast<unsigned long long>(stats.io.code_cache_hits),
                static_cast<unsigned long long>(stats.io.code_cache_misses),
                static_cast<unsigned long long>(stats.io.page_reads));
  out += buf;
  return out;
}

Result<PlanExplanation> ExplainPlan(const Pattern& pattern, const Plan& plan,
                                    const Catalog& catalog,
                                    CostParams params) {
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  CostModel model(&catalog, params);

  std::vector<LabelId> labels(pattern.num_nodes(), 0);
  bool resolvable = true;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = catalog.FindLabel(pattern.label(i));
    if (!l) {
      resolvable = false;
      break;
    }
    labels[i] = *l;
  }

  PlanExplanation out;
  if (!resolvable) {
    for (const PlanStep& step : plan.steps) {
      out.steps.push_back({StepLabel(pattern, step), 0, 0, 0});
    }
    return out;
  }

  // Replays the exact charges DP/DPS make per move — including the
  // materialization charge at the output width (popcount of the running
  // bound-node set) — so explain totals equal optimizer estimates.
  const auto& edges = pattern.edges();
  double rows = 0, cost = 0;
  uint32_t bound = 0;
  for (const PlanStep& step : plan.steps) {
    double step_cost = 0;
    double est_fanout = 0;
    bool is_bind = false;
    switch (step.kind) {
      case StepKind::kHpsjBase: {
        LabelId x = labels[edges[step.edge].from];
        LabelId y = labels[edges[step.edge].to];
        rows = model.BaseJoinSize(x, y);
        bound |= (1u << edges[step.edge].from) | (1u << edges[step.edge].to);
        step_cost = model.HpsjBaseCost(x, y) +
                    model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kScanBase: {
        LabelId l = labels[step.scan_node];
        rows = static_cast<double>(catalog.ExtentSize(l));
        bound |= 1u << step.scan_node;
        step_cost = model.ScanBaseCost(l) +
                    model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kFilter: {
        // Distinct probed pattern nodes in this (possibly shared) scan.
        std::vector<PatternNodeId> cols;
        double survival = 1.0;
        for (const FilterItem& item : step.filters) {
          const PatternEdge& e = edges[item.edge];
          PatternNodeId bound_node = item.bound_is_source ? e.from : e.to;
          if (std::find(cols.begin(), cols.end(), bound_node) == cols.end()) {
            cols.push_back(bound_node);
          }
          survival *= model.SemijoinSurvival(labels[e.from], labels[e.to],
                                             item.bound_is_source);
        }
        step_cost = model.FilterCost(rows, static_cast<int>(cols.size()),
                                     static_cast<int>(step.filters.size()));
        rows *= survival;
        step_cost += model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kFetch: {
        const PatternEdge& e = edges[step.edge];
        LabelId x = labels[e.from], y = labels[e.to];
        step_cost = model.FetchCost(rows, x, y, step.bound_is_source);
        double survival =
            model.SemijoinSurvival(x, y, step.bound_is_source);
        double fanout = model.ExtendFanout(x, y, step.bound_is_source);
        rows *= std::max(1.0, fanout / std::max(1e-12, survival));
        bound |= 1u << (step.bound_is_source ? e.to : e.from);
        step_cost += model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kSelect: {
        const PatternEdge& e = edges[step.edge];
        step_cost = model.SelectCost(rows);
        rows *= model.SelectSelectivity(labels[e.from], labels[e.to]);
        step_cost += model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
      case StepKind::kWcojBind: {
        // Mirrors the DP/DPS bind-move charge exactly: selectivity is
        // the product over all consumed edges, the driver is the
        // minimum-fanout constraint.
        double sel = 1.0;
        double min_fanout = std::numeric_limits<double>::infinity();
        LabelId dx = 0, dy = 0;
        bool dfwd = false;
        for (uint32_t e : step.wcoj_edges) {
          const PatternEdge& pe = edges[e];
          bool fwd = (pe.to == step.scan_node);
          LabelId x = labels[pe.from], y = labels[pe.to];
          sel *= model.SelectSelectivity(x, y);
          double f = model.ExtendFanout(x, y, fwd);
          if (f < min_fanout) {
            min_fanout = f;
            dx = x;
            dy = y;
            dfwd = fwd;
          }
        }
        const double rows_in = rows;
        est_fanout =
            static_cast<double>(catalog.ExtentSize(labels[step.scan_node])) *
            sel;
        is_bind = true;
        rows = rows_in * est_fanout;
        bound |= 1u << step.scan_node;
        step_cost =
            model.WcojBindCost(rows_in,
                               static_cast<int>(step.wcoj_edges.size()), dx,
                               dy, dfwd, rows) +
            model.MaterializeCost(rows, std::popcount(bound));
        break;
      }
    }
    cost += step_cost;
    out.steps.push_back(
        {StepLabel(pattern, step), rows, step_cost, cost, est_fanout, is_bind});
  }
  out.total_cost = cost;
  out.result_rows = rows;
  return out;
}

}  // namespace fgpm
