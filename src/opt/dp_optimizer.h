// DP — R-join order selection (Section 4.1). Dynamic programming over
// subsets of pattern edges producing a left-deep plan in which every
// R-join against a base table executes Filter immediately followed by
// Fetch (HPSJ+ as one unit), and an edge whose labels are both bound is
// a select (self R-join, Eq. 5).
#ifndef FGPM_OPT_DP_OPTIMIZER_H_
#define FGPM_OPT_DP_OPTIMIZER_H_

#include "common/status.h"
#include "exec/plan.h"
#include "gdb/catalog.h"
#include "opt/cost_model.h"
#include "query/pattern.h"

namespace fgpm {

// Cost-based DP plan. Falls back to MakeCanonicalPlan when some pattern
// label does not exist in the catalog (the result is empty either way).
// Under kWcoj/kHybrid the DP additionally considers WCOJ bind-moves
// (consuming >= 2 edges into one new vertex at once) when the pattern
// has a cyclic core; kBinary reproduces the original search exactly.
Result<Plan> OptimizeDp(const Pattern& pattern, const Catalog& catalog,
                        CostParams params = {},
                        JoinStrategy strategy = JoinStrategy::kBinary);

// Deterministic non-cost-based plan: HPSJ on the first edge, then each
// remaining edge (in a connectivity-respecting order) as filter+fetch or
// select. Used as a fallback and as the "no optimizer" baseline.
Result<Plan> MakeCanonicalPlan(const Pattern& pattern);

}  // namespace fgpm

#endif  // FGPM_OPT_DP_OPTIMIZER_H_
