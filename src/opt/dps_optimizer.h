// DPS — interleaving R-joins with R-semijoins (Section 4.2). Dynamic
// programming over statuses that track, per pattern edge, whether it is
// untouched, filtered (pending fetch, with the probed side), or fully
// evaluated. Moves mirror the paper's:
//   * R-join-move   — HPSJ between two base tables, only from the start;
//   * base-scan     — open with a single base table (Figure 3's S1 shows
//                     DPS plans that R-semijoin a base table first);
//   * Filter-move   — add R-semijoins for ALL eligible edges probing one
//                     label column on one side, sharing a single scan and
//                     one getCenters per row (Remark 3.1);
//   * Fetch-move    — complete a pending R-join via the cluster index;
//   * select-move   — evaluate an edge whose labels are both bound;
//   * bind-move     — WCOJ: bind one unbound vertex by intersecting the
//                     candidate sets of >= 2 edges into the bound set
//                     (offered only under kWcoj/kHybrid and only when
//                     the pattern has a cyclic core, so acyclic patterns
//                     keep pure binary plans).
// The search minimizes estimated I/O cost (Dijkstra over the status DAG).
#ifndef FGPM_OPT_DPS_OPTIMIZER_H_
#define FGPM_OPT_DPS_OPTIMIZER_H_

#include "common/status.h"
#include "exec/plan.h"
#include "gdb/catalog.h"
#include "opt/cost_model.h"
#include "query/pattern.h"

namespace fgpm {

Result<Plan> OptimizeDps(const Pattern& pattern, const Catalog& catalog,
                         CostParams params = {},
                         JoinStrategy strategy = JoinStrategy::kBinary);

}  // namespace fgpm

#endif  // FGPM_OPT_DPS_OPTIMIZER_H_
