// Plan explanation: replays the cost model (Section 4) over any valid
// plan, producing per-step cardinality and cost estimates — the EXPLAIN
// output of the engine. One implementation serves DP, DPS and canonical
// plans, so estimates are always comparable across optimizers.
#ifndef FGPM_OPT_EXPLAIN_H_
#define FGPM_OPT_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/engine.h"
#include "exec/plan.h"
#include "gdb/catalog.h"
#include "opt/cost_model.h"
#include "query/pattern.h"

namespace fgpm {

struct StepEstimate {
  std::string description;   // e.g. "FETCH(C->D)"
  double rows_out = 0;        // estimated rows after the step
  double step_cost = 0;       // estimated cost of the step (page units)
  double cumulative_cost = 0;
  // WCOJ bind steps only: estimated surviving candidates per input row
  // (the k-way intersection size). ToStringWithActuals compares this
  // against the actual rows_out / rows_in ratio per bound vertex.
  double est_fanout = 0;
  bool is_bind = false;
};

struct PlanExplanation {
  std::vector<StepEstimate> steps;
  double total_cost = 0;
  double result_rows = 0;

  // Multi-line human-readable rendering.
  std::string ToString() const;

  // EXPLAIN ANALYZE rendering: estimates side by side with an execution
  // of the same plan — per-step estimated vs actual rows with the
  // cost-model error ratio (est/act, divide-guarded: "-" for steps the
  // execution never reached, "inf" when the model predicted survivors
  // but none materialized), per-step wall time (ExecStats::step_wall_ms;
  // a select absorbed into a fused fetch shows "[fused]" and "-" since
  // its time is inside the fetch's entry), followed by the
  // materialization / memo / temporal-I/O and buffer-pool / code-cache
  // counters. Makes a plan regression diagnosable from one dump.
  std::string ToStringWithActuals(const ExecStats& stats) const;
};

// Requires plan.Validate(pattern).ok() and all pattern labels present in
// the catalog (missing labels yield zero estimates, not an error).
Result<PlanExplanation> ExplainPlan(const Pattern& pattern, const Plan& plan,
                                    const Catalog& catalog,
                                    CostParams params = {});

}  // namespace fgpm

#endif  // FGPM_OPT_EXPLAIN_H_
