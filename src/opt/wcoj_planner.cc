#include "opt/wcoj_planner.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "opt/dp_optimizer.h"

namespace fgpm {

PatternCore FindCyclicCore(const Pattern& pattern) {
  PatternCore core;
  const auto& edges = pattern.edges();
  const size_t n = pattern.num_nodes();
  const size_t m = edges.size();
  std::vector<uint32_t> degree(n, 0);
  std::vector<uint8_t> edge_alive(m, 1);
  for (const PatternEdge& e : edges) {
    ++degree[e.from];
    ++degree[e.to];
  }
  // Peel degree <= 1 vertices until fixpoint; self-loops and duplicate
  // edges are rejected by Pattern, so degrees are simple counts.
  bool changed = true;
  std::vector<uint8_t> peeled(n, 0);
  while (changed) {
    changed = false;
    for (size_t v = 0; v < n; ++v) {
      if (peeled[v] || degree[v] > 1) continue;
      peeled[v] = 1;
      changed = true;
      for (size_t e = 0; e < m; ++e) {
        if (!edge_alive[e]) continue;
        if (edges[e].from == v || edges[e].to == v) {
          edge_alive[e] = 0;
          --degree[edges[e].from];
          --degree[edges[e].to];
        }
      }
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (!peeled[v]) core.core_nodes.push_back(static_cast<PatternNodeId>(v));
  }
  for (size_t e = 0; e < m; ++e) {
    if (edge_alive[e]) {
      core.core_edges.push_back(static_cast<uint32_t>(e));
    } else {
      core.appendage_edges.push_back(static_cast<uint32_t>(e));
    }
  }
  return core;
}

std::vector<PatternNodeId> OrderWcojVertices(const Pattern& pattern,
                                             const Catalog& catalog) {
  const auto& edges = pattern.edges();
  const size_t n = pattern.num_nodes();
  const PatternCore core = FindCyclicCore(pattern);
  std::vector<uint8_t> in_core(n, 0);
  for (PatternNodeId v : core.core_nodes) in_core[v] = 1;

  std::vector<uint32_t> degree(n, 0);
  for (const PatternEdge& e : edges) {
    ++degree[e.from];
    ++degree[e.to];
  }
  std::vector<double> extent(n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    auto l = catalog.FindLabel(pattern.label(v));
    extent[v] = l ? static_cast<double>(catalog.ExtentSize(*l)) : 0.0;
  }

  std::vector<PatternNodeId> order;
  std::vector<uint8_t> chosen(n, 0);
  // Start: max-degree core vertex (max-degree overall when acyclic);
  // smaller extent, then smaller id break ties deterministically.
  size_t start = 0;
  bool have = false;
  for (size_t v = 0; v < n; ++v) {
    if (core.has_core() && !in_core[v]) continue;
    if (!have || degree[v] > degree[start] ||
        (degree[v] == degree[start] && extent[v] < extent[start])) {
      start = v;
      have = true;
    }
  }
  order.push_back(static_cast<PatternNodeId>(start));
  chosen[start] = 1;

  while (order.size() < n) {
    size_t best = n;
    uint32_t best_conn = 0;
    for (size_t v = 0; v < n; ++v) {
      if (chosen[v]) continue;
      uint32_t conn = 0;
      for (const PatternEdge& e : edges) {
        if ((e.from == v && chosen[e.to]) || (e.to == v && chosen[e.from])) {
          ++conn;
        }
      }
      if (conn == 0) continue;  // connected extension only
      auto better = [&] {
        if (best == n) return true;
        if (in_core[v] != in_core[best]) return in_core[v] > in_core[best];
        if (conn != best_conn) return conn > best_conn;
        if (degree[v] != degree[best]) return degree[v] > degree[best];
        if (extent[v] != extent[best]) return extent[v] < extent[best];
        return v < best;
      };
      if (better()) {
        best = v;
        best_conn = conn;
      }
    }
    FGPM_CHECK(best < n);  // Pattern::Validate guarantees connectivity
    order.push_back(static_cast<PatternNodeId>(best));
    chosen[best] = 1;
  }
  return order;
}

Result<Plan> MakeWcojPlan(const Pattern& pattern, const Catalog& catalog,
                          CostParams params) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.num_edges() == 0) return Plan{};
  std::vector<LabelId> labels(pattern.num_nodes());
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = catalog.FindLabel(pattern.label(i));
    if (!l) return MakeCanonicalPlan(pattern);
    labels[i] = *l;
  }

  const auto& edges = pattern.edges();
  const std::vector<PatternNodeId> order = OrderWcojVertices(pattern, catalog);
  CostModel model(&catalog, params);

  Plan plan;
  plan.steps.push_back(PlanStep::ScanBase(order[0]));
  double rows = static_cast<double>(catalog.ExtentSize(labels[order[0]]));
  plan.estimated_cost =
      model.ScanBaseCost(labels[order[0]]) + model.MaterializeCost(rows, 1);

  std::vector<uint8_t> bound(pattern.num_nodes(), 0);
  bound[order[0]] = 1;
  std::vector<uint8_t> consumed(edges.size(), 0);
  for (size_t i = 1; i < order.size(); ++i) {
    const PatternNodeId v = order[i];
    std::vector<uint32_t> cons;
    double sel = 1.0;
    double min_fanout = std::numeric_limits<double>::infinity();
    LabelId dx = 0, dy = 0;
    bool dfwd = false;
    for (uint32_t e = 0; e < edges.size(); ++e) {
      if (consumed[e]) continue;
      bool fwd;
      if (edges[e].to == v && bound[edges[e].from]) {
        fwd = true;
      } else if (edges[e].from == v && bound[edges[e].to]) {
        fwd = false;
      } else {
        continue;
      }
      cons.push_back(e);
      consumed[e] = 1;
      const LabelId lx = labels[edges[e].from], ly = labels[edges[e].to];
      sel *= model.SelectSelectivity(lx, ly);
      const double f = model.ExtendFanout(lx, ly, fwd);
      if (f < min_fanout) {
        min_fanout = f;
        dx = lx;
        dy = ly;
        dfwd = fwd;
      }
    }
    FGPM_CHECK(!cons.empty());  // connected order: >= 1 edge into bound set
    const double out =
        rows * static_cast<double>(catalog.ExtentSize(labels[v])) * sel;
    plan.estimated_cost +=
        model.WcojBindCost(rows, static_cast<int>(cons.size()), dx, dy, dfwd,
                           out) +
        model.MaterializeCost(out, static_cast<int>(i) + 1);
    rows = out;
    bound[v] = 1;
    plan.steps.push_back(PlanStep::WcojBind(v, std::move(cons)));
  }
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  return plan;
}

}  // namespace fgpm
