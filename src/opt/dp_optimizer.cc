#include "opt/dp_optimizer.h"

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace fgpm {
namespace {

constexpr uint32_t kNoEdge = 0xffffffffu;

// Pattern labels resolved against the catalog; nullopt when absent.
std::optional<std::vector<LabelId>> ResolveLabels(const Pattern& pattern,
                                                  const Catalog& catalog) {
  std::vector<LabelId> out(pattern.num_nodes());
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = catalog.FindLabel(pattern.label(i));
    if (!l) return std::nullopt;
    out[i] = *l;
  }
  return out;
}

}  // namespace

Result<Plan> MakeCanonicalPlan(const Pattern& pattern) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  Plan plan;
  if (pattern.num_edges() == 0) return plan;

  const auto& edges = pattern.edges();
  std::vector<bool> bound(pattern.num_nodes(), false);
  std::vector<bool> used(edges.size(), false);

  plan.steps.push_back(PlanStep::HpsjBase(0));
  bound[edges[0].from] = bound[edges[0].to] = true;
  used[0] = true;

  for (size_t done = 1; done < edges.size(); ++done) {
    // Pick any unused edge touching a bound label (exists: connected).
    uint32_t pick = kNoEdge;
    for (uint32_t e = 0; e < edges.size(); ++e) {
      if (!used[e]) {
        if (bound[edges[e].from] || bound[edges[e].to]) {
          pick = e;
          break;
        }
      }
    }
    FGPM_CHECK(pick != kNoEdge);
    used[pick] = true;
    bool bf = bound[edges[pick].from], bt = bound[edges[pick].to];
    if (bf && bt) {
      plan.steps.push_back(PlanStep::Select(pick));
    } else {
      bool bound_is_source = bf;
      plan.steps.push_back(PlanStep::Filter({{pick, bound_is_source}}));
      plan.steps.push_back(PlanStep::Fetch(pick, bound_is_source));
      bound[bound_is_source ? edges[pick].to : edges[pick].from] = true;
    }
  }
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  return plan;
}

Result<Plan> OptimizeDp(const Pattern& pattern, const Catalog& catalog,
                        CostParams params) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.num_edges() == 0) return Plan{};
  if (pattern.num_edges() > 20) {
    return Status::InvalidArgument("pattern too large for exact DP");
  }
  auto labels = ResolveLabels(pattern, catalog);
  if (!labels) return MakeCanonicalPlan(pattern);

  CostModel model(&catalog, params);
  const auto& edges = pattern.edges();
  const uint32_t m = static_cast<uint32_t>(edges.size());
  const uint32_t full = (1u << m) - 1;

  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double rows = 0;
    uint32_t parent_mask = 0;
    uint32_t via_edge = kNoEdge;
    // How the edge was applied: 0 HPSJ base, 1 filter+fetch (src bound),
    // 2 filter+fetch (tgt bound), 3 select.
    uint8_t how = 0;
  };
  std::vector<State> dp(1u << m);

  auto bound_mask_of = [&](uint32_t mask) {
    uint32_t bm = 0;
    for (uint32_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) {
        bm |= (1u << edges[e].from) | (1u << edges[e].to);
      }
    }
    return bm;
  };

  // Initial states: one HPSJ per edge. Every step also charges writing
  // its output rows into temporal storage at the output width (the
  // factorized representation caps the charged width at the delta pair).
  for (uint32_t e = 0; e < m; ++e) {
    LabelId x = (*labels)[edges[e].from], y = (*labels)[edges[e].to];
    State& s = dp[1u << e];
    s.rows = model.BaseJoinSize(x, y);
    s.cost = model.HpsjBaseCost(x, y) + model.MaterializeCost(s.rows, 2);
    s.parent_mask = 0;
    s.via_edge = e;
    s.how = 0;
  }

  // Expand masks in increasing popcount order (any increasing-mask order
  // works since transitions only add edges).
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (!std::isfinite(dp[mask].cost)) continue;
    uint32_t bm = bound_mask_of(mask);
    for (uint32_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) continue;
      bool bf = bm & (1u << edges[e].from), bt = bm & (1u << edges[e].to);
      if (!bf && !bt) continue;  // left-deep: must touch the current table
      LabelId x = (*labels)[edges[e].from], y = (*labels)[edges[e].to];
      const int width = std::popcount(bm);
      double cost, rows;
      uint8_t how;
      if (bf && bt) {
        rows = dp[mask].rows * model.SelectSelectivity(x, y);
        cost = dp[mask].cost + model.SelectCost(dp[mask].rows) +
               model.MaterializeCost(rows, width);
        how = 3;
      } else {
        bool bound_is_source = bf;
        double survival = model.SemijoinSurvival(x, y, bound_is_source);
        double filtered = dp[mask].rows * survival;
        rows = dp[mask].rows * model.ExtendFanout(x, y, bound_is_source);
        cost = dp[mask].cost + model.FilterCost(dp[mask].rows, 1, 1) +
               model.MaterializeCost(filtered, width) +
               model.FetchCost(filtered, x, y, bound_is_source) +
               model.MaterializeCost(rows, width + 1);
        how = bound_is_source ? 1 : 2;
      }
      uint32_t next = mask | (1u << e);
      if (cost < dp[next].cost) {
        dp[next] = {cost, rows, mask, e, how};
      }
    }
  }

  FGPM_CHECK(std::isfinite(dp[full].cost));

  // Reconstruct the left-deep plan.
  std::vector<PlanStep> rev;
  for (uint32_t mask = full; mask != 0; mask = dp[mask].parent_mask) {
    const State& s = dp[mask];
    switch (s.how) {
      case 0:
        rev.push_back(PlanStep::HpsjBase(s.via_edge));
        break;
      case 1:
      case 2: {
        bool bound_is_source = (s.how == 1);
        rev.push_back(PlanStep::Fetch(s.via_edge, bound_is_source));
        rev.push_back(PlanStep::Filter({{s.via_edge, bound_is_source}}));
        break;
      }
      default:
        rev.push_back(PlanStep::Select(s.via_edge));
        break;
    }
  }
  Plan plan;
  plan.estimated_cost = dp[full].cost;
  plan.steps.assign(rev.rbegin(), rev.rend());
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  return plan;
}

}  // namespace fgpm
