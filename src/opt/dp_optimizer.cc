#include "opt/dp_optimizer.h"

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "opt/wcoj_planner.h"

namespace fgpm {
namespace {

constexpr uint32_t kNoEdge = 0xffffffffu;

// Pattern labels resolved against the catalog; nullopt when absent.
std::optional<std::vector<LabelId>> ResolveLabels(const Pattern& pattern,
                                                  const Catalog& catalog) {
  std::vector<LabelId> out(pattern.num_nodes());
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = catalog.FindLabel(pattern.label(i));
    if (!l) return std::nullopt;
    out[i] = *l;
  }
  return out;
}

}  // namespace

Result<Plan> MakeCanonicalPlan(const Pattern& pattern) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  Plan plan;
  if (pattern.num_edges() == 0) return plan;

  const auto& edges = pattern.edges();
  std::vector<bool> bound(pattern.num_nodes(), false);
  std::vector<bool> used(edges.size(), false);

  plan.steps.push_back(PlanStep::HpsjBase(0));
  bound[edges[0].from] = bound[edges[0].to] = true;
  used[0] = true;

  for (size_t done = 1; done < edges.size(); ++done) {
    // Pick any unused edge touching a bound label (exists: connected).
    uint32_t pick = kNoEdge;
    for (uint32_t e = 0; e < edges.size(); ++e) {
      if (!used[e]) {
        if (bound[edges[e].from] || bound[edges[e].to]) {
          pick = e;
          break;
        }
      }
    }
    FGPM_CHECK(pick != kNoEdge);
    used[pick] = true;
    bool bf = bound[edges[pick].from], bt = bound[edges[pick].to];
    if (bf && bt) {
      plan.steps.push_back(PlanStep::Select(pick));
    } else {
      bool bound_is_source = bf;
      plan.steps.push_back(PlanStep::Filter({{pick, bound_is_source}}));
      plan.steps.push_back(PlanStep::Fetch(pick, bound_is_source));
      bound[bound_is_source ? edges[pick].to : edges[pick].from] = true;
    }
  }
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  return plan;
}

Result<Plan> OptimizeDp(const Pattern& pattern, const Catalog& catalog,
                        CostParams params, JoinStrategy strategy) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  if (pattern.num_edges() == 0) return Plan{};
  if (pattern.num_edges() > 20) {
    return Status::InvalidArgument("pattern too large for exact DP");
  }
  auto labels = ResolveLabels(pattern, catalog);
  if (!labels) return MakeCanonicalPlan(pattern);

  CostModel model(&catalog, params);
  const auto& edges = pattern.edges();
  const uint32_t m = static_cast<uint32_t>(edges.size());
  const uint32_t n = pattern.num_nodes();
  const uint32_t full = (1u << m) - 1;
  const bool allow_bind =
      strategy != JoinStrategy::kBinary && FindCyclicCore(pattern).has_core();

  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double rows = 0;
    uint32_t parent_mask = 0;
    uint32_t via_edge = kNoEdge;
    // How the edge was applied: 0 HPSJ base, 1 filter+fetch (src bound),
    // 2 filter+fetch (tgt bound), 3 select, 4 WCOJ bind (via_edge is the
    // bound VERTEX; consumed edges = mask ^ parent_mask).
    uint8_t how = 0;
  };
  std::vector<State> dp(1u << m);

  auto bound_mask_of = [&](uint32_t mask) {
    uint32_t bm = 0;
    for (uint32_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) {
        bm |= (1u << edges[e].from) | (1u << edges[e].to);
      }
    }
    return bm;
  };

  // Initial states: one HPSJ per edge. Every step also charges writing
  // its output rows into temporal storage at the output width (the
  // factorized representation caps the charged width at the delta pair).
  for (uint32_t e = 0; e < m; ++e) {
    LabelId x = (*labels)[edges[e].from], y = (*labels)[edges[e].to];
    State& s = dp[1u << e];
    s.rows = model.BaseJoinSize(x, y);
    s.cost = model.HpsjBaseCost(x, y) + model.MaterializeCost(s.rows, 2);
    s.parent_mask = 0;
    s.via_edge = e;
    s.how = 0;
  }

  // Expand masks in increasing popcount order (any increasing-mask order
  // works since transitions only add edges).
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (!std::isfinite(dp[mask].cost)) continue;
    uint32_t bm = bound_mask_of(mask);
    for (uint32_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) continue;
      bool bf = bm & (1u << edges[e].from), bt = bm & (1u << edges[e].to);
      if (!bf && !bt) continue;  // left-deep: must touch the current table
      LabelId x = (*labels)[edges[e].from], y = (*labels)[edges[e].to];
      const int width = std::popcount(bm);
      double cost, rows;
      uint8_t how;
      if (bf && bt) {
        rows = dp[mask].rows * model.SelectSelectivity(x, y);
        cost = dp[mask].cost + model.SelectCost(dp[mask].rows) +
               model.MaterializeCost(rows, width);
        how = 3;
      } else {
        bool bound_is_source = bf;
        double survival = model.SemijoinSurvival(x, y, bound_is_source);
        double filtered = dp[mask].rows * survival;
        rows = dp[mask].rows * model.ExtendFanout(x, y, bound_is_source);
        cost = dp[mask].cost + model.FilterCost(dp[mask].rows, 1, 1) +
               model.MaterializeCost(filtered, width) +
               model.FetchCost(filtered, x, y, bound_is_source) +
               model.MaterializeCost(rows, width + 1);
        how = bound_is_source ? 1 : 2;
      }
      uint32_t next = mask | (1u << e);
      if (cost < dp[next].cost) {
        dp[next] = {cost, rows, mask, e, how};
      }
    }

    // WCOJ bind-moves: bind one unbound vertex v, consuming every
    // remaining edge between v and the bound set in a single k-way
    // intersection. Transitions only add edge bits, so next > mask and
    // the increasing-mask sweep still visits states in a valid order.
    if (allow_bind) {
      for (uint32_t v = 0; v < n; ++v) {
        if (bm & (1u << v)) continue;
        uint32_t consumed = 0;
        double sel = 1.0;
        double min_fanout = std::numeric_limits<double>::infinity();
        LabelId dx = 0, dy = 0;
        bool dfwd = false;
        int k = 0;
        for (uint32_t e = 0; e < m; ++e) {
          if (mask & (1u << e)) continue;
          bool fwd;
          if (edges[e].to == v && (bm & (1u << edges[e].from))) {
            fwd = true;
          } else if (edges[e].from == v && (bm & (1u << edges[e].to))) {
            fwd = false;
          } else {
            continue;
          }
          consumed |= 1u << e;
          ++k;
          LabelId x = (*labels)[edges[e].from], y = (*labels)[edges[e].to];
          sel *= model.SelectSelectivity(x, y);
          double f = model.ExtendFanout(x, y, fwd);
          if (f < min_fanout) {
            min_fanout = f;
            dx = x;
            dy = y;
            dfwd = fwd;
          }
        }
        if (k < 2) continue;  // a 1-edge bind is a costlier fetch
        double out = dp[mask].rows *
                     static_cast<double>(catalog.ExtentSize((*labels)[v])) *
                     sel;
        const int width_after = std::popcount(bm | (1u << v));
        double cost = dp[mask].cost +
                      model.WcojBindCost(dp[mask].rows, k, dx, dy, dfwd, out) +
                      model.MaterializeCost(out, width_after);
        uint32_t next = mask | consumed;
        if (cost < dp[next].cost) {
          dp[next] = {cost, out, mask, v, 4};
        }
      }
    }
  }

  FGPM_CHECK(std::isfinite(dp[full].cost));

  // Reconstruct the left-deep plan.
  std::vector<PlanStep> rev;
  for (uint32_t mask = full; mask != 0; mask = dp[mask].parent_mask) {
    const State& s = dp[mask];
    switch (s.how) {
      case 0:
        rev.push_back(PlanStep::HpsjBase(s.via_edge));
        break;
      case 1:
      case 2: {
        bool bound_is_source = (s.how == 1);
        rev.push_back(PlanStep::Fetch(s.via_edge, bound_is_source));
        rev.push_back(PlanStep::Filter({{s.via_edge, bound_is_source}}));
        break;
      }
      case 4: {
        std::vector<uint32_t> cons;
        uint32_t diff = mask ^ s.parent_mask;
        for (uint32_t e = 0; e < m; ++e) {
          if (diff & (1u << e)) cons.push_back(e);
        }
        rev.push_back(PlanStep::WcojBind(
            static_cast<PatternNodeId>(s.via_edge), std::move(cons)));
        break;
      }
      default:
        rev.push_back(PlanStep::Select(s.via_edge));
        break;
    }
  }
  Plan plan;
  plan.estimated_cost = dp[full].cost;
  plan.steps.assign(rev.rbegin(), rev.rend());
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));
  return plan;
}

}  // namespace fgpm
