#include "gdb/database.h"

#include <algorithm>
#include <fstream>
#include <thread>

#include "common/logging.h"
#include "common/serialize.h"

namespace fgpm {

namespace {
constexpr uint64_t kDbMagic = 0x4d504746'42445631ull;  // "FGPM" "DBV1"
}  // namespace

Status GraphDatabase::ApplyEdgeInsert(const Graph& g_after, NodeId u,
                                      NodeId v) {
  if (!built_) return Status::FailedPrecondition("database not built");

  std::vector<CenterId> out_changed, in_changed;
  FGPM_RETURN_IF_ERROR(
      labeling_.UpdateForEdgeInsert(g_after, u, v, &out_changed, &in_changed));
  if (out_changed.empty() && in_changed.empty()) return Status::OK();
  CenterId c = labeling_.CenterOf(u);

  // Snapshot center c's subcluster sizes before mutating, to diff the
  // W-table and catalog statistics afterwards.
  std::vector<RJoinIndex::SubclusterInfo> before;
  FGPM_RETURN_IF_ERROR(rjoin_index_->ListCenterSubclusters(c, &before));
  auto size_of = [](const std::vector<RJoinIndex::SubclusterInfo>& infos,
                    RJoinIndex::Side side, LabelId l) -> uint32_t {
    for (const auto& i : infos) {
      if (i.side == side && i.label == l) return i.size;
    }
    return 0;
  };

  // Rewrite base tuples and extend c's subclusters for every member of
  // every component whose codes changed.
  auto touch = [&](const std::vector<CenterId>& comps,
                   RJoinIndex::Side side) -> Status {
    for (CenterId comp : comps) {
      for (NodeId m : labeling_.MembersOf(comp)) {
        LabelId l = g_after.label_of(m);
        GraphCodeRecord rec;
        rec.node = m;
        const auto in = labeling_.InCode(m);
        const auto out = labeling_.OutCode(m);
        rec.in.assign(in.begin(), in.end());
        rec.out.assign(out.begin(), out.end());
        FGPM_RETURN_IF_ERROR(tables_[l]->Update(rec));
        FGPM_RETURN_IF_ERROR(rjoin_index_->AddToCluster(c, side, l, m));
      }
    }
    return Status::OK();
  };
  FGPM_RETURN_IF_ERROR(touch(out_changed, RJoinIndex::Side::kF));
  FGPM_RETURN_IF_ERROR(touch(in_changed, RJoinIndex::Side::kT));

  // Stale cached codes would answer queries incorrectly.
  ClearCodeCache();

  // Diff the center's subclusters: new (X, Y) combinations enter the
  // W-table; est_pairs/sums get the product deltas.
  std::vector<RJoinIndex::SubclusterInfo> after;
  FGPM_RETURN_IF_ERROR(rjoin_index_->ListCenterSubclusters(c, &after));
  for (const auto& f : after) {
    if (f.side != RJoinIndex::Side::kF) continue;
    for (const auto& t : after) {
      if (t.side != RJoinIndex::Side::kT) continue;
      uint32_t f_before = size_of(before, RJoinIndex::Side::kF, f.label);
      uint32_t t_before = size_of(before, RJoinIndex::Side::kT, t.label);
      int64_t d_pairs = int64_t(f.size) * t.size - int64_t(f_before) * t_before;
      int64_t d_f = int64_t(f.size) - f_before;
      int64_t d_t = int64_t(t.size) - t_before;
      if (d_pairs == 0 && d_f == 0 && d_t == 0) continue;
      bool added = false;
      FGPM_RETURN_IF_ERROR(wtable_->AddCenter(f.label, t.label, c, &added));
      catalog_.ApplyPairDelta(f.label, t.label, d_pairs, added ? 1 : 0, d_f,
                              d_t);
    }
  }
  // Reachability (and statistics) changed: move the epoch so matcher-
  // level caches drop plans and results computed against the old graph.
  // The no-new-pairs early return above deliberately skips this — an
  // edge that changes nothing invalidates nothing.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status GraphDatabase::Save(const std::string& path) const {
  if (!built_) return Status::FailedPrecondition("database not built");
  // Dirty frames must reach the simulated disk before pages are dumped.
  FGPM_RETURN_IF_ERROR(pool_->FlushAll());

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  BinaryWriter w(&out);
  w.U64(kDbMagic);
  FGPM_RETURN_IF_ERROR(disk_->SavePages(out));
  w.U64(tables_.size());
  for (const auto& t : tables_) t->SaveMeta(&w);
  rjoin_index_->SaveMeta(&w);
  wtable_->SaveMeta(&w);
  catalog_.SaveMeta(&w);
  labeling_.SaveMeta(&w);
  if (!w.ok()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<std::unique_ptr<GraphDatabase>> GraphDatabase::Open(
    const std::string& path, GraphDatabaseOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  BinaryReader r(&in);
  uint64_t magic = 0;
  FGPM_RETURN_IF_ERROR(r.U64(&magic));
  if (magic != kDbMagic) {
    return Status::Corruption(path + " is not an fgpm database");
  }

  auto db = std::make_unique<GraphDatabase>(options);
  FGPM_RETURN_IF_ERROR(db->disk_->LoadPages(in));
  uint64_t num_tables = 0;
  FGPM_RETURN_IF_ERROR(r.U64(&num_tables));
  if (num_tables > (1u << 20)) return Status::Corruption("absurd table count");
  for (uint64_t i = 0; i < num_tables; ++i) {
    FGPM_ASSIGN_OR_RETURN(BaseTable t,
                          BaseTable::AttachMeta(db->pool_.get(), &r));
    db->tables_.push_back(std::make_unique<BaseTable>(std::move(t)));
  }
  FGPM_ASSIGN_OR_RETURN(RJoinIndex idx,
                        RJoinIndex::AttachMeta(db->pool_.get(), &r));
  db->rjoin_index_ = std::make_unique<RJoinIndex>(std::move(idx));
  FGPM_ASSIGN_OR_RETURN(WTable wt, WTable::AttachMeta(db->pool_.get(), &r));
  db->wtable_ = std::make_unique<WTable>(std::move(wt));
  FGPM_RETURN_IF_ERROR(db->catalog_.LoadMeta(&r));
  FGPM_RETURN_IF_ERROR(db->labeling_.LoadMeta(&r));
  // The sidecar layout is derived data: the opening database's knob
  // wins over whatever threshold the file was built with.
  if (db->labeling_.bitmap_threshold() != options.code_bitmap_threshold) {
    db->labeling_.SetBitmapThreshold(options.code_bitmap_threshold);
  }
  if (db->tables_.size() != db->catalog_.num_labels()) {
    return Status::Corruption("table count disagrees with catalog");
  }
  db->built_ = true;
  db->ResetIo();
  return db;
}

namespace {

size_t ResolveStripes(size_t requested, size_t capacity) {
  size_t s = requested;
  if (s == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    s = 1;
    while (s < hw) s <<= 1;
    s = std::min<size_t>(s, 64);
  } else {
    size_t p = 1;
    while (p < s) p <<= 1;
    s = p;
  }
  // Keep stripes useful: at least 8 cacheable entries each.
  while (s > 1 && capacity / s < 8) s >>= 1;
  return s;
}

}  // namespace

GraphDatabase::GraphDatabase(GraphDatabaseOptions options)
    : options_(options),
      disk_(std::make_unique<DiskManager>()),
      pool_(std::make_unique<BufferPool>(
          disk_.get(),
          BufferPoolOptions{options.buffer_pool_bytes,
                            options.buffer_pool_shards,
                            options.buffer_pool_latch_across_io})) {
  cache_enabled_ = options_.code_cache_capacity > 0;
  if (cache_enabled_) {
    num_stripes_ = ResolveStripes(options_.code_cache_stripes,
                                  options_.code_cache_capacity);
    stripe_mask_ = num_stripes_ - 1;
    stripe_capacity_ =
        std::max<size_t>(1, options_.code_cache_capacity / num_stripes_);
    stripes_ = std::make_unique<CacheStripe[]>(num_stripes_);
  }
  auto& reg = obs::MetricsRegistry::Default();
  m_cache_hits_ = reg.GetCounter("fgpm_codecache_hits_total",
                                 "Graph-code cache stripe hits");
  m_cache_misses_ = reg.GetCounter("fgpm_codecache_misses_total",
                                   "Graph-code cache stripe misses");
}

Status GraphDatabase::Build(const Graph& g) {
  if (built_) return Status::FailedPrecondition("Build called twice");
  if (!g.finalized()) return Status::FailedPrecondition("graph not finalized");
  built_ = true;

  labeling_ = options_.use_greedy_cover
                  ? BuildTwoHopGreedy(g, options_.code_bitmap_threshold)
                  : BuildTwoHopPruned(g, options_.build_threads,
                                      options_.code_bitmap_threshold);

  if (!options_.owned_labels.empty() &&
      options_.owned_labels.size() != g.NumLabels()) {
    return Status::InvalidArgument("owned_labels size != label count");
  }
  auto owns = [&](LabelId l) {
    return options_.owned_labels.empty() || options_.owned_labels[l] != 0;
  };

  // Base tables: one per label, tuples in extent order. Non-owned
  // labels keep an empty table so LabelId indexing stays aligned.
  tables_.clear();
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    tables_.push_back(std::make_unique<BaseTable>(l, pool_.get()));
    if (!owns(l)) continue;
    for (NodeId v : g.Extent(l)) {
      GraphCodeRecord rec;
      rec.node = v;
      const auto in = labeling_.InCode(v);
      const auto out = labeling_.OutCode(v);
      rec.in.assign(in.begin(), in.end());
      rec.out.assign(out.begin(), out.end());
      FGPM_RETURN_IF_ERROR(tables_[l]->Insert(rec));
    }
  }

  rjoin_index_ = std::make_unique<RJoinIndex>(pool_.get());
  FGPM_RETURN_IF_ERROR(rjoin_index_->Build(
      g, labeling_,
      options_.owned_labels.empty() ? nullptr : &options_.owned_labels));

  wtable_ = std::make_unique<WTable>(pool_.get());
  FGPM_RETURN_IF_ERROR(wtable_->Build(g, labeling_));

  FGPM_RETURN_IF_ERROR(catalog_.Build(g, labeling_));

  // Build-time I/O is not part of any experiment.
  FGPM_RETURN_IF_ERROR(pool_->FlushAll());
  ResetIo();
  return Status::OK();
}

Status GraphDatabase::GetCodes(NodeId v, LabelId label,
                               GraphCodeRecord* rec) const {
  if (cache_enabled_) {
    CacheStripe& st = stripes_[StripeOf(v)];
    {
      std::shared_lock<std::shared_mutex> lock(st.mu);
      auto it = st.map.find(v);
      if (it != st.map.end()) {
        st.hits.fetch_add(1, std::memory_order_relaxed);
        m_cache_hits_->Increment();
        it->second.referenced.store(true, std::memory_order_relaxed);
        *rec = it->second.rec;
        return Status::OK();
      }
    }
    st.misses.fetch_add(1, std::memory_order_relaxed);
    m_cache_misses_->Increment();
  }
  FGPM_RETURN_IF_ERROR(tables_[label]->Get(v, rec));
  if (cache_enabled_) {
    CacheStripe& st = stripes_[StripeOf(v)];
    std::unique_lock<std::shared_mutex> lock(st.mu);
    // Another worker may have cached v while we read the base table.
    if (st.map.find(v) == st.map.end()) {
      while (st.map.size() >= stripe_capacity_ && !st.ring.empty()) {
        // CLOCK sweep: referenced entries get a second chance.
        NodeId hand = st.ring.front();
        st.ring.pop_front();
        auto ce = st.map.find(hand);
        if (ce == st.map.end()) continue;
        if (ce->second.referenced.load(std::memory_order_relaxed)) {
          ce->second.referenced.store(false, std::memory_order_relaxed);
          st.ring.push_back(hand);
        } else {
          st.map.erase(ce);
        }
      }
      st.map.try_emplace(v).first->second.rec = *rec;
      st.ring.push_back(v);
    }
  }
  return Status::OK();
}

void GraphDatabase::ClearCodeCache() const {
  for (size_t i = 0; i < num_stripes_; ++i) {
    CacheStripe& st = stripes_[i];
    std::unique_lock<std::shared_mutex> lock(st.mu);
    st.map.clear();
    st.ring.clear();
  }
}

void GraphDatabase::set_code_cache_enabled(bool enabled) {
  cache_enabled_ = enabled && options_.code_cache_capacity > 0;
  if (!cache_enabled_) ClearCodeCache();
}

IoSnapshot GraphDatabase::Io() const {
  IoSnapshot s;
  DiskStats disk = disk_->stats();
  s.page_reads = disk.page_reads;
  s.page_writes = disk.page_writes;
  BufferPoolStats pool = pool_->stats();
  s.pool_hits = pool.hits;
  s.pool_misses = pool.misses;
  for (size_t i = 0; i < num_stripes_; ++i) {
    s.code_cache_hits += stripes_[i].hits.load(std::memory_order_relaxed);
    s.code_cache_misses += stripes_[i].misses.load(std::memory_order_relaxed);
  }
  return s;
}

void GraphDatabase::ResetIo() {
  disk_->ResetStats();
  pool_->ResetStats();
  for (size_t i = 0; i < num_stripes_; ++i) {
    stripes_[i].hits.store(0, std::memory_order_relaxed);
    stripes_[i].misses.store(0, std::memory_order_relaxed);
  }
  ClearCodeCache();
}

}  // namespace fgpm
