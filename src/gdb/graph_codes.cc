#include "gdb/graph_codes.h"

#include <cstring>

namespace fgpm {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

void EncodeGraphCodes(const GraphCodeRecord& rec, std::string* out) {
  out->clear();
  out->reserve(12 + 4 * (rec.in.size() + rec.out.size()));
  AppendU32(out, rec.node);
  AppendU32(out, static_cast<uint32_t>(rec.in.size()));
  AppendU32(out, static_cast<uint32_t>(rec.out.size()));
  for (CenterId c : rec.in) AppendU32(out, c);
  for (CenterId c : rec.out) AppendU32(out, c);
}

Status DecodeGraphCodes(std::span<const char> bytes, GraphCodeRecord* rec) {
  if (bytes.size() < 12) return Status::Corruption("code record too short");
  rec->node = ReadU32(bytes.data());
  uint32_t n_in = ReadU32(bytes.data() + 4);
  uint32_t n_out = ReadU32(bytes.data() + 8);
  size_t expected = 12 + 4ull * (n_in + n_out);
  if (bytes.size() != expected) {
    return Status::Corruption("code record size mismatch");
  }
  rec->in.resize(n_in);
  rec->out.resize(n_out);
  for (uint32_t i = 0; i < n_in; ++i) {
    rec->in[i] = ReadU32(bytes.data() + 12 + 4ull * i);
  }
  for (uint32_t i = 0; i < n_out; ++i) {
    rec->out[i] = ReadU32(bytes.data() + 12 + 4ull * (n_in + i));
  }
  return Status::OK();
}

}  // namespace fgpm
