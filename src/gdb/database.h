// GraphDatabase: the paper's GDB — |Sigma| base tables with graph codes,
// the cluster-based R-join index, the W-table and catalog statistics, all
// resident in the paged storage engine so every access is I/O-counted.
#ifndef FGPM_GDB_DATABASE_H_
#define FGPM_GDB_DATABASE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gdb/base_table.h"
#include "gdb/catalog.h"
#include "gdb/rjoin_index.h"
#include "gdb/wtable.h"
#include "graph/graph.h"
#include "reach/two_hop.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace fgpm {

struct GraphDatabaseOptions {
  // The paper's experiments use a 1 MiB buffer.
  size_t buffer_pool_bytes = 1 << 20;
  // Exact greedy set-cover labeling instead of the pruned builder (small
  // graphs only; used by tests and the cover-size ablation).
  bool use_greedy_cover = false;
  // Capacity of the working cache for (x, out(x)) pairs that the paper
  // introduces for getCenters (Section 3.3). Zero disables caching. The
  // default (~160 KiB of decoded codes) is sized to respect the paper's
  // 1 MiB total memory budget — a cache that holds every node would hide
  // the row-proportional I/O the paper's cost model charges filters for.
  size_t code_cache_capacity = 4096;
  // Worker threads for the 2-hop cover construction (0 = one per
  // hardware thread). The default of 1 reproduces the sequential builder
  // exactly; higher values use the batch-parallel builder, which yields
  // an equally valid (but not entry-identical) cover.
  unsigned build_threads = 1;
};

// Counter snapshot for experiment reporting.
struct IoSnapshot {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t code_cache_hits = 0;
  uint64_t code_cache_misses = 0;
};

class GraphDatabase {
 public:
  explicit GraphDatabase(GraphDatabaseOptions options = {});
  GraphDatabase(const GraphDatabase&) = delete;
  GraphDatabase& operator=(const GraphDatabase&) = delete;

  // Computes the 2-hop cover, loads base tables, builds the R-join index,
  // W-table and catalog. Must be called exactly once.
  Status Build(const Graph& g);

  // --- incremental maintenance ---------------------------------------------
  // Applies a newly inserted edge (u, v) across the whole database: the
  // 2-hop labeling gains one cluster (the update problem of [24]), the
  // affected base-table tuples are rewritten with their new codes, the
  // cluster-based R-join index and W-table gain the corresponding
  // subcluster entries, and catalog statistics are adjusted. `g_after`
  // must be the finalized graph already containing the edge. Fails with
  // FailedPrecondition when the edge merges SCCs (rebuild instead).
  Status ApplyEdgeInsert(const Graph& g_after, NodeId u, NodeId v);

  // --- persistence --------------------------------------------------------
  // Saves every page plus all component manifests (tree roots, heap page
  // lists, catalog, labeling) to one file; Open restores a fully
  // queryable database without recomputing the 2-hop cover.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<GraphDatabase>> Open(
      const std::string& path, GraphDatabaseOptions options = {});

  // --- metadata ---------------------------------------------------------
  uint32_t num_labels() const { return catalog_.num_labels(); }
  const Catalog& catalog() const { return catalog_; }
  uint64_t NumNodes() const { return catalog_.NumNodes(); }

  // --- storage components ------------------------------------------------
  const BaseTable& table(LabelId l) const { return *tables_[l]; }
  const RJoinIndex& rjoin_index() const { return *rjoin_index_; }
  const WTable& wtable() const { return *wtable_; }

  // In-memory labeling kept for verification and examples. Execution
  // paths read codes from the base tables (I/O-counted), not from here.
  const TwoHopLabeling& labeling() const { return labeling_; }

  // --- graph codes with the working cache --------------------------------
  // Fetches in(x)/out(x) through the primary index, caching decoded
  // records (the paper's getCenters cache). Safe to call from parallel
  // execution workers (the cache has its own mutex; the storage read
  // path is serialized by the buffer pool).
  Status GetCodes(NodeId v, LabelId label, GraphCodeRecord* rec) const;

  void set_code_cache_enabled(bool enabled);
  bool code_cache_enabled() const { return cache_enabled_; }

  // --- I/O accounting -----------------------------------------------------
  IoSnapshot Io() const;
  void ResetIo();
  BufferPool* buffer_pool() { return pool_.get(); }

 private:
  GraphDatabaseOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<std::unique_ptr<BaseTable>> tables_;
  std::unique_ptr<RJoinIndex> rjoin_index_;
  std::unique_ptr<WTable> wtable_;
  Catalog catalog_;
  TwoHopLabeling labeling_;
  bool built_ = false;

  // LRU code cache (cache_mu_ guards the list/map/counters; the enabled
  // flag only changes while no query is running).
  bool cache_enabled_ = true;
  mutable std::mutex cache_mu_;
  mutable std::list<std::pair<NodeId, GraphCodeRecord>> cache_list_;
  mutable std::unordered_map<NodeId, decltype(cache_list_)::iterator>
      cache_map_;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
};

}  // namespace fgpm

#endif  // FGPM_GDB_DATABASE_H_
