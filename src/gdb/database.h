// GraphDatabase: the paper's GDB — |Sigma| base tables with graph codes,
// the cluster-based R-join index, the W-table and catalog statistics, all
// resident in the paged storage engine so every access is I/O-counted.
#ifndef FGPM_GDB_DATABASE_H_
#define FGPM_GDB_DATABASE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gdb/base_table.h"
#include "gdb/catalog.h"
#include "gdb/rjoin_index.h"
#include "gdb/wtable.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "reach/two_hop.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace fgpm {

struct GraphDatabaseOptions {
  // The paper's experiments use a 1 MiB buffer.
  size_t buffer_pool_bytes = 1 << 20;
  // Exact greedy set-cover labeling instead of the pruned builder (small
  // graphs only; used by tests and the cover-size ablation).
  bool use_greedy_cover = false;
  // Capacity of the working cache for (x, out(x)) pairs that the paper
  // introduces for getCenters (Section 3.3). Zero disables caching. The
  // default (~160 KiB of decoded codes) is sized to respect the paper's
  // 1 MiB total memory budget — a cache that holds every node would hide
  // the row-proportional I/O the paper's cost model charges filters for.
  size_t code_cache_capacity = 4096;
  // Worker threads for the 2-hop cover construction (0 = one per
  // hardware thread). The default of 1 reproduces the sequential builder
  // exactly; higher values use the batch-parallel builder, which yields
  // an equally valid (but not entry-identical) cover.
  unsigned build_threads = 1;
  // Buffer-pool shards (BufferPoolOptions::num_shards). 0 = auto: next
  // power of two >= hardware threads, capped at 64. 1 = the legacy
  // single-latch pool.
  size_t buffer_pool_shards = 0;
  // Code-cache lock stripes. 0 = auto (same rule as pool shards). Each
  // stripe holds code_cache_capacity / stripes entries under its own
  // shared_mutex, so concurrent getCenters probes only contend when two
  // workers hash to the same stripe.
  size_t code_cache_stripes = 0;
  // Hold the buffer-pool shard latch across disk reads (the pre-sharding
  // pool's behavior). Only bench_concurrency sets this, as the A/B
  // baseline for the de-serialized miss path.
  bool buffer_pool_latch_across_io = false;
  // Code length at which a center's in()/out() code gets a chunked
  // bitmap sidecar in the labeling (hub x hub probes become word-AND
  // loops). 0 keeps every probe on the flat sorted arrays. See
  // kDefaultCodeBitmapThreshold.
  uint32_t code_bitmap_threshold = kDefaultCodeBitmapThreshold;
  // Entries in each per-worker reachability memo the executor consults
  // from the HPSJ filter and select operators (rounded up to a power of
  // two). The memo is cleared per query; 0 disables memoization.
  size_t reach_cache_entries = 65536;
  // Label ownership filter for sharded serving (src/shard). Empty = own
  // every label (the default, and the only mode non-sharded callers
  // use). When set (one byte per label, nonzero = owned), Build still
  // computes the full 2-hop cover, W-table and catalog — routing and
  // cross-shard coordination need the global view — but materializes
  // base-table tuples and R-join subclusters only for owned labels, so
  // a shard's buffer pool and code cache hold nothing but its own
  // partition. Queries whose labels are all owned execute exactly as on
  // an unfiltered database; GetCodes for a non-owned label's node fails
  // with NotFound (the cross-shard coordinator reads codes from the
  // owning shard instead).
  std::vector<uint8_t> owned_labels;
};

// Counter snapshot for experiment reporting.
struct IoSnapshot {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t code_cache_hits = 0;
  uint64_t code_cache_misses = 0;
};

class GraphDatabase {
 public:
  explicit GraphDatabase(GraphDatabaseOptions options = {});
  GraphDatabase(const GraphDatabase&) = delete;
  GraphDatabase& operator=(const GraphDatabase&) = delete;

  // Computes the 2-hop cover, loads base tables, builds the R-join index,
  // W-table and catalog. Must be called exactly once.
  Status Build(const Graph& g);

  // --- incremental maintenance ---------------------------------------------
  // Applies a newly inserted edge (u, v) across the whole database: the
  // 2-hop labeling gains one cluster (the update problem of [24]), the
  // affected base-table tuples are rewritten with their new codes, the
  // cluster-based R-join index and W-table gain the corresponding
  // subcluster entries, and catalog statistics are adjusted. `g_after`
  // must be the finalized graph already containing the edge. Fails with
  // FailedPrecondition when the edge merges SCCs (rebuild instead).
  Status ApplyEdgeInsert(const Graph& g_after, NodeId u, NodeId v);

  // --- persistence --------------------------------------------------------
  // Saves every page plus all component manifests (tree roots, heap page
  // lists, catalog, labeling) to one file; Open restores a fully
  // queryable database without recomputing the 2-hop cover.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<GraphDatabase>> Open(
      const std::string& path, GraphDatabaseOptions options = {});

  // --- metadata ---------------------------------------------------------
  // Monotone statistics/semantics epoch: bumped whenever an applied
  // update changes reachability (ApplyEdgeInsert with any rewritten
  // codes). Query-level caches (GraphMatcher's plan cache and result
  // cache) snapshot the epoch when they fill and self-invalidate when
  // it moves — one relaxed load per lookup, no registration protocol.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  const GraphDatabaseOptions& options() const { return options_; }
  uint32_t num_labels() const { return catalog_.num_labels(); }
  const Catalog& catalog() const { return catalog_; }
  uint64_t NumNodes() const { return catalog_.NumNodes(); }

  // --- storage components ------------------------------------------------
  const BaseTable& table(LabelId l) const { return *tables_[l]; }
  const RJoinIndex& rjoin_index() const { return *rjoin_index_; }
  const WTable& wtable() const { return *wtable_; }

  // In-memory labeling kept for verification and examples. Execution
  // paths read codes from the base tables (I/O-counted), not from here.
  const TwoHopLabeling& labeling() const { return labeling_; }

  // --- graph codes with the working cache --------------------------------
  // Fetches in(x)/out(x) through the primary index, caching decoded
  // records (the paper's getCenters cache). Safe to call from parallel
  // execution workers: the cache is striped (per-stripe shared_mutex,
  // CLOCK eviction — hits take only a shared lock and flip an atomic
  // reference bit), and the storage read path is sharded rather than
  // globally serialized.
  Status GetCodes(NodeId v, LabelId label, GraphCodeRecord* rec) const;

  void set_code_cache_enabled(bool enabled);
  bool code_cache_enabled() const { return cache_enabled_; }

  // --- I/O accounting -----------------------------------------------------
  IoSnapshot Io() const;
  void ResetIo();
  BufferPool* buffer_pool() { return pool_.get(); }
  const BufferPool* buffer_pool() const { return pool_.get(); }
  size_t code_cache_stripes() const { return num_stripes_; }

 private:
  GraphDatabaseOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<std::unique_ptr<BaseTable>> tables_;
  std::unique_ptr<RJoinIndex> rjoin_index_;
  std::unique_ptr<WTable> wtable_;
  Catalog catalog_;
  TwoHopLabeling labeling_;
  bool built_ = false;
  std::atomic<uint64_t> epoch_{0};

  // Striped read-mostly code cache. Each stripe is an independent CLOCK
  // (second-chance) cache: hits take the stripe's shared lock, copy the
  // record and set an atomic reference bit; misses take the exclusive
  // lock only for the double-checked insert. CLOCK instead of a splice-
  // on-hit LRU keeps the hit path free of list surgery (and thus of the
  // exclusive lock); single-threaded behavior is deterministic.
  struct CacheEntry {
    GraphCodeRecord rec;
    std::atomic<bool> referenced{false};
  };
  struct CacheStripe {
    std::shared_mutex mu;
    std::unordered_map<NodeId, CacheEntry> map;
    std::deque<NodeId> ring;  // CLOCK order; front = hand
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };
  size_t StripeOf(NodeId v) const { return v & stripe_mask_; }
  void ClearCodeCache() const;

  bool cache_enabled_ = true;
  // unique_ptr<[]> so stripes (non-movable: mutex + atomics) can be
  // mutated from const readers without a mutable qualifier per field.
  std::unique_ptr<CacheStripe[]> stripes_;
  size_t num_stripes_ = 0;
  size_t stripe_mask_ = 0;
  size_t stripe_capacity_ = 0;
  // Process-wide registry counters mirroring the per-stripe atomics;
  // no-ops when obs is compiled out or disabled.
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
};

}  // namespace fgpm

#endif  // FGPM_GDB_DATABASE_H_
