#include "gdb/catalog.h"

#include <map>

#include "common/hash.h"
#include "common/logging.h"
#include "gdb/rjoin_index.h"

namespace fgpm {

Status Catalog::Build(const Graph& g, const TwoHopLabeling& labeling) {
  FGPM_CHECK(g.finalized());
  num_nodes_ = g.NumNodes();
  names_.clear();
  extent_sizes_.assign(g.NumLabels(), 0);
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    names_.push_back(g.LabelName(l));
    extent_sizes_[l] = g.Extent(l).size();
  }

  // Estimated base-table pages: record = 12-byte header + 4 bytes per
  // code entry + 4-byte slot entry, packed into 8 KiB pages.
  table_pages_.assign(g.NumLabels(), 0);
  {
    std::vector<uint64_t> bytes(g.NumLabels(), 0);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bytes[g.label_of(v)] +=
          16 + 4ull * (labeling.InCode(v).size() + labeling.OutCode(v).size());
    }
    for (LabelId l = 0; l < g.NumLabels(); ++l) {
      table_pages_[l] = (bytes[l] + 8191) / 8192 + (extent_sizes_[l] > 0);
    }
  }

  // Subcluster sizes per (center, label) on each side.
  std::unordered_map<uint64_t, uint32_t> f_sizes, t_sizes;
  // Distinct labels per center per side (small sets; vector is fine).
  uint32_t nc = labeling.num_centers();
  std::vector<std::vector<LabelId>> f_labels(nc), t_labels(nc);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    LabelId l = g.label_of(v);
    for (CenterId w : labeling.OutCode(v)) {
      uint64_t k = RJoinIndex::DirectoryKey(w, RJoinIndex::Side::kF, l);
      if (f_sizes[k]++ == 0) f_labels[w].push_back(l);
    }
    for (CenterId w : labeling.InCode(v)) {
      uint64_t k = RJoinIndex::DirectoryKey(w, RJoinIndex::Side::kT, l);
      if (t_sizes[k]++ == 0) t_labels[w].push_back(l);
    }
  }

  pairs_.clear();
  for (CenterId w = 0; w < nc; ++w) {
    for (LabelId x : f_labels[w]) {
      uint32_t fs =
          f_sizes[RJoinIndex::DirectoryKey(w, RJoinIndex::Side::kF, x)];
      for (LabelId y : t_labels[w]) {
        uint32_t ts =
            t_sizes[RJoinIndex::DirectoryKey(w, RJoinIndex::Side::kT, y)];
        PairStats& ps = pairs_[PackPair(x, y)];
        ps.est_pairs += static_cast<uint64_t>(fs) * ts;
        ps.num_centers += 1;
        ps.sum_f += fs;
        ps.sum_t += ts;
        ps.avg_f_pages += NodeListStore::PagesFor(fs);
        ps.avg_t_pages += NodeListStore::PagesFor(ts);
      }
    }
  }
  for (auto& [key, ps] : pairs_) {
    (void)key;
    if (ps.num_centers > 0) {
      ps.avg_f_pages /= ps.num_centers;
      ps.avg_t_pages /= ps.num_centers;
    }
  }
  return Status::OK();
}

std::optional<LabelId> Catalog::FindLabel(const std::string& name) const {
  for (LabelId l = 0; l < names_.size(); ++l) {
    if (names_[l] == name) return l;
  }
  return std::nullopt;
}

const PairStats& Catalog::Stats(LabelId x, LabelId y) const {
  static const PairStats kEmpty{};
  auto it = pairs_.find(PackPair(x, y));
  return it == pairs_.end() ? kEmpty : it->second;
}

double Catalog::Selectivity(LabelId x, LabelId y) const {
  uint64_t ex = ExtentSize(x), ey = ExtentSize(y);
  if (ex == 0 || ey == 0) return 0.0;
  const PairStats& ps = Stats(x, y);
  double sel = double(ps.est_pairs) / (double(ex) * double(ey));
  return sel > 1.0 ? 1.0 : sel;
}


void Catalog::ApplyPairDelta(LabelId x, LabelId y, int64_t d_est_pairs,
                             int32_t d_centers, int64_t d_sum_f,
                             int64_t d_sum_t) {
  PairStats& ps = pairs_[PackPair(x, y)];
  auto bump = [](uint64_t* v, int64_t d) {
    *v = (d < 0 && static_cast<uint64_t>(-d) > *v) ? 0 : *v + d;
  };
  bump(&ps.est_pairs, d_est_pairs);
  if (d_centers < 0 && static_cast<uint32_t>(-d_centers) > ps.num_centers) {
    ps.num_centers = 0;
  } else {
    ps.num_centers += d_centers;
  }
  bump(&ps.sum_f, d_sum_f);
  bump(&ps.sum_t, d_sum_t);
}

void Catalog::SaveMeta(BinaryWriter* w) const {
  w->U64(num_nodes_);
  w->U64(names_.size());
  for (const auto& n : names_) w->Str(n);
  w->VecU64(extent_sizes_);
  w->VecU64(table_pages_);
  w->U64(pairs_.size());
  for (const auto& [key, ps] : pairs_) {
    w->U64(key);
    w->U64(ps.est_pairs);
    w->U32(ps.num_centers);
    w->U64(ps.sum_f);
    w->U64(ps.sum_t);
    w->F64(ps.avg_f_pages);
    w->F64(ps.avg_t_pages);
  }
}

Status Catalog::LoadMeta(BinaryReader* r) {
  FGPM_RETURN_IF_ERROR(r->U64(&num_nodes_));
  uint64_t nl = 0;
  FGPM_RETURN_IF_ERROR(r->U64(&nl));
  names_.resize(nl);
  for (auto& n : names_) FGPM_RETURN_IF_ERROR(r->Str(&n));
  FGPM_RETURN_IF_ERROR(r->VecU64(&extent_sizes_));
  FGPM_RETURN_IF_ERROR(r->VecU64(&table_pages_));
  if (extent_sizes_.size() != nl || table_pages_.size() != nl) {
    return Status::Corruption("catalog vectors disagree with label count");
  }
  uint64_t np = 0;
  FGPM_RETURN_IF_ERROR(r->U64(&np));
  pairs_.clear();
  for (uint64_t i = 0; i < np; ++i) {
    uint64_t key = 0;
    PairStats ps;
    FGPM_RETURN_IF_ERROR(r->U64(&key));
    FGPM_RETURN_IF_ERROR(r->U64(&ps.est_pairs));
    FGPM_RETURN_IF_ERROR(r->U32(&ps.num_centers));
    FGPM_RETURN_IF_ERROR(r->U64(&ps.sum_f));
    FGPM_RETURN_IF_ERROR(r->U64(&ps.sum_t));
    FGPM_RETURN_IF_ERROR(r->F64(&ps.avg_f_pages));
    FGPM_RETURN_IF_ERROR(r->F64(&ps.avg_t_pages));
    pairs_.emplace(key, ps);
  }
  return Status::OK();
}

}  // namespace fgpm
