// Cluster-based R-join index (Section 3.2). For each 2-hop center w it
// stores the labeled F-subclusters (nodes of a given label that reach w)
// and T-subclusters (nodes of a given label reachable from w). HPSJ and
// the Fetch step of HPSJ+ answer R-joins directly from these clusters —
// node identifiers are kept in the index, so base tables need not be
// touched (the paper's key point).
//
// On storage: a B+-tree directory maps (center, side, label) to a chunk
// chain in a heap file; every cluster access costs counted page reads.
#ifndef FGPM_GDB_RJOIN_INDEX_H_
#define FGPM_GDB_RJOIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "reach/two_hop.h"
#include "storage/bptree.h"
#include "storage/heap_file.h"

namespace fgpm {

// Chunked storage for node-id lists larger than a page.
class NodeListStore {
 public:
  explicit NodeListStore(BufferPool* pool) : heap_(pool) {}
  NodeListStore(NodeListStore&&) = default;
  NodeListStore& operator=(NodeListStore&&) = default;

  // Writes a list; returns an opaque handle.
  Result<uint64_t> Put(const std::vector<uint32_t>& ids);

  // Reads the full list behind a handle.
  Status Get(uint64_t handle, std::vector<uint32_t>* out) const;

  // Number of chunk pages a list of this size occupies (for costing).
  static uint32_t PagesFor(uint64_t count);

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const { heap_.SaveMeta(w); }
  static Result<NodeListStore> AttachMeta(BufferPool* pool, BinaryReader* r) {
    FGPM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::AttachMeta(pool, r));
    return NodeListStore(std::move(heap));
  }

 private:
  explicit NodeListStore(HeapFile heap) : heap_(std::move(heap)) {}

  HeapFile heap_;
};

class RJoinIndex {
 public:
  enum class Side : uint8_t { kF = 0, kT = 1 };

  explicit RJoinIndex(BufferPool* pool) : store_(pool), directory_(pool) {}
  RJoinIndex(RJoinIndex&&) = default;
  RJoinIndex& operator=(RJoinIndex&&) = default;

  // Materializes all labeled subclusters from the 2-hop labeling. When
  // `owned_labels` is non-null (one byte per label, nonzero = owned),
  // only subclusters of owned labels are stored — the label-partitioned
  // build of GraphDatabaseOptions::owned_labels.
  Status Build(const Graph& g, const TwoHopLabeling& labeling,
               const std::vector<uint8_t>* owned_labels = nullptr);

  // Adds `node` (labeled `label`) to center w's subcluster on `side`,
  // creating the subcluster if absent. Node lists are rewritten (the
  // store is append-only); used by incremental edge insertion.
  Status AddToCluster(CenterId w, Side side, LabelId label, NodeId node);

  // getF(w, X): X-labeled nodes that can reach center w. Empty vector if
  // the subcluster does not exist.
  Status GetF(CenterId w, LabelId x, std::vector<NodeId>* out) const {
    return GetCluster(w, Side::kF, x, out);
  }
  // getT(w, Y): Y-labeled nodes reachable from center w.
  Status GetT(CenterId w, LabelId y, std::vector<NodeId>* out) const {
    return GetCluster(w, Side::kT, y, out);
  }

  uint64_t NumSubclusters() const { return directory_.NumEntries(); }
  uint64_t TotalEntries() const { return total_entries_; }

  // Enumerates a center's subclusters with their sizes (directory range
  // scan; used by incremental maintenance to diff W-table/statistics).
  struct SubclusterInfo {
    Side side;
    LabelId label;
    uint32_t size;
  };
  Status ListCenterSubclusters(CenterId w,
                               std::vector<SubclusterInfo>* out) const;

  static uint64_t DirectoryKey(CenterId w, Side side, LabelId label);

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const;
  static Result<RJoinIndex> AttachMeta(BufferPool* pool, BinaryReader* r);

 private:
  RJoinIndex(NodeListStore store, BPTree directory, uint64_t total)
      : store_(std::move(store)),
        directory_(std::move(directory)),
        total_entries_(total) {}

  Status GetCluster(CenterId w, Side side, LabelId label,
                    std::vector<NodeId>* out) const;

  NodeListStore store_;
  BPTree directory_;  // DirectoryKey -> NodeListStore handle
  uint64_t total_entries_ = 0;
};

}  // namespace fgpm

#endif  // FGPM_GDB_RJOIN_INDEX_H_
