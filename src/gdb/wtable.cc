#include "gdb/wtable.h"

#include <map>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sorted_vector.h"

namespace fgpm {

Status WTable::Build(const Graph& g, const TwoHopLabeling& labeling) {
  FGPM_CHECK(g.finalized());
  const uint32_t nc = labeling.num_centers();
  // Per-center label bitmaps of non-empty F/T subclusters.
  std::vector<std::set<LabelId>> f_labels(nc), t_labels(nc);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    LabelId l = g.label_of(v);
    for (CenterId w : labeling.OutCode(v)) f_labels[w].insert(l);
    for (CenterId w : labeling.InCode(v)) t_labels[w].insert(l);
  }
  std::map<uint64_t, std::vector<CenterId>> pairs;
  for (CenterId w = 0; w < nc; ++w) {
    for (LabelId x : f_labels[w]) {
      for (LabelId y : t_labels[w]) {
        pairs[PackPair(x, y)].push_back(w);
      }
    }
  }
  for (const auto& [key, centers] : pairs) {
    FGPM_ASSIGN_OR_RETURN(uint64_t handle, store_.Put(centers));
    FGPM_RETURN_IF_ERROR(index_.Insert(key, handle));
  }
  return Status::OK();
}

Status WTable::Lookup(LabelId x, LabelId y,
                      std::vector<CenterId>* out) const {
  out->clear();
  Result<uint64_t> handle = index_.Lookup(PackPair(x, y));
  if (!handle.ok()) {
    if (handle.status().code() == StatusCode::kNotFound) return Status::OK();
    return handle.status();
  }
  return store_.Get(*handle, out);
}

Result<std::span<const CenterId>> WTable::LookupSpan(
    LabelId x, LabelId y, std::vector<CenterId>* scratch) const {
  FGPM_RETURN_IF_ERROR(Lookup(x, y, scratch));
  return std::span<const CenterId>(scratch->data(), scratch->size());
}


Status WTable::AddCenter(LabelId x, LabelId y, CenterId w, bool* added) {
  *added = false;
  std::vector<CenterId> centers;
  FGPM_RETURN_IF_ERROR(Lookup(x, y, &centers));
  if (!SortedInsert(&centers, w)) return Status::OK();
  FGPM_ASSIGN_OR_RETURN(uint64_t handle, store_.Put(centers));
  FGPM_RETURN_IF_ERROR(index_.Upsert(PackPair(x, y), handle));
  *added = true;
  return Status::OK();
}

void WTable::SaveMeta(BinaryWriter* w) const {
  store_.SaveMeta(w);
  index_.SaveMeta(w);
}

Result<WTable> WTable::AttachMeta(BufferPool* pool, BinaryReader* r) {
  FGPM_ASSIGN_OR_RETURN(NodeListStore store, NodeListStore::AttachMeta(pool, r));
  FGPM_ASSIGN_OR_RETURN(BPTree index, BPTree::AttachMeta(pool, r));
  return WTable(std::move(store), std::move(index));
}

}  // namespace fgpm
