#include "gdb/base_table.h"

#include <string>

namespace fgpm {

Status BaseTable::Insert(const GraphCodeRecord& rec) {
  std::string bytes;
  EncodeGraphCodes(rec, &bytes);
  FGPM_ASSIGN_OR_RETURN(Rid rid, heap_.Append({bytes.data(), bytes.size()}));
  return primary_.Insert(rec.node, rid.Pack());
}

Status BaseTable::Update(const GraphCodeRecord& rec) {
  // Must exist already (Update never grows the extent).
  FGPM_RETURN_IF_ERROR(primary_.Lookup(rec.node).status());
  std::string bytes;
  EncodeGraphCodes(rec, &bytes);
  FGPM_ASSIGN_OR_RETURN(Rid rid, heap_.Append({bytes.data(), bytes.size()}));
  return primary_.Upsert(rec.node, rid.Pack());
}

Status BaseTable::Get(NodeId node, GraphCodeRecord* rec) const {
  FGPM_ASSIGN_OR_RETURN(uint64_t packed, primary_.Lookup(node));
  std::string bytes;
  FGPM_RETURN_IF_ERROR(heap_.Read(Rid::Unpack(packed), &bytes));
  return DecodeGraphCodes({bytes.data(), bytes.size()}, rec);
}

Status BaseTable::Scan(
    const std::function<void(const GraphCodeRecord&)>& fn) const {
  // Drive the scan from the primary index so superseded record versions
  // (left behind by Update's append-only rewrites) are never surfaced.
  Status inner;
  FGPM_RETURN_IF_ERROR(primary_.ScanRange(
      0, ~0ull, [&](uint64_t /*node*/, uint64_t packed_rid) {
        std::string bytes;
        inner = heap_.Read(Rid::Unpack(packed_rid), &bytes);
        if (!inner.ok()) return false;
        GraphCodeRecord rec;
        inner = DecodeGraphCodes({bytes.data(), bytes.size()}, &rec);
        if (!inner.ok()) return false;
        fn(rec);
        return true;
      }));
  return inner;
}


void BaseTable::SaveMeta(BinaryWriter* w) const {
  w->U32(label_);
  heap_.SaveMeta(w);
  primary_.SaveMeta(w);
}

Result<BaseTable> BaseTable::AttachMeta(BufferPool* pool, BinaryReader* r) {
  uint32_t label = 0;
  FGPM_RETURN_IF_ERROR(r->U32(&label));
  FGPM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::AttachMeta(pool, r));
  FGPM_ASSIGN_OR_RETURN(BPTree primary, BPTree::AttachMeta(pool, r));
  return BaseTable(label, std::move(heap), std::move(primary));
}

}  // namespace fgpm
