#include "gdb/rjoin_index.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string>

#include "common/sorted_vector.h"

#include "common/logging.h"
#include "storage/slotted_page.h"

namespace fgpm {
namespace {

// Chunk record: [next handle u64][count u32][ids u32...].
constexpr size_t kChunkHeader = 12;
constexpr size_t kIdsPerChunk =
    (SlottedPage::kMaxRecordSize - kChunkHeader) / 4;
constexpr uint64_t kNullHandle = ~0ull;

}  // namespace

uint32_t NodeListStore::PagesFor(uint64_t count) {
  if (count == 0) return 0;
  return static_cast<uint32_t>((count + kIdsPerChunk - 1) / kIdsPerChunk);
}

Result<uint64_t> NodeListStore::Put(const std::vector<uint32_t>& ids) {
  if (ids.empty()) return Status::InvalidArgument("empty node list");
  // Write chunks back to front so each can point at its successor.
  uint64_t next = kNullHandle;
  size_t num_chunks = (ids.size() + kIdsPerChunk - 1) / kIdsPerChunk;
  std::string bytes;
  for (size_t c = num_chunks; c > 0; --c) {
    size_t begin = (c - 1) * kIdsPerChunk;
    size_t end = std::min(ids.size(), begin + kIdsPerChunk);
    uint32_t count = static_cast<uint32_t>(end - begin);
    bytes.assign(kChunkHeader + 4ull * count, '\0');
    std::memcpy(bytes.data(), &next, 8);
    std::memcpy(bytes.data() + 8, &count, 4);
    std::memcpy(bytes.data() + kChunkHeader, ids.data() + begin, 4ull * count);
    FGPM_ASSIGN_OR_RETURN(Rid rid, heap_.Append({bytes.data(), bytes.size()}));
    next = rid.Pack();
  }
  return next;
}

Status NodeListStore::Get(uint64_t handle,
                          std::vector<uint32_t>* out) const {
  out->clear();
  std::string bytes;
  while (handle != kNullHandle) {
    FGPM_RETURN_IF_ERROR(heap_.Read(Rid::Unpack(handle), &bytes));
    if (bytes.size() < kChunkHeader) {
      return Status::Corruption("node list chunk too short");
    }
    uint64_t next;
    uint32_t count;
    std::memcpy(&next, bytes.data(), 8);
    std::memcpy(&count, bytes.data() + 8, 4);
    if (bytes.size() != kChunkHeader + 4ull * count) {
      return Status::Corruption("node list chunk size mismatch");
    }
    size_t old = out->size();
    // Reserve with one chunk of lookahead when the chain continues
    // (every chunk but the last is full, so the lookahead is exact
    // until the tail): single-chunk lists allocate exactly instead of
    // geometrically. Long chains still double to stay amortized O(n).
    size_t need = old + count + (next != kNullHandle ? kIdsPerChunk : 0);
    if (out->capacity() < need) {
      out->reserve(std::max(need, 2 * out->capacity()));
    }
    out->resize(old + count);
    std::memcpy(out->data() + old, bytes.data() + kChunkHeader, 4ull * count);
    handle = next;
  }
  return Status::OK();
}

uint64_t RJoinIndex::DirectoryKey(CenterId w, Side side, LabelId label) {
  FGPM_DCHECK(label < (1u << 30));
  return (static_cast<uint64_t>(w) << 32) |
         (static_cast<uint64_t>(side) << 31) | label;
}

Status RJoinIndex::Build(const Graph& g, const TwoHopLabeling& labeling,
                         const std::vector<uint8_t>* owned_labels) {
  FGPM_CHECK(g.finalized());
  // Group nodes into labeled subclusters. std::map keeps directory
  // insertion in key order (B+-tree bulk-friendly).
  std::map<uint64_t, std::vector<NodeId>> clusters;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    LabelId l = g.label_of(v);
    if (owned_labels != nullptr && (*owned_labels)[l] == 0) continue;
    for (CenterId w : labeling.OutCode(v)) {
      clusters[DirectoryKey(w, Side::kF, l)].push_back(v);
    }
    for (CenterId w : labeling.InCode(v)) {
      clusters[DirectoryKey(w, Side::kT, l)].push_back(v);
    }
  }
  total_entries_ = 0;
  for (const auto& [key, nodes] : clusters) {
    FGPM_ASSIGN_OR_RETURN(uint64_t handle, store_.Put(nodes));
    FGPM_RETURN_IF_ERROR(directory_.Insert(key, handle));
    total_entries_ += nodes.size();
  }
  return Status::OK();
}

Status RJoinIndex::ListCenterSubclusters(
    CenterId w, std::vector<SubclusterInfo>* out) const {
  out->clear();
  uint64_t lo = static_cast<uint64_t>(w) << 32;
  uint64_t hi = lo | 0xffffffffull;
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  FGPM_RETURN_IF_ERROR(
      directory_.ScanRange(lo, hi, [&](uint64_t key, uint64_t handle) {
        entries.emplace_back(key, handle);
        return true;
      }));
  std::vector<NodeId> nodes;
  for (const auto& [key, handle] : entries) {
    FGPM_RETURN_IF_ERROR(store_.Get(handle, &nodes));
    SubclusterInfo info;
    info.side = static_cast<Side>((key >> 31) & 1);
    info.label = static_cast<LabelId>(key & 0x7fffffffull);
    info.size = static_cast<uint32_t>(nodes.size());
    out->push_back(info);
  }
  return Status::OK();
}

Status RJoinIndex::AddToCluster(CenterId w, Side side, LabelId label,
                                NodeId node) {
  uint64_t key = DirectoryKey(w, side, label);
  std::vector<NodeId> nodes;
  FGPM_RETURN_IF_ERROR(GetCluster(w, side, label, &nodes));
  if (!SortedInsert(&nodes, node)) return Status::OK();  // already present
  FGPM_ASSIGN_OR_RETURN(uint64_t handle, store_.Put(nodes));
  FGPM_RETURN_IF_ERROR(directory_.Upsert(key, handle));
  ++total_entries_;
  return Status::OK();
}

Status RJoinIndex::GetCluster(CenterId w, Side side, LabelId label,
                              std::vector<NodeId>* out) const {
  out->clear();
  Result<uint64_t> handle = directory_.Lookup(DirectoryKey(w, side, label));
  if (!handle.ok()) {
    if (handle.status().code() == StatusCode::kNotFound) return Status::OK();
    return handle.status();
  }
  return store_.Get(*handle, out);
}


void RJoinIndex::SaveMeta(BinaryWriter* w) const {
  store_.SaveMeta(w);
  directory_.SaveMeta(w);
  w->U64(total_entries_);
}

Result<RJoinIndex> RJoinIndex::AttachMeta(BufferPool* pool, BinaryReader* r) {
  FGPM_ASSIGN_OR_RETURN(NodeListStore store, NodeListStore::AttachMeta(pool, r));
  FGPM_ASSIGN_OR_RETURN(BPTree directory, BPTree::AttachMeta(pool, r));
  uint64_t total = 0;
  FGPM_RETURN_IF_ERROR(r->U64(&total));
  return RJoinIndex(std::move(store), std::move(directory), total);
}

}  // namespace fgpm
