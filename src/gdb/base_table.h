// Base table T_X(X, X_in, X_out) for one label (Section 3): one tuple
// per node of ext(X) holding the node id (primary key) and its graph
// codes. Tuples live in a heap file; the primary key is indexed with a
// B+-tree, as the paper assumes.
#ifndef FGPM_GDB_BASE_TABLE_H_
#define FGPM_GDB_BASE_TABLE_H_

#include <functional>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "gdb/graph_codes.h"
#include "storage/bptree.h"
#include "storage/heap_file.h"

namespace fgpm {

class BaseTable {
 public:
  BaseTable(LabelId label, BufferPool* pool)
      : label_(label), heap_(pool), primary_(pool) {}
  BaseTable(const BaseTable&) = delete;
  BaseTable& operator=(const BaseTable&) = delete;
  BaseTable(BaseTable&&) = default;
  BaseTable& operator=(BaseTable&&) = default;

  LabelId label() const { return label_; }
  uint64_t NumTuples() const { return heap_.NumRecords(); }
  size_t NumPages() const { return heap_.NumPages(); }

  // Appends a tuple (build time).
  Status Insert(const GraphCodeRecord& rec);

  // Rewrites a tuple's graph codes (incremental maintenance): appends a
  // new record version and repoints the primary index. The old version
  // becomes unreachable garbage (the heap is append-only); Scan() skips
  // superseded versions via the primary index.
  Status Update(const GraphCodeRecord& rec);

  // Point access via the primary index (costs a B+-tree descent plus one
  // heap-page read, all counted by the buffer pool).
  Status Get(NodeId node, GraphCodeRecord* rec) const;

  // Full scan in heap order.
  Status Scan(const std::function<void(const GraphCodeRecord&)>& fn) const;

  uint32_t IndexHeight() const { return primary_.Height(); }

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const;
  static Result<BaseTable> AttachMeta(BufferPool* pool, BinaryReader* r);

 private:
  BaseTable(LabelId label, HeapFile heap, BPTree primary)
      : label_(label), heap_(std::move(heap)), primary_(std::move(primary)) {}

  LabelId label_;
  HeapFile heap_;
  BPTree primary_;  // node id -> packed RID
};

}  // namespace fgpm

#endif  // FGPM_GDB_BASE_TABLE_H_
