// In-memory catalog: label dictionary, extent sizes, and per-label-pair
// join statistics the optimizer's cost model (Section 4, Table 1 and
// Eqs. 10-12) consumes. "We maintain the join sizes and the processing
// costs for all R-joins between two base tables in a graph database."
#ifndef FGPM_GDB_CATALOG_H_
#define FGPM_GDB_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "graph/graph.h"
#include "reach/two_hop.h"

namespace fgpm {

struct PairStats {
  // Estimated |T_X R-join T_Y| as the sum over centers of
  // |F_X(w)| * |T_Y(w)| (a bag-count upper bound; duplicates across
  // centers are not discounted — documented estimator choice).
  uint64_t est_pairs = 0;
  uint32_t num_centers = 0;  // |W(X, Y)|
  uint64_t sum_f = 0;        // total F-subcluster entries over W(X,Y)
  uint64_t sum_t = 0;        // total T-subcluster entries over W(X,Y)
  // Average chunk pages read per F-/T-subcluster access (IO_F / IO_T of
  // Table 1, in page units).
  double avg_f_pages = 0;
  double avg_t_pages = 0;
};

class Catalog {
 public:
  Status Build(const Graph& g, const TwoHopLabeling& labeling);

  uint32_t num_labels() const { return static_cast<uint32_t>(names_.size()); }
  const std::string& LabelName(LabelId l) const { return names_[l]; }
  std::optional<LabelId> FindLabel(const std::string& name) const;
  uint64_t ExtentSize(LabelId l) const { return extent_sizes_[l]; }
  uint64_t NumNodes() const { return num_nodes_; }

  // Estimated heap pages of base table T_l (for scan costing).
  uint64_t TablePages(LabelId l) const { return table_pages_[l]; }

  // Zero-filled stats mean the R-join X -> Y is empty.
  const PairStats& Stats(LabelId x, LabelId y) const;

  // Join selectivity |T_X join T_Y| / (|T_X| * |T_Y|), Eqs. 10-12.
  double Selectivity(LabelId x, LabelId y) const;

  // Adjusts one pair's statistics after incremental index maintenance
  // (deltas may be negative). avg_*_pages are left untouched — they are
  // advisory averages and drift negligibly per insert.
  void ApplyPairDelta(LabelId x, LabelId y, int64_t d_est_pairs,
                      int32_t d_centers, int64_t d_sum_f, int64_t d_sum_t);

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const;
  Status LoadMeta(BinaryReader* r);

 private:
  uint64_t num_nodes_ = 0;
  std::vector<std::string> names_;
  std::vector<uint64_t> extent_sizes_;
  std::vector<uint64_t> table_pages_;
  std::unordered_map<uint64_t, PairStats> pairs_;
};

}  // namespace fgpm

#endif  // FGPM_GDB_CATALOG_H_
