// W-table (Section 3.2): W(X, Y) is the set of centers whose clusters
// contain both a non-empty X-labeled F-subcluster and a non-empty
// Y-labeled T-subcluster — exactly the centers an R-join X -> Y must
// visit. Stored as a B+-tree keyed by the label pair, with the center
// lists in a chunked heap file, "accessed by a pair of labels as a key"
// as the paper prescribes.
#ifndef FGPM_GDB_WTABLE_H_
#define FGPM_GDB_WTABLE_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "gdb/rjoin_index.h"
#include "graph/graph.h"
#include "reach/two_hop.h"
#include "storage/bptree.h"

namespace fgpm {

class WTable {
 public:
  explicit WTable(BufferPool* pool) : store_(pool), index_(pool) {}
  WTable(WTable&&) = default;
  WTable& operator=(WTable&&) = default;

  // Derives all W(X, Y) entries from the labeling and node labels.
  Status Build(const Graph& g, const TwoHopLabeling& labeling);

  // Centers for W(X, Y); empty vector when no center qualifies (the
  // R-join result is then provably empty).
  Status Lookup(LabelId x, LabelId y, std::vector<CenterId>* out) const;

  // Borrowed-buffer fast path: decodes into `*scratch` (whose capacity
  // is reused probe over probe — the executor passes operator-owned
  // scratch) and returns a span over it. The span is valid until the
  // next use of `scratch`.
  Result<std::span<const CenterId>> LookupSpan(
      LabelId x, LabelId y, std::vector<CenterId>* scratch) const;

  // Ensures center w is listed under W(X, Y) (incremental maintenance).
  // Returns true through `added` when w was newly inserted.
  Status AddCenter(LabelId x, LabelId y, CenterId w, bool* added);

  uint64_t NumPairs() const { return index_.NumEntries(); }

  // --- persistence --------------------------------------------------------
  void SaveMeta(BinaryWriter* w) const;
  static Result<WTable> AttachMeta(BufferPool* pool, BinaryReader* r);

 private:
  WTable(NodeListStore store, BPTree index)
      : store_(std::move(store)), index_(std::move(index)) {}

  NodeListStore store_;
  BPTree index_;  // PackPair(X, Y) -> center-list handle
};

}  // namespace fgpm

#endif  // FGPM_GDB_WTABLE_H_
