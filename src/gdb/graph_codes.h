// Serialization of per-node graph codes (Example 3.1): each base-table
// tuple stores a node id plus its compact 2-hop codes in(x) and out(x).
#ifndef FGPM_GDB_GRAPH_CODES_H_
#define FGPM_GDB_GRAPH_CODES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "reach/two_hop.h"

namespace fgpm {

struct GraphCodeRecord {
  NodeId node = kInvalidNode;
  std::vector<CenterId> in;   // centers reaching the node (incl. self)
  std::vector<CenterId> out;  // centers the node reaches (incl. self)
};

// Record layout: [node u32][n_in u32][n_out u32][in ids][out ids].
void EncodeGraphCodes(const GraphCodeRecord& rec, std::string* out);
Status DecodeGraphCodes(std::span<const char> bytes, GraphCodeRecord* rec);

}  // namespace fgpm

#endif  // FGPM_GDB_GRAPH_CODES_H_
