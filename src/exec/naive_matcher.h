// Ground-truth pattern matcher: backtracking over label extents with a
// BFS reachability oracle. Exponentially slower than the R-join engines
// but obviously correct — every engine is validated against it.
#ifndef FGPM_EXEC_NAIVE_MATCHER_H_
#define FGPM_EXEC_NAIVE_MATCHER_H_

#include "common/status.h"
#include "exec/engine.h"
#include "graph/graph.h"
#include "query/pattern.h"

namespace fgpm {

// Returns all distinct match tuples (columns in pattern-node order).
Result<MatchResult> NaiveMatch(const Graph& g, const Pattern& pattern);

}  // namespace fgpm

#endif  // FGPM_EXEC_NAIVE_MATCHER_H_
