#include "exec/batch.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/temporal_table.h"

namespace fgpm {

namespace {

constexpr uint32_t kNoEdge = ~0u;

// How many leading plan steps the seed covers, and the signature under
// which openings collide (see batch.h). seed_steps == 0 means the plan
// has no steps (single-label patterns are handled before grouping).
struct Opening {
  size_t seed_steps = 0;
  std::string sig;
};

Opening ClassifyOpening(const BatchQuery& q) {
  Opening o;
  const std::vector<PlanStep>& steps = q.plan->steps;
  if (steps.empty()) return o;
  const PlanStep& s0 = steps[0];
  if (s0.kind == StepKind::kScanBase) {
    o.seed_steps = 1;
    o.sig = "S|" + std::to_string(q.node_labels[s0.scan_node]);
    if (steps.size() > 1 && steps[1].kind == StepKind::kFilter) {
      o.seed_steps = 2;
      // The multiset of (other-endpoint label, direction) — sorted so
      // filter-item order never splits a group. Filters always carry at
      // least one item, so scan-only and scan+filter sigs stay distinct.
      std::vector<std::pair<LabelId, char>> items;
      items.reserve(steps[1].filters.size());
      for (const FilterItem& it : steps[1].filters) {
        const PatternEdge& e = q.pattern->edges()[it.edge];
        const PatternNodeId other = it.bound_is_source ? e.to : e.from;
        items.emplace_back(q.node_labels[other],
                           it.bound_is_source ? '>' : '<');
      }
      std::sort(items.begin(), items.end());
      for (const auto& [label, dir] : items) {
        o.sig += "|" + std::to_string(label) + dir;
      }
    }
  } else if (s0.kind == StepKind::kHpsjBase) {
    const PatternEdge& e = q.pattern->edges()[s0.edge];
    o.seed_steps = 1;
    o.sig = "H|" + std::to_string(q.node_labels[e.from]) + "|" +
            std::to_string(q.node_labels[e.to]);
  }
  return o;
}

// Runs the leader's seed steps into `seed` with intra-query parallelism.
Status BuildSeed(const GraphDatabase& db, const BatchQuery& leader,
                 size_t seed_steps, ThreadPool* pool, ExecScratch* scratch,
                 TemporalTable* seed, OperatorStats* stats) {
  for (size_t si = 0; si < seed_steps; ++si) {
    const PlanStep& step = leader.plan->steps[si];
    switch (step.kind) {
      case StepKind::kScanBase:
        FGPM_RETURN_IF_ERROR(ScanBase(db, *leader.pattern,
                                      leader.node_labels, step.scan_node,
                                      seed, stats));
        break;
      case StepKind::kFilter:
        FGPM_RETURN_IF_ERROR(ApplyFilter(db, *leader.pattern,
                                         leader.node_labels, step.filters,
                                         seed, stats, pool, scratch));
        break;
      case StepKind::kHpsjBase:
        FGPM_RETURN_IF_ERROR(HpsjBaseJoin(db, *leader.pattern,
                                          leader.node_labels, step.edge,
                                          seed, stats, pool, scratch));
        break;
      default:
        return Status::Internal("unshareable step classified as seed");
    }
  }
  return Status::OK();
}

// Copies `seed` into `member`'s coordinates: schema nodes map by label
// identity, pending slots map to the member edge with the same
// (bound label, other label, direction) — unique because patterns
// reject duplicate edges.
Status TranslateSeed(const TemporalTable& seed, const BatchQuery& leader,
                     const BatchQuery& member, Materialization mode,
                     TemporalTable* out) {
  std::unordered_map<LabelId, PatternNodeId> member_node_of;
  for (PatternNodeId i = 0; i < member.pattern->num_nodes(); ++i) {
    member_node_of[member.node_labels[i]] = i;
  }
  for (PatternNodeId node : seed.schema()) {
    auto it = member_node_of.find(leader.node_labels[node]);
    if (it == member_node_of.end()) {
      return Status::Internal("seed schema label missing from batch member");
    }
    out->AddColumn(it->second);
  }
  out->raw_rows() = seed.raw_rows();
  out->set_sorted_by(seed.sorted_by());
  for (const TemporalTable::PendingSlot& slot : seed.pending()) {
    const PatternEdge& le = leader.pattern->edges()[slot.edge];
    const LabelId bound_label =
        leader.node_labels[slot.bound_is_source ? le.from : le.to];
    const LabelId other_label =
        leader.node_labels[slot.bound_is_source ? le.to : le.from];
    uint32_t medge = kNoEdge;
    for (uint32_t i = 0; i < member.pattern->num_edges(); ++i) {
      const PatternEdge& me = member.pattern->edges()[i];
      const LabelId mb =
          member.node_labels[slot.bound_is_source ? me.from : me.to];
      const LabelId mo =
          member.node_labels[slot.bound_is_source ? me.to : me.from];
      if (mb == bound_label && mo == other_label) {
        medge = i;
        break;
      }
    }
    if (medge == kNoEdge) {
      return Status::Internal("pending seed edge missing from batch member");
    }
    out->pending().push_back(
        {medge, slot.bound_is_source, slot.pool, slot.row_index});
  }
  (void)mode;
  return Status::OK();
}

}  // namespace

Status ExecuteBatch(const GraphDatabase& db,
                    const std::vector<BatchQuery>& queries,
                    const ExecOptions& options, ThreadPool* pool,
                    BatchScratch* scratch, ExecScratch* seed_scratch,
                    std::vector<MatchResult>* results, BatchExecStats* stats) {
  results->assign(queries.size(), MatchResult{});
  const bool factorized =
      options.materialization == Materialization::kFactorized;
  const Materialization mode = options.materialization;

  // Group shareable openings; trivial queries resolve inline.
  std::vector<std::string> group_order;
  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<size_t> seed_steps_of(queries.size(), 0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const BatchQuery& q = queries[qi];
    FGPM_CHECK(q.pattern != nullptr && q.plan != nullptr);
    MatchResult& res = (*results)[qi];
    for (PatternNodeId i = 0; i < q.pattern->num_nodes(); ++i) {
      res.column_labels.push_back(q.pattern->label(i));
    }
    if (!q.resolvable) continue;  // empty result by definition
    if (q.pattern->num_edges() == 0) {
      WallTimer t;
      FGPM_RETURN_IF_ERROR(
          db.table(q.node_labels[0]).Scan([&](const GraphCodeRecord& rec) {
            res.rows.push_back({rec.node});
          }));
      res.stats.result_rows = res.rows.size();
      res.stats.elapsed_ms = t.ElapsedMillis();
      continue;
    }
    Opening o = ClassifyOpening(q);
    if (o.seed_steps == 0) {
      return Status::InvalidArgument("plan with no shareable opening step");
    }
    seed_steps_of[qi] = o.seed_steps;
    auto [it, inserted] = groups.try_emplace(o.sig);
    if (inserted) group_order.push_back(o.sig);
    it->second.push_back(qi);
  }

  // One scratch per batch worker: each pipeline tail runs single-
  // threaded inside the fan-out, so every tail needs a private
  // one-worker memo set (the seed build uses the borrowed multi-worker
  // scratch). Configuring these allocates memo tables — reuse the
  // caller's BatchScratch when given (Configure is an O(1) epoch clear
  // then) and borrow the caller's executor scratch for seeds.
  const unsigned workers = pool != nullptr ? pool->size() : 1;
  BatchScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  scratch->Configure(workers, db.options().reach_cache_entries);
  std::vector<ExecScratch>& tail_scratch = scratch->tails;
  ExecScratch local_seed_scratch;
  if (seed_scratch == nullptr) {
    local_seed_scratch.Configure(workers, db.options().reach_cache_entries);
    seed_scratch = &local_seed_scratch;
  }

  for (const std::string& sig : group_order) {
    const std::vector<size_t>& members = groups[sig];
    const size_t leader_qi = members[0];
    const BatchQuery& leader = queries[leader_qi];
    const size_t seed_steps = seed_steps_of[leader_qi];

    WallTimer seed_timer;
    TemporalTable seed(mode);
    OperatorStats seed_stats;
    seed_scratch->BeginQuery();
    FGPM_RETURN_IF_ERROR(BuildSeed(db, leader, seed_steps, pool,
                                   seed_scratch, &seed, &seed_stats));
    const double seed_ms = seed_timer.ElapsedMillis();

    if (stats != nullptr && members.size() > 1) {
      ++stats->shared_seed_groups;
      stats->shared_seed_reuses += members.size() - 1;
    }

    std::vector<Status> errs(members.size());
    auto run_member = [&](unsigned wk, size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const size_t qi = members[i];
        const BatchQuery& q = queries[qi];
        MatchResult& res = (*results)[qi];
        WallTimer t;
        TemporalTable table(mode);
        Status s = TranslateSeed(seed, leader, q, mode, &table);
        if (s.ok()) {
          ExecScratch& scr = tail_scratch[wk < workers ? wk : 0];
          scr.BeginQuery();
          uint64_t wcoj_binds = 0;
          s = RunPlanSteps(db, *q.pattern, q.node_labels, *q.plan,
                           seed_steps, factorized, &table, &res.stats,
                           /*trace=*/nullptr, /*query_span=*/0,
                           /*pool=*/nullptr, &scr, &wcoj_binds);
        }
        if (s.ok()) MaterializeTable(*q.pattern, table, &res);
        res.stats.result_rows = res.rows.size();
        res.stats.elapsed_ms += t.ElapsedMillis();
        errs[i] = std::move(s);
      }
    };
    if (pool != nullptr && members.size() > 1) {
      pool->ParallelFor(members.size(), 1, run_member);
    } else {
      run_member(0, 0, 0, members.size());
    }
    for (const Status& s : errs) FGPM_RETURN_IF_ERROR(s);

    // The shared work happened once; charge it to the leader (charging
    // every member would double-count the batch's aggregate counters).
    MatchResult& leader_res = (*results)[leader_qi];
    leader_res.stats.operators.Add(seed_stats);
    leader_res.stats.elapsed_ms += seed_ms;
  }
  return Status::OK();
}

}  // namespace fgpm
