// Physical operators of the R-join/R-semijoin engine:
//   HpsjBaseJoin — Algorithm 1 (HPSJ) over two base tables.
//   ApplyFilter  — Algorithm 2 Filter == R-semijoin; a call carries one
//                  or more semijoins evaluated in ONE scan of the
//                  temporal table with shared getCenters fetches
//                  (Remark 3.1).
//   ApplyFetch   — Algorithm 2 Fetch: expands pending centers through
//                  the cluster-based R-join index. On a factorized
//                  table the expansion appends a delta column instead
//                  of re-widening the row block, expands each distinct
//                  pending-pool entry once, and can evaluate fused
//                  select edges on candidates *before* they are
//                  appended (fused_selects).
//   ApplySelect  — self R-join (Eq. 5): reachability selection between
//                  two bound columns via graph codes.
//
// Parallelism: every operator takes an optional ThreadPool. HPSJ fans
// out over 2-hop centers; filter/fetch/select fan out over contiguous
// temporal-table row ranges. Each chunk emits into its own buffer;
// filter/fetch/select merge chunks in chunk order, and HPSJ dedups its
// packed pair set through fixed hash buckets that are sorted + uniqued
// independently and concatenated in bucket order. Either way the
// produced ROWS — and each row's pending center list CentersFor(r) —
// are identical for every thread count, including the sequential
// pool == nullptr path. The internal pending-pool layout may differ
// with chunking (pools deduplicate per chunk), as may work counters:
// code_fetches, cluster_fetches and reach_memo_* depend on how rows
// were partitioned across chunks/workers. The produced rows never do —
// dedup and memoization only short-circuit recomputations whose result
// is a pure function of the probed node (pair).
#ifndef FGPM_EXEC_OPERATORS_H_
#define FGPM_EXEC_OPERATORS_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/plan.h"
#include "exec/temporal_table.h"
#include "gdb/database.h"
#include "query/pattern.h"
#include "reach/reach_memo.h"

namespace fgpm {

struct OperatorStats {
  uint64_t rows_scanned = 0;     // temporal rows examined by filters
  uint64_t rows_pruned = 0;      // rows dropped by filters/selects
  uint64_t pairs_emitted = 0;    // tuples produced before dedup
  uint64_t code_fetches = 0;     // getCenters / graph-code retrievals
  uint64_t cluster_fetches = 0;  // getF/getT cluster reads
  uint64_t wtable_lookups = 0;
  // Temporal tables are disk-resident in the paper's system (Shore):
  // each operator re-reads its input table and writes its output table.
  // We keep them in memory for speed but charge the equivalent page I/O
  // so DP-vs-DPS I/O comparisons mean what they meant in the paper.
  uint64_t temporal_pages_read = 0;
  uint64_t temporal_pages_written = 0;
  // Per-query reachability memo traffic (filter Xi cache + select
  // verdict cache). Zero when no ExecScratch / disabled memos.
  uint64_t reach_memo_probes = 0;
  uint64_t reach_memo_hits = 0;
  // Materialization accounting: full-width rows written into temporal
  // storage or the result set, and the NodeId-copy bytes the factorized
  // representation avoided relative to eager re-widening.
  uint64_t rows_materialized = 0;
  uint64_t copy_bytes_avoided = 0;
  // WCOJ bind accounting: k-way intersection work (candidates tested
  // against a non-driver set / candidates surviving every set) and
  // candidates that survived the set intersection but were dropped by a
  // per-candidate reachability probe.
  uint64_t kway_intersect_probes = 0;
  uint64_t kway_intersect_hits = 0;
  uint64_t wcoj_reach_pruned = 0;

  // Stats-delta protocol: every operator accumulates into a call-local
  // OperatorStats and folds it into the caller's struct exactly once,
  // on success (worker chunks fold into the call-local struct on the
  // calling thread after the parallel region joins). So the caller's
  // struct only ever changes by one Add per operator call — the
  // executor snapshots it around each plan step to attribute deltas to
  // that step's trace span, race-free at any thread count.
  void Add(const OperatorStats& o) {
    rows_scanned += o.rows_scanned;
    rows_pruned += o.rows_pruned;
    pairs_emitted += o.pairs_emitted;
    code_fetches += o.code_fetches;
    cluster_fetches += o.cluster_fetches;
    wtable_lookups += o.wtable_lookups;
    temporal_pages_read += o.temporal_pages_read;
    temporal_pages_written += o.temporal_pages_written;
    reach_memo_probes += o.reach_memo_probes;
    reach_memo_hits += o.reach_memo_hits;
    rows_materialized += o.rows_materialized;
    copy_bytes_avoided += o.copy_bytes_avoided;
    kway_intersect_probes += o.kway_intersect_probes;
    kway_intersect_hits += o.kway_intersect_hits;
    wcoj_reach_pruned += o.wcoj_reach_pruned;
  }
};

// Operator-owned scratch the Executor threads through a query: per-
// worker reachability memos (cleared per query) plus reusable buffers
// that hoist per-call allocations out of the hot probe loops. Operators
// accept scratch == nullptr (tests and benches calling them directly)
// and fall back to local temporaries.
struct ExecScratch {
  struct Worker {
    // ApplySelect + fused fetch selects: PackPair(u, v) -> verdict.
    ReachMemo select_memo;
    // ApplyFilter: (node << 8 | item) -> Xi slot. The memo slot index
    // doubles as the xi_pool index, so cached center lists are bounded
    // by the memo capacity. Cleared at the start of every filter call
    // (item indexes are call-local).
    ReachMemo filter_memo;
    std::vector<std::vector<CenterId>> xi_pool;
    GraphCodeRecord rx, ry;  // reused decoded-code records
  };
  std::vector<Worker> workers;
  // W(X, Y) probe buffers, reused call over call (capacity persists):
  // one for HPSJ's borrowed-buffer LookupSpan, one pool for filter items.
  std::vector<CenterId> wtable_scratch;
  std::vector<std::vector<CenterId>> wcenters_pool;

  // Sizes per-worker state; entries == 0 disables both memos.
  void Configure(unsigned num_workers, size_t entries) {
    workers.assign(std::max(1u, num_workers), Worker{});
    for (Worker& w : workers) {
      w.select_memo.Reset(entries);
      w.filter_memo.Reset(entries);
      w.xi_pool.assign(w.filter_memo.capacity(), {});
    }
  }

  // Per-query reset: memos are operator-call-scoped anyway (each
  // operator clears at entry and folds its traffic into OperatorStats
  // at exit), but clearing here too keeps stale verdicts from ever
  // crossing a query boundary (e.g. after an edge insert). O(1) per
  // worker via epochs.
  void BeginQuery() {
    for (Worker& w : workers) {
      w.select_memo.Clear();
      w.filter_memo.Clear();
    }
  }
};

// Charged pages for one pass over a temporal table's current contents
// (base block + delta levels + per-row pending center lists).
uint64_t TemporalTablePages(const TemporalTable& table);

// node_labels[i]: data-graph LabelId for pattern node i. Callers must
// have verified all labels exist (missing label => empty result upstream).
// Opens a plan with one base table: a single-column temporal table of
// ext(X) (the paper's DPS plans can semijoin a base table before any
// R-join — Figure 3, status S1).
Status ScanBase(const GraphDatabase& db, const Pattern& pattern,
                const std::vector<LabelId>& node_labels,
                PatternNodeId scan_node, TemporalTable* out,
                OperatorStats* stats);

Status HpsjBaseJoin(const GraphDatabase& db, const Pattern& pattern,
                    const std::vector<LabelId>& node_labels, uint32_t edge,
                    TemporalTable* out, OperatorStats* stats,
                    ThreadPool* pool = nullptr, ExecScratch* scratch = nullptr);

Status ApplyFilter(const GraphDatabase& db, const Pattern& pattern,
                   const std::vector<LabelId>& node_labels,
                   const std::vector<FilterItem>& items, TemporalTable* table,
                   OperatorStats* stats, ThreadPool* pool = nullptr,
                   ExecScratch* scratch = nullptr);

// `fused_selects` (factorized tables only): pattern edges whose other
// endpoint is already bound, evaluated per candidate inside the
// expansion loop — rejected candidates are never appended.
Status ApplyFetch(const GraphDatabase& db, const Pattern& pattern,
                  const std::vector<LabelId>& node_labels, uint32_t edge,
                  bool bound_is_source, TemporalTable* table,
                  OperatorStats* stats, ThreadPool* pool = nullptr,
                  ExecScratch* scratch = nullptr,
                  const std::vector<uint32_t>& fused_selects = {});

Status ApplySelect(const GraphDatabase& db, const Pattern& pattern,
                   const std::vector<LabelId>& node_labels, uint32_t edge,
                   TemporalTable* table, OperatorStats* stats,
                   ThreadPool* pool = nullptr, ExecScratch* scratch = nullptr);

}  // namespace fgpm

#endif  // FGPM_EXEC_OPERATORS_H_
