#include "exec/operators.h"

#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sorted_vector.h"

namespace fgpm {

uint64_t TemporalTablePages(const TemporalTable& table) {
  // 4 bytes per bound node id plus, per row and pending slot, the
  // row's center list (as the paper's (r_i, X_i) pairs are materialized).
  uint64_t bytes = table.raw_rows().size() * 4ull;
  for (const auto& slot : table.pending()) {
    for (uint32_t idx : slot.row_index) bytes += 4ull * slot.pool[idx].size();
  }
  return bytes / 8192 + 1;
}

Status ScanBase(const GraphDatabase& db, const Pattern& pattern,
                const std::vector<LabelId>& node_labels,
                PatternNodeId scan_node, TemporalTable* out,
                OperatorStats* stats) {
  (void)pattern;
  out->AddColumn(scan_node);
  FGPM_RETURN_IF_ERROR(
      db.table(node_labels[scan_node]).Scan([&](const GraphCodeRecord& r) {
        ++stats->rows_scanned;
        out->AppendRow({r.node});
      }));
  stats->temporal_pages_written += TemporalTablePages(*out);
  return Status::OK();
}

Status HpsjBaseJoin(const GraphDatabase& db, const Pattern& pattern,
                    const std::vector<LabelId>& node_labels, uint32_t edge,
                    TemporalTable* out, OperatorStats* stats) {
  const PatternEdge& e = pattern.edges()[edge];
  LabelId x = node_labels[e.from], y = node_labels[e.to];

  out->AddColumn(e.from);
  out->AddColumn(e.to);

  std::vector<CenterId> centers;
  FGPM_RETURN_IF_ERROR(db.wtable().Lookup(x, y, &centers));
  ++stats->wtable_lookups;

  // A pair can appear under several centers; HPSJ output is a set.
  std::unordered_set<uint64_t> seen;
  std::vector<NodeId> fs, ts;
  for (CenterId w : centers) {
    FGPM_RETURN_IF_ERROR(db.rjoin_index().GetF(w, x, &fs));
    FGPM_RETURN_IF_ERROR(db.rjoin_index().GetT(w, y, &ts));
    stats->cluster_fetches += 2;
    for (NodeId u : fs) {
      for (NodeId v : ts) {
        ++stats->pairs_emitted;
        if (seen.insert(PackPair(u, v)).second) {
          out->AppendRow({u, v});
        }
      }
    }
  }
  stats->temporal_pages_written += TemporalTablePages(*out);
  return Status::OK();
}

Status ApplyFilter(const GraphDatabase& db, const Pattern& pattern,
                   const std::vector<LabelId>& node_labels,
                   const std::vector<FilterItem>& items, TemporalTable* table,
                   OperatorStats* stats) {
  if (items.empty()) return Status::InvalidArgument("empty filter");
  stats->temporal_pages_read += TemporalTablePages(*table);
  const auto& edges = pattern.edges();

  struct ItemCtx {
    FilterItem item;
    size_t col = 0;      // probed column in the temporal table
    LabelId col_label = 0;
    bool use_out = false;  // probe out(x) vs in(y)
    std::vector<CenterId> wcenters;  // W(X, Y)
  };
  std::vector<ItemCtx> ctx(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const PatternEdge& e = edges[items[i].edge];
    PatternNodeId bound = items[i].bound_is_source ? e.from : e.to;
    auto col = table->ColumnOf(bound);
    if (!col) return Status::InvalidArgument("filter column not bound");
    ctx[i].item = items[i];
    ctx[i].col = *col;
    ctx[i].col_label = node_labels[bound];
    ctx[i].use_out = items[i].bound_is_source;
    FGPM_RETURN_IF_ERROR(db.wtable().Lookup(
        node_labels[e.from], node_labels[e.to], &ctx[i].wcenters));
    ++stats->wtable_lookups;
  }

  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const std::vector<NodeId>& rows = table->raw_rows();
  std::vector<NodeId> new_rows;
  // Surviving-row center sets per old pending slot (pools are shared and
  // carried over; only row indexes are filtered), plus one fresh slot
  // per filter item.
  std::vector<TemporalTable::PendingSlot> new_pending;
  for (const auto& slot : table->pending()) {
    new_pending.push_back({slot.edge, slot.bound_is_source, slot.pool, {}});
  }
  size_t first_fresh = new_pending.size();
  for (const auto& c : ctx) {
    new_pending.push_back({c.item.edge, c.item.bound_is_source, {}, {}});
  }

  // One scan; one getCenters per (row, distinct column) shared across
  // items (Remark 3.1).
  std::unordered_map<size_t, GraphCodeRecord> col_codes;
  std::vector<std::vector<CenterId>> xi(ctx.size());
  for (size_t r = 0; r < nrows; ++r) {
    ++stats->rows_scanned;
    col_codes.clear();
    bool ok = true;
    for (size_t i = 0; i < ctx.size() && ok; ++i) {
      auto it = col_codes.find(ctx[i].col);
      if (it == col_codes.end()) {
        GraphCodeRecord rec;
        FGPM_RETURN_IF_ERROR(
            db.GetCodes(rows[r * ncols + ctx[i].col], ctx[i].col_label, &rec));
        ++stats->code_fetches;
        it = col_codes.emplace(ctx[i].col, std::move(rec)).first;
      }
      const auto& code = ctx[i].use_out ? it->second.out : it->second.in;
      xi[i] = SortedIntersect(code, ctx[i].wcenters);
      if (xi[i].empty()) ok = false;
    }
    if (!ok) {
      ++stats->rows_pruned;
      continue;
    }
    new_rows.insert(new_rows.end(), rows.begin() + r * ncols,
                    rows.begin() + (r + 1) * ncols);
    for (size_t s = 0; s < first_fresh; ++s) {
      new_pending[s].row_index.push_back(table->pending()[s].row_index[r]);
    }
    for (size_t i = 0; i < ctx.size(); ++i) {
      TemporalTable::PendingSlot& fresh = new_pending[first_fresh + i];
      fresh.pool.push_back(std::move(xi[i]));
      fresh.row_index.push_back(static_cast<uint32_t>(fresh.pool.size() - 1));
    }
  }

  table->raw_rows() = std::move(new_rows);
  table->pending() = std::move(new_pending);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

Status ApplyFetch(const GraphDatabase& db, const Pattern& pattern,
                  const std::vector<LabelId>& node_labels, uint32_t edge,
                  bool bound_is_source, TemporalTable* table,
                  OperatorStats* stats) {
  auto slot_idx = table->PendingSlotFor(edge, bound_is_source);
  if (!slot_idx) return Status::InvalidArgument("fetch without filter");
  stats->temporal_pages_read += TemporalTablePages(*table);
  const PatternEdge& e = pattern.edges()[edge];
  PatternNodeId new_node = bound_is_source ? e.to : e.from;
  LabelId new_label = node_labels[new_node];

  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const std::vector<NodeId>& rows = table->raw_rows();
  const auto& slot = table->pending()[*slot_idx];

  std::vector<NodeId> new_rows;
  std::vector<TemporalTable::PendingSlot> new_pending;
  std::vector<size_t> kept_slots;
  for (size_t s = 0; s < table->pending().size(); ++s) {
    if (s == *slot_idx) continue;
    kept_slots.push_back(s);
    new_pending.push_back({table->pending()[s].edge,
                           table->pending()[s].bound_is_source,
                           table->pending()[s].pool,
                           {}});
  }

  std::unordered_set<NodeId> row_dedup;
  std::vector<NodeId> cluster;
  for (size_t r = 0; r < nrows; ++r) {
    row_dedup.clear();
    for (CenterId w : slot.CentersFor(r)) {
      // Expanding toward the edge target uses T-subclusters; toward the
      // source uses F-subclusters.
      if (bound_is_source) {
        FGPM_RETURN_IF_ERROR(db.rjoin_index().GetT(w, new_label, &cluster));
      } else {
        FGPM_RETURN_IF_ERROR(db.rjoin_index().GetF(w, new_label, &cluster));
      }
      ++stats->cluster_fetches;
      for (NodeId v : cluster) {
        ++stats->pairs_emitted;
        if (!row_dedup.insert(v).second) continue;
        new_rows.insert(new_rows.end(), rows.begin() + r * ncols,
                        rows.begin() + (r + 1) * ncols);
        new_rows.push_back(v);
        for (size_t k = 0; k < kept_slots.size(); ++k) {
          new_pending[k].row_index.push_back(
              table->pending()[kept_slots[k]].row_index[r]);
        }
      }
    }
  }

  table->AddColumn(new_node);
  table->raw_rows() = std::move(new_rows);
  table->pending() = std::move(new_pending);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

Status ApplySelect(const GraphDatabase& db, const Pattern& pattern,
                   const std::vector<LabelId>& node_labels, uint32_t edge,
                   TemporalTable* table, OperatorStats* stats) {
  const PatternEdge& e = pattern.edges()[edge];
  auto cx = table->ColumnOf(e.from), cy = table->ColumnOf(e.to);
  if (!cx || !cy) return Status::InvalidArgument("select columns not bound");
  stats->temporal_pages_read += TemporalTablePages(*table);

  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const std::vector<NodeId>& rows = table->raw_rows();
  std::vector<NodeId> new_rows;
  std::vector<TemporalTable::PendingSlot> new_pending;
  for (const auto& slot : table->pending()) {
    new_pending.push_back({slot.edge, slot.bound_is_source, slot.pool, {}});
  }

  GraphCodeRecord rx, ry;
  for (size_t r = 0; r < nrows; ++r) {
    ++stats->rows_scanned;
    NodeId u = rows[r * ncols + *cx], v = rows[r * ncols + *cy];
    FGPM_RETURN_IF_ERROR(db.GetCodes(u, node_labels[e.from], &rx));
    FGPM_RETURN_IF_ERROR(db.GetCodes(v, node_labels[e.to], &ry));
    stats->code_fetches += 2;
    // Labels differ, so u != v; the code intersection decides (it covers
    // same-SCC pairs through the shared component center).
    if (!SortedIntersects(rx.out, ry.in)) {
      ++stats->rows_pruned;
      continue;
    }
    new_rows.insert(new_rows.end(), rows.begin() + r * ncols,
                    rows.begin() + (r + 1) * ncols);
    for (size_t s = 0; s < table->pending().size(); ++s) {
      new_pending[s].row_index.push_back(table->pending()[s].row_index[r]);
    }
  }
  table->raw_rows() = std::move(new_rows);
  table->pending() = std::move(new_pending);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

}  // namespace fgpm
