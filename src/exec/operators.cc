#include "exec/operators.h"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/sorted_vector.h"

namespace fgpm {
namespace {

// Runs body over chunks of [0, n): inline when no pool is given (or the
// pool has one worker — ThreadPool::ParallelFor already inlines that),
// fanned out otherwise. Chunk decomposition never affects operator
// output (chunks are merged in chunk order), only scheduling.
void RunChunked(ThreadPool* pool, size_t n, size_t chunk_size,
                const ThreadPool::Body& body) {
  if (chunk_size == 0) chunk_size = 1;
  if (pool == nullptr) {
    for (size_t begin = 0; begin < n; begin += chunk_size) {
      body(0, begin / chunk_size, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
  pool->ParallelFor(n, chunk_size, body);
}

// Chunk size for fanning `n` items out across the pool: one chunk (full
// hoisting, zero overhead) when sequential, ~8 chunks per worker when
// parallel so skew still balances, floored at `min_chunk` items to keep
// per-chunk setup amortized.
size_t ChunkFor(size_t n, ThreadPool* pool, size_t min_chunk) {
  if (n == 0) return 1;
  if (pool == nullptr || pool->size() <= 1) return n;
  size_t target = n / (static_cast<size_t>(pool->size()) * 8) + 1;
  return std::max(min_chunk, target);
}

// First non-OK status in chunk order (deterministic error reporting).
Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// Fetch (and the eager fetch loop below) emit, per input row, the row
// extended by every candidate in ascending order. When the input rows
// were already lexicographically sorted and distinct under sorted_by,
// the output is sorted and distinct under sorted_by + {new column}.
void ExtendSortOrder(TemporalTable* table, size_t new_col) {
  if (table->sorted_by().empty()) return;
  std::vector<size_t> sb = table->sorted_by();
  sb.push_back(new_col);
  table->set_sorted_by(std::move(sb));
}

}  // namespace

uint64_t TemporalTablePages(const TemporalTable& table) {
  // 4 bytes per stored id (row block + delta levels) plus, per row and
  // pending slot, the row's center list (as the paper's (r_i, X_i)
  // pairs are materialized).
  uint64_t bytes = table.ByteSize();
  for (const auto& slot : table.pending()) {
    for (uint32_t idx : slot.row_index) bytes += 4ull * slot.pool[idx].size();
  }
  return (bytes + 8191) / 8192;
}

namespace {

// Single fold point of the stats-delta protocol (see operators.h):
// operator bodies below write a call-local OperatorStats which lands in
// the caller's struct in exactly one Add, and only on success.
Status FoldStats(Status s, OperatorStats* stats, const OperatorStats& local) {
  if (s.ok()) stats->Add(local);
  return s;
}

Status ScanBaseImpl(const GraphDatabase& db, const Pattern& pattern,
                    const std::vector<LabelId>& node_labels,
                    PatternNodeId scan_node, TemporalTable* out,
                    OperatorStats* stats) {
  (void)pattern;
  out->AddColumn(scan_node);
  out->Reserve(db.catalog().ExtentSize(node_labels[scan_node]), 1);
  FGPM_RETURN_IF_ERROR(
      db.table(node_labels[scan_node]).Scan([&](const GraphCodeRecord& r) {
        ++stats->rows_scanned;
        out->AppendRow(&r.node, 1);
      }));
  // Extents are loaded in ascending node order, so the scan is sorted.
  out->set_sorted_by({0});
  stats->rows_materialized += out->NumRows();
  stats->temporal_pages_written += TemporalTablePages(*out);
  return Status::OK();
}

Status HpsjBaseJoinImpl(const GraphDatabase& db, const Pattern& pattern,
                        const std::vector<LabelId>& node_labels, uint32_t edge,
                        TemporalTable* out, OperatorStats* stats,
                        ThreadPool* pool, ExecScratch* scratch) {
  const PatternEdge& e = pattern.edges()[edge];
  LabelId x = node_labels[e.from], y = node_labels[e.to];

  out->AddColumn(e.from);
  out->AddColumn(e.to);

  // Borrowed-buffer W-table probe: the scratch vector's capacity is
  // reused query over query; the span stays valid for the whole call
  // (nothing below touches the scratch buffer).
  std::vector<CenterId> local_centers;
  std::vector<CenterId>* cbuf =
      scratch ? &scratch->wtable_scratch : &local_centers;
  FGPM_ASSIGN_OR_RETURN(std::span<const CenterId> centers,
                        db.wtable().LookupSpan(x, y, cbuf));
  ++stats->wtable_lookups;

  if (centers.size() == 1) {
    // Single center: F(w) x T(w) has no duplicate pairs, and cluster
    // lists come back sorted (built in ascending node order), so the
    // cross product is already the sorted distinct output — skip the
    // bucketed dedup entirely and record the sort order.
    std::vector<NodeId> fs, ts;
    FGPM_RETURN_IF_ERROR(db.rjoin_index().GetF(centers[0], x, &fs));
    FGPM_RETURN_IF_ERROR(db.rjoin_index().GetT(centers[0], y, &ts));
    stats->cluster_fetches += 2;
    const uint64_t cross = static_cast<uint64_t>(fs.size()) * ts.size();
    stats->pairs_emitted += cross;
    std::vector<NodeId>& rows = out->raw_rows();
    rows.resize(2 * cross);
    size_t k = 0;
    for (NodeId u : fs) {
      for (NodeId v : ts) {
        rows[k++] = u;
        rows[k++] = v;
      }
    }
    out->set_sorted_by({0, 1});
    stats->rows_materialized += cross;
    stats->temporal_pages_written += TemporalTablePages(*out);
    return Status::OK();
  }

  // A pair can appear under several centers; HPSJ output is a set.
  // Workers emit packed (u, v) keys into chunk-local buffers, hashed
  // into a fixed number of buckets so the dedup itself parallelizes:
  // equal keys always land in the same bucket, each bucket is sorted +
  // uniqued independently, and the output is the buckets concatenated
  // in bucket order — thread-count invariant, no cross-worker locks,
  // and a large constant factor cheaper than a shared per-pair hash
  // set.
  constexpr size_t kBuckets = 64;
  constexpr uint64_t kMix = 0x9e3779b97f4a7c15ull;
  auto bucket_of = [](uint64_t key) {
    return static_cast<size_t>((key * kMix) >> 58);
  };
  const size_t n = centers.size();
  const size_t chunk = ChunkFor(n, pool, 1);
  const size_t nchunks = ThreadPool::NumChunks(n, chunk);
  struct ChunkOut {
    std::vector<std::vector<uint64_t>> buckets;
    std::vector<size_t> sorted;  // per bucket: length of sorted+unique prefix
    size_t buffered = 0;
    uint64_t pairs_emitted = 0;
    uint64_t cluster_fetches = 0;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  RunChunked(pool, n, chunk, [&](unsigned, size_t c, size_t begin,
                                 size_t end) {
    ChunkOut& part = parts[c];
    part.buckets.resize(kBuckets);
    part.sorted.assign(kBuckets, 0);
    std::vector<NodeId> fs, ts;  // reused across the chunk's centers
    // Amortized local dedup bounds the buffers near their unique size
    // even when cross products are duplicate-heavy.
    size_t dedup_watermark = 1u << 22;
    for (size_t i = begin; i < end; ++i) {
      CenterId w = centers[i];
      Status s = db.rjoin_index().GetF(w, x, &fs);
      if (s.ok()) s = db.rjoin_index().GetT(w, y, &ts);
      if (!s.ok()) {
        errs[c] = std::move(s);
        return;
      }
      part.cluster_fetches += 2;
      uint64_t cross = static_cast<uint64_t>(fs.size()) * ts.size();
      part.pairs_emitted += cross;
      part.buffered += cross;
      for (NodeId u : fs) {
        uint64_t hi = static_cast<uint64_t>(u) << 32;
        for (NodeId v : ts) {
          uint64_t key = hi | v;
          part.buckets[bucket_of(key)].push_back(key);
        }
      }
      if (part.buffered >= dedup_watermark) {
        part.buffered = 0;
        for (size_t b = 0; b < kBuckets; ++b) {
          auto& vec = part.buckets[b];
          // Sort only the fresh tail and merge it into the prefix that
          // earlier rounds already sorted + uniqued.
          auto mid = vec.begin() + part.sorted[b];
          std::sort(mid, vec.end());
          std::inplace_merge(vec.begin(), mid, vec.end());
          vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
          part.sorted[b] = vec.size();
          part.buffered += vec.size();
        }
        dedup_watermark = std::max<size_t>(1u << 22, part.buffered * 2);
      }
    }
  });
  FGPM_RETURN_IF_ERROR(FirstError(errs));
  for (const ChunkOut& part : parts) {
    stats->pairs_emitted += part.pairs_emitted;
    stats->cluster_fetches += part.cluster_fetches;
  }

  // Per-bucket merge in parallel: gather every chunk's slice of the
  // bucket, sort, unique. Bucket contents are a pure function of the
  // emitted key set, so neither chunking nor scheduling shows through.
  std::vector<std::vector<uint64_t>> merged(kBuckets);
  RunChunked(pool, kBuckets, 1, [&](unsigned, size_t, size_t begin,
                                    size_t end) {
    for (size_t b = begin; b < end; ++b) {
      size_t total = 0;
      for (const ChunkOut& part : parts) {
        if (!part.buckets.empty()) total += part.buckets[b].size();
      }
      std::vector<uint64_t>& m = merged[b];
      m.reserve(total);
      for (const ChunkOut& part : parts) {
        if (part.buckets.empty()) continue;
        m.insert(m.end(), part.buckets[b].begin(), part.buckets[b].end());
      }
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
    }
  });
  parts.clear();
  parts.shrink_to_fit();

  std::vector<size_t> offset(kBuckets + 1, 0);
  for (size_t b = 0; b < kBuckets; ++b) {
    offset[b + 1] = offset[b] + merged[b].size();
  }
  std::vector<NodeId>& rows = out->raw_rows();
  rows.resize(2 * offset[kBuckets]);
  RunChunked(pool, kBuckets, 1, [&](unsigned, size_t, size_t begin,
                                    size_t end) {
    for (size_t b = begin; b < end; ++b) {
      NodeId* dst = rows.data() + 2 * offset[b];
      for (uint64_t k : merged[b]) {
        *dst++ = PairFirst(k);
        *dst++ = PairSecond(k);
      }
    }
  });
  stats->rows_materialized += offset[kBuckets];
  stats->temporal_pages_written += TemporalTablePages(*out);
  return Status::OK();
}

Status ApplyFilterImpl(const GraphDatabase& db, const Pattern& pattern,
                       const std::vector<LabelId>& node_labels,
                       const std::vector<FilterItem>& items,
                       TemporalTable* table, OperatorStats* stats,
                       ThreadPool* pool, ExecScratch* scratch) {
  if (items.empty()) return Status::InvalidArgument("empty filter");
  stats->temporal_pages_read += TemporalTablePages(*table);
  const auto& edges = pattern.edges();

  struct ItemCtx {
    FilterItem item;
    size_t col = 0;      // probed column in the temporal table
    LabelId col_label = 0;
    bool use_out = false;  // probe out(x) vs in(y)
  };
  // W(X, Y) buffers hoisted into executor-owned scratch: their capacity
  // survives across filter calls (and queries) instead of being
  // reallocated per call.
  std::vector<std::vector<CenterId>> local_wcenters;
  std::vector<std::vector<CenterId>>& wcenters =
      scratch ? scratch->wcenters_pool : local_wcenters;
  if (wcenters.size() < items.size()) wcenters.resize(items.size());
  std::vector<ItemCtx> ctx(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const PatternEdge& e = edges[items[i].edge];
    PatternNodeId bound = items[i].bound_is_source ? e.from : e.to;
    auto col = table->ColumnOf(bound);
    if (!col) return Status::InvalidArgument("filter column not bound");
    ctx[i].item = items[i];
    ctx[i].col = *col;
    ctx[i].col_label = node_labels[bound];
    ctx[i].use_out = items[i].bound_is_source;
    FGPM_RETURN_IF_ERROR(db.wtable().Lookup(
        node_labels[e.from], node_labels[e.to], &wcenters[i]));
    ++stats->wtable_lookups;
  }

  // Per-worker Xi memo: Xi(node, item) = code(node) ∩ W(X, Y) is a pure
  // function of the probed node and the item, so cached center lists
  // never change the output — only how often getCenters and the
  // intersection run. Keys pack the item index into the low 12 bits;
  // cleared here because item indexes are call-local.
  const bool use_memo = scratch != nullptr && items.size() < 4096 &&
                        !scratch->workers.empty() &&
                        scratch->workers[0].filter_memo.enabled();
  if (use_memo) {
    for (auto& w : scratch->workers) w.filter_memo.Clear();
  }

  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  // Delta-chained tables probe through gathered column buffers (random
  // access would walk the parent chain per row); flat tables read the
  // row block directly.
  const bool chained = !table->deltas().empty();
  const std::vector<NodeId>& rows = table->raw_rows();
  std::vector<std::vector<NodeId>> gathered(ctx.size());
  std::vector<const NodeId*> colv(ctx.size(), nullptr);
  if (chained) {
    for (size_t i = 0; i < ctx.size(); ++i) {
      bool shared = false;
      for (size_t j = 0; j < i && !shared; ++j) {
        if (ctx[j].col == ctx[i].col) {
          colv[i] = colv[j];
          shared = true;
        }
      }
      if (shared) continue;
      table->GatherColumn(ctx[i].col, &gathered[i]);
      colv[i] = gathered[i].data();
    }
  }

  // Surviving-row center sets per old pending slot (pools are shared and
  // carried over; only row indexes are filtered), plus one fresh slot
  // per filter item.
  std::vector<TemporalTable::PendingSlot> new_pending;
  for (const auto& slot : table->pending()) {
    new_pending.push_back({slot.edge, slot.bound_is_source, slot.pool, {}});
  }
  size_t first_fresh = new_pending.size();
  for (const auto& c : ctx) {
    new_pending.push_back({c.item.edge, c.item.bound_is_source, {}, {}});
  }

  // Row-range partitions; each chunk scans its rows with its own shared
  // getCenters fetches (Remark 3.1) and buffers survivors. Fresh pools
  // are deduplicated per chunk by probed node (Xi is a pure function of
  // (node, item)), so rows repeating a node share one pool entry — the
  // property that lets a later fetch expand each entry once.
  const size_t chunk = ChunkFor(nrows, pool, 256);
  const size_t nchunks = ThreadPool::NumChunks(nrows, chunk);
  struct ChunkOut {
    std::vector<NodeId> rows;       // flat survivors (full row copies)
    std::vector<uint32_t> kept;     // chained survivors (deepest row indexes)
    std::vector<std::vector<uint32_t>> carried;  // per old pending slot
    // Per item: chunk-local deduped Xi pool + per-survivor entry index.
    std::vector<std::vector<std::vector<CenterId>>> fresh_pool;
    std::vector<std::vector<uint32_t>> fresh_idx;
    uint64_t rows_scanned = 0;
    uint64_t rows_pruned = 0;
    uint64_t code_fetches = 0;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  RunChunked(pool, nrows, chunk, [&](unsigned wk, size_t c, size_t begin,
                                     size_t end) {
    ChunkOut& part = parts[c];
    part.carried.resize(first_fresh);
    part.fresh_pool.resize(ctx.size());
    part.fresh_idx.resize(ctx.size());
    ExecScratch::Worker* ws =
        use_memo && wk < scratch->workers.size() ? &scratch->workers[wk]
                                                 : nullptr;
    // One scan; one getCenters per (row, distinct column) shared across
    // items (Remark 3.1).
    std::unordered_map<size_t, GraphCodeRecord> col_codes;
    // Per item: probed node -> chunk-local pool index (-1: empty Xi).
    std::vector<std::unordered_map<NodeId, int32_t>> seen(ctx.size());
    std::vector<uint32_t> idx_buf(ctx.size(), 0);
    std::vector<CenterId> xi;
    for (size_t r = begin; r < end; ++r) {
      ++part.rows_scanned;
      col_codes.clear();
      bool ok = true;
      for (size_t i = 0; i < ctx.size() && ok; ++i) {
        NodeId node = chained ? colv[i][r] : rows[r * ncols + ctx[i].col];
        auto [sit, inserted] = seen[i].try_emplace(node, -1);
        if (!inserted) {
          if (sit->second < 0) {
            ok = false;
          } else {
            idx_buf[i] = static_cast<uint32_t>(sit->second);
          }
          continue;
        }
        uint32_t memo_slot = 0;
        bool memo_hit = false;
        if (ws != nullptr) {
          uint64_t key = (static_cast<uint64_t>(node) << 12) | i;
          memo_slot = ws->filter_memo.Acquire(key, &memo_hit);
        }
        if (memo_hit) {
          xi = ws->xi_pool[memo_slot];  // Xi is a pure fn of (node, i)
        } else {
          auto it = col_codes.find(ctx[i].col);
          if (it == col_codes.end()) {
            GraphCodeRecord rec;
            Status s = db.GetCodes(node, ctx[i].col_label, &rec);
            if (!s.ok()) {
              errs[c] = std::move(s);
              return;
            }
            ++part.code_fetches;
            it = col_codes.emplace(ctx[i].col, std::move(rec)).first;
          }
          const auto& code = ctx[i].use_out ? it->second.out : it->second.in;
          // Hybrid kernel (galloping / SIMD merge) writing into the
          // hoisted per-item buffer (capacity reused across rows;
          // W(X, Y) is often much larger than a node's code, the
          // galloping regime).
          SortedIntersectInto(code, wcenters[i], &xi);
          if (ws != nullptr) ws->xi_pool[memo_slot] = xi;
        }
        if (xi.empty()) {
          ok = false;  // sit->second stays -1 (known-empty)
        } else {
          sit->second = static_cast<int32_t>(part.fresh_pool[i].size());
          idx_buf[i] = static_cast<uint32_t>(sit->second);
          part.fresh_pool[i].push_back(std::move(xi));
        }
      }
      if (!ok) {
        ++part.rows_pruned;
        continue;
      }
      if (chained) {
        part.kept.push_back(static_cast<uint32_t>(r));
      } else {
        part.rows.insert(part.rows.end(), rows.begin() + r * ncols,
                         rows.begin() + (r + 1) * ncols);
      }
      for (size_t s = 0; s < first_fresh; ++s) {
        part.carried[s].push_back(table->pending()[s].row_index[r]);
      }
      for (size_t i = 0; i < ctx.size(); ++i) {
        part.fresh_idx[i].push_back(idx_buf[i]);
      }
    }
  });
  FGPM_RETURN_IF_ERROR(FirstError(errs));

  size_t kept_rows = 0;
  for (const ChunkOut& part : parts) {
    kept_rows += chained ? part.kept.size()
                         : part.rows.size() / std::max<size_t>(1, ncols);
    stats->rows_scanned += part.rows_scanned;
    stats->rows_pruned += part.rows_pruned;
    stats->code_fetches += part.code_fetches;
  }
  if (use_memo) {
    for (const auto& w : scratch->workers) {
      stats->reach_memo_probes += w.filter_memo.probes();
      stats->reach_memo_hits += w.filter_memo.hits();
    }
  }
  for (size_t s = 0; s < first_fresh; ++s) {
    new_pending[s].row_index.reserve(kept_rows);
  }
  for (size_t i = 0; i < ctx.size(); ++i) {
    new_pending[first_fresh + i].row_index.reserve(kept_rows);
  }
  if (chained) {
    // Compact only the deepest delta level; shared prefixes stay put.
    TemporalTable::DeltaColumn& deep = table->deltas().back();
    std::vector<uint32_t> new_parent;
    std::vector<NodeId> new_value;
    new_parent.reserve(kept_rows);
    new_value.reserve(kept_rows);
    for (const ChunkOut& part : parts) {
      for (uint32_t r : part.kept) {
        new_parent.push_back(deep.parent[r]);
        new_value.push_back(deep.value[r]);
      }
    }
    deep.parent = std::move(new_parent);
    deep.value = std::move(new_value);
    if (ncols * 4 > 8) {
      stats->copy_bytes_avoided += kept_rows * (ncols * 4 - 8);
    }
  } else {
    std::vector<NodeId> new_rows;
    new_rows.reserve(kept_rows * ncols);
    for (ChunkOut& part : parts) {
      new_rows.insert(new_rows.end(), part.rows.begin(), part.rows.end());
    }
    table->raw_rows() = std::move(new_rows);
    stats->rows_materialized += kept_rows;
  }
  for (ChunkOut& part : parts) {
    for (size_t s = 0; s < first_fresh; ++s) {
      new_pending[s].row_index.insert(new_pending[s].row_index.end(),
                                      part.carried[s].begin(),
                                      part.carried[s].end());
    }
    for (size_t i = 0; i < ctx.size(); ++i) {
      TemporalTable::PendingSlot& slot = new_pending[first_fresh + i];
      uint32_t offset = static_cast<uint32_t>(slot.pool.size());
      for (auto& centers : part.fresh_pool[i]) {
        slot.pool.push_back(std::move(centers));
      }
      for (uint32_t idx : part.fresh_idx[i]) {
        slot.row_index.push_back(idx + offset);
      }
    }
  }

  table->pending() = std::move(new_pending);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

// Eager fetch: re-widen the row block, copying the full prefix per
// emitted row — the paper's layout and the A/B baseline.
Status FetchEager(const GraphDatabase& db, bool bound_is_source,
                  LabelId new_label, PatternNodeId new_node,
                  TemporalTable* table, OperatorStats* stats,
                  ThreadPool* pool, size_t slot_idx) {
  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const std::vector<NodeId>& rows = table->raw_rows();
  const auto& slot = table->pending()[slot_idx];

  std::vector<TemporalTable::PendingSlot> new_pending;
  std::vector<size_t> kept_slots;
  for (size_t s = 0; s < table->pending().size(); ++s) {
    if (s == slot_idx) continue;
    kept_slots.push_back(s);
    new_pending.push_back({table->pending()[s].edge,
                           table->pending()[s].bound_is_source,
                           table->pending()[s].pool,
                           {}});
  }

  // Row-range partitions; each chunk expands its rows' pending centers
  // through the R-join index into a local buffer. Within a row the
  // candidate set is sorted + uniqued (a row's expansion is a set).
  const size_t chunk = ChunkFor(nrows, pool, 64);
  const size_t nchunks = ThreadPool::NumChunks(nrows, chunk);
  struct ChunkOut {
    std::vector<NodeId> rows;
    std::vector<std::vector<uint32_t>> kept;  // per kept pending slot
    uint64_t cluster_fetches = 0;
    uint64_t pairs_emitted = 0;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  RunChunked(pool, nrows, chunk, [&](unsigned, size_t c, size_t begin,
                                     size_t end) {
    ChunkOut& part = parts[c];
    part.kept.resize(kept_slots.size());
    std::vector<NodeId> cluster, cand;  // reused across the chunk's rows
    for (size_t r = begin; r < end; ++r) {
      cand.clear();
      for (CenterId w : slot.CentersFor(r)) {
        // Expanding toward the edge target uses T-subclusters; toward
        // the source uses F-subclusters.
        Status s = bound_is_source
                       ? db.rjoin_index().GetT(w, new_label, &cluster)
                       : db.rjoin_index().GetF(w, new_label, &cluster);
        if (!s.ok()) {
          errs[c] = std::move(s);
          return;
        }
        ++part.cluster_fetches;
        part.pairs_emitted += cluster.size();
        cand.insert(cand.end(), cluster.begin(), cluster.end());
      }
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
      for (NodeId v : cand) {
        part.rows.insert(part.rows.end(), rows.begin() + r * ncols,
                         rows.begin() + (r + 1) * ncols);
        part.rows.push_back(v);
        for (size_t k = 0; k < kept_slots.size(); ++k) {
          part.kept[k].push_back(table->pending()[kept_slots[k]].row_index[r]);
        }
      }
    }
  });
  FGPM_RETURN_IF_ERROR(FirstError(errs));

  size_t out_rows = 0;
  for (const ChunkOut& part : parts) {
    out_rows += part.rows.size() / (ncols + 1);
    stats->cluster_fetches += part.cluster_fetches;
    stats->pairs_emitted += part.pairs_emitted;
  }
  std::vector<NodeId> new_rows;
  new_rows.reserve(out_rows * (ncols + 1));
  for (size_t k = 0; k < kept_slots.size(); ++k) {
    new_pending[k].row_index.reserve(out_rows);
  }
  for (ChunkOut& part : parts) {
    new_rows.insert(new_rows.end(), part.rows.begin(), part.rows.end());
    for (size_t k = 0; k < kept_slots.size(); ++k) {
      new_pending[k].row_index.insert(new_pending[k].row_index.end(),
                                      part.kept[k].begin(),
                                      part.kept[k].end());
    }
  }

  table->AddColumn(new_node);
  table->raw_rows() = std::move(new_rows);
  table->pending() = std::move(new_pending);
  ExtendSortOrder(table, ncols);
  stats->rows_materialized += out_rows;
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

// Factorized fetch: append a (parent, value) delta column instead of
// re-widening. Each distinct pending-pool entry is expanded through the
// cluster index exactly once (rows sharing a probed node share a pool
// entry since the filter dedup), single-center expansions skip the
// redundant re-sort, and fused select edges prune candidates before
// they are appended.
Status FetchFactorized(const GraphDatabase& db, const Pattern& pattern,
                       const std::vector<LabelId>& node_labels,
                       bool bound_is_source, LabelId new_label,
                       PatternNodeId new_node, TemporalTable* table,
                       OperatorStats* stats, ThreadPool* pool,
                       ExecScratch* scratch, size_t slot_idx,
                       const std::vector<uint32_t>& fused_selects) {
  const auto& edges = pattern.edges();
  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const auto& slot = table->pending()[slot_idx];

  std::vector<TemporalTable::PendingSlot> new_pending;
  std::vector<size_t> kept_slots;
  for (size_t s = 0; s < table->pending().size(); ++s) {
    if (s == slot_idx) continue;
    kept_slots.push_back(s);
    new_pending.push_back({table->pending()[s].edge,
                           table->pending()[s].bound_is_source,
                           table->pending()[s].pool,
                           {}});
  }

  // Fused select contexts: the other endpoint's values, gathered once
  // for the pre-fetch rows.
  struct Fused {
    uint32_t edge = 0;
    bool new_is_source = false;
    LabelId from_label = 0, to_label = 0;
    std::vector<NodeId> other_vals;
  };
  std::vector<Fused> fused(fused_selects.size());
  for (size_t k = 0; k < fused_selects.size(); ++k) {
    const PatternEdge& fe = edges[fused_selects[k]];
    Fused& f = fused[k];
    f.edge = fused_selects[k];
    f.new_is_source = (fe.from == new_node);
    if (!f.new_is_source && fe.to != new_node) {
      return Status::InvalidArgument("fused select does not touch fetched node");
    }
    PatternNodeId other = f.new_is_source ? fe.to : fe.from;
    auto oc = table->ColumnOf(other);
    if (!oc) return Status::InvalidArgument("fused select column not bound");
    f.from_label = node_labels[fe.from];
    f.to_label = node_labels[fe.to];
    table->GatherColumn(*oc, &f.other_vals);
  }

  // Phase 1: expand each referenced pool entry once. A pool entry is a
  // pure function of the probed node, so its expansion (the sorted set
  // of reachable new-label nodes) is too.
  const auto& pool_entries = slot.pool;
  const std::vector<uint32_t>& ridx = slot.row_index;
  std::vector<uint8_t> used(pool_entries.size(), 0);
  for (size_t r = 0; r < nrows; ++r) used[ridx[r]] = 1;

  const size_t npool = pool_entries.size();
  std::vector<std::vector<NodeId>> expansions(npool);
  {
    const size_t chunk = ChunkFor(npool, pool, 8);
    const size_t nchunks = ThreadPool::NumChunks(npool, chunk);
    struct ExpOut {
      uint64_t cluster_fetches = 0;
      uint64_t pairs_emitted = 0;
    };
    std::vector<ExpOut> eparts(nchunks);
    std::vector<Status> errs(nchunks);
    RunChunked(pool, npool, chunk, [&](unsigned, size_t c, size_t begin,
                                       size_t end) {
      ExpOut& part = eparts[c];
      std::vector<NodeId> cluster;  // reused across the chunk's entries
      for (size_t p = begin; p < end; ++p) {
        if (!used[p]) continue;
        std::vector<NodeId>& exp = expansions[p];
        const auto& centers = pool_entries[p];
        if (centers.size() == 1) {
          // A single cluster list is already sorted + unique (built in
          // ascending node order) — no re-sort needed.
          Status s = bound_is_source
                         ? db.rjoin_index().GetT(centers[0], new_label, &exp)
                         : db.rjoin_index().GetF(centers[0], new_label, &exp);
          if (!s.ok()) {
            errs[c] = std::move(s);
            return;
          }
          ++part.cluster_fetches;
          part.pairs_emitted += exp.size();
          continue;
        }
        for (CenterId w : centers) {
          Status s = bound_is_source
                         ? db.rjoin_index().GetT(w, new_label, &cluster)
                         : db.rjoin_index().GetF(w, new_label, &cluster);
          if (!s.ok()) {
            errs[c] = std::move(s);
            return;
          }
          ++part.cluster_fetches;
          part.pairs_emitted += cluster.size();
          exp.insert(exp.end(), cluster.begin(), cluster.end());
        }
        std::sort(exp.begin(), exp.end());
        exp.erase(std::unique(exp.begin(), exp.end()), exp.end());
      }
    });
    FGPM_RETURN_IF_ERROR(FirstError(errs));
    for (const ExpOut& part : eparts) {
      stats->cluster_fetches += part.cluster_fetches;
      stats->pairs_emitted += part.pairs_emitted;
    }
  }

  // Phase 2: emit (parent, value) pairs per row, running fused select
  // predicates on each candidate before it is appended.
  const bool use_memo = !fused.empty() && scratch != nullptr &&
                        !scratch->workers.empty() &&
                        scratch->workers[0].select_memo.enabled();
  if (use_memo) {
    for (auto& w : scratch->workers) w.select_memo.Clear();
  }
  const size_t chunk = ChunkFor(nrows, pool, 256);
  const size_t nchunks = ThreadPool::NumChunks(nrows, chunk);
  struct ChunkOut {
    std::vector<uint32_t> parent;
    std::vector<NodeId> value;
    std::vector<std::vector<uint32_t>> kept;  // per kept pending slot
    uint64_t rows_scanned = 0;
    uint64_t rows_pruned = 0;
    uint64_t code_fetches = 0;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  RunChunked(pool, nrows, chunk, [&](unsigned wk, size_t c, size_t begin,
                                     size_t end) {
    ChunkOut& part = parts[c];
    part.kept.resize(kept_slots.size());
    ExecScratch::Worker* ws =
        scratch != nullptr && wk < scratch->workers.size()
            ? &scratch->workers[wk]
            : nullptr;
    ReachMemo* memo =
        use_memo && ws != nullptr ? &ws->select_memo : nullptr;
    GraphCodeRecord local_rx, local_ry;
    GraphCodeRecord& rx = ws != nullptr ? ws->rx : local_rx;
    GraphCodeRecord& ry = ws != nullptr ? ws->ry : local_ry;
    for (size_t r = begin; r < end; ++r) {
      const std::vector<NodeId>& cand = expansions[ridx[r]];
      if (fused.empty()) {
        part.parent.insert(part.parent.end(), cand.size(),
                           static_cast<uint32_t>(r));
        part.value.insert(part.value.end(), cand.begin(), cand.end());
        for (size_t k = 0; k < kept_slots.size(); ++k) {
          part.kept[k].insert(
              part.kept[k].end(), cand.size(),
              table->pending()[kept_slots[k]].row_index[r]);
        }
        continue;
      }
      for (NodeId v : cand) {
        ++part.rows_scanned;
        bool pass = true;
        for (const Fused& f : fused) {
          NodeId u = f.new_is_source ? v : f.other_vals[r];
          NodeId w2 = f.new_is_source ? f.other_vals[r] : v;
          bool reachable;
          uint32_t memo_slot = 0;
          bool memo_hit = false;
          if (memo != nullptr) {
            memo_slot = memo->Acquire(PackPair(u, w2), &memo_hit);
          }
          if (memo_hit) {
            reachable = memo->value(memo_slot) != 0;
          } else {
            Status s = db.GetCodes(u, f.from_label, &rx);
            if (s.ok()) s = db.GetCodes(w2, f.to_label, &ry);
            if (!s.ok()) {
              errs[c] = std::move(s);
              return;
            }
            part.code_fetches += 2;
            reachable = SortedIntersects(rx.out, ry.in);
            if (memo != nullptr) {
              memo->set_value(memo_slot, reachable ? 1u : 0u);
            }
          }
          if (!reachable) {
            pass = false;
            break;
          }
        }
        if (!pass) {
          ++part.rows_pruned;
          continue;
        }
        part.parent.push_back(static_cast<uint32_t>(r));
        part.value.push_back(v);
        for (size_t k = 0; k < kept_slots.size(); ++k) {
          part.kept[k].push_back(
              table->pending()[kept_slots[k]].row_index[r]);
        }
      }
    }
  });
  FGPM_RETURN_IF_ERROR(FirstError(errs));

  size_t out_rows = 0;
  for (const ChunkOut& part : parts) {
    out_rows += part.parent.size();
    stats->rows_scanned += part.rows_scanned;
    stats->rows_pruned += part.rows_pruned;
    stats->code_fetches += part.code_fetches;
  }
  if (use_memo) {
    for (const auto& w : scratch->workers) {
      stats->reach_memo_probes += w.select_memo.probes();
      stats->reach_memo_hits += w.select_memo.hits();
    }
  }

  TemporalTable::DeltaColumn& d = table->AddDeltaColumn(new_node);
  d.parent.reserve(out_rows);
  d.value.reserve(out_rows);
  for (size_t k = 0; k < kept_slots.size(); ++k) {
    new_pending[k].row_index.reserve(out_rows);
  }
  for (ChunkOut& part : parts) {
    d.parent.insert(d.parent.end(), part.parent.begin(), part.parent.end());
    d.value.insert(d.value.end(), part.value.begin(), part.value.end());
    for (size_t k = 0; k < kept_slots.size(); ++k) {
      new_pending[k].row_index.insert(new_pending[k].row_index.end(),
                                      part.kept[k].begin(),
                                      part.kept[k].end());
    }
  }
  table->pending() = std::move(new_pending);
  // Eager would have written (ncols + 1) ids per output row; the delta
  // column writes 8 bytes (parent + value).
  stats->copy_bytes_avoided += out_rows * ((ncols + 1) * 4 - 8);
  ExtendSortOrder(table, ncols);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

Status ApplyFetchImpl(const GraphDatabase& db, const Pattern& pattern,
                      const std::vector<LabelId>& node_labels, uint32_t edge,
                      bool bound_is_source, TemporalTable* table,
                      OperatorStats* stats, ThreadPool* pool,
                      ExecScratch* scratch,
                      const std::vector<uint32_t>& fused_selects) {
  auto slot_idx = table->PendingSlotFor(edge, bound_is_source);
  if (!slot_idx) return Status::InvalidArgument("fetch without filter");
  const bool factorized = table->mode() == Materialization::kFactorized;
  if (!fused_selects.empty() && !factorized) {
    return Status::InvalidArgument("select fusion requires factorized tables");
  }
  stats->temporal_pages_read += TemporalTablePages(*table);
  const PatternEdge& e = pattern.edges()[edge];
  PatternNodeId new_node = bound_is_source ? e.to : e.from;
  LabelId new_label = node_labels[new_node];
  if (factorized) {
    return FetchFactorized(db, pattern, node_labels, bound_is_source,
                           new_label, new_node, table, stats, pool, scratch,
                           *slot_idx, fused_selects);
  }
  return FetchEager(db, bound_is_source, new_label, new_node, table, stats,
                    pool, *slot_idx);
}

Status ApplySelectImpl(const GraphDatabase& db, const Pattern& pattern,
                       const std::vector<LabelId>& node_labels, uint32_t edge,
                       TemporalTable* table, OperatorStats* stats,
                       ThreadPool* pool, ExecScratch* scratch) {
  const PatternEdge& e = pattern.edges()[edge];
  auto cx = table->ColumnOf(e.from), cy = table->ColumnOf(e.to);
  if (!cx || !cy) return Status::InvalidArgument("select columns not bound");
  stats->temporal_pages_read += TemporalTablePages(*table);

  // Per-worker reachability memo: a select's verdict for (u, v) is a
  // pure function of the node pair, so a hit skips both getCenters
  // calls and the code intersection without changing which rows
  // survive. Joins frequently revisit pairs (a fetch multiplies rows
  // without changing the bound pair), making repeats common.
  const bool use_memo = scratch != nullptr && !scratch->workers.empty() &&
                        scratch->workers[0].select_memo.enabled();
  if (use_memo) {
    for (auto& w : scratch->workers) w.select_memo.Clear();
  }

  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const bool chained = !table->deltas().empty();
  const std::vector<NodeId>& rows = table->raw_rows();
  std::vector<NodeId> gx, gy;
  if (chained) {
    table->GatherColumn(*cx, &gx);
    table->GatherColumn(*cy, &gy);
  }
  std::vector<TemporalTable::PendingSlot> new_pending;
  for (const auto& slot : table->pending()) {
    new_pending.push_back({slot.edge, slot.bound_is_source, slot.pool, {}});
  }

  const size_t chunk = ChunkFor(nrows, pool, 256);
  const size_t nchunks = ThreadPool::NumChunks(nrows, chunk);
  struct ChunkOut {
    std::vector<NodeId> rows;       // flat survivors
    std::vector<uint32_t> kept_rows;  // chained survivors
    std::vector<std::vector<uint32_t>> kept;  // per pending slot
    uint64_t rows_scanned = 0;
    uint64_t rows_pruned = 0;
    uint64_t code_fetches = 0;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  RunChunked(pool, nrows, chunk, [&](unsigned wk, size_t c, size_t begin,
                                     size_t end) {
    ChunkOut& part = parts[c];
    part.kept.resize(table->pending().size());
    ExecScratch::Worker* ws =
        scratch != nullptr && wk < scratch->workers.size()
            ? &scratch->workers[wk]
            : nullptr;
    ReachMemo* memo =
        ws != nullptr && ws->select_memo.enabled() ? &ws->select_memo
                                                   : nullptr;
    GraphCodeRecord local_rx, local_ry;
    GraphCodeRecord& rx = ws != nullptr ? ws->rx : local_rx;
    GraphCodeRecord& ry = ws != nullptr ? ws->ry : local_ry;
    for (size_t r = begin; r < end; ++r) {
      ++part.rows_scanned;
      NodeId u = chained ? gx[r] : rows[r * ncols + *cx];
      NodeId v = chained ? gy[r] : rows[r * ncols + *cy];
      bool reachable;
      uint32_t memo_slot = 0;
      bool memo_hit = false;
      if (memo != nullptr) {
        memo_slot = memo->Acquire(PackPair(u, v), &memo_hit);
      }
      if (memo_hit) {
        reachable = memo->value(memo_slot) != 0;
      } else {
        Status s = db.GetCodes(u, node_labels[e.from], &rx);
        if (s.ok()) s = db.GetCodes(v, node_labels[e.to], &ry);
        if (!s.ok()) {
          errs[c] = std::move(s);
          return;
        }
        part.code_fetches += 2;
        // Labels differ, so u != v; the code intersection decides (it
        // covers same-SCC pairs through the shared component center).
        reachable = SortedIntersects(rx.out, ry.in);
        if (memo != nullptr) memo->set_value(memo_slot, reachable ? 1u : 0u);
      }
      if (!reachable) {
        ++part.rows_pruned;
        continue;
      }
      if (chained) {
        part.kept_rows.push_back(static_cast<uint32_t>(r));
      } else {
        part.rows.insert(part.rows.end(), rows.begin() + r * ncols,
                         rows.begin() + (r + 1) * ncols);
      }
      for (size_t s2 = 0; s2 < table->pending().size(); ++s2) {
        part.kept[s2].push_back(table->pending()[s2].row_index[r]);
      }
    }
  });
  FGPM_RETURN_IF_ERROR(FirstError(errs));

  size_t kept_rows = 0;
  for (ChunkOut& part : parts) {
    kept_rows += chained ? part.kept_rows.size()
                         : part.rows.size() / std::max<size_t>(1, ncols);
    stats->rows_scanned += part.rows_scanned;
    stats->rows_pruned += part.rows_pruned;
    stats->code_fetches += part.code_fetches;
    for (size_t s = 0; s < table->pending().size(); ++s) {
      new_pending[s].row_index.insert(new_pending[s].row_index.end(),
                                      part.kept[s].begin(),
                                      part.kept[s].end());
    }
  }
  if (use_memo) {
    for (const auto& w : scratch->workers) {
      stats->reach_memo_probes += w.select_memo.probes();
      stats->reach_memo_hits += w.select_memo.hits();
    }
  }
  if (chained) {
    TemporalTable::DeltaColumn& deep = table->deltas().back();
    std::vector<uint32_t> new_parent;
    std::vector<NodeId> new_value;
    new_parent.reserve(kept_rows);
    new_value.reserve(kept_rows);
    for (const ChunkOut& part : parts) {
      for (uint32_t r : part.kept_rows) {
        new_parent.push_back(deep.parent[r]);
        new_value.push_back(deep.value[r]);
      }
    }
    deep.parent = std::move(new_parent);
    deep.value = std::move(new_value);
    if (ncols * 4 > 8) {
      stats->copy_bytes_avoided += kept_rows * (ncols * 4 - 8);
    }
  } else {
    std::vector<NodeId> new_rows;
    new_rows.reserve(kept_rows * ncols);
    for (ChunkOut& part : parts) {
      new_rows.insert(new_rows.end(), part.rows.begin(), part.rows.end());
    }
    table->raw_rows() = std::move(new_rows);
    stats->rows_materialized += kept_rows;
  }
  table->pending() = std::move(new_pending);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

}  // namespace

Status ScanBase(const GraphDatabase& db, const Pattern& pattern,
                const std::vector<LabelId>& node_labels,
                PatternNodeId scan_node, TemporalTable* out,
                OperatorStats* stats) {
  OperatorStats local;
  return FoldStats(
      ScanBaseImpl(db, pattern, node_labels, scan_node, out, &local), stats,
      local);
}

Status HpsjBaseJoin(const GraphDatabase& db, const Pattern& pattern,
                    const std::vector<LabelId>& node_labels, uint32_t edge,
                    TemporalTable* out, OperatorStats* stats,
                    ThreadPool* pool, ExecScratch* scratch) {
  OperatorStats local;
  return FoldStats(HpsjBaseJoinImpl(db, pattern, node_labels, edge, out,
                                    &local, pool, scratch),
                   stats, local);
}

Status ApplyFilter(const GraphDatabase& db, const Pattern& pattern,
                   const std::vector<LabelId>& node_labels,
                   const std::vector<FilterItem>& items, TemporalTable* table,
                   OperatorStats* stats, ThreadPool* pool,
                   ExecScratch* scratch) {
  OperatorStats local;
  return FoldStats(ApplyFilterImpl(db, pattern, node_labels, items, table,
                                   &local, pool, scratch),
                   stats, local);
}

Status ApplyFetch(const GraphDatabase& db, const Pattern& pattern,
                  const std::vector<LabelId>& node_labels, uint32_t edge,
                  bool bound_is_source, TemporalTable* table,
                  OperatorStats* stats, ThreadPool* pool,
                  ExecScratch* scratch,
                  const std::vector<uint32_t>& fused_selects) {
  OperatorStats local;
  return FoldStats(
      ApplyFetchImpl(db, pattern, node_labels, edge, bound_is_source, table,
                     &local, pool, scratch, fused_selects),
      stats, local);
}

Status ApplySelect(const GraphDatabase& db, const Pattern& pattern,
                   const std::vector<LabelId>& node_labels, uint32_t edge,
                   TemporalTable* table, OperatorStats* stats,
                   ThreadPool* pool, ExecScratch* scratch) {
  OperatorStats local;
  return FoldStats(ApplySelectImpl(db, pattern, node_labels, edge, table,
                                   &local, pool, scratch),
                   stats, local);
}

}  // namespace fgpm
