#include "exec/naive_matcher.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "graph/reach_oracle.h"

namespace fgpm {
namespace {

struct SearchState {
  const Graph* g;
  const Pattern* pattern;
  ReachOracle* oracle;
  std::vector<LabelId> node_labels;
  std::vector<PatternNodeId> order;      // binding order
  std::vector<NodeId> binding;           // per pattern node
  std::vector<std::vector<NodeId>> out;  // result rows
};

// Checks every pattern edge whose endpoints are both bound, where at
// least one endpoint is the node bound last.
bool ConsistentWith(SearchState& s, PatternNodeId just_bound,
                    const std::vector<bool>& bound) {
  for (const PatternEdge& e : s.pattern->edges()) {
    if (e.from != just_bound && e.to != just_bound) continue;
    if (!bound[e.from] || !bound[e.to]) continue;
    if (!s.oracle->Reaches(s.binding[e.from], s.binding[e.to])) return false;
  }
  return true;
}

void Backtrack(SearchState& s, size_t depth, std::vector<bool>& bound) {
  if (depth == s.order.size()) {
    s.out.push_back(s.binding);
    return;
  }
  PatternNodeId pn = s.order[depth];
  for (NodeId v : s.g->Extent(s.node_labels[pn])) {
    s.binding[pn] = v;
    bound[pn] = true;
    if (ConsistentWith(s, pn, bound)) Backtrack(s, depth + 1, bound);
    bound[pn] = false;
  }
}

}  // namespace

Result<MatchResult> NaiveMatch(const Graph& g, const Pattern& pattern) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  WallTimer timer;

  MatchResult result;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    result.column_labels.push_back(pattern.label(i));
  }

  SearchState s;
  s.g = &g;
  s.pattern = &pattern;
  ReachOracle oracle(&g);
  s.oracle = &oracle;
  s.node_labels.resize(pattern.num_nodes());
  bool resolvable = true;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = g.FindLabel(pattern.label(i));
    if (!l) {
      resolvable = false;
      break;
    }
    s.node_labels[i] = *l;
  }

  if (resolvable) {
    // Bind smaller extents first to cut the search tree.
    s.order.resize(pattern.num_nodes());
    std::iota(s.order.begin(), s.order.end(), 0);
    std::sort(s.order.begin(), s.order.end(),
              [&](PatternNodeId a, PatternNodeId b) {
                return g.Extent(s.node_labels[a]).size() <
                       g.Extent(s.node_labels[b]).size();
              });
    s.binding.assign(pattern.num_nodes(), kInvalidNode);
    std::vector<bool> bound(pattern.num_nodes(), false);
    Backtrack(s, 0, bound);
    result.rows = std::move(s.out);
  }

  result.stats.result_rows = result.rows.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace fgpm
