// Batched multi-query execution: run several pattern queries against
// one GraphDatabase sharing their opening work (Remark 3.1 extended
// across queries).
//
// Concurrent queries over the same data overwhelmingly open the same
// way — a scan of one label's base table, optionally R-semijoined by a
// filter, or one HPSJ base join of a hot label pair. ExecuteBatch
// groups the batch by that *opening signature*; each group computes its
// seed table ONCE (with intra-query parallelism over the executor's
// pool), then fans the per-query pipeline tails out across the pool,
// one query per task, each resuming from a private copy of the seed at
// its plan's first unshared step.
//
// Grouping key (labels are catalog LabelIds, so two spellings of the
// same opening collide):
//   kScanBase [+ kFilter]:  scan label + the sorted multiset of
//                           (other-endpoint label, bound direction) of
//                           the filter's semijoins;
//   kHpsjBase:              the edge's (source label, target label).
//
// A seed is translated into a member's coordinates structurally: the
// schema's pattern-node ids map by label identity, and each pending
// semijoin slot maps to the member edge with the same (other label,
// direction) — unique, because patterns reject duplicate edges.
//
// Pipeline tails run single-threaded (the batch itself is the unit of
// parallelism); operators produce identical rows for every thread
// count, so each query's result is row-identical to a solo Execute.
#ifndef FGPM_EXEC_BATCH_H_
#define FGPM_EXEC_BATCH_H_

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/engine.h"
#include "gdb/database.h"
#include "query/pattern.h"

namespace fgpm {

// One query of a batch. `pattern` and `plan` must outlive the call;
// `node_labels` are the pattern's labels resolved against the catalog
// (resolvable == false means some label has no extent — the result is
// empty by definition and the query never executes).
struct BatchQuery {
  const Pattern* pattern = nullptr;
  const Plan* plan = nullptr;
  std::vector<LabelId> node_labels;
  bool resolvable = true;
};

struct BatchExecStats {
  uint64_t shared_seed_groups = 0;  // groups that seeded >= 2 queries
  uint64_t shared_seed_reuses = 0;  // queries served from another's seed
};

// Reusable per-batch scratch: a one-worker ExecScratch per pipeline-
// tail worker. Configuring an ExecScratch allocates memo tables
// (megabytes at the 65536 reach_cache_entries default), so callers that
// batch repeatedly MUST reuse one of these across calls — Configure is
// idempotent for an unchanged worker count and only epoch-clears.
//
// Tail memos are capped at kTailMemoEntries: a tail runs ONE query's
// pipeline after the shared seed, so its memo working set is per-query,
// not per-scan — full-size tables would cost more to zero than they
// save in probes (the lossy open-addressed memo stays correct at any
// size). Seed builds use a borrowed full-size multi-worker scratch
// (typically Executor::scratch(), idle while the batch runs).
struct BatchScratch {
  static constexpr size_t kTailMemoEntries = 8192;

  std::vector<ExecScratch> tails;

  void Configure(unsigned workers, size_t entries) {
    const size_t capped = std::min(entries, kTailMemoEntries);
    if (workers == workers_ && capped == entries_) {
      for (ExecScratch& s : tails) s.BeginQuery();
      return;
    }
    workers_ = workers;
    entries_ = capped;
    tails.resize(workers);
    for (ExecScratch& s : tails) s.Configure(1, capped);
  }

 private:
  unsigned workers_ = 0;
  size_t entries_ = SIZE_MAX;  // distinct from any real configuration
};

// Executes every query of the batch; results[i] answers queries[i].
// Seed-step operator counters fold into the group leader's stats (the
// work happened once — charging every member would double-count);
// members that reused a seed carry only their own tail's counters.
// Per-query buffer-pool deltas are not attributed (the pool counters
// are database-global and the batch interleaves); stats.io stays zero.
// `scratch` may be null (a call-local one is built — fine for one-off
// calls, wasteful in a serving loop). `seed_scratch` is the multi-worker
// scratch used for shared seed builds — pass the owning Executor's
// scratch() (idle while the batch runs); null builds a call-local one.
Status ExecuteBatch(const GraphDatabase& db,
                    const std::vector<BatchQuery>& queries,
                    const ExecOptions& options, ThreadPool* pool,
                    BatchScratch* scratch, ExecScratch* seed_scratch,
                    std::vector<MatchResult>* results, BatchExecStats* stats);

}  // namespace fgpm

#endif  // FGPM_EXEC_BATCH_H_
