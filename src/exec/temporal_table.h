// Temporal (intermediate) table: rows bind a subset of pattern labels;
// rows may carry *pending* center sets produced by R-semijoins whose
// Fetch has not run yet (the separation DPS exploits, Section 4.2).
#ifndef FGPM_EXEC_TEMPORAL_TABLE_H_
#define FGPM_EXEC_TEMPORAL_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "query/pattern.h"
#include "reach/two_hop.h"

namespace fgpm {

class TemporalTable {
 public:
  // Bound pattern nodes, in binding order; rows_ is row-major with one
  // NodeId per schema column.
  const std::vector<PatternNodeId>& schema() const { return schema_; }
  size_t NumColumns() const { return schema_.size(); }
  size_t NumRows() const { return rows_.size() / std::max<size_t>(1, schema_.size()); }

  NodeId At(size_t row, size_t col) const {
    return rows_[row * schema_.size() + col];
  }

  // Column index of a pattern node, if bound.
  std::optional<size_t> ColumnOf(PatternNodeId node) const;

  // --- construction (used by operators) ---------------------------------
  void AddColumn(PatternNodeId node) { schema_.push_back(node); }
  void AppendRow(const std::vector<NodeId>& row) {
    rows_.insert(rows_.end(), row.begin(), row.end());
  }
  std::vector<NodeId>& raw_rows() { return rows_; }
  const std::vector<NodeId>& raw_rows() const { return rows_; }

  // --- pending semijoin state -------------------------------------------
  struct PendingSlot {
    uint32_t edge = 0;
    bool bound_is_source = false;
    // The intersections X_i of probed codes with W(X,Y) (Algorithm 2,
    // Filter), deduplicated in a pool: row r's centers are
    // pool[row_index[r]]. Fetch expansions copy only the 4-byte index,
    // not the vector.
    std::vector<std::vector<CenterId>> pool;
    std::vector<uint32_t> row_index;

    const std::vector<CenterId>& CentersFor(size_t row) const {
      return pool[row_index[row]];
    }
  };
  std::vector<PendingSlot>& pending() { return pending_; }
  const std::vector<PendingSlot>& pending() const { return pending_; }

  // Index of the pending slot for (edge, dir), if present.
  std::optional<size_t> PendingSlotFor(uint32_t edge,
                                       bool bound_is_source) const;

 private:
  std::vector<PatternNodeId> schema_;
  std::vector<NodeId> rows_;
  std::vector<PendingSlot> pending_;
};

}  // namespace fgpm

#endif  // FGPM_EXEC_TEMPORAL_TABLE_H_
