// Temporal (intermediate) table: rows bind a subset of pattern labels;
// rows may carry *pending* center sets produced by R-semijoins whose
// Fetch has not run yet (the separation DPS exploits, Section 4.2).
//
// Two row representations share this class:
//
//   kEager      — one row-major NodeId block (`rows_`), re-widened and
//                 fully copied by every fetch. The paper's layout; kept
//                 as the A/B baseline.
//   kFactorized — the row-major block holds only the columns bound
//                 before the first fetch; each fetch appends a
//                 DeltaColumn of (parent_row, new_node) pairs that
//                 reference the previous level. A chain of fetches
//                 forms a factorized prefix tree; full rows exist only
//                 when GatherColumn / Flatten materializes them (once,
//                 at output).
//
// NumRows() always refers to the deepest level — the logical row count.
// Filters and selects compact only the deepest level; earlier levels
// keep unreferenced rows (they are shared prefixes, dropping them would
// mean rewriting every child level for no semantic gain).
#ifndef FGPM_EXEC_TEMPORAL_TABLE_H_
#define FGPM_EXEC_TEMPORAL_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "query/pattern.h"
#include "reach/two_hop.h"

namespace fgpm {

// Intermediate-result policy, plumbed through ExecOptions.
enum class Materialization : uint8_t {
  kEager,       // row-major copies at every join (baseline)
  kFactorized,  // delta columns, rows materialized at output
};

class TemporalTable {
 public:
  TemporalTable() = default;
  explicit TemporalTable(Materialization mode) : mode_(mode) {}

  Materialization mode() const { return mode_; }

  // One fetch level of the factorized representation: row r of this
  // level extends row parent[r] of the previous level with value[r]
  // bound to pattern node `node`.
  struct DeltaColumn {
    PatternNodeId node = 0;
    std::vector<uint32_t> parent;
    std::vector<NodeId> value;
  };

  // Bound pattern nodes, in binding order: base columns first, then one
  // per delta level.
  const std::vector<PatternNodeId>& schema() const { return schema_; }
  size_t NumColumns() const { return schema_.size(); }
  size_t base_columns() const { return schema_.size() - deltas_.size(); }
  size_t NumRows() const {
    if (!deltas_.empty()) return deltas_.back().value.size();
    return rows_.size() / std::max<size_t>(1, schema_.size());
  }

  // O(1) on the eager block; O(chain depth) through delta parents.
  NodeId At(size_t row, size_t col) const;

  // Column index of a pattern node, if bound.
  std::optional<size_t> ColumnOf(PatternNodeId node) const;

  // --- eager construction (used by operators) ----------------------------
  // Base columns/rows; delta levels must not exist yet when appending.
  void AddColumn(PatternNodeId node) { schema_.push_back(node); }
  void AppendRow(const std::vector<NodeId>& row) {
    AppendRow(row.data(), row.size());
  }
  // Span-style overload: operators append straight from their buffers
  // instead of building a scratch vector per emitted row.
  void AppendRow(const NodeId* row, size_t n) {
    rows_.insert(rows_.end(), row, row + n);
  }
  void Reserve(size_t rows, size_t cols) { rows_.reserve(rows * cols); }
  // The row-major base block (all columns when no deltas exist).
  std::vector<NodeId>& raw_rows() { return rows_; }
  const std::vector<NodeId>& raw_rows() const { return rows_; }

  // --- factorized construction -------------------------------------------
  DeltaColumn& AddDeltaColumn(PatternNodeId node) {
    schema_.push_back(node);
    deltas_.emplace_back();
    deltas_.back().node = node;
    return deltas_.back();
  }
  std::vector<DeltaColumn>& deltas() { return deltas_; }
  const std::vector<DeltaColumn>& deltas() const { return deltas_; }

  // Materializes column `col` for every current (deepest-level) row by
  // composing parent chains top-down: O(rows * depth), sequential reads.
  void GatherColumn(size_t col, std::vector<NodeId>* out) const;

  // Rewrites the table as one row-major block (drops all delta levels).
  // The row order is preserved. For operators that genuinely need
  // random row access.
  void Flatten();

  // Bytes of the current representation (base block + delta levels),
  // excluding pending pools. Basis of the charged temporal-table I/O.
  uint64_t ByteSize() const;

  // --- sort-order provenance ---------------------------------------------
  // Nonempty means: the current rows are lexicographically sorted AND
  // distinct under these columns (so downstream consumers can skip
  // re-sorting). Set by operators that produce provably sorted output
  // (single-center HPSJ, fetch over a sorted parent order); cleared
  // when the property cannot be guaranteed. Filters/selects preserve it
  // (a subsequence of sorted distinct rows stays sorted and distinct).
  const std::vector<size_t>& sorted_by() const { return sorted_by_; }
  void set_sorted_by(std::vector<size_t> cols) { sorted_by_ = std::move(cols); }

  // --- pending semijoin state -------------------------------------------
  struct PendingSlot {
    uint32_t edge = 0;
    bool bound_is_source = false;
    // The intersections X_i of probed codes with W(X,Y) (Algorithm 2,
    // Filter), deduplicated in a pool: row r's centers are
    // pool[row_index[r]]. Fetch expansions copy only the 4-byte index,
    // not the vector, and rows whose probed node coincides share one
    // pool entry, so a fetch can expand each distinct entry once.
    std::vector<std::vector<CenterId>> pool;
    std::vector<uint32_t> row_index;

    const std::vector<CenterId>& CentersFor(size_t row) const {
      return pool[row_index[row]];
    }
  };
  std::vector<PendingSlot>& pending() { return pending_; }
  const std::vector<PendingSlot>& pending() const { return pending_; }

  // Index of the pending slot for (edge, dir), if present.
  std::optional<size_t> PendingSlotFor(uint32_t edge,
                                       bool bound_is_source) const;

 private:
  Materialization mode_ = Materialization::kEager;
  std::vector<PatternNodeId> schema_;
  std::vector<NodeId> rows_;
  std::vector<DeltaColumn> deltas_;
  std::vector<size_t> sorted_by_;
  std::vector<PendingSlot> pending_;
};

}  // namespace fgpm

#endif  // FGPM_EXEC_TEMPORAL_TABLE_H_
