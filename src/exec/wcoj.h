// Worst-case-optimal vertex binding (leapfrog-triejoin style) for
// cyclic patterns: one ApplyWcojBind call extends every row of the
// temporal table by one pattern vertex whose candidate set is the k-way
// intersection of the per-constraint reachable sets.
//
// For a constraint edge X -> V with X bound to u, the V-labeled nodes
// reachable from u are exactly  ∪ { T-subcluster(c, V) : c ∈ out(u) ∩
// W(X, V) }  — the same expansion the Fetch operator performs, so the
// bound vertex's candidates agree with any binary plan. Per row the
// operator adaptively splits the constraints: the smallest estimated
// expansion drives, near-sized expansions are materialized and pruned
// via IntersectKWayU32 (bitmap sidecars are built over large expansions
// so the k-way primitive can take its bitmap-AND fast path), and
// expansions that would dwarf the driver degrade to per-candidate
// reachability probes through the per-worker select ReachMemo.
//
// Expansions are memoized per (probed node, constraint) within a row
// chunk — rows repeating a bound node share one expansion, mirroring
// the filter/fetch pool dedup. Chunks emit into local buffers merged in
// chunk order, so the produced rows are identical for every thread
// count (the work counters, as everywhere, are not).
//
// On a factorized table the bound vertex becomes a new delta level; in
// eager mode the row block is re-widened like FetchEager. Pending
// filter slots (hybrid plans can bind mid-pipeline) are carried through
// unchanged.
#ifndef FGPM_EXEC_WCOJ_H_
#define FGPM_EXEC_WCOJ_H_

#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/temporal_table.h"
#include "gdb/database.h"
#include "query/pattern.h"

namespace fgpm {

// Binds step.scan_node using the constraint edges in step.wcoj_edges
// (every edge's other endpoint must already be a column of `table`).
// Follows the operator contract of operators.h: optional pool/scratch,
// stats folded once on success, deterministic rows at any thread count.
Status ApplyWcojBind(const GraphDatabase& db, const Pattern& pattern,
                     const std::vector<LabelId>& node_labels,
                     const PlanStep& step, TemporalTable* table,
                     OperatorStats* stats, ThreadPool* pool = nullptr,
                     ExecScratch* scratch = nullptr);

}  // namespace fgpm

#endif  // FGPM_EXEC_WCOJ_H_
