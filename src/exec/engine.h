// Plan executor: runs a left-deep R-join/R-semijoin plan against a
// GraphDatabase and materializes the distinct match tuples.
#ifndef FGPM_EXEC_ENGINE_H_
#define FGPM_EXEC_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "gdb/database.h"
#include "obs/trace.h"
#include "query/pattern.h"

namespace fgpm {

struct ExecStats {
  double elapsed_ms = 0;
  double optimize_ms = 0;  // plan-selection time (set by GraphMatcher)
  uint64_t result_rows = 0;
  IoSnapshot io;           // delta over the execution
  OperatorStats operators;
  uint32_t steps = 0;
  // Row count after each plan step, indexed by plan-step position. A
  // select fused into the preceding fetch records the post-fetch count;
  // steps skipped because the intermediate emptied out record nothing
  // (so step_rows.size() <= plan.steps.size()). Explain renders these
  // against the optimizer's estimates.
  std::vector<uint64_t> step_rows;
  // Wall time of each executed plan step, aligned with step_rows. A
  // select absorbed into the preceding fused fetch records 0 here (its
  // time is inside the fetch's entry) and 1 in step_absorbed.
  std::vector<double> step_wall_ms;
  std::vector<uint8_t> step_absorbed;
  // Total page I/O under the paper's storage model: buffer-pool accesses
  // for indexes/tables plus disk-resident temporal-table passes. INT-DP
  // fills this with its own list-scan/re-sort estimate.
  uint64_t modeled_io_pages = 0;
  // Per-step spans (operator kind, wall/CPU time, stats deltas) when the
  // query ran at trace_level >= 1; null otherwise. Shared so projecting
  // or copying stats keeps the trace alive.
  std::shared_ptr<const QueryTrace> trace;
};

struct MatchResult {
  // Column i binds pattern node i (label column_labels[i]).
  std::vector<std::string> column_labels;
  std::vector<std::vector<NodeId>> rows;  // distinct tuples
  ExecStats stats;

  // Canonical ordering for comparisons in tests.
  void SortRows();
};

// Intra-operator parallelism + materialization knobs. Result rows are
// identical for every thread count and both materialization modes (see
// operators.h / temporal_table.h); elapsed time and memo-affected
// counters (code_fetches, reach_memo_*) may differ because reachability
// memos are per-worker. num_threads == 1 keeps the sequential code
// paths.
struct ExecOptions {
  unsigned num_threads = 1;  // 0 = one worker per hardware thread
  // Intermediate-result representation. kFactorized defers row copies
  // to output via delta columns and enables select fusion into fetch;
  // kEager is the paper-layout A/B baseline.
  Materialization materialization = Materialization::kFactorized;
  // GraphMatcher plan-cache bound (entries). 0 disables caching.
  size_t plan_cache_capacity = 256;
  // Observability. trace_level 0 keeps only the always-on aggregates
  // (ExecStats counters + registry metrics — the <3% overhead budget);
  // trace_level >= 1 records a QueryTrace span per plan step carrying
  // wall/CPU time plus the step's OperatorStats and buffer-pool /
  // code-cache deltas. Forced to 0 when built with FGPM_OBS=OFF.
  int trace_level = 0;
  // GraphMatcher-level slow-query log threshold in milliseconds
  // (elapsed = optimize + execute). Negative disables the log.
  double slow_query_ms = -1;
  // Which join operators the planner may use (see plan.h). kHybrid lets
  // the cost model mix WCOJ vertex binds over a pattern's cyclic core
  // with binary R-join steps; acyclic patterns keep binary plans.
  JoinStrategy join_strategy = JoinStrategy::kHybrid;
};

class Executor {
 public:
  explicit Executor(const GraphDatabase* db, ExecOptions options = {})
      : db_(db), options_(options) {
    if (ResolveThreads(options.num_threads) > 1) {
      pool_ = std::make_unique<ThreadPool>(options.num_threads);
    }
    scratch_.Configure(pool_ ? pool_->size() : 1,
                       db->options().reach_cache_entries);
  }

  // Validates and runs `plan` for `pattern`. A pattern label absent from
  // the database yields an empty (not erroneous) result.
  // `trace_level_override` >= 0 replaces ExecOptions::trace_level for
  // this call (EXPLAIN ANALYZE forces spans on a level-0 executor).
  Result<MatchResult> Execute(const Pattern& pattern, const Plan& plan,
                              int trace_level_override = -1);

  unsigned num_threads() const { return pool_ ? pool_->size() : 1; }
  const ExecOptions& options() const { return options_; }
  // Retargets the planner between queries (plans themselves execute
  // under whatever strategy built them). GraphMatcher's plan-cache key
  // includes the strategy, so toggling never replays a stale plan.
  void set_join_strategy(JoinStrategy s) { options_.join_strategy = s; }

 private:
  const GraphDatabase* db_;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when single-threaded
  // Per-worker reachability memos + reused probe buffers, threaded
  // through the operators of every Execute call (see ExecScratch).
  ExecScratch scratch_;
};

}  // namespace fgpm

#endif  // FGPM_EXEC_ENGINE_H_
