// Plan executor: runs a left-deep R-join/R-semijoin plan against a
// GraphDatabase and materializes the distinct match tuples.
#ifndef FGPM_EXEC_ENGINE_H_
#define FGPM_EXEC_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "gdb/database.h"
#include "obs/trace.h"
#include "query/pattern.h"

namespace fgpm {

struct ExecStats {
  double elapsed_ms = 0;
  double optimize_ms = 0;  // plan-selection time (set by GraphMatcher)
  uint64_t result_rows = 0;
  // How the result was produced: 0 = fresh execution, 1 = result-cache
  // exact hit (rows copied), 2 = containment replay (cached rows of a
  // more general pattern filtered down). Set by GraphMatcher.
  uint8_t cache_hit = 0;
  IoSnapshot io;           // delta over the execution
  OperatorStats operators;
  uint32_t steps = 0;
  // Row count after each plan step, indexed by plan-step position. A
  // select fused into the preceding fetch records the post-fetch count;
  // steps skipped because the intermediate emptied out record nothing
  // (so step_rows.size() <= plan.steps.size()). Explain renders these
  // against the optimizer's estimates.
  std::vector<uint64_t> step_rows;
  // Wall time of each executed plan step, aligned with step_rows. A
  // select absorbed into the preceding fused fetch records 0 here (its
  // time is inside the fetch's entry) and 1 in step_absorbed.
  std::vector<double> step_wall_ms;
  std::vector<uint8_t> step_absorbed;
  // Total page I/O under the paper's storage model: buffer-pool accesses
  // for indexes/tables plus disk-resident temporal-table passes. INT-DP
  // fills this with its own list-scan/re-sort estimate.
  uint64_t modeled_io_pages = 0;
  // Per-step spans (operator kind, wall/CPU time, stats deltas) when the
  // query ran at trace_level >= 1; null otherwise. Shared so projecting
  // or copying stats keeps the trace alive.
  std::shared_ptr<const QueryTrace> trace;
};

struct MatchResult {
  // Column i binds pattern node i (label column_labels[i]).
  std::vector<std::string> column_labels;
  std::vector<std::vector<NodeId>> rows;  // distinct tuples
  ExecStats stats;

  // Canonical ordering for comparisons in tests.
  void SortRows();
};

// When a cached result of a more general pattern can answer a query,
// should the matcher filter the cached rows down instead of executing?
// kCostBased compares CostModel::ReplayCost against the fresh plan's
// estimated cost; kAlways/kNever force the decision (tests, benches).
// Exact-key hits are always served from the cache regardless.
enum class ResultCachePolicy : uint8_t { kCostBased, kAlways, kNever };

// Intra-operator parallelism + materialization knobs. Result rows are
// identical for every thread count and both materialization modes (see
// operators.h / temporal_table.h); elapsed time and memo-affected
// counters (code_fetches, reach_memo_*) may differ because reachability
// memos are per-worker. num_threads == 1 keeps the sequential code
// paths.
struct ExecOptions {
  unsigned num_threads = 1;  // 0 = one worker per hardware thread
  // Intermediate-result representation. kFactorized defers row copies
  // to output via delta columns and enables select fusion into fetch;
  // kEager is the paper-layout A/B baseline.
  Materialization materialization = Materialization::kFactorized;
  // GraphMatcher plan-cache bound (entries). 0 disables caching.
  size_t plan_cache_capacity = 256;
  // Semantic result cache (GraphMatcher): answer a repeated query by
  // copying its cached rows, and a query *contained* in a cached more
  // general pattern by filtering the cached rows down (replay) instead
  // of re-executing from base tables. Off by default — opt in for
  // serving-style workloads; A/B benches that re-run one pattern would
  // otherwise measure the cache, not the engine. Invalidated
  // automatically when GraphDatabase::epoch() moves (ApplyEdgeInsert).
  bool use_result_cache = false;
  // Memory budget of the result cache in MiB (LRU once over budget;
  // single results larger than the whole budget are never cached).
  size_t result_cache_mb = 64;
  ResultCachePolicy result_cache_policy = ResultCachePolicy::kCostBased;
  // Observability. trace_level 0 keeps only the always-on aggregates
  // (ExecStats counters + registry metrics — the <3% overhead budget);
  // trace_level >= 1 records a QueryTrace span per plan step carrying
  // wall/CPU time plus the step's OperatorStats and buffer-pool /
  // code-cache deltas. Forced to 0 when built with FGPM_OBS=OFF.
  int trace_level = 0;
  // GraphMatcher-level slow-query log threshold in milliseconds
  // (elapsed = optimize + execute). Negative disables the log.
  double slow_query_ms = -1;
  // Which join operators the planner may use (see plan.h). kHybrid lets
  // the cost model mix WCOJ vertex binds over a pattern's cyclic core
  // with binary R-join steps; acyclic patterns keep binary plans.
  JoinStrategy join_strategy = JoinStrategy::kHybrid;
};

// --- shared plan-pipeline pieces (engine.cc; reused by exec/batch.cc) ----
// Runs plan.steps[start_step..] against `table`, with factorized select
// fusion, per-step stats (steps/step_rows/step_wall_ms/step_absorbed)
// and optional spans (trace may be null). The loop is exactly
// Executor::Execute's — extracted so batched pipelines can resume from
// a shared seed table at start_step > 0.
Status RunPlanSteps(const GraphDatabase& db, const Pattern& pattern,
                    const std::vector<LabelId>& node_labels, const Plan& plan,
                    size_t start_step, bool factorized, TemporalTable* table,
                    ExecStats* stats, QueryTrace* trace, uint32_t query_span,
                    ThreadPool* pool, ExecScratch* scratch,
                    uint64_t* wcoj_binds);

// The single materialization point: projects `table` (complete — one
// column per pattern node) into result->rows in pattern-node order.
// No-op when execution emptied out before binding every label.
void MaterializeTable(const Pattern& pattern, const TemporalTable& table,
                      MatchResult* result);

// Resolves every pattern label against the catalog. Returns false (and
// leaves node_labels untouched) when any label has no extent — the
// query's result is empty by definition.
bool ResolveNodeLabels(const GraphDatabase& db, const Pattern& pattern,
                       std::vector<LabelId>* node_labels);

class Executor {
 public:
  explicit Executor(const GraphDatabase* db, ExecOptions options = {})
      : db_(db), options_(options) {
    if (ResolveThreads(options.num_threads) > 1) {
      pool_ = std::make_unique<ThreadPool>(options.num_threads);
    }
    scratch_.Configure(pool_ ? pool_->size() : 1,
                       db->options().reach_cache_entries);
  }

  // Validates and runs `plan` for `pattern`. A pattern label absent from
  // the database yields an empty (not erroneous) result.
  // `trace_level_override` >= 0 replaces ExecOptions::trace_level for
  // this call (EXPLAIN ANALYZE forces spans on a level-0 executor).
  Result<MatchResult> Execute(const Pattern& pattern, const Plan& plan,
                              int trace_level_override = -1);

  unsigned num_threads() const { return pool_ ? pool_->size() : 1; }
  const ExecOptions& options() const { return options_; }
  // The executor's pool (null when single-threaded). Batch execution
  // and result-cache replay fan their own work out over it between
  // queries; regular Execute owns it during a query.
  ThreadPool* pool() { return pool_.get(); }
  // The executor's per-worker scratch (configured for pool-size workers
  // at construction). Idle between Execute calls — ExecuteBatch borrows
  // it for shared-seed builds instead of allocating an identical one.
  ExecScratch* scratch() { return &scratch_; }
  // Retargets the planner between queries (plans themselves execute
  // under whatever strategy built them). GraphMatcher's plan-cache key
  // includes the strategy, so toggling never replays a stale plan.
  void set_join_strategy(JoinStrategy s) { options_.join_strategy = s; }

 private:
  const GraphDatabase* db_;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when single-threaded
  // Per-worker reachability memos + reused probe buffers, threaded
  // through the operators of every Execute call (see ExecScratch).
  ExecScratch scratch_;
};

}  // namespace fgpm

#endif  // FGPM_EXEC_ENGINE_H_
