#include "exec/plan.h"

#include <set>

namespace fgpm {

Status Plan::Validate(const Pattern& pattern) const {
  const auto& edges = pattern.edges();
  if (pattern.num_edges() == 0) {
    if (!steps.empty()) {
      return Status::InvalidArgument("edge-free pattern needs an empty plan");
    }
    return Status::OK();
  }
  if (steps.empty() || (steps[0].kind != StepKind::kHpsjBase &&
                        steps[0].kind != StepKind::kScanBase)) {
    return Status::InvalidArgument(
        "plan must start with a base HPSJ or base scan");
  }

  std::set<PatternNodeId> bound;
  std::set<uint32_t> evaluated;                 // edges fully joined
  std::set<std::pair<uint32_t, bool>> pending;  // filtered, not yet fetched

  for (size_t si = 0; si < steps.size(); ++si) {
    const PlanStep& step = steps[si];
    switch (step.kind) {
      case StepKind::kHpsjBase: {
        if (si != 0) {
          return Status::InvalidArgument("base HPSJ only as the first step");
        }
        if (step.edge >= edges.size()) {
          return Status::InvalidArgument("edge index out of range");
        }
        bound.insert(edges[step.edge].from);
        bound.insert(edges[step.edge].to);
        evaluated.insert(step.edge);
        break;
      }
      case StepKind::kScanBase: {
        if (si != 0) {
          return Status::InvalidArgument("base scan only as the first step");
        }
        if (step.scan_node >= pattern.num_nodes()) {
          return Status::InvalidArgument("scan node out of range");
        }
        bound.insert(step.scan_node);
        break;
      }
      case StepKind::kFilter: {
        if (step.filters.empty()) {
          return Status::InvalidArgument("empty filter step");
        }
        for (const FilterItem& item : step.filters) {
          if (item.edge >= edges.size()) {
            return Status::InvalidArgument("edge index out of range");
          }
          if (evaluated.count(item.edge)) {
            return Status::InvalidArgument("filter on already-joined edge");
          }
          if (pending.count({item.edge, item.bound_is_source}) ||
              pending.count({item.edge, !item.bound_is_source})) {
            return Status::InvalidArgument("edge filtered twice");
          }
          PatternNodeId b = item.bound_is_source ? edges[item.edge].from
                                                 : edges[item.edge].to;
          PatternNodeId u = item.bound_is_source ? edges[item.edge].to
                                                 : edges[item.edge].from;
          if (!bound.count(b)) {
            return Status::InvalidArgument(
                "filter probes an unbound label column");
          }
          if (bound.count(u)) {
            return Status::InvalidArgument(
                "both endpoints bound: use a select step");
          }
          pending.insert({item.edge, item.bound_is_source});
        }
        break;
      }
      case StepKind::kFetch: {
        auto key = std::make_pair(step.edge, step.bound_is_source);
        if (!pending.count(key)) {
          return Status::InvalidArgument("fetch without a prior filter");
        }
        pending.erase(key);
        const PatternEdge& e = edges[step.edge];
        bound.insert(step.bound_is_source ? e.to : e.from);
        evaluated.insert(step.edge);
        break;
      }
      case StepKind::kSelect: {
        if (step.edge >= edges.size()) {
          return Status::InvalidArgument("edge index out of range");
        }
        const PatternEdge& e = edges[step.edge];
        if (!bound.count(e.from) || !bound.count(e.to)) {
          return Status::InvalidArgument("select needs both labels bound");
        }
        if (evaluated.count(step.edge)) {
          return Status::InvalidArgument("edge evaluated twice");
        }
        evaluated.insert(step.edge);
        break;
      }
      case StepKind::kWcojBind: {
        if (step.scan_node >= pattern.num_nodes()) {
          return Status::InvalidArgument("bind vertex out of range");
        }
        if (bound.count(step.scan_node)) {
          return Status::InvalidArgument("bind of an already-bound label");
        }
        if (step.wcoj_edges.empty()) {
          return Status::InvalidArgument("bind step without constraints");
        }
        for (const auto& [pe, pd] : pending) {
          const PatternEdge& e = edges[pe];
          if ((pd ? e.to : e.from) == step.scan_node) {
            return Status::InvalidArgument(
                "bind would orphan a pending filter on the same label");
          }
        }
        for (uint32_t ce : step.wcoj_edges) {
          if (ce >= edges.size()) {
            return Status::InvalidArgument("edge index out of range");
          }
          if (evaluated.count(ce)) {
            return Status::InvalidArgument("edge evaluated twice");
          }
          if (pending.count({ce, false}) || pending.count({ce, true})) {
            return Status::InvalidArgument("bind on a filtered edge");
          }
          const PatternEdge& e = edges[ce];
          const PatternNodeId other =
              e.from == step.scan_node ? e.to : e.from;
          if (e.from != step.scan_node && e.to != step.scan_node) {
            return Status::InvalidArgument(
                "bind constraint does not touch the bound vertex");
          }
          if (!bound.count(other)) {
            return Status::InvalidArgument(
                "bind constraint endpoint is unbound");
          }
          evaluated.insert(ce);
        }
        bound.insert(step.scan_node);
        break;
      }
    }
  }
  // A pending filter whose edge was later evaluated as a select is a
  // contradiction caught above; leftover pendings mean an unfetched edge.
  if (!pending.empty()) {
    return Status::InvalidArgument("plan leaves a filtered edge unfetched");
  }
  if (evaluated.size() != edges.size()) {
    return Status::InvalidArgument("plan does not evaluate every edge");
  }
  if (bound.size() != pattern.num_nodes()) {
    return Status::InvalidArgument("plan does not bind every label");
  }
  return Status::OK();
}

std::string StepLabel(const Pattern& pattern, const PlanStep& step) {
  const auto& edges = pattern.edges();
  auto edge_str = [&](uint32_t e) {
    return pattern.label(edges[e].from) + "->" + pattern.label(edges[e].to);
  };
  switch (step.kind) {
    case StepKind::kHpsjBase:
      return "HPSJ(" + edge_str(step.edge) + ")";
    case StepKind::kScanBase:
      return "SCAN(" + pattern.label(step.scan_node) + ")";
    case StepKind::kFilter: {
      std::string out = "FILTER(";
      for (size_t i = 0; i < step.filters.size(); ++i) {
        if (i) out += ", ";
        out += edge_str(step.filters[i].edge);
      }
      return out + ")";
    }
    case StepKind::kFetch:
      return "FETCH(" + edge_str(step.edge) + ")";
    case StepKind::kSelect:
      return "SELECT(" + edge_str(step.edge) + ")";
    case StepKind::kWcojBind: {
      std::string out = "BIND(" + pattern.label(step.scan_node) + " | ";
      for (size_t i = 0; i < step.wcoj_edges.size(); ++i) {
        if (i) out += ", ";
        out += edge_str(step.wcoj_edges[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

Plan RemapPlan(const Plan& plan, const std::vector<PatternNodeId>& node_map,
               const std::vector<uint32_t>& edge_map) {
  Plan out;
  out.estimated_cost = plan.estimated_cost;
  out.steps.reserve(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    PlanStep s = step;
    switch (step.kind) {
      case StepKind::kHpsjBase:
      case StepKind::kFetch:
      case StepKind::kSelect:
        s.edge = edge_map[step.edge];
        break;
      case StepKind::kScanBase:
        s.scan_node = node_map[step.scan_node];
        break;
      case StepKind::kFilter:
        for (FilterItem& item : s.filters) item.edge = edge_map[item.edge];
        break;
      case StepKind::kWcojBind:
        s.scan_node = node_map[step.scan_node];
        for (uint32_t& e : s.wcoj_edges) e = edge_map[e];
        break;
    }
    out.steps.push_back(std::move(s));
  }
  return out;
}

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kBinary:
      return "binary";
    case JoinStrategy::kWcoj:
      return "wcoj";
    case JoinStrategy::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::string Plan::ToString(const Pattern& pattern) const {
  const auto& edges = pattern.edges();
  auto edge_str = [&](uint32_t e) {
    return pattern.label(edges[e].from) + "->" + pattern.label(edges[e].to);
  };
  std::string out;
  for (const PlanStep& step : steps) {
    if (!out.empty()) out += " ; ";
    switch (step.kind) {
      case StepKind::kHpsjBase:
        out += "HPSJ(" + edge_str(step.edge) + ")";
        break;
      case StepKind::kScanBase:
        out += "SCAN(" + pattern.label(step.scan_node) + ")";
        break;
      case StepKind::kFilter: {
        out += "FILTER(";
        for (size_t i = 0; i < step.filters.size(); ++i) {
          if (i) out += ", ";
          out += edge_str(step.filters[i].edge);
          out += step.filters[i].bound_is_source ? " [out]" : " [in]";
        }
        out += ")";
        break;
      }
      case StepKind::kFetch:
        out += "FETCH(" + edge_str(step.edge) + ")";
        break;
      case StepKind::kSelect:
        out += "SELECT(" + edge_str(step.edge) + ")";
        break;
      case StepKind::kWcojBind:
        out += StepLabel(pattern, step);
        break;
    }
  }
  if (out.empty()) out = "SCAN(" + pattern.label(0) + ")";
  return out;
}

}  // namespace fgpm
