#include "exec/wcoj.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/intersect_kernels.h"
#include "common/sorted_vector.h"

namespace fgpm {
namespace {

// Mirrors the chunk helpers of operators.cc (kept file-local there).
void RunChunked(ThreadPool* pool, size_t n, size_t chunk_size,
                const ThreadPool::Body& body) {
  if (chunk_size == 0) chunk_size = 1;
  if (pool == nullptr) {
    for (size_t begin = 0; begin < n; begin += chunk_size) {
      body(0, begin / chunk_size, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
  pool->ParallelFor(n, chunk_size, body);
}

size_t ChunkFor(size_t n, ThreadPool* pool, size_t min_chunk) {
  if (n == 0) return 1;
  if (pool == nullptr || pool->size() <= 1) return n;
  size_t target = n / (static_cast<size_t>(pool->size()) * 8) + 1;
  return std::max(min_chunk, target);
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void ExtendSortOrder(TemporalTable* table, size_t new_col) {
  if (table->sorted_by().empty()) return;
  std::vector<size_t> sb = table->sorted_by();
  sb.push_back(new_col);
  table->set_sorted_by(std::move(sb));
}

Status FoldStats(Status s, OperatorStats* stats, const OperatorStats& local) {
  if (s.ok()) stats->Add(local);
  return s;
}

// A constraint expansion dwarfing the driver's estimate by more than
// this ratio is not materialized; its candidates are verified by
// per-candidate reachability probes instead.
constexpr double kMaterializeSlack = 8.0;

// One constraint edge of the bind, resolved against the table.
struct ConstraintCtx {
  uint32_t edge = 0;
  bool forward = false;  // bound endpoint is the edge source
  size_t col = 0;        // bound endpoint's column in the table
  LabelId col_label = 0;
  double avg_sub = 1.0;  // catalog: avg F/T-subcluster size per center
};

// Chunk-local memoized expansion of one (bound node, constraint):
// centers = code ∩ W, values = the reachable new-label nodes once
// expanded, plus an optional chunked-bitmap sidecar over values.
struct Expansion {
  std::vector<CenterId> centers;
  std::vector<NodeId> values;
  std::vector<uint32_t> chunk_ids;
  std::vector<uint64_t> words;
  bool expanded = false;

  SortedSetView View() const {
    return {values.data(), values.size(), chunk_ids.data(), words.data(),
            chunk_ids.size()};
  }
};

Status ApplyWcojBindImpl(const GraphDatabase& db, const Pattern& pattern,
                         const std::vector<LabelId>& node_labels,
                         const PlanStep& step, TemporalTable* table,
                         OperatorStats* stats, ThreadPool* pool,
                         ExecScratch* scratch) {
  if (step.wcoj_edges.empty()) {
    return Status::InvalidArgument("bind step without constraints");
  }
  stats->temporal_pages_read += TemporalTablePages(*table);
  const auto& edges = pattern.edges();
  const PatternNodeId new_node = step.scan_node;
  const LabelId new_label = node_labels[new_node];
  const size_t k = step.wcoj_edges.size();

  // Resolve each constraint and prefetch its W(X, Y) center list into
  // the executor-owned pool (capacity persists across calls).
  std::vector<std::vector<CenterId>> local_wcenters;
  std::vector<std::vector<CenterId>>& wcenters =
      scratch ? scratch->wcenters_pool : local_wcenters;
  if (wcenters.size() < k) wcenters.resize(k);
  std::vector<ConstraintCtx> ctx(k);
  for (size_t i = 0; i < k; ++i) {
    const PatternEdge& e = edges[step.wcoj_edges[i]];
    ConstraintCtx& c = ctx[i];
    c.edge = step.wcoj_edges[i];
    c.forward = (e.to == new_node);
    if (!c.forward && e.from != new_node) {
      return Status::InvalidArgument("bind constraint does not touch vertex");
    }
    const PatternNodeId bound = c.forward ? e.from : e.to;
    auto col = table->ColumnOf(bound);
    if (!col) return Status::InvalidArgument("bind constraint not bound");
    c.col = *col;
    c.col_label = node_labels[bound];
    const LabelId lx = node_labels[e.from], ly = node_labels[e.to];
    FGPM_RETURN_IF_ERROR(db.wtable().Lookup(lx, ly, &wcenters[i]));
    ++stats->wtable_lookups;
    const auto& ps = db.catalog().Stats(lx, ly);
    const double centers = std::max<double>(1.0, ps.num_centers);
    c.avg_sub =
        std::max(1.0, (c.forward ? ps.sum_t : ps.sum_f) / centers);
  }

  const size_t ncols = table->NumColumns();
  const size_t nrows = table->NumRows();
  const bool chained = !table->deltas().empty();
  const bool factorized = table->mode() == Materialization::kFactorized;
  const std::vector<NodeId>& rows = table->raw_rows();
  const uint32_t bitmap_threshold = db.options().code_bitmap_threshold;

  // Gathered bound columns (delta-chained tables only), shared when two
  // constraints probe the same column.
  std::vector<std::vector<NodeId>> gathered(k);
  std::vector<const NodeId*> colv(k, nullptr);
  if (chained) {
    for (size_t i = 0; i < k; ++i) {
      bool shared = false;
      for (size_t j = 0; j < i && !shared; ++j) {
        if (ctx[j].col == ctx[i].col) {
          colv[i] = colv[j];
          shared = true;
        }
      }
      if (shared) continue;
      table->GatherColumn(ctx[i].col, &gathered[i]);
      colv[i] = gathered[i].data();
    }
  }

  // Pending filter slots are carried through: pools are shared, the
  // per-row indexes are re-emitted per output row.
  std::vector<TemporalTable::PendingSlot> new_pending;
  for (const auto& slot : table->pending()) {
    new_pending.push_back({slot.edge, slot.bound_is_source, slot.pool, {}});
  }

  const bool use_memo = scratch != nullptr && !scratch->workers.empty() &&
                        scratch->workers[0].select_memo.enabled();
  if (use_memo) {
    for (auto& w : scratch->workers) w.select_memo.Clear();
  }

  const size_t chunk = ChunkFor(nrows, pool, 128);
  const size_t nchunks = ThreadPool::NumChunks(nrows, chunk);
  struct ChunkOut {
    std::vector<uint32_t> parent;  // factorized output
    std::vector<NodeId> value;
    std::vector<NodeId> rows;  // eager output (full row copies)
    std::vector<std::vector<uint32_t>> kept;  // per pending slot
    uint64_t rows_scanned = 0;
    uint64_t rows_pruned = 0;
    uint64_t code_fetches = 0;
    uint64_t cluster_fetches = 0;
    uint64_t pairs_emitted = 0;
    uint64_t reach_pruned = 0;
    KWayStats kway;
  };
  std::vector<ChunkOut> parts(nchunks);
  std::vector<Status> errs(nchunks);
  RunChunked(pool, nrows, chunk, [&](unsigned wk, size_t c, size_t begin,
                                     size_t end) {
    ChunkOut& part = parts[c];
    part.kept.resize(new_pending.size());
    ExecScratch::Worker* ws =
        scratch != nullptr && wk < scratch->workers.size()
            ? &scratch->workers[wk]
            : nullptr;
    ReachMemo* memo = use_memo && ws != nullptr ? &ws->select_memo : nullptr;
    GraphCodeRecord local_rx, local_ry;
    GraphCodeRecord& rx = ws != nullptr ? ws->rx : local_rx;
    GraphCodeRecord& ry = ws != nullptr ? ws->ry : local_ry;

    // Chunk-local expansion memo per constraint: probed node -> pool
    // index (-1 = empty center set, row cannot match).
    std::vector<std::unordered_map<NodeId, int32_t>> seen(k);
    std::vector<std::vector<Expansion>> pools(k);
    std::unordered_map<size_t, GraphCodeRecord> col_codes;  // per row
    std::vector<CenterId> xi;
    std::vector<NodeId> cluster;
    std::vector<uint32_t> out_buf, tmp_buf;
    std::vector<SortedSetView> views;
    std::vector<size_t> set_idx, probe_idx, entry_idx(k);

    // Expands an entry's centers through the cluster index once; the
    // result (the sorted set of reachable new-label nodes) is a pure
    // function of (probed node, constraint).
    auto expand = [&](const ConstraintCtx& cc, Expansion* ent) -> Status {
      if (ent->expanded) return Status::OK();
      if (ent->centers.size() == 1) {
        FGPM_RETURN_IF_ERROR(
            cc.forward
                ? db.rjoin_index().GetT(ent->centers[0], new_label,
                                        &ent->values)
                : db.rjoin_index().GetF(ent->centers[0], new_label,
                                        &ent->values));
        ++part.cluster_fetches;
        part.pairs_emitted += ent->values.size();
      } else {
        for (CenterId w : ent->centers) {
          FGPM_RETURN_IF_ERROR(
              cc.forward ? db.rjoin_index().GetT(w, new_label, &cluster)
                         : db.rjoin_index().GetF(w, new_label, &cluster));
          ++part.cluster_fetches;
          part.pairs_emitted += cluster.size();
          ent->values.insert(ent->values.end(), cluster.begin(),
                             cluster.end());
        }
        std::sort(ent->values.begin(), ent->values.end());
        ent->values.erase(
            std::unique(ent->values.begin(), ent->values.end()),
            ent->values.end());
      }
      if (bitmap_threshold != 0 && ent->values.size() >= bitmap_threshold) {
        BuildChunkedBitmap(ent->values.data(), ent->values.size(),
                           &ent->chunk_ids, &ent->words);
      }
      ent->expanded = true;
      return Status::OK();
    };

    for (size_t r = begin; r < end; ++r) {
      ++part.rows_scanned;
      col_codes.clear();
      bool ok = true;
      for (size_t i = 0; i < k && ok; ++i) {
        const NodeId node =
            chained ? colv[i][r] : rows[r * ncols + ctx[i].col];
        auto [sit, inserted] = seen[i].try_emplace(node, -1);
        if (!inserted) {
          if (sit->second < 0) {
            ok = false;
          } else {
            entry_idx[i] = static_cast<size_t>(sit->second);
          }
          continue;
        }
        auto it = col_codes.find(ctx[i].col);
        if (it == col_codes.end()) {
          GraphCodeRecord rec;
          Status s = db.GetCodes(node, ctx[i].col_label, &rec);
          if (!s.ok()) {
            errs[c] = std::move(s);
            return;
          }
          ++part.code_fetches;
          it = col_codes.emplace(ctx[i].col, std::move(rec)).first;
        }
        const auto& code = ctx[i].forward ? it->second.out : it->second.in;
        SortedIntersectInto(code, wcenters[i], &xi);
        if (xi.empty()) {
          ok = false;  // sit->second stays -1 (known-empty)
        } else {
          sit->second = static_cast<int32_t>(pools[i].size());
          entry_idx[i] = static_cast<size_t>(sit->second);
          Expansion ent;
          ent.centers = xi;
          pools[i].push_back(std::move(ent));
        }
      }
      if (!ok) {
        ++part.rows_pruned;
        continue;
      }

      // Driver choice: the constraint with the smallest (estimated)
      // expansion drives the intersection.
      size_t driver = 0;
      double driver_est = 0.0;
      for (size_t i = 0; i < k; ++i) {
        const Expansion& ent = pools[i][entry_idx[i]];
        const double est = ent.expanded
                               ? static_cast<double>(ent.values.size())
                               : ent.centers.size() * ctx[i].avg_sub;
        if (i == 0 || est < driver_est) {
          driver = i;
          driver_est = est;
        }
      }
      {
        Status s = expand(ctx[driver], &pools[driver][entry_idx[driver]]);
        if (!s.ok()) {
          errs[c] = std::move(s);
          return;
        }
      }
      if (pools[driver][entry_idx[driver]].values.empty()) {
        ++part.rows_pruned;
        continue;
      }
      const double driver_size = static_cast<double>(
          pools[driver][entry_idx[driver]].values.size());

      // Partition the remaining constraints: materialize near-driver-
      // sized expansions for the k-way intersection, degrade the rest
      // to per-candidate reachability probes.
      set_idx.clear();
      probe_idx.clear();
      set_idx.push_back(driver);
      for (size_t i = 0; i < k; ++i) {
        if (i == driver) continue;
        Expansion& ent = pools[i][entry_idx[i]];
        const double est = ent.expanded
                               ? static_cast<double>(ent.values.size())
                               : ent.centers.size() * ctx[i].avg_sub;
        if (ent.expanded || est <= kMaterializeSlack * driver_size) {
          Status s = expand(ctx[i], &ent);
          if (!s.ok()) {
            errs[c] = std::move(s);
            return;
          }
          set_idx.push_back(i);
        } else {
          probe_idx.push_back(i);
        }
      }

      const uint32_t* cand = nullptr;
      size_t ncand = 0;
      if (set_idx.size() == 1) {
        const Expansion& d = pools[driver][entry_idx[driver]];
        cand = d.values.data();
        ncand = d.values.size();
      } else {
        views.clear();
        for (size_t i : set_idx) views.push_back(pools[i][entry_idx[i]].View());
        const size_t need =
            pools[driver][entry_idx[driver]].values.size() + kIntersectPad;
        if (out_buf.size() < need) out_buf.resize(need);
        if (tmp_buf.size() < need) tmp_buf.resize(need);
        ncand = IntersectKWayU32(views.data(), views.size(), out_buf.data(),
                                 tmp_buf.data(), &part.kway);
        cand = out_buf.data();
      }
      if (ncand == 0) {
        ++part.rows_pruned;
        continue;
      }

      for (size_t j = 0; j < ncand; ++j) {
        const NodeId v = cand[j];
        bool pass = true;
        for (size_t i : probe_idx) {
          const NodeId bound_node =
              chained ? colv[i][r] : rows[r * ncols + ctx[i].col];
          const NodeId u = ctx[i].forward ? bound_node : v;
          const NodeId w2 = ctx[i].forward ? v : bound_node;
          bool reachable;
          uint32_t memo_slot = 0;
          bool memo_hit = false;
          if (memo != nullptr) {
            memo_slot = memo->Acquire(PackPair(u, w2), &memo_hit);
          }
          if (memo_hit) {
            reachable = memo->value(memo_slot) != 0;
          } else {
            const LabelId ul = ctx[i].forward ? ctx[i].col_label : new_label;
            const LabelId wl = ctx[i].forward ? new_label : ctx[i].col_label;
            Status s = db.GetCodes(u, ul, &rx);
            if (s.ok()) s = db.GetCodes(w2, wl, &ry);
            if (!s.ok()) {
              errs[c] = std::move(s);
              return;
            }
            part.code_fetches += 2;
            reachable = SortedIntersects(rx.out, ry.in);
            if (memo != nullptr) {
              memo->set_value(memo_slot, reachable ? 1u : 0u);
            }
          }
          if (!reachable) {
            pass = false;
            break;
          }
        }
        if (!pass) {
          ++part.reach_pruned;
          continue;
        }
        if (factorized) {
          part.parent.push_back(static_cast<uint32_t>(r));
          part.value.push_back(v);
        } else {
          part.rows.insert(part.rows.end(), rows.begin() + r * ncols,
                           rows.begin() + (r + 1) * ncols);
          part.rows.push_back(v);
        }
        for (size_t s = 0; s < new_pending.size(); ++s) {
          part.kept[s].push_back(table->pending()[s].row_index[r]);
        }
      }
    }
  });
  FGPM_RETURN_IF_ERROR(FirstError(errs));

  size_t out_rows = 0;
  for (const ChunkOut& part : parts) {
    out_rows += factorized ? part.parent.size()
                           : part.rows.size() / (ncols + 1);
    stats->rows_scanned += part.rows_scanned;
    stats->rows_pruned += part.rows_pruned;
    stats->code_fetches += part.code_fetches;
    stats->cluster_fetches += part.cluster_fetches;
    stats->pairs_emitted += part.pairs_emitted;
    stats->kway_intersect_probes += part.kway.probes;
    stats->kway_intersect_hits += part.kway.hits;
    stats->wcoj_reach_pruned += part.reach_pruned;
  }
  if (use_memo) {
    for (const auto& w : scratch->workers) {
      stats->reach_memo_probes += w.select_memo.probes();
      stats->reach_memo_hits += w.select_memo.hits();
    }
  }

  for (auto& slot : new_pending) slot.row_index.reserve(out_rows);
  if (factorized) {
    TemporalTable::DeltaColumn& d = table->AddDeltaColumn(new_node);
    d.parent.reserve(out_rows);
    d.value.reserve(out_rows);
    for (ChunkOut& part : parts) {
      d.parent.insert(d.parent.end(), part.parent.begin(),
                      part.parent.end());
      d.value.insert(d.value.end(), part.value.begin(), part.value.end());
      for (size_t s = 0; s < new_pending.size(); ++s) {
        new_pending[s].row_index.insert(new_pending[s].row_index.end(),
                                        part.kept[s].begin(),
                                        part.kept[s].end());
      }
    }
    stats->copy_bytes_avoided += out_rows * ((ncols + 1) * 4 - 8);
  } else {
    std::vector<NodeId> new_rows;
    new_rows.reserve(out_rows * (ncols + 1));
    for (ChunkOut& part : parts) {
      new_rows.insert(new_rows.end(), part.rows.begin(), part.rows.end());
      for (size_t s = 0; s < new_pending.size(); ++s) {
        new_pending[s].row_index.insert(new_pending[s].row_index.end(),
                                        part.kept[s].begin(),
                                        part.kept[s].end());
      }
    }
    table->AddColumn(new_node);
    table->raw_rows() = std::move(new_rows);
    stats->rows_materialized += out_rows;
  }
  table->pending() = std::move(new_pending);
  ExtendSortOrder(table, ncols);
  stats->temporal_pages_written += TemporalTablePages(*table);
  return Status::OK();
}

}  // namespace

Status ApplyWcojBind(const GraphDatabase& db, const Pattern& pattern,
                     const std::vector<LabelId>& node_labels,
                     const PlanStep& step, TemporalTable* table,
                     OperatorStats* stats, ThreadPool* pool,
                     ExecScratch* scratch) {
  OperatorStats local;
  return FoldStats(ApplyWcojBindImpl(db, pattern, node_labels, step, table,
                                     &local, pool, scratch),
                   stats, local);
}

}  // namespace fgpm
