#include "exec/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "exec/temporal_table.h"

namespace fgpm {

void MatchResult::SortRows() { std::sort(rows.begin(), rows.end()); }

Result<MatchResult> Executor::Execute(const Pattern& pattern,
                                      const Plan& plan) {
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));

  WallTimer timer;
  IoSnapshot io_before = db_->Io();

  MatchResult result;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    result.column_labels.push_back(pattern.label(i));
  }

  // Resolve pattern labels; a label with no extent means zero matches.
  std::vector<LabelId> node_labels(pattern.num_nodes());
  bool resolvable = true;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = db_->catalog().FindLabel(pattern.label(i));
    if (!l) {
      resolvable = false;
      break;
    }
    node_labels[i] = *l;
  }

  if (resolvable) {
    if (pattern.num_edges() == 0) {
      // Single-label pattern: scan the base table.
      FGPM_RETURN_IF_ERROR(
          db_->table(node_labels[0]).Scan([&](const GraphCodeRecord& rec) {
            result.rows.push_back({rec.node});
          }));
    } else {
      TemporalTable table(options_.materialization);
      const bool factorized =
          options_.materialization == Materialization::kFactorized;
      scratch_.BeginQuery();
      const std::vector<PlanStep>& steps = plan.steps;
      for (size_t si = 0; si < steps.size(); ++si) {
        const PlanStep& step = steps[si];
        size_t absorbed = 0;
        switch (step.kind) {
          case StepKind::kHpsjBase:
            FGPM_RETURN_IF_ERROR(HpsjBaseJoin(*db_, pattern, node_labels,
                                              step.edge, &table,
                                              &result.stats.operators,
                                              pool_.get(), &scratch_));
            break;
          case StepKind::kScanBase:
            FGPM_RETURN_IF_ERROR(ScanBase(*db_, pattern, node_labels,
                                          step.scan_node, &table,
                                          &result.stats.operators));
            break;
          case StepKind::kFilter:
            FGPM_RETURN_IF_ERROR(ApplyFilter(*db_, pattern, node_labels,
                                             step.filters, &table,
                                             &result.stats.operators,
                                             pool_.get(), &scratch_));
            break;
          case StepKind::kFetch: {
            // Fuse the consecutive selects that touch the node this
            // fetch binds (their other endpoint is bound already —
            // plans validate selects): the predicates run on candidates
            // inside the expansion loop, before anything is appended.
            std::vector<uint32_t> fused;
            if (factorized) {
              const PatternEdge& e = pattern.edges()[step.edge];
              PatternNodeId nn = step.bound_is_source ? e.to : e.from;
              size_t j = si + 1;
              while (j < steps.size() &&
                     steps[j].kind == StepKind::kSelect) {
                const PatternEdge& se = pattern.edges()[steps[j].edge];
                if (se.from != nn && se.to != nn) break;
                fused.push_back(steps[j].edge);
                ++j;
              }
              absorbed = fused.size();
            }
            FGPM_RETURN_IF_ERROR(ApplyFetch(*db_, pattern, node_labels,
                                            step.edge, step.bound_is_source,
                                            &table, &result.stats.operators,
                                            pool_.get(), &scratch_, fused));
            break;
          }
          case StepKind::kSelect:
            FGPM_RETURN_IF_ERROR(ApplySelect(*db_, pattern, node_labels,
                                             step.edge, &table,
                                             &result.stats.operators,
                                             pool_.get(), &scratch_));
            break;
        }
        // Absorbed selects still count as executed plan steps and
        // record the (shared) post-fetch row count.
        result.stats.steps += static_cast<uint32_t>(1 + absorbed);
        uint64_t nrows = table.NumRows();
        for (size_t k = 0; k <= absorbed; ++k) {
          result.stats.step_rows.push_back(nrows);
        }
        si += absorbed;
        // An empty intermediate stays empty; skip the remaining steps.
        if (nrows == 0) break;
      }

      // Project to pattern-node order (plans bind labels in plan order).
      // This is the factorized representation's single materialization
      // point: each column is gathered once, sequentially.
      if (table.NumColumns() == pattern.num_nodes()) {
        std::vector<size_t> col_of(pattern.num_nodes());
        for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
          auto c = table.ColumnOf(i);
          FGPM_CHECK(c.has_value());
          col_of[i] = *c;
        }
        const size_t nrows = table.NumRows();
        result.rows.reserve(nrows);
        if (!table.deltas().empty()) {
          std::vector<std::vector<NodeId>> cols(pattern.num_nodes());
          for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
            table.GatherColumn(col_of[i], &cols[i]);
          }
          for (size_t r = 0; r < nrows; ++r) {
            std::vector<NodeId> row(pattern.num_nodes());
            for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
              row[i] = cols[i][r];
            }
            result.rows.push_back(std::move(row));
          }
        } else {
          size_t ncols = table.NumColumns();
          for (size_t r = 0; r < nrows; ++r) {
            std::vector<NodeId> row(pattern.num_nodes());
            for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
              row[i] = table.raw_rows()[r * ncols + col_of[i]];
            }
            result.rows.push_back(std::move(row));
          }
        }
        result.stats.operators.rows_materialized += nrows;
      }
      // else: execution emptied out before binding all labels — result
      // stays empty, which is correct (an empty intermediate join is
      // empty forever).
    }
  }

  result.stats.result_rows = result.rows.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  IoSnapshot io_after = db_->Io();
  result.stats.io.page_reads = io_after.page_reads - io_before.page_reads;
  result.stats.io.page_writes = io_after.page_writes - io_before.page_writes;
  result.stats.io.pool_hits = io_after.pool_hits - io_before.pool_hits;
  result.stats.io.pool_misses = io_after.pool_misses - io_before.pool_misses;
  result.stats.io.code_cache_hits =
      io_after.code_cache_hits - io_before.code_cache_hits;
  result.stats.io.code_cache_misses =
      io_after.code_cache_misses - io_before.code_cache_misses;
  result.stats.modeled_io_pages =
      result.stats.io.pool_hits + result.stats.io.pool_misses +
      result.stats.operators.temporal_pages_read +
      result.stats.operators.temporal_pages_written;
  return result;
}

}  // namespace fgpm
