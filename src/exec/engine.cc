#include "exec/engine.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/scheduler.h"
#include "common/timer.h"
#include "exec/temporal_table.h"
#include "exec/wcoj.h"
#include "obs/metrics.h"

namespace fgpm {

namespace {

// Registry handles resolved once per process; the per-query fold below
// is a handful of relaxed adds on thread-sharded cells.
struct EngineMetrics {
  obs::Counter* queries;
  obs::Counter* result_rows;
  obs::Counter* steps;
  obs::Counter* code_fetches;
  obs::Counter* cluster_fetches;
  obs::Counter* wtable_lookups;
  obs::Counter* reach_memo_probes;
  obs::Counter* reach_memo_hits;
  obs::Counter* rows_materialized;
  obs::Counter* wcoj_binds;
  obs::Counter* wcoj_kway_probes;
  obs::Counter* wcoj_kway_hits;
  obs::Counter* wcoj_reach_pruned;
  obs::Histogram* latency_usec;

  static const EngineMetrics& Get() {
    static const EngineMetrics m = [] {
      auto& r = obs::MetricsRegistry::Default();
      EngineMetrics e;
      e.queries = r.GetCounter("fgpm_exec_queries_total",
                               "Plans executed by the R-join engine");
      e.result_rows =
          r.GetCounter("fgpm_exec_result_rows_total", "Result rows produced");
      e.steps = r.GetCounter("fgpm_exec_steps_total", "Plan steps executed");
      e.code_fetches = r.GetCounter("fgpm_exec_code_fetches_total",
                                    "getCenters graph-code retrievals");
      e.cluster_fetches = r.GetCounter("fgpm_exec_cluster_fetches_total",
                                       "R-join index getF/getT reads");
      e.wtable_lookups =
          r.GetCounter("fgpm_exec_wtable_lookups_total", "W-table lookups");
      e.reach_memo_probes = r.GetCounter("fgpm_exec_reach_memo_probes_total",
                                         "Reachability memo probes");
      e.reach_memo_hits = r.GetCounter("fgpm_exec_reach_memo_hits_total",
                                       "Reachability memo hits");
      e.rows_materialized = r.GetCounter("fgpm_exec_rows_materialized_total",
                                         "Full-width rows materialized");
      e.wcoj_binds = r.GetCounter("fgpm_exec_wcoj_binds_total",
                                  "WCOJ vertex-bind steps executed");
      e.wcoj_kway_probes =
          r.GetCounter("fgpm_exec_wcoj_kway_probes_total",
                       "k-way intersection candidate probes");
      e.wcoj_kway_hits = r.GetCounter("fgpm_exec_wcoj_kway_hits_total",
                                      "k-way intersection survivors");
      e.wcoj_reach_pruned =
          r.GetCounter("fgpm_exec_wcoj_reach_pruned_total",
                       "WCOJ candidates pruned by reachability probes");
      e.latency_usec = r.GetHistogram("fgpm_exec_query_latency_usec",
                                      "Plan execution wall time (us)");
      return e;
    }();
    return m;
  }
};

IoSnapshot IoDelta(const IoSnapshot& after, const IoSnapshot& before) {
  IoSnapshot d;
  d.page_reads = after.page_reads - before.page_reads;
  d.page_writes = after.page_writes - before.page_writes;
  d.pool_hits = after.pool_hits - before.pool_hits;
  d.pool_misses = after.pool_misses - before.pool_misses;
  d.code_cache_hits = after.code_cache_hits - before.code_cache_hits;
  d.code_cache_misses = after.code_cache_misses - before.code_cache_misses;
  return d;
}

// The span side of the stats-delta protocol: operators fold their
// call-local stats exactly once (operators.h), so after-minus-before
// around one step is that step's delta. Only nonzero deltas become args
// to keep traces compact; rows_in/rows_out are always attached.
void AttachSpanArgs(QueryTrace* trace, uint32_t span, uint64_t rows_in,
                    uint64_t rows_out, const OperatorStats& before,
                    const OperatorStats& after, const IoSnapshot& io) {
  trace->AddArg(span, "rows_in", rows_in);
  trace->AddArg(span, "rows_out", rows_out);
  auto delta = [&](const char* key, uint64_t b, uint64_t a) {
    if (a != b) trace->AddArg(span, key, a - b);
  };
  delta("rows_scanned", before.rows_scanned, after.rows_scanned);
  delta("rows_pruned", before.rows_pruned, after.rows_pruned);
  delta("pairs_emitted", before.pairs_emitted, after.pairs_emitted);
  delta("code_fetches", before.code_fetches, after.code_fetches);
  delta("cluster_fetches", before.cluster_fetches, after.cluster_fetches);
  delta("wtable_lookups", before.wtable_lookups, after.wtable_lookups);
  delta("reach_memo_probes", before.reach_memo_probes,
        after.reach_memo_probes);
  delta("reach_memo_hits", before.reach_memo_hits, after.reach_memo_hits);
  delta("rows_materialized", before.rows_materialized,
        after.rows_materialized);
  delta("kway_intersect_probes", before.kway_intersect_probes,
        after.kway_intersect_probes);
  delta("kway_intersect_hits", before.kway_intersect_hits,
        after.kway_intersect_hits);
  delta("wcoj_reach_pruned", before.wcoj_reach_pruned,
        after.wcoj_reach_pruned);
  delta("temporal_pages_read", before.temporal_pages_read,
        after.temporal_pages_read);
  delta("temporal_pages_written", before.temporal_pages_written,
        after.temporal_pages_written);
  delta("pool_hits", 0, io.pool_hits);
  delta("pool_misses", 0, io.pool_misses);
  delta("code_cache_hits", 0, io.code_cache_hits);
  delta("code_cache_misses", 0, io.code_cache_misses);
  delta("page_reads", 0, io.page_reads);
}

}  // namespace

void MatchResult::SortRows() { std::sort(rows.begin(), rows.end()); }

bool ResolveNodeLabels(const GraphDatabase& db, const Pattern& pattern,
                       std::vector<LabelId>* node_labels) {
  std::vector<LabelId> resolved(pattern.num_nodes());
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = db.catalog().FindLabel(pattern.label(i));
    if (!l) return false;
    resolved[i] = *l;
  }
  *node_labels = std::move(resolved);
  return true;
}

Status RunPlanSteps(const GraphDatabase& db, const Pattern& pattern,
                    const std::vector<LabelId>& node_labels, const Plan& plan,
                    size_t start_step, bool factorized, TemporalTable* table,
                    ExecStats* stats, QueryTrace* trace, uint32_t query_span,
                    ThreadPool* pool, ExecScratch* scratch,
                    uint64_t* wcoj_binds) {
  const std::vector<PlanStep>& steps = plan.steps;
  for (size_t si = start_step; si < steps.size(); ++si) {
    const PlanStep& step = steps[si];
    size_t absorbed = 0;
    std::vector<uint32_t> fused;
    if (factorized && step.kind == StepKind::kFetch) {
      // Fuse the consecutive selects that touch the node this fetch
      // binds (their other endpoint is bound already — plans
      // validate selects): the predicates run on candidates inside
      // the expansion loop, before anything is appended.
      const PatternEdge& e = pattern.edges()[step.edge];
      PatternNodeId nn = step.bound_is_source ? e.to : e.from;
      size_t j = si + 1;
      while (j < steps.size() && steps[j].kind == StepKind::kSelect) {
        const PatternEdge& se = pattern.edges()[steps[j].edge];
        if (se.from != nn && se.to != nn) break;
        fused.push_back(steps[j].edge);
        ++j;
      }
      absorbed = fused.size();
    }

    const uint64_t rows_in = table->NumRows();
    uint32_t span = 0;
    OperatorStats ops_before;
    IoSnapshot io_before_step;
    if (trace) {
      span = trace->BeginSpan(StepLabel(pattern, step), "operator",
                              static_cast<int32_t>(query_span));
      ops_before = stats->operators;
      io_before_step = db.Io();
    }
    // Phase label for the scheduler profiler: morsels this step fans
    // out carry "match;<step>" so folded stacks attribute worker busy
    // time to plan steps. Interning only happens while profiling.
    std::optional<ScopedSchedLabel> sched_label;
    if (Scheduler::ProfilingEnabled()) {
      sched_label.emplace(
          Scheduler::InternLabel("match;" + StepLabel(pattern, step)));
    }
    WallTimer step_timer;

    switch (step.kind) {
      case StepKind::kHpsjBase:
        FGPM_RETURN_IF_ERROR(HpsjBaseJoin(db, pattern, node_labels, step.edge,
                                          table, &stats->operators, pool,
                                          scratch));
        break;
      case StepKind::kScanBase:
        FGPM_RETURN_IF_ERROR(ScanBase(db, pattern, node_labels, step.scan_node,
                                      table, &stats->operators));
        break;
      case StepKind::kFilter:
        FGPM_RETURN_IF_ERROR(ApplyFilter(db, pattern, node_labels,
                                         step.filters, table,
                                         &stats->operators, pool, scratch));
        break;
      case StepKind::kFetch:
        FGPM_RETURN_IF_ERROR(ApplyFetch(db, pattern, node_labels, step.edge,
                                        step.bound_is_source, table,
                                        &stats->operators, pool, scratch,
                                        fused));
        break;
      case StepKind::kSelect:
        FGPM_RETURN_IF_ERROR(ApplySelect(db, pattern, node_labels, step.edge,
                                         table, &stats->operators, pool,
                                         scratch));
        break;
      case StepKind::kWcojBind:
        ++*wcoj_binds;
        FGPM_RETURN_IF_ERROR(ApplyWcojBind(db, pattern, node_labels, step,
                                           table, &stats->operators, pool,
                                           scratch));
        break;
    }

    const double step_ms = step_timer.ElapsedMillis();
    // Absorbed selects still count as executed plan steps and
    // record the (shared) post-fetch row count; their time is
    // inside the fetch's entry.
    stats->steps += static_cast<uint32_t>(1 + absorbed);
    uint64_t nrows = table->NumRows();
    for (size_t k = 0; k <= absorbed; ++k) {
      stats->step_rows.push_back(nrows);
      stats->step_wall_ms.push_back(k == 0 ? step_ms : 0.0);
      stats->step_absorbed.push_back(k == 0 ? 0 : 1);
    }
    if (trace) {
      trace->EndSpan(span);
      AttachSpanArgs(trace, span, rows_in, nrows, ops_before,
                     stats->operators, IoDelta(db.Io(), io_before_step));
      // Fused selects become child spans mirroring the fetch's
      // interval — parent/child links make the absorption visible
      // in chrome://tracing instead of the steps just vanishing.
      // Copy the interval: AddCompleteSpan grows spans_ and would
      // invalidate a reference held across iterations.
      const double parent_start_us = trace->spans()[span].start_us;
      const double parent_wall_us = trace->spans()[span].wall_us;
      for (size_t k = 0; k < absorbed; ++k) {
        uint32_t child = trace->AddCompleteSpan(
            StepLabel(pattern, steps[si + 1 + k]), "operator",
            static_cast<int32_t>(span), parent_start_us, parent_wall_us, 0);
        trace->AddArg(child, "fused_into_fetch", 1);
        trace->AddArg(child, "rows_out", nrows);
      }
    }
    si += absorbed;
    // An empty intermediate stays empty; skip the remaining steps.
    if (nrows == 0) break;
  }
  return Status::OK();
}

void MaterializeTable(const Pattern& pattern, const TemporalTable& table,
                      MatchResult* result) {
  // Project to pattern-node order (plans bind labels in plan order).
  // This is the factorized representation's single materialization
  // point: each column is gathered once, sequentially.
  if (table.NumColumns() != pattern.num_nodes()) {
    // Execution emptied out before binding all labels — result stays
    // empty, which is correct (an empty intermediate join is empty
    // forever).
    return;
  }
  std::vector<size_t> col_of(pattern.num_nodes());
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto c = table.ColumnOf(i);
    FGPM_CHECK(c.has_value());
    col_of[i] = *c;
  }
  const size_t nrows = table.NumRows();
  result->rows.reserve(nrows);
  if (!table.deltas().empty()) {
    std::vector<std::vector<NodeId>> cols(pattern.num_nodes());
    for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
      table.GatherColumn(col_of[i], &cols[i]);
    }
    for (size_t r = 0; r < nrows; ++r) {
      std::vector<NodeId> row(pattern.num_nodes());
      for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
        row[i] = cols[i][r];
      }
      result->rows.push_back(std::move(row));
    }
  } else {
    size_t ncols = table.NumColumns();
    for (size_t r = 0; r < nrows; ++r) {
      std::vector<NodeId> row(pattern.num_nodes());
      for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
        row[i] = table.raw_rows()[r * ncols + col_of[i]];
      }
      result->rows.push_back(std::move(row));
    }
  }
  result->stats.operators.rows_materialized += nrows;
}

Result<MatchResult> Executor::Execute(const Pattern& pattern,
                                      const Plan& plan,
                                      int trace_level_override) {
  FGPM_RETURN_IF_ERROR(plan.Validate(pattern));

  // The runtime kill switch suppresses span recording too, not just
  // metric writes (obs.h documents "spans are never recorded").
  const int trace_level =
      obs::kCompiledIn && obs::Enabled()
          ? (trace_level_override >= 0 ? trace_level_override
                                       : options_.trace_level)
          : 0;

  WallTimer timer;
  IoSnapshot io_before = db_->Io();

  std::shared_ptr<QueryTrace> trace;
  uint32_t query_span = 0;
  if (trace_level >= 1) {
    trace = std::make_shared<QueryTrace>();
    query_span = trace->BeginSpan(pattern.ToString(), "query");
  }

  MatchResult result;
  uint64_t wcoj_binds = 0;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    result.column_labels.push_back(pattern.label(i));
  }

  // Resolve pattern labels; a label with no extent means zero matches.
  std::vector<LabelId> node_labels;
  if (ResolveNodeLabels(*db_, pattern, &node_labels)) {
    if (pattern.num_edges() == 0) {
      // Single-label pattern: scan the base table.
      FGPM_RETURN_IF_ERROR(
          db_->table(node_labels[0]).Scan([&](const GraphCodeRecord& rec) {
            result.rows.push_back({rec.node});
          }));
    } else {
      TemporalTable table(options_.materialization);
      const bool factorized =
          options_.materialization == Materialization::kFactorized;
      scratch_.BeginQuery();
      FGPM_RETURN_IF_ERROR(RunPlanSteps(
          *db_, pattern, node_labels, plan, 0, factorized, &table,
          &result.stats, trace.get(), query_span, pool_.get(), &scratch_,
          &wcoj_binds));
      MaterializeTable(pattern, table, &result);
    }
  }

  result.stats.result_rows = result.rows.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  result.stats.io = IoDelta(db_->Io(), io_before);
  result.stats.modeled_io_pages =
      result.stats.io.pool_hits + result.stats.io.pool_misses +
      result.stats.operators.temporal_pages_read +
      result.stats.operators.temporal_pages_written;

  if (trace) {
    trace->EndSpan(query_span);
    trace->AddArg(query_span, "result_rows", result.stats.result_rows);
    trace->AddArg(query_span, "pool_hits", result.stats.io.pool_hits);
    trace->AddArg(query_span, "pool_misses", result.stats.io.pool_misses);
    trace->AddArg(query_span, "code_cache_hits",
                  result.stats.io.code_cache_hits);
    trace->AddArg(query_span, "code_cache_misses",
                  result.stats.io.code_cache_misses);
    result.stats.trace = std::move(trace);
  }

  if (obs::kCompiledIn && obs::Enabled()) {
    const EngineMetrics& m = EngineMetrics::Get();
    const OperatorStats& op = result.stats.operators;
    m.queries->Increment();
    m.result_rows->Increment(result.stats.result_rows);
    m.steps->Increment(result.stats.steps);
    m.code_fetches->Increment(op.code_fetches);
    m.cluster_fetches->Increment(op.cluster_fetches);
    m.wtable_lookups->Increment(op.wtable_lookups);
    m.reach_memo_probes->Increment(op.reach_memo_probes);
    m.reach_memo_hits->Increment(op.reach_memo_hits);
    m.rows_materialized->Increment(op.rows_materialized);
    m.wcoj_binds->Increment(wcoj_binds);
    m.wcoj_kway_probes->Increment(op.kway_intersect_probes);
    m.wcoj_kway_hits->Increment(op.kway_intersect_hits);
    m.wcoj_reach_pruned->Increment(op.wcoj_reach_pruned);
    m.latency_usec->Observe(
        static_cast<uint64_t>(result.stats.elapsed_ms * 1e3));
  }
  return result;
}

}  // namespace fgpm
