// Physical plan for a graph pattern: a left-deep sequence of R-join /
// R-semijoin steps (Sections 3-4).
//
//   kHpsjBase — Algorithm 1 (HPSJ): R-join of the first two base tables
//               entirely out of the cluster index.
//   kFilter   — the Filter step of Algorithm 2 (HPSJ+) == an R-semijoin.
//               One step may carry several semijoins that share a single
//               scan of the temporal table (Remark 3.1).
//   kFetch    — the Fetch step of HPSJ+: expands pending center sets into
//               result tuples using the cluster index.
//   kSelect   — "self R-join" (Eq. 5): both endpoint labels already
//               bound, evaluated as a selection via graph codes.
#ifndef FGPM_EXEC_PLAN_H_
#define FGPM_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/pattern.h"

namespace fgpm {

enum class StepKind : uint8_t {
  kHpsjBase,
  kScanBase,  // start from one base table (DPS plans may open with
              // R-semijoins on a single table, Figure 3 status S1)
  kFilter,
  kFetch,
  kSelect,
  kWcojBind,  // worst-case-optimal vertex binding: extend every row by
              // one pattern vertex whose candidates are the k-way
              // intersection of the per-edge reachable sets
};

// Which join operators the planner may use. kBinary restricts plans to
// the paper's R-join/R-semijoin pipeline; kWcoj forces a pure
// vertex-at-a-time plan (scan + WCOJ binds); kHybrid (the default) lets
// the cost model mix both — WCOJ binds over the pattern's cyclic core,
// binary steps for acyclic appendages — and degrades to kBinary on
// acyclic patterns.
enum class JoinStrategy : uint8_t { kBinary, kWcoj, kHybrid };
const char* JoinStrategyName(JoinStrategy s);

// One R-semijoin inside a kFilter step.
struct FilterItem {
  uint32_t edge = 0;            // index into Pattern::edges()
  bool bound_is_source = false;  // true: X bound, probes out(x) against
                                 // W(X,Y); false: Y bound, probes in(y)
  friend bool operator==(const FilterItem&, const FilterItem&) = default;
};

struct PlanStep {
  StepKind kind = StepKind::kHpsjBase;
  uint32_t edge = 0;             // kHpsjBase / kFetch / kSelect
  bool bound_is_source = false;  // kFetch: which endpoint was bound
  std::vector<FilterItem> filters;  // kFilter only
  PatternNodeId scan_node = 0;      // kScanBase / kWcojBind: the vertex
  std::vector<uint32_t> wcoj_edges;  // kWcojBind: constraint edges, all
                                     // between scan_node and bound labels

  static PlanStep HpsjBase(uint32_t edge) {
    return {StepKind::kHpsjBase, edge, false, {}, 0, {}};
  }
  static PlanStep ScanBase(PatternNodeId node) {
    PlanStep s{StepKind::kScanBase, 0, false, {}, node, {}};
    return s;
  }
  static PlanStep Filter(std::vector<FilterItem> items) {
    return {StepKind::kFilter, 0, false, std::move(items), 0, {}};
  }
  static PlanStep Fetch(uint32_t edge, bool bound_is_source) {
    return {StepKind::kFetch, edge, bound_is_source, {}, 0, {}};
  }
  static PlanStep Select(uint32_t edge) {
    return {StepKind::kSelect, edge, false, {}, 0, {}};
  }
  static PlanStep WcojBind(PatternNodeId node, std::vector<uint32_t> edges) {
    return {StepKind::kWcojBind, 0, false, {}, node, std::move(edges)};
  }
};

// Canonical one-step label ("FETCH(C->D)", "FILTER(A->B, A->C)") shared
// by EXPLAIN output and trace span names, so a span in a Chrome trace
// matches its row in the profile report by string equality.
std::string StepLabel(const Pattern& pattern, const PlanStep& step);

struct Plan;

// Rewrites every node id through node_map and every edge index through
// edge_map (directions are preserved by construction, so
// bound_is_source carries over unchanged). Used by the plan cache to
// store plans in canonical-pattern coordinates and translate them into
// the coordinates of whichever spelling is asking (query/containment.h).
Plan RemapPlan(const Plan& plan, const std::vector<PatternNodeId>& node_map,
               const std::vector<uint32_t>& edge_map);

struct Plan {
  std::vector<PlanStep> steps;
  double estimated_cost = 0.0;

  // Structural validation against a pattern: the first step must be the
  // base HPSJ (unless the pattern has < 2 nodes), every fetch must
  // follow its matching filter, every edge must be evaluated exactly
  // once, and each step must touch exactly one unbound label.
  Status Validate(const Pattern& pattern) const;

  std::string ToString(const Pattern& pattern) const;
};

}  // namespace fgpm

#endif  // FGPM_EXEC_PLAN_H_
