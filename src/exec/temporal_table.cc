#include "exec/temporal_table.h"

#include "common/logging.h"

namespace fgpm {

std::optional<size_t> TemporalTable::ColumnOf(PatternNodeId node) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == node) return i;
  }
  return std::nullopt;
}

std::optional<size_t> TemporalTable::PendingSlotFor(
    uint32_t edge, bool bound_is_source) const {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].edge == edge &&
        pending_[i].bound_is_source == bound_is_source) {
      return i;
    }
  }
  return std::nullopt;
}

NodeId TemporalTable::At(size_t row, size_t col) const {
  const size_t bc = base_columns();
  if (deltas_.empty()) return rows_[row * bc + col];
  // Walk the parent chain from the deepest level down to the level that
  // owns `col`. Level k's rows are deltas_[k - 1]; level 0 is the base
  // block.
  size_t level = deltas_.size();
  size_t idx = row;
  const size_t target_level = col >= bc ? col - bc + 1 : 0;
  while (level > target_level) {
    idx = deltas_[level - 1].parent[idx];
    --level;
  }
  if (target_level == 0) return rows_[idx * bc + col];
  return deltas_[target_level - 1].value[idx];
}

void TemporalTable::GatherColumn(size_t col, std::vector<NodeId>* out) const {
  const size_t bc = base_columns();
  const size_t nrows = NumRows();
  out->clear();
  out->resize(nrows);
  if (deltas_.empty()) {
    for (size_t r = 0; r < nrows; ++r) (*out)[r] = rows_[r * bc + col];
    return;
  }
  const size_t depth = deltas_.size();
  const size_t target_level = col >= bc ? col - bc + 1 : 0;
  if (target_level == depth) {
    const std::vector<NodeId>& v = deltas_.back().value;
    std::copy(v.begin(), v.end(), out->begin());
    return;
  }
  // Compose parent arrays: idx[r] = the row's ancestor at `level`.
  std::vector<uint32_t> idx(deltas_[depth - 1].parent);
  size_t level = depth - 1;
  while (level > target_level) {
    const std::vector<uint32_t>& par = deltas_[level - 1].parent;
    for (uint32_t& i : idx) i = par[i];
    --level;
  }
  if (target_level == 0) {
    for (size_t r = 0; r < nrows; ++r) (*out)[r] = rows_[idx[r] * bc + col];
  } else {
    const std::vector<NodeId>& v = deltas_[target_level - 1].value;
    for (size_t r = 0; r < nrows; ++r) (*out)[r] = v[idx[r]];
  }
}

void TemporalTable::Flatten() {
  if (deltas_.empty()) return;
  const size_t ncols = NumColumns();
  const size_t nrows = NumRows();
  std::vector<std::vector<NodeId>> cols(ncols);
  for (size_t c = 0; c < ncols; ++c) GatherColumn(c, &cols[c]);
  std::vector<NodeId> flat(nrows * ncols);
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < ncols; ++c) flat[r * ncols + c] = cols[c][r];
  }
  rows_ = std::move(flat);
  deltas_.clear();
}

uint64_t TemporalTable::ByteSize() const {
  uint64_t bytes = rows_.size() * 4ull;
  for (const DeltaColumn& d : deltas_) {
    bytes += d.parent.size() * 4ull + d.value.size() * 4ull;
  }
  return bytes;
}

}  // namespace fgpm
