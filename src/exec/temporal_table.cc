#include "exec/temporal_table.h"

namespace fgpm {

std::optional<size_t> TemporalTable::ColumnOf(PatternNodeId node) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == node) return i;
  }
  return std::nullopt;
}

std::optional<size_t> TemporalTable::PendingSlotFor(
    uint32_t edge, bool bound_is_source) const {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].edge == edge &&
        pending_[i].bound_is_source == bound_is_source) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace fgpm
