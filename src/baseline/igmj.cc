#include "baseline/igmj.h"

#include <algorithm>

#include "common/timer.h"
#include "opt/dp_optimizer.h"

namespace fgpm {
namespace {

// Interval entry of the X-side list. Sorted by (s asc, e desc) as in the
// paper's description of Xlist.
struct XEntry {
  uint32_t s = 0;
  uint32_t e = 0;
  uint64_t payload = 0;  // node id (base list) or temporal row index
};

// One IGMJ sweep: emits (x.payload, y.payload) for every x interval
// containing y's postorder, in a single synchronized pass.
template <typename Emit>
void IgmjSweep(std::vector<XEntry>& xs,
               const std::vector<std::pair<uint32_t, uint64_t>>& ys,
               IntDpStats* stats, const Emit& emit) {
  std::sort(xs.begin(), xs.end(), [](const XEntry& a, const XEntry& b) {
    if (a.s != b.s) return a.s < b.s;
    return a.e > b.e;
  });
  stats->entries_scanned += xs.size() + ys.size();
  auto heap_cmp = [](const XEntry& a, const XEntry& b) { return a.e > b.e; };
  std::vector<XEntry> active;  // min-heap on e
  size_t i = 0;
  for (const auto& [po, ypayload] : ys) {
    while (i < xs.size() && xs[i].s <= po) {
      active.push_back(xs[i++]);
      std::push_heap(active.begin(), active.end(), heap_cmp);
    }
    while (!active.empty() && active.front().e < po) {
      std::pop_heap(active.begin(), active.end(), heap_cmp);
      active.pop_back();
    }
    // Every active entry satisfies s <= po <= e.
    for (const XEntry& x : active) {
      ++stats->merge_emits;
      emit(x.payload, ypayload);
    }
  }
}

}  // namespace

IntDpEngine::IntDpEngine(const Graph* g, const Catalog* catalog)
    : g_(g), catalog_(catalog), index_(*g) {}

Result<MatchResult> IntDpEngine::Match(const Pattern& pattern) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  WallTimer timer;

  MatchResult result;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    result.column_labels.push_back(pattern.label(i));
  }

  std::vector<LabelId> node_labels(pattern.num_nodes());
  bool resolvable = true;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = g_->FindLabel(pattern.label(i));
    if (!l) {
      resolvable = false;
      break;
    }
    node_labels[i] = *l;
  }

  uint64_t io_before = stats_.EstimatedIoPages();
  auto finish = [&]() {
    result.stats.result_rows = result.rows.size();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    result.stats.modeled_io_pages = stats_.EstimatedIoPages() - io_before;
    return result;
  };
  if (!resolvable) return finish();

  if (pattern.num_edges() == 0) {
    for (NodeId v : g_->Extent(node_labels[0])) result.rows.push_back({v});
    return finish();
  }

  // Join order from the DP optimizer (Section 4.1), as INT-DP does.
  Result<Plan> plan = catalog_ ? OptimizeDp(pattern, *catalog_)
                               : MakeCanonicalPlan(pattern);
  FGPM_RETURN_IF_ERROR(plan.status());

  // Base-side lists (built on demand per label, kept sorted).
  auto base_xlist = [&](LabelId l) {
    std::vector<XEntry> xs;
    for (NodeId v : g_->Extent(l)) {
      for (const PostInterval& iv : index_.IntervalsOf(v)) {
        xs.push_back({iv.lo, iv.hi, v});
      }
    }
    return xs;  // IgmjSweep sorts
  };
  auto base_ylist = [&](LabelId l) {
    std::vector<std::pair<uint32_t, uint64_t>> ys;
    for (NodeId v : g_->Extent(l)) ys.emplace_back(index_.PostOf(v), v);
    std::sort(ys.begin(), ys.end());
    return ys;
  };

  std::vector<PatternNodeId> schema;
  std::vector<std::vector<NodeId>> rows;

  auto column_of = [&](PatternNodeId n) -> int {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (schema[c] == n) return static_cast<int>(c);
    }
    return -1;
  };

  for (const PlanStep& step : plan->steps) {
    switch (step.kind) {
      case StepKind::kHpsjBase: {
        const PatternEdge& e = pattern.edges()[step.edge];
        std::vector<XEntry> xs = base_xlist(node_labels[e.from]);
        auto ys = base_ylist(node_labels[e.to]);
        schema = {e.from, e.to};
        IgmjSweep(xs, ys, &stats_, [&](uint64_t x, uint64_t y) {
          rows.push_back({static_cast<NodeId>(x), static_cast<NodeId>(y)});
        });
        break;
      }
      case StepKind::kFilter:
        break;  // IGMJ has no semijoin phase; the fetch does the work
      case StepKind::kFetch: {
        const PatternEdge& e = pattern.edges()[step.edge];
        std::vector<std::vector<NodeId>> out;
        if (step.bound_is_source) {
          // Temporal X column must be re-sorted on intervals (the extra
          // sort the paper charges INT-DP for).
          int col = column_of(e.from);
          std::vector<XEntry> xs;
          for (size_t r = 0; r < rows.size(); ++r) {
            for (const PostInterval& iv : index_.IntervalsOf(rows[r][col])) {
              xs.push_back({iv.lo, iv.hi, r});
            }
          }
          ++stats_.sorts;
          stats_.entries_sorted += xs.size();
          auto ys = base_ylist(node_labels[e.to]);
          IgmjSweep(xs, ys, &stats_, [&](uint64_t r, uint64_t y) {
            out.push_back(rows[r]);
            out.back().push_back(static_cast<NodeId>(y));
          });
          schema.push_back(e.to);
        } else {
          // Temporal Y column re-sorted on postorder numbers.
          int col = column_of(e.to);
          std::vector<std::pair<uint32_t, uint64_t>> ys;
          for (size_t r = 0; r < rows.size(); ++r) {
            ys.emplace_back(index_.PostOf(rows[r][col]), r);
          }
          std::sort(ys.begin(), ys.end());
          ++stats_.sorts;
          stats_.entries_sorted += ys.size();
          std::vector<XEntry> xs = base_xlist(node_labels[e.from]);
          IgmjSweep(xs, ys, &stats_, [&](uint64_t x, uint64_t r) {
            out.push_back(rows[r]);
            out.back().push_back(static_cast<NodeId>(x));
          });
          schema.push_back(e.from);
        }
        rows = std::move(out);
        break;
      }
      case StepKind::kSelect: {
        const PatternEdge& e = pattern.edges()[step.edge];
        int cx = column_of(e.from), cy = column_of(e.to);
        std::vector<std::vector<NodeId>> out;
        for (auto& row : rows) {
          if (index_.Reaches(row[cx], row[cy])) out.push_back(std::move(row));
        }
        rows = std::move(out);
        break;
      }
      case StepKind::kScanBase: {
        schema = {step.scan_node};
        for (NodeId v : g_->Extent(node_labels[step.scan_node])) {
          rows.push_back({v});
        }
        break;
      }
    }
    if (rows.empty() && !schema.empty()) break;
  }

  // Project to pattern-node order.
  if (schema.size() == pattern.num_nodes()) {
    std::vector<int> col_of(pattern.num_nodes());
    for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
      col_of[i] = column_of(i);
    }
    result.rows.reserve(rows.size());
    for (const auto& row : rows) {
      std::vector<NodeId> projected(pattern.num_nodes());
      for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
        projected[i] = row[col_of[i]];
      }
      result.rows.push_back(std::move(projected));
    }
  }
  return finish();
}

}  // namespace fgpm
