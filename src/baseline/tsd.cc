#include "baseline/tsd.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "graph/algorithms.h"

namespace fgpm {

Result<std::unique_ptr<TsdEngine>> TsdEngine::Create(const Graph* g) {
  if (!g->finalized()) {
    return Status::FailedPrecondition("graph not finalized");
  }
  if (!IsDag(*g)) {
    return Status::FailedPrecondition(
        "TSD (TwigStackD) supports directed acyclic graphs only");
  }
  return std::unique_ptr<TsdEngine>(new TsdEngine(g));
}

bool TsdEngine::Reaches(NodeId u, NodeId v) {
  if (u == v) return true;
  if (sspi_.TreeReaches(u, v)) {
    ++stats_.interval_hits;
    return true;
  }
  ++stats_.sspi_expansions;
  return sspi_.Reaches(u, v);
}

Result<MatchResult> TsdEngine::Match(const Pattern& pattern) {
  FGPM_RETURN_IF_ERROR(pattern.Validate());
  WallTimer timer;

  MatchResult result;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    result.column_labels.push_back(pattern.label(i));
  }

  std::vector<LabelId> node_labels(pattern.num_nodes());
  bool resolvable = true;
  for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
    auto l = g_->FindLabel(pattern.label(i));
    if (!l) {
      resolvable = false;
      break;
    }
    node_labels[i] = *l;
  }

  if (resolvable) {
    // Streams: extents ordered by DFS preorder (interval start), the
    // document order TwigStack-style algorithms consume.
    const DfsForest& forest = sspi_.forest();
    std::vector<std::vector<NodeId>> streams(pattern.num_nodes());
    for (PatternNodeId i = 0; i < pattern.num_nodes(); ++i) {
      streams[i] = g_->Extent(node_labels[i]);
      std::sort(streams[i].begin(), streams[i].end(),
                [&](NodeId a, NodeId b) { return forest.pre[a] < forest.pre[b]; });
    }

    // Bind pattern nodes smallest-stream-first; check each edge against
    // already-bound endpoints as we descend.
    std::vector<PatternNodeId> order(pattern.num_nodes());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](PatternNodeId a, PatternNodeId b) {
      return streams[a].size() < streams[b].size();
    });

    std::vector<NodeId> binding(pattern.num_nodes(), kInvalidNode);
    std::vector<bool> bound(pattern.num_nodes(), false);

    // Iterative backtracking over stream positions.
    std::vector<size_t> pos(pattern.num_nodes(), 0);
    size_t depth = 0;
    while (true) {
      if (depth == order.size()) {
        result.rows.push_back(binding);
        --depth;
        bound[order[depth]] = false;
        ++pos[depth];
        continue;
      }
      PatternNodeId pn = order[depth];
      const auto& stream = streams[pn];
      bool advanced = false;
      while (pos[depth] < stream.size()) {
        NodeId v = stream[pos[depth]];
        binding[pn] = v;
        bound[pn] = true;
        ++stats_.buffered_nodes;
        bool ok = true;
        for (const PatternEdge& e : pattern.edges()) {
          if (e.from != pn && e.to != pn) continue;
          if (!bound[e.from] || !bound[e.to]) continue;
          if (!Reaches(binding[e.from], binding[e.to])) {
            ok = false;
            break;
          }
        }
        if (ok) {
          ++depth;
          if (depth < order.size()) pos[depth] = 0;
          advanced = true;
          break;
        }
        bound[pn] = false;
        ++pos[depth];
      }
      if (advanced) continue;
      bound[pn] = false;
      if (depth == 0) break;
      --depth;
      bound[order[depth]] = false;
      ++pos[depth];
    }
  }

  result.stats.result_rows = result.rows.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace fgpm
