// TSD — holistic DAG pattern matching baseline (Section 5.1), after
// TwigStackD [Chen et al.]. Works on DAGs only, like the original. The
// two-phase structure is preserved:
//   phase 1: reachability facts answerable on the DFS spanning forest are
//            decided by interval containment in O(1);
//   phase 2: facts crossing non-tree edges are recovered by expanding
//            SSPI predecessor entries, buffering partially matched nodes.
// Matching enumerates bindings holistically over interval-sorted extent
// streams with per-edge consistency checks. Performance degrades as the
// DAG densifies (more SSPI expansion) — the behavior Figure 5 shows.
//
// This is a behavioral reimplementation, not a line-by-line port of
// TwigStackD (see DESIGN.md "Substitutions").
#ifndef FGPM_BASELINE_TSD_H_
#define FGPM_BASELINE_TSD_H_

#include <memory>

#include "common/status.h"
#include "exec/engine.h"
#include "graph/graph.h"
#include "query/pattern.h"
#include "reach/sspi.h"

namespace fgpm {

struct TsdStats {
  uint64_t interval_hits = 0;     // phase-1 answers
  uint64_t sspi_expansions = 0;   // phase-2 predecessor walks
  uint64_t buffered_nodes = 0;    // partial bindings held
};

class TsdEngine {
 public:
  // Fails with FailedPrecondition if g is not a DAG.
  static Result<std::unique_ptr<TsdEngine>> Create(const Graph* g);

  Result<MatchResult> Match(const Pattern& pattern);

  const TsdStats& stats() const { return stats_; }

 private:
  explicit TsdEngine(const Graph* g) : g_(g), sspi_(*g) {}

  bool Reaches(NodeId u, NodeId v);

  const Graph* g_;
  SspiIndex sspi_;
  TsdStats stats_;
};

}  // namespace fgpm

#endif  // FGPM_BASELINE_TSD_H_
