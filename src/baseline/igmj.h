// INT-DP — the multi-interval sort-merge baseline (Section 5.2): IGMJ
// [Wang et al.] processes one R-join by a single synchronized scan of an
// interval-sorted X-list and a postorder-sorted Y-list over the
// multi-interval tree cover of the condensed DAG. Multi-join plans use
// DP order selection; every R-join against a temporal table must first
// RE-SORT the temporal column (the extra cost the paper charges INT-DP
// for, Section 5.2 last paragraph).
#ifndef FGPM_BASELINE_IGMJ_H_
#define FGPM_BASELINE_IGMJ_H_

#include <memory>

#include "common/status.h"
#include "exec/engine.h"
#include "gdb/catalog.h"
#include "graph/graph.h"
#include "query/pattern.h"
#include "reach/interval.h"

namespace fgpm {

struct IntDpStats {
  uint64_t sorts = 0;            // re-sorts of temporal columns
  uint64_t entries_sorted = 0;   // total entries passed through sorts
  uint64_t entries_scanned = 0;  // list entries consumed by sweeps
  uint64_t merge_emits = 0;      // pairs emitted by IGMJ sweeps

  // I/O the paper would charge INT-DP on a paged store: scanning the
  // sorted lists plus one write+read pass per temporal re-sort (8-byte
  // entries, 8 KiB pages).
  uint64_t EstimatedIoPages() const {
    return (entries_scanned * 8 + 2 * entries_sorted * 8) / 8192 + 1;
  }
};

class IntDpEngine {
 public:
  // catalog may be null: join order falls back to the canonical order.
  IntDpEngine(const Graph* g, const Catalog* catalog);

  Result<MatchResult> Match(const Pattern& pattern);

  const IntDpStats& stats() const { return stats_; }
  const MultiIntervalIndex& index() const { return index_; }

 private:
  const Graph* g_;
  const Catalog* catalog_;
  MultiIntervalIndex index_;
  IntDpStats stats_;
};

}  // namespace fgpm

#endif  // FGPM_BASELINE_IGMJ_H_
