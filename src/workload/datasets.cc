#include "workload/datasets.h"

#include <cstdlib>

namespace fgpm::workload {

std::vector<DatasetSpec> PaperDatasets() {
  return {
      {"20M", 0.2}, {"40M", 0.4}, {"60M", 0.6}, {"80M", 0.8}, {"100M", 1.0},
  };
}

Graph LoadDataset(const DatasetSpec& spec, double scale, bool acyclic) {
  gen::XMarkOptions opts;
  opts.factor = spec.factor * scale;
  opts.acyclic = acyclic;
  // One fixed seed per dataset name so scalability series stay nested.
  opts.seed = 42 + static_cast<uint64_t>(spec.factor * 10);
  return gen::XMarkLike(opts);
}

double BenchScaleFromEnv() {
  const char* env = std::getenv("FGPM_BENCH_SCALE");
  if (env == nullptr) return 0.1;
  double v = std::atof(env);
  if (v <= 0.0) return 0.1;
  if (v > 1.0) return 1.0;
  return v;
}

}  // namespace fgpm::workload
