#include "workload/patterns.h"

#include <algorithm>

#include "common/logging.h"

namespace fgpm::workload {
namespace {

Pattern MustParse(const char* text) {
  Result<Pattern> p = Pattern::Parse(text);
  FGPM_CHECK(p.ok());
  return *std::move(p);
}

}  // namespace

std::vector<Pattern> XmarkPathPatterns() {
  return {
      // 3-node paths (P1-P3).
      MustParse("site->region->item"),
      MustParse("site->person->watch"),
      MustParse("regions->item->incategory"),
      // 4-node paths (P4-P6).
      MustParse("site->region->item->incategory"),
      MustParse("site->people->person->interest"),
      MustParse("site->open_auction->bidder->personref"),
      // 5-node paths (P7-P9).
      MustParse("site->regions->region->item->incategory"),
      MustParse("site->people->person->profile->interest"),
      MustParse("site->open_auctions->open_auction->bidder->personref"),
  };
}

std::vector<Pattern> XmarkTreePatterns() {
  return {
      // 3-node trees (T1-T3).
      MustParse("item->name; item->incategory"),
      MustParse("person->name; person->watch"),
      MustParse("open_auction->bidder; open_auction->itemref"),
      // 4-node trees (T4-T6).
      MustParse("region->item; item->name; item->incategory"),
      MustParse("person->profile; profile->interest; person->watch"),
      MustParse("open_auction->bidder; bidder->personref; open_auction->seller"),
      // 5-node trees (T7-T9).
      MustParse("site->region; region->item; item->name; item->incategory"),
      MustParse("site->person; person->profile; profile->interest; person->watch"),
      MustParse(
          "site->open_auction; open_auction->bidder; bidder->personref; "
          "open_auction->annotation"),
  };
}

std::vector<Pattern> XmarkGraphPatterns4() {
  // Non-tree shapes (Figure 4(e)/(d) with |Vq| = 4): the join-back edge
  // runs through the selective ID/IDREF web (watch/bidder/itemref/
  // interest chains), so R-semijoins genuinely prune — the situation the
  // paper's DPS exploits.
  return {
      MustParse("person->watch; watch->open_auction; "
                "open_auction->itemref; person->itemref"),
      MustParse("open_auction->bidder; bidder->personref; "
                "personref->person; open_auction->person"),
      MustParse("item->incategory; incategory->category; item->category; "
                "category->name"),
      MustParse("open_auction->itemref; itemref->item; item->incategory; "
                "open_auction->incategory"),
      MustParse("person->watch; person->interest; watch->open_auction; "
                "open_auction->interest"),
  };
}

std::vector<Pattern> XmarkGraphPatterns5() {
  // |Vq| = 5 shapes of Figure 4(h)/(i): reference-web chains with a
  // selective join-back edge.
  return {
      MustParse("person->watch; watch->open_auction; "
                "open_auction->itemref; itemref->item; person->item"),
      MustParse("open_auction->bidder; bidder->personref; "
                "personref->person; person->interest; "
                "open_auction->interest"),
      MustParse("person->open_auction; open_auction->item; "
                "item->incategory; incategory->category; person->category"),
      MustParse("site->open_auction; open_auction->bidder; "
                "bidder->personref; personref->person; open_auction->person"),
      MustParse("person->watch; watch->open_auction; open_auction->seller; "
                "seller->name; person->seller"),
  };
}

Pattern GenericPath(int k) {
  FGPM_CHECK(k >= 2);
  Pattern p;
  PatternNodeId prev = p.AddNode("L0");
  for (int i = 1; i < k; ++i) {
    PatternNodeId cur = p.AddNode("L" + std::to_string(i));
    Status s = p.AddEdge(prev, cur);
    FGPM_CHECK(s.ok());
    prev = cur;
  }
  return p;
}

std::vector<Pattern> RandomPatterns(const Graph& g, int count, int nodes,
                                    int extra_edges, uint64_t seed) {
  FGPM_CHECK(nodes >= 2);
  Rng rng(seed);
  std::vector<LabelId> labels;
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    if (!g.Extent(l).empty()) labels.push_back(l);
  }
  FGPM_CHECK(static_cast<int>(labels.size()) >= nodes);

  std::vector<Pattern> out;
  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < count * 50) {
    ++attempts;
    std::vector<LabelId> chosen = labels;
    rng.Shuffle(&chosen);
    chosen.resize(nodes);
    Pattern p;
    for (LabelId l : chosen) p.AddNode(g.LabelName(l));
    // Random spanning tree first (connectivity), then extra edges.
    bool ok = true;
    for (int i = 1; i < nodes && ok; ++i) {
      int j = static_cast<int>(rng.NextBounded(i));
      bool forward = rng.NextBernoulli(0.5);
      Status s = forward ? p.AddEdge(j, i) : p.AddEdge(i, j);
      ok = s.ok();
    }
    for (int e = 0; e < extra_edges && ok; ++e) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(nodes));
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(nodes));
      if (a == b) continue;
      Status s = p.AddEdge(a, b);
      if (s.code() == StatusCode::kAlreadyExists) continue;
      ok = s.ok();
    }
    if (ok && p.Validate().ok()) out.push_back(std::move(p));
  }
  return out;
}

}  // namespace fgpm::workload
