// The paper's five datasets (Table 2): XMark factors 0.2 .. 1.0, named
// 20M .. 100M. Full-size generation is feasible but slow for a default
// benchmark run, so specs carry a scale multiplier; benches read
// FGPM_BENCH_SCALE (default 0.1) and note the applied scale in output.
#ifndef FGPM_WORKLOAD_DATASETS_H_
#define FGPM_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace fgpm::workload {

struct DatasetSpec {
  std::string name;   // "20M" .. "100M"
  double factor = 0;  // XMark factor the paper used
};

// The five Table 2 datasets.
std::vector<DatasetSpec> PaperDatasets();

// Generates a dataset at `scale` times the paper's size (scale 1.0 ==
// the paper's node counts). Deterministic per (spec, scale, acyclic).
Graph LoadDataset(const DatasetSpec& spec, double scale,
                  bool acyclic = false);

// Reads FGPM_BENCH_SCALE from the environment (default 0.1, clamped to
// (0, 1]).
double BenchScaleFromEnv();

}  // namespace fgpm::workload

#endif  // FGPM_WORKLOAD_DATASETS_H_
