// Workload patterns mirroring the paper's evaluation (Figure 4):
//   P1-P9 — path patterns with 3, 4 and 5 nodes;
//   T1-T9 — tree patterns with 3, 4 and 5 nodes;
//   Q1-Q5 — general graph patterns with |Vq| = 4 and |Vq| = 5.
// The XMark suites use element labels that are reachability-compatible
// with the XMarkLike generator's document schema, so every pattern has a
// non-trivial (usually non-empty) answer. Generic suites target the
// L0..Ln label alphabets of the random generators.
#ifndef FGPM_WORKLOAD_PATTERNS_H_
#define FGPM_WORKLOAD_PATTERNS_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "query/pattern.h"

namespace fgpm::workload {

// P1..P9 (3x 3-node, 3x 4-node, 3x 5-node paths).
std::vector<Pattern> XmarkPathPatterns();

// T1..T9 (3x 3-node, 3x 4-node, 3x 5-node trees).
std::vector<Pattern> XmarkTreePatterns();

// Q1..Q5 graph patterns (non-tree, with join-back edges) for |Vq| = 4.
std::vector<Pattern> XmarkGraphPatterns4();

// Q1..Q5 graph patterns for |Vq| = 5.
std::vector<Pattern> XmarkGraphPatterns5();

// L0 -> L1 -> ... -> L(k-1).
Pattern GenericPath(int k);

// Random connected patterns over labels that exist in g. Each pattern
// has `nodes` labels and nodes-1+extra_edges edges (when constructible).
std::vector<Pattern> RandomPatterns(const Graph& g, int count, int nodes,
                                    int extra_edges, uint64_t seed);

}  // namespace fgpm::workload

#endif  // FGPM_WORKLOAD_PATTERNS_H_
