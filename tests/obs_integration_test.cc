// End-to-end observability tests: per-step trace spans from the
// executor, EXPLAIN ANALYZE profile reports, the slow-query log, and
// the race-free OperatorStats fold (single-thread vs 8-thread totals
// agree on every thread-count-invariant field, and per-span deltas sum
// back to the query totals at any thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace fgpm {
namespace {

// Triangle pattern: under DPS this exercises HPSJ + filter/fetch and a
// select that the factorized engine fuses into the fetch.
constexpr const char* kTriangle = "L0->L1; L1->L2; L0->L2";

std::unique_ptr<GraphMatcher> MakeMatcher(ExecOptions exec_options = {},
                                          unsigned seed = 77) {
  static Graph g = gen::ErdosRenyi(150, 450, 4, 77);
  (void)seed;
  auto m = GraphMatcher::Create(&g, {}, exec_options);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

TEST(TraceIntegrationTest, SpanPerExecutedStep) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  ExecOptions opts;
  opts.trace_level = 1;
  auto m = MakeMatcher(opts);
  auto r = m->Match(kTriangle);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->stats.trace, nullptr);
  const auto& spans = r->stats.trace->spans();
  // One root span plus one span per executed plan-step entry (absorbed
  // selects appear as child spans of their fetch).
  ASSERT_EQ(spans.size(), 1 + r->stats.step_rows.size());
  EXPECT_EQ(spans[0].category, "query");
  EXPECT_GT(spans[0].wall_us, 0.0);
  const uint64_t* res_rows = spans[0].FindArg("result_rows");
  ASSERT_NE(res_rows, nullptr);
  EXPECT_EQ(*res_rows, r->stats.result_rows);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].category, "operator");
    EXPECT_NE(spans[i].FindArg("rows_out"), nullptr);
    EXPECT_GE(spans[i].parent, 0);
  }
  // step_wall_ms / step_absorbed stay aligned with step_rows.
  EXPECT_EQ(r->stats.step_wall_ms.size(), r->stats.step_rows.size());
  EXPECT_EQ(r->stats.step_absorbed.size(), r->stats.step_rows.size());
}

TEST(TraceIntegrationTest, MultiFusedSelectChildSpansShareFetchInterval) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  // 4-clique: the last node bound by a fetch has two remaining edges
  // into already-bound nodes, so the factorized engine absorbs >=2
  // selects into one fetch. Regression: emitting the second child span
  // used to read the parent's interval through a reference invalidated
  // by the first AddCompleteSpan's push_back (heap use-after-free).
  constexpr const char* kClique4 =
      "L0->L1; L0->L2; L0->L3; L1->L2; L1->L3; L2->L3";
  ExecOptions opts;
  opts.trace_level = 1;
  // The regression lives in the fused-select span path of binary R-join
  // plans; under the default kHybrid strategy the 4-clique plans as
  // scan+bind steps with no fused selects at all.
  opts.join_strategy = JoinStrategy::kBinary;
  auto m = MakeMatcher(opts);
  auto r = m->Match(kClique4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->stats.trace, nullptr);
  const auto& spans = r->stats.trace->spans();
  // Group fused children by parent fetch; every child mirrors its
  // parent's interval exactly.
  size_t max_children_of_one_fetch = 0;
  std::map<int32_t, size_t> children;
  for (const TraceSpan& s : spans) {
    if (s.FindArg("fused_into_fetch") == nullptr) continue;
    ASSERT_GE(s.parent, 0);
    const TraceSpan& parent = spans[static_cast<size_t>(s.parent)];
    EXPECT_EQ(s.start_us, parent.start_us);
    EXPECT_EQ(s.wall_us, parent.wall_us);
    max_children_of_one_fetch =
        std::max(max_children_of_one_fetch, ++children[s.parent]);
  }
  EXPECT_GE(max_children_of_one_fetch, 2u)
      << "plan no longer fuses two selects into one fetch; "
         "the regression scenario is not exercised";
}

TEST(TraceIntegrationTest, KillSwitchSuppressesSpans) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  ExecOptions opts;
  opts.trace_level = 1;
  auto m = MakeMatcher(opts);
  obs::SetEnabled(false);
  auto r = m->Match(kTriangle);
  obs::SetEnabled(true);
  ASSERT_TRUE(r.ok());
  // obs.h: when disabled, spans are never recorded.
  EXPECT_EQ(r->stats.trace, nullptr);
}

TEST(TraceIntegrationTest, LevelZeroRecordsNoTrace) {
  auto m = MakeMatcher();
  auto r = m->Match(kTriangle);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.trace, nullptr);
  // The always-on step profile is still recorded.
  EXPECT_EQ(r->stats.step_wall_ms.size(), r->stats.step_rows.size());
}

TEST(TraceIntegrationTest, SpanDeltasSumToQueryTotals) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  // 8 workers: the fold protocol must make per-span deltas exact (each
  // operator folds its call-local stats once, on the executor thread).
  ExecOptions opts;
  opts.num_threads = 8;
  opts.trace_level = 1;
  auto m = MakeMatcher(opts);
  auto r = m->Match(kTriangle);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->stats.trace, nullptr);
  // Fields below are only ever touched inside operator calls (unlike
  // rows_materialized, which the final projection also bumps), so the
  // span deltas must sum back to the query totals exactly.
  const char* keys[] = {"rows_scanned",      "rows_pruned",
                        "wtable_lookups",    "reach_memo_probes",
                        "reach_memo_hits",   "code_fetches",
                        "cluster_fetches",   "pairs_emitted"};
  const OperatorStats& op = r->stats.operators;
  const uint64_t totals[] = {op.rows_scanned,      op.rows_pruned,
                             op.wtable_lookups,    op.reach_memo_probes,
                             op.reach_memo_hits,   op.code_fetches,
                             op.cluster_fetches,   op.pairs_emitted};
  for (size_t k = 0; k < std::size(keys); ++k) {
    uint64_t sum = 0;
    for (const TraceSpan& s : r->stats.trace->spans()) {
      if (const uint64_t* v = s.FindArg(keys[k])) sum += *v;
    }
    EXPECT_EQ(sum, totals[k]) << keys[k];
  }
}

// Satellite: OperatorStats accumulation is race-free — totals on every
// thread-count-invariant field match a single-threaded run exactly.
// (code_fetches / reach_memo_* / pairs_emitted legitimately vary with
// chunking; see operators.h.)
TEST(StatsFoldTest, EightThreadTotalsMatchSingleThread) {
  ExecOptions seq;
  seq.num_threads = 1;
  ExecOptions par;
  par.num_threads = 8;
  auto m1 = MakeMatcher(seq);
  auto m8 = MakeMatcher(par);
  for (const char* pattern : {kTriangle, "L0->L1; L1->L2; L2->L3",
                              "L0->L1; L0->L2; L1->L3; L2->L3"}) {
    auto r1 = m1->Match(pattern);
    auto r8 = m8->Match(pattern);
    ASSERT_TRUE(r1.ok() && r8.ok()) << pattern;
    r1->SortRows();
    r8->SortRows();
    EXPECT_EQ(r1->rows, r8->rows) << pattern;
    EXPECT_EQ(r1->stats.step_rows, r8->stats.step_rows) << pattern;
    const OperatorStats& a = r1->stats.operators;
    const OperatorStats& b = r8->stats.operators;
    EXPECT_EQ(a.rows_scanned, b.rows_scanned) << pattern;
    EXPECT_EQ(a.rows_pruned, b.rows_pruned) << pattern;
    EXPECT_EQ(a.wtable_lookups, b.wtable_lookups) << pattern;
    EXPECT_EQ(a.rows_materialized, b.rows_materialized) << pattern;
    EXPECT_EQ(a.copy_bytes_avoided, b.copy_bytes_avoided) << pattern;
    EXPECT_EQ(a.temporal_pages_read, b.temporal_pages_read) << pattern;
    EXPECT_EQ(a.temporal_pages_written, b.temporal_pages_written) << pattern;
  }
}

TEST(ExplainAnalyzeTest, ReportShowsEstimatesActualsAndTimes) {
  auto m = MakeMatcher();  // trace_level 0: ExplainAnalyze promotes to 1
  auto ea = m->ExplainAnalyze(kTriangle);
  ASSERT_TRUE(ea.ok()) << ea.status().ToString();
  EXPECT_EQ(ea->explanation.steps.size(),
            ea->result.stats.step_rows.size());
  const std::string& report = ea->report;
  EXPECT_NE(report.find("est. rows"), std::string::npos);
  EXPECT_NE(report.find("act. rows"), std::string::npos);
  EXPECT_NE(report.find("err"), std::string::npos);
  EXPECT_NE(report.find("time (ms)"), std::string::npos);
  EXPECT_NE(report.find("materialized:"), std::string::npos);
  EXPECT_NE(report.find("buffer pool:"), std::string::npos);
  EXPECT_NE(report.find("code cache:"), std::string::npos);
  // The same query through Match returns the same rows.
  auto r = m->Match(kTriangle);
  ASSERT_TRUE(r.ok());
  ea->result.SortRows();
  r->SortRows();
  EXPECT_EQ(ea->result.rows, r->rows);
  if (obs::kCompiledIn) {
    EXPECT_NE(ea->result.stats.trace, nullptr);
    EXPECT_NE(ea->chrome_trace_json.find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(ea->chrome_trace_json.find("\"ph\": \"X\""),
              std::string::npos);
  }
}

TEST(ExplainAnalyzeTest, FusedSelectMarkedInReport) {
  // DPS + factorized on the triangle produces a select absorbed into
  // the preceding fetch; the report must render it as "[fused]" with no
  // time entry instead of dividing by a missing slot.
  auto m = MakeMatcher();
  auto ea = m->ExplainAnalyze(kTriangle);
  ASSERT_TRUE(ea.ok());
  bool any_absorbed = false;
  for (uint8_t a : ea->result.stats.step_absorbed) any_absorbed |= a != 0;
  if (any_absorbed) {
    EXPECT_NE(ea->report.find("[fused]"), std::string::npos);
  }
}

TEST(ExplainAnalyzeTest, RejectsUnplannedEngines) {
  auto m = MakeMatcher();
  MatchOptions opts;
  opts.engine = Engine::kNaive;
  auto ea = m->ExplainAnalyze(kTriangle, opts);
  EXPECT_EQ(ea.status().code(), StatusCode::kInvalidArgument);
}

TEST(SlowQueryLogTest, ThresholdZeroLogsEveryQuery) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  ExecOptions opts;
  opts.slow_query_ms = 0.0;  // everything is slow
  auto m = MakeMatcher(opts);
  ASSERT_TRUE(m->Match(kTriangle).ok());
  ASSERT_TRUE(m->Match("L0->L1").ok());
  ASSERT_EQ(m->slow_queries().size(), 2u);
  EXPECT_EQ(m->slow_queries()[0].pattern_text,
            Pattern::Parse(kTriangle)->ToString());
  EXPECT_EQ(m->slow_queries()[1].engine, Engine::kDps);
  EXPECT_GT(m->slow_queries()[0].elapsed_ms, 0.0);
  m->ClearSlowQueries();
  EXPECT_TRUE(m->slow_queries().empty());
}

TEST(SlowQueryLogTest, WorksWithObsDisabled) {
  // The slow log is a diagnostic gated only on slow_query_ms: it must
  // fill even with the runtime kill switch off or FGPM_OBS=OFF (only
  // the fgpm_match_slow_queries_total counter depends on obs).
  ExecOptions opts;
  opts.slow_query_ms = 0.0;
  auto m = MakeMatcher(opts);
  obs::SetEnabled(false);
  auto ok = m->Match(kTriangle).ok();
  obs::SetEnabled(true);
  ASSERT_TRUE(ok);
  ASSERT_EQ(m->slow_queries().size(), 1u);
  EXPECT_EQ(m->slow_queries()[0].pattern_text,
            Pattern::Parse(kTriangle)->ToString());
}

TEST(SlowQueryLogTest, DisabledByDefault) {
  auto m = MakeMatcher();
  ASSERT_TRUE(m->Match(kTriangle).ok());
  EXPECT_TRUE(m->slow_queries().empty());
}

TEST(SlowQueryLogTest, BoundedCapacity) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  ExecOptions opts;
  opts.slow_query_ms = 0.0;
  auto m = MakeMatcher(opts);
  for (size_t i = 0; i < GraphMatcher::kSlowLogCapacity + 5; ++i) {
    ASSERT_TRUE(m->Match("L0->L1").ok());
  }
  EXPECT_EQ(m->slow_queries().size(), GraphMatcher::kSlowLogCapacity);
}

TEST(MetricsIntegrationTest, QueriesBumpDefaultRegistry) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  auto& reg = obs::MetricsRegistry::Default();
  obs::Counter* exec_queries = reg.GetCounter("fgpm_exec_queries_total");
  obs::Counter* match_queries = reg.GetCounter("fgpm_match_queries_total");
  obs::Counter* cache_hits = reg.GetCounter("fgpm_plan_cache_hits_total");
  uint64_t exec_before = exec_queries->Value();
  uint64_t match_before = match_queries->Value();
  auto m = MakeMatcher();
  ASSERT_TRUE(m->Match(kTriangle).ok());
  EXPECT_EQ(exec_queries->Value(), exec_before + 1);
  EXPECT_EQ(match_queries->Value(), match_before + 1);
  uint64_t hits_before = cache_hits->Value();
  ASSERT_TRUE(m->Match(kTriangle).ok());  // plan-cache hit
  EXPECT_EQ(cache_hits->Value(), hits_before + 1);
  // The exporters include the engine instrumentation.
  std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("fgpm_exec_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("fgpm_bufferpool_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("fgpm_match_latency_usec_bucket"), std::string::npos);
}

TEST(MetricsIntegrationTest, KillSwitchStopsCounting) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "FGPM_OBS=OFF";
  auto& reg = obs::MetricsRegistry::Default();
  obs::Counter* exec_queries = reg.GetCounter("fgpm_exec_queries_total");
  auto m = MakeMatcher();
  obs::SetEnabled(false);
  uint64_t before = exec_queries->Value();
  ASSERT_TRUE(m->Match(kTriangle).ok());
  obs::SetEnabled(true);
  EXPECT_EQ(exec_queries->Value(), before);
}

}  // namespace
}  // namespace fgpm
