#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gdb/database.h"
#include "gdb/graph_codes.h"
#include "gdb/rjoin_index.h"
#include "gdb/wtable.h"
#include "graph/generators.h"
#include "graph/reach_oracle.h"

namespace fgpm {
namespace {

TEST(GraphCodesTest, EncodeDecodeRoundTrip) {
  GraphCodeRecord rec;
  rec.node = 42;
  rec.in = {1, 5, 9};
  rec.out = {2, 42};
  std::string bytes;
  EncodeGraphCodes(rec, &bytes);
  GraphCodeRecord back;
  ASSERT_TRUE(DecodeGraphCodes({bytes.data(), bytes.size()}, &back).ok());
  EXPECT_EQ(back.node, rec.node);
  EXPECT_EQ(back.in, rec.in);
  EXPECT_EQ(back.out, rec.out);
}

TEST(GraphCodesTest, EmptyCodesAllowed) {
  GraphCodeRecord rec;
  rec.node = 7;
  std::string bytes;
  EncodeGraphCodes(rec, &bytes);
  GraphCodeRecord back;
  ASSERT_TRUE(DecodeGraphCodes({bytes.data(), bytes.size()}, &back).ok());
  EXPECT_TRUE(back.in.empty());
  EXPECT_TRUE(back.out.empty());
}

TEST(GraphCodesTest, CorruptionDetected) {
  GraphCodeRecord rec;
  EXPECT_EQ(DecodeGraphCodes({"abc", 3}, &rec).code(),
            StatusCode::kCorruption);
  GraphCodeRecord good;
  good.node = 1;
  good.in = {2};
  std::string bytes;
  EncodeGraphCodes(good, &bytes);
  bytes.pop_back();
  EXPECT_EQ(DecodeGraphCodes({bytes.data(), bytes.size()}, &rec).code(),
            StatusCode::kCorruption);
}

TEST(NodeListStoreTest, SmallListRoundTrip) {
  DiskManager disk;
  BufferPool pool(&disk);
  NodeListStore store(&pool);
  std::vector<uint32_t> ids{3, 1, 4, 1, 5, 9, 2, 6};
  auto handle = store.Put(ids);
  ASSERT_TRUE(handle.ok());
  std::vector<uint32_t> back;
  ASSERT_TRUE(store.Get(*handle, &back).ok());
  EXPECT_EQ(back, ids);
}

TEST(NodeListStoreTest, MultiChunkListRoundTrip) {
  DiskManager disk;
  BufferPool pool(&disk);
  NodeListStore store(&pool);
  std::vector<uint32_t> ids(10000);
  for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i * 3;
  auto handle = store.Put(ids);
  ASSERT_TRUE(handle.ok());
  std::vector<uint32_t> back;
  ASSERT_TRUE(store.Get(*handle, &back).ok());
  EXPECT_EQ(back, ids);
  EXPECT_GE(NodeListStore::PagesFor(ids.size()), 5u);
}

TEST(NodeListStoreTest, EmptyRejected) {
  DiskManager disk;
  BufferPool pool(&disk);
  NodeListStore store(&pool);
  EXPECT_EQ(store.Put({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NodeListStore::PagesFor(0), 0u);
}

class GdbFixture : public ::testing::Test {
 protected:
  void BuildDb(Graph g) {
    graph_ = std::make_unique<Graph>(std::move(g));
    db_ = std::make_unique<GraphDatabase>();
    ASSERT_TRUE(db_->Build(*graph_).ok());
  }
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphDatabase> db_;
};

TEST_F(GdbFixture, BaseTablesMatchExtents) {
  BuildDb(gen::ErdosRenyi(300, 900, 5, 7));
  for (LabelId l = 0; l < graph_->NumLabels(); ++l) {
    EXPECT_EQ(db_->table(l).NumTuples(), graph_->Extent(l).size());
  }
}

TEST_F(GdbFixture, GetRetrievesCorrectCodes) {
  BuildDb(gen::ErdosRenyi(200, 600, 4, 9));
  const TwoHopLabeling& lab = db_->labeling();
  for (NodeId v = 0; v < graph_->NumNodes(); v += 7) {
    GraphCodeRecord rec;
    ASSERT_TRUE(db_->table(graph_->label_of(v)).Get(v, &rec).ok());
    EXPECT_EQ(rec.node, v);
    EXPECT_TRUE(std::ranges::equal(rec.in, lab.InCode(v)));
    EXPECT_TRUE(std::ranges::equal(rec.out, lab.OutCode(v)));
  }
}

TEST_F(GdbFixture, GetMissingNodeIsNotFound) {
  BuildDb(gen::ErdosRenyi(50, 100, 2, 11));
  // A node of label 0 is absent from table 1 (labels are disjoint).
  NodeId v0 = graph_->Extent(0).front();
  GraphCodeRecord rec;
  EXPECT_EQ(db_->table(1).Get(v0, &rec).code(), StatusCode::kNotFound);
}

TEST_F(GdbFixture, ScanVisitsAllTuples) {
  BuildDb(gen::ErdosRenyi(150, 450, 3, 13));
  for (LabelId l = 0; l < graph_->NumLabels(); ++l) {
    std::set<NodeId> seen;
    ASSERT_TRUE(db_->table(l)
                    .Scan([&](const GraphCodeRecord& r) { seen.insert(r.node); })
                    .ok());
    std::set<NodeId> expect(graph_->Extent(l).begin(),
                            graph_->Extent(l).end());
    EXPECT_EQ(seen, expect);
  }
}

// The defining property of the cluster index: (x, y) pairs produced by a
// center are exactly reachable pairs, and every reachable labeled pair
// appears under some W(X,Y) center.
TEST_F(GdbFixture, ClusterPairsAreReachable) {
  BuildDb(gen::ErdosRenyi(120, 360, 3, 17));
  ReachOracle oracle(graph_.get());
  for (LabelId x = 0; x < graph_->NumLabels(); ++x) {
    for (LabelId y = 0; y < graph_->NumLabels(); ++y) {
      std::vector<CenterId> centers;
      ASSERT_TRUE(db_->wtable().Lookup(x, y, &centers).ok());
      for (CenterId w : centers) {
        std::vector<NodeId> fs, ts;
        ASSERT_TRUE(db_->rjoin_index().GetF(w, x, &fs).ok());
        ASSERT_TRUE(db_->rjoin_index().GetT(w, y, &ts).ok());
        ASSERT_FALSE(fs.empty());
        ASSERT_FALSE(ts.empty());
        for (NodeId u : fs) {
          for (NodeId v : ts) {
            EXPECT_TRUE(oracle.Reaches(u, v)) << u << "->" << v;
          }
        }
      }
    }
  }
}

TEST_F(GdbFixture, EveryReachablePairCoveredBySomeCenter) {
  BuildDb(gen::ErdosRenyi(100, 300, 3, 19));
  ReachOracle oracle(graph_.get());
  for (NodeId u = 0; u < graph_->NumNodes(); u += 3) {
    for (NodeId v = 0; v < graph_->NumNodes(); v += 3) {
      if (!oracle.Reaches(u, v)) continue;
      LabelId x = graph_->label_of(u), y = graph_->label_of(v);
      std::vector<CenterId> centers;
      ASSERT_TRUE(db_->wtable().Lookup(x, y, &centers).ok());
      bool covered = false;
      for (CenterId w : centers) {
        std::vector<NodeId> fs, ts;
        ASSERT_TRUE(db_->rjoin_index().GetF(w, x, &fs).ok());
        ASSERT_TRUE(db_->rjoin_index().GetT(w, y, &ts).ok());
        if (std::count(fs.begin(), fs.end(), u) &&
            std::count(ts.begin(), ts.end(), v)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << u << "->" << v;
    }
  }
}

TEST_F(GdbFixture, WTableAbsentPairIsEmpty) {
  // A two-node graph with an edge A->B: W(B,A) must be empty.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  g.Finalize();
  BuildDb(std::move(g));
  std::vector<CenterId> centers;
  ASSERT_TRUE(db_->wtable().Lookup(1, 0, &centers).ok());
  EXPECT_TRUE(centers.empty());
  ASSERT_TRUE(db_->wtable().Lookup(0, 1, &centers).ok());
  EXPECT_FALSE(centers.empty());
}

TEST_F(GdbFixture, CatalogStatsMatchGroundTruth) {
  BuildDb(gen::ErdosRenyi(120, 360, 3, 23));
  ReachOracle oracle(graph_.get());
  const Catalog& cat = db_->catalog();
  EXPECT_EQ(cat.NumNodes(), graph_->NumNodes());
  for (LabelId x = 0; x < graph_->NumLabels(); ++x) {
    EXPECT_EQ(cat.ExtentSize(x), graph_->Extent(x).size());
    for (LabelId y = 0; y < graph_->NumLabels(); ++y) {
      // est_pairs is an upper bound on the true distinct join size.
      uint64_t truth = 0;
      for (NodeId u : graph_->Extent(x)) {
        for (NodeId v : graph_->Extent(y)) {
          if (oracle.Reaches(u, v)) ++truth;
        }
      }
      EXPECT_GE(cat.Stats(x, y).est_pairs, truth);
      if (truth == 0) {
        EXPECT_EQ(cat.Stats(x, y).est_pairs, 0u);
      }
      EXPECT_LE(cat.Selectivity(x, y), 1.0);
    }
  }
}

TEST_F(GdbFixture, CodeCacheHitsAvoidTableAccess) {
  BuildDb(gen::ErdosRenyi(200, 600, 3, 29));
  NodeId v = graph_->Extent(0).front();
  GraphCodeRecord rec;
  ASSERT_TRUE(db_->GetCodes(v, 0, &rec).ok());
  IoSnapshot io1 = db_->Io();
  ASSERT_TRUE(db_->GetCodes(v, 0, &rec).ok());
  IoSnapshot io2 = db_->Io();
  EXPECT_EQ(io2.pool_misses, io1.pool_misses);
  EXPECT_EQ(io2.code_cache_hits, io1.code_cache_hits + 1);
}

TEST_F(GdbFixture, CodeCacheDisableWorks) {
  BuildDb(gen::ErdosRenyi(100, 300, 3, 31));
  db_->set_code_cache_enabled(false);
  NodeId v = graph_->Extent(0).front();
  GraphCodeRecord rec;
  ASSERT_TRUE(db_->GetCodes(v, 0, &rec).ok());
  ASSERT_TRUE(db_->GetCodes(v, 0, &rec).ok());
  EXPECT_EQ(db_->Io().code_cache_hits, 0u);
  EXPECT_EQ(db_->Io().code_cache_misses, 0u);
}

TEST_F(GdbFixture, BuildResetsIoCounters) {
  BuildDb(gen::ErdosRenyi(100, 300, 3, 37));
  IoSnapshot io = db_->Io();
  EXPECT_EQ(io.pool_misses, 0u);
  EXPECT_EQ(io.page_reads, 0u);
}

TEST_F(GdbFixture, GreedyCoverOptionWorks) {
  Graph g = gen::ErdosRenyi(60, 150, 3, 41);
  Graph copy = g.Clone();
  GraphDatabaseOptions opts;
  opts.use_greedy_cover = true;
  GraphDatabase db(opts);
  ASSERT_TRUE(db.Build(copy).ok());
  ReachOracle oracle(&g);
  Rng rng(43);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    EXPECT_EQ(db.labeling().Reaches(u, v), oracle.Reaches(u, v));
  }
}

TEST_F(GdbFixture, DoubleBuildRejected) {
  BuildDb(gen::ErdosRenyi(30, 60, 2, 47));
  EXPECT_EQ(db_->Build(*graph_).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace fgpm
