#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reach_oracle.h"
#include "reach/grail.h"
#include "reach/interval.h"
#include "reach/sspi.h"
#include "reach/two_hop.h"

namespace fgpm {
namespace {

// Every index must agree with the BFS oracle on sampled pairs; the whole
// system rests on these equivalences.
template <typename Index>
void ExpectAgreesWithOracle(const Graph& g, const Index& index,
                            int samples, uint64_t seed) {
  ReachOracle oracle(const_cast<Graph*>(&g));
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    EXPECT_EQ(oracle.Reaches(u, v), index.Reaches(u, v))
        << "u=" << u << " v=" << v;
  }
}

Graph Diamond() {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C"),
         d = g.AddNode("D");
  EXPECT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.AddEdge(a, c).ok());
  EXPECT_TRUE(g.AddEdge(b, d).ok());
  EXPECT_TRUE(g.AddEdge(c, d).ok());
  g.Finalize();
  return g;
}

TEST(TwoHopPrunedTest, DiamondReachability) {
  Graph g = Diamond();
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  EXPECT_TRUE(lab.Reaches(0, 3));
  EXPECT_TRUE(lab.Reaches(0, 1));
  EXPECT_TRUE(lab.Reaches(1, 3));
  EXPECT_FALSE(lab.Reaches(1, 2));
  EXPECT_FALSE(lab.Reaches(3, 0));
  EXPECT_TRUE(lab.Reaches(2, 2));  // reflexive
}

TEST(TwoHopPrunedTest, CodesIncludeSelf) {
  Graph g = Diamond();
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    CenterId self = lab.CenterOf(v);
    EXPECT_TRUE(SortedContains(lab.InCode(v), self));
    EXPECT_TRUE(SortedContains(lab.OutCode(v), self));
  }
}

TEST(TwoHopPrunedTest, CodesAreSorted) {
  Graph g = gen::ErdosRenyi(500, 1500, 5, 3);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_TRUE(std::is_sorted(lab.InCode(v).begin(), lab.InCode(v).end()));
    EXPECT_TRUE(std::is_sorted(lab.OutCode(v).begin(), lab.OutCode(v).end()));
  }
}

TEST(TwoHopPrunedTest, RandomDagAgreesWithOracle) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = gen::RandomDag(400, 2.5, 4, seed);
    TwoHopLabeling lab = BuildTwoHopPruned(g);
    ExpectAgreesWithOracle(g, lab, 2000, seed * 31);
  }
}

TEST(TwoHopPrunedTest, CyclicGraphAgreesWithOracle) {
  for (uint64_t seed : {11ull, 12ull}) {
    Graph g = gen::ErdosRenyi(300, 900, 4, seed);
    EXPECT_FALSE(IsDag(g));  // dense ER digraphs have cycles
    TwoHopLabeling lab = BuildTwoHopPruned(g);
    ExpectAgreesWithOracle(g, lab, 2000, seed * 17);
  }
}

TEST(TwoHopPrunedTest, SameSccSharesCodes) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  ASSERT_TRUE(g.AddEdge(c, a).ok());
  g.Finalize();
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  EXPECT_EQ(lab.CenterOf(a), lab.CenterOf(b));
  EXPECT_TRUE(std::ranges::equal(lab.InCode(a), lab.InCode(c)));
  EXPECT_TRUE(lab.Reaches(c, b));
  EXPECT_TRUE(lab.Reaches(b, a));
}

TEST(TwoHopPrunedTest, XMarkScaleAndCoverSize) {
  gen::XMarkOptions opts;
  opts.factor = 0.01;
  Graph g = gen::XMarkLike(opts);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  ExpectAgreesWithOracle(g, lab, 500, 99);
  // Paper reports |H|/|V| ~= 3.5 on XMark-derived graphs (Table 2);
  // our synthetic stand-in must land in the same band.
  double per_node = double(lab.CoverSize()) / double(g.NumNodes());
  EXPECT_GE(per_node, 1.5);
  EXPECT_LE(per_node, 6.0);
}

TEST(TwoHopGreedyTest, DiamondAgreesWithOracle) {
  Graph g = Diamond();
  TwoHopLabeling lab = BuildTwoHopGreedy(g);
  ExpectAgreesWithOracle(g, lab, 16, 5);
}

TEST(TwoHopGreedyTest, RandomGraphsAgreeWithOracle) {
  for (uint64_t seed : {21ull, 22ull, 23ull}) {
    Graph g = gen::ErdosRenyi(60, 150, 3, seed);
    TwoHopLabeling lab = BuildTwoHopGreedy(g);
    ExpectAgreesWithOracle(g, lab, 3600, seed);
  }
}

TEST(TwoHopGreedyTest, ProducesCompactCoverOnChain) {
  // On a path a->b->c->...->j the greedy cover should stay near-linear,
  // not quadratic.
  Graph g;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 24; ++i) nodes.push_back(g.AddNode("A"));
  for (int i = 0; i + 1 < 24; ++i) {
    ASSERT_TRUE(g.AddEdge(nodes[i], nodes[i + 1]).ok());
  }
  g.Finalize();
  TwoHopLabeling lab = BuildTwoHopGreedy(g);
  ExpectAgreesWithOracle(g, lab, 576, 7);
  EXPECT_LT(lab.CoverSize(), 24u * 12u);  // far below closure size
}

TEST(NormalizeIntervalsTest, MergesOverlapsAndAdjacency) {
  auto out = NormalizeIntervals({{5, 9}, {1, 3}, {4, 6}, {12, 14}});
  // [1,3] adjacent to [4,6] merges; [4,6]+[5,9] overlap merges.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (PostInterval{1, 9}));
  EXPECT_EQ(out[1], (PostInterval{12, 14}));
}

TEST(NormalizeIntervalsTest, ContainmentQueries) {
  auto ivs = NormalizeIntervals({{2, 4}, {8, 10}});
  EXPECT_FALSE(IntervalsContain(ivs, 1));
  EXPECT_TRUE(IntervalsContain(ivs, 2));
  EXPECT_TRUE(IntervalsContain(ivs, 4));
  EXPECT_FALSE(IntervalsContain(ivs, 5));
  EXPECT_TRUE(IntervalsContain(ivs, 9));
  EXPECT_FALSE(IntervalsContain(ivs, 11));
  EXPECT_FALSE(IntervalsContain({}, 3));
}

TEST(MultiIntervalTest, DiamondReachability) {
  Graph g = Diamond();
  MultiIntervalIndex idx(g);
  ExpectAgreesWithOracle(g, idx, 16, 9);
}

TEST(MultiIntervalTest, RandomDagAgreesWithOracle) {
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    Graph g = gen::RandomDag(300, 3.0, 4, seed);
    MultiIntervalIndex idx(g);
    ExpectAgreesWithOracle(g, idx, 2000, seed);
  }
}

TEST(MultiIntervalTest, CyclicGraphCondensesCorrectly) {
  Graph g = gen::ErdosRenyi(200, 700, 4, 41);
  ASSERT_FALSE(IsDag(g));
  MultiIntervalIndex idx(g);
  ExpectAgreesWithOracle(g, idx, 2000, 42);
}

TEST(MultiIntervalTest, DenseDagGrowsCodeSize) {
  Graph sparse = gen::RandomDag(300, 1.2, 3, 51);
  Graph dense = gen::RandomDag(300, 8.0, 3, 51);
  MultiIntervalIndex si(sparse), di(dense);
  // Interval fragmentation grows with density (per-vertex, since edge
  // count also differs).
  EXPECT_GT(di.TotalIntervals(), si.TotalIntervals());
}

TEST(SspiTest, TreePhaseMatchesForestAncestry) {
  Graph g = gen::RandomDag(200, 2.0, 3, 61);
  SspiIndex sspi(g);
  const DfsForest& f = sspi.forest();
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (f.parent[v] != kInvalidNode) {
      EXPECT_TRUE(sspi.TreeReaches(f.parent[v], v));
    }
  }
}

TEST(SspiTest, DagAgreesWithOracle) {
  for (uint64_t seed : {71ull, 72ull, 73ull}) {
    Graph g = gen::RandomDag(250, 2.5, 4, seed);
    SspiIndex sspi(g);
    ExpectAgreesWithOracle(g, sspi, 2000, seed);
  }
}

TEST(SspiTest, XMarkAcyclicAgreesWithOracle) {
  gen::XMarkOptions opts;
  opts.factor = 0.002;
  opts.acyclic = true;
  Graph g = gen::XMarkLike(opts);
  SspiIndex sspi(g);
  ExpectAgreesWithOracle(g, sspi, 800, 81);
}

TEST(SspiTest, EntriesCountNonTreeEdges) {
  Graph g = gen::RandomDag(100, 3.0, 3, 91);
  SspiIndex sspi(g);
  EXPECT_EQ(sspi.TotalEntries(), sspi.forest().non_tree_edges.size());
}

// Cross-index consistency: all three structures answer identically.
TEST(CrossIndexTest, AllIndexesAgree) {
  Graph g = gen::RandomDag(150, 2.0, 5, 101);
  TwoHopLabeling hop = BuildTwoHopPruned(g);
  TwoHopLabeling greedy = BuildTwoHopGreedy(g);
  MultiIntervalIndex intervals(g);
  SspiIndex sspi(g);
  Rng rng(103);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    bool expect = hop.Reaches(u, v);
    EXPECT_EQ(greedy.Reaches(u, v), expect);
    EXPECT_EQ(intervals.Reaches(u, v), expect);
    EXPECT_EQ(sspi.Reaches(u, v), expect);
  }
}


// --- incremental maintenance (the cited 2-hop update problem) -----------

TEST(TwoHopUpdateTest, SingleEdgeInsertMatchesOracle) {
  Graph g = gen::RandomDag(150, 1.5, 3, 201);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  Rng rng(202);
  ReachOracle pre(&g);
  // Pick an edge that does not close a cycle.
  NodeId u = 0, v = 0;
  do {
    u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
  } while (u == v || pre.Reaches(v, u));
  ASSERT_TRUE(g.AddEdge(u, v).ok());
  g.Finalize();
  ASSERT_TRUE(lab.UpdateForEdgeInsert(g, u, v).ok());
  ExpectAgreesWithOracle(g, lab, 3000, 203);
}

TEST(TwoHopUpdateTest, SequenceOfInsertsStaysCorrect) {
  Graph g = gen::RandomDag(120, 1.2, 3, 211);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  Rng rng(212);
  int applied = 0;
  for (int i = 0; i < 25 && applied < 12; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (u == v) continue;
    if (lab.Reaches(v, u)) continue;  // would close a cycle
    ASSERT_TRUE(g.AddEdge(u, v).ok());
    g.Finalize();
    ASSERT_TRUE(lab.UpdateForEdgeInsert(g, u, v).ok());
    ++applied;
  }
  ASSERT_GT(applied, 0);
  ExpectAgreesWithOracle(g, lab, 4000, 213);
}

TEST(TwoHopUpdateTest, EdgeWithinCoveredPairIsNoop) {
  // a -> b -> c; adding a -> c changes nothing.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("A"), c = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  g.Finalize();
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  uint64_t before = lab.CoverSize();
  ASSERT_TRUE(g.AddEdge(a, c).ok());
  g.Finalize();
  ASSERT_TRUE(lab.UpdateForEdgeInsert(g, a, c).ok());
  EXPECT_EQ(lab.CoverSize(), before);
  EXPECT_TRUE(lab.Reaches(a, c));
}

TEST(TwoHopUpdateTest, CycleClosingEdgeRejected) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  g.Finalize();
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  g.Finalize();
  EXPECT_EQ(lab.UpdateForEdgeInsert(g, b, a).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TwoHopUpdateTest, UpdateTouchingSccsWorks) {
  // A graph with a 3-cycle; inserting an edge from/to the cycle must
  // label all members.
  Graph g;
  NodeId x = g.AddNode("A"), c1 = g.AddNode("A"), c2 = g.AddNode("A"),
         c3 = g.AddNode("A"), y = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(c1, c2).ok());
  ASSERT_TRUE(g.AddEdge(c2, c3).ok());
  ASSERT_TRUE(g.AddEdge(c3, c1).ok());
  g.Finalize();
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  // x -> c2 makes every cycle member reachable from x.
  ASSERT_TRUE(g.AddEdge(x, c2).ok());
  g.Finalize();
  ASSERT_TRUE(lab.UpdateForEdgeInsert(g, x, c2).ok());
  EXPECT_TRUE(lab.Reaches(x, c1));
  EXPECT_TRUE(lab.Reaches(x, c3));
  // c3 -> y: reachable from every member and from x.
  ASSERT_TRUE(g.AddEdge(c3, y).ok());
  g.Finalize();
  ASSERT_TRUE(lab.UpdateForEdgeInsert(g, c3, y).ok());
  EXPECT_TRUE(lab.Reaches(c1, y));
  EXPECT_TRUE(lab.Reaches(x, y));
  ExpectAgreesWithOracle(g, lab, 25, 214);
}

TEST(TwoHopUpdateTest, UnknownNodeRejected) {
  Graph g = gen::RandomDag(20, 1.0, 2, 221);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  EXPECT_EQ(lab.UpdateForEdgeInsert(g, 0, 999).code(),
            StatusCode::kInvalidArgument);
}


// --- GRAIL comparison index ----------------------------------------------

TEST(GrailTest, DiamondReachability) {
  Graph g = Diamond();
  GrailIndex idx(g, 2);
  ExpectAgreesWithOracle(g, idx, 16, 401);
}

TEST(GrailTest, RandomDagAgreesWithOracle) {
  for (uint64_t seed : {411ull, 412ull}) {
    Graph g = gen::RandomDag(300, 2.5, 4, seed);
    GrailIndex idx(g, 3, seed);
    ExpectAgreesWithOracle(g, idx, 2000, seed);
  }
}

TEST(GrailTest, CyclicGraphCondenses) {
  Graph g = gen::ErdosRenyi(200, 700, 3, 421);
  ASSERT_FALSE(IsDag(g));
  GrailIndex idx(g, 3, 422);
  ExpectAgreesWithOracle(g, idx, 2000, 423);
}

TEST(GrailTest, LabelsExcludeOnlyNonReachable) {
  Graph g = gen::RandomDag(200, 2.0, 3, 431);
  GrailIndex idx(g, 2, 432);
  ReachOracle oracle(&g);
  Rng rng(433);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (u == v) continue;
    if (idx.ExcludedByLabels(u, v)) {
      EXPECT_FALSE(oracle.Reaches(u, v)) << u << "->" << v;
    }
  }
}

TEST(GrailTest, MoreTraversalsFewerFallbacks) {
  Graph g = gen::RandomDag(400, 2.0, 3, 441);
  GrailIndex k1(g, 1, 442), k4(g, 4, 442);
  Rng rng(443);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (int i = 0; i < 3000; ++i) {
    queries.emplace_back(static_cast<NodeId>(rng.NextBounded(g.NumNodes())),
                         static_cast<NodeId>(rng.NextBounded(g.NumNodes())));
  }
  for (auto [u, v] : queries) {
    (void)k1.Reaches(u, v);
    (void)k4.Reaches(u, v);
  }
  // More traversals cut more false positives, so fewer DFS fallbacks.
  EXPECT_LE(k4.dfs_fallbacks(), k1.dfs_fallbacks());
}

}  // namespace
}  // namespace fgpm
