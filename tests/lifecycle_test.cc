// Whole-system lifecycle: build -> query -> persist -> reopen -> insert
// edges incrementally -> query -> persist again -> reopen. At every
// stage the DPS engine must agree with the naive matcher on the current
// graph.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "core/graph_matcher.h"
#include "exec/naive_matcher.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

namespace fgpm {
namespace {

void ExpectDpsMatchesNaive(GraphMatcher& matcher, const Graph& g,
                           const char* q) {
  auto got = matcher.Match(q);
  ASSERT_TRUE(got.ok()) << q << ": " << got.status();
  auto p = Pattern::Parse(q);
  ASSERT_TRUE(p.ok());
  auto want = NaiveMatch(g, *p);
  ASSERT_TRUE(want.ok());
  got->SortRows();
  want->SortRows();
  EXPECT_EQ(got->rows, want->rows) << q;
}

TEST(LifecycleTest, BuildPersistReopenInsertPersistReopen) {
  const char* kQuery = "L0->L1; L1->L2";
  std::string db_path = ::testing::TempDir() + "/lifecycle.fgpm";
  std::string db_path2 = ::testing::TempDir() + "/lifecycle2.fgpm";
  std::string graph_path = ::testing::TempDir() + "/lifecycle.graph";

  // Stage 1: build and query.
  Graph g = gen::RandomDag(200, 1.5, 4, 501);
  auto m1 = GraphMatcher::Create(&g);
  ASSERT_TRUE(m1.ok());
  ExpectDpsMatchesNaive(**m1, g, kQuery);

  // Stage 2: persist database and graph; reopen both.
  ASSERT_TRUE((*m1)->db().Save(db_path).ok());
  ASSERT_TRUE(WriteGraphToFile(g, graph_path).ok());
  m1->reset();

  auto g2 = ReadGraphFromFile(graph_path);
  ASSERT_TRUE(g2.ok());
  auto db2 = GraphDatabase::Open(db_path);
  ASSERT_TRUE(db2.ok());
  auto m2 = GraphMatcher::FromDatabase(*std::move(db2), &*g2);
  ASSERT_TRUE(m2.ok());
  ExpectDpsMatchesNaive(**m2, *g2, kQuery);

  // Stage 3: incremental edge inserts on the reopened database.
  Rng rng(502);
  int applied = 0;
  for (int attempts = 0; attempts < 200 && applied < 6; ++attempts) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g2->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g2->NumNodes()));
    if (u == v) continue;
    if ((*m2)->db().labeling().Reaches(v, u)) continue;
    ASSERT_TRUE(g2->AddEdge(u, v).ok());
    g2->Finalize();
    ASSERT_TRUE((*m2)->db().ApplyEdgeInsert(*g2, u, v).ok());
    (*m2)->ClearPlanCache();  // statistics shifted
    ++applied;
  }
  ASSERT_GT(applied, 0);
  ExpectDpsMatchesNaive(**m2, *g2, kQuery);
  ExpectDpsMatchesNaive(**m2, *g2, "L0->L1; L1->L2; L0->L2");

  // Stage 4: persist the updated database and reopen once more.
  ASSERT_TRUE((*m2)->db().Save(db_path2).ok());
  auto db3 = GraphDatabase::Open(db_path2);
  ASSERT_TRUE(db3.ok());
  auto m3 = GraphMatcher::FromDatabase(*std::move(db3), &*g2);
  ASSERT_TRUE(m3.ok());
  ExpectDpsMatchesNaive(**m3, *g2, kQuery);

  std::remove(db_path.c_str());
  std::remove(db_path2.c_str());
  std::remove(graph_path.c_str());
}

TEST(LifecycleTest, XmarkEndToEndWithAllDeliverables) {
  // Smaller end-to-end touching generator, matcher, explain-able plans,
  // projection and persistence in one flow on the paper's data model.
  gen::XMarkOptions opts;
  opts.factor = 0.002;
  Graph g = gen::XMarkLike(opts);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());

  MatchOptions proj;
  proj.projection = {"item"};
  auto items_with_category =
      (*matcher)->Match("region->item; item->incategory; "
                        "incategory->category", proj);
  ASSERT_TRUE(items_with_category.ok());
  EXPECT_EQ(items_with_category->column_labels.size(), 1u);
  EXPECT_GT(items_with_category->rows.size(), 0u);

  std::string path = ::testing::TempDir() + "/xmark_lifecycle.fgpm";
  ASSERT_TRUE((*matcher)->db().Save(path).ok());
  auto reopened = GraphDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto m2 = GraphMatcher::FromDatabase(*std::move(reopened));
  ASSERT_TRUE(m2.ok());
  auto again = (*m2)->Match("region->item; item->incategory; "
                            "incategory->category", proj);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows.size(), items_with_category->rows.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fgpm
