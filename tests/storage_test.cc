#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

namespace fgpm {
namespace {

TEST(PageTest, ScalarRoundTrip) {
  Page p;
  p.Write<uint64_t>(100, 0xdeadbeefcafef00dULL);
  p.Write<uint16_t>(0, 7);
  EXPECT_EQ(p.Read<uint64_t>(100), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(p.Read<uint16_t>(0), 7);
  p.Zero();
  EXPECT_EQ(p.Read<uint64_t>(100), 0u);
}

TEST(RidTest, PackUnpack) {
  Rid r{12345, 678};
  Rid s = Rid::Unpack(r.Pack());
  EXPECT_EQ(r, s);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(Rid{}.valid());
}

TEST(DiskManagerTest, ReadWriteAndStats) {
  DiskManager disk;
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  Page p;
  p.Write<uint32_t>(0, 99);
  ASSERT_TRUE(disk.WritePage(b, p).ok());
  Page q;
  ASSERT_TRUE(disk.ReadPage(b, &q).ok());
  EXPECT_EQ(q.Read<uint32_t>(0), 99u);
  EXPECT_EQ(disk.stats().page_reads, 1u);
  EXPECT_EQ(disk.stats().page_writes, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 2u);
  EXPECT_EQ(disk.ReadPage(42, &q).code(), StatusCode::kOutOfRange);
}

TEST(BufferPoolTest, HitAvoidsDiskRead) {
  DiskManager disk;
  BufferPool pool(&disk);
  auto g = pool.New();
  ASSERT_TRUE(g.ok());
  PageId id = g->id();
  g->MutablePage().Write<uint32_t>(0, 5);
  g->Release();
  uint64_t reads_before = disk.stats().page_reads;
  auto g2 = pool.Fetch(id);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->page().Read<uint32_t>(0), 5u);
  EXPECT_EQ(disk.stats().page_reads, reads_before);  // served from pool
  EXPECT_GE(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  BufferPool pool(&disk, 4 * kPageSize);  // 4 frames
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < 16; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    g->MutablePage().Write<uint32_t>(0, i);
    ids.push_back(g->id());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  // Every page must read back its own value even after eviction.
  for (uint32_t i = 0; i < 16; ++i) {
    auto g = pool.Fetch(ids[i]);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page().Read<uint32_t>(0), i);
  }
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  DiskManager disk;
  BufferPool pool(&disk, 4 * kPageSize);
  std::vector<PageGuard> pins;
  for (int i = 0; i < 4; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    pins.push_back(std::move(*g));
  }
  auto g = pool.New();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
  pins.clear();
  EXPECT_TRUE(pool.New().ok());
}

TEST(BufferPoolTest, LruEvictsOldestUnpinned) {
  DiskManager disk;
  BufferPool pool(&disk, 4 * kPageSize);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    ids.push_back(g->id());
  }
  // Touch page 0 so page 1 becomes LRU.
  { auto g = pool.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  { auto g = pool.New(); ASSERT_TRUE(g.ok()); }  // evicts ids[1]
  uint64_t misses_before = pool.stats().misses;
  { auto g = pool.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.stats().misses, misses_before);  // still resident
  { auto g = pool.Fetch(ids[1]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.stats().misses, misses_before + 1);  // was evicted
}

TEST(SlottedPageTest, InsertGetDelete) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::string a = "hello", b = "world!!";
  auto sa = sp.Insert({a.data(), a.size()});
  auto sb = sp.Insert({b.data(), b.size()});
  ASSERT_TRUE(sa && sb);
  EXPECT_EQ(sp.num_slots(), 2);
  auto ra = sp.Get(*sa);
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(std::string(ra->data(), ra->size()), a);
  auto rb = sp.Get(*sb);
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(std::string(rb->data(), rb->size()), b);
  EXPECT_TRUE(sp.Delete(*sa));
  EXPECT_FALSE(sp.Get(*sa).has_value());
  EXPECT_FALSE(sp.Delete(*sa));  // already deleted
  EXPECT_TRUE(sp.Get(*sb).has_value());
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::string rec(100, 'x');
  int count = 0;
  while (sp.Insert({rec.data(), rec.size()})) ++count;
  // 8192 / (100+4) ~ 78 records.
  EXPECT_GT(count, 70);
  EXPECT_LT(count, 82);
  EXPECT_LT(sp.FreeSpace(), rec.size());
}

TEST(SlottedPageTest, MaxRecordFitsExactly) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::string rec(SlottedPage::kMaxRecordSize, 'y');
  EXPECT_TRUE(sp.Insert({rec.data(), rec.size()}).has_value());
  std::string too_big(SlottedPage::kMaxRecordSize + 1, 'z');
  Page page2;
  SlottedPage sp2(&page2);
  sp2.Init();
  EXPECT_FALSE(sp2.Insert({too_big.data(), too_big.size()}).has_value());
}

TEST(HeapFileTest, AppendReadScan) {
  DiskManager disk;
  BufferPool pool(&disk);
  HeapFile hf(&pool);
  std::vector<Rid> rids;
  for (int i = 0; i < 1000; ++i) {
    std::string rec = "record-" + std::to_string(i);
    auto rid = hf.Append({rec.data(), rec.size()});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ(hf.NumRecords(), 1000u);
  std::string out;
  ASSERT_TRUE(hf.Read(rids[537], &out).ok());
  EXPECT_EQ(out, "record-537");
  int seen = 0;
  ASSERT_TRUE(hf.Scan([&](const Rid&, std::span<const char> rec) {
                 ++seen;
                 EXPECT_GT(rec.size(), 7u);
               }).ok());
  EXPECT_EQ(seen, 1000);
}

TEST(HeapFileTest, SpillsAcrossPages) {
  DiskManager disk;
  BufferPool pool(&disk);
  HeapFile hf(&pool);
  std::string big(3000, 'a');
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(hf.Append({big.data(), big.size()}).ok());
  }
  EXPECT_GE(hf.NumPages(), 5u);  // 2 per page max
}

TEST(HeapFileTest, RejectsOversizeRecord) {
  DiskManager disk;
  BufferPool pool(&disk);
  HeapFile hf(&pool);
  std::string big(kPageSize, 'a');
  EXPECT_EQ(hf.Append({big.data(), big.size()}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BPTreeTest, InsertLookupSmall) {
  DiskManager disk;
  BufferPool pool(&disk);
  BPTree tree(&pool);
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  ASSERT_TRUE(tree.Insert(3, 30).ok());
  ASSERT_TRUE(tree.Insert(9, 90).ok());
  auto v = tree.Lookup(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 30u);
  EXPECT_FALSE(tree.Lookup(4).ok());
  EXPECT_EQ(tree.NumEntries(), 3u);
  EXPECT_EQ(tree.Insert(5, 55).code(), StatusCode::kAlreadyExists);
}

TEST(BPTreeTest, UpsertOverwrites) {
  DiskManager disk;
  BufferPool pool(&disk);
  BPTree tree(&pool);
  ASSERT_TRUE(tree.Upsert(1, 10).ok());
  ASSERT_TRUE(tree.Upsert(1, 11).ok());
  EXPECT_EQ(*tree.Lookup(1), 11u);
  EXPECT_EQ(tree.NumEntries(), 1u);
}

TEST(BPTreeTest, ManyKeysWithSplits) {
  DiskManager disk;
  BufferPool pool(&disk, 64 * kPageSize);
  BPTree tree(&pool);
  const uint64_t kN = 20000;
  // Insert in shuffled order to exercise splits at every position.
  std::vector<uint64_t> keys(kN);
  for (uint64_t i = 0; i < kN; ++i) keys[i] = i * 7 + 1;
  Rng rng(77);
  rng.Shuffle(&keys);
  for (uint64_t k : keys) ASSERT_TRUE(tree.Insert(k, k * 2).ok());
  EXPECT_EQ(tree.NumEntries(), kN);
  EXPECT_GE(tree.Height(), 2u);
  for (uint64_t i = 0; i < kN; i += 97) {
    auto v = tree.Lookup(i * 7 + 1);
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, (i * 7 + 1) * 2);
  }
  EXPECT_FALSE(tree.Lookup(0).ok());
  EXPECT_FALSE(tree.Lookup(3).ok());
}

TEST(BPTreeTest, ScanRangeOrderedAndBounded) {
  DiskManager disk;
  BufferPool pool(&disk, 64 * kPageSize);
  BPTree tree(&pool);
  for (uint64_t k = 0; k < 5000; ++k) ASSERT_TRUE(tree.Insert(k * 3, k).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(tree.ScanRange(300, 600, [&](uint64_t k, uint64_t) {
                   got.push_back(k);
                   return true;
                 }).ok());
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.front(), 300u);
  EXPECT_EQ(got.back(), 600u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), 101u);
}

TEST(BPTreeTest, ScanEarlyStop) {
  DiskManager disk;
  BufferPool pool(&disk);
  BPTree tree(&pool);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  int count = 0;
  ASSERT_TRUE(tree.ScanRange(0, 99, [&](uint64_t, uint64_t) {
                   return ++count < 10;
                 }).ok());
  EXPECT_EQ(count, 10);
}

TEST(BPTreeTest, DeleteRemovesKey) {
  DiskManager disk;
  BufferPool pool(&disk);
  BPTree tree(&pool);
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  ASSERT_TRUE(tree.Delete(500).ok());
  EXPECT_FALSE(tree.Lookup(500).ok());
  EXPECT_TRUE(tree.Lookup(499).ok());
  EXPECT_TRUE(tree.Lookup(501).ok());
  EXPECT_EQ(tree.NumEntries(), 999u);
  EXPECT_EQ(tree.Delete(500).code(), StatusCode::kNotFound);
}

TEST(BPTreeTest, MatchesStdMapUnderRandomOps) {
  DiskManager disk;
  BufferPool pool(&disk, 32 * kPageSize);
  BPTree tree(&pool);
  std::map<uint64_t, uint64_t> ref;
  Rng rng(4242);
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.NextBounded(5000);
    switch (rng.NextBounded(3)) {
      case 0: {
        uint64_t v = rng.Next();
        ASSERT_TRUE(tree.Upsert(k, v).ok());
        ref[k] = v;
        break;
      }
      case 1: {
        bool in_ref = ref.erase(k) > 0;
        Status s = tree.Delete(k);
        EXPECT_EQ(s.ok(), in_ref);
        break;
      }
      default: {
        auto it = ref.find(k);
        auto v = tree.Lookup(k);
        if (it == ref.end()) {
          EXPECT_FALSE(v.ok());
        } else {
          ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, it->second);
        }
      }
    }
  }
  EXPECT_EQ(tree.NumEntries(), ref.size());
}

TEST(BPTreeTest, WorksWithTinyBufferPool) {
  // Tree much larger than the pool: every level traversal may hit disk.
  DiskManager disk;
  BufferPool pool(&disk, 8 * kPageSize);
  BPTree tree(&pool);
  for (uint64_t k = 0; k < 10000; ++k) ASSERT_TRUE(tree.Insert(k, ~k).ok());
  for (uint64_t k = 0; k < 10000; k += 503) {
    auto v = tree.Lookup(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ~k);
  }
  EXPECT_GT(disk.stats().page_reads, 0u);
}

}  // namespace
}  // namespace fgpm
