#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <set>

#include "core/graph_matcher.h"
#include "graph/generators.h"

namespace fgpm {
namespace {

TEST(GraphMatcherTest, CreateRejectsUnfinalizedGraph) {
  Graph g;
  g.AddNode("A");
  EXPECT_EQ(GraphMatcher::Create(&g).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GraphMatcher::Create(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphMatcherTest, QuickstartFlow) {
  Graph g = gen::SupplyChain(30, 1);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok()) << matcher.status();
  // The paper's motivating pattern.
  auto r = (*matcher)->Match(
      "Supplier->Retailer; Supplier->Wholeseller; Bank->Supplier; "
      "Bank->Retailer; Bank->Wholeseller");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->column_labels.size(), 4u);
  EXPECT_GT(r->stats.elapsed_ms, 0.0);
}

TEST(GraphMatcherTest, AllEnginesAgreeOnDagData) {
  Graph g = gen::RandomDag(200, 2.2, 4, 5);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  const char* q = "L0->L1; L1->L2; L1->L3";
  Result<MatchResult> expect = (*matcher)->Match(q, {.engine = Engine::kNaive});
  ASSERT_TRUE(expect.ok());
  expect->SortRows();
  for (Engine e : {Engine::kDps, Engine::kDp, Engine::kCanonical,
                   Engine::kIntDp, Engine::kTsd}) {
    auto r = (*matcher)->Match(q, {.engine = e});
    ASSERT_TRUE(r.ok()) << EngineName(e) << ": " << r.status();
    r->SortRows();
    EXPECT_EQ(r->rows, expect->rows) << EngineName(e);
  }
}

TEST(GraphMatcherTest, TsdRefusesCyclicData) {
  Graph g = gen::ErdosRenyi(100, 400, 3, 7);
  ASSERT_FALSE(IsDag(g));
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  auto r = (*matcher)->Match("L0->L1", {.engine = Engine::kTsd});
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // Other engines handle cycles fine.
  EXPECT_TRUE((*matcher)->Match("L0->L1", {.engine = Engine::kDps}).ok());
  EXPECT_TRUE((*matcher)->Match("L0->L1", {.engine = Engine::kIntDp}).ok());
}

TEST(GraphMatcherTest, TransitiveReductionPreservesResults) {
  Graph g = gen::RandomDag(150, 2.5, 3, 9);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  const char* q = "L0->L1; L1->L2; L0->L2";  // L0->L2 is NOT redundant
  const char* chain = "L0->L1; L1->L2";
  auto plain = (*matcher)->Match(q);
  auto reduced = (*matcher)->Match(q, {.transitive_reduction = true});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reduced.ok());
  plain->SortRows();
  reduced->SortRows();
  // Reachability is transitive, so the chord is implied by the chain and
  // reduction must not change the result set.
  EXPECT_EQ(plain->rows, reduced->rows);
  auto chain_r = (*matcher)->Match(chain);
  ASSERT_TRUE(chain_r.ok());
  EXPECT_EQ(plain->rows.size(), chain_r->rows.size());
}

TEST(GraphMatcherTest, PlanExposesOptimizedPlans) {
  Graph g = gen::ErdosRenyi(100, 300, 4, 11);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  auto p = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(p.ok());
  for (Engine e : {Engine::kDps, Engine::kDp, Engine::kCanonical}) {
    auto plan = (*matcher)->MakePlan(*p, e);
    ASSERT_TRUE(plan.ok()) << EngineName(e);
    EXPECT_TRUE(plan->Validate(*p).ok());
    EXPECT_FALSE(plan->ToString(*p).empty());
  }
  EXPECT_FALSE((*matcher)->MakePlan(*p, Engine::kTsd).ok());
}

TEST(GraphMatcherTest, ParseErrorsPropagate) {
  Graph g = gen::ErdosRenyi(50, 100, 2, 13);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ((*matcher)->Match("L0->").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphMatcherTest, EngineNamesStable) {
  EXPECT_STREQ(EngineName(Engine::kDps), "DPS");
  EXPECT_STREQ(EngineName(Engine::kDp), "DP");
  EXPECT_STREQ(EngineName(Engine::kIntDp), "INT-DP");
  EXPECT_STREQ(EngineName(Engine::kTsd), "TSD");
  EXPECT_STREQ(EngineName(Engine::kNaive), "NAIVE");
  EXPECT_STREQ(EngineName(Engine::kCanonical), "CANONICAL");
}

TEST(GraphMatcherTest, IoStatsTrackExecution) {
  Graph g = gen::ErdosRenyi(300, 900, 4, 17);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  auto r = (*matcher)->Match("L0->L1; L1->L2");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.io.pool_hits + r->stats.io.pool_misses, 0u);
}


TEST(GraphMatcherTest, FromSavedDatabase) {
  Graph g = gen::ErdosRenyi(150, 450, 3, 19);
  std::string path = ::testing::TempDir() + "/matcher_db.fgpm";
  std::vector<std::vector<NodeId>> want;
  {
    auto matcher = GraphMatcher::Create(&g);
    ASSERT_TRUE(matcher.ok());
    auto r = (*matcher)->Match("L0->L1; L1->L2");
    ASSERT_TRUE(r.ok());
    r->SortRows();
    want = r->rows;
    ASSERT_TRUE((*matcher)->db().Save(path).ok());
  }
  auto db = GraphDatabase::Open(path);
  ASSERT_TRUE(db.ok());
  auto matcher = GraphMatcher::FromDatabase(*std::move(db));
  ASSERT_TRUE(matcher.ok());
  auto r = (*matcher)->Match("L0->L1; L1->L2");
  ASSERT_TRUE(r.ok());
  r->SortRows();
  EXPECT_EQ(r->rows, want);
  // Graph-dependent engines refuse gracefully without the graph.
  EXPECT_EQ((*matcher)->Match("L0->L1", {.engine = Engine::kNaive})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*matcher)->Match("L0->L1", {.engine = Engine::kIntDp})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(GraphMatcherTest, FromDatabaseWithGraphEnablesBaselines) {
  Graph g = gen::RandomDag(100, 2.0, 3, 21);
  std::string path = ::testing::TempDir() + "/matcher_db2.fgpm";
  {
    auto matcher = GraphMatcher::Create(&g);
    ASSERT_TRUE(matcher.ok());
    ASSERT_TRUE((*matcher)->db().Save(path).ok());
  }
  auto db = GraphDatabase::Open(path);
  ASSERT_TRUE(db.ok());
  auto matcher = GraphMatcher::FromDatabase(*std::move(db), &g);
  ASSERT_TRUE(matcher.ok());
  auto dps = (*matcher)->Match("L0->L1");
  auto tsd = (*matcher)->Match("L0->L1", {.engine = Engine::kTsd});
  ASSERT_TRUE(dps.ok());
  ASSERT_TRUE(tsd.ok());
  EXPECT_EQ(dps->rows.size(), tsd->rows.size());
  std::remove(path.c_str());
}

TEST(GraphMatcherTest, FromDatabaseRejectsNull) {
  EXPECT_EQ(GraphMatcher::FromDatabase(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}


TEST(GraphMatcherTest, ProjectionDeduplicates) {
  Graph g = gen::ErdosRenyi(120, 360, 3, 23);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  auto full = (*matcher)->Match("L0->L1; L1->L2");
  ASSERT_TRUE(full.ok());
  MatchOptions opts;
  opts.projection = {"L0", "L2"};
  auto proj = (*matcher)->Match("L0->L1; L1->L2", opts);
  ASSERT_TRUE(proj.ok());
  ASSERT_EQ(proj->column_labels,
            (std::vector<std::string>{"L0", "L2"}));
  // Projection can only shrink (distinct pairs <= distinct triples).
  EXPECT_LE(proj->rows.size(), full->rows.size());
  // Every projected row comes from some full row.
  std::set<std::pair<NodeId, NodeId>> expect;
  for (const auto& row : full->rows) expect.insert({row[0], row[2]});
  EXPECT_EQ(proj->rows.size(), expect.size());
  for (const auto& row : proj->rows) {
    EXPECT_TRUE(expect.count({row[0], row[1]}));
  }
}

TEST(GraphMatcherTest, ProjectionUnknownLabelRejected) {
  Graph g = gen::ErdosRenyi(50, 100, 2, 29);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  MatchOptions opts;
  opts.projection = {"Nope"};
  EXPECT_EQ((*matcher)->Match("L0->L1", opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphMatcherTest, ProjectionAppliesToAllEngines) {
  Graph g = gen::RandomDag(100, 2.0, 3, 31);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  MatchOptions base;
  base.projection = {"L1"};
  std::optional<size_t> expect;
  for (Engine e : {Engine::kDps, Engine::kDp, Engine::kIntDp, Engine::kTsd,
                   Engine::kNaive}) {
    MatchOptions opts = base;
    opts.engine = e;
    auto r = (*matcher)->Match("L0->L1; L1->L2", opts);
    ASSERT_TRUE(r.ok()) << EngineName(e);
    EXPECT_EQ(r->column_labels.size(), 1u);
    if (!expect) {
      expect = r->rows.size();
    } else {
      EXPECT_EQ(r->rows.size(), *expect) << EngineName(e);
    }
  }
}

TEST(GraphMatcherTest, PlanCacheReuseAndBypass) {
  Graph g = gen::ErdosRenyi(150, 450, 3, 37);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ((*matcher)->plan_cache_size(), 0u);
  auto r1 = (*matcher)->Match("L0->L1; L1->L2");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*matcher)->plan_cache_size(), 1u);
  auto r2 = (*matcher)->Match("L0->L1; L1->L2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*matcher)->plan_cache_size(), 1u);
  r1->SortRows();
  r2->SortRows();
  EXPECT_EQ(r1->rows, r2->rows);
  // Different engine -> separate cache entry.
  auto r3 = (*matcher)->Match("L0->L1; L1->L2", {.engine = Engine::kDp});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ((*matcher)->plan_cache_size(), 2u);
  // Bypass leaves the cache untouched.
  MatchOptions nocache;
  nocache.use_plan_cache = false;
  auto r4 = (*matcher)->Match("L1->L2", nocache);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ((*matcher)->plan_cache_size(), 2u);
  (*matcher)->ClearPlanCache();
  EXPECT_EQ((*matcher)->plan_cache_size(), 0u);
}

}  // namespace
}  // namespace fgpm
