// Sharded execution (ctest label `net`): label partitioning, the
// owned-labels database filter, single-shard routing, and the
// scatter-gather cross-shard join — every path checked row-identical
// against a direct (unsharded) GraphMatcher::Match across shard counts,
// engines and join strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "shard/partition.h"
#include "shard/sharded_matcher.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

Pattern P(std::string_view text) {
  auto p = Pattern::Parse(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return *p;
}

std::vector<std::vector<NodeId>> SortedRows(Result<MatchResult> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok()) return {};
  r->SortRows();
  return std::move(r->rows);
}

TEST(PartitionTest, BalancedDeterministicCoversAllShards) {
  Graph g = gen::ScaleFree(500, 3, 8, 17);
  auto a = PartitionLabelsByExtent(g, 4);
  auto b = PartitionLabelsByExtent(g, 4);
  EXPECT_EQ(a, b);  // deterministic
  ASSERT_EQ(a.size(), g.NumLabels());
  std::vector<uint64_t> load(4, 0);
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    ASSERT_LT(a[l], 4u);
    load[a[l]] += g.Extent(l).size();
  }
  for (uint64_t ld : load) EXPECT_GT(ld, 0u);  // every shard owns work
  // Greedy bound: max load <= min load + largest extent.
  size_t largest = 0;
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    largest = std::max(largest, g.Extent(l).size());
  }
  auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*mx, *mn + largest);
}

TEST(PartitionTest, OwnedLabelFilterMatchesPlacement) {
  std::vector<uint32_t> placement = {0, 1, 2, 1, 0};
  auto f1 = OwnedLabelFilter(placement, 1);
  EXPECT_EQ(f1, (std::vector<uint8_t>{0, 1, 0, 1, 0}));
  auto f2 = OwnedLabelFilter(placement, 2);
  EXPECT_EQ(f2, (std::vector<uint8_t>{0, 0, 1, 0, 0}));
}

TEST(OwnedLabelsTest, FilteredBuildServesOwnedAndRejectsForeignCodes) {
  Graph g = gen::ScaleFree(300, 3, 6, 5);
  auto placement = PartitionLabelsByExtent(g, 2);
  GraphDatabaseOptions dbo;
  dbo.owned_labels = OwnedLabelFilter(placement, 0);
  auto filtered = GraphMatcher::Create(&g, dbo, {});
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  auto full = GraphMatcher::Create(&g, {}, {});
  ASSERT_TRUE(full.ok());

  // Find one owned and one foreign label with nodes.
  LabelId owned = kInvalidLabel, foreign = kInvalidLabel;
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    if (g.Extent(l).empty()) continue;
    (placement[l] == 0 ? owned : foreign) = l;
  }
  ASSERT_NE(owned, kInvalidLabel);
  ASSERT_NE(foreign, kInvalidLabel);

  GraphCodeRecord rec;
  NodeId own_node = g.Extent(owned).front();
  ASSERT_TRUE((*filtered)->db().GetCodes(own_node, owned, &rec).ok());
  NodeId foreign_node = g.Extent(foreign).front();
  Status st = (*filtered)->db().GetCodes(foreign_node, foreign, &rec);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);

  // A query over owned labels only is row-identical to the full build.
  std::string owned_name = g.LabelName(owned);
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    if (l == owned || placement[l] != 0 || g.Extent(l).empty()) continue;
    Pattern p = P(g.LabelName(l) + "->" + owned_name);
    EXPECT_EQ(SortedRows((*filtered)->Match(p)),
              SortedRows((*full)->Match(p)));
    break;
  }
}

TEST(RouteTest, SingleShardCrossShardAndUnknownLabels) {
  Graph g = gen::ScaleFree(200, 3, 4, 9);
  ShardedMatcherOptions opts;
  opts.num_shards = 2;
  opts.label_to_shard = {0, 0, 1, 1};
  auto sm = ShardedMatcher::Create(&g, opts);
  ASSERT_TRUE(sm.ok()) << sm.status();
  EXPECT_EQ((*sm)->Route(P("L0->L1")), std::optional<uint32_t>(0));
  EXPECT_EQ((*sm)->Route(P("L2->L3")), std::optional<uint32_t>(1));
  EXPECT_EQ((*sm)->Route(P("L0->L2")), std::nullopt);
  // Unknown labels never pin a query to a shard.
  EXPECT_EQ((*sm)->Route(P("L0->Nope")), std::optional<uint32_t>(0));
  EXPECT_EQ((*sm)->Route(P("Nope->Huh")), std::optional<uint32_t>(0));
}

TEST(ShardedMatcherTest, UnknownLabelGivesEmptyResult) {
  Graph g = gen::ScaleFree(100, 3, 4, 3);
  ShardedMatcherOptions opts;
  opts.num_shards = 2;
  auto sm = ShardedMatcher::Create(&g, opts);
  ASSERT_TRUE(sm.ok());
  auto r = (*sm)->Match(P("L0->Nope"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rows.empty());
}

// The core differential: ShardedMatcher::Match (routing + cross-shard
// scatter-gather) is row-identical to an unsharded GraphMatcher across
// shard counts, engines and join strategies. With 8 shards over 8
// labels every label lives alone, so almost every multi-label pattern
// exercises the cross-shard join.
TEST(ShardedMatcherTest, DifferentialAcrossShardsEnginesStrategies) {
  Graph g = gen::ScaleFree(400, 3, 8, 23);
  auto direct = GraphMatcher::Create(&g, {}, {});
  ASSERT_TRUE(direct.ok());
  auto patterns = workload::RandomPatterns(g, 12, 3, 1, 77);
  auto more = workload::RandomPatterns(g, 6, 4, 1, 78);
  patterns.insert(patterns.end(), more.begin(), more.end());
  ASSERT_FALSE(patterns.empty());

  for (uint32_t shards : {1u, 4u, 8u}) {
    for (Engine engine : {Engine::kDps, Engine::kDp, Engine::kCanonical}) {
      for (JoinStrategy js : {JoinStrategy::kBinary, JoinStrategy::kHybrid}) {
        ShardedMatcherOptions opts;
        opts.num_shards = shards;
        opts.exec.join_strategy = js;
        auto sm = ShardedMatcher::Create(&g, opts);
        ASSERT_TRUE(sm.ok()) << sm.status();
        for (const Pattern& p : patterns) {
          MatchOptions mo;
          mo.engine = engine;
          CrossShardStats stats;
          auto got = SortedRows((*sm)->Match(p, mo, &stats));
          auto want = SortedRows((*direct)->Match(p, mo));
          EXPECT_EQ(got, want)
              << "shards=" << shards << " engine=" << EngineName(engine)
              << " pattern=" << p.ToString();
        }
      }
    }
  }
}

// Force specific cross-shard shapes with an adversarial placement:
// every edge of a chain crosses shards (all-cross seed + expansion) and
// a diamond splits into two shard-local components joined by two cross
// edges (merge + both-bound filter).
TEST(ShardedMatcherTest, CrossShardShapesMatchDirect) {
  Graph g = gen::ScaleFree(350, 3, 6, 31);
  auto direct = GraphMatcher::Create(&g, {}, {});
  ASSERT_TRUE(direct.ok());
  ShardedMatcherOptions opts;
  opts.num_shards = 2;
  opts.label_to_shard = {0, 1, 0, 1, 0, 1};  // alternating: chains all-cross
  auto sm = ShardedMatcher::Create(&g, opts);
  ASSERT_TRUE(sm.ok()) << sm.status();

  for (const char* text : {
           "L0->L1",                               // all-cross single edge
           "L0->L1; L1->L2",                       // expand through isolated
           "L0->L1; L1->L2; L2->L3",               // longer all-cross chain
           "L0->L2; L1->L3; L2->L3",               // two local comps, one link
           "L0->L2; L1->L3; L0->L1; L2->L3",       // merge + filter edge
           "L0->L2; L2->L4; L4->L5; L1->L5",       // mixed local + cross
       }) {
    Pattern p = P(text);
    CrossShardStats stats;
    auto got = SortedRows((*sm)->Match(p, {}, &stats));
    auto want = SortedRows((*direct)->Match(p));
    EXPECT_EQ(got, want) << text;
  }
}

TEST(ShardedMatcherTest, CrossShardStatsAccountShipping) {
  Graph g = gen::ScaleFree(300, 3, 4, 41);
  ShardedMatcherOptions opts;
  opts.num_shards = 2;
  opts.label_to_shard = {0, 1, 0, 1};
  auto sm = ShardedMatcher::Create(&g, opts);
  ASSERT_TRUE(sm.ok());
  CrossShardStats stats;
  auto r = (*sm)->Match(P("L0->L1; L1->L2"), {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(stats.cross_edges, 0u);
  EXPECT_GT(stats.filters_shipped + stats.probe_pairs, 0u);
}

TEST(ShardedMatcherTest, SingleShardPathSupportsBatchAndCaches) {
  Graph g = gen::ScaleFree(250, 3, 4, 51);
  ShardedMatcherOptions opts;
  opts.num_shards = 2;
  opts.label_to_shard = {0, 0, 1, 1};
  opts.exec.use_result_cache = true;
  auto sm = ShardedMatcher::Create(&g, opts);
  ASSERT_TRUE(sm.ok());
  // Routed queries land on the shard matcher, composing with its result
  // cache: the repeat is an exact hit.
  auto r1 = (*sm)->Match(P("L0->L1"));
  ASSERT_TRUE(r1.ok());
  auto r2 = (*sm)->Match(P("L0->L1"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.cache_hit, 1);
  ASSERT_EQ((*sm)->Route(P("L0->L1")), std::optional<uint32_t>(0));

  // MatchBatch against the routed shard is row-identical to Match.
  GraphMatcher* shard0 = (*sm)->shard(0);
  auto batch = shard0->MatchBatch(std::vector<std::string>{"L0->L1", "L1->L0"});
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(SortedRows(std::move((*batch)[0])), SortedRows(shard0->Match("L0->L1")));
}

TEST(ShardedMatcherTest, InvalidOptionsRejected) {
  Graph g = gen::ScaleFree(50, 2, 4, 3);
  ShardedMatcherOptions opts;
  opts.num_shards = 2;
  opts.label_to_shard = {0, 1, 2, 0};  // 2 out of range
  EXPECT_FALSE(ShardedMatcher::Create(&g, opts).ok());
  opts.label_to_shard = {0, 1};  // wrong size
  EXPECT_FALSE(ShardedMatcher::Create(&g, opts).ok());
  opts.label_to_shard.clear();
  opts.num_shards = 0;
  EXPECT_FALSE(ShardedMatcher::Create(&g, opts).ok());
}

}  // namespace
}  // namespace fgpm
