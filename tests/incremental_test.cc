// Incremental maintenance: after ApplyEdgeInsert the whole database —
// base tables, cluster index, W-table, statistics — must answer exactly
// like a database rebuilt from scratch on the updated graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "exec/engine.h"
#include "exec/naive_matcher.h"
#include "gdb/database.h"
#include "graph/generators.h"
#include "graph/reach_oracle.h"
#include "opt/dps_optimizer.h"

namespace fgpm {
namespace {

// Inserts `count` random non-cycle-creating edges into g and db.
void InsertRandomEdges(Graph* g, GraphDatabase* db, int count,
                       uint64_t seed) {
  Rng rng(seed);
  int applied = 0;
  for (int attempts = 0; attempts < count * 30 && applied < count;
       ++attempts) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g->NumNodes()));
    if (u == v) continue;
    if (db->labeling().Reaches(v, u)) continue;  // would merge SCCs
    ASSERT_TRUE(g->AddEdge(u, v).ok());
    g->Finalize();
    ASSERT_TRUE(db->ApplyEdgeInsert(*g, u, v).ok());
    ++applied;
  }
  ASSERT_GT(applied, 0);
}

TEST(IncrementalDbTest, SingleInsertReflectedEverywhere) {
  // a -> b, c isolated; insert b -> c.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  g.Finalize();
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());

  // Before: no A ~> C, W(A, C) empty.
  std::vector<CenterId> centers;
  ASSERT_TRUE(db.wtable().Lookup(0, 2, &centers).ok());
  EXPECT_TRUE(centers.empty());
  EXPECT_EQ(db.catalog().Stats(0, 2).est_pairs, 0u);

  ASSERT_TRUE(g.AddEdge(b, c).ok());
  g.Finalize();
  ASSERT_TRUE(db.ApplyEdgeInsert(g, b, c).ok());

  // Labeling, tables, W-table and stats all reflect a ~> c now.
  EXPECT_TRUE(db.labeling().Reaches(a, c));
  GraphCodeRecord rec;
  ASSERT_TRUE(db.table(0).Get(a, &rec).ok());
  EXPECT_TRUE(std::ranges::equal(rec.out, db.labeling().OutCode(a)));
  ASSERT_TRUE(db.wtable().Lookup(0, 2, &centers).ok());
  EXPECT_FALSE(centers.empty());
  EXPECT_GE(db.catalog().Stats(0, 2).est_pairs, 1u);
}

TEST(IncrementalDbTest, QueriesMatchNaiveAfterInserts) {
  Graph g = gen::RandomDag(150, 1.5, 4, 301);
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());
  InsertRandomEdges(&g, &db, 10, 302);

  Executor exec(&db);
  for (const char* q :
       {"L0->L1", "L0->L1; L1->L2", "L0->L1; L1->L2; L0->L2",
        "L2->L1; L1->L0; L2->L3"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    auto plan = OptimizeDps(*p, db.catalog());
    ASSERT_TRUE(plan.ok());
    auto got = exec.Execute(*p, *plan);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status();
    auto want = NaiveMatch(g, *p);
    ASSERT_TRUE(want.ok());
    got->SortRows();
    want->SortRows();
    EXPECT_EQ(got->rows, want->rows) << q;
  }
}

TEST(IncrementalDbTest, MatchesRebuiltDatabase) {
  Graph g = gen::RandomDag(120, 1.2, 3, 311);
  GraphDatabase incremental;
  ASSERT_TRUE(incremental.Build(g).ok());
  InsertRandomEdges(&g, &incremental, 8, 312);

  GraphDatabase rebuilt;
  ASSERT_TRUE(rebuilt.Build(g).ok());

  // Same reachability answers everywhere.
  ReachOracle oracle(&g);
  Rng rng(313);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    bool expect = oracle.Reaches(u, v);
    EXPECT_EQ(incremental.labeling().Reaches(u, v), expect);
    EXPECT_EQ(rebuilt.labeling().Reaches(u, v), expect);
  }

  // Identical query results through the executor.
  Executor exec_a(&incremental), exec_b(&rebuilt);
  auto p = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(p.ok());
  auto plan_a = OptimizeDps(*p, incremental.catalog());
  auto plan_b = OptimizeDps(*p, rebuilt.catalog());
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  auto ra = exec_a.Execute(*p, *plan_a);
  auto rb = exec_b.Execute(*p, *plan_b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ra->SortRows();
  rb->SortRows();
  EXPECT_EQ(ra->rows, rb->rows);
}

TEST(IncrementalDbTest, CoveredEdgeIsNoop) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  g.Finalize();
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());
  uint64_t entries_before = db.rjoin_index().TotalEntries();
  ASSERT_TRUE(g.AddEdge(a, c).ok());
  g.Finalize();
  ASSERT_TRUE(db.ApplyEdgeInsert(g, a, c).ok());
  EXPECT_EQ(db.rjoin_index().TotalEntries(), entries_before);
}

TEST(IncrementalDbTest, CycleMergingEdgeRejected) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  g.Finalize();
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  g.Finalize();
  EXPECT_EQ(db.ApplyEdgeInsert(g, b, a).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IncrementalDbTest, UnbuiltDatabaseRejected) {
  Graph g = gen::RandomDag(10, 1.0, 2, 321);
  GraphDatabase db;
  EXPECT_EQ(db.ApplyEdgeInsert(g, 0, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IncrementalDbTest, ScanSkipsSupersededVersions) {
  Graph g = gen::RandomDag(60, 1.0, 2, 331);
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());
  InsertRandomEdges(&g, &db, 5, 332);
  // Scan must return exactly one (current) record per node.
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    size_t count = 0;
    ASSERT_TRUE(db.table(l)
                    .Scan([&](const GraphCodeRecord& rec) {
                      ++count;
                      EXPECT_TRUE(std::ranges::equal(
                          rec.in, db.labeling().InCode(rec.node)));
                      EXPECT_TRUE(std::ranges::equal(
                          rec.out, db.labeling().OutCode(rec.node)));
                    })
                    .ok());
    EXPECT_EQ(count, g.Extent(l).size());
  }
}

}  // namespace
}  // namespace fgpm
