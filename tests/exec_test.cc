#include <gtest/gtest.h>

#include <memory>

#include "exec/engine.h"
#include "exec/naive_matcher.h"
#include "exec/plan.h"
#include "graph/generators.h"
#include "query/pattern.h"

namespace fgpm {
namespace {

// Paper Figure 1(a) embedding (same as graph_test).
Graph PaperFigure1() {
  Graph g;
  NodeId a0 = g.AddNode("A");
  NodeId b[7], c[4], d[6], e[8];
  for (auto& x : b) x = g.AddNode("B");
  for (auto& x : c) x = g.AddNode("C");
  for (auto& x : d) x = g.AddNode("D");
  for (auto& x : e) x = g.AddNode("E");
  auto E = [&](NodeId u, NodeId v) { EXPECT_TRUE(g.AddEdge(u, v).ok()); };
  E(a0, c[0]);
  E(a0, b[2]);
  E(a0, b[3]);
  E(a0, b[4]);
  E(a0, b[5]);
  E(a0, b[6]);
  E(b[0], c[1]);
  E(b[2], c[1]);
  E(b[3], c[2]);
  E(b[4], c[2]);
  E(b[5], c[3]);
  E(b[6], c[3]);
  E(c[0], d[0]);
  E(c[0], d[1]);
  E(c[1], d[2]);
  E(c[1], d[3]);
  E(c[3], d[4]);
  E(c[3], d[5]);
  E(c[2], e[2]);
  E(d[2], e[1]);
  E(c[0], e[0]);
  E(c[1], e[7]);
  g.Finalize();
  return g;
}

class ExecFixture : public ::testing::Test {
 protected:
  void BuildDb(Graph g) {
    graph_ = std::make_unique<Graph>(std::move(g));
    db_ = std::make_unique<GraphDatabase>();
    ASSERT_TRUE(db_->Build(*graph_).ok());
    exec_ = std::make_unique<Executor>(db_.get());
  }

  void ExpectMatchesNaive(const Pattern& p, const Plan& plan) {
    auto got = exec_->Execute(p, plan);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = NaiveMatch(*graph_, p);
    ASSERT_TRUE(want.ok()) << want.status();
    got->SortRows();
    want->SortRows();
    EXPECT_EQ(got->rows, want->rows) << plan.ToString(p);
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphDatabase> db_;
  std::unique_ptr<Executor> exec_;
};

// ---- plan structure validation -----------------------------------------

// Page charge is ceil(bytes / 8192): exact multiples of the page size
// must not be charged an extra page, and an empty table occupies none.
TEST(TemporalTablePagesTest, CeilDivisionBoundaries) {
  TemporalTable t;
  t.AddColumn(0);
  EXPECT_EQ(TemporalTablePages(t), 0u);  // no rows, no pages
  // 2047 ids = 8188 bytes -> 1 page; 2048 ids = exactly one page;
  // 2049 ids = 8196 bytes -> 2 pages.
  for (NodeId v = 0; v < 2047; ++v) t.AppendRow({v});
  EXPECT_EQ(TemporalTablePages(t), 1u);
  t.AppendRow({2047});
  EXPECT_EQ(TemporalTablePages(t), 1u);
  t.AppendRow({2048});
  EXPECT_EQ(TemporalTablePages(t), 2u);
}

TEST(PlanValidateTest, AcceptsCanonicalFilterFetch) {
  auto p = Pattern::Parse("A->B; B->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  EXPECT_TRUE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, RejectsFetchWithoutFilter) {
  auto p = Pattern::Parse("A->B; B->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Fetch(1, true)};
  EXPECT_FALSE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, RejectsUnfetchedFilter) {
  auto p = Pattern::Parse("A->B; B->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}})};
  EXPECT_FALSE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, RejectsMissingEdge) {
  auto p = Pattern::Parse("A->B; B->C; C->D");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  EXPECT_FALSE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, RejectsFilterOnUnboundColumn) {
  auto p = Pattern::Parse("A->B; B->C; C->D");
  ASSERT_TRUE(p.ok());
  Plan plan;
  // Edge 2 = C->D, but C is unbound after HPSJ(A->B).
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{2, true}}),
                PlanStep::Fetch(2, true), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  EXPECT_FALSE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, RejectsSelectOnUnboundColumns) {
  auto p = Pattern::Parse("A->B; B->C; A->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Select(2),
                PlanStep::Filter({{1, true}}), PlanStep::Fetch(1, true)};
  EXPECT_FALSE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, AcceptsTriangleWithSelect) {
  auto p = Pattern::Parse("A->B; B->C; A->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true), PlanStep::Select(2)};
  EXPECT_TRUE(plan.Validate(*p).ok());
}

// ---- execution ----------------------------------------------------------

TEST_F(ExecFixture, SingleLabelScan) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B");
  ASSERT_TRUE(p.ok());
  Plan empty;
  auto r = exec_->Execute(*p, empty);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 7u);
}

TEST_F(ExecFixture, MissingLabelYieldsEmpty) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("A->Zebra");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0)};
  auto r = exec_->Execute(*p, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ExecFixture, HpsjBaseAloneMatchesNaive) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B->E");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0)};
  ExpectMatchesNaive(*p, plan);
}

TEST_F(ExecFixture, PaperExampleBCD) {
  // The worked example in Section 3.3: (T_B join T_C) join T_D with the
  // 8 result tuples the paper enumerates.
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B->C; C->D");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  auto r = exec_->Execute(*p, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 8u);
  ExpectMatchesNaive(*p, plan);
}

TEST_F(ExecFixture, PaperFigure1PatternHasStatedMatch) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("A->C; B->C; C->D; D->E");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {
      PlanStep::HpsjBase(0),            // binds A, C
      PlanStep::Filter({{1, false}}),   // B->C probing in(C)
      PlanStep::Fetch(1, false),        // binds B
      PlanStep::Filter({{2, true}}),    // C->D probing out(C)
      PlanStep::Fetch(2, true),         // binds D
      PlanStep::Filter({{3, true}}),    // D->E probing out(D)
      PlanStep::Fetch(3, true),         // binds E
  };
  auto r = exec_->Execute(*p, plan);
  ASSERT_TRUE(r.ok()) << r.status();
  // Section 2 names (a0, b0, c1, d2, e1) as a match; columns follow the
  // pattern's parse order A, C, B, D, E.
  std::vector<NodeId> stated{0, 9, 1, 14, 19};
  bool found = false;
  for (const auto& row : r->rows) {
    if (row == stated) found = true;
  }
  EXPECT_TRUE(found);
  ExpectMatchesNaive(*p, plan);
}

TEST_F(ExecFixture, SharedFilterEquivalentToSequential) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B->C; C->D; C->E");
  ASSERT_TRUE(p.ok());
  // Shared: both C-probing semijoins in one scan (Remark 3.1).
  Plan shared;
  shared.steps = {PlanStep::HpsjBase(0),
                  PlanStep::Filter({{1, true}, {2, true}}),
                  PlanStep::Fetch(1, true), PlanStep::Fetch(2, true)};
  // Sequential: one semijoin per scan.
  Plan sequential;
  sequential.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                      PlanStep::Filter({{2, true}}), PlanStep::Fetch(1, true),
                      PlanStep::Fetch(2, true)};
  auto a = exec_->Execute(*p, shared);
  auto b = exec_->Execute(*p, sequential);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->SortRows();
  b->SortRows();
  EXPECT_EQ(a->rows, b->rows);
  ExpectMatchesNaive(*p, shared);
}

TEST_F(ExecFixture, ReverseFetchDirection) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B->C; A->C");
  ASSERT_TRUE(p.ok());
  // After HPSJ(B->C), edge A->C binds A by fetching F-subclusters.
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, false}}),
                PlanStep::Fetch(1, false)};
  ExpectMatchesNaive(*p, plan);
}

TEST_F(ExecFixture, TriangleWithSelect) {
  BuildDb(gen::ErdosRenyi(120, 400, 3, 5));
  Pattern p;
  PatternNodeId a = p.AddNode("L0"), b = p.AddNode("L1"), c = p.AddNode("L2");
  ASSERT_TRUE(p.AddEdge(a, b).ok());
  ASSERT_TRUE(p.AddEdge(b, c).ok());
  ASSERT_TRUE(p.AddEdge(a, c).ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true), PlanStep::Select(2)};
  ExpectMatchesNaive(p, plan);
}

TEST_F(ExecFixture, CyclicPatternOnCyclicGraph) {
  BuildDb(gen::ErdosRenyi(100, 500, 2, 7));
  Pattern p;
  PatternNodeId a = p.AddNode("L0"), b = p.AddNode("L1");
  ASSERT_TRUE(p.AddEdge(a, b).ok());
  ASSERT_TRUE(p.AddEdge(b, a).ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Select(1)};
  ExpectMatchesNaive(p, plan);
}

TEST_F(ExecFixture, EmptyIntermediateShortCircuits) {
  // A graph where A reaches B but B never reaches C.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  g.AddNode("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  g.Finalize();
  BuildDb(std::move(g));
  auto p = Pattern::Parse("A->B; B->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  auto r = exec_->Execute(*p, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ExecFixture, StatsArePopulated) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B->C; C->D");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  auto r = exec_->Execute(*p, plan);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.operators.wtable_lookups, 0u);
  EXPECT_GT(r->stats.operators.cluster_fetches, 0u);
  EXPECT_GT(r->stats.operators.code_fetches, 0u);
  EXPECT_GT(r->stats.io.page_reads + r->stats.io.pool_hits, 0u);
  EXPECT_EQ(r->stats.result_rows, r->rows.size());
  EXPECT_EQ(r->stats.steps, 3u);
}

// Property test: filter/fetch plans agree with the naive matcher on
// randomized graphs and path/star patterns in both directions.
TEST_F(ExecFixture, RandomizedAgreementPaths) {
  for (uint64_t seed : {101ull, 102ull, 103ull}) {
    BuildDb(gen::ErdosRenyi(150, 450, 4, seed));
    Pattern p;
    PatternNodeId n0 = p.AddNode("L0"), n1 = p.AddNode("L1"),
                  n2 = p.AddNode("L2"), n3 = p.AddNode("L3");
    ASSERT_TRUE(p.AddEdge(n0, n1).ok());
    ASSERT_TRUE(p.AddEdge(n1, n2).ok());
    ASSERT_TRUE(p.AddEdge(n2, n3).ok());
    Plan plan;
    plan.steps = {PlanStep::HpsjBase(1),           // binds L1, L2
                  PlanStep::Filter({{0, false}}),  // L0 -> L1, in(L1)
                  PlanStep::Fetch(0, false),
                  PlanStep::Filter({{2, true}}),  // L2 -> L3, out(L2)
                  PlanStep::Fetch(2, true)};
    ExpectMatchesNaive(p, plan);
  }
}

TEST_F(ExecFixture, RandomizedAgreementStars) {
  for (uint64_t seed : {201ull, 202ull}) {
    BuildDb(gen::RandomDag(200, 2.5, 4, seed));
    Pattern p;
    PatternNodeId hub = p.AddNode("L0");
    PatternNodeId s1 = p.AddNode("L1"), s2 = p.AddNode("L2"),
                  s3 = p.AddNode("L3");
    ASSERT_TRUE(p.AddEdge(hub, s1).ok());
    ASSERT_TRUE(p.AddEdge(hub, s2).ok());
    ASSERT_TRUE(p.AddEdge(s3, hub).ok());
    Plan plan;
    plan.steps = {PlanStep::HpsjBase(0),
                  PlanStep::Filter({{1, true}, {2, false}}),  // shared scan
                  PlanStep::Fetch(1, true), PlanStep::Fetch(2, false)};
    ExpectMatchesNaive(p, plan);
  }
}


TEST(PlanValidateTest, AcceptsScanBaseStart) {
  auto p = Pattern::Parse("A->B; A->C");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::ScanBase(0),  // A
                PlanStep::Filter({{0, true}, {1, true}}),
                PlanStep::Fetch(0, true), PlanStep::Fetch(1, true)};
  EXPECT_TRUE(plan.Validate(*p).ok());
}

TEST(PlanValidateTest, RejectsScanBaseMidPlan) {
  auto p = Pattern::Parse("A->B");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::ScanBase(0)};
  EXPECT_FALSE(plan.Validate(*p).ok());
}

TEST_F(ExecFixture, ScanBaseStartMatchesNaive) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("C->D; C->E");
  ASSERT_TRUE(p.ok());
  // DPS-style: scan base table C, semijoin by both conditions, fetch.
  Plan plan;
  plan.steps = {PlanStep::ScanBase(0),
                PlanStep::Filter({{0, true}, {1, true}}),
                PlanStep::Fetch(0, true), PlanStep::Fetch(1, true)};
  ExpectMatchesNaive(*p, plan);
}

TEST_F(ExecFixture, MultiplePendingSlotsSurviveInterleavedOps) {
  // Exercises the pending-pool bookkeeping: two deferred semijoins kept
  // across a fetch expansion and a select before their own fetches run.
  BuildDb(gen::ErdosRenyi(150, 500, 5, 99));
  Pattern p;
  PatternNodeId a = p.AddNode("L0"), b = p.AddNode("L1"),
                c = p.AddNode("L2"), d = p.AddNode("L3"),
                e = p.AddNode("L4");
  ASSERT_TRUE(p.AddEdge(a, b).ok());  // 0
  ASSERT_TRUE(p.AddEdge(a, c).ok());  // 1
  ASSERT_TRUE(p.AddEdge(a, d).ok());  // 2
  ASSERT_TRUE(p.AddEdge(b, e).ok());  // 3
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0),  // binds a, b
                // defer three semijoins at once
                PlanStep::Filter({{1, true}, {2, true}}),
                PlanStep::Filter({{3, true}}),
                PlanStep::Fetch(3, true),   // expands while 1,2 pending
                PlanStep::Fetch(1, true),
                PlanStep::Fetch(2, true)};
  ExpectMatchesNaive(p, plan);
}

TEST_F(ExecFixture, PendingSlotsSurviveSelect) {
  BuildDb(gen::ErdosRenyi(120, 420, 4, 101));
  Pattern p;
  PatternNodeId a = p.AddNode("L0"), b = p.AddNode("L1"),
                c = p.AddNode("L2"), d = p.AddNode("L3");
  ASSERT_TRUE(p.AddEdge(a, b).ok());  // 0
  ASSERT_TRUE(p.AddEdge(b, c).ok());  // 1
  ASSERT_TRUE(p.AddEdge(a, c).ok());  // 2 (select later)
  ASSERT_TRUE(p.AddEdge(c, d).ok());  // 3
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0),
                PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true),       // binds c
                PlanStep::Filter({{3, true}}),  // pending c->d
                PlanStep::Select(2),            // prunes rows, keeps pending
                PlanStep::Fetch(3, true)};
  ExpectMatchesNaive(p, plan);
}

TEST_F(ExecFixture, TemporalIoChargedPerPass) {
  BuildDb(PaperFigure1());
  auto p = Pattern::Parse("B->C; C->D");
  ASSERT_TRUE(p.ok());
  Plan plan;
  plan.steps = {PlanStep::HpsjBase(0), PlanStep::Filter({{1, true}}),
                PlanStep::Fetch(1, true)};
  auto r = exec_->Execute(*p, plan);
  ASSERT_TRUE(r.ok());
  // HPSJ writes once; filter reads+writes; fetch reads+writes.
  EXPECT_GE(r->stats.operators.temporal_pages_written, 3u);
  EXPECT_GE(r->stats.operators.temporal_pages_read, 2u);
  EXPECT_EQ(r->stats.modeled_io_pages,
            r->stats.io.pool_hits + r->stats.io.pool_misses +
                r->stats.operators.temporal_pages_read +
                r->stats.operators.temporal_pages_written);
}

}  // namespace
}  // namespace fgpm
