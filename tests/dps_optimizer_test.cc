// Focused tests of the DPS status machine (Section 4.2): move legality,
// grouped filter-moves, scan-base starts, and the orphan restriction.
#include <gtest/gtest.h>

#include <memory>

#include "exec/naive_matcher.h"
#include "graph/generators.h"
#include "opt/dp_optimizer.h"
#include "opt/dps_optimizer.h"

namespace fgpm {
namespace {

class DpsFixture : public ::testing::Test {
 protected:
  void BuildDb(Graph g) {
    graph_ = std::make_unique<Graph>(std::move(g));
    db_ = std::make_unique<GraphDatabase>();
    ASSERT_TRUE(db_->Build(*graph_).ok());
  }
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphDatabase> db_;
};

// Builds a diverse shape set over L0..L5.
std::vector<Pattern> DiverseShapes() {
  std::vector<Pattern> out;
  for (const char* q :
       {"L0->L1", "L0->L1; L1->L2", "L0->L1; L1->L2; L2->L3",
        "L0->L1; L0->L2; L0->L3", "L1->L0; L2->L0; L3->L0",
        "L0->L1; L1->L2; L0->L2", "L0->L1; L1->L2; L2->L3; L0->L3",
        "L0->L1; L1->L2; L2->L0", "L0->L1; L1->L2; L1->L3; L3->L4"}) {
    auto p = Pattern::Parse(q);
    EXPECT_TRUE(p.ok()) << q;
    if (p.ok()) out.push_back(*std::move(p));
  }
  return out;
}

// Counts steps of a given kind.
int CountSteps(const Plan& plan, StepKind kind) {
  int n = 0;
  for (const auto& s : plan.steps) n += (s.kind == kind);
  return n;
}

TEST_F(DpsFixture, EveryFilterPrecedesItsFetch) {
  BuildDb(gen::ErdosRenyi(200, 600, 5, 71));
  for (const char* q :
       {"L0->L1; L1->L2", "L0->L1; L0->L2; L0->L3; L3->L4",
        "L0->L2; L1->L2; L2->L3; L2->L4"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    auto plan = OptimizeDps(*p, db_->catalog());
    ASSERT_TRUE(plan.ok()) << q;
    // Validate() enforces the filter-before-fetch protocol; here we also
    // check the *paper's* claim that the semijoin is the first step of
    // every R-join: each fetch's edge appears in some earlier filter.
    for (size_t i = 0; i < plan->steps.size(); ++i) {
      if (plan->steps[i].kind != StepKind::kFetch) continue;
      bool found = false;
      for (size_t j = 0; j < i && !found; ++j) {
        if (plan->steps[j].kind != StepKind::kFilter) continue;
        for (const auto& item : plan->steps[j].filters) {
          if (item.edge == plan->steps[i].edge) found = true;
        }
      }
      EXPECT_TRUE(found) << q << " step " << i;
    }
  }
}

TEST_F(DpsFixture, StarPatternGroupsSemijoinsOnHubColumn) {
  // A hub with three outgoing conditions: the optimizer should put at
  // least two of them into one shared filter scan (Remark 3.1) — the
  // cost model strictly favors it.
  BuildDb(gen::ErdosRenyi(300, 900, 5, 73));
  auto p = Pattern::Parse("L0->L1; L0->L2; L0->L3");
  ASSERT_TRUE(p.ok());
  auto plan = OptimizeDps(*p, db_->catalog());
  ASSERT_TRUE(plan.ok());
  int max_group = 0;
  for (const auto& s : plan->steps) {
    if (s.kind == StepKind::kFilter) {
      max_group = std::max(max_group, static_cast<int>(s.filters.size()));
    }
  }
  EXPECT_GE(max_group, 2) << plan->ToString(*p);
}

TEST_F(DpsFixture, ScanBaseStartChosenForSelectiveSingleton) {
  // One tiny extent with two selective conditions: starting from the
  // singleton base table and semijoining it twice is the model-optimal
  // opening; DPS must find *a* plan at least as cheap as any DP plan.
  BuildDb(gen::SupplyChain(150, 75));
  auto p = Pattern::Parse(
      "Supplier->Retailer; Supplier->Wholeseller; Bank->Supplier");
  ASSERT_TRUE(p.ok());
  auto dp = OptimizeDp(*p, db_->catalog());
  auto dps = OptimizeDps(*p, db_->catalog());
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(dps.ok());
  EXPECT_LE(dps->estimated_cost, dp->estimated_cost * 1.0001);
  EXPECT_TRUE(dps->Validate(*p).ok());
}

TEST_F(DpsFixture, PlansStayValidAcrossManyShapes) {
  BuildDb(gen::ErdosRenyi(200, 600, 6, 77));
  auto patterns = DiverseShapes();
  for (const auto& p : patterns) {
    auto plan = OptimizeDps(p, db_->catalog());
    ASSERT_TRUE(plan.ok()) << p.ToString();
    EXPECT_TRUE(plan->Validate(p).ok()) << plan->ToString(p);
    // Exactly one fetch or select per edge.
    EXPECT_EQ(CountSteps(*plan, StepKind::kFetch) +
                  CountSteps(*plan, StepKind::kSelect) +
                  (plan->steps[0].kind == StepKind::kHpsjBase ? 1 : 0),
              static_cast<int>(p.num_edges()));
  }
}

TEST_F(DpsFixture, ExecutionAgreesWithNaiveOnDpsPlans) {
  BuildDb(gen::RandomDag(150, 2.0, 5, 79));
  Executor exec(db_.get());
  for (const auto& p : DiverseShapes()) {
    auto plan = OptimizeDps(p, db_->catalog());
    ASSERT_TRUE(plan.ok());
    auto got = exec.Execute(p, *plan);
    ASSERT_TRUE(got.ok()) << p.ToString() << " / " << plan->ToString(p);
    auto want = NaiveMatch(*graph_, p);
    ASSERT_TRUE(want.ok());
    got->SortRows();
    want->SortRows();
    EXPECT_EQ(got->rows, want->rows) << plan->ToString(p);
  }
}

TEST_F(DpsFixture, OversizedPatternRejected) {
  BuildDb(gen::ErdosRenyi(50, 150, 3, 81));
  Pattern p;
  // 25 nodes / 24 edges exceeds the exact-DP bound.
  PatternNodeId prev = p.AddNode("L0");
  for (int i = 1; i < 25; ++i) {
    PatternNodeId cur = p.AddNode("N" + std::to_string(i));
    ASSERT_TRUE(p.AddEdge(prev, cur).ok());
    prev = cur;
  }
  EXPECT_EQ(OptimizeDps(p, db_->catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fgpm
