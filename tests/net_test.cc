// Query server + wire protocol (ctest label `net`): frame codec
// roundtrips and fuzzing, server-vs-direct row-identity differentials
// across shard counts x engines x join strategies, malformed/oversized
// input handling (framed Status errors, never asserts), DRR fairness
// under a greedy pipelining client, admission-control overload,
// per-connection backpressure, request deadlines, the HTTP
// observability endpoints, and per-request trace spans.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

using net::Client;
using net::FrameDecoder;
using net::QueryRequest;
using net::QueryResponse;
using net::Server;
using net::ServerOptions;

Pattern P(std::string_view text) {
  auto p = Pattern::Parse(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return *p;
}

std::vector<std::vector<NodeId>> SortedRows(Result<MatchResult> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok()) return {};
  r->SortRows();
  return std::move(r->rows);
}

// --- wire codec -------------------------------------------------------------

TEST(WireTest, RequestRoundtrip) {
  QueryRequest req;
  req.id = 0x1122334455667788ull;
  req.deadline_ms = 250;
  req.engine = 2;
  req.flags = net::kFlagChecksumOnly | net::kFlagTransitiveReduction;
  req.pattern = "A->B; B->C";
  std::string frame;
  EncodeQueryRequest(req, &frame);

  FrameDecoder dec;
  dec.Append(frame);
  std::string payload;
  auto has = dec.Next(&payload);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  QueryRequest back;
  ASSERT_TRUE(DecodeQueryRequest(payload, &back).ok());
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.engine, req.engine);
  EXPECT_EQ(back.flags, req.flags);
  EXPECT_EQ(back.pattern, req.pattern);
  EXPECT_TRUE(back.checksum_only());
}

TEST(WireTest, TraceContextExtensionRoundtrip) {
  QueryRequest req;
  req.id = 99;
  req.pattern = "A->B";
  req.has_trace = true;
  req.trace_id = 0xabcdef0123456789ull;
  req.parent_span = 17;
  req.trace_sampled = true;
  std::string frame;
  EncodeQueryRequest(req, &frame);

  FrameDecoder dec;
  dec.Append(frame);
  std::string payload;
  ASSERT_TRUE(*dec.Next(&payload));
  QueryRequest back;
  ASSERT_TRUE(DecodeQueryRequest(payload, &back).ok());
  EXPECT_TRUE(back.has_trace);
  EXPECT_EQ(back.trace_id, req.trace_id);
  EXPECT_EQ(back.parent_span, req.parent_span);
  EXPECT_TRUE(back.trace_sampled);
  EXPECT_EQ(back.pattern, "A->B");
  EXPECT_TRUE(back.flags & net::kFlagHasExtensions);

  // A request without a trace context encodes byte-identically to the
  // pre-extension wire format: no flag, no extension block.
  QueryRequest plain;
  plain.id = 100;
  plain.pattern = "A->B";
  std::string plain_frame;
  EncodeQueryRequest(plain, &plain_frame);
  dec.Append(plain_frame);
  ASSERT_TRUE(*dec.Next(&payload));
  QueryRequest plain_back;
  ASSERT_TRUE(DecodeQueryRequest(payload, &plain_back).ok());
  EXPECT_FALSE(plain_back.has_trace);
  EXPECT_EQ(plain_back.flags & net::kFlagHasExtensions, 0);
}

TEST(WireTest, MalformedExtensionsAreFramedErrors) {
  QueryRequest req;
  req.id = 5;
  req.pattern = "A->B";
  req.has_trace = true;
  req.trace_id = 1;
  std::string frame;
  EncodeQueryRequest(req, &frame);
  // Strip the length prefix: operate on the payload directly.
  std::string payload = frame.substr(4);

  // Unknown extension type -> InvalidArgument (never an assert).
  {
    std::string p = payload;
    p[p.size() - net::kExtTraceContextLen - 3] = 0x7f;  // the type byte
    QueryRequest back;
    Status st = DecodeQueryRequest(p, &back);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  // Wrong trace-context length -> InvalidArgument.
  {
    std::string p = payload;
    // The u16 length sits right after the type byte.
    size_t len_at = p.size() - net::kExtTraceContextLen - 2;
    uint16_t bad = net::kExtTraceContextLen + 1;
    std::memcpy(p.data() + len_at, &bad, 2);
    QueryRequest back;
    Status st = DecodeQueryRequest(p, &back);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  // Truncated extension payload -> InvalidArgument.
  for (size_t cut = 1; cut <= net::kExtTraceContextLen + 4; ++cut) {
    std::string p = payload.substr(0, payload.size() - cut);
    QueryRequest back;
    Status st = DecodeQueryRequest(p, &back);
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
  // Extensions flag set but no extension bytes at all -> error, because
  // the count byte itself is missing.
  {
    std::string p = payload.substr(0, payload.size() -
                                          (net::kExtTraceContextLen + 4));
    QueryRequest back;
    EXPECT_FALSE(DecodeQueryRequest(p, &back).ok());
  }
}

TEST(WireTest, ResponseRoundtripsRowsChecksumAndError) {
  QueryResponse rows_resp;
  rows_resp.id = 7;
  rows_resp.columns = {"A", "B"};
  rows_resp.rows = {{1, 2}, {3, 4}, {5, 6}};
  rows_resp.row_count = 3;
  std::string frame;
  EncodeQueryResponse(rows_resp, &frame);
  FrameDecoder dec;
  dec.Append(frame);
  std::string payload;
  ASSERT_TRUE(*dec.Next(&payload));
  QueryResponse back;
  ASSERT_TRUE(DecodeQueryResponse(payload, &back).ok());
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.columns, rows_resp.columns);
  EXPECT_EQ(back.rows, rows_resp.rows);

  QueryResponse sum_resp;
  sum_resp.id = 8;
  sum_resp.flags = net::kFlagChecksumOnly;
  sum_resp.columns = {"A"};
  sum_resp.row_count = 42;
  sum_resp.checksum = 0xdeadbeefcafe1234ull;
  frame.clear();
  EncodeQueryResponse(sum_resp, &frame);
  dec.Append(frame);
  ASSERT_TRUE(*dec.Next(&payload));
  ASSERT_TRUE(DecodeQueryResponse(payload, &back).ok());
  EXPECT_EQ(back.row_count, 42u);
  EXPECT_EQ(back.checksum, sum_resp.checksum);
  EXPECT_TRUE(back.rows.empty());

  QueryResponse err_resp;
  err_resp.id = 9;
  err_resp.code = StatusCode::kResourceExhausted;
  err_resp.error = "queue full";
  frame.clear();
  EncodeQueryResponse(err_resp, &frame);
  dec.Append(frame);
  ASSERT_TRUE(*dec.Next(&payload));
  ASSERT_TRUE(DecodeQueryResponse(payload, &back).ok());
  EXPECT_EQ(back.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(back.error, "queue full");
}

TEST(WireTest, RowChecksumIsOrderIndependent) {
  std::vector<std::vector<NodeId>> a = {{1, 2}, {3, 4}, {9, 9}};
  std::vector<std::vector<NodeId>> b = {{9, 9}, {1, 2}, {3, 4}};
  std::vector<std::vector<NodeId>> c = {{1, 2}, {3, 5}, {9, 9}};
  EXPECT_EQ(net::RowChecksum(a), net::RowChecksum(b));
  EXPECT_NE(net::RowChecksum(a), net::RowChecksum(c));
  EXPECT_EQ(net::RowChecksum({}), 0u);
}

TEST(FrameDecoderTest, ByteAtATimeAndPipelined) {
  QueryRequest req;
  req.id = 1;
  req.pattern = "A->B";
  std::string stream;
  EncodeQueryRequest(req, &stream);
  req.id = 2;
  EncodeQueryRequest(req, &stream);

  FrameDecoder dec;
  std::string payload;
  int frames = 0;
  for (char ch : stream) {
    dec.Append({&ch, 1});
    while (true) {
      auto has = dec.Next(&payload);
      ASSERT_TRUE(has.ok());
      if (!*has) break;
      QueryRequest back;
      ASSERT_TRUE(DecodeQueryRequest(payload, &back).ok());
      EXPECT_EQ(back.id, static_cast<uint64_t>(++frames));
    }
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoderTest, OversizedLengthPoisonsTheStream) {
  FrameDecoder dec;
  uint32_t huge = net::kMaxFrameBytes + 1;
  char pfx[4];
  std::memcpy(pfx, &huge, 4);
  dec.Append({pfx, 4});
  std::string payload;
  auto r = dec.Next(&payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  // Poisoned: every later call fails too, even with more bytes.
  dec.Append({pfx, 4});
  EXPECT_FALSE(dec.Next(&payload).ok());
}

TEST(FrameDecoderTest, FuzzRandomBytesNeverCrash) {
  Rng rng(0xfeedf00d);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    std::string payload;
    size_t chunks = 1 + rng.NextBounded(8);
    for (size_t i = 0; i < chunks; ++i) {
      std::string junk(rng.NextBounded(300), '\0');
      for (char& ch : junk) ch = static_cast<char>(rng.NextBounded(256));
      // Bias some rounds toward plausible small length prefixes so the
      // decoder yields frames that reach DecodeQueryRequest.
      if (junk.size() >= 4 && round % 3 == 0) {
        uint32_t len = static_cast<uint32_t>(rng.NextBounded(64));
        std::memcpy(junk.data(), &len, 4);
      }
      dec.Append(junk);
      while (true) {
        auto has = dec.Next(&payload);
        if (!has.ok() || !*has) break;
        QueryRequest req;
        QueryResponse resp;
        // Must return a Status, never crash or overflow.
        (void)DecodeQueryRequest(payload, &req);
        (void)DecodeQueryResponse(payload, &resp);
      }
    }
  }
}

TEST(FrameDecoderTest, FuzzTruncatedAndMutatedRealFrames) {
  Rng rng(0xabad1dea);
  QueryRequest req;
  req.id = 77;
  req.pattern = "L0->L1; L1->L2";
  std::string plain;
  EncodeQueryRequest(req, &plain);
  // Second base frame carries the trace-context extension so mutation and
  // truncation exercise the TLV parser (bad counts, bad types, bad lengths,
  // cut-off payloads). Every outcome must be a framed Status, never a crash.
  req.has_trace = true;
  req.trace_id = 0x1122334455667788ull;
  req.parent_span = 9;
  req.trace_sampled = true;
  std::string traced;
  EncodeQueryRequest(req, &traced);
  const std::string* bases[] = {&plain, &traced};
  for (int round = 0; round < 600; ++round) {
    std::string mutated = *bases[round % 2];
    size_t flips = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < flips; ++i) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    mutated.resize(1 + rng.NextBounded(mutated.size()));
    FrameDecoder dec;
    dec.Append(mutated);
    std::string payload;
    while (true) {
      auto has = dec.Next(&payload);
      if (!has.ok() || !*has) break;
      QueryRequest back;
      (void)DecodeQueryRequest(payload, &back);
    }
  }
}

// --- server end-to-end ------------------------------------------------------

struct ServerFixture {
  Graph g;
  std::unique_ptr<GraphMatcher> direct;
  std::unique_ptr<Server> server;

  explicit ServerFixture(ServerOptions opts, uint32_t num_labels = 8,
                         uint64_t seed = 23)
      : g(gen::ScaleFree(300, 3, num_labels, seed)) {
    auto d = GraphMatcher::Create(&g, {}, {});
    EXPECT_TRUE(d.ok());
    direct = std::move(*d);
    auto s = Server::Start(&g, opts);
    EXPECT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
  }
  std::unique_ptr<Client> Connect() {
    auto c = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(*c);
  }
};

TEST(ServerTest, DifferentialAcrossShardsEnginesStrategies) {
  struct Config {
    uint32_t shards;
    Engine engine;
    JoinStrategy js;
  };
  const Config configs[] = {
      {1, Engine::kDps, JoinStrategy::kHybrid},
      {1, Engine::kDp, JoinStrategy::kBinary},
      {1, Engine::kCanonical, JoinStrategy::kHybrid},
      {4, Engine::kDps, JoinStrategy::kBinary},
      {4, Engine::kDp, JoinStrategy::kHybrid},
      {4, Engine::kCanonical, JoinStrategy::kHybrid},
      {8, Engine::kDps, JoinStrategy::kHybrid},
      {8, Engine::kDp, JoinStrategy::kBinary},
  };
  for (const Config& cfg : configs) {
    ServerOptions opts;
    opts.num_shards = cfg.shards;
    opts.matcher.exec.join_strategy = cfg.js;
    ServerFixture f(opts);
    auto patterns = workload::RandomPatterns(f.g, 6, 3, 1, 101);
    auto client = f.Connect();
    uint64_t next_id = 1;
    for (const Pattern& p : patterns) {
      MatchOptions mo;
      mo.engine = cfg.engine;
      // The server re-parses the wire text, which renumbers pattern
      // nodes (and thus result columns) — run the direct matcher on the
      // same re-parsed pattern so both sides agree on column order.
      auto want = SortedRows(f.direct->Match(P(p.ToString()), mo));

      QueryRequest req;
      req.id = next_id++;
      req.engine = static_cast<uint8_t>(cfg.engine);
      req.pattern = p.ToString();
      auto resp = client->Query(req);
      ASSERT_TRUE(resp.ok()) << resp.status();
      ASSERT_TRUE(resp->ok()) << resp->error;
      EXPECT_EQ(resp->id, req.id);
      auto got = resp->rows;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want)
          << "shards=" << cfg.shards << " engine=" << EngineName(cfg.engine)
          << " pattern=" << p.ToString();

      // Checksum-only responses agree with the direct rows.
      req.id = next_id++;
      req.flags = net::kFlagChecksumOnly;
      auto sum = client->Query(req);
      ASSERT_TRUE(sum.ok()) << sum.status();
      ASSERT_TRUE(sum->ok()) << sum->error;
      EXPECT_EQ(sum->row_count, want.size());
      EXPECT_EQ(sum->checksum, net::RowChecksum(want));
      EXPECT_TRUE(sum->rows.empty());
    }
  }
}

TEST(ServerTest, PipelinedResponsesMatchById) {
  ServerOptions opts;
  opts.num_shards = 4;
  ServerFixture f(opts);
  auto patterns = workload::RandomPatterns(f.g, 10, 3, 1, 303);
  auto client = f.Connect();
  // Fire everything, then collect: responses may be reordered across
  // shards, ids pair them back up.
  for (size_t i = 0; i < patterns.size(); ++i) {
    QueryRequest req;
    req.id = i;
    req.flags = net::kFlagChecksumOnly;
    req.pattern = patterns[i].ToString();
    ASSERT_TRUE(client->Send(req).ok());
  }
  std::vector<bool> seen(patterns.size(), false);
  for (size_t i = 0; i < patterns.size(); ++i) {
    QueryResponse resp;
    ASSERT_TRUE(client->Recv(&resp).ok());
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_LT(resp.id, patterns.size());
    EXPECT_FALSE(seen[resp.id]);
    seen[resp.id] = true;
    auto want = SortedRows(f.direct->Match(P(patterns[resp.id].ToString())));
    EXPECT_EQ(resp.row_count, want.size());
    EXPECT_EQ(resp.checksum, net::RowChecksum(want));
  }
}

TEST(ServerTest, MalformedInputsGetFramedErrorsNotAsserts) {
  ServerOptions opts;
  opts.num_shards = 2;
  ServerFixture f(opts);
  auto client = f.Connect();

  // 1. Unparseable pattern text.
  QueryRequest req;
  req.id = 1;
  req.pattern = "not a pattern !!!";
  auto resp = client->Query(req);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(resp->id, 1u);

  // 2. Unknown engine value.
  req.id = 2;
  req.engine = 99;
  req.pattern = "L0->L1";
  resp = client->Query(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kInvalidArgument);

  // 3. Oversized pattern (wire-level cap).
  req.id = 3;
  req.engine = 0;
  req.pattern.assign(net::kMaxPatternBytes + 100, 'x');
  resp = client->Query(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kInvalidArgument);

  // 4. Truncated payload inside a well-sized frame: recoverable error.
  {
    std::string frame;
    uint32_t len = 5;
    frame.append(reinterpret_cast<const char*>(&len), 4);
    frame.append("\1\2\3\4\5", 5);
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = write(client->fd(), frame.data() + off, frame.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
    QueryResponse err;
    ASSERT_TRUE(client->Recv(&err).ok());
    EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  }

  // 5. The connection survived all of the above.
  req.id = 5;
  req.pattern = "L0->L1";
  resp = client->Query(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->ok()) << resp->error;
  EXPECT_EQ(SortedRows(f.direct->Match(P("L0->L1"))).size(), resp->row_count);

  // 6. An oversized frame prefix is unrecoverable: framed Corruption
  // error, then the server closes the stream.
  {
    auto doomed = f.Connect();
    uint32_t huge = net::kMaxFrameBytes + 1;
    ASSERT_EQ(write(doomed->fd(), &huge, 4), 4);
    QueryResponse err;
    ASSERT_TRUE(doomed->Recv(&err).ok());
    EXPECT_EQ(err.code, StatusCode::kCorruption);
    // Server closes after the error frame: Recv now fails.
    EXPECT_FALSE(doomed->Recv(&err).ok());
  }
}

TEST(ServerTest, DeficitRoundRobinPreventsStarvation) {
  ServerOptions opts;
  opts.num_shards = 1;
  opts.dispatch_window = 1;  // sharpest fairness: one release at a time
  ServerFixture f(opts, /*num_labels=*/4, /*seed=*/7);
  // Make each query cost real time so the greedy queue stays deep.
  f.server->matcher()
      ->shard(0)
      ->db()
      .buffer_pool()
      ->disk()
      ->set_simulated_read_latency_us(150);

  auto greedy = f.Connect();
  auto polite = f.Connect();
  constexpr int kGreedy = 150, kPolite = 10;
  // The greedy client pipelines its whole burst first...
  for (int i = 0; i < kGreedy; ++i) {
    QueryRequest req;
    req.id = static_cast<uint64_t>(i);
    req.flags = net::kFlagChecksumOnly;
    req.pattern = "L0->L1";
    ASSERT_TRUE(greedy->Send(req).ok());
  }
  // ...then the polite client sends a small batch.
  for (int i = 0; i < kPolite; ++i) {
    QueryRequest req;
    req.id = static_cast<uint64_t>(1000 + i);
    req.flags = net::kFlagChecksumOnly;
    req.pattern = "L0->L1";
    ASSERT_TRUE(polite->Send(req).ok());
  }

  std::atomic<int> greedy_done{0};
  std::thread greedy_rx([&] {
    QueryResponse resp;
    for (int i = 0; i < kGreedy; ++i) {
      if (!greedy->Recv(&resp).ok()) break;
      greedy_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  QueryResponse resp;
  for (int i = 0; i < kPolite; ++i) {
    ASSERT_TRUE(polite->Recv(&resp).ok());
    ASSERT_TRUE(resp.ok()) << resp.error;
  }
  // DRR interleaves the two queues one-for-one, so when the polite
  // client's 10 answers are in, the greedy client cannot have drained
  // its 150-deep queue. FIFO dispatch would finish all 150 first.
  int greedy_at_finish = greedy_done.load(std::memory_order_relaxed);
  EXPECT_LT(greedy_at_finish, kGreedy / 2)
      << "greedy client starved the polite one";
  greedy_rx.join();
}

TEST(ServerTest, AdmissionControlShedsLoadAndRecovers) {
  ServerOptions opts;
  opts.num_shards = 1;
  opts.max_queue = 8;
  opts.dispatch_window = 1;
  ServerFixture f(opts, /*num_labels=*/4, /*seed=*/7);
  f.server->matcher()
      ->shard(0)
      ->db()
      .buffer_pool()
      ->disk()
      ->set_simulated_read_latency_us(200);

  auto client = f.Connect();
  constexpr int kBurst = 80;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.id = static_cast<uint64_t>(i);
    req.flags = net::kFlagChecksumOnly;
    req.pattern = "L0->L1";
    ASSERT_TRUE(client->Send(req).ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    QueryResponse resp;
    ASSERT_TRUE(client->Recv(&resp).ok());
    if (resp.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(resp.code, StatusCode::kResourceExhausted) << resp.error;
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(shed, 0) << "a 10x overload burst must trip admission control";
  EXPECT_GT(ok, 0);
  // The server recovers: a fresh request succeeds.
  QueryRequest req;
  req.id = 9999;
  req.flags = net::kFlagChecksumOnly;
  req.pattern = "L0->L1";
  auto resp = client->Query(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok()) << resp->error;
}

TEST(ServerTest, BackpressurePausesReadsInsteadOfShedding) {
  ServerOptions opts;
  opts.num_shards = 1;
  opts.max_conn_queue = 4;  // tiny per-connection queue
  opts.max_queue = 1 << 20;  // admission never trips
  ServerFixture f(opts, /*num_labels=*/4, /*seed=*/7);
  auto client = f.Connect();
  constexpr int kBurst = 60;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.id = static_cast<uint64_t>(i);
    req.flags = net::kFlagChecksumOnly;
    req.pattern = "L0->L1";
    ASSERT_TRUE(client->Send(req).ok());
  }
  // Every request eventually succeeds — the server paused reads while
  // the queue was full rather than rejecting or buffering unboundedly.
  for (int i = 0; i < kBurst; ++i) {
    QueryResponse resp;
    ASSERT_TRUE(client->Recv(&resp).ok());
    EXPECT_TRUE(resp.ok()) << resp.error;
  }
}

TEST(ServerTest, ExpiredDeadlinesAreShedAtDispatch) {
  ServerOptions opts;
  opts.num_shards = 1;
  opts.dispatch_window = 1;
  // Starve the caches so every query pays real (simulated) disk time —
  // otherwise an optimized build drains the queue before any deadline.
  opts.matcher.db.code_cache_capacity = 4;
  opts.matcher.db.buffer_pool_bytes = 32 << 10;
  ServerFixture f(opts, /*num_labels=*/4, /*seed=*/7);
  f.server->matcher()
      ->shard(0)
      ->db()
      .buffer_pool()
      ->disk()
      ->set_simulated_read_latency_us(500);

  auto client = f.Connect();
  constexpr int kBurst = 40;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.id = static_cast<uint64_t>(i);
    req.deadline_ms = 5;  // far less than the queue will take
    req.flags = net::kFlagChecksumOnly;
    req.pattern = "L0->L1";
    ASSERT_TRUE(client->Send(req).ok());
  }
  int expired = 0, ok = 0;
  for (int i = 0; i < kBurst; ++i) {
    QueryResponse resp;
    ASSERT_TRUE(client->Recv(&resp).ok());
    if (resp.code == StatusCode::kDeadlineExceeded) {
      ++expired;
    } else if (resp.ok()) {
      ++ok;
    }
  }
  EXPECT_GT(ok, 0) << "the head of the queue should meet its deadline";
  EXPECT_GT(expired, 0) << "deep-queued requests should expire";
}

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  close(fd);
  return out;
}

TEST(ServerTest, HttpMetricsHealthzAndStats) {
  ServerOptions opts;
  opts.num_shards = 2;
  ServerFixture f(opts);
  // Generate one query so server counters exist and are nonzero.
  auto client = f.Connect();
  QueryRequest req;
  req.id = 1;
  req.flags = net::kFlagChecksumOnly;
  req.pattern = "L0->L1";
  auto resp = client->Query(req);
  ASSERT_TRUE(resp.ok());

  std::string metrics = HttpGet(f.server->port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("fgpm_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("fgpm_server_latency_us"), std::string::npos);

  std::string health = HttpGet(f.server->port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string stats = HttpGet(f.server->port(), "/stats");
  EXPECT_NE(stats.find("application/json"), std::string::npos);

  std::string missing = HttpGet(f.server->port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(ServerTest, PerRequestTraceSpansRecorded) {
  ServerOptions opts;
  opts.num_shards = 2;
  opts.trace_requests = true;
  ServerFixture f(opts);
  auto client = f.Connect();
  QueryRequest req;
  req.id = 42;
  req.pattern = "L0->L1";
  auto resp = client->Query(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->ok()) << resp->error;

  auto traces = f.server->RecentTraces();
  ASSERT_FALSE(traces.empty());
  const QueryTrace& t = traces.back();
  ASSERT_GE(t.spans().size(), 3u);  // root + queue + exec
  EXPECT_EQ(t.spans()[0].name, "L0->L1");
  EXPECT_EQ(t.spans()[0].category, "server");
  bool has_queue = false, has_exec = false;
  for (const TraceSpan& s : t.spans()) {
    if (s.name == "queue") has_queue = true;
    if (s.name == "exec") has_exec = true;
  }
  EXPECT_TRUE(has_queue);
  EXPECT_TRUE(has_exec);
  ASSERT_NE(t.spans()[0].FindArg("rows"), nullptr);
}

}  // namespace
}  // namespace fgpm
