// Randomized differential test for the reachability probe paths (runs
// under TSan/ASan via the `reach` + `concurrency` ctest labels): the
// flat-arena probe, the hybrid bitmap probe and the memoized probe must
// all agree with the BFS oracle, from 1, 4 and 8 concurrent threads
// sharing one labeling. The memo is per-thread (the executor's
// one-memo-per-worker design), so the only shared state under
// concurrency is the read-only labeling itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reach_oracle.h"
#include "reach/reach_memo.h"
#include "reach/two_hop.h"

namespace fgpm {
namespace {

struct Probe {
  NodeId u, v;
  bool expect;
};

// Samples pairs from a small node subset so component pairs recur —
// the repeated-probe workload the memo exists for.
std::vector<Probe> MakeProbes(const Graph& g, int count, uint64_t seed) {
  ReachOracle oracle(&g);
  Rng rng(seed);
  // Half the draws come from a 32-node pocket => many repeats.
  std::vector<NodeId> pocket;
  for (int i = 0; i < 32; ++i) {
    pocket.push_back(static_cast<NodeId>(rng.NextBounded(g.NumNodes())));
  }
  std::vector<Probe> probes;
  probes.reserve(count);
  for (int i = 0; i < count; ++i) {
    NodeId u = i % 2 == 0
                   ? pocket[rng.NextBounded(pocket.size())]
                   : static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = i % 3 == 0
                   ? pocket[rng.NextBounded(pocket.size())]
                   : static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    probes.push_back({u, v, oracle.Reaches(u, v)});
  }
  return probes;
}

void RunDifferential(const Graph& g, uint64_t seed) {
  // threshold 0: every probe on the flat arrays; threshold 2: almost
  // every non-trivial code gets a bitmap sidecar.
  TwoHopLabeling flat = BuildTwoHopPruned(g, 1, 0);
  TwoHopLabeling hybrid = BuildTwoHopPruned(g, 1, 2);
  ASSERT_EQ(flat.CoverSize(), hybrid.CoverSize());
  ASSERT_GT(hybrid.NumBitmapCodes(), 0u);
  std::vector<Probe> probes = MakeProbes(g, 3000, seed);

  for (unsigned threads : {1u, 4u, 8u}) {
    std::atomic<int> mismatches{0};
    std::atomic<uint64_t> memo_hits{0};
    std::atomic<uint64_t> memo_probes{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ReachMemo memo(512);  // per-thread, like the executor's workers
        // Interleaved slices; two passes so even a thread's own slice
        // repeats (the memo persists across passes).
        for (int pass = 0; pass < 2; ++pass) {
          for (size_t i = t; i < probes.size(); i += threads) {
            const Probe& p = probes[i];
            bool f = flat.Reaches(p.u, p.v);
            bool h = hybrid.Reaches(p.u, p.v);
            bool m = hybrid.Reaches(p.u, p.v, &memo);
            if (f != p.expect || h != p.expect || m != p.expect) {
              mismatches.fetch_add(1);
            }
          }
        }
        memo_hits.fetch_add(memo.hits());
        memo_probes.fetch_add(memo.probes());
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << threads;
    // The workload repeats component pairs by construction (pocket
    // sampling + two passes), so the memo must be doing real work.
    EXPECT_GT(memo_probes.load(), 0u) << "threads=" << threads;
    EXPECT_GT(memo_hits.load(), 0u) << "threads=" << threads;
  }
}

TEST(ReachDifferentialTest, ErdosRenyi) {
  RunDifferential(gen::ErdosRenyi(400, 1200, 3, 71), 171);
}

TEST(ReachDifferentialTest, ScaleFree) {
  RunDifferential(gen::ScaleFree(400, 3, 3, 72), 172);
}

TEST(ReachDifferentialTest, XMarkLike) {
  gen::XMarkOptions opts;
  opts.factor = 0.005;
  RunDifferential(gen::XMarkLike(opts), 173);
}

// Disabled memo must behave exactly like the plain probe (null and
// zero-capacity both).
TEST(ReachDifferentialTest, DisabledMemoIsTransparent) {
  Graph g = gen::RandomDag(200, 2.0, 2, 73);
  TwoHopLabeling lab = BuildTwoHopPruned(g, 1, 4);
  ReachMemo off(0);
  EXPECT_FALSE(off.enabled());
  Rng rng(74);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    bool plain = lab.Reaches(u, v);
    EXPECT_EQ(lab.Reaches(u, v, nullptr), plain);
    EXPECT_EQ(lab.Reaches(u, v, &off), plain);
  }
  EXPECT_EQ(off.probes(), 0u);
}

// Memo unit behavior: epoch clear drops entries, lossy overwrite keeps
// answering correctly (a memo is a cache, never an oracle).
TEST(ReachMemoTest, AcquireClearAndOverflow) {
  ReachMemo memo(64);
  ASSERT_TRUE(memo.enabled());
  ASSERT_EQ(memo.capacity(), 64u);
  bool hit = true;
  uint32_t s1 = memo.Acquire(ReachMemo::PackKey(1, 2), &hit);
  EXPECT_FALSE(hit);
  memo.set_value(s1, 1);
  uint32_t s2 = memo.Acquire(ReachMemo::PackKey(1, 2), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(memo.value(s2), 1u);
  memo.Clear();
  memo.Acquire(ReachMemo::PackKey(1, 2), &hit);
  EXPECT_FALSE(hit) << "Clear must drop cached entries";
  EXPECT_EQ(memo.probes(), 1u) << "Clear must reset statistics";
  // Stuff far more keys than capacity: every re-acquire answers either
  // a correct hit (value preserved) or a miss — never a wrong value.
  memo.Clear();
  for (uint32_t k = 0; k < 1000; ++k) {
    uint32_t s = memo.Acquire(ReachMemo::PackKey(k, k), &hit);
    if (!hit) memo.set_value(s, k);
  }
  for (uint32_t k = 0; k < 1000; ++k) {
    uint32_t s = memo.Acquire(ReachMemo::PackKey(k, k), &hit);
    if (hit) EXPECT_EQ(memo.value(s), k);
  }
}

}  // namespace
}  // namespace fgpm
