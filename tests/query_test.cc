#include <gtest/gtest.h>

#include "query/pattern.h"

namespace fgpm {
namespace {

TEST(PatternParseTest, PaperFigure1b) {
  auto p = Pattern::Parse("A->C; B->C; C->D; D->E");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_nodes(), 5u);
  EXPECT_EQ(p->num_edges(), 4u);
  EXPECT_EQ(p->label(0), "A");
  EXPECT_EQ(p->label(1), "C");
  EXPECT_TRUE(p->IsConnected());
}

TEST(PatternParseTest, ChainSyntax) {
  auto p = Pattern::Parse("A -> B -> C -> D");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_nodes(), 4u);
  EXPECT_EQ(p->num_edges(), 3u);
  EXPECT_EQ(p->edges()[0], (PatternEdge{0, 1}));
  EXPECT_EQ(p->edges()[2], (PatternEdge{2, 3}));
}

TEST(PatternParseTest, CommaSeparatorAndWhitespace) {
  auto p = Pattern::Parse("  Supplier->Retailer ,\n Bank -> Supplier ; ");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_nodes(), 3u);
  EXPECT_EQ(p->num_edges(), 2u);
}

TEST(PatternParseTest, SingleNodePattern) {
  auto p = Pattern::Parse("item");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_nodes(), 1u);
  EXPECT_EQ(p->num_edges(), 0u);
  EXPECT_TRUE(p->Validate().ok());
}

TEST(PatternParseTest, RepeatedEdgeIsDeduplicated) {
  auto p = Pattern::Parse("A->B; A->B; B->C");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_edges(), 2u);
}

TEST(PatternParseTest, CyclicPatternAllowed) {
  auto p = Pattern::Parse("A->B; B->C; C->A");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_edges(), 3u);
}

TEST(PatternParseTest, Rejections) {
  EXPECT_FALSE(Pattern::Parse("").ok());
  EXPECT_FALSE(Pattern::Parse("  ;; ").ok());
  EXPECT_FALSE(Pattern::Parse("A->").ok());
  EXPECT_FALSE(Pattern::Parse("->B").ok());
  EXPECT_FALSE(Pattern::Parse("A->A").ok());            // self-loop
  EXPECT_FALSE(Pattern::Parse("A->B; C->D").ok());      // disconnected
  EXPECT_FALSE(Pattern::Parse("A B").ok());             // junk
  EXPECT_FALSE(Pattern::Parse("1A->B").ok());           // bad identifier
}

TEST(PatternBuildTest, ManualConstruction) {
  Pattern p;
  PatternNodeId a = p.AddNode("A");
  PatternNodeId b = p.AddNode("B");
  EXPECT_EQ(p.AddNode("A"), a);  // dedup by label
  ASSERT_TRUE(p.AddEdge(a, b).ok());
  EXPECT_EQ(p.AddEdge(a, b).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(p.AddEdge(a, a).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.AddEdge(a, 9).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PatternValidateTest, MultiNodeWithoutEdges) {
  Pattern p;
  p.AddNode("A");
  p.AddNode("B");
  EXPECT_EQ(p.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TransitiveReductionTest, RemovesImpliedEdge) {
  auto p = Pattern::Parse("A->B; B->C; A->C");
  ASSERT_TRUE(p.ok());
  Pattern r = p->TransitiveReduction();
  EXPECT_EQ(r.num_edges(), 2u);
  // A->C dropped; A->B and B->C survive.
  for (const auto& e : r.edges()) {
    EXPECT_FALSE(e.from == 0 && e.to == 2);
  }
}

TEST(TransitiveReductionTest, KeepsCycleIntact) {
  auto p = Pattern::Parse("A->B; B->C; C->A");
  ASSERT_TRUE(p.ok());
  Pattern r = p->TransitiveReduction();
  // Every edge of a simple cycle is necessary.
  EXPECT_EQ(r.num_edges(), 3u);
}

TEST(TransitiveReductionTest, DiamondKept) {
  auto p = Pattern::Parse("A->B; A->C; B->D; C->D");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->TransitiveReduction().num_edges(), 4u);
}

TEST(PatternToStringTest, RoundTrips) {
  auto p = Pattern::Parse("A->C; B->C; C->D");
  ASSERT_TRUE(p.ok());
  auto q = Pattern::Parse(p->ToString());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_nodes(), p->num_nodes());
  EXPECT_EQ(q->edges(), p->edges());
  auto single = Pattern::Parse("item");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->ToString(), "item");
}

}  // namespace
}  // namespace fgpm
