// Property-based testing: randomized graphs x randomized patterns x all
// engines must produce identical result sets (parameterized sweeps).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

enum class GraphKind { kErdosRenyi, kRandomDag, kScaleFree, kXmark };

const char* GraphKindName(GraphKind k) {
  switch (k) {
    case GraphKind::kErdosRenyi:
      return "ErdosRenyi";
    case GraphKind::kRandomDag:
      return "RandomDag";
    case GraphKind::kScaleFree:
      return "ScaleFree";
    case GraphKind::kXmark:
      return "Xmark";
  }
  return "?";
}

Graph MakeGraph(GraphKind kind, uint64_t seed) {
  switch (kind) {
    case GraphKind::kErdosRenyi:
      return gen::ErdosRenyi(140, 420, 5, seed);
    case GraphKind::kRandomDag:
      return gen::RandomDag(160, 2.2, 5, seed);
    case GraphKind::kScaleFree:
      return gen::ScaleFree(150, 2, 5, seed);
    case GraphKind::kXmark: {
      gen::XMarkOptions opts;
      opts.factor = 0.0008;
      opts.seed = seed;
      return gen::XMarkLike(opts);
    }
  }
  __builtin_unreachable();
}

using ParamT = std::tuple<GraphKind, uint64_t /*seed*/>;

class EngineAgreement : public ::testing::TestWithParam<ParamT> {};

TEST_P(EngineAgreement, RandomPatternsAllEnginesAgree) {
  auto [kind, seed] = GetParam();
  Graph g = MakeGraph(kind, seed);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  bool dag = IsDag(g);

  auto patterns = workload::RandomPatterns(g, /*count=*/6, /*nodes=*/3,
                                           /*extra_edges=*/1, seed * 7 + 1);
  auto more = workload::RandomPatterns(g, /*count=*/4, /*nodes=*/4,
                                       /*extra_edges=*/1, seed * 13 + 5);
  patterns.insert(patterns.end(), more.begin(), more.end());
  ASSERT_FALSE(patterns.empty());

  for (const auto& p : patterns) {
    Result<MatchResult> expect =
        (*matcher)->Match(p, {.engine = Engine::kNaive});
    ASSERT_TRUE(expect.ok());
    expect->SortRows();
    for (Engine e : {Engine::kDps, Engine::kDp, Engine::kCanonical,
                     Engine::kIntDp, Engine::kTsd}) {
      if (e == Engine::kTsd && !dag) continue;
      auto r = (*matcher)->Match(p, {.engine = e});
      ASSERT_TRUE(r.ok()) << EngineName(e) << " on " << p.ToString() << ": "
                          << r.status();
      r->SortRows();
      EXPECT_EQ(r->rows, expect->rows)
          << GraphKindName(kind) << " seed " << seed << " engine "
          << EngineName(e) << " pattern " << p.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndSeeds, EngineAgreement,
    ::testing::Combine(::testing::Values(GraphKind::kErdosRenyi,
                                         GraphKind::kRandomDag,
                                         GraphKind::kScaleFree,
                                         GraphKind::kXmark),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<ParamT>& info) {
      return std::string(GraphKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Invariant: the number of matches of a pattern never increases when an
// edge (constraint) is added.
class MonotonicityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotonicityProperty, AddingEdgesNeverAddsMatches) {
  uint64_t seed = GetParam();
  Graph g = gen::ErdosRenyi(120, 360, 4, seed);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());

  auto base = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(base.ok());
  auto constrained = Pattern::Parse("L0->L1; L1->L2; L0->L3; L3->L2");
  ASSERT_TRUE(constrained.ok());
  auto rb = (*matcher)->Match(*base);
  auto rc = (*matcher)->Match(*constrained);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rc.ok());
  // Project constrained rows onto (L0, L1, L2): every projected tuple
  // must appear in the base result.
  std::set<std::vector<NodeId>> base_rows(rb->rows.begin(), rb->rows.end());
  for (const auto& row : rc->rows) {
    std::vector<NodeId> proj{row[0], row[1], row[2]};
    EXPECT_TRUE(base_rows.count(proj));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Values(11ull, 12ull, 13ull, 14ull));

// Invariant: reversing every pattern edge and swapping data-graph edge
// directions yields the same match count.
class ReversalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReversalProperty, ReversedGraphReversedPatternSameCount) {
  uint64_t seed = GetParam();
  Graph g = gen::RandomDag(120, 2.0, 3, seed);
  Graph rev;
  for (LabelId l = 0; l < g.NumLabels(); ++l) rev.InternLabel(g.LabelName(l));
  for (NodeId v = 0; v < g.NumNodes(); ++v) rev.AddNode(g.label_of(v));
  for (const auto& [u, v] : g.Edges()) {
    ASSERT_TRUE(rev.AddEdge(v, u).ok());
  }
  rev.Finalize();

  auto m1 = GraphMatcher::Create(&g);
  auto m2 = GraphMatcher::Create(&rev);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  auto p = Pattern::Parse("L0->L1; L1->L2");
  auto pr = Pattern::Parse("L1->L0; L2->L1");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(pr.ok());
  auto r1 = (*m1)->Match(*p);
  auto r2 = (*m2)->Match(*pr);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->rows.size(), r2->rows.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReversalProperty,
                         ::testing::Values(21ull, 22ull, 23ull));

}  // namespace
}  // namespace fgpm
