#include <gtest/gtest.h>

#include <memory>

#include "baseline/igmj.h"
#include "baseline/tsd.h"
#include "exec/naive_matcher.h"
#include "gdb/database.h"
#include "graph/generators.h"
#include "query/pattern.h"

namespace fgpm {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  void BuildGraph(Graph g, bool with_catalog = true) {
    graph_ = std::make_unique<Graph>(std::move(g));
    if (with_catalog) {
      db_ = std::make_unique<GraphDatabase>();
      ASSERT_TRUE(db_->Build(*graph_).ok());
    } else {
      db_.reset();
    }
  }

  void ExpectTsdMatchesNaive(const Pattern& p) {
    auto tsd = TsdEngine::Create(graph_.get());
    ASSERT_TRUE(tsd.ok()) << tsd.status();
    auto got = (*tsd)->Match(p);
    ASSERT_TRUE(got.ok());
    auto want = NaiveMatch(*graph_, p);
    ASSERT_TRUE(want.ok());
    got->SortRows();
    want->SortRows();
    EXPECT_EQ(got->rows, want->rows);
  }

  void ExpectIntDpMatchesNaive(const Pattern& p) {
    IntDpEngine engine(graph_.get(), db_ ? &db_->catalog() : nullptr);
    auto got = engine.Match(p);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = NaiveMatch(*graph_, p);
    ASSERT_TRUE(want.ok());
    got->SortRows();
    want->SortRows();
    EXPECT_EQ(got->rows, want->rows);
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphDatabase> db_;
};

TEST_F(BaselineFixture, TsdRejectsCyclicGraph) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  g.Finalize();
  EXPECT_EQ(TsdEngine::Create(&g).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BaselineFixture, TsdPathPatternsOnDag) {
  BuildGraph(gen::RandomDag(200, 2.5, 4, 51), /*with_catalog=*/false);
  for (const char* q : {"L0->L1", "L0->L1; L1->L2", "L2->L1; L1->L0"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    ExpectTsdMatchesNaive(*p);
  }
}

TEST_F(BaselineFixture, TsdTreeAndGraphPatterns) {
  BuildGraph(gen::RandomDag(150, 2.0, 4, 53), /*with_catalog=*/false);
  for (const char* q :
       {"L0->L1; L0->L2", "L0->L1; L1->L2; L1->L3",
        "L0->L1; L1->L2; L0->L2"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    ExpectTsdMatchesNaive(*p);
  }
}

TEST_F(BaselineFixture, TsdUsesBothPhases) {
  BuildGraph(gen::RandomDag(300, 3.0, 3, 57), /*with_catalog=*/false);
  auto tsd = TsdEngine::Create(graph_.get());
  ASSERT_TRUE(tsd.ok());
  auto p = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE((*tsd)->Match(*p).ok());
  // A random DAG with non-tree edges must exercise SSPI expansion, and
  // tree containment must answer some checks.
  EXPECT_GT((*tsd)->stats().sspi_expansions, 0u);
  EXPECT_GT((*tsd)->stats().interval_hits, 0u);
}

TEST_F(BaselineFixture, TsdOnAcyclicXMark) {
  gen::XMarkOptions opts;
  opts.factor = 0.001;
  opts.acyclic = true;
  BuildGraph(gen::XMarkLike(opts), /*with_catalog=*/false);
  auto p = Pattern::Parse("region->item; item->incategory");
  ASSERT_TRUE(p.ok());
  ExpectTsdMatchesNaive(*p);
}

TEST_F(BaselineFixture, IntDpSingleJoin) {
  BuildGraph(gen::ErdosRenyi(150, 450, 3, 61));
  auto p = Pattern::Parse("L0->L1");
  ASSERT_TRUE(p.ok());
  ExpectIntDpMatchesNaive(*p);
}

TEST_F(BaselineFixture, IntDpWorksOnCyclicGraphs) {
  // IGMJ condenses SCCs first, so general digraphs are fine.
  BuildGraph(gen::ErdosRenyi(120, 500, 3, 63));
  for (const char* q : {"L0->L1; L1->L2", "L0->L1; L1->L0"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    ExpectIntDpMatchesNaive(*p);
  }
}

TEST_F(BaselineFixture, IntDpMultiJoinCountsResorts) {
  BuildGraph(gen::RandomDag(200, 2.5, 4, 67));
  IntDpEngine engine(graph_.get(), &db_->catalog());
  auto p = Pattern::Parse("L0->L1; L1->L2; L2->L3");
  ASSERT_TRUE(p.ok());
  auto r = engine.Match(*p);
  ASSERT_TRUE(r.ok());
  // Two joins beyond the first require temporal re-sorts.
  EXPECT_GE(engine.stats().sorts, 2u);
  EXPECT_GT(engine.stats().merge_emits, 0u);
}

TEST_F(BaselineFixture, IntDpAgreesAcrossShapes) {
  for (uint64_t seed : {71ull, 72ull}) {
    BuildGraph(gen::ErdosRenyi(130, 400, 4, seed));
    for (const char* q :
         {"L0->L1; L1->L2; L2->L3", "L0->L1; L0->L2; L3->L0",
          "L0->L1; L1->L2; L0->L2"}) {
      auto p = Pattern::Parse(q);
      ASSERT_TRUE(p.ok());
      ExpectIntDpMatchesNaive(*p);
    }
  }
}

TEST_F(BaselineFixture, IntDpWithoutCatalogFallsBack) {
  BuildGraph(gen::RandomDag(100, 2.0, 3, 73), /*with_catalog=*/false);
  auto p = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(p.ok());
  ExpectIntDpMatchesNaive(*p);
}

TEST_F(BaselineFixture, IntDpSingleLabelAndMissingLabel) {
  BuildGraph(gen::RandomDag(80, 2.0, 3, 79), /*with_catalog=*/false);
  IntDpEngine engine(graph_.get(), nullptr);
  auto single = Pattern::Parse("L1");
  ASSERT_TRUE(single.ok());
  auto r = engine.Match(*single);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), graph_->Extent(*graph_->FindLabel("L1")).size());
  auto missing = Pattern::Parse("L0->Nope");
  ASSERT_TRUE(missing.ok());
  auto r2 = engine.Match(*missing);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->rows.empty());
}

// All four engines agree on a DAG (the Figure 5 setting).
TEST_F(BaselineFixture, AllEnginesAgreeOnDag) {
  BuildGraph(gen::RandomDag(150, 2.0, 4, 83));
  auto p = Pattern::Parse("L0->L1; L1->L2; L1->L3");
  ASSERT_TRUE(p.ok());
  ExpectTsdMatchesNaive(*p);
  ExpectIntDpMatchesNaive(*p);
}

}  // namespace
}  // namespace fgpm
